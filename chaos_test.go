package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/al"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/serve"
)

// chaosSetup regenerates the paper's study subset and a fixed partition
// shared by the chaos tests.
func chaosSetup(t *testing.T) (*Dataset, Partition) {
	t.Helper()
	ds, err := GeneratePerformanceDataset(1)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := StudySubset2D(ds)
	if err != nil {
		t.Fatal(err)
	}
	part, err := NewPartition(sub, PartitionConfig{NInitial: 1, TestFrac: 0.2}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	return sub, part
}

func chaosLoop() LoopConfig {
	return LoopConfig{
		Response:     RespRuntime,
		Strategy:     VarianceReduction{},
		Iterations:   15,
		NoiseFloor:   0.1,
		Restarts:     1,
		AllowRevisit: true,
		Seed:         7,
	}
}

func finalRMSE(t *testing.T, res Result) float64 {
	t.Helper()
	if len(res.Records) == 0 {
		t.Fatal("run produced no records")
	}
	return res.Records[len(res.Records)-1].RMSE
}

// The ISSUE acceptance criterion: under a 10% composite fault rate
// (job failures, stragglers, corrupted measurements) the hardened AL
// loop must still converge — final RMSE within 2× of the fault-free
// run — with every injected fault class visible in the counters and no
// panics anywhere in the stack.
func TestChaosConvergenceUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	sub, part := chaosSetup(t)

	clean, err := RunAL(sub, part, chaosLoop(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cleanRMSE := finalRMSE(t, clean)

	before := map[string]int64{}
	for _, name := range []string{
		"faults.injected.jobfail", "faults.injected.straggler", "faults.injected.corrupt",
	} {
		before[name] = obs.C(name).Value()
	}

	chaos := chaosLoop()
	chaos.Faults = NewFaultInjector(CompositeFaultConfig(42, 0.10))
	chaos.RetryBudget = 3
	chaos.GuardSigma = 4
	faulty, err := RunAL(sub, part, chaos, nil)
	if err != nil {
		t.Fatalf("AL did not survive 10%% faults: %v", err)
	}
	faultyRMSE := finalRMSE(t, faulty)
	if math.IsNaN(faultyRMSE) || math.IsInf(faultyRMSE, 0) {
		t.Fatalf("non-finite RMSE under faults: %g", faultyRMSE)
	}
	if faultyRMSE > 2*cleanRMSE {
		t.Fatalf("chaos RMSE %g exceeds 2x fault-free %g", faultyRMSE, cleanRMSE)
	}
	// Injection decisions are pure functions of (seed, kind, row,
	// attempt), so at this pinned seed every composite class fires.
	for name, b := range before {
		d := obs.C(name).Value() - b
		t.Logf("%s += %d", name, d)
		if d == 0 {
			t.Errorf("%s never fired over the chaos run", name)
		}
	}
}

// Checkpoint/resume through the public façade: interrupting the chaos
// run and resuming must reproduce the uninterrupted selection trace.
func TestChaosCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	sub, part := chaosSetup(t)
	dir := t.TempDir()

	base := chaosLoop()
	base.Faults = NewFaultInjector(CompositeFaultConfig(42, 0.10))
	base.RetryBudget = 3
	base.GuardSigma = 4

	ref := base
	ref.CheckpointPath = filepath.Join(dir, "ref.json")
	full, err := RunAL(sub, part, ref, nil)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "cut.json")
	interrupted := base
	interrupted.CheckpointPath = path
	interrupted.Iterations = 6
	if _, err := RunAL(sub, part, interrupted, nil); err != nil {
		t.Fatal(err)
	}
	res, err := ResumeAL(sub, part, base, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TrainRows) != len(full.TrainRows) {
		t.Fatalf("resumed run selected %d rows, want %d", len(res.TrainRows), len(full.TrainRows))
	}
	for i := range res.TrainRows {
		if res.TrainRows[i] != full.TrainRows[i] {
			t.Fatalf("selection diverged at %d: %d vs %d", i, res.TrainRows[i], full.TrainRows[i])
		}
	}
	if a, b := finalRMSE(t, res), finalRMSE(t, full); math.Float64bits(a) != math.Float64bits(b) {
		t.Fatalf("final RMSE differs after resume: %g vs %g", a, b)
	}
}

// TestChaosServeListenerFaults runs the campaign service behind the
// chaos listener — connections suffer deterministic latency spikes,
// resets, and partial writes — and drives a client campaign through a
// retrying resilience.Client with idempotency keys on every
// observation. The campaign must finish with the exact observation
// count (nothing lost to a killed connection, nothing double-applied by
// a blind retry) and a fitted model, with the fault counters proving
// the listener actually injected.
func TestChaosServeListenerFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}

	grid := make([][]float64, 12)
	for i := range grid {
		grid[i] = []float64{3 * float64(i) / 11}
	}
	oracle := func(x []float64) (y, cost float64) {
		return math.Sin(2*x[0]) + 0.5*x[0], 1 + x[0]
	}
	spec := serve.CampaignSpec{
		Name:       "listener-chaos",
		Source:     "client",
		Candidates: grid,
		Seeds:      []int{0, 11},
		Strategy:   "variance-reduction",
		Iterations: 5,
		Restarts:   1,
		Seed:       29,
	}

	mgr := serve.NewManager(serve.Config{})
	defer mgr.Shutdown(context.Background())
	srv := httptest.NewUnstartedServer(serve.NewServer(mgr))
	injectedBefore := int64(0)
	injected := []string{
		"faults.injected.netlatency", "faults.injected.netreset", "faults.injected.partialwrite",
	}
	for _, name := range injected {
		injectedBefore += obs.C(name).Value()
	}
	srv.Listener = faults.WrapListener(srv.Listener, faults.NewNet(faults.NetworkConfig{
		Seed:             5,
		LatencyRate:      0.1,
		Latency:          time.Millisecond,
		ResetRate:        0.03,
		PartialWriteRate: 0.02,
	}))
	srv.Start()
	defer srv.Close()

	// Create through the in-process API (creates carry no idempotency
	// protocol, so they do not belong on the lossy path); drive entirely
	// over the chaos wire.
	c, err := mgr.Create(spec)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	client := resilience.NewClient(nil, resilience.TransportConfig{
		MaxAttempts: 12,
		Seed:        11,
		Backoff:     resilience.Backoff{Base: 2 * time.Millisecond, Cap: 20 * time.Millisecond},
	})

	observe := func(seq int, x []float64) (int, error) {
		y, cost := oracle(x)
		body, err := json.Marshal(serve.ObserveRequest{Seq: seq, Y: al.JSONFloat(y), Cost: al.JSONFloat(cost)})
		if err != nil {
			return 0, err
		}
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/campaigns/"+c.ID+"/observe", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(resilience.IdempotencyHeader, fmt.Sprintf("%s-seq%d", c.ID, seq))
		resp, err := client.Do(req)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		_, err = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, err
	}

	deadline := time.Now().Add(120 * time.Second)
	maxSeq := 0
	for {
		if time.Now().After(deadline) {
			t.Fatalf("chaos drive timeout after %d suggestions", maxSeq)
		}
		var sug serve.Suggestion
		resp, err := client.Get(srv.URL + "/campaigns/" + c.ID + "/suggest")
		if err != nil {
			// Reset storm outlived the retry budget; transient by
			// construction.
			time.Sleep(5 * time.Millisecond)
			continue
		}
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			// Torn response body (partial write): re-fetch.
			time.Sleep(5 * time.Millisecond)
			continue
		}
		if resp.StatusCode == http.StatusConflict {
			st, serr := c.Status(false)
			if serr != nil {
				t.Fatalf("status: %v", serr)
			}
			if st.State == serve.StateDone || st.State == serve.StateFailed || st.State == serve.StateStopped {
				if st.State != serve.StateDone {
					t.Fatalf("campaign ended %s (err %q), want done", st.State, st.Error)
				}
				break
			}
			time.Sleep(5 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("suggest: HTTP %d (%s)", resp.StatusCode, data)
		}
		if err := json.Unmarshal(data, &sug); err != nil {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		if sug.Seq > maxSeq {
			maxSeq = sug.Seq
		}
		if code, err := observe(sug.Seq, sug.X); err == nil && code != http.StatusOK && code != http.StatusConflict {
			t.Fatalf("observe seq %d: HTTP %d", sug.Seq, code)
		}
		// A transport error or torn body leaves the apply in doubt; the
		// next suggest pass resolves it via the idempotency key.
	}

	final, err := c.Status(false)
	if err != nil {
		t.Fatalf("final status: %v", err)
	}
	if final.Fingerprint == 0 || final.ModelVersion == 0 {
		t.Fatalf("finished campaign has no model identity: %+v", final)
	}
	// The journal must hold exactly one observation per suggestion seq:
	// a killed connection never lost one, a retried request never
	// doubled one.
	if final.Observations != maxSeq {
		t.Fatalf("journal holds %d observations for %d suggestions", final.Observations, maxSeq)
	}

	injectedAfter := int64(0)
	for _, name := range injected {
		injectedAfter += obs.C(name).Value()
	}
	if injectedAfter == injectedBefore {
		t.Fatal("the chaos listener never injected a fault — the test was vacuous")
	}
}
