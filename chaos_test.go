package repro

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// chaosSetup regenerates the paper's study subset and a fixed partition
// shared by the chaos tests.
func chaosSetup(t *testing.T) (*Dataset, Partition) {
	t.Helper()
	ds, err := GeneratePerformanceDataset(1)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := StudySubset2D(ds)
	if err != nil {
		t.Fatal(err)
	}
	part, err := NewPartition(sub, PartitionConfig{NInitial: 1, TestFrac: 0.2}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	return sub, part
}

func chaosLoop() LoopConfig {
	return LoopConfig{
		Response:     RespRuntime,
		Strategy:     VarianceReduction{},
		Iterations:   15,
		NoiseFloor:   0.1,
		Restarts:     1,
		AllowRevisit: true,
		Seed:         7,
	}
}

func finalRMSE(t *testing.T, res Result) float64 {
	t.Helper()
	if len(res.Records) == 0 {
		t.Fatal("run produced no records")
	}
	return res.Records[len(res.Records)-1].RMSE
}

// The ISSUE acceptance criterion: under a 10% composite fault rate
// (job failures, stragglers, corrupted measurements) the hardened AL
// loop must still converge — final RMSE within 2× of the fault-free
// run — with every injected fault class visible in the counters and no
// panics anywhere in the stack.
func TestChaosConvergenceUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	sub, part := chaosSetup(t)

	clean, err := RunAL(sub, part, chaosLoop(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cleanRMSE := finalRMSE(t, clean)

	before := map[string]int64{}
	for _, name := range []string{
		"faults.injected.jobfail", "faults.injected.straggler", "faults.injected.corrupt",
	} {
		before[name] = obs.C(name).Value()
	}

	chaos := chaosLoop()
	chaos.Faults = NewFaultInjector(CompositeFaultConfig(42, 0.10))
	chaos.RetryBudget = 3
	chaos.GuardSigma = 4
	faulty, err := RunAL(sub, part, chaos, nil)
	if err != nil {
		t.Fatalf("AL did not survive 10%% faults: %v", err)
	}
	faultyRMSE := finalRMSE(t, faulty)
	if math.IsNaN(faultyRMSE) || math.IsInf(faultyRMSE, 0) {
		t.Fatalf("non-finite RMSE under faults: %g", faultyRMSE)
	}
	if faultyRMSE > 2*cleanRMSE {
		t.Fatalf("chaos RMSE %g exceeds 2x fault-free %g", faultyRMSE, cleanRMSE)
	}
	// Injection decisions are pure functions of (seed, kind, row,
	// attempt), so at this pinned seed every composite class fires.
	for name, b := range before {
		d := obs.C(name).Value() - b
		t.Logf("%s += %d", name, d)
		if d == 0 {
			t.Errorf("%s never fired over the chaos run", name)
		}
	}
}

// Checkpoint/resume through the public façade: interrupting the chaos
// run and resuming must reproduce the uninterrupted selection trace.
func TestChaosCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	sub, part := chaosSetup(t)
	dir := t.TempDir()

	base := chaosLoop()
	base.Faults = NewFaultInjector(CompositeFaultConfig(42, 0.10))
	base.RetryBudget = 3
	base.GuardSigma = 4

	ref := base
	ref.CheckpointPath = filepath.Join(dir, "ref.json")
	full, err := RunAL(sub, part, ref, nil)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "cut.json")
	interrupted := base
	interrupted.CheckpointPath = path
	interrupted.Iterations = 6
	if _, err := RunAL(sub, part, interrupted, nil); err != nil {
		t.Fatal(err)
	}
	res, err := ResumeAL(sub, part, base, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TrainRows) != len(full.TrainRows) {
		t.Fatalf("resumed run selected %d rows, want %d", len(res.TrainRows), len(full.TrainRows))
	}
	for i := range res.TrainRows {
		if res.TrainRows[i] != full.TrainRows[i] {
			t.Fatalf("selection diverged at %d: %d vs %d", i, res.TrainRows[i], full.TrainRows[i])
		}
	}
	if a, b := finalRMSE(t, res), finalRMSE(t, full); math.Float64bits(a) != math.Float64bits(b) {
		t.Fatalf("final RMSE differs after resume: %g vs %g", a, b)
	}
}
