// Command benchdiff is the CI benchmark-regression guard. It parses
// `go test -bench` output, extracts the deterministic work-count metrics
// emitted by reportObs (gp_fits/op, cholesky/op, cand_evals/op,
// lml_evals/op), and compares them against a checked-in baseline JSON.
//
// Timing (ns/op) is far too noisy to gate CI on shared runners, but the
// amount of linear-algebra work a benchmark performs per op is exactly
// reproducible: a fit that starts factorizing twice, or an AL iteration
// that starts refitting where it used to update incrementally, shows up
// as a work-count jump regardless of hardware. benchdiff fails when any
// guarded metric regresses (increases) by more than -tol relative to the
// baseline.
//
// Two relative timing checks ARE stable enough to gate: ratios of
// sub-benchmarks inside BenchmarkALLoop run on the same machine in the
// same process, so machine speed cancels. benchdiff requires
// refit/incremental ≥ -min-speedup (default 3, the paper-repro
// acceptance floor for the O(n³)→O(n²) dense update path) and
// dense_n8192/sparse_n8192 ≥ -min-sparse-speedup (default 10, the
// large-n floor for the sparse tier's O(m²) step against the dense
// refit a campaign would otherwise pay at that size).
//
// One absolute allocation figure is gated too: B/op of
// BenchmarkALLoop/incremental must stay at or below
// -max-incremental-bop (default 1,291,402 — 60% of the 2,152,336
// recorded before the packed-factor work; Go reports allocations
// deterministically for deterministic code, so this is not a noisy
// timing gate).
//
// Usage:
//
//	go test -run='^$' -bench 'BenchmarkALIteration|BenchmarkALLoop' -benchtime=1x . > bench.txt
//	go run ./scripts/benchdiff -baseline BENCH_baseline.json bench.txt   # compare
//	go run ./scripts/benchdiff -baseline BENCH_baseline.json -update bench.txt  # record
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// guardedMetrics are the work-count metrics gated against the baseline.
// They are deterministic per benchmark op, so any tolerance here is
// headroom for intentional small changes, not measurement noise.
var guardedMetrics = []string{"gp_fits/op", "cholesky/op", "cand_evals/op", "lml_evals/op"}

// benchResult holds every `value unit` metric pair reported on one
// benchmark output line, keyed by unit.
type benchResult map[string]float64

// baselineFile is the checked-in BENCH_baseline.json schema. Informational
// holds ns/op and allocation figures for human reference; only Guarded
// metrics and the speedup floor are enforced.
type baselineFile struct {
	Note             string                 `json:"note"`
	MinSpeedup       float64                `json:"min_alloop_speedup"`
	MinSparseSpeedup float64                `json:"min_sparse_speedup"`
	MaxIncrementalB  float64                `json:"max_incremental_b_op"`
	Benchmarks       map[string]benchResult `json:"benchmarks"`
}

// benchLine matches one data line of `go test -bench` output, e.g.
//
//	BenchmarkALLoop/refit-8   1   19317649 ns/op   1.000 cholesky/op ...
//
// The trailing -N is the GOMAXPROCS suffix and is stripped so baselines
// transfer between machines with different core counts.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

func parseBenchOutput(path string) (map[string]benchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	out := make(map[string]benchResult)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name, rest := m[1], strings.Fields(m[2])
		res := out[name]
		if res == nil {
			res = make(benchResult)
			out[name] = res
		}
		// rest is alternating value/unit pairs.
		for i := 0; i+1 < len(rest); i += 2 {
			v, err := strconv.ParseFloat(rest[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad metric value %q: %v", name, rest[i], err)
			}
			res[rest[i+1]] = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return out, nil
}

// checkRatio enforces one same-process timing ratio: the slow
// sub-benchmark must cost at least minSpeedup× the fast one. Both
// benchmarks absent is fine (not in this run); one absent is an error
// once the pair is expected.
func checkRatio(results map[string]benchResult, slow, fast string, minSpeedup float64) error {
	s, okS := results[slow]
	f, okF := results[fast]
	if !okS && !okF {
		return nil // pair not in this run; nothing to enforce
	}
	if !okS || !okF {
		return fmt.Errorf("speedup pair incomplete: have %s=%v, %s=%v", slow, okS, fast, okF)
	}
	sn, fn := s["ns/op"], f["ns/op"]
	if fn <= 0 {
		return fmt.Errorf("%s reported ns/op=%g", fast, fn)
	}
	ratio := sn / fn
	if ratio < minSpeedup {
		return fmt.Errorf("%s/%s speedup %.2fx < required %.2fx (%.0f ns/op vs %.0f ns/op)",
			slow, fast, ratio, minSpeedup, sn, fn)
	}
	fmt.Printf("ok\t%s / %s speedup %.1fx (floor %.1fx)\n", slow, fast, ratio, minSpeedup)
	return nil
}

// checkSpeedup enforces the incremental-update acceptance floor: the
// refit sub-benchmark must cost at least minSpeedup× the incremental one.
func checkSpeedup(results map[string]benchResult, minSpeedup float64) error {
	return checkRatio(results, "BenchmarkALLoop/refit", "BenchmarkALLoop/incremental", minSpeedup)
}

// checkSparseSpeedup enforces the large-n tier floor: at n = 8192 the
// dense from-scratch refit must cost at least minSpeedup× the sparse
// incremental step.
func checkSparseSpeedup(results map[string]benchResult, minSpeedup float64) error {
	return checkRatio(results, "BenchmarkALLoop/dense_n8192", "BenchmarkALLoop/sparse_n8192", minSpeedup)
}

// checkIncrementalBytes enforces the absolute allocation ceiling on the
// dense incremental update step.
func checkIncrementalBytes(results map[string]benchResult, maxBytes float64) error {
	incr, ok := results["BenchmarkALLoop/incremental"]
	if !ok || maxBytes <= 0 {
		return nil
	}
	got, ok := incr["B/op"]
	if !ok {
		return fmt.Errorf("BenchmarkALLoop/incremental reported no B/op (run with -benchmem or b.ReportAllocs)")
	}
	if got > maxBytes {
		return fmt.Errorf("BenchmarkALLoop/incremental allocates %.0f B/op > ceiling %.0f B/op", got, maxBytes)
	}
	fmt.Printf("ok\tBenchmarkALLoop/incremental %.0f B/op (ceiling %.0f)\n", got, maxBytes)
	return nil
}

func compare(base *baselineFile, results map[string]benchResult, tol float64) []string {
	var failures []string
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := base.Benchmarks[name]
		got, ok := results[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but missing from bench output", name))
			continue
		}
		for _, metric := range guardedMetrics {
			w, okW := want[metric]
			g, okG := got[metric]
			if !okW {
				continue // metric not recorded in baseline; nothing to guard
			}
			if !okG {
				failures = append(failures, fmt.Sprintf("%s: metric %s missing from bench output", name, metric))
				continue
			}
			// Only increases are regressions; doing less work is fine.
			limit := w * (1 + tol)
			if w == 0 {
				limit = tol // zero-baseline: allow only tiny absolute drift
			}
			if g > limit {
				failures = append(failures, fmt.Sprintf("%s: %s regressed %.3f → %.3f (limit %.3f, tol %.0f%%)",
					name, metric, w, g, limit, tol*100))
			} else {
				fmt.Printf("ok\t%s %s %.3f (baseline %.3f)\n", name, metric, g, w)
			}
		}
	}
	return failures
}

func writeBaseline(path string, results map[string]benchResult, minSpeedup, minSparse, maxIncrB float64) error {
	base := baselineFile{
		Note: "Deterministic work counts per benchmark op, recorded by scripts/benchdiff -update. " +
			"CI fails if a guarded metric (gp_fits/op, cholesky/op, cand_evals/op, lml_evals/op) " +
			"rises more than the tolerance, if the ALLoop refit/incremental or dense_n8192/sparse_n8192 " +
			"speedup drops below its floor, or if the incremental step's B/op exceeds its ceiling. " +
			"Other ns/op and allocation figures are informational only.",
		MinSpeedup:       minSpeedup,
		MinSparseSpeedup: minSparse,
		MaxIncrementalB:  maxIncrB,
		Benchmarks:       results,
	}
	buf, err := json.MarshalIndent(&base, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline JSON to compare against (or write with -update)")
	update := flag.Bool("update", false, "record the bench output as the new baseline instead of comparing")
	tol := flag.Float64("tol", 0.20, "allowed relative increase of guarded work-count metrics")
	minSpeedup := flag.Float64("min-speedup", 3, "required BenchmarkALLoop refit/incremental ns-per-op ratio")
	minSparse := flag.Float64("min-sparse-speedup", 10, "required BenchmarkALLoop dense_n8192/sparse_n8192 ns-per-op ratio")
	maxIncrB := flag.Float64("max-incremental-bop", 1291402, "B/op ceiling for BenchmarkALLoop/incremental (≤60% of the pre-packed-factor 2152336)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-baseline file] [-update] [-tol frac] [-min-speedup x] [-min-sparse-speedup x] [-max-incremental-bop n] bench.txt")
		os.Exit(2)
	}
	results, err := parseBenchOutput(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}

	for _, err := range []error{
		checkSpeedup(results, *minSpeedup),
		checkSparseSpeedup(results, *minSparse),
		checkIncrementalBytes(results, *maxIncrB),
	} {
		if err != nil {
			fmt.Fprintln(os.Stderr, "FAIL\t"+err.Error())
			os.Exit(1)
		}
	}

	if *update {
		if err := writeBaseline(*baselinePath, results, *minSpeedup, *minSparse, *maxIncrB); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *baselinePath, len(results))
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: parsing %s: %v\n", *baselinePath, err)
		os.Exit(1)
	}
	// The baseline's recorded floors/ceilings win over the flag defaults
	// when they differ — the checked-in file is the source of truth in CI.
	if base.MinSpeedup > 0 && base.MinSpeedup != *minSpeedup {
		if err := checkSpeedup(results, base.MinSpeedup); err != nil {
			fmt.Fprintln(os.Stderr, "FAIL\t"+err.Error())
			os.Exit(1)
		}
	}
	if base.MinSparseSpeedup > 0 && base.MinSparseSpeedup != *minSparse {
		if err := checkSparseSpeedup(results, base.MinSparseSpeedup); err != nil {
			fmt.Fprintln(os.Stderr, "FAIL\t"+err.Error())
			os.Exit(1)
		}
	}
	if base.MaxIncrementalB > 0 && base.MaxIncrementalB != *maxIncrB {
		if err := checkIncrementalBytes(results, base.MaxIncrementalB); err != nil {
			fmt.Fprintln(os.Stderr, "FAIL\t"+err.Error())
			os.Exit(1)
		}
	}
	failures := compare(&base, results, *tol)
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "FAIL\t"+f)
		}
		os.Exit(1)
	}
	fmt.Println("benchdiff: all guarded metrics within tolerance")
}
