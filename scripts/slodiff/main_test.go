package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// cleanReport is a healthy replay outcome shaped like cmd/alload
// output; tests perturb copies of it to inject regressions.
const cleanReport = `{
  "seed": 7,
  "fingerprint": "7e665d878eced6f2",
  "total_requests": 10404,
  "error_rate": 0,
  "shed_rate": 0,
  "surrogate": {"kind": "knn", "samples": 22, "loo_rel_rmse": 0.048},
  "routes": {
    "create":  {"requests": 4,    "p50_ms": 0.2, "p99_ms": 2.0},
    "suggest": {"requests": 1304, "p50_ms": 2.8, "p99_ms": 19.2},
    "observe": {"requests": 108,  "p50_ms": 9.5, "p99_ms": 38.9},
    "predict": {"requests": 8209, "p50_ms": 2.8, "p99_ms": 18.1},
    "status":  {"requests": 779,  "p50_ms": 3.0, "p99_ms": 17.7}
  }
}`

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// mutate applies fn to the parsed clean report and writes it back out.
func mutate(t *testing.T, dir, name string, fn func(map[string]any)) string {
	t.Helper()
	var rep map[string]any
	if err := json.Unmarshal([]byte(cleanReport), &rep); err != nil {
		t.Fatal(err)
	}
	fn(rep)
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return write(t, dir, name, string(data))
}

func runDiff(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// baseline returns a checked-in-shaped baseline matching the clean
// report with the default 4x headroom.
func baseline(t *testing.T, dir string) string {
	return write(t, dir, "base.json", `{
  "min_requests": 10000,
  "latency_headroom": 4,
  "max_error_rate": 0.01,
  "max_shed_rate": 0.05,
  "max_loo_rel_rmse": 0.15,
  "routes": {
    "suggest": {"p50_ms": 6, "p99_ms": 40},
    "observe": {"p50_ms": 20, "p99_ms": 80},
    "predict": {"p50_ms": 6, "p99_ms": 40},
    "status":  {"p50_ms": 6, "p99_ms": 40}
  }
}`)
}

func TestCleanReportPasses(t *testing.T) {
	dir := t.TempDir()
	rep := write(t, dir, "rep.json", cleanReport)
	code, stdout, stderr := runDiff(t, "-baseline", baseline(t, dir), rep)
	if code != 0 {
		t.Fatalf("clean report failed (exit %d):\n%s%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "all SLO gates within limits") {
		t.Errorf("missing pass banner:\n%s", stdout)
	}
}

func TestP99RegressionFails(t *testing.T) {
	dir := t.TempDir()
	rep := mutate(t, dir, "rep.json", func(r map[string]any) {
		pred := r["routes"].(map[string]any)["predict"].(map[string]any)
		pred["p99_ms"] = 500.0 // blows through 40ms × 4 headroom
	})
	code, _, stderr := runDiff(t, "-baseline", baseline(t, dir), rep)
	if code != 1 {
		t.Fatalf("p99 regression passed (exit %d)", code)
	}
	if !strings.Contains(stderr, "route predict: p99") {
		t.Errorf("failure does not name the regressed gate:\n%s", stderr)
	}
}

func TestShedRateRegressionFails(t *testing.T) {
	dir := t.TempDir()
	rep := mutate(t, dir, "rep.json", func(r map[string]any) {
		r["shed_rate"] = 0.3
	})
	code, _, stderr := runDiff(t, "-baseline", baseline(t, dir), rep)
	if code != 1 {
		t.Fatalf("shed-rate regression passed (exit %d)", code)
	}
	if !strings.Contains(stderr, "shed rate") {
		t.Errorf("failure does not name the shed gate:\n%s", stderr)
	}
}

func TestErrorRateAndSizeGates(t *testing.T) {
	dir := t.TempDir()
	base := baseline(t, dir)
	for name, fn := range map[string]func(map[string]any){
		"error rate":        func(r map[string]any) { r["error_rate"] = 0.2 },
		"replay too small":  func(r map[string]any) { r["total_requests"] = 12.0 },
		"surrogate LOO rel": func(r map[string]any) { r["surrogate"].(map[string]any)["loo_rel_rmse"] = 0.9 },
	} {
		rep := mutate(t, dir, "rep.json", fn)
		code, _, stderr := runDiff(t, "-baseline", base, rep)
		if code != 1 {
			t.Errorf("%s: regression passed (exit %d)", name, code)
		}
		if !strings.Contains(stderr, name) {
			t.Errorf("%s: failure text does not name the gate:\n%s", name, stderr)
		}
	}
}

func TestMissingRouteFails(t *testing.T) {
	dir := t.TempDir()
	rep := mutate(t, dir, "rep.json", func(r map[string]any) {
		delete(r["routes"].(map[string]any), "observe")
	})
	code, _, stderr := runDiff(t, "-baseline", baseline(t, dir), rep)
	if code != 1 || !strings.Contains(stderr, "route observe") {
		t.Fatalf("missing route not caught (exit %d):\n%s", code, stderr)
	}
}

// TestUpdateRoundTrip records a baseline from the clean report and
// verifies the same report then passes against it.
func TestUpdateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rep := write(t, dir, "rep.json", cleanReport)
	base := filepath.Join(dir, "new_base.json")
	if code, _, stderr := runDiff(t, "-baseline", base, "-update", rep); code != 0 {
		t.Fatalf("-update failed (exit %d):\n%s", code, stderr)
	}
	var written baselineFile
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &written); err != nil {
		t.Fatalf("written baseline unparseable: %v", err)
	}
	if written.LatencyHeadroom != 4 || written.MinRequests != 10000 || len(written.Routes) != 5 {
		t.Fatalf("unexpected baseline: %+v", written)
	}
	if code, stdout, stderr := runDiff(t, "-baseline", base, rep); code != 0 {
		t.Fatalf("report fails against its own recorded baseline (exit %d):\n%s%s", code, stdout, stderr)
	}
}

func TestUsageAndBadInput(t *testing.T) {
	if code, _, _ := runDiff(t); code != 2 {
		t.Errorf("no-args exit %d, want 2", code)
	}
	dir := t.TempDir()
	bad := write(t, dir, "bad.json", "{not json")
	if code, _, _ := runDiff(t, "-baseline", baseline(t, dir), bad); code != 1 {
		t.Errorf("bad report exit %d, want 1", code)
	}
}
