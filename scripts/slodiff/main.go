// Command slodiff is the CI latency/SLO regression gate for surrogate
// load replay, the companion of scripts/benchdiff. It compares an SLO
// report written by cmd/alload against a checked-in baseline
// (SLO_baseline.json) and fails the build when the replay regressed.
//
// Raw latency on shared CI runners is noisy, so latency gates are
// generous by construction: each route's p50/p99 ceiling is the
// baseline figure times a headroom multiplier (default 4×) — wide
// enough to absorb runner variance, tight enough that a lock added to
// the predict path, a scoring-pool stall, or an accidental synchronous
// fsync blows straight through it. Rates and counts ARE deterministic
// under a seeded replay, so error rate, shed rate, replay size, and
// surrogate faithfulness gate tightly with no headroom.
//
// Usage:
//
//	go run ./cmd/alload -requests 10000 -seed 7 -slo-out slo_report.json
//	go run ./scripts/slodiff -baseline SLO_baseline.json slo_report.json          # compare
//	go run ./scripts/slodiff -baseline SLO_baseline.json -update slo_report.json  # record
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

// routeBaseline is the recorded per-route latency reference. Ceilings
// are baseline × headroom at compare time, so the checked-in figures
// stay honest measurements rather than pre-inflated limits.
type routeBaseline struct {
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// baselineFile is the SLO_baseline.json schema.
type baselineFile struct {
	Note            string                   `json:"note"`
	MinRequests     int                      `json:"min_requests"`
	LatencyHeadroom float64                  `json:"latency_headroom"`
	MaxErrorRate    float64                  `json:"max_error_rate"`
	MaxShedRate     float64                  `json:"max_shed_rate"`
	MaxLOORelRMSE   float64                  `json:"max_loo_rel_rmse"`
	Routes          map[string]routeBaseline `json:"routes"`
}

// routeReport and sloReport mirror the cmd/alload output schema
// (fields slodiff does not gate on are ignored by encoding/json).
type routeReport struct {
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

type sloReport struct {
	Fingerprint   string  `json:"fingerprint"`
	TotalRequests int     `json:"total_requests"`
	ErrorRate     float64 `json:"error_rate"`
	ShedRate      float64 `json:"shed_rate"`
	Surrogate     struct {
		LOORelRMSE float64 `json:"loo_rel_rmse"`
	} `json:"surrogate"`
	Routes map[string]routeReport `json:"routes"`
}

// compare returns every violated gate, empty when the replay is clean.
func compare(base *baselineFile, rep *sloReport, out io.Writer) []string {
	var failures []string
	fail := func(format string, args ...any) {
		failures = append(failures, fmt.Sprintf(format, args...))
	}

	if rep.TotalRequests < base.MinRequests {
		fail("replay too small: %d requests < required %d (partial run gates nothing)",
			rep.TotalRequests, base.MinRequests)
	} else {
		fmt.Fprintf(out, "ok\treplay size %d (floor %d)\n", rep.TotalRequests, base.MinRequests)
	}
	if rep.ErrorRate > base.MaxErrorRate {
		fail("error rate %.4f > ceiling %.4f", rep.ErrorRate, base.MaxErrorRate)
	} else {
		fmt.Fprintf(out, "ok\terror rate %.4f (ceiling %.4f)\n", rep.ErrorRate, base.MaxErrorRate)
	}
	if rep.ShedRate > base.MaxShedRate {
		fail("shed rate %.4f > ceiling %.4f", rep.ShedRate, base.MaxShedRate)
	} else {
		fmt.Fprintf(out, "ok\tshed rate %.4f (ceiling %.4f)\n", rep.ShedRate, base.MaxShedRate)
	}
	if base.MaxLOORelRMSE > 0 {
		if rep.Surrogate.LOORelRMSE > base.MaxLOORelRMSE {
			fail("surrogate LOO rel RMSE %.4f > ceiling %.4f (replay drifted off the recorded surface)",
				rep.Surrogate.LOORelRMSE, base.MaxLOORelRMSE)
		} else {
			fmt.Fprintf(out, "ok\tsurrogate LOO rel RMSE %.4f (ceiling %.4f)\n",
				rep.Surrogate.LOORelRMSE, base.MaxLOORelRMSE)
		}
	}

	routes := make([]string, 0, len(base.Routes))
	for r := range base.Routes {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	for _, route := range routes {
		rb := base.Routes[route]
		rr, ok := rep.Routes[route]
		if !ok || rr.Requests == 0 {
			fail("route %s: in baseline but saw no traffic in the report", route)
			continue
		}
		for _, q := range []struct {
			name       string
			got, limit float64
		}{
			{"p50", rr.P50Ms, rb.P50Ms * base.LatencyHeadroom},
			{"p99", rr.P99Ms, rb.P99Ms * base.LatencyHeadroom},
		} {
			if q.got > q.limit {
				fail("route %s: %s %.2fms > %.2fms (baseline ×%.1f headroom)",
					route, q.name, q.got, q.limit, base.LatencyHeadroom)
			} else {
				fmt.Fprintf(out, "ok\troute %s %s %.2fms (limit %.2fms)\n", route, q.name, q.got, q.limit)
			}
		}
	}
	return failures
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	return nil
}

func writeBaseline(path string, rep *sloReport, cfg baselineFile) error {
	cfg.Note = "SLO reference for surrogate-driven load replay, recorded by scripts/slodiff -update " +
		"from a cmd/alload report. Latency figures are honest local measurements; compare-time " +
		"ceilings are these times latency_headroom. Error/shed/size/surrogate gates apply as-is."
	cfg.Routes = make(map[string]routeBaseline, len(rep.Routes))
	for route, rr := range rep.Routes {
		if rr.Requests == 0 {
			continue
		}
		cfg.Routes[route] = routeBaseline{P50Ms: rr.P50Ms, P99Ms: rr.P99Ms}
	}
	data, err := json.MarshalIndent(&cfg, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("slodiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "SLO_baseline.json", "baseline JSON to compare against (or write with -update)")
	update := fs.Bool("update", false, "record the report as the new baseline instead of comparing")
	minRequests := fs.Int("min-requests", 10000, "-update: required replay size")
	headroom := fs.Float64("headroom", 4, "-update: latency ceiling multiplier over recorded p50/p99")
	maxErrorRate := fs.Float64("max-error-rate", 0.01, "-update: error-rate ceiling")
	maxShedRate := fs.Float64("max-shed-rate", 0.05, "-update: shed-rate ceiling")
	maxLOO := fs.Float64("max-loo-rel-rmse", 0.15, "-update: surrogate leave-one-out relative RMSE ceiling (0 = don't gate)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: slodiff [-baseline file] [-update] slo_report.json")
		return 2
	}

	var rep sloReport
	if err := readJSON(fs.Arg(0), &rep); err != nil {
		fmt.Fprintln(stderr, "slodiff:", err)
		return 1
	}

	if *update {
		cfg := baselineFile{
			MinRequests:     *minRequests,
			LatencyHeadroom: *headroom,
			MaxErrorRate:    *maxErrorRate,
			MaxShedRate:     *maxShedRate,
			MaxLOORelRMSE:   *maxLOO,
		}
		if err := writeBaseline(*baselinePath, &rep, cfg); err != nil {
			fmt.Fprintln(stderr, "slodiff:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s (%d routes, fingerprint %s)\n", *baselinePath, len(rep.Routes), rep.Fingerprint)
		return 0
	}

	var base baselineFile
	if err := readJSON(*baselinePath, &base); err != nil {
		fmt.Fprintln(stderr, "slodiff:", err)
		return 1
	}
	if base.LatencyHeadroom <= 0 {
		base.LatencyHeadroom = 1
	}
	failures := compare(&base, &rep, stdout)
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(stderr, "FAIL\t"+f)
		}
		return 1
	}
	fmt.Fprintln(stdout, "slodiff: all SLO gates within limits")
	return 0
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }
