// Package repro is the public façade of alperf — a from-scratch Go
// reproduction of "Active Learning in Performance Analysis" (Duplyakin,
// Brown, Ricci; IEEE CLUSTER 2016).
//
// The library combines Gaussian Process Regression (GPR) with Active
// Learning (AL) to build predictive models of program performance and
// energy consumption from as few experiments as possible: a GP supplies a
// full predictive distribution over the input space, and AL repeatedly
// selects the next experiment where that distribution is least certain
// (VarianceReduction) or where uncertainty per unit cost is highest
// (CostEfficiency, the paper's Eq. 14).
//
// # Quick start
//
//	ds, _ := repro.GeneratePerformanceDataset(1)
//	sub := repro.StudySubset2D(ds)              // log size × frequency, poisson1, NP=32
//	part, _ := repro.NewPartition(sub, repro.PartitionConfig{NInitial: 1, TestFrac: 0.2}, rng)
//	res, _ := repro.RunAL(sub, part, repro.LoopConfig{
//		Response: repro.RespRuntime,
//		Strategy: repro.VarianceReduction{},
//		Iterations: 50,
//		NoiseFloor: 0.1,
//	}, rng)
//
// Every subsystem the paper depends on is implemented in internal/
// packages: dense linear algebra (internal/mat), covariance kernels
// (internal/kernel), L-BFGS/Nelder-Mead optimizers (internal/optimize),
// GPR (internal/gp), a real geometric multigrid solver standing in for
// HPGMG-FE (internal/multigrid), a simulated CloudLab cluster with DVFS
// and IPMI power traces (internal/cluster), a SLURM-like batch scheduler
// (internal/sched), the HPGMG benchmark model (internal/hpgmg), the
// dataset layer (internal/dataset), the AL core (internal/al), and the
// per-figure experiment harness (internal/experiments).
package repro

import (
	"math/rand"

	"repro/internal/al"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/gp"
	"repro/internal/hpgmg"
	"repro/internal/kernel"
	"repro/internal/mat"
)

// Re-exported dataset types and column names.
type (
	// Dataset is the tabular experiment container.
	Dataset = dataset.Dataset
	// Partition is an Initial/Active/Test split.
	Partition = dataset.Partition
	// PartitionConfig controls random splits.
	PartitionConfig = dataset.PartitionConfig
)

// Dataset column names (Table I).
const (
	VarSize     = dataset.VarSize
	VarNP       = dataset.VarNP
	VarFreq     = dataset.VarFreq
	RespRuntime = dataset.RespRuntime
	RespEnergy  = dataset.RespEnergy
	TagOperator = dataset.TagOperator
)

// Re-exported Active Learning types.
type (
	// LoopConfig drives one AL realization.
	LoopConfig = al.LoopConfig
	// BatchConfig drives AL over many random partitions.
	BatchConfig = al.BatchConfig
	// Result is one AL realization's records.
	Result = al.Result
	// IterationRecord is one AL step's monitoring quantities.
	IterationRecord = al.IterationRecord
	// Strategy selects the next experiment.
	Strategy = al.Strategy
	// VarianceReduction is argmax-σ selection.
	VarianceReduction = al.VarianceReduction
	// CostEfficiency is argmax (σ−μ) selection (Eq. 14).
	CostEfficiency = al.CostEfficiency
	// Random is the uniform baseline.
	Random = al.Random
	// Oracle runs live experiments for online AL.
	Oracle = al.Oracle
	// OracleFunc adapts a function to Oracle.
	OracleFunc = al.OracleFunc
	// Curves are per-iteration batch averages.
	Curves = al.Curves
	// TradeoffPoint is one cost–error point.
	TradeoffPoint = al.TradeoffPoint
)

// Dense is a dense row-major matrix; AL candidate grids and GP training
// inputs hold one point per row.
type Dense = mat.Dense

// NewDense returns a zeroed rows × cols matrix.
func NewDense(rows, cols int) *Dense { return mat.New(rows, cols) }

// NewDenseFromRows builds a matrix from row slices, copying.
func NewDenseFromRows(rows [][]float64) *Dense { return mat.NewFromRows(rows) }

// Re-exported GP types.
type (
	// GP is a fitted Gaussian process regressor.
	GP = gp.GP
	// GPConfig configures GP fitting.
	GPConfig = gp.Config
	// Prediction is a posterior mean/SD pair.
	Prediction = gp.Prediction
	// Kernel is a covariance function.
	Kernel = kernel.Kernel
)

// NewRBF returns the paper's squared-exponential kernel (Eq. 11).
func NewRBF(lengthScale, amplitude float64) Kernel { return kernel.NewRBF(lengthScale, amplitude) }

// NewMatern52 returns a Matérn-5/2 kernel, a robust RBF alternative.
func NewMatern52(lengthScale, amplitude float64) Kernel {
	return kernel.NewMatern52(lengthScale, amplitude)
}

// FitGP fits a Gaussian process to (x rows, y) under cfg.
func FitGP(cfg GPConfig, x *Dense, y []float64, rng *rand.Rand) (*GP, error) {
	return gp.Fit(cfg, x, y, rng)
}

// GeneratePerformanceDataset regenerates the paper's Performance dataset
// (3246 jobs) on the simulated cluster.
func GeneratePerformanceDataset(seed int64) (*Dataset, error) {
	results, err := hpgmg.GeneratePerformance(seed)
	if err != nil {
		return nil, err
	}
	return dataset.FromPerformance(results)
}

// GeneratePowerDataset regenerates the paper's Power dataset (640 jobs).
func GeneratePowerDataset(seed int64) (*Dataset, error) {
	results, err := hpgmg.GeneratePower(seed)
	if err != nil {
		return nil, err
	}
	return dataset.FromPower(results)
}

// StudySubset2D extracts the §V-B study subset from a Performance
// dataset: operator poisson1, NP = 32, variables (log10 size, frequency),
// response log10 runtime.
func StudySubset2D(d *Dataset) (*Dataset, error) {
	sub := d.WhereTag(TagOperator, "poisson1").WhereVar(VarNP, 32)
	if err := sub.LogVar(VarSize); err != nil {
		return nil, err
	}
	if err := sub.LogResp(RespRuntime); err != nil {
		return nil, err
	}
	return sub.Project(VarSize, VarFreq), nil
}

// NewPartition draws a random Initial/Active/Test split (§IV).
func NewPartition(d *Dataset, cfg PartitionConfig, rng *rand.Rand) (Partition, error) {
	return dataset.RandomPartition(d, cfg, rng)
}

// RunAL executes one Active Learning realization.
func RunAL(d *Dataset, part Partition, cfg LoopConfig, rng *rand.Rand) (Result, error) {
	return al.Run(d, part, cfg, rng)
}

// ResumeAL continues a checkpointed AL realization from the file at
// path (written when cfg.CheckpointPath is set). cfg must match the
// interrupted run's configuration; the resumed run reproduces the
// uninterrupted selection trace exactly.
func ResumeAL(d *Dataset, part Partition, cfg LoopConfig, path string) (Result, error) {
	return al.Resume(d, part, cfg, path)
}

// RunALBatch executes AL over many random partitions.
func RunALBatch(d *Dataset, cfg BatchConfig) ([]Result, error) {
	return al.RunBatch(d, cfg)
}

// RunOnlineAL executes AL against a live Oracle over a candidate grid.
func RunOnlineAL(candidates *Dense, seeds []int, oracle Oracle, cfg LoopConfig, rng *rand.Rand) (Result, error) {
	return al.RunOnline(candidates, seeds, oracle, cfg, rng)
}

// AverageCurves aggregates batch results per iteration.
func AverageCurves(results []Result) Curves { return al.AverageCurves(results) }

// TradeoffCurve converts averaged curves into a cost–error curve.
func TradeoffCurve(c Curves) []TradeoffPoint { return al.TradeoffCurve(c) }

// CompareTradeoffs quantifies candidate vs baseline cost–error curves.
func CompareTradeoffs(baseline, candidate []TradeoffPoint) al.Comparison {
	return al.Compare(baseline, candidate)
}

// Fault-injection re-exports (DESIGN.md §8).
type (
	// FaultConfig sets per-class fault rates and the injection seed.
	FaultConfig = faults.Config
	// FaultInjector makes deterministic seeded fault decisions; wire
	// one into LoopConfig.Faults to harden-test an AL campaign.
	FaultInjector = faults.Injector
)

// NewFaultInjector builds an injector; a nil injector injects nothing.
func NewFaultInjector(cfg FaultConfig) *FaultInjector { return faults.New(cfg) }

// CompositeFaultConfig sets job-failure, straggler, and corruption
// rates all to rate — the chaos-testing preset.
func CompositeFaultConfig(seed int64, rate float64) FaultConfig {
	return faults.CompositeConfig(seed, rate)
}

// Experiments re-exports.
type (
	// ExperimentOptions configures experiment generation.
	ExperimentOptions = experiments.Options
	// ExperimentReport is one regenerated table/figure.
	ExperimentReport = experiments.Report
)

// AllExperiments regenerates every table and figure of the paper.
func AllExperiments(opts ExperimentOptions) ([]*ExperimentReport, error) {
	return experiments.All(opts)
}
