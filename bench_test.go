package repro

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/experiments"
	"repro/internal/gp"
	"repro/internal/hpgmg"
	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/multigrid"
	"repro/internal/obs"
)

// obsCounters samples the observability counters that describe the
// linear-algebra and AL work a benchmark performed. Reporting their
// per-op deltas turns `go test -bench` output into a perf trajectory:
// an optimization PR must show the same (or lower) work counts at lower
// ns/op, and a regression shows up as a count jump even when wall time
// hides it on faster hardware.
type obsCounters struct {
	gpFits, cholesky, candEvals, lmlEvals int64
}

func sampleObs() obsCounters {
	return obsCounters{
		gpFits:    obs.C("gp.fit.count").Value(),
		cholesky:  obs.C("mat.cholesky.count").Value(),
		candEvals: obs.C("al.candidates.evaluated").Value(),
		lmlEvals:  obs.C("gp.lml.evals").Value(),
	}
}

// reportObs emits the per-iteration deltas of the key obs counters as
// benchmark metrics.
func reportObs(b *testing.B, before, after obsCounters) {
	b.Helper()
	n := float64(b.N)
	b.ReportMetric(float64(after.gpFits-before.gpFits)/n, "gp_fits/op")
	b.ReportMetric(float64(after.cholesky-before.cholesky)/n, "cholesky/op")
	b.ReportMetric(float64(after.candEvals-before.candEvals)/n, "cand_evals/op")
	b.ReportMetric(float64(after.lmlEvals-before.lmlEvals)/n, "lml_evals/op")
}

// Each benchmark regenerates one of the paper's artifacts end to end —
// dataset synthesis, GP fits, AL batches — and reports the headline
// values as benchmark metrics so `go test -bench` output doubles as a
// reproduction log. Quick mode keeps -bench=. affordable; run
// cmd/alrepro (without -quick) for the full-size reproduction.
var benchOpts = experiments.Options{Seed: 1, Quick: true}

func benchReport(b *testing.B, gen func(experiments.Options) (*experiments.Report, error), keys ...string) {
	b.Helper()
	b.ReportAllocs()
	var rep *experiments.Report
	var err error
	before := sampleObs()
	for i := 0; i < b.N; i++ {
		rep, err = gen(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportObs(b, before, sampleObs())
	for _, k := range keys {
		if v, ok := rep.Values[k]; ok {
			b.ReportMetric(v, k)
		}
	}
}

// BenchmarkTableI regenerates Table I (dataset parameters).
func BenchmarkTableI(b *testing.B) {
	benchReport(b, experiments.TableI, "performance_jobs", "power_jobs")
}

// BenchmarkFig1 regenerates the raw scatter subsets and the
// noise-contrast headline (Power ≫ Performance variance).
func BenchmarkFig1(b *testing.B) {
	benchReport(b, experiments.Fig1, "performance_repeat_cv", "power_repeat_cv")
}

// BenchmarkFig2 regenerates the log-transformed view and the log–log
// linearity fit.
func BenchmarkFig2(b *testing.B) {
	benchReport(b, experiments.Fig2, "loglog_slope", "loglog_r2")
}

// BenchmarkFig3 regenerates the 1-D GPR hyperparameter study.
func BenchmarkFig3(b *testing.B) {
	benchReport(b, experiments.Fig3, "b_sd_edge", "b_sd_mid")
}

// BenchmarkFig4 regenerates the peaked LML landscape.
func BenchmarkFig4(b *testing.B) {
	benchReport(b, experiments.Fig4, "grid_peak_lml", "fitted_lml")
}

// BenchmarkFig5 regenerates the small-dataset 2-D GPR and its shallow
// landscape.
func BenchmarkFig5(b *testing.B) {
	benchReport(b, experiments.Fig5, "peak_minus_median", "corner_sd")
}

// BenchmarkFig6 regenerates the AL trajectory study (edges-first
// exploration).
func BenchmarkFig6(b *testing.B) {
	benchReport(b, experiments.Fig6, "edge_fraction_first10", "subset_jobs")
}

// BenchmarkFig7 regenerates the noise-floor comparison.
func BenchmarkFig7(b *testing.B) {
	benchReport(b, experiments.Fig7, "min_noise_low_floor", "min_noise_high_floor")
}

// BenchmarkFig8 regenerates the strategy comparison and cost–error
// tradeoff (the paper's 38% headline).
func BenchmarkFig8(b *testing.B) {
	benchReport(b, experiments.Fig8, "crossover_cost", "max_reduction")
}

// BenchmarkAblationGamma sweeps the cost exponent γ (design-choice
// ablation A1 for the paper's Eq. 14).
func BenchmarkAblationGamma(b *testing.B) {
	benchReport(b, experiments.AblationGamma, "cost_ratio_0_to_1")
}

// BenchmarkAblationKernel compares covariance families (A2).
func BenchmarkAblationKernel(b *testing.B) {
	benchReport(b, experiments.AblationKernel, "rmse_rbf", "rmse_matern52")
}

// BenchmarkAblationSelection compares LML vs LOO-CV model selection (A3,
// the paper's deferred future-work comparison).
func BenchmarkAblationSelection(b *testing.B) {
	benchReport(b, experiments.AblationSelection, "rmse_lml", "rmse_loocv")
}

// BenchmarkAblationParallel compares sequential vs batched selection
// (A4, the §VI scheduling concern).
func BenchmarkAblationParallel(b *testing.B) {
	benchReport(b, experiments.AblationParallel, "vr_sched_speedup", "ce_sched_speedup")
}

// BenchmarkAblationScaling compares dense vs sparse GPR fits on growing
// datasets (A5, the paper's computational-requirements future work).
func BenchmarkAblationScaling(b *testing.B) {
	benchReport(b, experiments.AblationScaling, "dense_fit_s", "sparse_fit_s", "fit_speedup")
}

// BenchmarkAblationEMCM compares the EMCM baseline against GPR variance
// reduction (A6, the §III critique).
func BenchmarkAblationEMCM(b *testing.B) {
	benchReport(b, experiments.AblationEMCM, "final_rmse_gpr", "final_rmse_emcm")
}

// BenchmarkDatasetGeneration measures raw dataset synthesis (all 3246
// Performance jobs through the cluster model).
func BenchmarkDatasetGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GeneratePerformanceDataset(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkALIteration measures one GP-fit-plus-selection step at a
// realistic pool size.
func BenchmarkALIteration(b *testing.B) {
	ds, err := GeneratePerformanceDataset(1)
	if err != nil {
		b.Fatal(err)
	}
	sub, err := StudySubset2D(ds)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	part, err := NewPartition(sub, PartitionConfig{NInitial: 1, TestFrac: 0.2}, rng)
	if err != nil {
		b.Fatal(err)
	}
	cfg := LoopConfig{
		Response:     RespRuntime,
		Strategy:     VarianceReduction{},
		Iterations:   1,
		NoiseFloor:   0.1,
		Restarts:     1,
		AllowRevisit: true,
	}
	b.ReportAllocs()
	b.ResetTimer()
	before := sampleObs()
	for i := 0; i < b.N; i++ {
		if _, err := RunAL(sub, part, cfg, rand.New(rand.NewSource(2))); err != nil {
			b.Fatal(err)
		}
	}
	reportObs(b, before, sampleObs())
}

// BenchmarkALLoop isolates the model-update step of one AL iteration at a
// large training size: the O(n³) from-scratch refit against the O(n²)
// incremental UpdateWithPoint path used between hyperparameter refits.
// The per-op cholesky work counts make the asymptotic difference visible
// (refit: one full factorization; incremental: zero), and the ns/op ratio
// is guarded by scripts/benchdiff via the speedup check recorded in
// BENCH_baseline.json.
func BenchmarkALLoop(b *testing.B) {
	const n = 512
	rng := rand.New(rand.NewSource(1))
	xs := make([][]float64, n+1)
	ys := make([]float64, n+1)
	for i := range xs {
		x := []float64{4 * rng.Float64(), 4 * rng.Float64()}
		xs[i] = x
		ys[i] = math.Sin(2*x[0]) + 0.5*math.Cos(3*x[1]) + 0.05*rng.NormFloat64()
	}
	newCfg := func() gp.Config {
		return gp.Config{Kernel: kernel.NewRBF(0.8, 1.2), NoiseInit: 0.1, FixedNoise: true}
	}
	base, err := gp.Fit(newCfg(), mat.NewFromRows(xs[:n]), ys[:n], nil)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("refit", func(b *testing.B) {
		full := mat.NewFromRows(xs)
		b.ReportAllocs()
		b.ResetTimer()
		before := sampleObs()
		for i := 0; i < b.N; i++ {
			if _, err := gp.Fit(newCfg(), full, ys, nil); err != nil {
				b.Fatal(err)
			}
		}
		reportObs(b, before, sampleObs())
	})
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		before := sampleObs()
		for i := 0; i < b.N; i++ {
			if _, err := base.UpdateWithPoint(xs[n], ys[n]); err != nil {
				b.Fatal(err)
			}
		}
		reportObs(b, before, sampleObs())
	})

	// Large-n model tiers: past ~10⁴ points the dense O(n³) refit stops
	// being viable, and the sparse tier's O(m²) incremental step is the
	// only way to keep a campaign interactive. dense_n8192 performs the
	// from-scratch refit a dense campaign would pay per step at that
	// size; sparse_n* performs the UpdateWithPoint step a sparse
	// campaign pays. Their ns/op ratio is the min_sparse_speedup gate in
	// BENCH_baseline.json (enforced by scripts/benchdiff). Run these
	// with -benchtime=1x: one dense 8192-point factorization is already
	// minutes of work.
	largeData := func(n int) (*mat.Dense, []float64, []float64, float64) {
		rng := rand.New(rand.NewSource(3))
		x := mat.New(n, 2)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			x.Set(i, 0, 4*rng.Float64())
			x.Set(i, 1, 4*rng.Float64())
			ys[i] = math.Sin(2*x.At(i, 0)) + 0.5*math.Cos(3*x.At(i, 1)) + 0.05*rng.NormFloat64()
		}
		xNew := []float64{4 * rng.Float64(), 4 * rng.Float64()}
		yNew := math.Sin(2*xNew[0]) + 0.5*math.Cos(3*xNew[1])
		return x, ys, xNew, yNew
	}
	for _, big := range []int{2048, 8192} {
		b.Run(fmt.Sprintf("sparse_n%d", big), func(b *testing.B) {
			x, ys, xNew, yNew := largeData(big)
			s, err := gp.FitSparse(gp.SparseConfig{
				Kernel: kernel.NewRBF(0.8, 1.2), Noise: 0.1, Inducing: 256,
			}, x, ys, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			before := sampleObs()
			for i := 0; i < b.N; i++ {
				if _, err := s.UpdateWithPoint(xNew, yNew); err != nil {
					b.Fatal(err)
				}
			}
			reportObs(b, before, sampleObs())
		})
	}
	b.Run("dense_n8192", func(b *testing.B) {
		x, ys, _, _ := largeData(8192)
		b.ReportAllocs()
		b.ResetTimer()
		before := sampleObs()
		for i := 0; i < b.N; i++ {
			if _, err := gp.Fit(gp.Config{
				Kernel: kernel.NewRBF(0.8, 1.2), NoiseInit: 0.1, FixedNoise: true,
			}, x, ys, nil); err != nil {
				b.Fatal(err)
			}
		}
		reportObs(b, before, sampleObs())
	})
}

// BenchmarkMultigridFMG measures the real HPGMG-FE stand-in across
// operators — the substrate the analytic cost model is calibrated
// against.
func BenchmarkMultigridFMG(b *testing.B) {
	for _, op := range []multigrid.Operator{multigrid.Poisson1, multigrid.Poisson2, multigrid.Poisson2Affine} {
		b.Run(op.String(), func(b *testing.B) {
			s, err := multigrid.NewSolver(multigrid.Config{Op: op, N: 31})
			if err != nil {
				b.Fatal(err)
			}
			s.SetRHS(func(x, y, z float64) float64 { return 1 })
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.FMG(1)
			}
		})
	}
}

// BenchmarkWorkModelCalibration compares the analytic runtime prediction
// against a real solver execution (the Calibrate path), reporting the
// measured/predicted ratio.
func BenchmarkWorkModelCalibration(b *testing.B) {
	b.ReportAllocs()
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := hpgmg.Calibrate(multigrid.Poisson1, []int{31}, hpgmg.WallTimer)
		if err != nil {
			b.Fatal(err)
		}
		ratio = rows[0].Ratio
	}
	b.ReportMetric(ratio, "measured/predicted")
}

// Example of the public API in testable form.
func ExampleGeneratePerformanceDataset() {
	ds, err := GeneratePerformanceDataset(1)
	if err != nil {
		panic(err)
	}
	fmt.Println(ds.Len())
	// Output: 3246
}
