// Calibration demonstrates the paper's §V-A proposal: when some energy
// measurements come from calibrated physical power meters and others are
// IPMI-derived estimates, the model should trust the former more. The
// heteroscedastic GP (per-observation noise variances) does exactly that.
//
// We simulate a frequency sweep where the *estimates* are biased upward
// at high frequency (IPMI over-reads under load), attach a few trusted
// meter measurements, and compare the homoscedastic fit (pulled toward
// the biased estimates) against the heteroscedastic one (anchored by the
// meters).
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro"
	"repro/internal/gp"
)

func main() {
	rng := rand.New(rand.NewSource(21))
	truth := func(f float64) float64 { // true log10 energy vs frequency
		return 2.0 + 0.35*(f-1.2)
	}

	var xs [][]float64
	var ys []float64
	var noiseVar []float64
	// 20 IPMI estimates: noisy and biased upward at high frequency.
	for i := 0; i < 20; i++ {
		f := 1.2 + 1.2*rng.Float64()
		bias := 0.15 * (f - 1.2) / 1.2
		xs = append(xs, []float64{f})
		ys = append(ys, truth(f)+bias+0.08*rng.NormFloat64())
		noiseVar = append(noiseVar, 0.04) // σ ≈ 0.2 in log10 units
	}
	// 5 meter-calibrated measurements: precise and unbiased.
	for _, f := range []float64{1.2, 1.5, 1.8, 2.1, 2.4} {
		xs = append(xs, []float64{f})
		ys = append(ys, truth(f)+0.01*rng.NormFloat64())
		noiseVar = append(noiseVar, 0.0001) // σ ≈ 0.01
	}
	fmt.Printf("dataset: %d IPMI estimates (σ≈0.2, biased) + 5 meter measurements (σ≈0.01)\n", 20)

	x := repro.NewDenseFromRows(xs)
	fit := func(pointNoise []float64) *repro.GP {
		g, err := gp.Fit(gp.Config{
			Kernel:        repro.NewRBF(1, 1),
			NoiseInit:     0.05,
			FixedNoise:    true,
			PointNoiseVar: pointNoise,
		}, x, ys, nil)
		if err != nil {
			log.Fatal(err)
		}
		return g
	}
	plain := fit(nil)       // homoscedastic: every point equally trusted
	hetero := fit(noiseVar) // §V-A weighting

	fmt.Println("\nfreq   truth   homoscedastic   heteroscedastic")
	var plainErr, heteroErr float64
	for _, f := range []float64{1.2, 1.5, 1.8, 2.1, 2.4} {
		tv := truth(f)
		pp := plain.Predict([]float64{f})
		ph := hetero.Predict([]float64{f})
		fmt.Printf("%.1f    %.3f   %.3f (Δ%+.3f)  %.3f (Δ%+.3f)\n",
			f, tv, pp.Mean, pp.Mean-tv, ph.Mean, ph.Mean-tv)
		plainErr += math.Abs(pp.Mean - tv)
		heteroErr += math.Abs(ph.Mean - tv)
	}
	fmt.Printf("\nmean |error|: homoscedastic %.4f vs heteroscedastic %.4f\n",
		plainErr/5, heteroErr/5)
	if heteroErr < plainErr {
		fmt.Println("the meter-weighted model tracks the truth despite the biased IPMI majority —")
		fmt.Println("exactly the confidence-weighting the paper proposes for mixed-quality power data.")
	}
}
