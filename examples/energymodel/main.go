// Energymodel builds the paper's second response model: energy
// consumption (Joules) from the Power dataset, with the frequency
// dimension as the controlled variable of interest. It contrasts the
// energy-optimal frequency against the runtime-optimal one — the
// energy/performance tension that motivates modeling both responses.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro"
)

func main() {
	ds, err := repro.GeneratePowerDataset(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("power dataset: %d jobs with energy estimates\n", ds.Len())

	// Fix operator and NP; model log10 energy over (log10 size, freq).
	sub := ds.WhereTag(repro.TagOperator, "poisson1").WhereVar(repro.VarNP, 16)
	if err := sub.LogVar(repro.VarSize); err != nil {
		log.Fatal(err)
	}
	if err := sub.LogResp(repro.RespEnergy); err != nil {
		log.Fatal(err)
	}
	if err := sub.LogResp(repro.RespRuntime); err != nil {
		log.Fatal(err)
	}
	sub = sub.Project(repro.VarSize, repro.VarFreq)
	fmt.Printf("study subset (poisson1, NP=16): %d jobs\n", sub.Len())

	rng := rand.New(rand.NewSource(11))
	fit := func(resp string) *repro.GP {
		g, err := repro.FitGP(repro.GPConfig{
			Kernel:     repro.NewRBF(1, 1),
			NoiseInit:  0.1,
			NoiseFloor: 0.05,
			Optimize:   true,
			Restarts:   3,
			Normalize:  true,
		}, sub.Matrix(nil), sub.RespVec(resp, nil), rng)
		if err != nil {
			log.Fatal(err)
		}
		return g
	}
	energyGP := fit(repro.RespEnergy)
	runtimeGP := fit(repro.RespRuntime)
	fmt.Printf("energy GP: LML %.1f, σn %.3f | runtime GP: LML %.1f, σn %.3f\n",
		energyGP.LML(), energyGP.Noise(), runtimeGP.LML(), runtimeGP.Noise())

	// Sweep frequency at a fixed large problem size and compare optima.
	logSize := 8.0 // 10^8 dof
	fmt.Println("\nfreq   log10_energy(±2sd)   log10_runtime(±2sd)")
	bestE, bestEF := math.Inf(1), 0.0
	bestR, bestRF := math.Inf(1), 0.0
	for _, f := range []float64{1.2, 1.5, 1.8, 2.1, 2.4} {
		pe := energyGP.Predict([]float64{logSize, f})
		pr := runtimeGP.Predict([]float64{logSize, f})
		fmt.Printf("%.1f    %6.3f ± %.3f       %6.3f ± %.3f\n", f, pe.Mean, 2*pe.SD, pr.Mean, 2*pr.SD)
		if pe.Mean < bestE {
			bestE, bestEF = pe.Mean, f
		}
		if pr.Mean < bestR {
			bestR, bestRF = pr.Mean, f
		}
	}
	fmt.Printf("\nenergy-optimal frequency:  %.1f GHz (predicted %.0f J)\n", bestEF, math.Pow(10, bestE))
	fmt.Printf("runtime-optimal frequency: %.1f GHz (predicted %.1f s)\n", bestRF, math.Pow(10, bestR))
	if bestEF < bestRF {
		fmt.Println("as expected for memory-bound sizes: racing at max frequency wastes energy.")
	}
}
