// Quickstart: fit a GPR to a 1-D slice of the regenerated Performance
// dataset, run Active Learning with variance reduction, and watch the
// monitoring metrics converge — the paper's core loop in ~60 lines.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/asciiplot"
	"repro/internal/obs"
)

func main() {
	// 1. Regenerate the paper's Performance dataset (3246 simulated
	//    HPGMG-FE jobs) and slice out the §V-B study subset:
	//    poisson1, NP=32, variables (log10 size, frequency).
	ds, err := repro.GeneratePerformanceDataset(1)
	if err != nil {
		log.Fatal(err)
	}
	sub, err := repro.StudySubset2D(ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("study subset: %d jobs\n", sub.Len())

	// 2. Partition: 1 seed experiment, 20%% test, rest is the AL pool.
	rng := rand.New(rand.NewSource(7))
	part, err := repro.NewPartition(sub,
		repro.PartitionConfig{NInitial: 1, TestFrac: 0.2}, rng)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run AL: GPR with an RBF kernel, σn ≥ 0.1 (the paper's
	//    overfitting fix), variance-reduction selection.
	res, err := repro.RunAL(sub, part, repro.LoopConfig{
		Response:     repro.RespRuntime,
		Strategy:     repro.VarianceReduction{},
		Iterations:   40,
		NoiseFloor:   0.1,
		AllowRevisit: true,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}

	// 4. The monitoring quantities of §V-B3: selected-point SD, AMSD,
	//    and test RMSE, which all converge after a few dozen steps.
	fmt.Println("iter  sd_chosen  amsd     rmse     cum_cost")
	for _, rec := range res.Records {
		if rec.Iter%5 == 0 || rec.Iter == 1 {
			fmt.Printf("%4d  %8.4f  %7.4f  %7.4f  %9.1f\n",
				rec.Iter, rec.SDChosen, rec.AMSD, rec.RMSE, rec.CumCost)
		}
	}
	last := res.Records[len(res.Records)-1]
	fmt.Printf("\nfinal model: RMSE %.4f (log10 runtime) after %d experiments costing %.0f core-seconds\n",
		last.RMSE, last.Train, last.CumCost)

	// 5. Query the fitted model anywhere in the input space.
	p := res.Final.Predict([]float64{7.0, 2.1}) // 10^7 dof at 2.1 GHz
	lo, hi := p.CI(2)
	fmt.Printf("predicted log10 runtime at size=1e7, 2.1 GHz: %.3f (95%% CI [%.3f, %.3f])\n",
		p.Mean, lo, hi)

	// 6. The convergence picture, right in the terminal.
	rmses := make([]float64, len(res.Records))
	for i, rec := range res.Records {
		rmses[i] = rec.RMSE
	}
	fmt.Println()
	fmt.Print(asciiplot.Series(rmses, 64, 10, "test RMSE per AL iteration"))

	// 7. What did all that cost? One line from the observability layer
	//    (see OBSERVABILITY.md): GP fits, Cholesky calls, pool scans.
	fmt.Println()
	fmt.Println(obs.Brief())
}
