// Costaware reproduces the paper's headline comparison (Fig. 8): Variance
// Reduction versus the cost-aware Cost Efficiency strategy over batches of
// random partitions, ending with the cost–error tradeoff and the crossover
// cost beyond which the cost-aware algorithm wins.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	ds, err := repro.GeneratePerformanceDataset(1)
	if err != nil {
		log.Fatal(err)
	}
	sub, err := repro.StudySubset2D(ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pool: %d jobs (paper used 251)\n", sub.Len())

	runBatch := func(s repro.Strategy) repro.Curves {
		results, err := repro.RunALBatch(sub, repro.BatchConfig{
			Loop: repro.LoopConfig{
				Response:        repro.RespRuntime,
				Strategy:        s,
				Iterations:      30,
				NoiseFloor:      0.1,
				AllowRevisit:    true,
				Restarts:        1,
				ReoptimizeEvery: 3,
			},
			Partition: repro.PartitionConfig{NInitial: 1, TestFrac: 0.2},
			Runs:      10,
			Seed:      42,
			Parallel:  true,
		})
		if err != nil {
			log.Fatal(err)
		}
		return repro.AverageCurves(results)
	}

	fmt.Println("running Variance Reduction batch...")
	vr := runBatch(repro.VarianceReduction{})
	fmt.Println("running Cost Efficiency batch...")
	ce := runBatch(repro.CostEfficiency{})

	fmt.Println("\niter  vr_rmse  ce_rmse  vr_cost     ce_cost")
	for i := range vr.Iter {
		if vr.Iter[i]%5 == 0 || vr.Iter[i] == 1 {
			fmt.Printf("%4d  %7.4f  %7.4f  %10.0f  %10.0f\n",
				vr.Iter[i], vr.RMSE[i], ce.RMSE[i], vr.CumCost[i], ce.CumCost[i])
		}
	}

	cmp := repro.CompareTradeoffs(repro.TradeoffCurve(vr), repro.TradeoffCurve(ce))
	if math.IsNaN(cmp.CrossoverCost) {
		fmt.Println("\nno crossover in the evaluated cost range")
		return
	}
	fmt.Printf("\ntradeoff crossover at C = %.0f core-seconds\n", cmp.CrossoverCost)
	fmt.Printf("max relative RMSE reduction: %.0f%% (paper: up to 38%%)\n", 100*cmp.MaxReduction)
	for _, mult := range []float64{2, 3, 5, 10} {
		if red, ok := cmp.ReductionAt[mult]; ok {
			fmt.Printf("  at %2.0f·C: %.0f%%\n", mult, 100*red)
		}
	}
	fmt.Println("\nconclusion: CE selects many cheap experiments instead of few expensive ones;")
	fmt.Println("past the crossover it delivers lower error for the same cumulative cost.")
}
