// Online demonstrates the paper's target use case (§VI): Active Learning
// driving *live* experiments instead of consulting a database. The oracle
// actually runs the internal multigrid solver (the HPGMG-FE stand-in) and
// measures wall-clock time; the AL loop decides which configuration to
// run next.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"runtime"
	"time"

	"repro"
	"repro/internal/hpgmg"
	"repro/internal/multigrid"
	"repro/internal/obs"
)

func main() {
	// Candidate grid: per-dimension sizes 2^k − 1 the real solver
	// accepts, crossed with worker counts 1..GOMAXPROCS.
	dims := []int{15, 31, 63}
	maxWorkers := runtime.GOMAXPROCS(0)
	workerLevels := []int{1, 2, maxWorkers}
	var rows [][]float64
	for _, d := range dims {
		for _, w := range workerLevels {
			if w > maxWorkers {
				continue
			}
			// Variables: log10(problem size), workers.
			size := float64(d) * float64(d) * float64(d)
			rows = append(rows, []float64{math.Log10(size), float64(w)})
		}
	}
	grid := repro.NewDenseFromRows(rows)
	fmt.Printf("candidate grid: %d (size, workers) configurations\n", grid.Rows())

	// The oracle runs the real FMG solver and returns log10 runtime;
	// cost is the wall-clock time itself.
	calls := 0
	oracle := repro.OracleFunc(func(x []float64) (float64, float64, error) {
		calls++
		size := int64(math.Round(math.Pow(10, x[0])))
		workers := int(x[1])
		res, err := hpgmg.RunReal(
			hpgmg.Config{Op: multigrid.Poisson1, GlobalSize: size, NP: workers, FreqGHz: 2.4},
			workers,
			func(fn func()) float64 {
				start := time.Now()
				fn()
				return time.Since(start).Seconds()
			})
		if err != nil {
			return 0, 0, err
		}
		fmt.Printf("  ran size=%d workers=%d -> %.4fs\n", size, workers, res.RuntimeS)
		return math.Log10(res.RuntimeS), res.RuntimeS, nil
	})

	res, err := repro.RunOnlineAL(grid, []int{0}, oracle, repro.LoopConfig{
		Response:     "log_runtime",
		Strategy:     repro.VarianceReduction{},
		Iterations:   8,
		NoiseFloor:   0.05,
		AllowRevisit: true,
		Restarts:     1,
	}, rand.New(rand.NewSource(3)))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nran %d live experiments (1 seed + %d AL-selected)\n", calls, len(res.Records))
	fmt.Println("iter  amsd     cum_cost_s")
	for _, rec := range res.Records {
		fmt.Printf("%4d  %7.4f  %9.3f\n", rec.Iter, rec.AMSD, rec.CumCost)
	}

	// The learned model predicts runtime for configurations never run.
	fmt.Println("\nlearned model predictions (log10 seconds):")
	for _, d := range []int{15, 31, 63} {
		size := float64(d) * float64(d) * float64(d)
		p := res.Final.Predict([]float64{math.Log10(size), float64(maxWorkers)})
		fmt.Printf("  size=%7.0f workers=%d: %.3f ± %.3f\n", size, maxWorkers, p.Mean, 2*p.SD)
	}

	// The obs digest shows the modelling overhead next to the live
	// experiment time (al.experiment spans); see OBSERVABILITY.md.
	fmt.Println()
	fmt.Println(obs.Brief())
}
