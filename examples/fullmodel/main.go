// Fullmodel builds one performance model across ALL of Table I's
// controlled variables at once — log problem size, process count, and CPU
// frequency — using an ARD (automatic relevance determination) kernel on
// the complete poisson1 slice of the Performance dataset, via the sparse
// inducing-point GP so the ~1000-job fit stays fast.
//
// The fitted per-dimension length scales read off which variables the
// runtime actually depends on: short length scale = relevant dimension.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro"
	"repro/internal/gp"
	"repro/internal/kernel"
	"repro/internal/stats"
)

func main() {
	ds, err := repro.GeneratePerformanceDataset(1)
	if err != nil {
		log.Fatal(err)
	}
	sub := ds.WhereTag(repro.TagOperator, "poisson1")
	if err := sub.LogVar(repro.VarSize); err != nil {
		log.Fatal(err)
	}
	if err := sub.LogResp(repro.RespRuntime); err != nil {
		log.Fatal(err)
	}
	sub = sub.Project(repro.VarSize, repro.VarNP, repro.VarFreq)
	fmt.Printf("modeling %d poisson1 jobs over (log size, NP, freq)\n", sub.Len())

	// Split train/test.
	rng := rand.New(rand.NewSource(9))
	perm := rng.Perm(sub.Len())
	nTest := sub.Len() / 5
	testRows, trainRows := perm[:nTest], perm[nTest:]

	// Fit ARD hyperparameters on a dense subsample, then deploy them in
	// a sparse fit over all training jobs.
	nHyper := 250
	if nHyper > len(trainRows) {
		nHyper = len(trainRows)
	}
	hx := sub.Matrix(trainRows[:nHyper])
	hy := sub.RespVec(repro.RespRuntime, trainRows[:nHyper])
	ard := kernel.NewARD([]float64{1, 30, 1}, 1)
	dense, err := gp.Fit(gp.Config{
		Kernel: ard, NoiseInit: 0.1, NoiseFloor: 0.02,
		Optimize: true, Restarts: 3, Normalize: true,
	}, hx, hy, rng)
	if err != nil {
		log.Fatal(err)
	}
	names := []string{"log10(size)", "NP", "freq(GHz)"}
	fmt.Println("\nARD length scales (short = relevant):")
	for i, l := range ard.LengthScales() {
		fmt.Printf("  %-12s l = %.3g\n", names[i], l)
	}
	fmt.Printf("  noise σn = %.3f, LML = %.1f (on %d hyper-fit jobs)\n",
		dense.Noise(), dense.LML(), nHyper)

	sparse, err := gp.FitSparse(gp.SparseConfig{
		Kernel: ard, Noise: dense.Noise(), Inducing: 96, Normalize: true,
	}, sub.Matrix(trainRows), sub.RespVec(repro.RespRuntime, trainRows), rng)
	if err != nil {
		log.Fatal(err)
	}

	testX := sub.Matrix(testRows)
	testY := sub.RespVec(repro.RespRuntime, testRows)
	rmse := stats.RMSE(gp.Means(sparse.PredictBatch(testX)), testY)
	fmt.Printf("\nsparse model (m=%d inducing) over %d jobs: held-out RMSE %.4f in log10 seconds\n",
		sparse.NumInducing(), len(trainRows), rmse)
	fmt.Printf("(≈ %.0f%% median multiplicative error on runtime)\n",
		100*(math.Pow(10, rmse)-1))

	// Strong-scaling prediction: runtime vs NP at a fixed large size.
	fmt.Println("\npredicted strong scaling at size 1e8, 2.4 GHz:")
	for _, np := range []float64{1, 4, 16, 64, 128} {
		p := sparse.Predict([]float64{8, np, 2.4})
		fmt.Printf("  NP=%3.0f: %7.2f s (±%.0f%%)\n",
			np, math.Pow(10, p.Mean), 100*(math.Pow(10, 2*p.SD)-1))
	}
}
