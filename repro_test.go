package repro

import (
	"math"
	"math/rand"
	"testing"
)

// End-to-end through the public façade: dataset → subset → partition →
// AL → prediction. This is the README quick-start, asserted.
func TestEndToEndQuickstart(t *testing.T) {
	ds, err := GeneratePerformanceDataset(1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 3246 {
		t.Fatalf("dataset has %d jobs", ds.Len())
	}
	sub, err := StudySubset2D(ds)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() < 80 {
		t.Fatalf("subset too small: %d", sub.Len())
	}
	rng := rand.New(rand.NewSource(7))
	part, err := NewPartition(sub, PartitionConfig{NInitial: 1, TestFrac: 0.2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunAL(sub, part, LoopConfig{
		Response:     RespRuntime,
		Strategy:     VarianceReduction{},
		Iterations:   15,
		NoiseFloor:   0.1,
		Restarts:     1,
		AllowRevisit: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Records[len(res.Records)-1]
	if !(last.RMSE < res.Records[0].RMSE) {
		t.Fatalf("AL did not reduce RMSE: %g -> %g", res.Records[0].RMSE, last.RMSE)
	}
	if last.RMSE > 0.3 {
		t.Fatalf("final RMSE %g too high", last.RMSE)
	}
	p := res.Final.Predict([]float64{7.0, 2.1})
	lo, hi := p.CI(2)
	if !(lo < p.Mean && p.Mean < hi) {
		t.Fatal("CI does not bracket the mean")
	}
	// log10 runtime of a 1e7-dof job at 2.1 GHz on 32 cores must be a
	// sane magnitude (between 1 ms and 100 s).
	if p.Mean < -3 || p.Mean > 2 {
		t.Fatalf("implausible prediction %g", p.Mean)
	}
}

// The two strategy endpoints must behave per the paper: CE accumulates
// far less cost for the same number of iterations.
func TestEndToEndStrategyCost(t *testing.T) {
	ds, err := GeneratePerformanceDataset(1)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := StudySubset2D(ds)
	if err != nil {
		t.Fatal(err)
	}
	run := func(s Strategy) float64 {
		results, err := RunALBatch(sub, BatchConfig{
			Loop: LoopConfig{
				Response:        RespRuntime,
				Strategy:        s,
				Iterations:      10,
				NoiseFloor:      0.1,
				Restarts:        1,
				ReoptimizeEvery: 5,
				AllowRevisit:    true,
			},
			Partition: PartitionConfig{NInitial: 1, TestFrac: 0.2},
			Runs:      3,
			Seed:      5,
		})
		if err != nil {
			t.Fatal(err)
		}
		c := AverageCurves(results)
		return c.CumCost[len(c.CumCost)-1]
	}
	vr, ce := run(VarianceReduction{}), run(CostEfficiency{})
	if ce >= vr {
		t.Fatalf("CE cost %g should be below VR %g", ce, vr)
	}
}

func TestEndToEndOnline(t *testing.T) {
	grid := NewDenseFromRows([][]float64{{0}, {1}, {2}, {3}, {4}})
	calls := 0
	oracle := OracleFunc(func(x []float64) (float64, float64, error) {
		calls++
		return x[0] * x[0], 1, nil
	})
	res, err := RunOnlineAL(grid, []int{2}, oracle, LoopConfig{
		Response:   "y",
		Strategy:   VarianceReduction{},
		Iterations: 5,
		NoiseFloor: 0.05,
		Restarts:   3,
		Normalize:  true, // raw y spans 0..16 — normalize inside the GP
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if calls != 6 {
		t.Fatalf("oracle called %d times", calls)
	}
	p := res.Final.Predict([]float64{1.5})
	if math.Abs(p.Mean-2.25) > 0.5 {
		t.Fatalf("online model predicts %g at 1.5, want ≈2.25", p.Mean)
	}
}

func TestEndToEndGPFacade(t *testing.T) {
	x := NewDenseFromRows([][]float64{{0}, {1}, {2}, {3}})
	y := []float64{0, 1, 4, 9}
	g, err := FitGP(GPConfig{
		Kernel:    NewRBF(1, 1),
		NoiseInit: 0.05,
		Optimize:  true,
		Restarts:  2,
	}, x, y, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	p := g.Predict([]float64{1.5})
	if math.Abs(p.Mean-2.25) > 0.5 {
		t.Fatalf("GP predicts %g at 1.5", p.Mean)
	}
	// Matern facade constructor too.
	g2, err := FitGP(GPConfig{Kernel: NewMatern52(1, 1), NoiseInit: 0.05}, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumTrain() != 4 {
		t.Fatal("NumTrain")
	}
}

func TestEndToEndTradeoffFacade(t *testing.T) {
	base := []TradeoffPoint{{Cost: 1, RMSE: 1}, {Cost: 10, RMSE: 0.5}}
	cand := []TradeoffPoint{{Cost: 1, RMSE: 1.2}, {Cost: 10, RMSE: 0.3}}
	cmp := CompareTradeoffs(base, cand)
	if math.IsNaN(cmp.CrossoverCost) {
		t.Fatal("no crossover")
	}
}

func TestPowerDatasetFacade(t *testing.T) {
	ds, err := GeneratePowerDataset(1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 640 {
		t.Fatalf("power dataset has %d jobs", ds.Len())
	}
	for _, e := range ds.Resp(RespEnergy) {
		if e <= 0 {
			t.Fatal("non-positive energy")
		}
	}
}
