package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzReadCSV hardens the CSV reader against malformed input: it must
// return an error or a valid dataset, never panic, and everything it
// accepts must survive a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,resp:y,cost\n1,2,3\n")
	f.Add("tag:op,a,resp:y,cost\npoisson1,1,2,3\n")
	f.Add("a,resp:y,cost\n1,2\n")       // short row
	f.Add("a,resp:y,cost\nx,2,3\n")     // bad number
	f.Add("cost\n1\n")                  // no variables
	f.Add("")                           // empty
	f.Add("a,b\n\"quoted,comma\",2\n")  // quoting
	f.Add("a,resp:y,cost\n1e308,2,3\n") // extreme value
	f.Add("a,resp:y,cost\n1,NaN,3\n")   // non-finite response
	f.Add("a,resp:y,cost\n1,+Inf,3\n")
	f.Add("a,resp:y,cost\n1,-inf,3\n")
	f.Add("a,resp:y,cost\n1,1e309,3\n") // overflows to +Inf
	f.Fuzz(func(t *testing.T, input string) {
		d, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return // rejecting malformed input is fine
		}
		// Ingestion must never admit a non-finite response.
		for _, name := range d.RespNames() {
			for i := 0; i < d.Len(); i++ {
				if y := d.RespAt(name, i); math.IsNaN(y) || math.IsInf(y, 0) {
					t.Fatalf("accepted non-finite response %g in %q row %d", y, name, i)
				}
			}
		}
		// Accepted input must produce an internally consistent dataset
		// that round-trips.
		var buf bytes.Buffer
		if err := d.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted dataset failed to write: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.Len() != d.Len() {
			t.Fatalf("round trip row count %d != %d", back.Len(), d.Len())
		}
	})
}
