package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/hpgmg"
	"repro/internal/multigrid"
)

func sample(t *testing.T) *Dataset {
	t.Helper()
	d := New([]string{"size", "np"}, []string{"runtime"})
	rows := []struct {
		x    []float64
		y    []float64
		tag  string
		cost float64
	}{
		{[]float64{100, 1}, []float64{1.5}, "poisson1", 1.5},
		{[]float64{200, 2}, []float64{2.5}, "poisson1", 5.0},
		{[]float64{100, 4}, []float64{0.5}, "poisson2", 2.0},
		{[]float64{400, 1}, []float64{6.0}, "poisson2", 6.0},
	}
	for _, r := range rows {
		if err := d.AddRow(r.x, r.y, map[string]string{"operator": r.tag}, r.cost); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestAddRowAndAccessors(t *testing.T) {
	d := sample(t)
	if d.Len() != 4 {
		t.Fatalf("Len = %d", d.Len())
	}
	if got := d.Var("size"); got[3] != 400 {
		t.Fatalf("Var(size) = %v", got)
	}
	if got := d.Resp("runtime"); got[1] != 2.5 {
		t.Fatalf("Resp = %v", got)
	}
	if got := d.Tag("operator"); got[2] != "poisson2" {
		t.Fatalf("Tag = %v", got)
	}
	if got := d.Cost(); got[1] != 5.0 {
		t.Fatalf("Cost = %v", got)
	}
	if got := d.Row(1); got[0] != 200 || got[1] != 2 {
		t.Fatalf("Row = %v", got)
	}
	if d.RespAt("runtime", 3) != 6.0 {
		t.Fatal("RespAt")
	}
	if d.CostAt(0) != 1.5 {
		t.Fatal("CostAt")
	}
}

func TestAddRowValidation(t *testing.T) {
	d := New([]string{"a"}, []string{"y"})
	if err := d.AddRow([]float64{1, 2}, []float64{1}, nil, 0); err == nil {
		t.Fatal("expected var count error")
	}
	if err := d.AddRow([]float64{1}, nil, nil, 0); err == nil {
		t.Fatal("expected resp count error")
	}
}

func TestLateTagBackfills(t *testing.T) {
	d := New([]string{"a"}, []string{"y"})
	d.AddRow([]float64{1}, []float64{1}, nil, 0)
	d.AddRow([]float64{2}, []float64{2}, map[string]string{"op": "x"}, 0)
	col := d.Tag("op")
	if col[0] != "" || col[1] != "x" {
		t.Fatalf("Tag backfill = %v", col)
	}
}

func TestWhereTagAndVar(t *testing.T) {
	d := sample(t)
	p1 := d.WhereTag("operator", "poisson1")
	if p1.Len() != 2 {
		t.Fatalf("WhereTag len = %d", p1.Len())
	}
	s100 := d.WhereVar("size", 100)
	if s100.Len() != 2 {
		t.Fatalf("WhereVar len = %d", s100.Len())
	}
	both := d.WhereTag("operator", "poisson1").WhereVar("size", 100)
	if both.Len() != 1 || both.Resp("runtime")[0] != 1.5 {
		t.Fatal("chained filters wrong")
	}
}

func TestWhereVarBetween(t *testing.T) {
	d := sample(t)
	mid := d.WhereVarBetween("size", 150, 400)
	if mid.Len() != 2 { // sizes 200 and 400
		t.Fatalf("len = %d", mid.Len())
	}
	if got := d.WhereVarBetween("size", 1000, 2000).Len(); got != 0 {
		t.Fatalf("empty range returned %d rows", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown variable")
		}
	}()
	d.WhereVarBetween("nope", 0, 1)
}

func TestProject(t *testing.T) {
	d := sample(t)
	p := d.Project("np")
	if len(p.VarNames()) != 1 || p.VarNames()[0] != "np" {
		t.Fatalf("VarNames = %v", p.VarNames())
	}
	if p.Len() != 4 || p.Var("np")[2] != 4 {
		t.Fatal("Project lost rows")
	}
	// Responses, tags and cost preserved.
	if p.Resp("runtime")[3] != 6.0 || p.Tag("operator")[0] != "poisson1" || p.Cost()[1] != 5.0 {
		t.Fatal("Project dropped non-var columns")
	}
}

func TestLogTransforms(t *testing.T) {
	d := sample(t)
	if err := d.LogVar("size"); err != nil {
		t.Fatal(err)
	}
	if got := d.Var("size")[0]; math.Abs(got-2) > 1e-12 {
		t.Fatalf("log10(100) = %g", got)
	}
	if err := d.LogResp("runtime"); err != nil {
		t.Fatal(err)
	}
	if got := d.Resp("runtime")[3]; math.Abs(got-math.Log10(6)) > 1e-12 {
		t.Fatalf("log10(6) = %g", got)
	}
	if err := d.LogVar("nope"); err == nil {
		t.Fatal("expected unknown-variable error")
	}
	bad := New([]string{"a"}, []string{"y"})
	bad.AddRow([]float64{-1}, []float64{1}, nil, 0)
	if err := bad.LogVar("a"); err == nil {
		t.Fatal("expected non-positive error")
	}
}

func TestMatrixAndRespVec(t *testing.T) {
	d := sample(t)
	m := d.Matrix(nil)
	if m.Rows() != 4 || m.Cols() != 2 {
		t.Fatalf("Matrix %dx%d", m.Rows(), m.Cols())
	}
	m2 := d.Matrix([]int{3, 0})
	if m2.At(0, 0) != 400 || m2.At(1, 0) != 100 {
		t.Fatal("row selection wrong")
	}
	y := d.RespVec("runtime", []int{2})
	if len(y) != 1 || y[0] != 0.5 {
		t.Fatalf("RespVec = %v", y)
	}
	if len(d.RespVec("runtime", nil)) != 4 {
		t.Fatal("nil rows should mean all")
	}
}

func TestRandomPartition(t *testing.T) {
	d := sample(t)
	// Extend to a workable size.
	for i := 0; i < 46; i++ {
		d.AddRow([]float64{float64(i), 1}, []float64{1}, map[string]string{"operator": "poisson1"}, 1)
	}
	rng := rand.New(rand.NewSource(1))
	p, err := RandomPartition(d, PartitionConfig{NInitial: 1, TestFrac: 0.2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Initial) != 1 {
		t.Fatalf("Initial = %d", len(p.Initial))
	}
	wantTest := int(float64(d.Len()-1) * 0.2)
	if len(p.Test) != wantTest {
		t.Fatalf("Test = %d, want %d", len(p.Test), wantTest)
	}
	if len(p.Initial)+len(p.Active)+len(p.Test) != d.Len() {
		t.Fatal("partition does not cover dataset")
	}
	if err := p.Validate(d); err != nil {
		t.Fatal(err)
	}
}

func TestRandomPartitionTooSmall(t *testing.T) {
	d := New([]string{"a"}, []string{"y"})
	d.AddRow([]float64{1}, []float64{1}, nil, 0)
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomPartition(d, PartitionConfig{NInitial: 1, TestFrac: 0.2}, rng); err == nil {
		t.Fatal("expected error for too-small dataset")
	}
}

func TestPartitionValidateCatchesOverlap(t *testing.T) {
	d := sample(t)
	p := Partition{Initial: []int{0}, Active: []int{0, 1}, Test: []int{2}}
	if err := p.Validate(d); err == nil {
		t.Fatal("expected overlap error")
	}
	p = Partition{Initial: []int{99}}
	if err := p.Validate(d); err == nil {
		t.Fatal("expected range error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := sample(t)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() {
		t.Fatalf("round trip %d rows, want %d", back.Len(), d.Len())
	}
	for i := 0; i < d.Len(); i++ {
		a, b := d.Row(i), back.Row(i)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("row %d var %d: %g vs %g", i, j, a[j], b[j])
			}
		}
		if d.RespAt("runtime", i) != back.RespAt("runtime", i) {
			t.Fatalf("row %d response mismatch", i)
		}
		if d.CostAt(i) != back.CostAt(i) {
			t.Fatalf("row %d cost mismatch", i)
		}
	}
	if back.Tag("operator")[2] != "poisson2" {
		t.Fatal("tag lost in round trip")
	}
}

func TestReadCSVBadCell(t *testing.T) {
	in := bytes.NewBufferString("a,resp:y,cost\nnotanumber,1,1\n")
	if _, err := ReadCSV(in); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestFromPerformanceAndPower(t *testing.T) {
	results := []hpgmg.Result{
		{
			Config:   hpgmg.Config{Op: multigrid.Poisson1, GlobalSize: 1000, NP: 4, FreqGHz: 2.4},
			RuntimeS: 2.0, EnergyJ: 500, EnergyOK: true,
		},
		{
			Config:   hpgmg.Config{Op: multigrid.Poisson2, GlobalSize: 8000, NP: 8, FreqGHz: 1.2},
			RuntimeS: 10.0, EnergyJ: 4000, EnergyOK: true,
		},
	}
	perf, err := FromPerformance(results)
	if err != nil {
		t.Fatal(err)
	}
	if perf.Len() != 2 || perf.RespAt(RespRuntime, 1) != 10 {
		t.Fatal("FromPerformance wrong")
	}
	if perf.CostAt(0) != 8.0 { // 2 s × 4 cores
		t.Fatalf("cost = %g", perf.CostAt(0))
	}
	if perf.Tag(TagOperator)[1] != "poisson2" {
		t.Fatal("operator tag wrong")
	}

	pow, err := FromPower(results)
	if err != nil {
		t.Fatal(err)
	}
	if pow.RespAt(RespEnergy, 0) != 500 {
		t.Fatal("FromPower energy wrong")
	}
	results[0].EnergyOK = false
	if _, err := FromPower(results); err == nil {
		t.Fatal("expected error for unusable energy")
	}
}

// Property: Filter with an always-true predicate is identity on length
// and content; always-false yields an empty dataset.
func TestFilterProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := New([]string{"x"}, []string{"y"})
		n := 1 + rng.Intn(30)
		for i := 0; i < n; i++ {
			d.AddRow([]float64{rng.NormFloat64()}, []float64{rng.NormFloat64()}, nil, rng.Float64())
		}
		all := d.Filter(func(int) bool { return true })
		none := d.Filter(func(int) bool { return false })
		if all.Len() != n || none.Len() != 0 {
			return false
		}
		for i := 0; i < n; i++ {
			if all.Row(i)[0] != d.Row(i)[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: partitions from the same seed are identical; different seeds
// differ (almost surely) — the mechanism behind the paper's batch runs.
func TestPartitionDeterminismProperty(t *testing.T) {
	d := New([]string{"x"}, []string{"y"})
	for i := 0; i < 100; i++ {
		d.AddRow([]float64{float64(i)}, []float64{0}, nil, 0)
	}
	f := func(seed int64) bool {
		p1, err1 := RandomPartition(d, PartitionConfig{}, rand.New(rand.NewSource(seed)))
		p2, err2 := RandomPartition(d, PartitionConfig{}, rand.New(rand.NewSource(seed)))
		if err1 != nil || err2 != nil {
			return false
		}
		if len(p1.Active) != len(p2.Active) {
			return false
		}
		for i := range p1.Active {
			if p1.Active[i] != p2.Active[i] {
				return false
			}
		}
		return p1.Initial[0] == p2.Initial[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// A non-finite response cell must be rejected at load time with an
// error that names the offending data row and column.
func TestReadCSVRejectsNonFiniteResponse(t *testing.T) {
	for _, cell := range []string{"NaN", "Inf", "+Inf", "-Inf", "nan", "1e309"} {
		in := "a,resp:y,cost\n1,2,3\n4," + cell + ",6\n"
		_, err := ReadCSV(strings.NewReader(in))
		if err == nil {
			t.Fatalf("ReadCSV accepted response %q", cell)
		}
		msg := err.Error()
		if !strings.Contains(msg, `column "y"`) || !strings.Contains(msg, "row 2") {
			t.Fatalf("error for %q lacks row/column: %v", cell, err)
		}
	}
	// Non-finite variables and costs are untouched by this guard only
	// if they parse; the finite happy path still loads.
	d, err := ReadCSV(strings.NewReader("a,resp:y,cost\n1,2,3\n"))
	if err != nil || d.Len() != 1 {
		t.Fatalf("finite CSV rejected: %v", err)
	}
}
