// Package dataset provides the tabular container the Active Learning
// pipeline consumes: a design matrix of controlled variables, one or more
// response columns, optional categorical tags (e.g. the HPGMG operator),
// per-job costs, log transforms, subsetting, and the Initial/Active/Test
// partitioning scheme of §IV.
package dataset

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// Dataset is a column-oriented table of experiments. Rows are jobs;
// Vars are numeric controlled variables; Resps are numeric responses;
// Tags are categorical attributes; Cost is the per-job experiment cost
// (core-seconds in this study).
type Dataset struct {
	varNames  []string
	respNames []string
	vars      [][]float64 // column major: vars[v][row]
	resps     [][]float64
	tags      map[string][]string
	cost      []float64
	n         int
}

// New creates an empty dataset with the given variable and response
// column names.
func New(varNames, respNames []string) *Dataset {
	d := &Dataset{
		varNames:  append([]string(nil), varNames...),
		respNames: append([]string(nil), respNames...),
		vars:      make([][]float64, len(varNames)),
		resps:     make([][]float64, len(respNames)),
		tags:      map[string][]string{},
	}
	return d
}

// Len returns the number of rows.
func (d *Dataset) Len() int { return d.n }

// VarNames returns the controlled-variable column names.
func (d *Dataset) VarNames() []string { return append([]string(nil), d.varNames...) }

// RespNames returns the response column names.
func (d *Dataset) RespNames() []string { return append([]string(nil), d.respNames...) }

// TagNames returns the categorical column names in unspecified order.
func (d *Dataset) TagNames() []string {
	out := make([]string, 0, len(d.tags))
	for k := range d.tags {
		out = append(out, k)
	}
	return out
}

// AddRow appends one job. x and y must match the column counts; tags may
// be nil; cost is the job's experiment cost.
func (d *Dataset) AddRow(x, y []float64, tags map[string]string, cost float64) error {
	if len(x) != len(d.varNames) {
		return fmt.Errorf("dataset: row has %d vars, want %d", len(x), len(d.varNames))
	}
	if len(y) != len(d.respNames) {
		return fmt.Errorf("dataset: row has %d responses, want %d", len(y), len(d.respNames))
	}
	for i, v := range x {
		d.vars[i] = append(d.vars[i], v)
	}
	for i, v := range y {
		d.resps[i] = append(d.resps[i], v)
	}
	d.cost = append(d.cost, cost)
	for k := range d.tags {
		d.tags[k] = append(d.tags[k], tags[k])
	}
	for k, v := range tags {
		if _, ok := d.tags[k]; !ok {
			// New tag column: backfill earlier rows with "".
			col := make([]string, d.n, d.n+1)
			d.tags[k] = append(col, v)
		}
	}
	d.n++
	return nil
}

func (d *Dataset) varIndex(name string) int {
	for i, v := range d.varNames {
		if v == name {
			return i
		}
	}
	return -1
}

func (d *Dataset) respIndex(name string) int {
	for i, v := range d.respNames {
		if v == name {
			return i
		}
	}
	return -1
}

// Var returns a copy of the named variable column.
func (d *Dataset) Var(name string) []float64 {
	i := d.varIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("dataset: no variable %q", name))
	}
	return append([]float64(nil), d.vars[i]...)
}

// Resp returns a copy of the named response column.
func (d *Dataset) Resp(name string) []float64 {
	i := d.respIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("dataset: no response %q", name))
	}
	return append([]float64(nil), d.resps[i]...)
}

// Tag returns a copy of the named tag column.
func (d *Dataset) Tag(name string) []string {
	col, ok := d.tags[name]
	if !ok {
		panic(fmt.Sprintf("dataset: no tag %q", name))
	}
	return append([]string(nil), col...)
}

// Cost returns a copy of the per-job cost column.
func (d *Dataset) Cost() []float64 { return append([]float64(nil), d.cost...) }

// Row returns the variable values of row i.
func (d *Dataset) Row(i int) []float64 {
	out := make([]float64, len(d.varNames))
	for v := range d.vars {
		out[v] = d.vars[v][i]
	}
	return out
}

// RespAt returns response column r (by name) at row i.
func (d *Dataset) RespAt(name string, i int) float64 {
	r := d.respIndex(name)
	if r < 0 {
		panic(fmt.Sprintf("dataset: no response %q", name))
	}
	return d.resps[r][i]
}

// CostAt returns the cost of row i.
func (d *Dataset) CostAt(i int) float64 { return d.cost[i] }

// Filter returns a new dataset with the rows for which keep returns true.
func (d *Dataset) Filter(keep func(row int) bool) *Dataset {
	out := New(d.varNames, d.respNames)
	for k := range d.tags {
		out.tags[k] = nil
	}
	for i := 0; i < d.n; i++ {
		if !keep(i) {
			continue
		}
		for v := range d.vars {
			out.vars[v] = append(out.vars[v], d.vars[v][i])
		}
		for r := range d.resps {
			out.resps[r] = append(out.resps[r], d.resps[r][i])
		}
		for k := range d.tags {
			out.tags[k] = append(out.tags[k], d.tags[k][i])
		}
		out.cost = append(out.cost, d.cost[i])
		out.n++
	}
	return out
}

// WhereTag returns the subset whose tag column equals value.
func (d *Dataset) WhereTag(name, value string) *Dataset {
	col, ok := d.tags[name]
	if !ok {
		panic(fmt.Sprintf("dataset: no tag %q", name))
	}
	return d.Filter(func(i int) bool { return col[i] == value })
}

// WhereVar returns the subset whose variable column equals value (exact).
func (d *Dataset) WhereVar(name string, value float64) *Dataset {
	i := d.varIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("dataset: no variable %q", name))
	}
	col := d.vars[i]
	return d.Filter(func(r int) bool { return col[r] == value })
}

// WhereVarBetween returns the subset whose variable column lies in
// [lo, hi] inclusive.
func (d *Dataset) WhereVarBetween(name string, lo, hi float64) *Dataset {
	i := d.varIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("dataset: no variable %q", name))
	}
	col := d.vars[i]
	return d.Filter(func(r int) bool { return col[r] >= lo && col[r] <= hi })
}

// Project returns a dataset containing only the named variable columns
// (responses, tags, and cost are preserved). Used to build the 1-D and
// 2-D study subsets of §V-B.
func (d *Dataset) Project(keepVars ...string) *Dataset {
	idx := make([]int, len(keepVars))
	for i, name := range keepVars {
		idx[i] = d.varIndex(name)
		if idx[i] < 0 {
			panic(fmt.Sprintf("dataset: no variable %q", name))
		}
	}
	out := New(keepVars, d.respNames)
	for i, v := range idx {
		out.vars[i] = append([]float64(nil), d.vars[v]...)
	}
	for r := range d.resps {
		out.resps[r] = append([]float64(nil), d.resps[r]...)
	}
	for k, col := range d.tags {
		out.tags[k] = append([]string(nil), col...)
	}
	out.cost = append([]float64(nil), d.cost...)
	out.n = d.n
	return out
}

// LogVar replaces the named variable column with log10(values) in place.
// Non-positive entries are an error.
func (d *Dataset) LogVar(name string) error {
	i := d.varIndex(name)
	if i < 0 {
		return fmt.Errorf("dataset: no variable %q", name)
	}
	return logColumn(d.vars[i], name)
}

// LogResp replaces the named response column with log10(values) in place.
func (d *Dataset) LogResp(name string) error {
	i := d.respIndex(name)
	if i < 0 {
		return fmt.Errorf("dataset: no response %q", name)
	}
	return logColumn(d.resps[i], name)
}

func logColumn(col []float64, name string) error {
	for _, v := range col {
		if v <= 0 {
			return fmt.Errorf("dataset: log transform of %q hits non-positive value %g", name, v)
		}
	}
	for i, v := range col {
		col[i] = math.Log10(v)
	}
	return nil
}

// Matrix returns the design matrix over the given rows (all rows when
// rows is nil), one job per output row.
func (d *Dataset) Matrix(rows []int) *mat.Dense {
	if rows == nil {
		rows = make([]int, d.n)
		for i := range rows {
			rows[i] = i
		}
	}
	m := mat.New(len(rows), len(d.varNames))
	for r, idx := range rows {
		for v := range d.vars {
			m.Set(r, v, d.vars[v][idx])
		}
	}
	return m
}

// RespVec returns the named response over the given rows (all rows when
// rows is nil).
func (d *Dataset) RespVec(name string, rows []int) []float64 {
	ri := d.respIndex(name)
	if ri < 0 {
		panic(fmt.Sprintf("dataset: no response %q", name))
	}
	if rows == nil {
		return append([]float64(nil), d.resps[ri]...)
	}
	out := make([]float64, len(rows))
	for i, idx := range rows {
		out[i] = d.resps[ri][idx]
	}
	return out
}
