package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// WriteCSV emits the dataset with a header row. Column order: tags
// (sorted by name), variables, responses, then "cost".
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	tagNames := d.TagNames()
	sort.Strings(tagNames)

	header := make([]string, 0, len(tagNames)+len(d.varNames)+len(d.respNames)+1)
	for _, t := range tagNames {
		header = append(header, "tag:"+t)
	}
	header = append(header, d.varNames...)
	for _, r := range d.respNames {
		header = append(header, "resp:"+r)
	}
	header = append(header, "cost")
	if err := cw.Write(header); err != nil {
		return err
	}

	row := make([]string, len(header))
	for i := 0; i < d.n; i++ {
		c := 0
		for _, t := range tagNames {
			row[c] = d.tags[t][i]
			c++
		}
		for v := range d.vars {
			row[c] = strconv.FormatFloat(d.vars[v][i], 'g', -1, 64)
			c++
		}
		for r := range d.resps {
			row[c] = strconv.FormatFloat(d.resps[r][i], 'g', -1, 64)
			c++
		}
		row[c] = strconv.FormatFloat(d.cost[i], 'g', -1, 64)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV. Response cells must be
// finite: a NaN or ±Inf response (e.g. from a corrupted measurement
// logger) is rejected with an error naming the offending data row and
// column, so garbage is stopped at ingestion instead of surfacing later
// as a failed Cholesky factorization deep inside the GP.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	var tagNames, varNames, respNames []string
	costIdx := -1
	type colKind int
	const (
		kindTag colKind = iota
		kindVar
		kindResp
		kindCost
	)
	kinds := make([]colKind, len(header))
	// Layout convention: tags (prefixed), then vars, then resps, then
	// cost last. Columns between tags and "cost" split var/resp by a
	// "resp:" prefix when present; otherwise the caller-facing writer
	// convention is unknown, so mark them vars until a resp: appears.
	for i, h := range header {
		switch {
		case len(h) > 4 && h[:4] == "tag:":
			tagNames = append(tagNames, h[4:])
			kinds[i] = kindTag
		case h == "cost":
			costIdx = i
			kinds[i] = kindCost
		case len(h) > 5 && h[:5] == "resp:":
			respNames = append(respNames, h[5:])
			kinds[i] = kindResp
		default:
			varNames = append(varNames, h)
			kinds[i] = kindVar
		}
	}
	_ = costIdx
	d := New(varNames, respNames)
	for _, t := range tagNames {
		d.tags[t] = nil
	}
	for row := 1; ; row++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV row: %w", err)
		}
		x := make([]float64, 0, len(varNames))
		y := make([]float64, 0, len(respNames))
		tags := map[string]string{}
		cost := 0.0
		ti, ri, vi := 0, 0, 0
		for i, cell := range rec {
			switch kinds[i] {
			case kindTag:
				tags[tagNames[ti]] = cell
				ti++
			case kindVar:
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: bad numeric cell %q in column %q at data row %d: %w",
						cell, varNames[vi], row, err)
				}
				x = append(x, v)
				vi++
			case kindResp:
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: bad numeric cell %q in column %q at data row %d: %w",
						cell, respNames[ri], row, err)
				}
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return nil, fmt.Errorf("dataset: non-finite response %q in column %q at data row %d",
						cell, respNames[ri], row)
				}
				y = append(y, v)
				ri++
			case kindCost:
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: bad cost cell %q at data row %d: %w", cell, row, err)
				}
				cost = v
			}
		}
		if err := d.AddRow(x, y, tags, cost); err != nil {
			return nil, err
		}
	}
	return d, nil
}
