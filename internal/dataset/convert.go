package dataset

import (
	"fmt"

	"repro/internal/hpgmg"
)

// Column names used by the HPGMG-derived datasets (Table I).
const (
	VarSize = "global_problem_size"
	VarNP   = "np"
	VarFreq = "cpu_frequency_ghz"

	RespRuntime = "runtime_s"
	RespEnergy  = "energy_j"

	TagOperator = "operator"
)

// FromPerformance builds the Performance dataset from benchmark results:
// variables (size, NP, frequency), response runtime, tag operator, and
// cost in core-seconds.
func FromPerformance(results []hpgmg.Result) (*Dataset, error) {
	d := New([]string{VarSize, VarNP, VarFreq}, []string{RespRuntime})
	for _, r := range results {
		err := d.AddRow(
			[]float64{float64(r.GlobalSize), float64(r.NP), r.FreqGHz},
			[]float64{r.RuntimeS},
			map[string]string{TagOperator: r.Op.String()},
			r.CoreSeconds(),
		)
		if err != nil {
			return nil, fmt.Errorf("dataset: building performance dataset: %w", err)
		}
	}
	return d, nil
}

// FromPower builds the Power dataset: same variables, responses runtime
// and energy. Results lacking a usable energy estimate are rejected —
// they should have been excluded upstream.
func FromPower(results []hpgmg.Result) (*Dataset, error) {
	d := New([]string{VarSize, VarNP, VarFreq}, []string{RespRuntime, RespEnergy})
	for _, r := range results {
		if !r.EnergyOK {
			return nil, fmt.Errorf("dataset: power dataset job %v has no usable energy estimate", r.Config)
		}
		err := d.AddRow(
			[]float64{float64(r.GlobalSize), float64(r.NP), r.FreqGHz},
			[]float64{r.RuntimeS, r.EnergyJ},
			map[string]string{TagOperator: r.Op.String()},
			r.CoreSeconds(),
		)
		if err != nil {
			return nil, fmt.Errorf("dataset: building power dataset: %w", err)
		}
	}
	return d, nil
}
