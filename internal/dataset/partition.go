package dataset

import (
	"fmt"
	"math/rand"
)

// Partition splits a dataset's row indices into the three roles of the
// paper's prototype (§IV): Initial seeds the first regression, Active is
// the pool AL selects from one at a time, and Test measures prediction
// quality (RMSE).
type Partition struct {
	Initial []int
	Active  []int
	Test    []int
}

// PartitionConfig controls the random split.
type PartitionConfig struct {
	// NInitial is the number of seed experiments (the paper typically
	// uses 1: "an application is first run on a new platform to verify
	// correctness").
	NInitial int
	// TestFrac is the fraction of the remaining rows assigned to the
	// Test set (the paper splits Active:Test ≈ 8:2, i.e. 0.2).
	TestFrac float64
}

// RandomPartition draws a partition of d's rows using rng.
func RandomPartition(d *Dataset, cfg PartitionConfig, rng *rand.Rand) (Partition, error) {
	n := d.Len()
	if cfg.NInitial < 1 {
		cfg.NInitial = 1
	}
	if cfg.TestFrac <= 0 || cfg.TestFrac >= 1 {
		cfg.TestFrac = 0.2
	}
	nTest := int(float64(n-cfg.NInitial) * cfg.TestFrac)
	if cfg.NInitial+nTest >= n {
		return Partition{}, fmt.Errorf("dataset: %d rows cannot hold %d initial + %d test + a nonempty active set",
			n, cfg.NInitial, nTest)
	}
	perm := rng.Perm(n)
	p := Partition{
		Initial: append([]int(nil), perm[:cfg.NInitial]...),
		Test:    append([]int(nil), perm[cfg.NInitial:cfg.NInitial+nTest]...),
		Active:  append([]int(nil), perm[cfg.NInitial+nTest:]...),
	}
	return p, nil
}

// Validate checks that the partition indexes d consistently: disjoint
// sets, all indices in range.
func (p Partition) Validate(d *Dataset) error {
	seen := make(map[int]string, d.Len())
	check := func(set []int, name string) error {
		for _, i := range set {
			if i < 0 || i >= d.Len() {
				return fmt.Errorf("dataset: %s index %d out of range %d", name, i, d.Len())
			}
			if prev, dup := seen[i]; dup {
				return fmt.Errorf("dataset: index %d in both %s and %s", i, prev, name)
			}
			seen[i] = name
		}
		return nil
	}
	if err := check(p.Initial, "Initial"); err != nil {
		return err
	}
	if err := check(p.Active, "Active"); err != nil {
		return err
	}
	return check(p.Test, "Test")
}
