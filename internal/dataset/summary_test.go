package dataset

import (
	"math"
	"testing"
)

func repeatDS(t *testing.T) *Dataset {
	t.Helper()
	d := New([]string{"x"}, []string{"y"})
	rows := []struct {
		x, y float64
		op   string
	}{
		{1, 10, "a"}, {1, 12, "a"}, {1, 11, "a"}, // 3 repeats of (a, 1)
		{2, 20, "a"}, {2, 22, "a"}, // 2 repeats of (a, 2)
		{1, 30, "b"}, // distinct by tag
		{3, 40, "a"}, // singleton
	}
	for _, r := range rows {
		if err := d.AddRow([]float64{r.x}, []float64{r.y}, map[string]string{"op": r.op}, 1); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestGroupByConfig(t *testing.T) {
	d := repeatDS(t)
	groups := d.GroupByConfig()
	if len(groups) != 4 {
		t.Fatalf("%d groups, want 4", len(groups))
	}
	sizes := map[int]int{}
	for _, g := range groups {
		sizes[len(g.Rows)]++
	}
	if sizes[3] != 1 || sizes[2] != 1 || sizes[1] != 2 {
		t.Fatalf("group size histogram wrong: %v", sizes)
	}
	// Deterministic ordering.
	again := d.GroupByConfig()
	for i := range groups {
		if groups[i].Key != again[i].Key {
			t.Fatal("GroupByConfig ordering unstable")
		}
	}
}

func TestRepeatStats(t *testing.T) {
	d := repeatDS(t)
	configs, maxRep, cv := d.RepeatStats("y")
	if configs != 4 || maxRep != 3 {
		t.Fatalf("configs=%d maxRep=%d", configs, maxRep)
	}
	if math.IsNaN(cv) || cv <= 0 || cv > 0.2 {
		t.Fatalf("median CV = %g", cv)
	}
	// No repeats → NaN CV.
	single := New([]string{"x"}, []string{"y"})
	single.AddRow([]float64{1}, []float64{1}, nil, 0)
	if _, _, cv := single.RepeatStats("y"); !math.IsNaN(cv) {
		t.Fatalf("expected NaN CV, got %g", cv)
	}
}

func TestSummary(t *testing.T) {
	d := repeatDS(t)
	sum := d.Summary()
	if len(sum) != 2 { // x + resp:y
		t.Fatalf("%d summaries", len(sum))
	}
	x := sum[0]
	if x.Name != "x" || x.Min != 1 || x.Max != 3 || x.DistinctLevels != 3 {
		t.Fatalf("x summary %+v", x)
	}
	y := sum[1]
	if y.Name != "resp:y" || y.Min != 10 || y.Max != 40 {
		t.Fatalf("y summary %+v", y)
	}
	if y.Mean <= 0 || y.Median <= 0 {
		t.Fatal("summary stats missing")
	}
}
