package dataset

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stats"
)

// Group is the set of rows sharing one configuration (identical variable
// values and tags) — the repeated measurements of §V-A.
type Group struct {
	Key  string
	Rows []int
}

// GroupByConfig groups rows by their full (tags + variables)
// configuration, returning groups in deterministic key order. Groups with
// more than one row are the repeated measurements AL may revisit.
func (d *Dataset) GroupByConfig() []Group {
	tagNames := d.TagNames()
	sort.Strings(tagNames)
	byKey := map[string][]int{}
	for i := 0; i < d.n; i++ {
		var sb strings.Builder
		for _, t := range tagNames {
			sb.WriteString(d.tags[t][i])
			sb.WriteByte('|')
		}
		for v := range d.vars {
			fmt.Fprintf(&sb, "%g|", d.vars[v][i])
		}
		key := sb.String()
		byKey[key] = append(byKey[key], i)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Group, len(keys))
	for i, k := range keys {
		out[i] = Group{Key: k, Rows: byKey[k]}
	}
	return out
}

// RepeatStats summarizes measurement repetition: the number of distinct
// configurations, the maximum repeats of any configuration, and the
// median coefficient of variation of the named response across repeated
// configurations (NaN when no configuration repeats).
func (d *Dataset) RepeatStats(resp string) (configs, maxRepeats int, medianCV float64) {
	groups := d.GroupByConfig()
	configs = len(groups)
	var cvs []float64
	for _, g := range groups {
		if len(g.Rows) > maxRepeats {
			maxRepeats = len(g.Rows)
		}
		if len(g.Rows) < 2 {
			continue
		}
		ys := make([]float64, len(g.Rows))
		for i, r := range g.Rows {
			ys[i] = d.RespAt(resp, r)
		}
		if m := stats.Mean(ys); m > 0 {
			cvs = append(cvs, stats.StdDev(ys)/m)
		}
	}
	if len(cvs) == 0 {
		return configs, maxRepeats, nan()
	}
	return configs, maxRepeats, stats.Median(cvs)
}

func nan() float64 { return stats.Mean(nil) }

// ColumnSummary describes one numeric column.
type ColumnSummary struct {
	Name           string
	Min, Max       float64
	Mean, Median   float64
	DistinctLevels int
}

// Summary describes every variable and response column — the information
// Table I tabulates.
func (d *Dataset) Summary() []ColumnSummary {
	out := make([]ColumnSummary, 0, len(d.varNames)+len(d.respNames))
	describe := func(name string, col []float64) ColumnSummary {
		lo, hi := stats.MinMax(col)
		levels := map[float64]bool{}
		for _, v := range col {
			levels[v] = true
		}
		return ColumnSummary{
			Name:           name,
			Min:            lo,
			Max:            hi,
			Mean:           stats.Mean(col),
			Median:         stats.Median(col),
			DistinctLevels: len(levels),
		}
	}
	for i, name := range d.varNames {
		out = append(out, describe(name, d.vars[i]))
	}
	for i, name := range d.respNames {
		out = append(out, describe("resp:"+name, d.resps[i]))
	}
	return out
}
