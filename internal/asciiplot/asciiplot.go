// Package asciiplot renders the repository's experiment series as plain
// text: scatter plots (AL trajectories, dataset subsets), line charts
// (metric convergence), and heatmaps (LML landscapes). It exists so
// cmd/alrepro and the examples can show the paper's figures in a terminal
// without any plotting dependency.
package asciiplot

import (
	"fmt"
	"math"
	"strings"
)

// Canvas is a fixed-size character grid with data-space axes.
type Canvas struct {
	w, h                   int
	cells                  [][]rune
	xmin, xmax, ymin, ymax float64
	xlabel, ylabel, title  string
}

// NewCanvas creates a w×h plot area covering the data ranges
// [xmin, xmax] × [ymin, ymax]. Degenerate ranges are widened slightly.
func NewCanvas(w, h int, xmin, xmax, ymin, ymax float64) *Canvas {
	if w < 8 {
		w = 8
	}
	if h < 4 {
		h = 4
	}
	if xmax <= xmin {
		xmax = xmin + 1
	}
	if ymax <= ymin {
		ymax = ymin + 1
	}
	cells := make([][]rune, h)
	for i := range cells {
		cells[i] = make([]rune, w)
		for j := range cells[i] {
			cells[i][j] = ' '
		}
	}
	return &Canvas{w: w, h: h, cells: cells, xmin: xmin, xmax: xmax, ymin: ymin, ymax: ymax}
}

// SetLabels attaches a title and axis labels.
func (c *Canvas) SetLabels(title, xlabel, ylabel string) {
	c.title, c.xlabel, c.ylabel = title, xlabel, ylabel
}

// index maps a data point to a cell, reporting whether it is in range.
func (c *Canvas) index(x, y float64) (col, row int, ok bool) {
	if math.IsNaN(x) || math.IsNaN(y) {
		return 0, 0, false
	}
	fx := (x - c.xmin) / (c.xmax - c.xmin)
	fy := (y - c.ymin) / (c.ymax - c.ymin)
	if fx < 0 || fx > 1 || fy < 0 || fy > 1 {
		return 0, 0, false
	}
	col = int(fx * float64(c.w-1))
	row = c.h - 1 - int(fy*float64(c.h-1))
	return col, row, true
}

// Plot marks one data point with the given rune; out-of-range points are
// silently dropped.
func (c *Canvas) Plot(x, y float64, mark rune) {
	if col, row, ok := c.index(x, y); ok {
		c.cells[row][col] = mark
	}
}

// Scatter marks a series of points.
func (c *Canvas) Scatter(xs, ys []float64, mark rune) {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	for i := 0; i < n; i++ {
		c.Plot(xs[i], ys[i], mark)
	}
}

// Line draws a polyline through the points by marking interpolated cells.
func (c *Canvas) Line(xs, ys []float64, mark rune) {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	for i := 1; i < n; i++ {
		c.segment(xs[i-1], ys[i-1], xs[i], ys[i], mark)
	}
	if n == 1 {
		c.Plot(xs[0], ys[0], mark)
	}
}

func (c *Canvas) segment(x0, y0, x1, y1 float64, mark rune) {
	steps := c.w * 2
	for s := 0; s <= steps; s++ {
		t := float64(s) / float64(steps)
		c.Plot(x0+t*(x1-x0), y0+t*(y1-y0), mark)
	}
}

// String renders the canvas with a border, axis ranges, and labels.
func (c *Canvas) String() string {
	var sb strings.Builder
	if c.title != "" {
		sb.WriteString(c.title)
		sb.WriteByte('\n')
	}
	sb.WriteString("+" + strings.Repeat("-", c.w) + "+\n")
	for _, row := range c.cells {
		sb.WriteByte('|')
		sb.WriteString(string(row))
		sb.WriteString("|\n")
	}
	sb.WriteString("+" + strings.Repeat("-", c.w) + "+\n")
	sb.WriteString(fmt.Sprintf("x: [%.3g, %.3g] %s   y: [%.3g, %.3g] %s\n",
		c.xmin, c.xmax, c.xlabel, c.ymin, c.ymax, c.ylabel))
	return sb.String()
}

// ramp maps normalized [0,1] intensity to a density character.
var ramp = []rune(" .:-=+*#%@")

// Heatmap renders a matrix of values (rows × cols, row 0 at the top) with
// a character density ramp — the LML contour stand-in. NaNs render blank.
func Heatmap(z [][]float64, title string) string {
	if len(z) == 0 || len(z[0]) == 0 {
		return title + "\n(empty)\n"
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range z {
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	if math.IsInf(lo, 1) {
		sb.WriteString("(all values non-finite)\n")
		return sb.String()
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	for _, row := range z {
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				sb.WriteByte(' ')
				continue
			}
			f := (v - lo) / span
			idx := int(f * float64(len(ramp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			sb.WriteRune(ramp[idx])
		}
		sb.WriteByte('\n')
	}
	sb.WriteString(fmt.Sprintf("scale: '%c' = %.4g … '%c' = %.4g\n", ramp[0], lo, ramp[len(ramp)-1], hi))
	return sb.String()
}

// Series renders a quick line chart of y values against their indices —
// the convenience path for metric trajectories.
func Series(ys []float64, w, h int, title string) string {
	if len(ys) == 0 {
		return title + "\n(empty)\n"
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range ys {
		if math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if math.IsInf(lo, 1) {
		return title + "\n(all NaN)\n"
	}
	c := NewCanvas(w, h, 0, float64(len(ys)-1), lo, hi)
	c.SetLabels(title, "iteration", "")
	xs := make([]float64, len(ys))
	for i := range xs {
		xs[i] = float64(i)
	}
	c.Line(xs, ys, '*')
	return c.String()
}
