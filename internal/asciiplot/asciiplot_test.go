package asciiplot

import (
	"math"
	"strings"
	"testing"
)

func TestCanvasPlotAndRender(t *testing.T) {
	c := NewCanvas(20, 10, 0, 10, 0, 10)
	c.SetLabels("test", "x", "y")
	c.Plot(0, 0, 'A')   // bottom-left
	c.Plot(10, 10, 'B') // top-right
	c.Plot(5, 5, 'C')
	out := c.String()
	for _, m := range []string{"A", "B", "C", "test", "x: [0, 10]"} {
		if !strings.Contains(out, m) {
			t.Fatalf("render missing %q:\n%s", m, out)
		}
	}
	lines := strings.Split(out, "\n")
	// Title + top border + 10 rows + bottom border + axis line.
	if len(lines) < 14 {
		t.Fatalf("%d lines", len(lines))
	}
	// A must be on the last canvas row, B on the first.
	var firstRow, lastRow string
	for _, l := range lines {
		if strings.HasPrefix(l, "|") {
			if firstRow == "" {
				firstRow = l
			}
			lastRow = l
		}
	}
	if !strings.Contains(firstRow, "B") {
		t.Fatalf("B not in top row: %q", firstRow)
	}
	if !strings.Contains(lastRow, "A") {
		t.Fatalf("A not in bottom row: %q", lastRow)
	}
}

func TestCanvasDropsOutOfRange(t *testing.T) {
	c := NewCanvas(10, 5, 0, 1, 0, 1)
	c.Plot(5, 5, 'X')
	c.Plot(math.NaN(), 0.5, 'X')
	if strings.Contains(c.String(), "X") {
		t.Fatal("out-of-range point rendered")
	}
}

func TestCanvasDegenerateRange(t *testing.T) {
	c := NewCanvas(10, 5, 3, 3, 7, 7) // zero-width ranges get widened
	c.Plot(3, 7, '#')
	if !strings.Contains(c.String(), "#") {
		t.Fatal("point lost on degenerate range")
	}
}

func TestScatterAndLine(t *testing.T) {
	c := NewCanvas(30, 10, 0, 10, 0, 10)
	c.Scatter([]float64{1, 2, 3}, []float64{1, 2, 3}, 'o')
	if got := strings.Count(c.String(), "o"); got != 3 {
		t.Fatalf("%d scatter marks, want 3", got)
	}
	c2 := NewCanvas(30, 10, 0, 10, 0, 10)
	c2.Line([]float64{0, 10}, []float64{0, 10}, '*')
	// A diagonal across a 30-wide canvas must hit many cells.
	if got := strings.Count(c2.String(), "*"); got < 10 {
		t.Fatalf("line drew only %d cells", got)
	}
	// Single-point line degenerates to a dot.
	c3 := NewCanvas(10, 5, 0, 1, 0, 1)
	c3.Line([]float64{0.5}, []float64{0.5}, '+')
	if !strings.Contains(c3.String(), "+") {
		t.Fatal("single-point line missing")
	}
}

func TestHeatmap(t *testing.T) {
	z := [][]float64{
		{0, 0.5, 1},
		{1, 0.5, 0},
	}
	out := Heatmap(z, "lml")
	if !strings.Contains(out, "lml") || !strings.Contains(out, "scale:") {
		t.Fatalf("heatmap output malformed:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines[1]) != 3 || len(lines[2]) != 3 {
		t.Fatalf("heatmap body shape wrong:\n%s", out)
	}
	// Min renders as lightest, max as densest character.
	if lines[1][0] != ' ' || lines[1][2] != '@' {
		t.Fatalf("ramp extremes wrong: %q", lines[1])
	}
}

func TestHeatmapEdgeCases(t *testing.T) {
	if out := Heatmap(nil, "t"); !strings.Contains(out, "empty") {
		t.Fatal("nil heatmap")
	}
	if out := Heatmap([][]float64{{math.NaN()}}, "t"); !strings.Contains(out, "non-finite") {
		t.Fatal("all-NaN heatmap")
	}
	// Constant matrix must not divide by zero.
	out := Heatmap([][]float64{{2, 2}, {2, 2}}, "t")
	if !strings.Contains(out, "scale:") {
		t.Fatal("constant heatmap failed")
	}
	// NaN cells are blank within a valid map.
	out = Heatmap([][]float64{{0, math.NaN(), 1}}, "")
	if !strings.Contains(out, " ") {
		t.Fatal("NaN cell not blank")
	}
}

func TestSeries(t *testing.T) {
	ys := []float64{10, 8, 6, 4, 2, 1, 0.5, 0.4, 0.35}
	out := Series(ys, 40, 8, "rmse")
	if !strings.Contains(out, "rmse") || !strings.Contains(out, "*") {
		t.Fatalf("series malformed:\n%s", out)
	}
	if out := Series(nil, 10, 5, "t"); !strings.Contains(out, "empty") {
		t.Fatal("empty series")
	}
	if out := Series([]float64{math.NaN()}, 10, 5, "t"); !strings.Contains(out, "NaN") {
		t.Fatal("all-NaN series")
	}
}

func TestCanvasMinimumSize(t *testing.T) {
	c := NewCanvas(1, 1, 0, 1, 0, 1)
	c.Plot(0.5, 0.5, 'x')
	if c.String() == "" {
		t.Fatal("tiny canvas broke")
	}
}
