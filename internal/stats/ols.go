package stats

import (
	"fmt"

	"repro/internal/mat"
)

// OLS is a fitted ordinary-least-squares linear model y ≈ β₀ + βᵀx,
// used as the weak learner in the EMCM baseline (paper Eq. 1 context).
type OLS struct {
	// Coef holds [β₀, β₁, …, β_D]: intercept first.
	Coef []float64
}

// FitOLS fits y ≈ β₀ + βᵀx by solving the normal equations with a
// Cholesky factorization (ridge-stabilized with a tiny diagonal when the
// design is rank deficient). x has one observation per row.
func FitOLS(x *mat.Dense, y []float64) (*OLS, error) {
	n, d := x.Rows(), x.Cols()
	if n != len(y) {
		return nil, fmt.Errorf("stats: OLS rows %d != len(y) %d", n, len(y))
	}
	if n == 0 {
		return nil, fmt.Errorf("stats: OLS needs at least one observation")
	}
	// Augment with an intercept column.
	a := mat.New(n, d+1)
	for i := 0; i < n; i++ {
		row := a.RawRow(i)
		row[0] = 1
		copy(row[1:], x.RawRow(i))
	}
	ata := mat.SyrkT(a)
	aty := a.MulVecT(mat.Vec(y))
	ch, _, err := mat.NewCholeskyJitter(ata, 0, 20)
	if err != nil {
		return nil, fmt.Errorf("stats: OLS normal equations singular: %w", err)
	}
	beta := ch.SolveVec(aty)
	return &OLS{Coef: beta}, nil
}

// Predict returns β₀ + βᵀx for one input point.
func (m *OLS) Predict(x []float64) float64 {
	if len(x) != len(m.Coef)-1 {
		panic(fmt.Sprintf("stats: OLS Predict dim %d, model has %d features", len(x), len(m.Coef)-1))
	}
	s := m.Coef[0]
	for i, xv := range x {
		s += m.Coef[i+1] * xv
	}
	return s
}

// PredictAll applies Predict to each row of x.
func (m *OLS) PredictAll(x *mat.Dense) []float64 {
	out := make([]float64, x.Rows())
	for i := range out {
		out[i] = m.Predict(x.RawRow(i))
	}
	return out
}
