// Package stats supplies the statistical primitives used across the
// repository: summary statistics, the RMSE metric from the paper (Eq. 2),
// trapezoidal integration (per-job energy from power traces), ordinary
// least squares (EMCM weak learners), and bootstrap resampling.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeometricMean returns (Π xs)^(1/n) for positive xs, computed in log
// space; NaN for empty input or any non-positive element.
func GeometricMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Variance returns the unbiased sample variance, or 0 for fewer than two
// observations.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the smallest and largest values; NaNs for empty input.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It copies and sorts internally.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %g out of [0,1]", q))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// RMSE returns the root mean squared error between predictions and truth
// (paper Eq. 2). The slices must have equal, nonzero length.
func RMSE(pred, truth []float64) float64 {
	if len(pred) != len(truth) {
		panic(fmt.Sprintf("stats: RMSE length mismatch %d vs %d", len(pred), len(truth)))
	}
	if len(pred) == 0 {
		return math.NaN()
	}
	var s float64
	for i, p := range pred {
		d := p - truth[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

// MAE returns the mean absolute error between predictions and truth.
func MAE(pred, truth []float64) float64 {
	if len(pred) != len(truth) {
		panic(fmt.Sprintf("stats: MAE length mismatch %d vs %d", len(pred), len(truth)))
	}
	if len(pred) == 0 {
		return math.NaN()
	}
	var s float64
	for i, p := range pred {
		s += math.Abs(p - truth[i])
	}
	return s / float64(len(pred))
}

// Correlation returns the Pearson correlation coefficient of x and y,
// or NaN when either is constant.
func Correlation(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: Correlation length mismatch %d vs %d", len(x), len(y)))
	}
	if len(x) < 2 {
		return math.NaN()
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Trapezoid integrates samples (t_i, v_i) with the trapezoidal rule;
// t must be strictly increasing. This is how per-job energy (Joules) is
// inferred from instantaneous power draws (Watts) in §IV-A.
func Trapezoid(t, v []float64) float64 {
	if len(t) != len(v) {
		panic(fmt.Sprintf("stats: Trapezoid length mismatch %d vs %d", len(t), len(v)))
	}
	if len(t) < 2 {
		return 0
	}
	var area float64
	for i := 1; i < len(t); i++ {
		dt := t[i] - t[i-1]
		if dt <= 0 {
			panic(fmt.Sprintf("stats: Trapezoid requires increasing t, got dt=%g at %d", dt, i))
		}
		area += 0.5 * dt * (v[i] + v[i-1])
	}
	return area
}

// ResampleIndices returns n indices drawn uniformly with replacement from
// [0, n) — one bootstrap replicate (used by EMCM's weak-learner ensemble).
func ResampleIndices(rng *rand.Rand, n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = rng.Intn(n)
	}
	return idx
}

// Histogram counts xs into nbins equal-width bins over [lo, hi]; values
// outside the range clamp to the edge bins.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	if nbins <= 0 || hi <= lo {
		panic("stats: Histogram needs nbins > 0 and hi > lo")
	}
	counts := make([]int, nbins)
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts
}
