package stats

import (
	"fmt"
	"math"
)

// TTestResult reports a paired two-sided t-test.
type TTestResult struct {
	T        float64 // t statistic
	DF       float64 // degrees of freedom (n−1)
	P        float64 // two-sided p-value
	MeanDiff float64 // mean of (a_i − b_i)
}

// PairedTTest tests whether paired observations a and b share a mean
// (two-sided). In this repository it judges whether one AL strategy's
// final RMSE differs significantly from another's across the *same*
// random partitions. At least two pairs are required; zero variance in
// the differences yields P = 0 for a nonzero mean difference and P = 1
// otherwise.
func PairedTTest(a, b []float64) (TTestResult, error) {
	if len(a) != len(b) {
		return TTestResult{}, fmt.Errorf("stats: paired t-test length mismatch %d vs %d", len(a), len(b))
	}
	n := len(a)
	if n < 2 {
		return TTestResult{}, fmt.Errorf("stats: paired t-test needs ≥ 2 pairs, got %d", n)
	}
	d := make([]float64, n)
	for i := range a {
		d[i] = a[i] - b[i]
	}
	md := Mean(d)
	sd := StdDev(d)
	res := TTestResult{DF: float64(n - 1), MeanDiff: md}
	if sd == 0 {
		if md == 0 {
			res.P = 1
		} else {
			res.T = math.Inf(int(math.Copysign(1, md)))
			res.P = 0
		}
		return res, nil
	}
	res.T = md / (sd / math.Sqrt(float64(n)))
	res.P = 2 * studentTTail(math.Abs(res.T), res.DF)
	return res, nil
}

// studentTTail returns P(T > t) for Student's t with df degrees of
// freedom, via the regularized incomplete beta function:
// P(T > t) = ½ I_{df/(df+t²)}(df/2, ½).
func studentTTail(t, df float64) float64 {
	if t <= 0 {
		return 0.5
	}
	x := df / (df + t*t)
	return 0.5 * RegIncBeta(df/2, 0.5, x)
}

// RegIncBeta computes the regularized incomplete beta function I_x(a, b)
// with the standard continued-fraction expansion (Numerical Recipes
// §6.4), accurate to ~1e-12 for moderate parameters.
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betaCF evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 1e-14
		tiny    = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := 2 * m
		fm := float64(m)
		aa := fm * (b - fm) * x / ((qam + float64(m2)) * (a + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + float64(m2)) * (qap + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
