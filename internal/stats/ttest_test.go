package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegIncBetaKnownValues(t *testing.T) {
	cases := []struct {
		a, b, x, want float64
	}{
		{1, 1, 0.3, 0.3},     // I_x(1,1) = x
		{2, 1, 0.5, 0.25},    // I_x(2,1) = x²
		{1, 2, 0.5, 0.75},    // I_x(1,2) = 1-(1-x)²
		{0.5, 0.5, 0.5, 0.5}, // symmetry point of arcsine distribution
		{3, 3, 0.5, 0.5},     // symmetric beta at its median
	}
	for _, c := range cases {
		if got := RegIncBeta(c.a, c.b, c.x); math.Abs(got-c.want) > 1e-10 {
			t.Fatalf("I_%g(%g,%g) = %g, want %g", c.x, c.a, c.b, got, c.want)
		}
	}
	if RegIncBeta(2, 3, 0) != 0 || RegIncBeta(2, 3, 1) != 1 {
		t.Fatal("boundary values")
	}
}

// Student-t tail probabilities against standard table values.
func TestStudentTTail(t *testing.T) {
	cases := []struct {
		t, df, want float64
	}{
		{0, 10, 0.5},
		{2.228, 10, 0.025},  // t_{0.975, 10}
		{1.812, 10, 0.05},   // t_{0.95, 10}
		{2.086, 20, 0.025},  // t_{0.975, 20}
		{12.706, 1, 0.025},  // t_{0.975, 1}
		{1.96, 1e6, 0.0250}, // approaches the normal for large df
	}
	for _, c := range cases {
		if got := studentTTail(c.t, c.df); math.Abs(got-c.want) > 2e-3 {
			t.Fatalf("P(T>%g|df=%g) = %g, want %g", c.t, c.df, got, c.want)
		}
	}
}

func TestPairedTTestDetectsShift(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 30
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		base := rng.NormFloat64()
		a[i] = base + 1.0 + 0.1*rng.NormFloat64() // consistent +1 shift
		b[i] = base + 0.1*rng.NormFloat64()
	}
	res, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-6 {
		t.Fatalf("obvious shift not detected: p = %g", res.P)
	}
	if res.MeanDiff < 0.8 || res.MeanDiff > 1.2 {
		t.Fatalf("mean diff %g, want ≈1", res.MeanDiff)
	}
}

func TestPairedTTestNullIsInsignificant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 25
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		base := rng.NormFloat64()
		a[i] = base + 0.3*rng.NormFloat64()
		b[i] = base + 0.3*rng.NormFloat64()
	}
	res, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.01 {
		t.Fatalf("null rejected with p = %g", res.P)
	}
}

func TestPairedTTestEdgeCases(t *testing.T) {
	if _, err := PairedTTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := PairedTTest([]float64{1}, []float64{1}); err == nil {
		t.Fatal("expected size error")
	}
	// Identical pairs: p = 1.
	res, err := PairedTTest([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 {
		t.Fatalf("identical pairs p = %g", res.P)
	}
	// Constant nonzero difference: p = 0.
	res, err = PairedTTest([]float64{2, 3, 4}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 0 {
		t.Fatalf("constant shift p = %g", res.P)
	}
}

// Property: p-values live in [0, 1] and the test is symmetric in sign.
func TestPairedTTestProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		ab, err1 := PairedTTest(a, b)
		ba, err2 := PairedTTest(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		if ab.P < 0 || ab.P > 1 {
			return false
		}
		return math.Abs(ab.P-ba.P) < 1e-9 && math.Abs(ab.T+ba.T) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
