package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	d := math.Abs(a - b)
	return d <= tol || d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %g", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
}

func TestGeometricMean(t *testing.T) {
	if got := GeometricMean([]float64{1, 100}); !almostEq(got, 10, 1e-12) {
		t.Fatalf("GeometricMean = %g, want 10", got)
	}
	if !math.IsNaN(GeometricMean([]float64{1, -1})) {
		t.Fatal("negative input should give NaN")
	}
	if !math.IsNaN(GeometricMean(nil)) {
		t.Fatal("empty input should give NaN")
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance of this classic set is 32/7.
	if got := Variance(xs); !almostEq(got, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %g", got)
	}
	if got := StdDev(xs); !almostEq(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("StdDev = %g", got)
	}
	if Variance([]float64{5}) != 0 {
		t.Fatal("single-point variance should be 0")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %g, %g", lo, hi)
	}
	lo, hi = MinMax(nil)
	if !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Fatal("empty MinMax should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %g", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Fatalf("q1 = %g", got)
	}
	if got := Median(xs); got != 3 {
		t.Fatalf("median = %g", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Fatalf("q0.25 = %g", got)
	}
	// Interpolation between order stats.
	if got := Quantile([]float64{0, 10}, 0.5); got != 5 {
		t.Fatalf("interpolated median = %g", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Quantile([]float64{1}, 1.5)
}

func TestRMSEAndMAE(t *testing.T) {
	pred := []float64{1, 2, 3}
	truth := []float64{1, 2, 7}
	if got := RMSE(pred, truth); !almostEq(got, 4.0/math.Sqrt(3), 1e-12) {
		t.Fatalf("RMSE = %g", got)
	}
	if got := MAE(pred, truth); !almostEq(got, 4.0/3.0, 1e-12) {
		t.Fatalf("MAE = %g", got)
	}
	if got := RMSE(pred, pred); got != 0 {
		t.Fatalf("perfect RMSE = %g", got)
	}
}

func TestCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	if got := Correlation(x, y); !almostEq(got, 1, 1e-12) {
		t.Fatalf("perfect correlation = %g", got)
	}
	yneg := []float64{8, 6, 4, 2}
	if got := Correlation(x, yneg); !almostEq(got, -1, 1e-12) {
		t.Fatalf("anti correlation = %g", got)
	}
	if !math.IsNaN(Correlation(x, []float64{5, 5, 5, 5})) {
		t.Fatal("constant series should give NaN")
	}
}

func TestTrapezoid(t *testing.T) {
	// ∫₀¹ x dx = 0.5 exactly for trapezoid on linear function.
	tGrid := []float64{0, 0.25, 0.5, 1}
	v := []float64{0, 0.25, 0.5, 1}
	if got := Trapezoid(tGrid, v); !almostEq(got, 0.5, 1e-15) {
		t.Fatalf("Trapezoid = %g", got)
	}
	if got := Trapezoid([]float64{1}, []float64{5}); got != 0 {
		t.Fatal("single sample should integrate to 0")
	}
}

func TestTrapezoidNonIncreasingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Trapezoid([]float64{0, 0}, []float64{1, 1})
}

func TestResampleIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	idx := ResampleIndices(rng, 100)
	if len(idx) != 100 {
		t.Fatalf("len = %d", len(idx))
	}
	for _, i := range idx {
		if i < 0 || i >= 100 {
			t.Fatalf("index %d out of range", i)
		}
	}
	// With replacement: 100 draws from 100 almost surely repeat.
	seen := map[int]bool{}
	for _, i := range idx {
		seen[i] = true
	}
	if len(seen) == 100 {
		t.Fatal("suspiciously no repeats in bootstrap sample")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.6, 0.9, -5, 99}
	h := Histogram(xs, 0, 1, 2)
	if h[0] != 3 || h[1] != 3 { // -5 clamps into bin 0, 99 into bin 1
		t.Fatalf("Histogram = %v", h)
	}
}

func TestOLSExactFit(t *testing.T) {
	// y = 3 + 2x exactly.
	x := mat.NewFromRows([][]float64{{0}, {1}, {2}, {3}})
	y := []float64{3, 5, 7, 9}
	m, err := FitOLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(m.Coef[0], 3, 1e-8) || !almostEq(m.Coef[1], 2, 1e-8) {
		t.Fatalf("Coef = %v", m.Coef)
	}
	if got := m.Predict([]float64{10}); !almostEq(got, 23, 1e-7) {
		t.Fatalf("Predict = %g", got)
	}
	all := m.PredictAll(x)
	for i := range y {
		if !almostEq(all[i], y[i], 1e-7) {
			t.Fatalf("PredictAll[%d] = %g want %g", i, all[i], y[i])
		}
	}
}

func TestOLSMultivariate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, d := 200, 3
	x := mat.New(n, d)
	trueBeta := []float64{1.5, -2, 0.5, 3} // intercept + 3 slopes
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := x.RawRow(i)
		y[i] = trueBeta[0]
		for j := 0; j < d; j++ {
			row[j] = rng.NormFloat64()
			y[i] += trueBeta[j+1] * row[j]
		}
		y[i] += 0.01 * rng.NormFloat64()
	}
	m, err := FitOLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range trueBeta {
		if math.Abs(m.Coef[i]-trueBeta[i]) > 0.01 {
			t.Fatalf("Coef[%d] = %g, want %g", i, m.Coef[i], trueBeta[i])
		}
	}
}

func TestOLSErrors(t *testing.T) {
	if _, err := FitOLS(mat.New(2, 1), []float64{1}); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := FitOLS(mat.New(0, 1), nil); err == nil {
		t.Fatal("expected empty error")
	}
}

// Property: RMSE is translation-detecting — shifting predictions by c
// yields RMSE ≥ |c| - RMSE(original) and RMSE(x,x) = 0.
func TestRMSEProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		a := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		if RMSE(a, a) != 0 {
			return false
		}
		c := 1 + rng.Float64()
		b := make([]float64, n)
		for i := range b {
			b[i] = a[i] + c
		}
		return almostEq(RMSE(b, a), c, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantile is monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
