package multigrid

import (
	"math"
	"testing"
)

// exact solution u = sin(πx)sin(πy)sin(πz) and matching RHS per operator.
func exactU(x, y, z float64) float64 {
	return math.Sin(math.Pi*x) * math.Sin(math.Pi*y) * math.Sin(math.Pi*z)
}

func rhsFor(op Operator) func(x, y, z float64) float64 {
	c := 3.0
	if op == Poisson2Affine {
		c = affineMetric[0] + affineMetric[1] + affineMetric[2]
	}
	return func(x, y, z float64) float64 {
		return c * math.Pi * math.Pi * exactU(x, y, z)
	}
}

// solutionError returns the scaled L2 error of the finest solution
// against the analytic solution.
func solutionError(s *Solver) float64 {
	l := s.levels[0]
	st := l.n + 2
	var sum float64
	for k := 1; k <= l.n; k++ {
		for j := 1; j <= l.n; j++ {
			for i := 1; i <= l.n; i++ {
				d := l.u[(k*st+j)*st+i] -
					exactU(float64(i)*l.h, float64(j)*l.h, float64(k)*l.h)
				sum += d * d
			}
		}
	}
	return math.Sqrt(sum * l.h * l.h * l.h)
}

func TestNewSolverValidation(t *testing.T) {
	if _, err := NewSolver(Config{Op: Poisson1, N: 2}); err == nil {
		t.Fatal("expected error for tiny N")
	}
	if _, err := NewSolver(Config{Op: Poisson1, N: 10}); err == nil {
		t.Fatal("expected error for non 2^k-1 N")
	}
	s, err := NewSolver(Config{Op: Poisson1, N: 31})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumLevels() != 4 { // 31, 15, 7, 3
		t.Fatalf("NumLevels = %d, want 4", s.NumLevels())
	}
}

func TestOperatorString(t *testing.T) {
	for _, tc := range []struct {
		op   Operator
		want string
	}{{Poisson1, "poisson1"}, {Poisson2, "poisson2"}, {Poisson2Affine, "poisson2affine"}} {
		if tc.op.String() != tc.want {
			t.Fatalf("String = %q, want %q", tc.op.String(), tc.want)
		}
		back, err := ParseOperator(tc.want)
		if err != nil || back != tc.op {
			t.Fatalf("ParseOperator(%q) = %v, %v", tc.want, back, err)
		}
	}
	if _, err := ParseOperator("bogus"); err == nil {
		t.Fatal("expected parse error")
	}
}

// Each V-cycle must contract the residual substantially — textbook
// multigrid efficiency.
func TestVCycleContraction(t *testing.T) {
	for _, op := range []Operator{Poisson1, Poisson2, Poisson2Affine} {
		s, err := NewSolver(Config{Op: op, N: 31})
		if err != nil {
			t.Fatal(err)
		}
		s.SetRHS(rhsFor(op))
		r0 := s.ResidualNorm()
		r1 := s.VCycle()
		r2 := s.VCycle()
		if r1 > 0.35*r0 || r2 > 0.35*r1 {
			t.Fatalf("%v: weak contraction %g -> %g -> %g", op, r0, r1, r2)
		}
	}
}

// FMG must reach discretization-level error in one pass.
func TestFMGReachesDiscretizationError(t *testing.T) {
	for _, op := range []Operator{Poisson1, Poisson2, Poisson2Affine} {
		s, err := NewSolver(Config{Op: op, N: 31})
		if err != nil {
			t.Fatal(err)
		}
		s.SetRHS(rhsFor(op))
		s.FMG(2)
		errNorm := solutionError(s)
		// h = 1/32, so O(h²) ≈ 1e-3; allow a modest constant.
		if errNorm > 8e-3 {
			t.Fatalf("%v: FMG error %g too large", op, errNorm)
		}
	}
}

// Refining the grid must reduce the discretization error at roughly
// second order (factor ≈ 4 per halving of h).
func TestSecondOrderConvergence(t *testing.T) {
	errAt := func(n int) float64 {
		s, err := NewSolver(Config{Op: Poisson1, N: n})
		if err != nil {
			t.Fatal(err)
		}
		s.SetRHS(rhsFor(Poisson1))
		// Run enough V-cycles after FMG to make algebraic error
		// negligible against discretization error.
		s.FMG(2)
		for i := 0; i < 6; i++ {
			s.VCycle()
		}
		return solutionError(s)
	}
	e15, e31 := errAt(15), errAt(31)
	ratio := e15 / e31
	if ratio < 3.2 || ratio > 5.0 {
		t.Fatalf("convergence ratio %g (e15=%g e31=%g), want ≈4", ratio, e15, e31)
	}
}

// Jacobi smoothing is partition-independent: parallel sweeps must give
// bitwise-identical results to serial.
func TestParallelMatchesSerial(t *testing.T) {
	run := func(workers int) []float64 {
		s, err := NewSolver(Config{Op: Poisson2, N: 15, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		s.SetRHS(rhsFor(Poisson2))
		s.FMG(1)
		out := make([]float64, len(s.levels[0].u))
		copy(out, s.levels[0].u)
		return out
	}
	serial := run(1)
	parallel := run(8)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("solution differs at %d: %g vs %g", i, serial[i], parallel[i])
		}
	}
}

func TestWorkStatsAccumulate(t *testing.T) {
	s, err := NewSolver(Config{Op: Poisson1, N: 15})
	if err != nil {
		t.Fatal(err)
	}
	s.SetRHS(rhsFor(Poisson1))
	if s.Stats().Flops != 0 {
		t.Fatal("stats should start at zero")
	}
	s.VCycle()
	st1 := s.Stats()
	if st1.Flops <= 0 || st1.Bytes <= 0 {
		t.Fatalf("stats not accumulated: %+v", st1)
	}
	s.VCycle()
	st2 := s.Stats()
	if st2.Flops <= st1.Flops {
		t.Fatal("stats must grow monotonically")
	}
}

// The Mehrstellen operator must cost more flops per point than the 7-point
// stencil — the property the HPGMG cost model keys on.
func TestOperatorCostOrdering(t *testing.T) {
	run := func(op Operator) int64 {
		s, err := NewSolver(Config{Op: op, N: 15})
		if err != nil {
			t.Fatal(err)
		}
		s.SetRHS(rhsFor(op))
		s.VCycle()
		return s.Stats().Flops
	}
	f1, f2 := run(Poisson1), run(Poisson2)
	if f2 <= f1 {
		t.Fatalf("poisson2 flops %d should exceed poisson1 %d", f2, f1)
	}
}

func TestSolutionAtAndH(t *testing.T) {
	s, err := NewSolver(Config{Op: Poisson1, N: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.H(); math.Abs(got-1.0/8.0) > 1e-15 {
		t.Fatalf("H = %g", got)
	}
	s.SetRHS(rhsFor(Poisson1))
	s.FMG(2)
	center := s.SolutionAt(4, 4, 4)
	want := exactU(0.5, 0.5, 0.5) // = 1
	if math.Abs(center-want) > 0.05 {
		t.Fatalf("center solution %g, want ≈%g", center, want)
	}
}

func TestDOF(t *testing.T) {
	if DOF(31) != 31*31*31 {
		t.Fatalf("DOF = %d", DOF(31))
	}
}

// Zero RHS must stay (near) zero through the full solver path.
func TestZeroRHSStaysZero(t *testing.T) {
	s, err := NewSolver(Config{Op: Poisson1, N: 15})
	if err != nil {
		t.Fatal(err)
	}
	s.SetRHS(func(x, y, z float64) float64 { return 0 })
	s.FMG(2)
	if errNorm := solutionError(s); false {
		_ = errNorm
	}
	l := s.levels[0]
	for _, v := range l.u {
		if math.Abs(v) > 1e-12 {
			t.Fatalf("nonzero solution %g for zero RHS", v)
		}
	}
}

func BenchmarkVCyclePoisson1N31(b *testing.B) {
	s, err := NewSolver(Config{Op: Poisson1, N: 31})
	if err != nil {
		b.Fatal(err)
	}
	s.SetRHS(rhsFor(Poisson1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.VCycle()
	}
}

func BenchmarkFMGPoisson2N31(b *testing.B) {
	s, err := NewSolver(Config{Op: Poisson2, N: 31})
	if err != nil {
		b.Fatal(err)
	}
	s.SetRHS(rhsFor(Poisson2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.FMG(1)
	}
}
