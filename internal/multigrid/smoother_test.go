package multigrid

import (
	"strings"
	"testing"
)

func TestRedBlackRejectedForMehrstellen(t *testing.T) {
	_, err := NewSolver(Config{Op: Poisson2, N: 15, Smooth: RedBlack})
	if err == nil || !strings.Contains(err.Error(), "red-black") {
		t.Fatalf("err = %v", err)
	}
}

func TestRedBlackVCycleConverges(t *testing.T) {
	for _, op := range []Operator{Poisson1, Poisson2Affine} {
		s, err := NewSolver(Config{Op: op, N: 31, Smooth: RedBlack})
		if err != nil {
			t.Fatal(err)
		}
		s.SetRHS(rhsFor(op))
		r0 := s.ResidualNorm()
		r1 := s.VCycle()
		r2 := s.VCycle()
		if r1 > 0.25*r0 || r2 > 0.25*r1 {
			t.Fatalf("%v RB: weak contraction %g -> %g -> %g", op, r0, r1, r2)
		}
	}
}

// Red-black Gauss-Seidel smoothing contracts faster per V-cycle than
// weighted Jacobi — the textbook advantage.
func TestRedBlackBeatsJacobi(t *testing.T) {
	run := func(sm Smoother) float64 {
		s, err := NewSolver(Config{Op: Poisson1, N: 31, Smooth: sm})
		if err != nil {
			t.Fatal(err)
		}
		s.SetRHS(rhsFor(Poisson1))
		s.VCycle()
		return s.VCycle()
	}
	rb, jac := run(RedBlack), run(Jacobi)
	if rb >= jac {
		t.Fatalf("RB residual %g not below Jacobi %g after 2 V-cycles", rb, jac)
	}
}

func TestRedBlackParallelMatchesSerial(t *testing.T) {
	run := func(workers int) []float64 {
		s, err := NewSolver(Config{Op: Poisson1, N: 15, Workers: workers, Smooth: RedBlack})
		if err != nil {
			t.Fatal(err)
		}
		s.SetRHS(rhsFor(Poisson1))
		s.FMG(1)
		out := make([]float64, len(s.levels[0].u))
		copy(out, s.levels[0].u)
		return out
	}
	serial := run(1)
	parallel := run(8)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("RB solution differs at %d: %g vs %g", i, serial[i], parallel[i])
		}
	}
}

func TestWCycleContraction(t *testing.T) {
	run := func(shape Cycle) float64 {
		s, err := NewSolver(Config{Op: Poisson1, N: 31, Shape: shape})
		if err != nil {
			t.Fatal(err)
		}
		s.SetRHS(rhsFor(Poisson1))
		return s.VCycle() // one cycle of the configured shape
	}
	w, v := run(WCycle), run(VCycle)
	// W must be at least as good per cycle (it does strictly more work).
	if w > v*1.05 {
		t.Fatalf("W-cycle residual %g worse than V-cycle %g", w, v)
	}
}

func TestWCycleCostsMoreFlops(t *testing.T) {
	run := func(shape Cycle) int64 {
		s, err := NewSolver(Config{Op: Poisson1, N: 31, Shape: shape})
		if err != nil {
			t.Fatal(err)
		}
		s.SetRHS(rhsFor(Poisson1))
		s.VCycle()
		return s.Stats().Flops
	}
	if run(WCycle) <= run(VCycle) {
		t.Fatal("W-cycle should perform more work than V-cycle")
	}
}

func TestSmootherCycleStrings(t *testing.T) {
	if Jacobi.String() != "jacobi" || RedBlack.String() != "red-black" {
		t.Fatal("Smoother strings")
	}
	if Smoother(9).String() == "" {
		t.Fatal("unknown smoother string empty")
	}
}

func TestRedBlackFMGReachesDiscretizationError(t *testing.T) {
	s, err := NewSolver(Config{Op: Poisson1, N: 31, Smooth: RedBlack})
	if err != nil {
		t.Fatal(err)
	}
	s.SetRHS(rhsFor(Poisson1))
	s.FMG(2)
	if errNorm := solutionError(s); errNorm > 8e-3 {
		t.Fatalf("RB FMG error %g too large", errNorm)
	}
}
