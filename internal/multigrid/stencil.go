package multigrid

// stencilOps abstracts the discrete operator A over the three supported
// discretizations. apply computes A·u at one interior point; diag returns
// the diagonal coefficient (used by Jacobi).
type stencilOps struct {
	op Operator
}

// diag returns the diagonal entry of A at spacing h.
func (s stencilOps) diag(h float64) float64 {
	inv := 1 / (h * h)
	switch s.op {
	case Poisson1:
		return 6 * inv
	case Poisson2:
		return 128.0 / 30.0 * inv
	case Poisson2Affine:
		return 2 * (affineMetric[0] + affineMetric[1] + affineMetric[2]) * inv
	default:
		panic("multigrid: unknown operator")
	}
}

// flopsPerPoint returns the floating-point operations one apply costs,
// used for work accounting.
func (s stencilOps) flopsPerPoint() int64 {
	switch s.op {
	case Poisson1:
		return 8 // 6 adds + scale
	case Poisson2:
		return 33 // 26 neighbours + weights
	case Poisson2Affine:
		return 12
	default:
		panic("multigrid: unknown operator")
	}
}

// apply computes (A·u)(i,j,k) for the interior point (i,j,k) of a grid
// with stride st and spacing h. u must include the ghost boundary.
func (s stencilOps) apply(u []float64, c, st, st2 int, h float64) float64 {
	inv := 1 / (h * h)
	switch s.op {
	case Poisson1:
		return inv * (6*u[c] -
			u[c-1] - u[c+1] -
			u[c-st] - u[c+st] -
			u[c-st2] - u[c+st2])
	case Poisson2Affine:
		cx, cy, cz := affineMetric[0], affineMetric[1], affineMetric[2]
		return inv * (2*(cx+cy+cz)*u[c] -
			cx*(u[c-1]+u[c+1]) -
			cy*(u[c-st]+u[c+st]) -
			cz*(u[c-st2]+u[c+st2]))
	case Poisson2:
		// Mehrstellen 27-point stencil:
		// (1/30h²)·(128 center − 14·faces − 3·edges − 1·corners).
		faces := u[c-1] + u[c+1] + u[c-st] + u[c+st] + u[c-st2] + u[c+st2]
		edges := u[c-1-st] + u[c+1-st] + u[c-1+st] + u[c+1+st] +
			u[c-1-st2] + u[c+1-st2] + u[c-1+st2] + u[c+1+st2] +
			u[c-st-st2] + u[c+st-st2] + u[c-st+st2] + u[c+st+st2]
		corners := u[c-1-st-st2] + u[c+1-st-st2] + u[c-1+st-st2] + u[c+1+st-st2] +
			u[c-1-st+st2] + u[c+1-st+st2] + u[c-1+st+st2] + u[c+1+st+st2]
		return inv / 30.0 * (128*u[c] - 14*faces - 3*edges - corners)
	default:
		panic("multigrid: unknown operator")
	}
}

// smootherWeight returns the weighted-Jacobi damping factor ω for the
// operator. 2/3 is optimal for the 7-point Laplacian; the denser stencils
// use slightly heavier damping for robustness.
func (s stencilOps) smootherWeight() float64 {
	switch s.op {
	case Poisson2:
		return 0.85
	default:
		return 2.0 / 3.0
	}
}
