package multigrid

import (
	"fmt"
	"runtime"
	"sync"
)

// Smoother selects the relaxation scheme.
type Smoother int

// Supported smoothers.
const (
	// Jacobi is weighted Jacobi — fully parallel, partition-independent.
	Jacobi Smoother = iota
	// RedBlack is red-black Gauss–Seidel: two half-sweeps over
	// alternating colors. Converges roughly twice as fast per sweep as
	// Jacobi while staying deterministic under parallel slabs (within a
	// color, updates touch only opposite-color neighbours).
	RedBlack
)

// String implements fmt.Stringer.
func (s Smoother) String() string {
	switch s {
	case Jacobi:
		return "jacobi"
	case RedBlack:
		return "red-black"
	default:
		return fmt.Sprintf("smoother(%d)", int(s))
	}
}

// Cycle selects the multigrid cycle shape.
type Cycle int

// Supported cycles.
const (
	// VCycle visits each coarse level once per cycle.
	VCycle Cycle = iota
	// WCycle recurses twice at every level below the finest — more
	// robust for harder problems at higher cost per cycle.
	WCycle
)

// Config describes one multigrid solve.
type Config struct {
	// Op selects the discretization.
	Op Operator
	// N is the finest grid's interior points per dimension; must be
	// 2^k − 1 with k ≥ 2 so the hierarchy coarsens cleanly.
	N int
	// Workers is the number of concurrent sweep workers ("ranks");
	// 0 means GOMAXPROCS.
	Workers int
	// Nu1, Nu2 are pre-/post-smoothing sweep counts (default 2, 2).
	Nu1, Nu2 int
	// Smooth selects the relaxation scheme (default Jacobi).
	Smooth Smoother
	// Shape selects V- or W-cycles (default VCycle).
	Shape Cycle
}

// WorkStats accumulates the floating-point and memory work performed,
// used to calibrate the cluster simulator's cost model.
type WorkStats struct {
	Flops int64
	Bytes int64
}

// Solver is a geometric multigrid solver instance. It is not safe for
// concurrent use; one solve at a time.
type Solver struct {
	cfg     Config
	st      stencilOps
	levels  []*level // levels[0] is finest
	workers int
	stats   WorkStats
}

// NewSolver builds the grid hierarchy for cfg.
func NewSolver(cfg Config) (*Solver, error) {
	if cfg.N < 3 {
		return nil, fmt.Errorf("multigrid: N = %d too small (need ≥ 3)", cfg.N)
	}
	if (cfg.N+1)&cfg.N != 0 {
		return nil, fmt.Errorf("multigrid: N = %d must be 2^k − 1", cfg.N)
	}
	if cfg.Nu1 <= 0 {
		cfg.Nu1 = 2
	}
	if cfg.Nu2 <= 0 {
		cfg.Nu2 = 2
	}
	if cfg.Smooth == RedBlack && cfg.Op == Poisson2 {
		// The 27-point Mehrstellen stencil couples same-color points
		// (edge/corner neighbours preserve parity), so a two-color
		// sweep would race under parallel slabs.
		return nil, fmt.Errorf("multigrid: red-black smoothing requires a 7-point operator, not %v", cfg.Op)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Solver{cfg: cfg, st: stencilOps{op: cfg.Op}, workers: workers}
	for n := cfg.N; n >= 3; n = (n - 1) / 2 {
		s.levels = append(s.levels, newLevel(n))
	}
	return s, nil
}

// NumLevels returns the depth of the grid hierarchy.
func (s *Solver) NumLevels() int { return len(s.levels) }

// Stats returns the work performed so far.
func (s *Solver) Stats() WorkStats { return s.stats }

// SetRHS fills the finest-level right-hand side by sampling f at grid
// points and resets the solution to zero on all levels.
func (s *Solver) SetRHS(f func(x, y, z float64) float64) {
	fine := s.levels[0]
	st := fine.n + 2
	for k := 1; k <= fine.n; k++ {
		z := float64(k) * fine.h
		for j := 1; j <= fine.n; j++ {
			y := float64(j) * fine.h
			base := (k*st + j) * st
			for i := 1; i <= fine.n; i++ {
				fine.f[base+i] = f(float64(i)*fine.h, y, z)
			}
		}
	}
	for _, l := range s.levels {
		zero(l.u)
	}
	// Pre-restrict the RHS down the hierarchy for FMG.
	for li := 0; li < len(s.levels)-1; li++ {
		s.restrictField(s.levels[li], s.levels[li+1], s.levels[li].f, s.levels[li+1].f)
	}
	// Stats measure solve work only, not problem setup.
	s.stats = WorkStats{}
}

// SolutionAt returns u at interior grid point (i, j, k), 1-based.
func (s *Solver) SolutionAt(i, j, k int) float64 {
	l := s.levels[0]
	return l.u[l.idx(i, j, k)]
}

// H returns the finest grid spacing.
func (s *Solver) H() float64 { return s.levels[0].h }

// parSlabs runs fn over z-slab ranges [lo, hi) partitioned among the
// worker pool. Slabs are interior z indices 1..n.
func (s *Solver) parSlabs(n int, fn func(kLo, kHi int)) {
	w := s.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		fn(1, n+1)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 1; lo <= n; lo += chunk {
		hi := lo + chunk
		if hi > n+1 {
			hi = n + 1
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// smooth performs one relaxation sweep on level l with the configured
// smoother.
func (s *Solver) smooth(l *level) {
	if s.cfg.Smooth == RedBlack {
		s.smoothRedBlack(l)
		return
	}
	s.smoothJacobi(l)
}

// smoothRedBlack performs one red-black Gauss–Seidel sweep: two in-place
// half-sweeps over alternating colors. For 7-point stencils each color
// reads only the opposite color, so parallel slabs stay deterministic.
func (s *Solver) smoothRedBlack(l *level) {
	st := l.n + 2
	st2 := st * st
	dinv := 1 / s.st.diag(l.h)
	for color := 0; color < 2; color++ {
		s.parSlabs(l.n, func(kLo, kHi int) {
			for k := kLo; k < kHi; k++ {
				for j := 1; j <= l.n; j++ {
					base := (k*st + j) * st
					// First interior i with (i+j+k) % 2 == color.
					i0 := 1
					if (i0+j+k)%2 != color {
						i0 = 2
					}
					for i := i0; i <= l.n; i += 2 {
						c := base + i
						l.u[c] += dinv * (l.f[c] - s.st.apply(l.u, c, st, st2, l.h))
					}
				}
			}
		})
	}
	pts := int64(l.n) * int64(l.n) * int64(l.n)
	s.stats.Flops += pts * (s.st.flopsPerPoint() + 2)
	s.stats.Bytes += pts * 8 * 3
}

// smoothJacobi performs one weighted-Jacobi sweep on level l:
// u ← u + ω D⁻¹ (f − A u), writing through the scratch buffer.
func (s *Solver) smoothJacobi(l *level) {
	st := l.n + 2
	st2 := st * st
	omega := s.st.smootherWeight()
	dinv := omega / s.st.diag(l.h)
	s.parSlabs(l.n, func(kLo, kHi int) {
		for k := kLo; k < kHi; k++ {
			for j := 1; j <= l.n; j++ {
				base := (k*st + j) * st
				for i := 1; i <= l.n; i++ {
					c := base + i
					l.r[c] = l.u[c] + dinv*(l.f[c]-s.st.apply(l.u, c, st, st2, l.h))
				}
			}
		}
	})
	// Copy interior back (ghosts stay zero).
	s.parSlabs(l.n, func(kLo, kHi int) {
		for k := kLo; k < kHi; k++ {
			for j := 1; j <= l.n; j++ {
				base := (k*st+j)*st + 1
				copy(l.u[base:base+l.n], l.r[base:base+l.n])
			}
		}
	})
	pts := int64(l.n) * int64(l.n) * int64(l.n)
	s.stats.Flops += pts * (s.st.flopsPerPoint() + 3)
	s.stats.Bytes += pts * 8 * 4 // read u,f; write r, copy back
}

// residual computes r = f − A u on level l.
func (s *Solver) residual(l *level) {
	st := l.n + 2
	st2 := st * st
	s.parSlabs(l.n, func(kLo, kHi int) {
		for k := kLo; k < kHi; k++ {
			for j := 1; j <= l.n; j++ {
				base := (k*st + j) * st
				for i := 1; i <= l.n; i++ {
					c := base + i
					l.r[c] = l.f[c] - s.st.apply(l.u, c, st, st2, l.h)
				}
			}
		}
	})
	pts := int64(l.n) * int64(l.n) * int64(l.n)
	s.stats.Flops += pts * (s.st.flopsPerPoint() + 1)
	s.stats.Bytes += pts * 8 * 3
}

// ResidualNorm returns the scaled L2 norm of the finest-level residual.
func (s *Solver) ResidualNorm() float64 {
	fine := s.levels[0]
	s.residual(fine)
	return fine.norm2Scaled(fine.r)
}

// restrictField applies 3-D full weighting (tensor [¼ ½ ¼]) from fine
// field src to coarse field dst.
func (s *Solver) restrictField(fine, coarse *level, src, dst []float64) {
	fst := fine.n + 2
	fst2 := fst * fst
	cst := coarse.n + 2
	w := [3]float64{0.25, 0.5, 0.25}
	s.parSlabs(coarse.n, func(kLo, kHi int) {
		for kc := kLo; kc < kHi; kc++ {
			kf := 2 * kc
			for jc := 1; jc <= coarse.n; jc++ {
				jf := 2 * jc
				cbase := (kc*cst + jc) * cst
				for ic := 1; ic <= coarse.n; ic++ {
					fc := (kf*fst+jf)*fst + 2*ic
					var sum float64
					for dk := -1; dk <= 1; dk++ {
						for dj := -1; dj <= 1; dj++ {
							for di := -1; di <= 1; di++ {
								sum += w[dk+1] * w[dj+1] * w[di+1] *
									src[fc+dk*fst2+dj*fst+di]
							}
						}
					}
					dst[cbase+ic] = sum
				}
			}
		}
	})
	pts := int64(coarse.n) * int64(coarse.n) * int64(coarse.n)
	s.stats.Flops += pts * 53
	s.stats.Bytes += pts * 8 * 28
}

// prolongAdd adds the trilinear interpolation of the coarse solution to
// the fine solution: u_f += P u_c.
func (s *Solver) prolongAdd(fine, coarse *level) {
	fst := fine.n + 2
	cst := coarse.n + 2
	s.parSlabs(fine.n, func(kLo, kHi int) {
		for kf := kLo; kf < kHi; kf++ {
			kc, kr := kf/2, kf%2
			for jf := 1; jf <= fine.n; jf++ {
				jc, jr := jf/2, jf%2
				fbase := (kf*fst + jf) * fst
				for ifx := 1; ifx <= fine.n; ifx++ {
					ic, ir := ifx/2, ifx%2
					var v float64
					// Each odd index interpolates between coarse ic and
					// ic+1; even coincides with coarse ic. Coarse ghost
					// cells are zero, matching the Dirichlet boundary.
					for dk := 0; dk <= kr; dk++ {
						wk := 1.0
						if kr == 1 {
							wk = 0.5
						}
						for dj := 0; dj <= jr; dj++ {
							wj := 1.0
							if jr == 1 {
								wj = 0.5
							}
							for di := 0; di <= ir; di++ {
								wi := 1.0
								if ir == 1 {
									wi = 0.5
								}
								v += wk * wj * wi *
									coarse.u[((kc+dk)*cst+jc+dj)*cst+ic+di]
							}
						}
					}
					fine.u[fbase+ifx] += v
				}
			}
		}
	})
	pts := int64(fine.n) * int64(fine.n) * int64(fine.n)
	s.stats.Flops += pts * 15
	s.stats.Bytes += pts * 8 * 10
}

// vcycleAt runs one V-cycle starting at level li.
func (s *Solver) vcycleAt(li int) {
	l := s.levels[li]
	if li == len(s.levels)-1 {
		// Coarsest grid: smooth to convergence (3³ or so — cheap).
		for i := 0; i < 60; i++ {
			s.smooth(l)
		}
		return
	}
	for i := 0; i < s.cfg.Nu1; i++ {
		s.smooth(l)
	}
	s.residual(l)
	coarse := s.levels[li+1]
	s.restrictField(l, coarse, l.r, coarse.f)
	zero(coarse.u)
	s.vcycleAt(li + 1)
	if s.cfg.Shape == WCycle && li+1 < len(s.levels)-1 {
		// W-cycle: correct, re-smooth implicitly via the second visit.
		s.vcycleAt(li + 1)
	}
	s.prolongAdd(l, coarse)
	for i := 0; i < s.cfg.Nu2; i++ {
		s.smooth(l)
	}
}

// VCycle runs one V-cycle on the finest level and returns the resulting
// residual norm.
func (s *Solver) VCycle() float64 {
	// The coarse-level RHS fields are overwritten inside the cycle with
	// restricted residuals; the finest f is authoritative.
	s.vcycleAt(0)
	return s.ResidualNorm()
}

// FMG runs a full multigrid solve: exact-ish solve on the coarsest grid,
// then per level prolongate and run vcycles V-cycles. Returns the finest
// residual norm. SetRHS must have been called.
func (s *Solver) FMG(vcycles int) float64 {
	if vcycles <= 0 {
		vcycles = 1
	}
	last := len(s.levels) - 1
	// levels[last].f already holds the restricted RHS from SetRHS.
	for i := 0; i < 60; i++ {
		s.smooth(s.levels[last])
	}
	for li := last - 1; li >= 0; li-- {
		zero(s.levels[li].u)
		s.prolongAdd(s.levels[li], s.levels[li+1])
		// Restore this level's RHS for the V-cycles below it: the
		// deeper levels' f get overwritten during the cycle, which is
		// fine because FMG proceeds upward.
		for c := 0; c < vcycles; c++ {
			s.vcycleAt(li)
		}
	}
	return s.ResidualNorm()
}
