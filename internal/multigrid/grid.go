// Package multigrid implements a real geometric full-multigrid (FMG)
// solver for Poisson-type problems on structured 3-D grids — the
// repository's stand-in for the HPGMG-FE benchmark kernel. It provides
// three operators mirroring the paper's HPGMG-FE configurations:
//
//   - Poisson1:       second-order 7-point finite-difference Laplacian
//     (models Q1 elements),
//   - Poisson2:       27-point Mehrstellen discretization with denser
//     coupling (models Q2 elements),
//   - Poisson2Affine: anisotropic 7-point operator arising from a Poisson
//     problem on an affine-deformed mesh.
//
// Grid sweeps (smoothing, residual, transfer) are parallelized over z-slabs
// with a goroutine worker pool sized by the caller, standing in for MPI
// ranks. The solver counts flops and memory traffic so the cluster
// simulator's cost model can be calibrated against real executions.
package multigrid

import (
	"fmt"
	"math"
)

// Operator selects the discretization.
type Operator int

// Supported operators (names match the paper's dataset variable).
const (
	Poisson1 Operator = iota
	Poisson2
	Poisson2Affine
)

// String implements fmt.Stringer with the dataset's level names.
func (op Operator) String() string {
	switch op {
	case Poisson1:
		return "poisson1"
	case Poisson2:
		return "poisson2"
	case Poisson2Affine:
		return "poisson2affine"
	default:
		return fmt.Sprintf("operator(%d)", int(op))
	}
}

// ParseOperator converts a dataset string to an Operator.
func ParseOperator(s string) (Operator, error) {
	switch s {
	case "poisson1":
		return Poisson1, nil
	case "poisson2":
		return Poisson2, nil
	case "poisson2affine":
		return Poisson2Affine, nil
	default:
		return 0, fmt.Errorf("multigrid: unknown operator %q", s)
	}
}

// affineMetric holds the inverse-squared stretch factors of the affine
// mesh deformation used by Poisson2Affine: solving -Δu on the deformed
// mesh equals solving -(cx uxx + cy uyy + cz uzz) on the unit cube.
var affineMetric = [3]float64{1.0, 1.0 / (1.2 * 1.2), 1.0 / (0.8 * 0.8)}

// level is one grid in the hierarchy: n interior points per dimension on
// the unit cube, plus a one-cell ghost boundary (Dirichlet zero).
type level struct {
	n int     // interior points per dimension
	h float64 // grid spacing = 1/(n+1)
	u []float64
	f []float64
	r []float64 // residual / scratch
}

func newLevel(n int) *level {
	s := n + 2
	return &level{
		n: n,
		h: 1.0 / float64(n+1),
		u: make([]float64, s*s*s),
		f: make([]float64, s*s*s),
		r: make([]float64, s*s*s),
	}
}

// idx maps (i, j, k) in [0, n+2)³ to linear storage.
func (l *level) idx(i, j, k int) int {
	s := l.n + 2
	return (k*s+j)*s + i
}

// zero clears a field.
func zero(v []float64) {
	for i := range v {
		v[i] = 0
	}
}

// norm2Scaled returns the grid-scaled L2 norm sqrt(h³ Σ v²) over interior
// points of the level.
func (l *level) norm2Scaled(v []float64) float64 {
	s := l.n + 2
	var sum float64
	for k := 1; k <= l.n; k++ {
		for j := 1; j <= l.n; j++ {
			base := (k*s + j) * s
			for i := 1; i <= l.n; i++ {
				x := v[base+i]
				sum += x * x
			}
		}
	}
	return math.Sqrt(sum * l.h * l.h * l.h)
}

// DOF returns the number of interior unknowns for a grid with n interior
// points per dimension.
func DOF(n int) int64 { return int64(n) * int64(n) * int64(n) }
