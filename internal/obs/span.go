package obs

import (
	"context"
	"time"
)

// SpanRecord is the serialized form of a finished span, one line of the
// JSONL sink. Durations are microseconds so records stay integral.
type SpanRecord struct {
	Name    string         `json:"name"`
	Parent  string         `json:"parent,omitempty"`
	Depth   int            `json:"depth"`
	StartUS int64          `json:"start_us"`
	DurUS   int64          `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// Span measures one timed region of execution. Spans nest through
// contexts: Start derives the parent from ctx, so a span tree mirrors
// the call tree wherever the context is threaded through. A Span is
// owned by the goroutine that started it; End must be called exactly
// once.
type Span struct {
	name   string
	parent *Span
	depth  int
	start  time.Time
	attrs  map[string]any
	ended  bool
}

type spanKey struct{}

// Start begins a span named name whose parent is the span carried by
// ctx, if any. The returned context carries the new span; pass it to
// callees whose spans should nest beneath this one. Ending the span
// records `<name>.duration` (seconds) and `<name>.count` in the Default
// registry and emits a span line to the sink when one is installed.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	if ctx == nil {
		ctx = context.Background()
	}
	parent, _ := ctx.Value(spanKey{}).(*Span)
	sp := &Span{name: name, parent: parent, start: time.Now()}
	if parent != nil {
		sp.depth = parent.depth + 1
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// Name returns the span's name.
func (s *Span) Name() string { return s.name }

// SetAttr attaches a key/value annotation that is emitted with the
// span's sink record. Call only from the goroutine that owns the span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = map[string]any{}
	}
	s.attrs[key] = value
}

// End finishes the span, records its duration and count in the Default
// registry, emits a sink record when a sink is installed, and returns
// the measured wall time. Calling End more than once records nothing
// after the first call.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	if s.ended {
		return d
	}
	s.ended = true
	T(s.name + ".duration").Observe(d.Seconds())
	C(s.name + ".count").Inc()
	if sinkInstalled() {
		rec := SpanRecord{
			Name:    s.name,
			Depth:   s.depth,
			StartUS: s.start.UnixMicro(),
			DurUS:   d.Microseconds(),
			Attrs:   s.attrs,
		}
		if s.parent != nil {
			rec.Parent = s.parent.name
		}
		emitSpan(rec)
	}
	return d
}
