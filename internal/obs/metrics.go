package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric, safe for
// concurrent use. The zero value is ready.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n may be any non-negative value;
// negative deltas are ignored to keep the counter monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value-wins float metric, safe for concurrent use. The
// zero value is ready and reads as 0.
type Gauge struct {
	bits atomic.Uint64
}

// Set records v as the current gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the most recently set value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefaultTimerBounds are the fixed histogram bucket upper bounds (in
// seconds) used by Registry.Timer: exponential from 1 µs to 10 s, wide
// enough for both a single Cholesky pivot sweep and a full GP refit.
var DefaultTimerBounds = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10,
}

// DefaultHistogramBounds are the generic value buckets used when a
// histogram is created without explicit bounds.
var DefaultHistogramBounds = []float64{
	0.001, 0.01, 0.1, 1, 10, 100, 1e3, 1e4,
}

// Histogram is a fixed-bucket histogram with running count, sum, min and
// max, safe for concurrent use. Buckets are cumulative-style upper
// bounds; observations above the last bound land in an overflow bucket.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1, last is overflow
	count   atomic.Int64
	sumBits atomic.Uint64
	minBits atomic.Uint64 // math.Float64bits(+Inf) initially
	maxBits atomic.Uint64 // math.Float64bits(-Inf) initially
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultHistogramBounds
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	h := &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v)
	h.buckets[idx].Add(1)
	h.count.Add(1)
	atomicAddFloat(&h.sumBits, v)
	atomicMinFloat(&h.minBits, v)
	atomicMaxFloat(&h.maxBits, v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Mean returns the arithmetic mean of observations (NaN when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return math.NaN()
	}
	return h.Sum() / float64(n)
}

// Min returns the smallest observation (+Inf when empty).
func (h *Histogram) Min() float64 { return math.Float64frombits(h.minBits.Load()) }

// Max returns the largest observation (-Inf when empty).
func (h *Histogram) Max() float64 { return math.Float64frombits(h.maxBits.Load()) }

// Bounds returns the bucket upper bounds (aliased; do not mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns a copy of the per-bucket counts; the final entry
// is the overflow bucket (observations above the last bound).
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// atomicAddFloat adds delta to the float64 stored in bits via a CAS loop.
func atomicAddFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func atomicMinFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if v >= math.Float64frombits(old) {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func atomicMaxFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Registry is a namespace of metrics, each get-or-created by name on
// first use and safe for concurrent access from any goroutine.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Default is the process-global registry used by the package-level
// helpers and by the repository's instrumented packages.
var Default = NewRegistry()

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket bounds on first use (DefaultHistogramBounds when
// none are supplied). Bounds of an existing histogram are not changed.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = newHistogram(bounds)
	r.hists[name] = h
	return h
}

// Timer returns a histogram with DefaultTimerBounds, intended for
// durations observed in seconds.
func (r *Registry) Timer(name string) *Histogram {
	return r.Histogram(name, DefaultTimerBounds...)
}

// Reset zeroes every registered metric in place. Metrics stay
// registered, so pointers cached in package-level vars (the instrumented
// packages' fast path) keep feeding the same registry entries; intended
// for tests and benchmark isolation.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, h := range r.hists {
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
		h.count.Store(0)
		h.sumBits.Store(0)
		h.minBits.Store(math.Float64bits(math.Inf(1)))
		h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	}
}

// C returns (creating if needed) a counter in the Default registry.
func C(name string) *Counter { return Default.Counter(name) }

// G returns (creating if needed) a gauge in the Default registry.
func G(name string) *Gauge { return Default.Gauge(name) }

// H returns (creating if needed) a histogram in the Default registry.
func H(name string, bounds ...float64) *Histogram { return Default.Histogram(name, bounds...) }

// T returns (creating if needed) a duration histogram in the Default
// registry.
func T(name string) *Histogram { return Default.Timer(name) }
