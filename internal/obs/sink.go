package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// The sink serializes span and event records as JSONL onto a single
// writer. It is process-global (like the Default registry) so that deep
// library code can emit without plumbing a handle through every call
// chain; installing is cheap and the disabled fast path is one atomic
// load.
type sinkState struct {
	mu  sync.Mutex
	enc *json.Encoder
}

var sink atomic.Pointer[sinkState]

// SetSink routes span and event records to w as JSON lines. A nil w
// disables the sink (the default). The caller keeps ownership of w and
// is responsible for closing it after the last emit.
func SetSink(w io.Writer) {
	if w == nil {
		sink.Store(nil)
		return
	}
	sink.Store(&sinkState{enc: json.NewEncoder(w)})
}

func sinkInstalled() bool { return sink.Load() != nil }

func emitRecord(rec jsonlRecord) {
	s := sink.Load()
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Encoding errors (closed file, full disk) are deliberately dropped:
	// observability must never fail the computation it observes.
	_ = s.enc.Encode(rec)
}

func emitSpan(rec SpanRecord) {
	emitRecord(jsonlRecord{T: "span", Span: &rec, AtUS: time.Now().UnixMicro()})
}

// Emit writes one free-form event record to the sink, if installed —
// the JSONL line `{"t":"event","event":name,"attrs":...}`. Used for
// point-in-time lifecycle facts (job submitted, trace rejected) that
// have no duration.
func Emit(name string, attrs map[string]any) {
	if !sinkInstalled() {
		return
	}
	emitRecord(jsonlRecord{T: "event", Event: name, Attrs: attrs, AtUS: time.Now().UnixMicro()})
}

// DumpMetrics appends a metric line per registered metric in the
// Default registry to the sink, if installed. Call once at the end of a
// run so the JSONL file carries both the trace and the final totals.
func DumpMetrics() {
	s := sink.Load()
	if s == nil {
		return
	}
	for _, m := range Default.Snapshot() {
		emitRecord(jsonlRecord{T: "metric", MetricSnapshot: sanitizeSnapshot(m)})
	}
}
