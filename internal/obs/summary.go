package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/asciiplot"
)

// WriteSummary renders a human-readable report of every metric in the
// registry: scalars as an aligned table, histograms with count/mean/
// min/max plus an asciiplot chart of the bucket occupancy, so a
// terminal user can see at a glance where the run's time went.
func (r *Registry) WriteSummary(w io.Writer) error {
	snaps := r.Snapshot()
	if len(snaps) == 0 {
		_, err := fmt.Fprintln(w, "obs: no metrics recorded")
		return err
	}
	var sb strings.Builder
	sb.WriteString("== obs metrics ==\n")
	wide := 0
	for _, m := range snaps {
		if len(m.Name) > wide {
			wide = len(m.Name)
		}
	}
	for _, m := range snaps {
		switch m.Type {
		case "counter":
			fmt.Fprintf(&sb, "%-*s  %d\n", wide, m.Name, int64(m.Value))
		case "gauge":
			fmt.Fprintf(&sb, "%-*s  %g\n", wide, m.Name, m.Value)
		}
	}
	for _, m := range snaps {
		if m.Type != "histogram" {
			continue
		}
		if m.Count == 0 {
			fmt.Fprintf(&sb, "%-*s  (no observations)\n", wide, m.Name)
			continue
		}
		fmt.Fprintf(&sb, "%-*s  n=%d sum=%.4g mean=%.4g min=%.4g max=%.4g\n",
			wide, m.Name, m.Count, m.Sum, m.Sum/float64(m.Count), m.Min, m.Max)
		ys := make([]float64, len(m.Bucket))
		for i, c := range m.Bucket {
			ys[i] = float64(c)
		}
		sb.WriteString(asciiplot.Series(ys, 48, 5,
			fmt.Sprintf("%s bucket occupancy (last = >%.3g)", m.Name, lastBound(m.Bounds))))
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func lastBound(bounds []float64) float64 {
	if len(bounds) == 0 {
		return 0
	}
	return bounds[len(bounds)-1]
}

// Summary renders the Default registry with WriteSummary.
func Summary() string {
	var sb strings.Builder
	_ = Default.WriteSummary(&sb)
	return sb.String()
}

// Brief returns a one-line digest of the Default registry — the headline
// counters plus total time in the busiest timers — for examples and CLI
// footers. Empty registry yields "obs: no metrics recorded".
func Brief() string {
	snaps := Default.Snapshot()
	if len(snaps) == 0 {
		return "obs: no metrics recorded"
	}
	type kv struct {
		name string
		text string
		sum  float64
	}
	var counters, timers []kv
	for _, m := range snaps {
		switch {
		case m.Type == "counter":
			counters = append(counters, kv{m.Name, fmt.Sprintf("%s=%d", m.Name, int64(m.Value)), m.Value})
		case m.Type == "histogram" && strings.HasSuffix(m.Name, ".duration") && m.Count > 0:
			timers = append(timers, kv{m.Name, fmt.Sprintf("%s=%.3gs", strings.TrimSuffix(m.Name, ".duration"), m.Sum), m.Sum})
		}
	}
	// Busiest timers first; keep the line short.
	sort.Slice(timers, func(i, j int) bool { return timers[i].sum > timers[j].sum })
	if len(timers) > 4 {
		timers = timers[:4]
	}
	sort.Slice(counters, func(i, j int) bool { return counters[i].sum > counters[j].sum })
	if len(counters) > 4 {
		counters = counters[:4]
	}
	parts := make([]string, 0, 1+len(counters)+len(timers))
	parts = append(parts, fmt.Sprintf("obs: %d metrics", len(snaps)))
	for _, t := range timers {
		parts = append(parts, t.text)
	}
	for _, c := range counters {
		parts = append(parts, c.text)
	}
	return strings.Join(parts, " | ")
}
