// Package obs is the repository's stdlib-only observability layer: a
// process-global metrics registry, span-style tracing, and a JSONL event
// sink. It exists because the paper's argument is economic — Active
// Learning pays off only when model fitting and point selection cost far
// less than the experiments they avoid — so every hot path (GP fits,
// Cholesky factorizations, AL iterations, scheduler events, power
// sampling) reports where its time goes. OBSERVABILITY.md at the
// repository root catalogs the metric and span names each package emits.
//
// # Metrics
//
// Three metric kinds live in a Registry, each get-or-created by name:
//
//   - Counter: monotone int64 (obs.C("mat.cholesky.count").Inc())
//   - Gauge: last-value float64 (obs.G("al.pool.size").Set(128))
//   - Histogram: fixed-bucket distribution with count/sum/min/max;
//     obs.T(name) is a histogram with duration buckets in seconds.
//
// The package-level helpers C, G, H and T use the Default registry,
// which instrumented packages cache in package-level vars so the hot
// path is a single atomic add. Registry.Snapshot, WriteJSONL and
// WriteSummary export the state; ReadJSONL parses it back.
//
// # Spans
//
// obs.Start(ctx, "gp.fit") opens a timed region; the returned context
// carries the span so nested Start calls record parent/child structure.
// Span.End records `<name>.duration` and `<name>.count` in the Default
// registry and, when a sink is installed, one JSONL line per span.
//
// # Sink
//
// SetSink(w) streams span and event records to w as JSON lines;
// DumpMetrics appends a final metric line per registered metric. The
// `-metrics` flag of cmd/alrun and cmd/alrepro wires this to a file.
//
// # Concurrency contract
//
// Counter, Gauge, Histogram and Registry are safe for concurrent use by
// any number of goroutines. A Span is owned by the goroutine that
// started it: SetAttr and End must not race. SetSink may be called
// concurrently with emission; records are serialized under an internal
// mutex.
package obs
