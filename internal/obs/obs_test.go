package obs

import (
	"bytes"
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentCounters hammers one counter, one gauge and one
// histogram from many goroutines; run with -race this is the package's
// concurrency contract check.
func TestConcurrentCounters(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("c")
			g := reg.Gauge("g")
			h := reg.Histogram("h", 1, 10, 100)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i % 150))
			}
		}(w)
	}
	wg.Wait()

	if got := reg.Counter("c").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	h := reg.Histogram("h")
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	var bucketSum int64
	for _, b := range h.BucketCounts() {
		bucketSum += b
	}
	if bucketSum != h.Count() {
		t.Errorf("bucket sum %d != count %d", bucketSum, h.Count())
	}
	if h.Min() != 0 || h.Max() != 149 {
		t.Errorf("min/max = %g/%g, want 0/149", h.Min(), h.Max())
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5 (negative deltas ignored)", got)
	}
}

func TestHistogramStats(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 105.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("sum = %g, want %g", got, want)
	}
	want := []int64{1, 1, 1, 1} // one per bucket incl. overflow
	for i, b := range h.BucketCounts() {
		if b != want[i] {
			t.Errorf("bucket[%d] = %d, want %d", i, b, want[i])
		}
	}
	h.Observe(math.NaN())
	if h.Count() != 4 {
		t.Errorf("NaN observation changed count to %d", h.Count())
	}
}

// TestSpanNesting checks that contexts thread parent/child structure
// and that ending a span feeds the duration and count metrics.
func TestSpanNesting(t *testing.T) {
	Default.Reset()
	var buf bytes.Buffer
	SetSink(&buf)
	defer SetSink(nil)

	ctx, root := Start(context.Background(), "outer")
	ctx2, child := Start(ctx, "inner")
	_, grand := Start(ctx2, "leaf")
	if FromContext(ctx2) != child {
		t.Fatal("context does not carry the innermost span")
	}
	grand.SetAttr("k", 42)
	time.Sleep(time.Millisecond)
	grand.End()
	child.End()
	root.End()

	if got := C("outer.count").Value(); got != 1 {
		t.Errorf("outer.count = %d, want 1", got)
	}
	if T("leaf.duration").Count() != 1 {
		t.Error("leaf.duration histogram empty")
	}
	if d := T("leaf.duration").Sum(); d <= 0 {
		t.Errorf("leaf duration = %g, want > 0", d)
	}

	spans, err := ReadJSONLSpans(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 3 {
		t.Fatalf("sink has %d spans, want 3", len(spans))
	}
	// Spans end innermost-first.
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["leaf"].Parent != "inner" || byName["leaf"].Depth != 2 {
		t.Errorf("leaf span = %+v, want parent=inner depth=2", byName["leaf"])
	}
	if byName["inner"].Parent != "outer" || byName["inner"].Depth != 1 {
		t.Errorf("inner span = %+v, want parent=outer depth=1", byName["inner"])
	}
	if byName["outer"].Parent != "" || byName["outer"].Depth != 0 {
		t.Errorf("outer span = %+v, want root", byName["outer"])
	}
	if v, ok := byName["leaf"].Attrs["k"]; !ok || v.(float64) != 42 {
		t.Errorf("leaf attrs = %v, want k=42", byName["leaf"].Attrs)
	}
}

func TestSpanDoubleEndRecordsOnce(t *testing.T) {
	Default.Reset()
	_, sp := Start(context.Background(), "once")
	sp.End()
	sp.End()
	if got := C("once.count").Value(); got != 1 {
		t.Errorf("once.count = %d after double End, want 1", got)
	}
}

// TestJSONLRoundTrip dumps a registry and parses it back.
func TestJSONLRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("jobs").Add(7)
	reg.Gauge("util").Set(0.5)
	h := reg.Timer("fit.duration")
	h.Observe(0.002)
	h.Observe(0.2)
	reg.Histogram("empty") // no observations: ±Inf min/max must not break JSON

	var buf bytes.Buffer
	if err := reg.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	snaps, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]MetricSnapshot{}
	for _, s := range snaps {
		byName[s.Name] = s
	}
	if len(byName) != 4 {
		t.Fatalf("round-trip has %d metrics, want 4", len(byName))
	}
	if m := byName["jobs"]; m.Type != "counter" || m.Value != 7 {
		t.Errorf("jobs = %+v", m)
	}
	if m := byName["util"]; m.Type != "gauge" || m.Value != 0.5 {
		t.Errorf("util = %+v", m)
	}
	m := byName["fit.duration"]
	if m.Type != "histogram" || m.Count != 2 || m.Min != 0.002 || m.Max != 0.2 {
		t.Errorf("fit.duration = %+v", m)
	}
	var bucketSum int64
	for _, b := range m.Bucket {
		bucketSum += b
	}
	if bucketSum != 2 || len(m.Bucket) != len(m.Bounds)+1 {
		t.Errorf("buckets %v over bounds %v", m.Bucket, m.Bounds)
	}
}

func TestEmitAndDumpMetrics(t *testing.T) {
	Default.Reset()
	var buf bytes.Buffer
	SetSink(&buf)
	defer SetSink(nil)

	Emit("job.end", map[string]any{"state": "COMPLETED"})
	C("n").Inc()
	DumpMetrics()

	out := buf.String()
	if !strings.Contains(out, `"t":"event"`) || !strings.Contains(out, "job.end") {
		t.Errorf("sink missing event line: %q", out)
	}
	snaps, err := ReadJSONL(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range snaps {
		if s.Name == "n" && s.Type == "counter" && s.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("dumped metrics missing n=1: %+v", snaps)
	}
}

func TestSummaryAndBrief(t *testing.T) {
	Default.Reset()
	C("gp.fit.count").Add(3)
	T("gp.fit.duration").Observe(0.5)
	s := Summary()
	if !strings.Contains(s, "gp.fit.count") || !strings.Contains(s, "bucket occupancy") {
		t.Errorf("summary missing content:\n%s", s)
	}
	b := Brief()
	if !strings.Contains(b, "obs:") || !strings.Contains(b, "gp.fit.count=3") {
		t.Errorf("brief = %q", b)
	}

	var sb strings.Builder
	if err := NewRegistry().WriteSummary(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no metrics recorded") {
		t.Errorf("empty summary = %q", sb.String())
	}
}

// TestResetZeroesInPlace is the contract the instrumented packages rely
// on: package-level metric pointers keep feeding the registry across a
// Reset.
func TestResetZeroesInPlace(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x")
	h := reg.Histogram("h", 1, 2)
	c.Add(5)
	h.Observe(1.5)
	reg.Reset()
	if c.Value() != 0 || h.Count() != 0 {
		t.Errorf("after Reset: counter=%d hist=%d, want 0/0", c.Value(), h.Count())
	}
	c.Inc()
	h.Observe(0.5)
	if reg.Counter("x") != c {
		t.Fatal("Reset dropped the registered counter identity")
	}
	snapCount := 0
	for _, m := range reg.Snapshot() {
		if m.Name == "x" && m.Value == 1 {
			snapCount++
		}
		if m.Name == "h" && m.Count == 1 {
			snapCount++
		}
	}
	if snapCount != 2 {
		t.Errorf("post-Reset updates not visible in snapshot: %+v", reg.Snapshot())
	}
}
