package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// MetricSnapshot is the serializable point-in-time state of one metric.
// Counter and gauge snapshots carry Value; histogram snapshots carry
// Count/Sum/Min/Max and the per-bucket tallies.
type MetricSnapshot struct {
	Name   string    `json:"name"`
	Type   string    `json:"type"` // "counter" | "gauge" | "histogram"
	Value  float64   `json:"value,omitempty"`
	Count  int64     `json:"count,omitempty"`
	Sum    float64   `json:"sum,omitempty"`
	Min    float64   `json:"min,omitempty"`
	Max    float64   `json:"max,omitempty"`
	Bounds []float64 `json:"bounds,omitempty"`
	Bucket []int64   `json:"bucket,omitempty"`
}

// Snapshot returns the state of every registered metric, sorted by name
// (histograms and scalars interleaved).
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]MetricSnapshot, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, MetricSnapshot{Name: name, Type: "counter", Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, MetricSnapshot{Name: name, Type: "gauge", Value: g.Value()})
	}
	for name, h := range r.hists {
		s := MetricSnapshot{
			Name:   name,
			Type:   "histogram",
			Count:  h.Count(),
			Sum:    h.Sum(),
			Bounds: append([]float64(nil), h.Bounds()...),
			Bucket: h.BucketCounts(),
		}
		if s.Count > 0 {
			s.Min, s.Max = h.Min(), h.Max()
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// jsonlRecord is one line of the JSONL sink/dump format, discriminated
// by T: "metric" lines embed a MetricSnapshot, "span" and "event" lines
// carry the trace fields.
type jsonlRecord struct {
	T string `json:"t"`
	MetricSnapshot
	Span  *SpanRecord    `json:"span,omitempty"`
	Event string         `json:"event,omitempty"`
	Attrs map[string]any `json:"attrs,omitempty"`
	AtUS  int64          `json:"at_us,omitempty"`
}

// WriteJSONL dumps a snapshot of every registered metric as one JSON
// object per line (the `{"t":"metric",...}` records of the sink format).
func (r *Registry) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, m := range r.Snapshot() {
		m = sanitizeSnapshot(m)
		if err := enc.Encode(jsonlRecord{T: "metric", MetricSnapshot: m}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// sanitizeSnapshot clears non-finite fields (empty-histogram ±Inf
// min/max) that encoding/json cannot represent.
func sanitizeSnapshot(m MetricSnapshot) MetricSnapshot {
	if math.IsInf(m.Min, 0) || math.IsNaN(m.Min) {
		m.Min = 0
	}
	if math.IsInf(m.Max, 0) || math.IsNaN(m.Max) {
		m.Max = 0
	}
	return m
}

// ReadJSONL parses a JSONL stream (as produced by WriteJSONL or the
// event sink) and returns the metric snapshots it contains, ignoring
// span and event lines.
func ReadJSONL(r io.Reader) ([]MetricSnapshot, error) {
	var out []MetricSnapshot
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec jsonlRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("obs: JSONL line %d: %w", line, err)
		}
		if rec.T == "metric" {
			out = append(out, rec.MetricSnapshot)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadJSONLSpans parses a JSONL stream and returns the span records it
// contains, ignoring metric and event lines.
func ReadJSONLSpans(r io.Reader) ([]SpanRecord, error) {
	var out []SpanRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec jsonlRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("obs: JSONL line %d: %w", line, err)
		}
		if rec.T == "span" && rec.Span != nil {
			out = append(out, *rec.Span)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
