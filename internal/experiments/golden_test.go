package experiments

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/al"
	"repro/internal/dataset"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden trace files in testdata/golden")

// goldenTrace is the on-disk format of one pinned AL trajectory: the
// full per-iteration record stream of a single deterministic
// realization on the §V-B study subset.
type goldenTrace struct {
	Name     string          `json:"name"`
	Strategy string          `json:"strategy"`
	Seed     int64           `json:"seed"`
	Iters    int             `json:"iters"`
	Records  []al.JSONRecord `json:"records"`
}

// goldenRun regenerates the trace a golden file pins: the Fig. 6/8 loop
// configuration (σn ≥ 1e-1, revisiting allowed, quick reoptimization
// cadence) on the poisson1/NP=32 subset with a fixed partition and RNG.
func goldenRun(t *testing.T, strategy al.Strategy, seed int64, iters int) []al.JSONRecord {
	t.Helper()
	d, err := subset2D(1)
	if err != nil {
		t.Fatalf("study subset: %v", err)
	}
	rng := rand.New(rand.NewSource(seed))
	part, err := dataset.RandomPartition(d, dataset.PartitionConfig{NInitial: 1, TestFrac: 0.2}, rng)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	res, err := al.Run(d, part, fig6Loop(strategy, iters, true), rng)
	if err != nil {
		t.Fatalf("al.Run: %v", err)
	}
	out := make([]al.JSONRecord, len(res.Records))
	for i, r := range res.Records {
		out[i] = al.ToJSONRecord(r)
	}
	return out
}

// checkGolden regenerates a pinned trace and compares it to its golden
// file. Integer fields (selected row, training size) must match
// exactly — a changed selection IS a changed algorithm; float fields
// (RMSE, AMSD, cost, ...) compare to a 1e-9 relative tolerance so a
// reordered-but-equivalent floating-point expression does not trip the
// alarm while a real numerical regression does. Run with -update to
// re-pin after an intentional behavior change.
func checkGolden(t *testing.T, name string, strategy al.Strategy, stratName string, seed int64, iters int) {
	t.Helper()
	got := goldenRun(t, strategy, seed, iters)
	path := filepath.Join("testdata", "golden", name+".json")

	if *updateGolden {
		tr := goldenTrace{Name: name, Strategy: stratName, Seed: seed, Iters: iters, Records: got}
		data, err := json.MarshalIndent(tr, "", "  ")
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatalf("write %s: %v", path, err)
		}
		t.Logf("updated %s (%d records)", path, len(got))
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s (run `go test ./internal/experiments -run TestGolden -update` to create it): %v", path, err)
	}
	var want goldenTrace
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	if want.Seed != seed || want.Iters != iters || want.Strategy != stratName {
		t.Fatalf("%s pins (strategy %s, seed %d, iters %d), test now runs (%s, %d, %d) — update the golden file",
			path, want.Strategy, want.Seed, want.Iters, stratName, seed, iters)
	}
	if len(got) != len(want.Records) {
		t.Fatalf("trace length %d, golden has %d", len(got), len(want.Records))
	}
	for i := range got {
		if err := diffRecord(got[i], want.Records[i]); err != nil {
			t.Errorf("record %d drifted from %s: %v", i, path, err)
		}
	}
}

// diffRecord compares one record against its pinned value.
func diffRecord(got, want al.JSONRecord) error {
	if got.Iter != want.Iter || got.Row != want.Row || got.Train != want.Train {
		return fmt.Errorf("selection changed: got (iter %d, row %d, train %d), want (iter %d, row %d, train %d)",
			got.Iter, got.Row, got.Train, want.Iter, want.Row, want.Train)
	}
	fields := []struct {
		name     string
		got, val float64
	}{
		{"sd_chosen", float64(got.SDChosen), float64(want.SDChosen)},
		{"amsd", float64(got.AMSD), float64(want.AMSD)},
		{"rmse", float64(got.RMSE), float64(want.RMSE)},
		{"coverage", float64(got.Coverage), float64(want.Coverage)},
		{"cum_cost", float64(got.CumCost), float64(want.CumCost)},
		{"lml", float64(got.LML), float64(want.LML)},
		{"noise", float64(got.Noise), float64(want.Noise)},
	}
	const relTol = 1e-9
	for _, f := range fields {
		if math.IsNaN(f.got) && math.IsNaN(f.val) {
			continue
		}
		scale := math.Max(math.Abs(f.val), 1)
		if math.Abs(f.got-f.val) > relTol*scale {
			return fmt.Errorf("%s = %.17g, golden pins %.17g (rel tol %g)", f.name, f.got, f.val, relTol)
		}
	}
	return nil
}

// TestGoldenFig6VarianceReduction pins the Fig. 6 trajectory: a single
// Variance Reduction realization's full record stream (selected rows
// and RMSE/AMSD/cost trajectories) on the study subset.
func TestGoldenFig6VarianceReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("golden trace regeneration skipped in -short mode")
	}
	checkGolden(t, "fig6_variance_reduction", al.VarianceReduction{}, "variance-reduction", 424242, 15)
}

// TestGoldenFig8CostEfficiency pins the Fig. 8 Cost Efficiency
// trajectory the same way — together the two files fence the paper's
// headline strategy comparison against silent numerical drift.
func TestGoldenFig8CostEfficiency(t *testing.T) {
	if testing.Short() {
		t.Skip("golden trace regeneration skipped in -short mode")
	}
	checkGolden(t, "fig8_cost_efficiency", al.CostEfficiency{}, "cost-efficiency", 424242, 15)
}
