package experiments

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/stats"
)

// fig1NPLevels are the process counts visualized in Figs. 1–2.
var fig1NPLevels = []float64{1, 8, 32, 128}

// Fig1 regenerates the raw 3-D scatter subsets of Fig. 1: operator fixed
// to poisson1, selected NP levels, (size, frequency) → runtime for the
// Performance dataset and → energy for the Power dataset. The headline
// observation is that the Power dataset is far noisier than Performance.
func Fig1(opts Options) (*Report, error) {
	r := newReport("F1", "Visualization of subsets from the analyzed datasets")
	perf, err := perfDataset(opts.seed())
	if err != nil {
		return nil, err
	}
	pow, err := powerDataset(opts.seed())
	if err != nil {
		return nil, err
	}

	emit := func(name string, d *dataset.Dataset, resp string) float64 {
		p1 := d.WhereTag(dataset.TagOperator, "poisson1")
		nps := p1.Var(dataset.VarNP)
		sub := p1.Filter(func(i int) bool {
			for _, l := range fig1NPLevels {
				if nps[i] == l {
					return true
				}
			}
			return false
		})
		rows := make([][]float64, 0, sub.Len())
		for i := 0; i < sub.Len(); i++ {
			x := sub.Row(i)
			rows = append(rows, []float64{x[0], x[1], x[2], sub.RespAt(resp, i)})
		}
		r.Series[name] = rows
		configs, maxRep, cv := sub.RepeatStats(resp)
		r.addf("%s subset: %d jobs over NP %v (%d configs, up to %d repeats)",
			name, sub.Len(), fig1NPLevels, configs, maxRep)
		return cv
	}
	perfCV := emit("performance_runtime", perf, dataset.RespRuntime)
	powCV := emit("power_energy", pow, dataset.RespEnergy)

	r.Values["performance_repeat_cv"] = perfCV
	r.Values["power_repeat_cv"] = powCV
	r.addf("median coefficient of variation across repeated configs: performance %.4f, power %.4f", perfCV, powCV)
	r.addf("paper: variance in the Power dataset is much higher than in Performance")
	return r, nil
}

// Fig2 regenerates the log-transformed view of Fig. 2 and verifies the
// structural observation the paper reads off it: log runtime grows
// linearly in log problem size (slope ≈ 1 on the log–log plot).
func Fig2(opts Options) (*Report, error) {
	r := newReport("F2", "Jobs from Fig. 1 with log-transformed responses")
	perf, err := perfDataset(opts.seed())
	if err != nil {
		return nil, err
	}
	sub := perf.WhereTag(dataset.TagOperator, "poisson1").
		WhereVar(dataset.VarNP, 32).
		WhereVar(dataset.VarFreq, 2.4)
	if err := sub.LogVar(dataset.VarSize); err != nil {
		return nil, err
	}
	if err := sub.LogResp(dataset.RespRuntime); err != nil {
		return nil, err
	}

	xs := sub.Var(dataset.VarSize)
	ys := sub.Resp(dataset.RespRuntime)
	rows := make([][]float64, len(xs))
	for i := range xs {
		rows[i] = []float64{xs[i], ys[i]}
	}
	r.Series["log_runtime_vs_log_size"] = rows

	// The linear-growth observation concerns the work-dominated regime;
	// at the smallest sizes the fixed job-startup cost flattens the
	// curve. Fit the slope over the top third of the (log) size range —
	// where work dominates startup by orders of magnitude — and report
	// the full-range fit alongside.
	fit := func(keep func(x float64) bool) (slope, r2 float64) {
		var fx []float64
		var fy []float64
		for i, x := range xs {
			if keep(x) {
				fx = append(fx, x)
				fy = append(fy, ys[i])
			}
		}
		xm := mat.New(len(fx), 1)
		for i, x := range fx {
			xm.Set(i, 0, x)
		}
		ols, err := stats.FitOLS(xm, fy)
		if err != nil {
			return math.NaN(), math.NaN()
		}
		corr := stats.Correlation(ols.PredictAll(xm), fy)
		return ols.Coef[1], corr * corr
	}
	sLo, sHi := stats.MinMax(xs)
	cut := sLo + 2.0/3.0*(sHi-sLo)
	slopeAll, r2All := fit(func(float64) bool { return true })
	slope, r2 := fit(func(x float64) bool { return x >= cut })
	r.Values["loglog_slope"] = slope
	r.Values["loglog_r2"] = r2
	r.Values["loglog_slope_full_range"] = slopeAll
	r.Values["loglog_r2_full_range"] = r2All
	r.addf("log10(runtime) vs log10(size), poisson1, NP=32, 2.4 GHz: slope %.3f (R² %.4f) in the work-dominated top third; %.3f (R² %.4f) over the full range incl. the startup-cost floor",
		slope, r2, slopeAll, r2All)
	r.addf("paper: the plot confirms linear growth of Runtime along the (log) problem-size dimension")
	return r, nil
}
