package experiments

import (
	"math"
	"testing"
)

func TestAblationGamma(t *testing.T) {
	r, err := AblationGamma(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Cost must drop substantially from γ=0 to γ=1 (the whole point of
	// cost-aware selection).
	if r.Values["cost_ratio_0_to_1"] < 1.5 {
		t.Fatalf("cost ratio %g — γ had no cost effect", r.Values["cost_ratio_0_to_1"])
	}
	if len(r.Series["gamma_sweep"]) != 5 {
		t.Fatalf("sweep rows %d", len(r.Series["gamma_sweep"]))
	}
	for _, row := range r.Series["gamma_sweep"] {
		if math.IsNaN(row[1]) || row[2] <= 0 {
			t.Fatalf("bad sweep row %v", row)
		}
	}
}

func TestAblationKernel(t *testing.T) {
	r, err := AblationKernel(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"rbf", "matern32", "matern52", "rq"} {
		v, ok := r.Values["rmse_"+name]
		if !ok || math.IsNaN(v) || v <= 0 {
			t.Fatalf("missing or bad RMSE for %s: %g", name, v)
		}
		// All families must produce usable models on this smooth data.
		if v > 1.0 {
			t.Fatalf("%s RMSE %g implausibly high", name, v)
		}
	}
}

func TestAblationSelection(t *testing.T) {
	r, err := AblationSelection(quick)
	if err != nil {
		t.Fatal(err)
	}
	lml, cv := r.Values["rmse_lml"], r.Values["rmse_loocv"]
	if math.IsNaN(lml) || math.IsNaN(cv) {
		t.Fatal("missing RMSEs")
	}
	// Neither route should be wildly worse than the other on this
	// well-behaved subset.
	worse, better := math.Max(lml, cv), math.Min(lml, cv)
	if worse > 6*better+0.05 {
		t.Fatalf("selection routes diverge: LML %g vs LOO-CV %g", lml, cv)
	}
	// Each objective must (weakly) prefer its own fit.
	if r.Values["lml_of_lml_fit"] < r.Values["lml_of_cv_fit"]-1e-6 {
		t.Fatal("LML fit is not the LML argmax among the two")
	}
	if r.Values["loocv_of_cv_fit"] < r.Values["loocv_of_lml_fit"]-1e-6 {
		t.Fatal("CV fit is not the LOO argmax among the two")
	}
}

func TestAblationScaling(t *testing.T) {
	r, err := AblationScaling(quick)
	if err != nil {
		t.Fatal(err)
	}
	if r.Values["dense_fit_s"] <= 0 || r.Values["sparse_fit_s"] <= 0 {
		t.Fatal("fit timings missing")
	}
	// Both approaches must model the smooth surface well.
	if r.Values["dense_rmse"] > 0.2 || r.Values["sparse_rmse"] > 0.3 {
		t.Fatalf("RMSEs too high: dense %g sparse %g",
			r.Values["dense_rmse"], r.Values["sparse_rmse"])
	}
	if len(r.Series["scaling"]) < 2 {
		t.Fatal("scaling series missing")
	}
}

func TestAblationEMCM(t *testing.T) {
	r, err := AblationEMCM(quick)
	if err != nil {
		t.Fatal(err)
	}
	gpr, emcm := r.Values["final_rmse_gpr"], r.Values["final_rmse_emcm"]
	if math.IsNaN(gpr) || math.IsNaN(emcm) {
		t.Fatal("RMSEs missing")
	}
	// The paper's §III argument: GPR-driven AL must beat the EMCM
	// baseline on this nonlinear, noisy surface.
	if gpr >= emcm {
		t.Fatalf("GPR RMSE %g not below EMCM %g", gpr, emcm)
	}
	if len(r.Series["gpr_vr"]) == 0 || len(r.Series["emcm"]) == 0 {
		t.Fatal("curves missing")
	}
}

func TestAblationParallel(t *testing.T) {
	r, err := AblationParallel(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Scheduling speedup (same experiments batched vs serialized) is ≥ 1
	// by construction; the ablation's documented finding is that it
	// stays far below the ideal batch size because one expensive pick
	// dominates each round on this heavy-tailed cost spectrum.
	for _, k := range []string{"vr_sched_speedup", "ce_sched_speedup"} {
		s := r.Values[k]
		if s < 1-1e-9 {
			t.Fatalf("%s below 1: %g (impossible by construction)", k, s)
		}
		if s > 4+1e-9 {
			t.Fatalf("%s above the batch size: %g (impossible)", k, s)
		}
	}
	// Cost-aware selection must still spend fewer resources in total.
	if r.Values["ce_par_resource"] >= r.Values["vr_par_resource"] {
		t.Fatalf("CE batch resources %g not below VR %g",
			r.Values["ce_par_resource"], r.Values["vr_par_resource"])
	}
	for _, k := range []string{"vr_par_rmse", "vr_seq_rmse", "ce_par_rmse", "ce_seq_rmse"} {
		if math.IsNaN(r.Values[k]) {
			t.Fatalf("missing %s", k)
		}
	}
}
