package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/al"
	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/serve"
	"repro/internal/stats"
)

// Eval-harness metrics (see OBSERVABILITY.md): cells executed, client
// observations fed back, and /predict calls used for learning curves.
var (
	evalCellsRun     = obs.C("eval.cells.run")
	evalObservations = obs.C("eval.observations")
	evalPredictCalls = obs.C("eval.predict.calls")
	evalCellFailures = obs.C("eval.cell.failures")
)

// EvalStrategy names one al-registry strategy plus the spec knobs it
// consumes — one column of the evaluation grid.
type EvalStrategy struct {
	Name    string  `json:"name"`
	Gamma   float64 `json:"gamma,omitempty"`
	Epsilon float64 `json:"epsilon,omitempty"`
	K       int     `json:"k,omitempty"`
	Lambda  float64 `json:"lambda,omitempty"`
	Perturb float64 `json:"perturb,omitempty"`
}

// label resolves the strategy's display name through the registry, so
// reports use exactly the Name() campaigns report.
func (s EvalStrategy) label() (string, error) {
	strat, err := al.NewStrategy(s.Name, al.StrategyParams{
		Gamma: s.Gamma, Epsilon: s.Epsilon, K: s.K, Lambda: s.Lambda, Perturb: s.Perturb,
	})
	if err != nil {
		return "", err
	}
	return strat.Name(), nil
}

// EvalGrid is the full evaluation specification: every strategy runs on
// every dataset under every noise model, each cell as its own campaign
// against the server. Splits, seed experiments, and noise draws depend
// only on (dataset, noise, Seed) — never on the strategy — so all
// strategies in a group face the identical problem and the comparison
// is paired.
type EvalGrid struct {
	// Server is the base URL of a live alserve instance.
	Server string
	// Strategies are the grid columns (default: the paper pair plus
	// random, qbc and diversity).
	Strategies []EvalStrategy
	// Datasets are eval dataset names (EvalDatasetNames; default
	// "synthetic-1d" and "performance-1d").
	Datasets []string
	// NoiseModels are measurement-noise models applied client-side:
	// "none" or "gauss[:sd]" (default sd 0.05).
	NoiseModels []string
	// Iterations is the AL step budget per campaign (default 10,
	// quick-mode 6).
	Iterations int
	// Seed drives every deterministic choice in the grid (default 1).
	Seed int64
	// TargetRMSE is the accuracy bar for the cost-to-target metric, in
	// model/log space. 0 picks a per-dataset default calibrated to each
	// dataset's response scale (see defaultTarget) — a single loose bar
	// would let any strategy cross it on the first cheap point of an
	// easy dataset and rank them by luck.
	TargetRMSE float64
	// Quick shrinks datasets and budgets for -short tests and CI smoke.
	Quick bool
	// Client is the HTTP client (default: a resilience retrying client,
	// which is also what makes idempotent observe retries safe).
	Client *http.Client
}

func (g *EvalGrid) withDefaults() {
	if len(g.Strategies) == 0 {
		g.Strategies = []EvalStrategy{
			{Name: "random"},
			{Name: "variance-reduction"},
			{Name: "cost-efficiency"},
			{Name: "qbc", K: 4},
			{Name: "diversity", Lambda: 1},
		}
	}
	if len(g.Datasets) == 0 {
		g.Datasets = []string{"synthetic-1d", "performance-1d"}
	}
	if len(g.NoiseModels) == 0 {
		g.NoiseModels = []string{"none"}
	}
	if g.Iterations <= 0 {
		g.Iterations = 10
		if g.Quick {
			g.Iterations = 6
		}
	}
	if g.Seed == 0 {
		g.Seed = 1
	}
	if g.Client == nil {
		g.Client = resilience.NewClient(nil, resilience.TransportConfig{Seed: g.Seed})
	}
}

// CurvePoint is one learning-curve sample: the model's test RMSE after
// spending CumCost on experiments.
type CurvePoint struct {
	CumCost float64 `json:"cum_cost"`
	RMSE    float64 `json:"rmse"`
}

// EvalCell is the outcome of one strategy × dataset × noise campaign.
type EvalCell struct {
	Strategy     string       `json:"strategy"`
	Dataset      string       `json:"dataset"`
	Noise        string       `json:"noise"`
	Target       float64      `json:"target"`
	Curve        []CurvePoint `json:"curve"`
	FinalRMSE    float64      `json:"final_rmse"`
	TotalCost    float64      `json:"total_cost"`
	CostToTarget float64      `json:"cost_to_target"` // +Inf when the target was never reached
	AvgRMSE      float64      `json:"avg_rmse"`       // cost-weighted mean RMSE (curve AUC / cost span)
	Observations int          `json:"observations"`
}

// evalRow is one candidate point of a local eval dataset.
type evalRow struct {
	x []float64
	y float64 // true response in model (log) space
}

// evalDataset builds the named dataset's candidate rows. Responses are
// in log space, matching the repository convention cost = 10^y.
func evalDataset(name string, seed int64, quick bool) ([]evalRow, error) {
	switch name {
	case "synthetic-1d":
		// The same curve serve's built-in "synthetic" generator uses:
		// y = sin(2x) + x/2 on [0, 4].
		n := 40
		if quick {
			n = 24
		}
		rows := make([]evalRow, n)
		for i := range rows {
			x := 4 * float64(i) / float64(n-1)
			rows[i] = evalRow{x: []float64{x}, y: math.Sin(2*x) + 0.5*x}
		}
		return rows, nil
	case "performance-1d":
		// The paper's §V-B study subset at fixed frequency: log10 size →
		// log10 runtime (the Fig. 3–4 dataset).
		d, err := subset1D(seed)
		if err != nil {
			return nil, err
		}
		all := make([]int, d.Len())
		for i := range all {
			all[i] = i
		}
		xs := d.Matrix(all)
		ys := d.RespVec(dataset.RespRuntime, all)
		rows := make([]evalRow, d.Len())
		for i := range rows {
			rows[i] = evalRow{x: append([]float64(nil), xs.RawRow(i)...), y: ys[i]}
		}
		if quick && len(rows) > 24 {
			// Even thinning keeps the curve shape with a smaller pool.
			step := float64(len(rows)-1) / 23
			thin := make([]evalRow, 24)
			for i := range thin {
				thin[i] = rows[int(math.Round(float64(i)*step))]
			}
			rows = thin
		}
		return rows, nil
	default:
		return nil, fmt.Errorf("experiments: unknown eval dataset %q (have %v)", name, EvalDatasetNames())
	}
}

// EvalDatasetNames lists the datasets RunEval accepts.
func EvalDatasetNames() []string { return []string{"performance-1d", "synthetic-1d"} }

// defaultTarget is the per-dataset cost-to-target accuracy bar, roughly
// "clearly better than the seed-only model" on each dataset's response
// scale: the synthetic sine swings ±1 in log space, the performance
// subset's log10 runtime spans ~2 decades but fits to ~0.01 quickly.
func defaultTarget(ds string) float64 {
	switch ds {
	case "performance-1d":
		return 0.05
	default:
		return 0.2
	}
}

// noiseSD parses a noise-model name: "none" → 0, "gauss" → 0.05,
// "gauss:<sd>" → sd.
func noiseSD(model string) (float64, error) {
	switch {
	case model == "none":
		return 0, nil
	case model == "gauss":
		return 0.05, nil
	case strings.HasPrefix(model, "gauss:"):
		sd, err := strconv.ParseFloat(strings.TrimPrefix(model, "gauss:"), 64)
		if err != nil || sd < 0 {
			return 0, fmt.Errorf("experiments: bad noise model %q", model)
		}
		return sd, nil
	default:
		return 0, fmt.Errorf("experiments: unknown noise model %q (want none, gauss or gauss:<sd>)", model)
	}
}

// evalProblem is the shared per-(dataset, noise) setup every strategy in
// a group runs against: the same pool, the same held-out test split, the
// same seed experiments, the same per-row noise draws.
type evalProblem struct {
	dataset, noise string
	target         float64   // RMSE bar for cost-to-target
	pool           []evalRow // candidate grid sent to the server
	obsNoise       []float64 // additive noise per pool row, fixed per problem
	testX          [][]float64
	testY          []float64
	seeds          []int
	campaignSeed   int64
}

// buildProblem derives the deterministic problem for one group. seed
// mixes the grid seed with the dataset/noise identity only.
func buildProblem(ds, noise string, grid *EvalGrid) (*evalProblem, error) {
	rows, err := evalDataset(ds, grid.Seed, grid.Quick)
	if err != nil {
		return nil, err
	}
	sd, err := noiseSD(noise)
	if err != nil {
		return nil, err
	}
	mix := grid.Seed
	for _, s := range []string{ds, "/", noise} {
		for _, c := range []byte(s) {
			mix = mix*131 + int64(c)
		}
	}
	rng := rand.New(rand.NewSource(mix))

	// Deterministic split: ~25% held out for the RMSE curve, the rest is
	// the candidate pool.
	perm := rng.Perm(len(rows))
	nTest := len(rows) / 4
	if nTest < 3 {
		nTest = 3
	}
	p := &evalProblem{dataset: ds, noise: noise, campaignSeed: mix&0x7fffffff + 1}
	p.target = grid.TargetRMSE
	if p.target <= 0 {
		p.target = defaultTarget(ds)
	}
	for i, ri := range perm {
		if i < nTest {
			p.testX = append(p.testX, rows[ri].x)
			p.testY = append(p.testY, rows[ri].y)
		} else {
			p.pool = append(p.pool, rows[ri])
		}
	}
	// Fixed per-row noise: revisits and observe retries see the same
	// measurement, keeping campaigns deterministic end to end.
	p.obsNoise = make([]float64, len(p.pool))
	for i := range p.obsNoise {
		if sd > 0 {
			p.obsNoise[i] = sd * rng.NormFloat64()
		}
	}
	// Seed experiments: the extremes of the pool ordering — enough for a
	// first fit, cheap to reason about.
	p.seeds = []int{0, len(p.pool) - 1}
	return p, nil
}

// xKey identifies a candidate point by the exact bit pattern of its
// coordinates. JSON float64 round-trips are exact (shortest-round-trip
// encoding), so a suggestion's X always matches the pool row it came
// from.
func xKey(x []float64) string {
	var sb strings.Builder
	for _, v := range x {
		sb.WriteString(strconv.FormatUint(math.Float64bits(v), 16))
		sb.WriteByte(',')
	}
	return sb.String()
}

// httpError is a non-2xx response with its decoded error envelope.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return fmt.Sprintf("HTTP %d: %s", e.code, e.msg) }

// doJSON round-trips one JSON request against the eval server. out may
// be nil. idemKey, when set, marks the request safe for the retrying
// transport to replay.
func doJSON(ctx context.Context, client *http.Client, method, url string, in, out any, idemKey string) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if idemKey != "" {
		req.Header.Set(resilience.IdempotencyHeader, idemKey)
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var envelope struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&envelope)
		return &httpError{code: resp.StatusCode, msg: envelope.Error}
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

// runCell executes one campaign: create, drive suggestions with the
// problem's local oracle, sample the learning curve via /predict at
// every pending suggestion, and tear the campaign down.
func runCell(ctx context.Context, grid *EvalGrid, p *evalProblem, strat EvalStrategy) (EvalCell, error) {
	ctx, span := obs.Start(ctx, "eval.cell")
	defer span.End()
	label, err := strat.label()
	if err != nil {
		return EvalCell{}, err
	}
	span.SetAttr("strategy", label)
	span.SetAttr("dataset", p.dataset)
	cell := EvalCell{Strategy: label, Dataset: p.dataset, Noise: p.noise, Target: p.target}

	cands := make([][]float64, len(p.pool))
	rowByKey := make(map[string]int, len(p.pool))
	for i, r := range p.pool {
		cands[i] = r.x
		rowByKey[xKey(r.x)] = i
	}
	spec := serve.CampaignSpec{
		Name:       fmt.Sprintf("eval-%s-%s-%s", p.dataset, p.noise, strat.Name),
		Source:     "client",
		Candidates: cands,
		Seeds:      p.seeds,
		Strategy:   strat.Name,
		Gamma:      strat.Gamma,
		Epsilon:    strat.Epsilon,
		K:          strat.K,
		Lambda:     strat.Lambda,
		Perturb:    strat.Perturb,
		Iterations: grid.Iterations,
		Restarts:   1,
		Seed:       p.campaignSeed,
	}
	var st serve.CampaignStatus
	if err := doJSON(ctx, grid.Client, http.MethodPost, grid.Server+"/campaigns", spec, &st, "create-"+spec.Name); err != nil {
		return cell, fmt.Errorf("create campaign: %w", err)
	}
	id := st.ID
	base := grid.Server + "/campaigns/" + id
	// Campaigns are deleted on every exit path so an aborted grid never
	// leaves the server carrying finished actors.
	defer func() {
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = doJSON(dctx, grid.Client, http.MethodDelete, base, nil, nil, "")
	}()

	rmseAt := func() (float64, error) {
		evalPredictCalls.Inc()
		var pr serve.PredictResponse
		if err := doJSON(ctx, grid.Client, http.MethodPost, base+"/predict",
			serve.PredictRequest{Points: p.testX}, &pr, "predict-"+id); err != nil {
			return math.NaN(), err
		}
		means := make([]float64, len(pr.Means))
		for i, m := range pr.Means {
			means[i] = float64(m)
		}
		return stats.RMSE(means, p.testY), nil
	}

	var cumCost float64
	deadline := time.Now().Add(120 * time.Second)
	for {
		if time.Now().After(deadline) {
			evalCellFailures.Inc()
			return cell, fmt.Errorf("campaign %s: timed out after %d observations", id, cell.Observations)
		}
		var sug serve.Suggestion
		err := doJSON(ctx, grid.Client, http.MethodGet, base+"/suggest", nil, &sug, "")
		if err != nil {
			var he *httpError
			if errors.As(err, &he) && he.code == http.StatusConflict {
				// No pending suggestion: the engine is fitting, or done.
				if err := doJSON(ctx, grid.Client, http.MethodGet, base, nil, &st, ""); err != nil {
					return cell, err
				}
				switch st.State {
				case serve.StateDone, serve.StateStopped:
					final, err := rmseAt()
					if err != nil {
						return cell, err
					}
					cell.Curve = append(cell.Curve, CurvePoint{CumCost: cumCost, RMSE: final})
					finishCell(&cell, p.target, cumCost)
					evalCellsRun.Inc()
					return cell, nil
				case serve.StateFailed:
					evalCellFailures.Inc()
					return cell, fmt.Errorf("campaign %s failed: %s", id, st.Error)
				}
				time.Sleep(time.Millisecond)
				continue
			}
			return cell, fmt.Errorf("suggest: %w", err)
		}

		// While this suggestion is pending the engine is blocked, so the
		// model deterministically covers observations 1..seq-1 — sample
		// the learning curve before answering (once a model exists, i.e.
		// after the seed measurements).
		if sug.Seq > len(p.seeds) {
			rmse, err := rmseAt()
			if err != nil {
				return cell, err
			}
			cell.Curve = append(cell.Curve, CurvePoint{CumCost: cumCost, RMSE: rmse})
		}

		row, ok := rowByKey[xKey(sug.X)]
		if !ok {
			return cell, fmt.Errorf("campaign %s: suggestion %v matches no pool row", id, sug.X)
		}
		y := p.pool[row].y + p.obsNoise[row]
		cost := math.Pow(10, y)
		if err := doJSON(ctx, grid.Client, http.MethodPost, base+"/observe",
			serve.ObserveRequest{Seq: sug.Seq, Y: al.JSONFloat(y), Cost: al.JSONFloat(cost)},
			nil, fmt.Sprintf("%s-seq%d", id, sug.Seq)); err != nil {
			return cell, fmt.Errorf("observe seq %d: %w", sug.Seq, err)
		}
		evalObservations.Inc()
		cumCost += cost
		cell.Observations++
	}
}

// finishCell derives the summary metrics from a completed curve.
func finishCell(cell *EvalCell, target, totalCost float64) {
	cell.TotalCost = totalCost
	n := len(cell.Curve)
	cell.FinalRMSE = cell.Curve[n-1].RMSE
	cell.CostToTarget = math.Inf(1)
	for _, pt := range cell.Curve {
		if pt.RMSE <= target {
			cell.CostToTarget = pt.CumCost
			break
		}
	}
	// Cost-weighted average RMSE: trapezoid AUC over the curve divided
	// by the cost span — "how wrong was the model, on average, per unit
	// of budget spent".
	if n < 2 || cell.Curve[n-1].CumCost <= cell.Curve[0].CumCost {
		cell.AvgRMSE = cell.FinalRMSE
		return
	}
	var auc float64
	for i := 1; i < n; i++ {
		a, b := cell.Curve[i-1], cell.Curve[i]
		auc += (a.RMSE + b.RMSE) / 2 * (b.CumCost - a.CumCost)
	}
	cell.AvgRMSE = auc / (cell.Curve[n-1].CumCost - cell.Curve[0].CumCost)
}

// EvalResult is the full grid outcome, ready to rank and render.
type EvalResult struct {
	Grid  EvalGrid   `json:"-"`
	Cells []EvalCell `json:"cells"`
}

// RunEval executes the grid against grid.Server. Cells run in parallel
// (they are independent campaigns; results land in fixed slots), which
// doubles as a concurrency workout for the service. The returned cells
// are ordered dataset-major, then noise, then strategy — a pure function
// of the grid spec.
func RunEval(ctx context.Context, grid EvalGrid) (*EvalResult, error) {
	grid.withDefaults()
	if grid.Server == "" {
		return nil, fmt.Errorf("experiments: EvalGrid.Server is required")
	}

	type slot struct {
		cell EvalCell
		err  error
	}
	var problems []*evalProblem
	for _, ds := range grid.Datasets {
		for _, noise := range grid.NoiseModels {
			p, err := buildProblem(ds, noise, &grid)
			if err != nil {
				return nil, err
			}
			problems = append(problems, p)
		}
	}
	slots := make([]slot, len(problems)*len(grid.Strategies))
	sem := make(chan struct{}, 4)
	done := make(chan int, len(slots))
	for pi, p := range problems {
		for si, strat := range grid.Strategies {
			idx := pi*len(grid.Strategies) + si
			go func(idx int, p *evalProblem, strat EvalStrategy) {
				sem <- struct{}{}
				defer func() { <-sem }()
				cell, err := runCell(ctx, &grid, p, strat)
				slots[idx] = slot{cell: cell, err: err}
				done <- idx
			}(idx, p, strat)
		}
	}
	for range slots {
		<-done
	}
	res := &EvalResult{Grid: grid}
	for _, s := range slots {
		if s.err != nil {
			return nil, s.err
		}
		res.Cells = append(res.Cells, s.cell)
	}
	return res, nil
}

// group returns the cells of one (dataset, noise) pair, ranked: lowest
// cost-to-target first, average RMSE breaking ties (both +Inf-safe),
// then name for full determinism.
func (r *EvalResult) group(ds, noise string) []EvalCell {
	var out []EvalCell
	for _, c := range r.Cells {
		if c.Dataset == ds && c.Noise == noise {
			out = append(out, c)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.CostToTarget != b.CostToTarget {
			return a.CostToTarget < b.CostToTarget
		}
		if a.AvgRMSE != b.AvgRMSE {
			return a.AvgRMSE < b.AvgRMSE
		}
		return a.Strategy < b.Strategy
	})
	return out
}
