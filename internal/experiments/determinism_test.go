package experiments

import (
	"math"
	"testing"
)

// Every experiment must regenerate bit-identical headline values from the
// same seed — the reproducibility contract DESIGN.md §6 promises. (A5 is
// excluded: its values are wall-clock timings.)
func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment regeneration skipped in -short mode")
	}
	gens := map[string]func(Options) (*Report, error){
		"T1": TableI, "F1": Fig1, "F2": Fig2, "F3": Fig3, "F4": Fig4,
		"F5": Fig5, "F6": Fig6, "F7": Fig7, "F8": Fig8,
		"A1": AblationGamma, "A2": AblationKernel, "A3": AblationSelection,
		"A4": AblationParallel,
	}
	for id, gen := range gens {
		a, err := gen(quick)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		b, err := gen(quick)
		if err != nil {
			t.Fatalf("%s rerun: %v", id, err)
		}
		if len(a.Values) != len(b.Values) {
			t.Fatalf("%s: value sets differ in size", id)
		}
		for k, va := range a.Values {
			vb, ok := b.Values[k]
			if !ok {
				t.Fatalf("%s: rerun missing value %q", id, k)
			}
			if va != vb && !(math.IsNaN(va) && math.IsNaN(vb)) {
				t.Fatalf("%s: value %q differs across reruns: %v vs %v", id, k, va, vb)
			}
		}
	}
}

// Different seeds must actually change stochastic experiments (guards
// against accidentally hard-coded seeds).
func TestExperimentsRespondToSeed(t *testing.T) {
	a, err := Fig6(Options{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig6(Options{Seed: 2, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := a.Series["trajectory"], b.Series["trajectory"]
	same := len(ta) == len(tb)
	if same {
		for i := range ta {
			if ta[i][1] != tb[i][1] || ta[i][2] != tb[i][2] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical AL trajectories")
	}
}
