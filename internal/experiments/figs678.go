package experiments

import (
	"math"
	"math/rand"

	"repro/internal/al"
	"repro/internal/dataset"
	"repro/internal/stats"
)

// fig6Loop is the AL configuration shared by Figs. 6–8 (σn ≥ 1e-1 per
// the paper's fix, revisiting allowed).
func fig6Loop(strategy al.Strategy, iters int, quick bool) al.LoopConfig {
	cfg := al.LoopConfig{
		Response:     dataset.RespRuntime,
		Strategy:     strategy,
		NewKernel:    defaultKernel,
		Iterations:   iters,
		NoiseFloor:   1e-1,
		Restarts:     1,
		AllowRevisit: true,
	}
	if quick {
		cfg.ReoptimizeEvery = 5
	} else {
		cfg.ReoptimizeEvery = 2
	}
	return cfg
}

// Fig6 regenerates the AL trajectory study: Variance Reduction on the
// poisson1 / NP=32 subset (the paper's 251-job pool) for 10 and 100
// iterations, verifying the star-like edges-first exploration pattern.
func Fig6(opts Options) (*Report, error) {
	r := newReport("F6", "AL with Variance Reduction: exploration trajectories")
	d, err := subset2D(opts.seed())
	if err != nil {
		return nil, err
	}
	r.addf("study subset: %d jobs (paper: 251)", d.Len())
	r.Values["subset_jobs"] = float64(d.Len())

	rng := rand.New(rand.NewSource(opts.seed() + 400))
	part, err := dataset.RandomPartition(d, dataset.PartitionConfig{NInitial: 1, TestFrac: 0.2}, rng)
	if err != nil {
		return nil, err
	}

	long := 100
	if opts.Quick {
		long = 25
	}
	res, err := al.Run(d, part, fig6Loop(al.VarianceReduction{}, long, opts.Quick), rng)
	if err != nil {
		return nil, err
	}

	// Edge classification on the (log size, freq) grid.
	sizes := d.Var(dataset.VarSize)
	freqs := d.Var(dataset.VarFreq)
	sLo, sHi := stats.MinMax(sizes)
	fLo, fHi := stats.MinMax(freqs)
	sTol := 0.05 * (sHi - sLo)
	fTol := 0.05 * (fHi - fLo)
	isEdge := func(row int) bool {
		s, f := sizes[row], freqs[row]
		return s < sLo+sTol || s > sHi-sTol || f < fLo+fTol || f > fHi-fTol
	}

	traj := make([][]float64, len(res.Records))
	edgeFirst10, edgeAll := 0, 0
	for i, rec := range res.Records {
		e := 0.0
		if isEdge(rec.Row) {
			e = 1
			edgeAll++
			if i < 10 {
				edgeFirst10++
			}
		}
		traj[i] = []float64{float64(rec.Iter), sizes[rec.Row], freqs[rec.Row], e}
	}
	r.Series["trajectory"] = traj
	first := 10
	if len(res.Records) < 10 {
		first = len(res.Records)
	}
	r.Values["edge_fraction_first10"] = float64(edgeFirst10) / float64(first)
	r.Values["edge_fraction_all"] = float64(edgeAll) / float64(len(res.Records))
	r.addf("edge-point fraction: %.2f in the first %d selections, %.2f over all %d",
		r.Values["edge_fraction_first10"], first, r.Values["edge_fraction_all"], len(res.Records))
	r.addf("paper: in a star-like pattern, AL chooses experiments at the edges and only then progresses toward the middle")
	return r, nil
}

// Fig7 regenerates the noise-floor study: batches of AL runs with
// σn ≥ 1e-8 (overfitting: σ and AMSD collapse early) versus σn ≥ 1e-1
// (stable trajectories).
func Fig7(opts Options) (*Report, error) {
	r := newReport("F7", "Strong influence of the σn limit on the quality of AL")
	d, err := subset2D(opts.seed())
	if err != nil {
		return nil, err
	}
	runs, iters := 10, 40
	if opts.Quick {
		runs, iters = 4, 12
	}
	runBatch := func(floor float64) ([]al.Result, error) {
		cfg := al.BatchConfig{
			Loop:      fig6Loop(al.VarianceReduction{}, iters, opts.Quick),
			Partition: dataset.PartitionConfig{NInitial: 1, TestFrac: 0.2},
			Runs:      runs,
			Seed:      opts.seed() + 500,
			Parallel:  true,
		}
		cfg.Loop.NoiseFloor = floor
		return al.RunBatch(d, cfg)
	}
	low, err := runBatch(1e-8)
	if err != nil {
		return nil, err
	}
	high, err := runBatch(1e-1)
	if err != nil {
		return nil, err
	}

	emit := func(name string, results []al.Result) al.Curves {
		c := al.AverageCurves(results)
		rows := make([][]float64, len(c.Iter))
		for i := range c.Iter {
			rows[i] = []float64{float64(c.Iter[i]), c.SDChosen[i], c.AMSD[i], c.RMSE[i]}
		}
		r.Series[name] = rows
		return c
	}
	emit("floor_1e-8", low)
	highCurves := emit("floor_1e-1", high)

	minNoise := func(results []al.Result) float64 {
		m := math.Inf(1)
		for _, res := range results {
			for _, rec := range res.Records {
				if rec.Noise < m {
					m = rec.Noise
				}
			}
		}
		return m
	}
	r.Values["min_noise_low_floor"] = minNoise(low)
	r.Values["min_noise_high_floor"] = minNoise(high)
	r.Values["early_collapse_low"] = al.EarlySDCollapseFraction(low, 5, 1e-3)
	r.Values["early_collapse_high"] = al.EarlySDCollapseFraction(high, 5, 1e-3)
	r.Values["stable_amsd_high"] = al.StableAMSD(high)
	r.Values["rmse_drift_after_amsd_converged"] = rmseDriftAfterAMSD(high)
	r.addf("min fitted σn: %.2g with floor 1e-8 vs %.2g with floor 1e-1",
		r.Values["min_noise_low_floor"], r.Values["min_noise_high_floor"])
	r.addf("runs with σ_f(x) collapsing below 1e-3 within 5 iterations: %.0f%% (floor 1e-8) vs %.0f%% (floor 1e-1)",
		100*r.Values["early_collapse_low"], 100*r.Values["early_collapse_high"])
	r.addf("stable AMSD with the raised floor: %.3g; final mean RMSE %.3g",
		r.Values["stable_amsd_high"], highCurves.RMSE[len(highCurves.RMSE)-1])
	r.addf("median relative RMSE drift after the AMSD convergence point: %.0f%% — confirming the paper's claim that once AMSD converges, RMSE has converged too and further experiments are excessive",
		100*r.Values["rmse_drift_after_amsd_converged"])
	r.addf("paper: the increased limit eliminates the overfitting problem; AMSD convergence becomes the termination signal")
	return r, nil
}

// rmseDriftAfterAMSD measures, per run, the first iteration at which the
// AMSD termination rule (window 5, 10% relative) would fire, and the
// maximum relative deviation of RMSE from its final value afterwards. It
// quantifies §V-B4's claim that AMSD convergence implies RMSE convergence.
// Returns the median across runs (NaN when no run converges).
func rmseDriftAfterAMSD(results []al.Result) float64 {
	var drifts []float64
	const window = 5
	const tol = 0.10
	for _, res := range results {
		recs := res.Records
		if len(recs) <= window+1 {
			continue
		}
		conv := -1
		for i := window; i < len(recs); i++ {
			lo, hi := recs[i].AMSD, recs[i].AMSD
			for _, rec := range recs[i-window : i] {
				if rec.AMSD < lo {
					lo = rec.AMSD
				}
				if rec.AMSD > hi {
					hi = rec.AMSD
				}
			}
			if hi-lo <= tol*hi {
				conv = i
				break
			}
		}
		if conv < 0 || conv >= len(recs)-1 {
			continue
		}
		final := recs[len(recs)-1].RMSE
		if final <= 0 || math.IsNaN(final) {
			continue
		}
		var worst float64
		for _, rec := range recs[conv:] {
			if d := math.Abs(rec.RMSE-final) / final; d > worst {
				worst = d
			}
		}
		drifts = append(drifts, worst)
	}
	if len(drifts) == 0 {
		return math.NaN()
	}
	return stats.Median(drifts)
}

// Fig8 regenerates the strategy comparison: Variance Reduction vs Cost
// Efficiency over batches of random partitions — error/uncertainty
// trajectories, cumulative cost growth, and the cost–error tradeoff
// curves with their crossover.
func Fig8(opts Options) (*Report, error) {
	r := newReport("F8", "Comparing AL strategies: Variance Reduction and Cost Efficiency")
	d, err := subset2D(opts.seed())
	if err != nil {
		return nil, err
	}
	runs, iters := 50, 60
	if opts.Quick {
		runs, iters = 6, 16
	}
	runBatch := func(s al.Strategy) ([]al.Result, error) {
		return al.RunBatch(d, al.BatchConfig{
			Loop:      fig6Loop(s, iters, opts.Quick),
			Partition: dataset.PartitionConfig{NInitial: 1, TestFrac: 0.2},
			Runs:      runs,
			Seed:      opts.seed() + 600,
			Parallel:  true,
		})
	}
	vr, err := runBatch(al.VarianceReduction{})
	if err != nil {
		return nil, err
	}
	ce, err := runBatch(al.CostEfficiency{})
	if err != nil {
		return nil, err
	}

	emit := func(name string, results []al.Result) al.Curves {
		c := al.AverageCurves(results)
		rows := make([][]float64, len(c.Iter))
		for i := range c.Iter {
			rows[i] = []float64{float64(c.Iter[i]), c.RMSE[i], c.AMSD[i], c.CumCost[i]}
		}
		r.Series[name] = rows
		return c
	}
	vrCurves := emit("variance_reduction", vr)
	ceCurves := emit("cost_efficiency", ce)

	// Cost efficiency must select cheaper experiments on average.
	vrCost := vrCurves.CumCost[len(vrCurves.CumCost)-1]
	ceCost := ceCurves.CumCost[len(ceCurves.CumCost)-1]
	r.Values["vr_total_cost"] = vrCost
	r.Values["ce_total_cost"] = ceCost
	r.addf("mean cumulative cost after %d iterations: VR %.3g vs CE %.3g core-seconds", iters, vrCost, ceCost)

	// Statistical significance: the runs are paired (identical random
	// partitions via the shared batch seed), so a paired t-test on the
	// per-partition final costs and RMSEs applies.
	if tt, err := stats.PairedTTest(al.FinalRMSEs(vr), al.FinalRMSEs(ce)); err == nil {
		r.Values["rmse_ttest_p"] = tt.P
		r.addf("paired t-test, final RMSE VR vs CE across %d shared partitions: t=%.2f, p=%.3g", runs, tt.T, tt.P)
	}
	finalCosts := func(results []al.Result) []float64 {
		out := make([]float64, 0, len(results))
		for _, res := range results {
			if len(res.Records) > 0 {
				out = append(out, res.Records[len(res.Records)-1].CumCost)
			}
		}
		return out
	}
	if tt, err := stats.PairedTTest(finalCosts(vr), finalCosts(ce)); err == nil {
		r.Values["cost_ttest_p"] = tt.P
		r.addf("paired t-test, total cost VR vs CE: t=%.2f, p=%.3g — the cost gap is systematic, not partition luck", tt.T, tt.P)
	}

	cmp := al.Compare(al.TradeoffCurve(vrCurves), al.TradeoffCurve(ceCurves))
	r.Values["crossover_cost"] = cmp.CrossoverCost
	r.Values["max_reduction"] = cmp.MaxReduction
	r.Values["max_reduction_cost"] = cmp.MaxReductionCost
	for mult, red := range cmp.ReductionAt {
		r.Values[redKey(mult)] = red
	}
	if !math.IsNaN(cmp.CrossoverCost) {
		r.addf("tradeoff curves cross at C = %.4g core-seconds; beyond it CE achieves lower error for equal cost", cmp.CrossoverCost)
		r.addf("max relative RMSE reduction %.0f%% (paper: up to 38%%)", 100*cmp.MaxReduction)
		for _, mult := range []float64{1, 2, 3, 5, 10} {
			if red, ok := cmp.ReductionAt[mult]; ok {
				r.addf("  reduction at %.0f·C: %.0f%%", mult, 100*red)
			}
		}
	} else {
		r.addf("WARNING: no crossover found in the evaluated cost range")
	}
	r.addf("paper: CE initially lags, then dominates for a cost subrange (38%% max; 25/21/16/13%% at 2/3/5/10·C), curves meeting at maximum cost")
	return r, nil
}

func redKey(mult float64) string {
	switch mult {
	case 1:
		return "reduction_at_1C"
	case 2:
		return "reduction_at_2C"
	case 3:
		return "reduction_at_3C"
	case 5:
		return "reduction_at_5C"
	case 10:
		return "reduction_at_10C"
	default:
		return "reduction_at_other"
	}
}

// All runs every paper experiment in paper order.
func All(opts Options) ([]*Report, error) {
	gens := []func(Options) (*Report, error){TableI, Fig1, Fig2, Fig3, Fig4, Fig5, Fig6, Fig7, Fig8}
	out := make([]*Report, 0, len(gens))
	for _, g := range gens {
		rep, err := g(opts)
		if err != nil {
			return out, err
		}
		out = append(out, rep)
	}
	return out, nil
}

// Ablations runs the design-choice studies beyond the paper's figures.
func Ablations(opts Options) ([]*Report, error) {
	gens := []func(Options) (*Report, error){AblationGamma, AblationKernel, AblationSelection, AblationParallel, AblationScaling, AblationEMCM}
	out := make([]*Report, 0, len(gens))
	for _, g := range gens {
		rep, err := g(opts)
		if err != nil {
			return out, err
		}
		out = append(out, rep)
	}
	return out, nil
}
