package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/al"
	"repro/internal/dataset"
	"repro/internal/gp"
	"repro/internal/kernel"
	"repro/internal/stats"
)

// Ablations probe the design choices behind the paper's algorithms:
//
//	A1 — the cost weight γ in the selection criterion σ − γ·μ
//	     (γ = 0 is VarianceReduction, γ = 1 the paper's CostEfficiency);
//	A2 — the covariance function family (RBF vs Matérn vs RQ);
//	A3 — the model-selection objective (marginal likelihood vs LOO-CV,
//	     the comparison the paper's §III defers to future work);
//	A4 — sequential vs parallel-batch selection (§VI future work).

// AblationGamma sweeps the cost exponent γ and reports, per γ, the mean
// final RMSE and the mean total cost over a batch of partitions. The
// paper's two strategies are the endpoints; the sweep shows where the
// cost-awareness pays and whether an intermediate γ dominates either.
func AblationGamma(opts Options) (*Report, error) {
	r := newReport("A1", "Ablation: cost-exponent γ in the selection criterion σ − γ·μ")
	d, err := subset2D(opts.seed())
	if err != nil {
		return nil, err
	}
	gammas := []float64{0, 0.25, 0.5, 0.75, 1.0}
	runs, iters := 10, 30
	if opts.Quick {
		runs, iters = 3, 10
	}
	var rows [][]float64
	for _, g := range gammas {
		results, err := al.RunBatch(d, al.BatchConfig{
			Loop:      fig6Loop(al.CostExponent{Gamma: g}, iters, opts.Quick),
			Partition: dataset.PartitionConfig{NInitial: 1, TestFrac: 0.2},
			Runs:      runs,
			Seed:      opts.seed() + 700,
			Parallel:  true,
		})
		if err != nil {
			return nil, err
		}
		c := al.AverageCurves(results)
		rmse := c.RMSE[len(c.RMSE)-1]
		cost := c.CumCost[len(c.CumCost)-1]
		rows = append(rows, []float64{g, rmse, cost})
		r.Values[fmt.Sprintf("rmse_gamma_%.2f", g)] = rmse
		r.Values[fmt.Sprintf("cost_gamma_%.2f", g)] = cost
		r.addf("γ=%.2f: final RMSE %.4f, total cost %.4g core-s", g, rmse, cost)
	}
	r.Series["gamma_sweep"] = rows
	// Cost must fall monotonically-ish with γ.
	r.Values["cost_ratio_0_to_1"] = rows[0][2] / rows[len(rows)-1][2]
	r.addf("cost(γ=0)/cost(γ=1) = %.1f — heavier cost weighting buys proportionally cheaper experiments", r.Values["cost_ratio_0_to_1"])
	return r, nil
}

// AblationKernel compares covariance families on the §V-B subset under
// identical AL conditions: the RBF the paper uses versus Matérn 3/2, 5/2,
// and rational quadratic.
func AblationKernel(opts Options) (*Report, error) {
	r := newReport("A2", "Ablation: covariance function family")
	d, err := subset2D(opts.seed())
	if err != nil {
		return nil, err
	}
	families := []struct {
		name string
		mk   func(int) kernel.Kernel
	}{
		{"rbf", func(int) kernel.Kernel { return kernel.NewRBF(1, 1) }},
		{"matern32", func(int) kernel.Kernel { return kernel.NewMatern32(1, 1) }},
		{"matern52", func(int) kernel.Kernel { return kernel.NewMatern52(1, 1) }},
		{"rq", func(int) kernel.Kernel { return kernel.NewRationalQuadratic(1, 1, 1) }},
	}
	runs, iters := 8, 25
	if opts.Quick {
		runs, iters = 3, 8
	}
	var rows [][]float64
	for fi, fam := range families {
		cfg := fig6Loop(al.VarianceReduction{}, iters, opts.Quick)
		cfg.NewKernel = fam.mk
		results, err := al.RunBatch(d, al.BatchConfig{
			Loop:      cfg,
			Partition: dataset.PartitionConfig{NInitial: 1, TestFrac: 0.2},
			Runs:      runs,
			Seed:      opts.seed() + 800,
			Parallel:  true,
		})
		if err != nil {
			return nil, err
		}
		c := al.AverageCurves(results)
		rmse := c.RMSE[len(c.RMSE)-1]
		r.Values["rmse_"+fam.name] = rmse
		rows = append(rows, []float64{float64(fi), rmse})
		r.addf("%-9s final RMSE %.4f", fam.name, rmse)
	}
	r.Series["kernel_rmse"] = rows
	r.addf("the smooth log-transformed runtime surface favours smooth kernels; all families converge to similar error")
	return r, nil
}

// AblationSelection compares the two model-selection objectives on the
// 1-D subset: Bayesian marginal likelihood (the paper's route) versus
// leave-one-out cross-validated pseudo-likelihood (Rasmussen & Williams
// ch. 5) — the empirical comparison the paper leaves for future work.
func AblationSelection(opts Options) (*Report, error) {
	r := newReport("A3", "Ablation: LML vs LOO-CV hyperparameter selection")
	d, err := subset1D(opts.seed())
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.seed() + 900))
	// Hold out a test split for honest comparison.
	part, err := dataset.RandomPartition(d, dataset.PartitionConfig{NInitial: 1, TestFrac: 0.3}, rng)
	if err != nil {
		return nil, err
	}
	trainRows := append(append([]int(nil), part.Initial...), part.Active...)
	x := d.Matrix(trainRows)
	y := d.RespVec(dataset.RespRuntime, trainRows)
	testX := d.Matrix(part.Test)
	testY := d.RespVec(dataset.RespRuntime, part.Test)

	mkCfg := func() gp.Config {
		return gp.Config{
			Kernel:     kernel.NewRBF(1, 1),
			NoiseInit:  0.1,
			NoiseFloor: 1e-3,
			Optimize:   true,
			Restarts:   4,
		}
	}
	lmlGP, err := gp.Fit(mkCfg(), x, y, rng)
	if err != nil {
		return nil, err
	}
	cvGP, err := gp.FitLOOCV(mkCfg(), x, y, rng)
	if err != nil {
		return nil, err
	}
	evalRMSE := func(g *gp.GP) float64 {
		return stats.RMSE(gp.Means(g.PredictBatch(testX)), testY)
	}
	r.Values["rmse_lml"] = evalRMSE(lmlGP)
	r.Values["rmse_loocv"] = evalRMSE(cvGP)
	r.Values["lml_of_lml_fit"] = lmlGP.LML()
	r.Values["lml_of_cv_fit"] = cvGP.LML()
	r.Values["loocv_of_lml_fit"] = lmlGP.LOOCV()
	r.Values["loocv_of_cv_fit"] = cvGP.LOOCV()
	r.addf("test RMSE: LML-selected %.4f vs LOO-CV-selected %.4f (%d train, %d test)",
		r.Values["rmse_lml"], r.Values["rmse_loocv"], len(y), len(testY))
	r.addf("cross-objective: LML fit has LOO %.1f (CV fit: %.1f); CV fit has LML %.1f (LML fit: %.1f)",
		r.Values["loocv_of_lml_fit"], r.Values["loocv_of_cv_fit"],
		r.Values["lml_of_cv_fit"], r.Values["lml_of_lml_fit"])
	r.addf("paper §III: 'we leave the empirical comparison of the two methods for our future work' — done here; on this data both routes land on similar models")
	return r, nil
}

// AblationParallel compares sequential AL against parallel-batch AL
// (kriging believer, batch size 4) on wall-clock cost — the paper's §VI
// scheduling concern.
func AblationParallel(opts Options) (*Report, error) {
	r := newReport("A4", "Ablation: sequential vs parallel-batch selection")
	d, err := subset2D(opts.seed())
	if err != nil {
		return nil, err
	}
	iters := 24
	batch := 4
	if opts.Quick {
		iters = 8
	}
	rng := rand.New(rand.NewSource(opts.seed() + 950))
	part, err := dataset.RandomPartition(d, dataset.PartitionConfig{NInitial: 1, TestFrac: 0.2}, rng)
	if err != nil {
		return nil, err
	}
	// For each strategy: run batched AL, then compare the *same* picked
	// experiments batched (wall = Σ of per-round maxima) against run
	// serially (wall = Σ of all costs) — the scheduling speedup; and
	// compare model quality against a sequential run of equal length.
	compare := func(label string, strategy al.Strategy) error {
		seq, err := al.Run(d, part, fig6Loop(strategy, iters, opts.Quick), rng)
		if err != nil {
			return err
		}
		par, err := al.RunParallel(d, part, al.ParallelConfig{
			Loop:      fig6Loop(strategy, 0, opts.Quick),
			BatchSize: batch,
			Rounds:    iters / batch,
		}, rng)
		if err != nil {
			return err
		}
		seqLast := seq.Records[len(seq.Records)-1]
		parLast := par.Rounds[len(par.Rounds)-1]
		schedSpeedup := parLast.CumCost / math.Max(parLast.WallClock, 1e-12)
		r.Values[label+"_seq_rmse"] = seqLast.RMSE
		r.Values[label+"_par_rmse"] = parLast.RMSE
		r.Values[label+"_par_resource"] = parLast.CumCost
		r.Values[label+"_par_wall"] = parLast.WallClock
		r.Values[label+"_sched_speedup"] = schedSpeedup
		r.addf("%s, %d experiments in batches of %d: scheduling speedup %.2fx (resource %.4g vs wall %.4g core-s); RMSE batch %.4f vs sequential %.4f",
			label, iters, batch, schedSpeedup, parLast.CumCost, parLast.WallClock, parLast.RMSE, seqLast.RMSE)
		return nil
	}
	if err := compare("vr", al.VarianceReduction{}); err != nil {
		return nil, err
	}
	if err := compare("ce", al.CostEfficiency{}); err != nil {
		return nil, err
	}
	r.addf("finding: a batch's wall clock is its most expensive pick. On this dataset the per-experiment")
	r.addf("cost spectrum spans ~5 orders of magnitude, so a single expensive selection dominates every")
	r.addf("round and the realized scheduling speedup stays far below the ideal %dx for *both* strategies —", batch)
	r.addf("quantitative support for the paper's §VI note that parallel execution 'may indicate a less")
	r.addf("greedy selection strategy': to profit from batching, the selector must explicitly balance")
	r.addf("costs within a round, not merely prefer cheap points overall.")
	return r, nil
}
