package experiments

import (
	"math"
	"math/rand"

	"repro/internal/al"
	"repro/internal/dataset"
)

// AblationEMCM (A6) substantiates the paper's §III critique of the EMCM
// baseline (Cai et al.): its bootstrap ensemble of weak learners is a
// noisy variance proxy on small training sets, it cannot revisit noisy
// points, and its linear weak learners cannot represent the nonlinear
// runtime surface — so GPR-driven variance reduction should dominate it
// on the study subset, especially early.
func AblationEMCM(opts Options) (*Report, error) {
	r := newReport("A6", "Baseline comparison: EMCM vs GPR variance reduction")
	d, err := subset2D(opts.seed())
	if err != nil {
		return nil, err
	}
	runs, iters := 10, 30
	if opts.Quick {
		runs, iters = 4, 12
	}

	// GPR variance reduction (the paper's approach).
	vrResults, err := al.RunBatch(d, al.BatchConfig{
		Loop:      fig6Loop(al.VarianceReduction{}, iters, opts.Quick),
		Partition: dataset.PartitionConfig{NInitial: 1, TestFrac: 0.2},
		Runs:      runs,
		Seed:      opts.seed() + 1100,
		Parallel:  true,
	})
	if err != nil {
		return nil, err
	}

	// EMCM over the same partitions (reconstructed from the same seeds).
	var emcmResults []al.Result
	for run := 0; run < runs; run++ {
		rng := rand.New(rand.NewSource(opts.seed() + 1100 + int64(run)*7919))
		part, err := dataset.RandomPartition(d, dataset.PartitionConfig{NInitial: 1, TestFrac: 0.2}, rng)
		if err != nil {
			return nil, err
		}
		res, err := al.RunEMCM(d, part, al.EMCMConfig{
			Response:   dataset.RespRuntime,
			Iterations: iters,
		}, rng)
		if err != nil {
			return nil, err
		}
		emcmResults = append(emcmResults, res)
	}

	vr := al.AverageCurves(vrResults)
	emcm := al.AverageCurves(emcmResults)
	emit := func(name string, c al.Curves) {
		rows := make([][]float64, len(c.Iter))
		for i := range c.Iter {
			rows[i] = []float64{float64(c.Iter[i]), c.RMSE[i]}
		}
		r.Series[name] = rows
	}
	emit("gpr_vr", vr)
	emit("emcm", emcm)

	lastVR := vr.RMSE[len(vr.RMSE)-1]
	lastEMCM := emcm.RMSE[len(emcm.RMSE)-1]
	r.Values["final_rmse_gpr"] = lastVR
	r.Values["final_rmse_emcm"] = lastEMCM
	if lastVR > 0 {
		r.Values["emcm_over_gpr"] = lastEMCM / lastVR
	}
	// Early behaviour (paper: EMCM "is unlikely to perform well" when
	// only a single measurement is available at the beginning).
	early := int(math.Min(5, float64(len(vr.RMSE))))
	r.Values["early_rmse_gpr"] = vr.RMSE[early-1]
	r.Values["early_rmse_emcm"] = emcm.RMSE[early-1]
	r.addf("mean RMSE after %d iterations: GPR-VR %.4f vs EMCM %.4f (%.1fx)",
		iters, lastVR, lastEMCM, r.Values["emcm_over_gpr"])
	r.addf("mean RMSE at iteration %d: GPR-VR %.4f vs EMCM %.4f", early,
		r.Values["early_rmse_gpr"], r.Values["early_rmse_emcm"])
	r.addf("paper §III: EMCM's Monte Carlo variance estimate 'is especially noisy when the training set is small',")
	r.addf("it cannot revisit noisy points, and its linear weak learners underfit the runtime surface — all visible here")
	return r, nil
}
