package experiments

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// TableI regenerates Table I: the parameters of the two analyzed
// datasets — job counts, response ranges, and controlled-variable levels.
func TableI(opts Options) (*Report, error) {
	r := newReport("T1", "The Parameters of the Analyzed Datasets")
	perf, err := perfDataset(opts.seed())
	if err != nil {
		return nil, err
	}
	pow, err := powerDataset(opts.seed())
	if err != nil {
		return nil, err
	}

	describe := func(name string, d *dataset.Dataset, energy bool) {
		r.addf("Dataset: %s", name)
		r.addf("  # Jobs: %d", d.Len())
		rt := d.Resp(dataset.RespRuntime)
		lo, hi := stats.MinMax(rt)
		r.addf("  Runtime, s: %.3g - %.4g", lo, hi)
		if energy {
			en := d.Resp(dataset.RespEnergy)
			elo, ehi := stats.MinMax(en)
			r.addf("  Energy, J: %.3g - %.3g", elo, ehi)
			r.Values[name+"_energy_min_j"] = elo
			r.Values[name+"_energy_max_j"] = ehi
		}
		ops := uniqueStrings(d.Tag(dataset.TagOperator))
		r.addf("  Operator: %v", ops)
		sizes := d.Var(dataset.VarSize)
		slo, shi := stats.MinMax(sizes)
		r.addf("  Global Problem Size: %.3g - %.3g", slo, shi)
		r.addf("  NP: %v", uniqueFloats(d.Var(dataset.VarNP)))
		r.addf("  CPU Frequency (GHz): %v", uniqueFloats(d.Var(dataset.VarFreq)))
		r.Values[name+"_jobs"] = float64(d.Len())
		r.Values[name+"_runtime_min_s"] = lo
		r.Values[name+"_runtime_max_s"] = hi
		r.Values[name+"_size_min"] = slo
		r.Values[name+"_size_max"] = shi
	}
	describe("performance", perf, false)
	describe("power", pow, true)

	r.addf("paper: Performance 3246 jobs, runtime 0.005-458 s; Power 640 jobs, energy 6.4e3-1.1e5 J")
	return r, nil
}

func uniqueStrings(xs []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Strings(out)
	return out
}

func uniqueFloats(xs []float64) []string {
	seen := map[float64]bool{}
	var vals []float64
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			vals = append(vals, x)
		}
	}
	sort.Float64s(vals)
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = fmt.Sprintf("%g", v)
	}
	return out
}
