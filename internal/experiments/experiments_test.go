package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

var quick = Options{Seed: 1, Quick: true}

func TestTableI(t *testing.T) {
	r, err := TableI(quick)
	if err != nil {
		t.Fatal(err)
	}
	if r.Values["performance_jobs"] != 3246 {
		t.Fatalf("performance jobs = %g, want 3246", r.Values["performance_jobs"])
	}
	if r.Values["power_jobs"] != 640 {
		t.Fatalf("power jobs = %g, want 640", r.Values["power_jobs"])
	}
	// Size range must match Table I's 1.7e3 – 1.1e9 order.
	if r.Values["performance_size_min"] > 2e3 || r.Values["performance_size_max"] < 1e9 {
		t.Fatalf("size range [%g, %g]", r.Values["performance_size_min"], r.Values["performance_size_max"])
	}
	// Runtime spans several orders of magnitude.
	span := math.Log10(r.Values["performance_runtime_max_s"] / r.Values["performance_runtime_min_s"])
	if span < 4 {
		t.Fatalf("runtime span %.1f orders", span)
	}
	if r.Values["power_energy_min_j"] <= 0 {
		t.Fatal("energy range missing")
	}
}

func TestFig1NoisierPowerDataset(t *testing.T) {
	r, err := Fig1(quick)
	if err != nil {
		t.Fatal(err)
	}
	perfCV := r.Values["performance_repeat_cv"]
	powCV := r.Values["power_repeat_cv"]
	if math.IsNaN(perfCV) || math.IsNaN(powCV) {
		t.Fatalf("CVs missing: %g %g", perfCV, powCV)
	}
	if powCV <= perfCV {
		t.Fatalf("power CV %g should exceed performance CV %g (paper: much higher variance)", powCV, perfCV)
	}
	if len(r.Series["performance_runtime"]) == 0 || len(r.Series["power_energy"]) == 0 {
		t.Fatal("scatter series missing")
	}
}

func TestFig2LogLogLinear(t *testing.T) {
	r, err := Fig2(quick)
	if err != nil {
		t.Fatal(err)
	}
	slope := r.Values["loglog_slope"]
	r2 := r.Values["loglog_r2"]
	if slope < 0.7 || slope > 1.3 {
		t.Fatalf("log-log slope %g, want ≈1", slope)
	}
	if r2 < 0.95 {
		t.Fatalf("log-log R² %g, want near 1", r2)
	}
}

func TestFig3HyperparameterEffects(t *testing.T) {
	r, err := Fig3(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Smaller l ⇒ wider CI between points (paper's key observation).
	w0 := r.Values["a_mean_ci_width_0"] // l = 0.3
	w1 := r.Values["a_mean_ci_width_1"] // l = 1
	w2 := r.Values["a_mean_ci_width_2"] // l = 3
	if !(w0 > w1 && w1 > w2) {
		t.Fatalf("CI widths not decreasing with l: %g, %g, %g", w0, w1, w2)
	}
	// Edge blow-up on the 4-point subset.
	if r.Values["b_sd_edge"] <= r.Values["b_sd_mid"] {
		t.Fatalf("edge SD %g not above interior SD %g", r.Values["b_sd_edge"], r.Values["b_sd_mid"])
	}
}

func TestFig4PeakedLandscape(t *testing.T) {
	r, err := Fig4(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Single-start ascent must reach (essentially) the grid peak.
	if r.Values["fitted_lml"] < r.Values["grid_peak_lml"]-math.Abs(r.Values["grid_peak_lml"])*0.02-0.5 {
		t.Fatalf("ascent LML %g well below grid peak %g", r.Values["fitted_lml"], r.Values["grid_peak_lml"])
	}
	if len(r.Series["lml_grid"]) == 0 {
		t.Fatal("grid series missing")
	}
}

func TestFig5ShallowLandscape(t *testing.T) {
	r4, err := Fig4(quick)
	if err != nil {
		t.Fatal(err)
	}
	r5, err := Fig5(quick)
	if err != nil {
		t.Fatal(err)
	}
	// The small-dataset landscape is shallower than the abundant-data one.
	if r5.Values["peak_minus_median"] >= r4.Values["peak_minus_median"] {
		t.Fatalf("Fig5 landscape (%g) should be shallower than Fig4 (%g)",
			r5.Values["peak_minus_median"], r4.Values["peak_minus_median"])
	}
	// The far corner should be among the most uncertain areas.
	if r5.Values["corner_sd"] < 0.3*r5.Values["max_sd"] {
		t.Fatalf("corner SD %g vs max %g — corner should be uncertain", r5.Values["corner_sd"], r5.Values["max_sd"])
	}
}

func TestFig6EdgesFirst(t *testing.T) {
	r, err := Fig6(quick)
	if err != nil {
		t.Fatal(err)
	}
	if r.Values["subset_jobs"] < 50 {
		t.Fatalf("subset too small: %g", r.Values["subset_jobs"])
	}
	if r.Values["edge_fraction_first10"] < 0.6 {
		t.Fatalf("edge fraction in first selections %g, want ≥ 0.6 (star pattern)", r.Values["edge_fraction_first10"])
	}
	if len(r.Series["trajectory"]) == 0 {
		t.Fatal("trajectory missing")
	}
}

func TestFig7NoiseFloorFix(t *testing.T) {
	r, err := Fig7(quick)
	if err != nil {
		t.Fatal(err)
	}
	if r.Values["min_noise_high_floor"] < 0.1-1e-9 {
		t.Fatalf("floored batch violated σn ≥ 0.1: %g", r.Values["min_noise_high_floor"])
	}
	if r.Values["min_noise_low_floor"] >= 1e-2 {
		t.Fatalf("low floor never overfits (min σn %g) — Fig. 7a mechanism absent", r.Values["min_noise_low_floor"])
	}
	if r.Values["early_collapse_high"] > r.Values["early_collapse_low"] {
		t.Fatal("floored runs collapse more often than unfloored — wrong direction")
	}
	if len(r.Series["floor_1e-8"]) == 0 || len(r.Series["floor_1e-1"]) == 0 {
		t.Fatal("trajectory series missing")
	}
}

func TestFig8StrategyComparison(t *testing.T) {
	r, err := Fig8(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Cost efficiency must be cheaper in total.
	if r.Values["ce_total_cost"] >= r.Values["vr_total_cost"] {
		t.Fatalf("CE total cost %g should be below VR %g",
			r.Values["ce_total_cost"], r.Values["vr_total_cost"])
	}
	// There must be a crossover and a meaningful reduction.
	if math.IsNaN(r.Values["crossover_cost"]) {
		t.Fatal("no tradeoff crossover found")
	}
	if r.Values["max_reduction"] <= 0.05 {
		t.Fatalf("max reduction %g too small — CE advantage absent", r.Values["max_reduction"])
	}
	if len(r.Series["variance_reduction"]) == 0 || len(r.Series["cost_efficiency"]) == 0 {
		t.Fatal("curves missing")
	}
}

func TestAllAndReportIO(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	reports, err := All(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 9 {
		t.Fatalf("%d reports, want 9", len(reports))
	}
	ids := map[string]bool{}
	for _, r := range reports {
		ids[r.ID] = true
		var buf bytes.Buffer
		if _, err := r.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), r.ID) {
			t.Fatalf("report text missing ID %s", r.ID)
		}
	}
	for _, want := range []string{"T1", "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8"} {
		if !ids[want] {
			t.Fatalf("missing report %s", want)
		}
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	r, err := Fig2(quick)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteSeriesCSV("log_runtime_vs_log_size", []string{"log_size", "log_runtime"}, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 10 {
		t.Fatalf("CSV too short: %d lines", len(lines))
	}
	if lines[0] != "log_size,log_runtime" {
		t.Fatalf("header = %q", lines[0])
	}
	if err := r.WriteSeriesCSV("nope", nil, &buf); err == nil {
		t.Fatal("expected unknown-series error")
	}
}
