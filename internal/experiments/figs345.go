package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/gp"
	"repro/internal/kernel"
	"repro/internal/stats"
)

// fig3Hypers are the four (length scale, amplitude) settings whose
// predictive distributions Fig. 3 contrasts.
var fig3Hypers = [][2]float64{{0.3, 1}, {1, 1}, {3, 1}, {1, 3}}

// Fig3 regenerates the 1-D GPR study: predictive mean ± 2 SD curves for
// the NP=32, 2.4 GHz, poisson1 cross-section under four fixed
// hyperparameter settings, on (a) all measurements and (b) a random
// 4-point subset where the edge-of-domain uncertainty blows up.
func Fig3(opts Options) (*Report, error) {
	r := newReport("F3", "Predictive distribution for 1D cross section of Performance dataset")
	d, err := subset1D(opts.seed())
	if err != nil {
		return nil, err
	}
	xs := d.Var(dataset.VarSize)
	lo, hi := stats.MinMax(xs)
	grid := gp.Linspace(lo, hi, 60)

	fitFixed := func(sub *dataset.Dataset, l, sf float64) (*gp.GP, error) {
		cfg := gp.Config{
			Kernel:     kernel.NewRBF(l, sf),
			NoiseInit:  0.05,
			FixedNoise: true,
		}
		return gp.Fit(cfg, sub.Matrix(nil), sub.RespVec(dataset.RespRuntime, nil), nil)
	}

	// (a) All measurements.
	var interiorWidths []float64 // mean CI width per hyper setting
	for hi, h := range fig3Hypers {
		g, err := fitFixed(d, h[0], h[1])
		if err != nil {
			return nil, err
		}
		rows := make([][]float64, len(grid))
		var width float64
		for i, x := range grid {
			p := g.Predict([]float64{x})
			clo, chi := p.CI(2)
			rows[i] = []float64{x, p.Mean, clo, chi}
			width += chi - clo
		}
		width /= float64(len(grid))
		interiorWidths = append(interiorWidths, width)
		r.Series[fmt.Sprintf("a_l%.1f_sf%.1f", h[0], h[1])] = rows
		r.Values[fmt.Sprintf("a_mean_ci_width_%d", hi)] = width
	}
	r.addf("(a) all %d points: mean 95%% CI widths across (l, σf) settings: %.3g, %.3g, %.3g, %.3g",
		d.Len(), interiorWidths[0], interiorWidths[1], interiorWidths[2], interiorWidths[3])
	if !(interiorWidths[0] > interiorWidths[1] && interiorWidths[1] > interiorWidths[2]) {
		r.addf("WARNING: decreasing l did not widen the confidence interval as in the paper")
	} else {
		r.addf("as in the paper: decreasing l significantly increases uncertainty between measurement points")
	}

	// (b) Random 4-point subset: edge uncertainty.
	rng := rand.New(rand.NewSource(opts.seed() + 100))
	idx := rng.Perm(d.Len())[:4]
	sub := d.Filter(func(i int) bool {
		for _, j := range idx {
			if i == j {
				return true
			}
		}
		return false
	})
	g, err := fitFixed(sub, 1, 1)
	if err != nil {
		return nil, err
	}
	var subLo, subHi float64 = math.Inf(1), math.Inf(-1)
	for i := 0; i < sub.Len(); i++ {
		x := sub.Row(i)[0]
		if x < subLo {
			subLo = x
		}
		if x > subHi {
			subHi = x
		}
	}
	mid := 0.5 * (subLo + subHi)
	sdEdge := g.Predict([]float64{hi}).SD
	sdMid := g.Predict([]float64{mid}).SD
	r.Values["b_sd_edge"] = sdEdge
	r.Values["b_sd_mid"] = sdMid
	r.addf("(b) 4-point subset: SD at domain edge %.3g vs near data %.3g (ratio %.1f)",
		sdEdge, sdMid, sdEdge/math.Max(sdMid, 1e-12))
	r.addf("paper: uncertainty growth is exaggerated at the edge of the domain without nearby measurements")
	return r, nil
}

// Fig4 regenerates the LML landscape over (log l, log σn) for the 1-D
// subset with abundant data: a sharp single peak that plain gradient
// ascent finds from one random start.
func Fig4(opts Options) (*Report, error) {
	r := newReport("F4", "Contour plot of LML as a function of hyperparameters l and σn")
	d, err := subset1D(opts.seed())
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.seed() + 200))
	cfg := gp.Config{
		Kernel:     kernel.NewRBF(1, 1),
		NoiseInit:  0.1,
		NoiseFloor: 1e-4,
		Optimize:   true,
		Restarts:   0, // single random start, as the paper claims suffices here
	}
	g, err := gp.Fit(cfg, d.Matrix(nil), d.RespVec(dataset.RespRuntime, nil), rng)
	if err != nil {
		return nil, err
	}

	n := 25
	if opts.Quick {
		n = 12
	}
	lVals := gp.Linspace(math.Log(0.05), math.Log(20), n)
	snVals := gp.Linspace(math.Log(1e-3), math.Log(1), n)
	// Hyper order: [log_l, log_sf, log_sn] → indices 0 and 2.
	z := g.LMLGrid(0, 2, lVals, snVals)
	rows := make([][]float64, 0, n*n)
	for i := range z {
		for j := range z[i] {
			rows = append(rows, []float64{lVals[i], snVals[j], z[i][j]})
		}
	}
	r.Series["lml_grid"] = rows

	pi, pj, peak := gp.GridPeak(z)
	r.Values["grid_peak_lml"] = peak
	r.Values["fitted_lml"] = g.LML()
	r.Values["peak_log_l"] = lVals[pi]
	r.Values["peak_log_sn"] = snVals[pj]
	r.addf("grid peak LML %.2f at log l=%.2f, log σn=%.2f; gradient ascent from one random start reached %.2f",
		peak, lVals[pi], snVals[pj], g.LML())
	if g.LML() >= peak-math.Abs(peak)*0.02-0.5 {
		r.addf("as in the paper: the landscape has a clear single optimum reachable from a single random start")
	} else {
		r.addf("WARNING: single-start ascent fell short of the grid peak")
	}
	// Peakedness: peak minus median over the grid (sharp for abundant data).
	var all []float64
	for _, row := range rows {
		all = append(all, row[2])
	}
	r.Values["peak_minus_median"] = peak - stats.Median(all)
	return r, nil
}

// Fig5 regenerates the two-variable GPR on a small dataset: mean and
// 95% CI surfaces from 4 random training points over (log size,
// frequency), plus the much shallower LML landscape.
func Fig5(opts Options) (*Report, error) {
	r := newReport("F5", "GPR for a small dataset with two controlled variables")
	d, err := subset2D(opts.seed())
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.seed() + 300))
	idx := rng.Perm(d.Len())[:4]
	sub := d.Filter(func(i int) bool {
		for _, j := range idx {
			if i == j {
				return true
			}
		}
		return false
	})
	cfg := gp.Config{
		Kernel:     kernel.NewRBF(1, 1),
		NoiseInit:  0.1,
		NoiseFloor: 1e-2,
		Optimize:   true,
		Restarts:   4,
	}
	g, err := gp.Fit(cfg, sub.Matrix(nil), sub.RespVec(dataset.RespRuntime, nil), rng)
	if err != nil {
		return nil, err
	}

	sizes := d.Var(dataset.VarSize)
	freqs := d.Var(dataset.VarFreq)
	sLo, sHi := stats.MinMax(sizes)
	fLo, fHi := stats.MinMax(freqs)
	gridN := 15
	if opts.Quick {
		gridN = 8
	}
	var rows [][]float64
	var maxSD, farCornerSD float64
	for _, s := range gp.Linspace(sLo, sHi, gridN) {
		for _, f := range gp.Linspace(fLo, fHi, gridN) {
			p := g.Predict([]float64{s, f})
			lo, hi := p.CI(2)
			rows = append(rows, []float64{s, f, p.Mean, lo, hi})
			if p.SD > maxSD {
				maxSD = p.SD
			}
		}
	}
	farCornerSD = g.Predict([]float64{sHi, fHi}).SD
	r.Series["surfaces"] = rows
	r.Values["max_sd"] = maxSD
	r.Values["corner_sd"] = farCornerSD
	r.addf("4 training points: max pool SD %.3g; SD at (max size, max freq) corner %.3g", maxSD, farCornerSD)

	// LML shallowness vs Fig. 4.
	n := 15
	if opts.Quick {
		n = 8
	}
	lVals := gp.Linspace(math.Log(0.05), math.Log(20), n)
	snVals := gp.Linspace(math.Log(1e-2), math.Log(1), n)
	z := g.LMLGrid(0, 2, lVals, snVals)
	_, _, peak := gp.GridPeak(z)
	var all []float64
	for i := range z {
		all = append(all, z[i]...)
	}
	shallow := peak - stats.Median(all)
	r.Values["peak_minus_median"] = shallow
	r.addf("LML landscape peak−median %.2f (Fig. 4's abundant-data landscape is far more peaked)", shallow)
	r.addf("paper: the small-dataset landscape is significantly more shallow, yet the identified peak yields a usable GPR")
	return r, nil
}
