package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/asciiplot"
)

// curveMarks assigns each ranked strategy a plot rune, in rank order.
var curveMarks = []rune{'1', '2', '3', '4', '5', '6', '7', '8', '9'}

// fmtMetric renders a metric for the report: fixed short precision so
// two identical runs produce byte-identical text, with "-" for an
// unreached target.
func fmtMetric(v float64) string {
	if math.IsInf(v, 1) {
		return "-"
	}
	return fmt.Sprintf("%.4g", v)
}

// WriteReport renders the ranked comparative report: one table plus a
// learning-curve overlay per (dataset, noise) group, then an overall
// win-count summary. The output is a pure function of the grid spec and
// the cells — no timestamps, hostnames or map-order dependence — so two
// identical invocations emit byte-identical reports (the aleval CI step
// diffs them).
func (r *EvalResult) WriteReport(w io.Writer) (int64, error) {
	var sb strings.Builder
	g := r.Grid
	fmt.Fprintf(&sb, "== aleval: strategy x dataset x noise grid ==\n")
	fmt.Fprintf(&sb, "grid: %d strategies x %d datasets x %d noise models, iterations=%d, seed=%d\n",
		len(g.Strategies), len(g.Datasets), len(g.NoiseModels), g.Iterations, g.Seed)

	wins := map[string]int{}
	var labels []string
	seen := map[string]bool{}

	for _, ds := range g.Datasets {
		for _, noise := range g.NoiseModels {
			cells := r.group(ds, noise)
			if len(cells) == 0 {
				continue
			}
			fmt.Fprintf(&sb, "\n-- %s / %s (target-rmse %s) --\n", ds, noise, fmtMetric(cells[0].Target))
			fmt.Fprintf(&sb, "%-4s %-22s %12s %14s %10s %6s\n",
				"rank", "strategy", "final-rmse", "cost-to-tgt", "avg-rmse", "obs")
			for i, c := range cells {
				fmt.Fprintf(&sb, "%-4d %-22s %12s %14s %10s %6d\n",
					i+1, c.Strategy, fmtMetric(c.FinalRMSE), fmtMetric(c.CostToTarget),
					fmtMetric(c.AvgRMSE), c.Observations)
				if !seen[c.Strategy] {
					seen[c.Strategy] = true
					labels = append(labels, c.Strategy)
				}
			}
			wins[cells[0].Strategy]++
			sb.WriteString(renderCurves(cells))
		}
	}

	sb.WriteString("\n-- overall --\n")
	sort.Slice(labels, func(i, j int) bool {
		if wins[labels[i]] != wins[labels[j]] {
			return wins[labels[i]] > wins[labels[j]]
		}
		return labels[i] < labels[j]
	})
	for _, l := range labels {
		fmt.Fprintf(&sb, "%-22s group wins: %d\n", l, wins[l])
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// renderCurves overlays the group's learning curves on one canvas:
// RMSE (y) against cumulative experiment cost (x), one digit-mark per
// ranked strategy.
func renderCurves(cells []EvalCell) string {
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, c := range cells {
		for _, pt := range c.Curve {
			if math.IsNaN(pt.RMSE) {
				continue
			}
			xmin = math.Min(xmin, pt.CumCost)
			xmax = math.Max(xmax, pt.CumCost)
			ymin = math.Min(ymin, pt.RMSE)
			ymax = math.Max(ymax, pt.RMSE)
		}
	}
	if math.IsInf(xmin, 1) {
		return ""
	}
	cv := asciiplot.NewCanvas(64, 14, xmin, xmax, ymin, ymax)
	cv.SetLabels("learning curves (rank digit = strategy)", "cumulative cost", "rmse")
	// Draw in reverse rank order so the winner's mark lands on top of
	// any shared cells.
	for i := len(cells) - 1; i >= 0; i-- {
		mark := '#'
		if i < len(curveMarks) {
			mark = curveMarks[i]
		}
		var xs, ys []float64
		for _, pt := range cells[i].Curve {
			if !math.IsNaN(pt.RMSE) {
				xs = append(xs, pt.CumCost)
				ys = append(ys, pt.RMSE)
			}
		}
		cv.Line(xs, ys, mark)
	}
	return cv.String()
}
