// Package experiments regenerates every table and figure of the paper's
// evaluation (§V) from the simulated HPGMG datasets. Each generator
// returns a Report: the printable rows/series the paper's artifact shows,
// plus the headline numbers EXPERIMENTS.md records (paper vs measured).
//
// All generators are deterministic in Options.Seed. Options.Quick shrinks
// batch sizes so the full suite runs in seconds for tests; benchmarks and
// cmd/alrepro use the full configuration.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/hpgmg"
	"repro/internal/kernel"
)

// Options configures experiment generation.
type Options struct {
	// Seed drives all randomness (default 1).
	Seed int64
	// Quick shrinks batch sizes and iteration counts for fast test
	// runs; the full configuration matches the paper's.
	Quick bool
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// Report is the output of one experiment generator.
type Report struct {
	ID    string
	Title string
	Lines []string
	// Values holds the headline numbers for programmatic checks and
	// EXPERIMENTS.md (e.g. "crossover_cost", "max_reduction").
	Values map[string]float64
	// Series holds CSV-able data series: name → rows of columns.
	Series map[string][][]float64
}

func newReport(id, title string) *Report {
	return &Report{ID: id, Title: title, Values: map[string]float64{}, Series: map[string][][]float64{}}
}

func (r *Report) addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// WriteTo renders the report as text.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	if len(r.Values) > 0 {
		keys := make([]string, 0, len(r.Values))
		for k := range r.Values {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sb.WriteString("-- values --\n")
		for _, k := range keys {
			fmt.Fprintf(&sb, "%s = %g\n", k, r.Values[k])
		}
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// WriteSeriesCSV emits one named series as CSV.
func (r *Report) WriteSeriesCSV(name string, header []string, w io.Writer) error {
	rows, ok := r.Series[name]
	if !ok {
		return fmt.Errorf("experiments: report %s has no series %q", r.ID, name)
	}
	if len(header) > 0 {
		if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
			return err
		}
	}
	for _, row := range rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = fmt.Sprintf("%g", v)
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, ",")); err != nil {
			return err
		}
	}
	return nil
}

// ---- shared dataset builders ----

// perfDataset caches the regenerated Performance dataset per seed within
// one process (generation is cheap but experiments share it).
func perfDataset(seed int64) (*dataset.Dataset, error) {
	results, err := hpgmg.GeneratePerformance(seed)
	if err != nil {
		return nil, err
	}
	return dataset.FromPerformance(results)
}

func powerDataset(seed int64) (*dataset.Dataset, error) {
	results, err := hpgmg.GeneratePower(seed)
	if err != nil {
		return nil, err
	}
	return dataset.FromPower(results)
}

// subset2D builds the study subset of §V-B: operator poisson1, NP = 32,
// variables (log10 size, frequency), response log10 runtime, projected to
// two columns. This is the Fig. 6–8 dataset.
func subset2D(seed int64) (*dataset.Dataset, error) {
	d, err := perfDataset(seed)
	if err != nil {
		return nil, err
	}
	sub := d.WhereTag(dataset.TagOperator, "poisson1").WhereVar(dataset.VarNP, 32)
	if err := sub.LogVar(dataset.VarSize); err != nil {
		return nil, err
	}
	if err := sub.LogResp(dataset.RespRuntime); err != nil {
		return nil, err
	}
	return sub.Project(dataset.VarSize, dataset.VarFreq), nil
}

// subset1D further fixes frequency = 2.4 GHz: variable log10 size only
// (the Fig. 3–4 dataset).
func subset1D(seed int64) (*dataset.Dataset, error) {
	d, err := perfDataset(seed)
	if err != nil {
		return nil, err
	}
	sub := d.WhereTag(dataset.TagOperator, "poisson1").
		WhereVar(dataset.VarNP, 32).
		WhereVar(dataset.VarFreq, 2.4)
	if err := sub.LogVar(dataset.VarSize); err != nil {
		return nil, err
	}
	if err := sub.LogResp(dataset.RespRuntime); err != nil {
		return nil, err
	}
	return sub.Project(dataset.VarSize), nil
}

// defaultKernel is the RBF kernel used throughout the evaluation.
func defaultKernel(int) kernel.Kernel { return kernel.NewRBF(1, 1) }
