package experiments

import (
	"math/rand"
	"time"

	"repro/internal/dataset"
	"repro/internal/gp"
	"repro/internal/kernel"
	"repro/internal/stats"
)

// AblationScaling (A5) studies the computational requirements of GPR as
// the dataset grows — the paper's closing future-work item — comparing
// the exact dense fit against the inducing-point sparse approximation on
// growing subsets of the full Performance dataset (all three controlled
// variables, ARD kernel).
func AblationScaling(opts Options) (*Report, error) {
	r := newReport("A5", "Ablation: dense vs sparse GPR as the dataset grows")
	d, err := perfDataset(opts.seed())
	if err != nil {
		return nil, err
	}
	// Full 3-variable design: log size, NP, frequency; log runtime.
	sub := d.WhereTag(dataset.TagOperator, "poisson1")
	if err := sub.LogVar(dataset.VarSize); err != nil {
		return nil, err
	}
	if err := sub.LogResp(dataset.RespRuntime); err != nil {
		return nil, err
	}
	sub = sub.Project(dataset.VarSize, dataset.VarNP, dataset.VarFreq)

	sizes := []int{200, 400, 800}
	if opts.Quick {
		sizes = []int{100, 200}
	}
	rng := rand.New(rand.NewSource(opts.seed() + 1000))
	perm := rng.Perm(sub.Len())
	testN := 100
	if testN > sub.Len()/5 {
		testN = sub.Len() / 5
	}
	testRows := perm[:testN]
	poolRows := perm[testN:]
	testX := sub.Matrix(testRows)
	testY := sub.RespVec(dataset.RespRuntime, testRows)

	var rows [][]float64
	for _, n := range sizes {
		if n > len(poolRows) {
			n = len(poolRows)
		}
		trainRows := poolRows[:n]
		x := sub.Matrix(trainRows)
		y := sub.RespVec(dataset.RespRuntime, trainRows)

		// Dense fit: fixed sensible hyperparameters so the comparison
		// isolates the linear-algebra cost, not optimizer luck.
		mkKernel := func() kernel.Kernel {
			return kernel.NewARD([]float64{1.5, 40, 1.0}, 1.5)
		}
		t0 := time.Now()
		dense, err := gp.Fit(gp.Config{
			Kernel: mkKernel(), NoiseInit: 0.1, FixedNoise: true, Normalize: true,
		}, x, y, nil)
		if err != nil {
			return nil, err
		}
		denseFit := time.Since(t0).Seconds()
		denseRMSE := stats.RMSE(gp.Means(dense.PredictBatch(testX)), testY)

		t0 = time.Now()
		sparse, err := gp.FitSparse(gp.SparseConfig{
			Kernel: mkKernel(), Noise: 0.1, Inducing: 64, Normalize: true,
		}, x, y, rng)
		if err != nil {
			return nil, err
		}
		sparseFit := time.Since(t0).Seconds()
		sp := sparse.PredictBatch(testX)
		sparseRMSE := stats.RMSE(gp.Means(sp), testY)

		rows = append(rows, []float64{float64(n), denseFit, sparseFit, denseRMSE, sparseRMSE})
		r.addf("n=%4d: dense fit %.3fs (RMSE %.4f) vs sparse m=64 fit %.3fs (RMSE %.4f)",
			n, denseFit, denseRMSE, sparseFit, sparseRMSE)
	}
	r.Series["scaling"] = rows
	last := rows[len(rows)-1]
	r.Values["n_max"] = last[0]
	r.Values["dense_fit_s"] = last[1]
	r.Values["sparse_fit_s"] = last[2]
	r.Values["dense_rmse"] = last[3]
	r.Values["sparse_rmse"] = last[4]
	if last[2] > 0 {
		r.Values["fit_speedup"] = last[1] / last[2]
	}
	r.addf("the dense fit grows O(n³); the m=64 sparse approximation grows O(n·m²) and keeps comparable accuracy on this smooth surface")
	return r, nil
}
