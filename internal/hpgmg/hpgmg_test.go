package hpgmg

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/multigrid"
	"repro/internal/stats"
)

func TestModelFor(t *testing.T) {
	m1 := ModelFor(multigrid.Poisson1)
	m2 := ModelFor(multigrid.Poisson2)
	m2a := ModelFor(multigrid.Poisson2Affine)
	if !(m1.FlopsPerDOF < m2.FlopsPerDOF && m2.FlopsPerDOF < m2a.FlopsPerDOF) {
		t.Fatal("operator flop costs must be ordered poisson1 < poisson2 < poisson2affine")
	}
	if m1.SetupS <= 0 {
		t.Fatal("setup cost must be positive")
	}
}

func TestWorkScalesLinearlyWithSize(t *testing.T) {
	m := ModelFor(multigrid.Poisson1)
	small := m.Work(Config{GlobalSize: 1e6, NP: 8, FreqGHz: 2.4})
	big := m.Work(Config{GlobalSize: 2e6, NP: 8, FreqGHz: 2.4})
	if math.Abs(big.Flops/small.Flops-2) > 1e-12 {
		t.Fatalf("flops ratio %g, want 2", big.Flops/small.Flops)
	}
	if math.Abs(big.MemBytes/small.MemBytes-2) > 1e-12 {
		t.Fatalf("bytes ratio %g", big.MemBytes/small.MemBytes)
	}
	// Halo volume grows sublinearly (surface vs volume).
	if big.NetBytes/small.NetBytes > 1.7 {
		t.Fatalf("halo ratio %g should be ≈ 2^(2/3)", big.NetBytes/small.NetBytes)
	}
}

func TestRunnerValidate(t *testing.T) {
	r := NewRunner(cluster.Wisconsin(), 1)
	cases := []Config{
		{Op: multigrid.Poisson1, GlobalSize: 0, NP: 1, FreqGHz: 2.4},
		{Op: multigrid.Poisson1, GlobalSize: 1e6, NP: 0, FreqGHz: 2.4},
		{Op: multigrid.Poisson1, GlobalSize: 1e6, NP: 1, FreqGHz: 2.0},
	}
	for i, cfg := range cases {
		if err := r.Validate(cfg); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	ok := Config{Op: multigrid.Poisson1, GlobalSize: 1e6, NP: 16, FreqGHz: 2.4}
	if err := r.Validate(ok); err != nil {
		t.Fatal(err)
	}
}

func TestRunProducesPlausibleResult(t *testing.T) {
	r := NewRunner(cluster.Wisconsin(), 2)
	r.Trace.PeriodS = 1
	res, err := r.Run(Config{Op: multigrid.Poisson2, GlobalSize: 64e6, NP: 32, FreqGHz: 1.8})
	if err != nil {
		t.Fatal(err)
	}
	if res.RuntimeS <= 0 {
		t.Fatalf("runtime %g", res.RuntimeS)
	}
	if res.AvgWatts < 100 {
		t.Fatalf("watts %g too low for a 2-node job", res.AvgWatts)
	}
	if res.CoreSeconds() != res.RuntimeS*32 {
		t.Fatal("CoreSeconds wrong")
	}
}

func TestRuntimeMonotoneInSize(t *testing.T) {
	r := NewRunner(cluster.Wisconsin(), 3)
	r.NoiseSigma = 0 // deterministic for the monotonicity check
	prev := 0.0
	for _, d := range []int{16, 44, 126, 359, 1023} {
		res, err := r.Run(Config{Op: multigrid.Poisson1, GlobalSize: int64(d) * int64(d) * int64(d), NP: 16, FreqGHz: 2.4})
		if err != nil {
			t.Fatal(err)
		}
		if res.RuntimeS <= prev {
			t.Fatalf("runtime not increasing at d=%d: %g <= %g", d, res.RuntimeS, prev)
		}
		prev = res.RuntimeS
	}
}

func TestRuntimeDecreasesWithFreqForComputeBound(t *testing.T) {
	r := NewRunner(cluster.Wisconsin(), 4)
	r.NoiseSigma = 0
	// Small-ish problem on one core: compute bound.
	prev := math.Inf(1)
	for _, f := range StandardFreqs {
		res, err := r.Run(Config{Op: multigrid.Poisson2Affine, GlobalSize: 8e6, NP: 1, FreqGHz: f})
		if err != nil {
			t.Fatal(err)
		}
		if res.RuntimeS >= prev {
			t.Fatalf("runtime not decreasing with freq at %g", f)
		}
		prev = res.RuntimeS
	}
}

func TestEnergyIncreasesWithFreqDespiteShorterRuntime(t *testing.T) {
	// For a memory-bound job, higher frequency burns more power without
	// proportionally reducing runtime — energy should rise. This is the
	// energy/performance tension the paper's Power dataset captures.
	r := NewRunner(cluster.Wisconsin(), 5)
	r.NoiseSigma = 0
	r.Trace.PeriodS = 1
	e := func(f float64) float64 {
		res, err := r.Run(Config{Op: multigrid.Poisson1, GlobalSize: 512e6, NP: 16, FreqGHz: f})
		if err != nil {
			t.Fatal(err)
		}
		if !res.EnergyOK {
			t.Fatal("trace unexpectedly sparse")
		}
		return res.EnergyJ
	}
	if e(2.4) <= e(1.2) {
		t.Fatalf("memory-bound energy at 2.4 GHz (%g) should exceed 1.2 GHz (%g)", e(2.4), e(1.2))
	}
}

func TestNoiseIsReproducible(t *testing.T) {
	cfg := Config{Op: multigrid.Poisson1, GlobalSize: 1e6, NP: 8, FreqGHz: 2.1}
	r1 := NewRunner(cluster.Wisconsin(), 42)
	r2 := NewRunner(cluster.Wisconsin(), 42)
	a, _ := r1.Run(cfg)
	b, _ := r2.Run(cfg)
	if a.RuntimeS != b.RuntimeS {
		t.Fatal("same seed must reproduce identical results")
	}
	r3 := NewRunner(cluster.Wisconsin(), 43)
	c, _ := r3.Run(cfg)
	if a.RuntimeS == c.RuntimeS {
		t.Fatal("different seeds should perturb runtime")
	}
}

func TestSweepConfigsShape(t *testing.T) {
	cfgs := SweepConfigs()
	want := len(StandardOperators) * len(StandardDims) * len(StandardNP) * len(StandardFreqs)
	if len(cfgs) != want {
		t.Fatalf("sweep has %d configs, want %d", len(cfgs), want)
	}
	if want >= PerformanceJobs {
		t.Fatalf("base sweep (%d) should be below the Table I job count (%d) so repeats exist", want, PerformanceJobs)
	}
}

func TestGeneratePerformanceMatchesTableI(t *testing.T) {
	res, err := GeneratePerformance(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != PerformanceJobs {
		t.Fatalf("%d jobs, want %d", len(res), PerformanceJobs)
	}
	var runtimes []float64
	for _, r := range res {
		runtimes = append(runtimes, r.RuntimeS)
	}
	lo, hi := stats.MinMax(runtimes)
	// Table I: runtime 0.005 – 458 s. Shapes, not exact values: the
	// minimum must be milliseconds, the maximum hundreds of seconds.
	if lo > 0.05 {
		t.Fatalf("min runtime %g too large", lo)
	}
	if hi < 100 || hi > 2000 {
		t.Fatalf("max runtime %g outside plausible range", hi)
	}
	// Runtime must span ≥ 4 orders of magnitude (paper: 5).
	if math.Log10(hi/lo) < 4 {
		t.Fatalf("runtime spans only %.1f orders of magnitude", math.Log10(hi/lo))
	}
}

func TestGeneratePowerMatchesTableI(t *testing.T) {
	res, err := GeneratePower(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != PowerJobs {
		t.Fatalf("%d jobs, want %d", len(res), PowerJobs)
	}
	for _, r := range res {
		if !r.EnergyOK {
			t.Fatal("power dataset contains a job with unusable trace")
		}
		if r.EnergyJ <= 0 {
			t.Fatalf("non-positive energy %g", r.EnergyJ)
		}
	}
	var energies []float64
	for _, r := range res {
		energies = append(energies, r.EnergyJ)
	}
	lo, hi := stats.MinMax(energies)
	// Table I: energy 6.4e3 – 1.1e5 J; require the same orders.
	if lo < 10 || hi > 1e7 {
		t.Fatalf("energy range [%g, %g] implausible", lo, hi)
	}
	if hi/lo < 10 {
		t.Fatalf("energy should span at least an order of magnitude, got %g", hi/lo)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := GeneratePerformance(9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GeneratePerformance(9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].RuntimeS != b[i].RuntimeS || a[i].Config != b[i].Config {
			t.Fatalf("generation not deterministic at %d", i)
		}
	}
}

func TestRunRealSmall(t *testing.T) {
	fakeElapsed := 0.123
	timer := func(fn func()) float64 { fn(); return fakeElapsed }
	res, err := RunReal(Config{Op: multigrid.Poisson1, GlobalSize: 15 * 15 * 15, NP: 1, FreqGHz: 2.4}, 2, timer)
	if err != nil {
		t.Fatal(err)
	}
	if res.RuntimeS != fakeElapsed {
		t.Fatalf("runtime %g", res.RuntimeS)
	}
	if _, err := RunReal(Config{Op: multigrid.Poisson1, GlobalSize: 1000, NP: 1, FreqGHz: 2.4}, 2, timer); err == nil {
		t.Fatal("non-cubic size must error")
	}
}

func TestCalibrateRuns(t *testing.T) {
	rows, err := Calibrate(multigrid.Poisson1, []int{15, 31}, WallTimer)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.MeasuredS <= 0 || r.PredictedS <= 0 || r.Ratio <= 0 {
			t.Fatalf("bad calibration row %+v", r)
		}
	}
	if rows[1].MeasuredS <= rows[0].MeasuredS {
		t.Fatal("larger problem should take longer")
	}
}

func TestConfigString(t *testing.T) {
	c := Config{Op: multigrid.Poisson1, GlobalSize: 1000, NP: 4, FreqGHz: 2.4}
	if c.String() == "" {
		t.Fatal("empty String")
	}
}

func BenchmarkGeneratePerformance(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GeneratePerformance(1); err != nil {
			b.Fatal(err)
		}
	}
}
