package hpgmg

import (
	"fmt"
	"strconv"

	"repro/internal/sched"
)

// PipelineResult pairs a benchmark result with its scheduler accounting
// record — the shape of the data the paper collected ("benchmark output,
// error logs, SLURM accounting information, power consumption traces",
// §IV).
type PipelineResult struct {
	Result
	Accounting sched.Record
}

// RunThroughScheduler reproduces the paper's collection pipeline: the
// configurations are organized into a batch, submitted to the SLURM-like
// scheduler, and executed as the simulated cluster frees up. Runtimes come
// from the Runner's cluster model; accounting records carry the job
// parameters as metadata, exactly like `sacct` output with job comments.
func RunThroughScheduler(configs []Config, runner *Runner, partition sched.Config) ([]PipelineResult, error) {
	if runner == nil {
		return nil, fmt.Errorf("hpgmg: RunThroughScheduler requires a Runner")
	}
	s, err := sched.New(partition)
	if err != nil {
		return nil, err
	}
	results := make(map[int]Result, len(configs))
	for i, cfg := range configs {
		cfg := cfg
		jobID := i + 1
		_, err := s.Submit(sched.Job{
			ID:   jobID,
			Name: cfg.String(),
			NP:   cfg.NP,
			Run: func() float64 {
				res, err := runner.Run(cfg)
				if err != nil {
					// Infeasible configurations complete instantly with
					// no result — the paper's failed-job error logs.
					return 0
				}
				results[jobID] = res
				return res.RuntimeS
			},
			Meta: map[string]string{
				"operator": cfg.Op.String(),
				"size":     strconv.FormatInt(cfg.GlobalSize, 10),
				"np":       strconv.Itoa(cfg.NP),
				"freq":     strconv.FormatFloat(cfg.FreqGHz, 'g', -1, 64),
			},
		})
		if err != nil {
			return nil, fmt.Errorf("hpgmg: submitting %s: %w", cfg, err)
		}
	}
	records := s.Drain()
	out := make([]PipelineResult, 0, len(records))
	for _, rec := range records {
		res, ok := results[rec.JobID]
		if !ok {
			continue // failed job: no benchmark output
		}
		out = append(out, PipelineResult{Result: res, Accounting: rec})
	}
	return out, nil
}
