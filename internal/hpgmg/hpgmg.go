// Package hpgmg models the HPGMG-FE benchmark of the paper: the mapping
// from a job configuration (operator, global problem size, process count,
// CPU frequency) to runtime and energy on the simulated cluster.
//
// Two execution paths are provided. The analytic path predicts runtime
// from a calibrated work model (total flops / bytes per degree of freedom
// for a full-multigrid solve) pushed through the cluster's roofline; it
// regenerates the paper's 3000+-job datasets in milliseconds. The real
// path actually runs the internal/multigrid FMG solver and measures
// wall-clock time, which grounds the work model and powers the "online"
// Active Learning examples.
package hpgmg

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/multigrid"
)

// Config identifies one benchmark run; these are the controlled variables
// of the paper's Table I.
type Config struct {
	Op         multigrid.Operator
	GlobalSize int64 // total degrees of freedom
	NP         int   // MPI process count
	FreqGHz    float64
}

// String renders the configuration compactly for logs and job names.
func (c Config) String() string {
	return fmt.Sprintf("%s size=%d np=%d freq=%.1f", c.Op, c.GlobalSize, c.NP, c.FreqGHz)
}

// WorkModel is the calibrated per-operator cost of one full-multigrid
// solve, amortized per fine-grid degree of freedom. The 8/7 geometric
// factor of visiting the coarse hierarchy is folded in.
type WorkModel struct {
	// FlopsPerDOF is the total floating-point work per fine dof.
	FlopsPerDOF float64
	// BytesPerDOF is the total memory traffic per fine dof.
	BytesPerDOF float64
	// SetupS is the fixed per-job startup cost (launcher, PETSc init,
	// grid setup) in seconds.
	SetupS float64
	// SetupPerNodeS adds startup cost per allocated node.
	SetupPerNodeS float64
	// SweepsEquivalent is the effective number of fine-grid sweeps an
	// FMG solve performs — the halo-exchange count driver.
	SweepsEquivalent float64
}

// ModelFor returns the work model of an operator. The ratios between
// operators (denser stencils cost more per dof) mirror the relative flop
// counts of the real solver in internal/multigrid.
func ModelFor(op multigrid.Operator) WorkModel {
	base := WorkModel{SetupS: 0.004, SetupPerNodeS: 0.0006, SweepsEquivalent: 40}
	switch op {
	case multigrid.Poisson1:
		base.FlopsPerDOF = 180
		base.BytesPerDOF = 450
	case multigrid.Poisson2:
		base.FlopsPerDOF = 560
		base.BytesPerDOF = 820
	case multigrid.Poisson2Affine:
		base.FlopsPerDOF = 750
		base.BytesPerDOF = 980
	default:
		panic(fmt.Sprintf("hpgmg: unknown operator %v", op))
	}
	return base
}

// Work converts a configuration into a cluster resource demand. The halo
// volume per process scales with the subdomain surface (dof/np)^(2/3).
func (m WorkModel) Work(cfg Config) cluster.Work {
	size := float64(cfg.GlobalSize)
	sub := size / float64(cfg.NP)
	halo := 6 * math.Pow(sub, 2.0/3.0) * 8 * m.SweepsEquivalent
	msgs := 6 * m.SweepsEquivalent * math.Max(1, math.Log2(size)/3)
	return cluster.Work{
		Flops:    m.FlopsPerDOF * size,
		MemBytes: m.BytesPerDOF * size,
		NetBytes: halo,
		NetMsgs:  msgs,
	}
}

// Result is one completed benchmark job — the raw material of the
// Performance and Power datasets.
type Result struct {
	Config
	RuntimeS float64
	AvgWatts float64
	EnergyJ  float64
	EnergyOK bool // false when the power trace was too sparse (§V-A)
	Trace    []cluster.PowerSample
}

// CoreSeconds returns runtime × process count — the experiment cost unit
// of the paper's Fig. 8 ("total compute time in seconds * number of
// cores").
func (r Result) CoreSeconds() float64 { return r.RuntimeS * float64(r.NP) }

// Runner executes benchmark configurations against a simulated cluster.
type Runner struct {
	// Spec is the node model; required.
	Spec cluster.NodeSpec
	// NoiseSigma is the σ of multiplicative lognormal runtime noise
	// (default 0.04, matching run-to-run variation on a quiet testbed).
	NoiseSigma float64
	// PowerSigma is the σ of multiplicative lognormal noise on the
	// job's power level (default 0.08) — IPMI calibration drift,
	// ambient temperature, and fan duty make power much noisier than
	// runtime, which is why the paper's Power dataset shows far higher
	// variance than Performance (Fig. 1).
	PowerSigma float64
	// Trace configures the IPMI sampler; zero value means 1 s period,
	// no dropout.
	Trace cluster.TraceConfig
	// CollectTrace retains the full power trace in each Result.
	CollectTrace bool

	rng *rand.Rand
}

// NewRunner builds a deterministic runner seeded for reproducibility.
func NewRunner(spec cluster.NodeSpec, seed int64) *Runner {
	return &Runner{
		Spec:       spec,
		NoiseSigma: 0.04,
		PowerSigma: 0.08,
		rng:        rand.New(rand.NewSource(seed)),
	}
}

// Validate checks a configuration against the node model.
func (r *Runner) Validate(cfg Config) error {
	if cfg.GlobalSize <= 0 {
		return fmt.Errorf("hpgmg: non-positive problem size %d", cfg.GlobalSize)
	}
	if cfg.NP <= 0 {
		return fmt.Errorf("hpgmg: non-positive process count %d", cfg.NP)
	}
	if !r.Spec.ValidFreq(cfg.FreqGHz) {
		return fmt.Errorf("hpgmg: %g GHz is not a DVFS level", cfg.FreqGHz)
	}
	// Memory feasibility: the FMG hierarchy needs ≈ 6 fields × 8 B per
	// fine dof, spread across the allocated nodes.
	p, err := cluster.Place(cfg.NP, r.Spec.Cores())
	if err != nil {
		return err
	}
	needGB := float64(cfg.GlobalSize) * 8 * 6 / 1e9
	if needGB > float64(p.Nodes)*r.Spec.MemGB {
		return fmt.Errorf("hpgmg: %s needs %.0f GB, allocation has %.0f GB",
			cfg, needGB, float64(p.Nodes)*r.Spec.MemGB)
	}
	return nil
}

// Run executes one job on the simulated cluster: predict the runtime from
// the work model, apply measurement noise, sample an IPMI power trace,
// and integrate it into an energy estimate.
func (r *Runner) Run(cfg Config) (Result, error) {
	if err := r.Validate(cfg); err != nil {
		return Result{}, err
	}
	m := ModelFor(cfg.Op)
	p, err := cluster.Place(cfg.NP, r.Spec.Cores())
	if err != nil {
		return Result{}, err
	}
	base, err := r.Spec.ExecTime(m.Work(cfg), p, cfg.FreqGHz)
	if err != nil {
		return Result{}, err
	}
	base += m.SetupS + m.SetupPerNodeS*float64(p.Nodes)
	sigma := r.NoiseSigma
	runtime := base * math.Exp(sigma*r.rng.NormFloat64())

	fullWatts := r.Spec.JobPower(p, cfg.FreqGHz) * math.Exp(r.PowerSigma*r.rng.NormFloat64())
	idleWatts := float64(p.Nodes) * r.Spec.Power(0, cfg.FreqGHz)
	powerAt := phasePower(fullWatts, idleWatts, runtime)
	trace := cluster.SampleTraceFunc(r.rng, runtime, powerAt, r.Trace)
	energy, eerr := cluster.EnergyFromTrace(trace, runtime)

	res := Result{
		Config:   cfg,
		RuntimeS: runtime,
		AvgWatts: fullWatts,
		EnergyJ:  energy,
		EnergyOK: eerr == nil,
	}
	if r.CollectTrace {
		res.Trace = trace
	}
	return res, nil
}

// phasePower models the instantaneous draw of an FMG solve: near the
// full-load level while fine grids are swept, dipping toward (but not
// reaching) idle during the coarse-grid phases that cannot keep every
// core busy. The dips recur once per effective cycle, giving the
// non-constant traces real IPMI captures show.
func phasePower(fullWatts, idleWatts, runtimeS float64) func(t float64) float64 {
	// Cycle period: roughly 8 dips over the job, but never faster than
	// one per 2 s (IPMI could not see faster dips anyway).
	period := runtimeS / 8
	if period < 2 {
		period = 2
	}
	depth := 0.35 * (fullWatts - idleWatts) // coarse phases idle ~1/3 of the dynamic power
	if depth < 0 {
		depth = 0
	}
	return func(t float64) float64 {
		dip := 0.5 * (1 - math.Cos(2*math.Pi*t/period)) // 0 at cycle start, 1 mid-cycle
		return fullWatts - depth*dip
	}
}

// RunReal executes the configuration by actually running the
// internal/multigrid FMG solver with workers goroutines and measuring
// wall-clock time. Only small problems (per-dimension n = 2^k − 1, size
// fitting in memory) are supported; it backs the "online" AL examples and
// the work-model calibration.
func RunReal(cfg Config, workers int, timer func(func()) float64) (Result, error) {
	n := int(math.Round(math.Cbrt(float64(cfg.GlobalSize))))
	if int64(n)*int64(n)*int64(n) != cfg.GlobalSize {
		return Result{}, fmt.Errorf("hpgmg: real runs need a cubic size, got %d", cfg.GlobalSize)
	}
	s, err := multigrid.NewSolver(multigrid.Config{Op: cfg.Op, N: n, Workers: workers})
	if err != nil {
		return Result{}, err
	}
	s.SetRHS(func(x, y, z float64) float64 {
		return 3 * math.Pi * math.Pi *
			math.Sin(math.Pi*x) * math.Sin(math.Pi*y) * math.Sin(math.Pi*z)
	})
	elapsed := timer(func() { s.FMG(2) })
	return Result{Config: cfg, RuntimeS: elapsed, EnergyOK: false}, nil
}
