package hpgmg

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/multigrid"
	"repro/internal/sched"
)

func wisconsinPartition() sched.Config {
	// The paper's 4-node CloudLab environment.
	return sched.Config{NodeCount: 8, CoresPerNode: 16, Policy: sched.Backfill}
}

func TestRunThroughScheduler(t *testing.T) {
	runner := NewRunner(cluster.Wisconsin(), 1)
	var configs []Config
	for _, np := range []int{1, 8, 32} {
		for _, f := range []float64{1.2, 2.4} {
			configs = append(configs, Config{
				Op:         multigrid.Poisson1,
				GlobalSize: 8e6,
				NP:         np,
				FreqGHz:    f,
			})
		}
	}
	out, err := RunThroughScheduler(configs, runner, wisconsinPartition())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(configs) {
		t.Fatalf("%d results for %d jobs", len(out), len(configs))
	}
	for _, pr := range out {
		if pr.Accounting.State != "COMPLETED" {
			t.Fatalf("job %d state %s", pr.Accounting.JobID, pr.Accounting.State)
		}
		// Accounting elapsed must equal the benchmark's measured runtime.
		if math.Abs(pr.Accounting.ElapsedS-pr.RuntimeS) > 1e-9 {
			t.Fatalf("elapsed %g != runtime %g", pr.Accounting.ElapsedS, pr.RuntimeS)
		}
		if pr.Accounting.Meta["operator"] != "poisson1" {
			t.Fatalf("meta lost: %v", pr.Accounting.Meta)
		}
		if pr.Accounting.NP != pr.NP {
			t.Fatal("NP mismatch")
		}
	}
}

// The scheduler must overlap narrow jobs: total makespan below the serial
// sum of runtimes.
func TestPipelineOverlapsJobs(t *testing.T) {
	runner := NewRunner(cluster.Wisconsin(), 2)
	var configs []Config
	for i := 0; i < 8; i++ {
		configs = append(configs, Config{
			Op:         multigrid.Poisson2,
			GlobalSize: 64e6,
			NP:         16, // one node each; 8 nodes available
			FreqGHz:    2.4,
		})
	}
	out, err := RunThroughScheduler(configs, runner, wisconsinPartition())
	if err != nil {
		t.Fatal(err)
	}
	var serial, makespan float64
	for _, pr := range out {
		serial += pr.RuntimeS
		if pr.Accounting.EndS > makespan {
			makespan = pr.Accounting.EndS
		}
	}
	if makespan >= serial*0.5 {
		t.Fatalf("no overlap: makespan %g vs serial %g", makespan, serial)
	}
}

// Infeasible configurations (too much memory per node) must not produce
// results but must not break the pipeline either.
func TestPipelineDropsFailedJobs(t *testing.T) {
	runner := NewRunner(cluster.Wisconsin(), 3)
	configs := []Config{
		{Op: multigrid.Poisson1, GlobalSize: 8e6, NP: 16, FreqGHz: 2.4},
		// 1.07e9 dof on a single node needs ~51 GB — fine; make it
		// infeasible with an invalid frequency instead.
		{Op: multigrid.Poisson1, GlobalSize: 8e6, NP: 16, FreqGHz: 9.9},
	}
	out, err := RunThroughScheduler(configs, runner, wisconsinPartition())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("%d results, want 1 (one job infeasible)", len(out))
	}
}

func TestPipelineValidation(t *testing.T) {
	if _, err := RunThroughScheduler(nil, nil, wisconsinPartition()); err == nil {
		t.Fatal("expected nil-runner error")
	}
	runner := NewRunner(cluster.Wisconsin(), 4)
	// Oversized job is rejected at submission.
	configs := []Config{{Op: multigrid.Poisson1, GlobalSize: 1e6, NP: 1000, FreqGHz: 2.4}}
	if _, err := RunThroughScheduler(configs, runner, wisconsinPartition()); err == nil {
		t.Fatal("expected submission error for oversized job")
	}
}
