package hpgmg

import (
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/multigrid"
)

// The sweep grids mirror Table I of the paper.
var (
	// StandardDims are per-dimension grid sizes; cubed they span the
	// paper's Global Problem Size range 1.7e3 – 1.1e9.
	StandardDims = []int{12, 16, 20, 26, 34, 44, 58, 75, 97, 126, 164, 213, 277, 359, 467, 606, 787, 1023}

	// StandardNP are the process counts of Table I.
	StandardNP = []int{1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128}

	// StandardFreqs are the DVFS levels of Table I, in GHz.
	StandardFreqs = []float64{1.2, 1.5, 1.8, 2.1, 2.4}

	// StandardOperators are the three HPGMG-FE operators studied.
	StandardOperators = []multigrid.Operator{
		multigrid.Poisson1, multigrid.Poisson2, multigrid.Poisson2Affine,
	}
)

// Dataset sizes from Table I, reproduced exactly.
const (
	PerformanceJobs = 3246
	PowerJobs       = 640
)

// SweepConfigs enumerates the full factorial sweep:
// operators × sizes × NP × frequencies.
func SweepConfigs() []Config {
	var out []Config
	for _, op := range StandardOperators {
		for _, d := range StandardDims {
			for _, np := range StandardNP {
				for _, f := range StandardFreqs {
					out = append(out, Config{
						Op:         op,
						GlobalSize: int64(d) * int64(d) * int64(d),
						NP:         np,
						FreqGHz:    f,
					})
				}
			}
		}
	}
	return out
}

// GeneratePerformance regenerates the Performance dataset: the full
// factorial sweep plus repeated runs of a seeded-random subset of
// configurations ("up to 3 repeated experiments per combination", §V-A),
// trimmed to exactly PerformanceJobs results.
func GeneratePerformance(seed int64) ([]Result, error) {
	runner := NewRunner(cluster.Wisconsin(), seed)
	runner.Trace.PeriodS = 1
	configs := SweepConfigs()
	rng := rand.New(rand.NewSource(seed + 1))

	jobs := append([]Config(nil), configs...)
	// Add repeats of random combinations until the Table I count is hit.
	for len(jobs) < PerformanceJobs {
		jobs = append(jobs, configs[rng.Intn(len(configs))])
	}
	jobs = jobs[:PerformanceJobs]

	out := make([]Result, 0, len(jobs))
	for _, cfg := range jobs {
		res, err := runner.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("hpgmg: performance sweep: %w", err)
		}
		out = append(out, res)
	}
	return out, nil
}

// GeneratePower regenerates the Power dataset: a sweep over the larger
// problem sizes (jobs long enough for IPMI traces to be meaningful) with
// realistic trace dropout; jobs whose gappy traces fail the
// 10-samples-per-60-s rule are excluded exactly as in §V-A, and the
// survivors are trimmed to PowerJobs results.
func GeneratePower(seed int64) ([]Result, error) {
	runner := NewRunner(cluster.Wisconsin(), seed+7)
	runner.Trace = cluster.TraceConfig{PeriodS: 1, Dropout: 0.30, JitterW: 6}

	// Power collection ran on the bigger problems: the largest sizes in
	// the sweep, all operators, NP, and frequencies.
	dims := StandardDims[len(StandardDims)-6:]
	var configs []Config
	for _, op := range StandardOperators {
		for _, d := range dims {
			for _, np := range StandardNP {
				for _, f := range StandardFreqs {
					configs = append(configs, Config{
						Op:         op,
						GlobalSize: int64(d) * int64(d) * int64(d),
						NP:         np,
						FreqGHz:    f,
					})
				}
			}
		}
	}
	rng := rand.New(rand.NewSource(seed + 8))
	rng.Shuffle(len(configs), func(i, j int) { configs[i], configs[j] = configs[j], configs[i] })

	// Up to 3 passes over the sweep: repeated measurements of the same
	// combination are expected ("up to 3 repeated experiments", §V-A),
	// and they compensate for jobs lost to sparse traces.
	var out []Result
	for pass := 0; pass < 3 && len(out) < PowerJobs; pass++ {
		for _, cfg := range configs {
			if len(out) == PowerJobs {
				break
			}
			res, err := runner.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("hpgmg: power sweep: %w", err)
			}
			if !res.EnergyOK {
				continue // trace too sparse — excluded per §V-A
			}
			out = append(out, res)
		}
	}
	if len(out) < PowerJobs {
		return nil, fmt.Errorf("hpgmg: power sweep yielded only %d usable jobs, want %d", len(out), PowerJobs)
	}
	return out, nil
}
