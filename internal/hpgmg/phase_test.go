package hpgmg

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/multigrid"
)

func TestPhasePowerShape(t *testing.T) {
	f := phasePower(300, 100, 80) // 80 s job, full 300 W, idle 100 W
	// Cycle start: full load.
	if got := f(0); math.Abs(got-300) > 1e-9 {
		t.Fatalf("power at t=0 = %g, want 300", got)
	}
	// Mid-cycle (period = 10 s): dipped by 0.35·(300−100) = 70 W.
	if got := f(5); math.Abs(got-230) > 1e-9 {
		t.Fatalf("power at mid-dip = %g, want 230", got)
	}
	// Never below idle, never above full.
	for ts := 0.0; ts < 80; ts += 0.5 {
		v := f(ts)
		if v < 100-1e-9 || v > 300+1e-9 {
			t.Fatalf("power %g outside [idle, full] at t=%g", v, ts)
		}
	}
	// Short jobs clamp the period at 2 s rather than dipping faster.
	fShort := phasePower(300, 100, 1)
	if got := fShort(1); math.Abs(got-230) > 1e-9 { // mid of the 2 s cycle
		t.Fatalf("short-job mid-dip power %g", got)
	}
}

func TestPhasePowerDegenerate(t *testing.T) {
	// full below idle (can't happen physically, but stay safe): no dip.
	f := phasePower(100, 300, 10)
	if got := f(2.5); got != 100 {
		t.Fatalf("degenerate dip produced %g", got)
	}
}

// Traces of a real run must actually vary over time, and their integral
// must track the true mean power.
func TestTraceVariesAndIntegrates(t *testing.T) {
	r := NewRunner(cluster.Wisconsin(), 11)
	r.NoiseSigma = 0
	r.PowerSigma = 0
	r.Trace = cluster.TraceConfig{PeriodS: 1}
	r.CollectTrace = true
	// A long full-node job (~20 s, 16 busy cores) so the 1 Hz trace has
	// substance and the dynamic power swing is visible.
	res, err := r.Run(Config{Op: multigrid.Poisson2Affine, GlobalSize: 1023 * 1023 * 1023, NP: 16, FreqGHz: 2.4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.EnergyOK || len(res.Trace) < 10 {
		t.Fatalf("trace unusable: %d samples", len(res.Trace))
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range res.Trace {
		if s.Watts < lo {
			lo = s.Watts
		}
		if s.Watts > hi {
			hi = s.Watts
		}
	}
	if hi-lo < 10 {
		t.Fatalf("trace barely varies: [%g, %g]", lo, hi)
	}
	// Energy from the trace must sit between idle·t and full·t.
	p, _ := cluster.Place(16, 16)
	full := cluster.Wisconsin().JobPower(p, 2.4) * res.RuntimeS
	idle := cluster.Wisconsin().Power(0, 2.4) * res.RuntimeS
	if res.EnergyJ <= idle || res.EnergyJ >= full {
		t.Fatalf("energy %g outside (idle %g, full %g)", res.EnergyJ, idle, full)
	}
}
