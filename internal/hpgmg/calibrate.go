package hpgmg

import (
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/multigrid"
)

// CalibrationRow compares the analytic work model against a measured
// execution of the real multigrid solver for one problem size.
type CalibrationRow struct {
	N          int     // per-dimension grid size (2^k − 1)
	DOF        int64   // total unknowns
	PredictedS float64 // analytic model runtime (noise-free)
	MeasuredS  float64 // wall-clock of the real FMG solve
	Ratio      float64 // measured / predicted
}

// WallTimer measures fn with the wall clock; the timer is injected so
// tests can substitute a fake.
func WallTimer(fn func()) float64 {
	start := time.Now()
	fn()
	return time.Since(start).Seconds()
}

// Calibrate runs the real FMG solver for each per-dimension size in ns
// (each must be 2^k − 1) and compares against the analytic prediction for
// a single-node job at the machine's maximum frequency. The returned
// ratios show how faithfully the work model tracks real executions; a
// flat ratio across sizes means the model's *shape* is right, which is
// all the AL study needs.
func Calibrate(op multigrid.Operator, ns []int, timer func(func()) float64) ([]CalibrationRow, error) {
	if timer == nil {
		timer = WallTimer
	}
	spec := cluster.Wisconsin()
	m := ModelFor(op)
	workers := runtime.GOMAXPROCS(0)
	rows := make([]CalibrationRow, 0, len(ns))
	for _, n := range ns {
		size := int64(n) * int64(n) * int64(n)
		cfg := Config{Op: op, GlobalSize: size, NP: workers, FreqGHz: spec.MaxFreq()}
		p, err := cluster.Place(cfg.NP, spec.Cores())
		if err != nil {
			return nil, err
		}
		pred, err := spec.ExecTime(m.Work(cfg), p, cfg.FreqGHz)
		if err != nil {
			return nil, err
		}
		pred += m.SetupS + m.SetupPerNodeS*float64(p.Nodes)
		res, err := RunReal(cfg, workers, timer)
		if err != nil {
			return nil, err
		}
		rows = append(rows, CalibrationRow{
			N:          n,
			DOF:        size,
			PredictedS: pred,
			MeasuredS:  res.RuntimeS,
			Ratio:      res.RuntimeS / pred,
		})
	}
	return rows, nil
}
