package surrogate

import (
	"context"
	"math"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/al"
	"repro/internal/serve"
)

// recordCampaign runs one dataset-backed campaign through the real
// campaign service with persistence on, waits for it to finish, and
// returns the checkpoint directory holding its journal — the exact
// artifact surrogate training consumes in production.
func recordCampaign(t *testing.T, iterations int) string {
	t.Helper()
	dir := t.TempDir()
	mgr := serve.NewManager(serve.Config{CheckpointDir: dir})
	c, err := mgr.Create(serve.CampaignSpec{
		Name:   "recording",
		Source: "dataset",
		Dataset: &serve.DatasetSpec{
			Name: "synthetic", Seed: 11, N: 40, Noise: 0.05,
		},
		Seeds:      []int{0, 39},
		Strategy:   "variance-reduction",
		Iterations: iterations,
		Restarts:   1,
		Seed:       11,
	})
	if err != nil {
		t.Fatalf("create recording campaign: %v", err)
	}
	c.Wait()
	st, err := c.Status(false)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.State != serve.StateDone {
		t.Fatalf("recording campaign ended %s (err %q), want done", st.State, st.Error)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := mgr.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	return dir
}

// TestJournalRecordsInputs asserts the serve-side half of the training
// pipeline: every observation a campaign journals carries the measured
// input point.
func TestJournalRecordsInputs(t *testing.T) {
	dir := recordCampaign(t, 8)
	infos, skipped, err := serve.ReadJournalDir(dir)
	if err != nil {
		t.Fatalf("ReadJournalDir: %v", err)
	}
	if len(skipped) != 0 {
		t.Fatalf("journals skipped: %v", skipped)
	}
	if len(infos) != 1 {
		t.Fatalf("got %d journals, want 1", len(infos))
	}
	info := infos[0]
	if !info.Done {
		t.Fatalf("journal not marked done (error %q)", info.Error)
	}
	if len(info.Observations) == 0 {
		t.Fatal("journal has no observations")
	}
	for i, o := range info.Observations {
		if len(o.X) != 1 {
			t.Fatalf("observation %d has X=%v, want a recorded 1-D input", i, o.X)
		}
	}
}

// TestAccuracyContract is the documented error-threshold assertion (see
// doc.go): on a journal recorded from a live campaign, the default KNN
// surrogate must reproduce recorded responses exactly in-sample
// (RMSE ≤ 1e-9) and stay within 15% relative RMSE leave-one-out.
func TestAccuracyContract(t *testing.T) {
	dir := recordCampaign(t, 20)
	m, samples, err := FromJournalDir(dir, Config{})
	if err != nil {
		t.Fatalf("FromJournalDir: %v", err)
	}
	if m.Len() != len(samples) || m.Len() < 10 {
		t.Fatalf("trained on %d samples (returned %d), want a real training set", m.Len(), len(samples))
	}

	in := m.Eval(samples)
	if in.RMSE > 1e-9 {
		t.Errorf("in-sample RMSE %.3g exceeds the documented 1e-9 exactness bound", in.RMSE)
	}
	if in.CostRMSE > 1e-9 {
		t.Errorf("in-sample cost RMSE %.3g exceeds the documented 1e-9 exactness bound", in.CostRMSE)
	}

	loo := m.LOOEval()
	if loo.RelRMSE > 0.15 {
		t.Errorf("LOO relative RMSE %.4f exceeds the documented 0.15 threshold (RMSE %.4f over %d samples)",
			loo.RelRMSE, loo.RMSE, loo.N)
	}
	t.Logf("surrogate accuracy: in-sample RMSE %.3g, LOO rel RMSE %.4f (n=%d)", in.RMSE, loo.RelRMSE, loo.N)
}

func synthSamples(n int) []Sample {
	out := make([]Sample, n)
	for i := range out {
		x := 4 * float64(i) / float64(n-1)
		out[i] = Sample{X: []float64{x}, Y: math.Sin(2*x) + 0.5*x, Cost: 1 + x}
	}
	return out
}

// TestOLSKind exercises the low-rank alternative: the quadratic-feature
// OLS fit cannot be exact on a sinusoid, but must track the surface
// within a loose global bound and answer deterministically.
func TestOLSKind(t *testing.T) {
	samples := synthSamples(30)
	m, err := Fit(samples, Config{Kind: "ols"})
	if err != nil {
		t.Fatalf("Fit(ols): %v", err)
	}
	rep := m.Eval(samples)
	if rep.RelRMSE > 0.35 {
		t.Errorf("ols relative RMSE %.4f is unusably large", rep.RelRMSE)
	}
	y1, c1 := m.Predict([]float64{1.7})
	y2, c2 := m.Predict([]float64{1.7})
	if y1 != y2 || c1 != c2 {
		t.Errorf("ols prediction not deterministic: (%v,%v) vs (%v,%v)", y1, c1, y2, c2)
	}
}

// TestPredictDeterministic asserts two independent fits of the same
// training set agree bit-for-bit — the property seeded load replay
// rests on.
func TestPredictDeterministic(t *testing.T) {
	samples := synthSamples(25)
	m1, err := Fit(samples, Config{K: 4})
	if err != nil {
		t.Fatalf("fit 1: %v", err)
	}
	m2, err := Fit(samples, Config{K: 4})
	if err != nil {
		t.Fatalf("fit 2: %v", err)
	}
	for i := 0; i <= 100; i++ {
		x := []float64{4.4*float64(i)/100 - 0.2} // includes points outside the training box
		y1, c1 := m1.Predict(x)
		y2, c2 := m2.Predict(x)
		if math.Float64bits(y1) != math.Float64bits(y2) || math.Float64bits(c1) != math.Float64bits(c2) {
			t.Fatalf("x=%v: fits disagree: (%v,%v) vs (%v,%v)", x, y1, c1, y2, c2)
		}
	}
}

func TestGridAndBounds(t *testing.T) {
	samples := []Sample{
		{X: []float64{2}, Y: 1, Cost: 1},
		{X: []float64{0}, Y: 0, Cost: 1},
		{X: []float64{2}, Y: 1, Cost: 1}, // duplicate input
		{X: []float64{1}, Y: 0.5, Cost: 1},
	}
	m, err := Fit(samples, Config{})
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	grid := m.Grid()
	if len(grid) != 3 {
		t.Fatalf("grid has %d rows, want 3 (deduplicated)", len(grid))
	}
	for i := 1; i < len(grid); i++ {
		if !lexLess(grid[i-1], grid[i]) {
			t.Fatalf("grid not sorted: %v before %v", grid[i-1], grid[i])
		}
	}
	lo, hi := m.Bounds()
	if lo[0] != 0 || hi[0] != 2 {
		t.Fatalf("bounds [%v, %v], want [0, 2]", lo[0], hi[0])
	}
}

func TestFitRejectsBadSamples(t *testing.T) {
	cases := map[string][]Sample{
		"empty set":       nil,
		"nan coordinate":  {{X: []float64{math.NaN()}, Y: 1, Cost: 1}},
		"inf response":    {{X: []float64{1}, Y: math.Inf(1), Cost: 1}},
		"nan cost":        {{X: []float64{1}, Y: 1, Cost: math.NaN()}},
		"ragged dims":     {{X: []float64{1}, Y: 1, Cost: 1}, {X: []float64{1, 2}, Y: 1, Cost: 1}},
		"zero-dim sample": {{X: nil, Y: 1, Cost: 1}},
	}
	for name, samples := range cases {
		if _, err := Fit(samples, Config{}); err == nil {
			t.Errorf("%s: Fit accepted invalid training set", name)
		}
	}
	if _, err := Fit(synthSamples(5), Config{Kind: "spline"}); err == nil {
		t.Error("unknown kind accepted")
	}
}

// TestSamplesFromJournalSkips checks the filter: entries without X and
// entries with non-finite responses are dropped, counted, and the rest
// survive.
func TestSamplesFromJournalSkips(t *testing.T) {
	info := &serve.JournalInfo{
		ID: "c0001",
		Observations: []serve.Observation{
			{X: []float64{1}, Y: 2, Cost: 3},
			{Y: 1, Cost: 1}, // no X (pre-recording journal)
			{X: []float64{2}, Y: al.JSONFloat(math.NaN()), Cost: 1},  // failed measurement
			{X: []float64{3}, Y: 1, Cost: al.JSONFloat(math.Inf(1))}, // absurd cost
			{X: []float64{4}, Y: 5, Cost: 6},
		},
	}
	samples, skipped := SamplesFromJournal(info)
	if len(samples) != 2 || skipped != 3 {
		t.Fatalf("got %d samples, %d skipped; want 2 and 3", len(samples), skipped)
	}
	if samples[0].X[0] != 1 || samples[1].Y != 5 {
		t.Fatalf("wrong samples survived: %+v", samples)
	}
}

// TestFromJournalDirEmpty asserts the error path a misconfigured load
// generator hits: a directory with no usable journals.
func TestFromJournalDirEmpty(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := FromJournalDir(dir, Config{}); err == nil {
		t.Fatal("empty dir accepted")
	}
	if _, _, err := FromJournalDir(filepath.Join(dir, "missing"), Config{}); err == nil {
		t.Fatal("missing dir accepted")
	}
}
