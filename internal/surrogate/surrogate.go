package surrogate

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/stats"
)

var (
	trainSamples  = obs.C("surrogate.train.samples")
	predictCount  = obs.C("surrogate.predict.count")
	fitLOORelRMSE = obs.G("surrogate.fit.loo_rel_rmse")
)

// Sample is one recorded oracle interaction: the measured input point
// and the response/cost the real backend returned.
type Sample struct {
	X    []float64
	Y    float64
	Cost float64
}

// Config selects and parameterizes a surrogate fit. The zero value is a
// valid KNN configuration.
type Config struct {
	// Kind picks the model: "knn" (default) or "ols".
	Kind string
	// K is the neighbor count for "knn" (default 3, capped at the
	// training-set size).
	K int
}

// ErrNoSamples reports a fit attempted on an empty training set.
var ErrNoSamples = errors.New("surrogate: no training samples")

// Model is a fitted surrogate oracle: Predict returns the modeled
// (response, cost) for an input point at in-memory cost, never touching
// the backend the training campaign measured. Models are immutable
// after Fit and safe for concurrent use.
type Model struct {
	kind    string
	k       int
	dims    int
	samples []Sample  // defensive copies, training order preserved
	lo, hi  []float64 // per-dimension training bounds (normalization)

	yFit, costFit *stats.OLS // quadratic-feature fits, kind "ols" only
}

// Fit trains a surrogate on the samples. Every sample must have the
// same dimensionality and finite coordinates; samples with non-finite
// responses or costs are rejected (they encode failed measurements —
// callers decide separately whether to replay failures).
func Fit(samples []Sample, cfg Config) (*Model, error) {
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	if cfg.Kind == "" {
		cfg.Kind = "knn"
	}
	if cfg.K <= 0 {
		cfg.K = 3
	}
	dims := len(samples[0].X)
	if dims == 0 {
		return nil, fmt.Errorf("surrogate: empty input point in sample 0")
	}
	m := &Model{
		kind:    cfg.Kind,
		k:       cfg.K,
		dims:    dims,
		samples: make([]Sample, 0, len(samples)),
		lo:      make([]float64, dims),
		hi:      make([]float64, dims),
	}
	for d := 0; d < dims; d++ {
		m.lo[d] = math.Inf(1)
		m.hi[d] = math.Inf(-1)
	}
	for i, s := range samples {
		if len(s.X) != dims {
			return nil, fmt.Errorf("surrogate: sample %d has %d dims, want %d", i, len(s.X), dims)
		}
		for _, v := range s.X {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("surrogate: sample %d has a non-finite coordinate", i)
			}
		}
		if math.IsNaN(s.Y) || math.IsInf(s.Y, 0) || math.IsNaN(s.Cost) || math.IsInf(s.Cost, 0) {
			return nil, fmt.Errorf("surrogate: sample %d has a non-finite response or cost", i)
		}
		cp := Sample{X: append([]float64(nil), s.X...), Y: s.Y, Cost: s.Cost}
		m.samples = append(m.samples, cp)
		for d, v := range s.X {
			if v < m.lo[d] {
				m.lo[d] = v
			}
			if v > m.hi[d] {
				m.hi[d] = v
			}
		}
	}
	if m.k > len(m.samples) {
		m.k = len(m.samples)
	}
	switch m.kind {
	case "knn":
		// Lazy model: prediction walks the training set.
	case "ols":
		feats := mat.NewFromRows(m.featureRows())
		ys := make([]float64, len(m.samples))
		costs := make([]float64, len(m.samples))
		for i, s := range m.samples {
			ys[i] = s.Y
			costs[i] = s.Cost
		}
		var err error
		if m.yFit, err = stats.FitOLS(feats, ys); err != nil {
			return nil, fmt.Errorf("surrogate: ols response fit: %w", err)
		}
		if m.costFit, err = stats.FitOLS(feats, costs); err != nil {
			return nil, fmt.Errorf("surrogate: ols cost fit: %w", err)
		}
	default:
		return nil, fmt.Errorf("surrogate: unknown kind %q (want knn or ols)", cfg.Kind)
	}
	trainSamples.Add(int64(len(m.samples)))
	rep := m.LOOEval()
	fitLOORelRMSE.Set(rep.RelRMSE)
	obs.Emit("surrogate.fit", map[string]any{
		"kind": m.kind, "samples": len(m.samples), "dims": dims,
		"loo_rel_rmse": rep.RelRMSE,
	})
	return m, nil
}

// Kind reports the fitted model kind.
func (m *Model) Kind() string { return m.kind }

// Dims reports the input dimensionality.
func (m *Model) Dims() int { return m.dims }

// Len reports the training-set size.
func (m *Model) Len() int { return len(m.samples) }

// Bounds returns copies of the per-dimension training range — the box
// a load generator should sample prediction points from so replayed
// traffic stays on the recorded response surface.
func (m *Model) Bounds() (lo, hi []float64) {
	return append([]float64(nil), m.lo...), append([]float64(nil), m.hi...)
}

// Grid returns the deduplicated training inputs in a deterministic
// (lexicographic) order — the natural candidate grid for replay
// campaigns, since every row has a surrogate response the model is
// exact (knn) or least-squares-faithful (ols) at.
func (m *Model) Grid() [][]float64 {
	seen := make(map[string]bool, len(m.samples))
	out := make([][]float64, 0, len(m.samples))
	for _, s := range m.samples {
		k := pointKey(s.X)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, append([]float64(nil), s.X...))
	}
	sort.Slice(out, func(i, j int) bool { return lexLess(out[i], out[j]) })
	return out
}

// Predict evaluates the surrogate at x. Inputs outside the training
// bounds are allowed (nearest neighbors, or the global fit, still
// answer); dimensionality must match the training set.
func (m *Model) Predict(x []float64) (y, cost float64) {
	if len(x) != m.dims {
		panic(fmt.Sprintf("surrogate: Predict dim %d, model has %d", len(x), m.dims))
	}
	predictCount.Inc()
	return m.predictExcluding(x, -1)
}

// predictExcluding is Predict with one training index masked out — the
// leave-one-out machinery. skip < 0 masks nothing.
func (m *Model) predictExcluding(x []float64, skip int) (y, cost float64) {
	if m.kind == "ols" {
		f := m.features(x)
		return m.yFit.Predict(f), m.costFit.Predict(f)
	}
	type cand struct {
		d2  float64
		idx int
	}
	cands := make([]cand, 0, len(m.samples))
	for i, s := range m.samples {
		if i == skip {
			continue
		}
		d2 := m.dist2(x, s.X)
		if d2 == 0 {
			// Exact training point: reproduce the recorded response.
			return s.Y, s.Cost
		}
		cands = append(cands, cand{d2: d2, idx: i})
	}
	if len(cands) == 0 {
		return math.NaN(), math.NaN()
	}
	// Deterministic neighbor order: distance, then training index.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d2 != cands[j].d2 {
			return cands[i].d2 < cands[j].d2
		}
		return cands[i].idx < cands[j].idx
	})
	k := m.k
	if k > len(cands) {
		k = len(cands)
	}
	var wsum, ysum, csum float64
	for _, c := range cands[:k] {
		w := 1 / c.d2 // inverse-squared-distance weights
		wsum += w
		ysum += w * m.samples[c.idx].Y
		csum += w * m.samples[c.idx].Cost
	}
	return ysum / wsum, csum / wsum
}

// dist2 is the squared euclidean distance after normalizing each
// dimension to its training range (degenerate dimensions contribute
// raw differences, so distinct points never collapse to distance 0).
func (m *Model) dist2(a, b []float64) float64 {
	var s float64
	for d := 0; d < m.dims; d++ {
		diff := a[d] - b[d]
		if span := m.hi[d] - m.lo[d]; span > 0 {
			diff /= span
		}
		s += diff * diff
	}
	return s
}

// features expands x into the quadratic basis (xᵢ, xᵢxⱼ for i ≤ j) the
// "ols" kind fits on (FitOLS adds the intercept itself).
func (m *Model) features(x []float64) []float64 {
	out := make([]float64, 0, m.dims+m.dims*(m.dims+1)/2)
	out = append(out, x...)
	for i := 0; i < m.dims; i++ {
		for j := i; j < m.dims; j++ {
			out = append(out, x[i]*x[j])
		}
	}
	return out
}

func (m *Model) featureRows() [][]float64 {
	rows := make([][]float64, len(m.samples))
	for i, s := range m.samples {
		rows[i] = m.features(s.X)
	}
	return rows
}

// Report summarizes surrogate prediction error against a sample set.
// RelRMSE is RMSE divided by the response spread (max−min) of the
// evaluated samples: the scale-free figure the accuracy contract in the
// package docs is stated in. Cost errors are reported separately so a
// cost-blind fit cannot hide behind an accurate response.
type Report struct {
	N        int
	RMSE     float64
	RelRMSE  float64
	MaxAbs   float64
	CostRMSE float64
}

// Eval measures prediction error against samples (typically the
// training set itself, or a held-out recording).
func (m *Model) Eval(samples []Sample) Report {
	preds := make([][2]float64, len(samples))
	for i, s := range samples {
		y, c := m.predictExcluding(s.X, -1)
		preds[i] = [2]float64{y, c}
	}
	return m.report(samples, preds)
}

// LOOEval measures leave-one-out error over the training set: each
// training point is predicted with itself excluded. For "ols" (a global
// fit) this equals Eval on the training set.
func (m *Model) LOOEval() Report {
	preds := make([][2]float64, len(m.samples))
	for i, s := range m.samples {
		y, c := m.predictExcluding(s.X, i)
		preds[i] = [2]float64{y, c}
	}
	return m.report(m.samples, preds)
}

func (m *Model) report(samples []Sample, preds [][2]float64) Report {
	rep := Report{N: len(samples)}
	if len(samples) == 0 {
		return rep
	}
	var sse, sseCost float64
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for i, s := range samples {
		dy := preds[i][0] - s.Y
		dc := preds[i][1] - s.Cost
		sse += dy * dy
		sseCost += dc * dc
		if a := math.Abs(dy); a > rep.MaxAbs {
			rep.MaxAbs = a
		}
		if s.Y < yMin {
			yMin = s.Y
		}
		if s.Y > yMax {
			yMax = s.Y
		}
	}
	rep.RMSE = math.Sqrt(sse / float64(len(samples)))
	rep.CostRMSE = math.Sqrt(sseCost / float64(len(samples)))
	if spread := yMax - yMin; spread > 0 {
		rep.RelRMSE = rep.RMSE / spread
	} else {
		rep.RelRMSE = rep.RMSE
	}
	return rep
}

func pointKey(x []float64) string {
	b := make([]byte, 0, 8*len(x))
	for _, v := range x {
		bits := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(bits>>s))
		}
	}
	return string(b)
}

func lexLess(a, b []float64) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
