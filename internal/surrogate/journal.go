package surrogate

import (
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/serve"
)

// SamplesFromJournal extracts the (x, y, cost) training pairs from one
// loaded campaign journal. Observations without a recorded X (journals
// written before input recording existed, see serve.Observation) and
// observations with non-finite responses (failed measurements) are
// skipped — the returned count of skipped entries lets callers decide
// whether the recording is usable.
func SamplesFromJournal(info *serve.JournalInfo) (samples []Sample, skipped int) {
	for _, o := range info.Observations {
		y, cost := float64(o.Y), float64(o.Cost)
		if len(o.X) == 0 ||
			math.IsNaN(y) || math.IsInf(y, 0) ||
			math.IsNaN(cost) || math.IsInf(cost, 0) {
			skipped++
			continue
		}
		samples = append(samples, Sample{
			X:    append([]float64(nil), o.X...),
			Y:    y,
			Cost: cost,
		})
	}
	return samples, skipped
}

// FromJournalDir trains a surrogate from every campaign journal in dir
// (a Manager's CheckpointDir layout). Journals that fail to load, and
// observations without usable (x, y, cost) triples, are skipped with an
// obs event; mixing journals of different input dimensionality is an
// error. Returns the model plus the pooled training set so callers can
// run their own Eval.
func FromJournalDir(dir string, cfg Config) (*Model, []Sample, error) {
	infos, skippedFiles, err := serve.ReadJournalDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, s := range skippedFiles {
		obs.Emit("surrogate.journal.skipped", map[string]any{"reason": s})
	}
	var samples []Sample
	for _, info := range infos {
		got, skipped := SamplesFromJournal(info)
		if skipped > 0 {
			obs.Emit("surrogate.samples.skipped", map[string]any{
				"campaign": info.ID, "skipped": skipped,
			})
		}
		samples = append(samples, got...)
	}
	if len(samples) == 0 {
		return nil, nil, fmt.Errorf("%w: no usable (x, y, cost) observations under %s (did the recording server write X? %d journal(s) read, %d skipped)",
			ErrNoSamples, dir, len(infos), len(skippedFiles))
	}
	m, err := Fit(samples, cfg)
	if err != nil {
		return nil, nil, err
	}
	return m, samples, nil
}
