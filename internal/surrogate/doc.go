// Package surrogate trains cheap oracle models from recorded campaign
// journals so load replay never touches a real measurement backend.
//
// The idea follows "Efficient Benchmarking of Algorithm Configuration
// Procedures via Model-Based Surrogates" (Eggensperger et al., see
// PAPERS.md): once a campaign has run against the expensive oracle
// (HPGMG, a simulated cluster, a lab machine), its journal is a free
// (x, y, cost) training set, and a model fitted to it can stand in for
// the oracle at microsecond cost. cmd/alload uses these surrogates to
// replay production-shaped traffic — tens of thousands of requests —
// against a live alserve with zero backend evaluations.
//
// # Models
//
// Two fits are available behind the same Model type:
//
//   - "knn" (default): inverse-distance-weighted k-nearest-neighbor
//     over inputs normalized to the per-dimension training range. Exact
//     at training points (distance zero short-circuits to the recorded
//     response), smooth between them, and immune to fitting failures.
//   - "ols": a low-rank linear fit on quadratic features (1, xᵢ, xᵢxⱼ)
//     via internal/stats.FitOLS — a global low-rank view of the
//     response surface, cheaper to evaluate at high dimension and
//     smoother under extrapolation, at the price of in-sample bias.
//
// Both are deterministic: equal training sets and configs produce
// models whose predictions agree bit-for-bit, which is what makes a
// seeded load replay reproducible.
//
// # Accuracy contract
//
// The surrogate exists to shape load, not to win benchmarks, but it
// must stay faithful to the recorded campaign or replayed campaigns
// drift into unrealistic regions. The documented thresholds, asserted
// by this package's unit tests against journals recorded from a live
// internal/serve campaign, are:
//
//   - "knn" in-sample RMSE ≤ 1e-9 (training points reproduce the
//     recorded responses exactly), and
//   - "knn" leave-one-out relative RMSE ≤ 0.15 (15% of the recorded
//     response spread) on the reference synthetic campaign.
//
// Eval and LOOEval compute both figures for any sample set, so callers
// can enforce their own bars on other recordings; cmd/alload prints
// them into its SLO report.
//
// # Metrics
//
// surrogate.train.samples counts samples accepted into fits,
// surrogate.predict.count counts oracle evaluations served, and the
// surrogate.fit.loo_rel_rmse gauge records the leave-one-out relative
// RMSE of the most recent fit (see OBSERVABILITY.md).
package surrogate
