package sched

import (
	"math"
	"testing"
)

func fixed(d float64) func() float64 { return func() float64 { return d } }

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{NodeCount: 0, CoresPerNode: 16}); err == nil {
		t.Fatal("expected error")
	}
	s, err := New(Config{NodeCount: 4, CoresPerNode: 16})
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalCores() != 64 {
		t.Fatalf("TotalCores = %d", s.TotalCores())
	}
}

func TestSubmitValidation(t *testing.T) {
	s, _ := New(Config{NodeCount: 1, CoresPerNode: 16})
	if _, err := s.Submit(Job{NP: 4}); err == nil {
		t.Fatal("expected error without Run")
	}
	if _, err := s.Submit(Job{NP: 0, Run: fixed(1)}); err == nil {
		t.Fatal("expected error for zero NP")
	}
	if _, err := s.Submit(Job{NP: 17, Run: fixed(1)}); err == nil {
		t.Fatal("expected error for oversized job")
	}
	id, err := s.Submit(Job{NP: 4, Run: fixed(1)})
	if err != nil || id != 1 {
		t.Fatalf("Submit = %d, %v", id, err)
	}
	id2, _ := s.Submit(Job{NP: 4, Run: fixed(1)})
	if id2 != 2 {
		t.Fatalf("second ID = %d", id2)
	}
}

func TestSingleJob(t *testing.T) {
	s, _ := New(Config{NodeCount: 1, CoresPerNode: 16})
	if _, err := s.Submit(Job{Name: "a", NP: 8, Run: fixed(10), Meta: map[string]string{"op": "poisson1"}}); err != nil {
		t.Fatal(err)
	}
	recs := s.Drain()
	if len(recs) != 1 {
		t.Fatalf("%d records", len(recs))
	}
	r := recs[0]
	if r.ElapsedS != 10 || r.StartS != 0 || r.EndS != 10 || r.WaitS != 0 {
		t.Fatalf("record = %+v", r)
	}
	if r.State != "COMPLETED" || r.Meta["op"] != "poisson1" || r.Nodes != 1 {
		t.Fatalf("record = %+v", r)
	}
}

func TestParallelJobsShareCluster(t *testing.T) {
	// Two 8-core jobs fit a 16-core node simultaneously.
	s, _ := New(Config{NodeCount: 1, CoresPerNode: 16})
	s.Submit(Job{NP: 8, Run: fixed(10)})
	s.Submit(Job{NP: 8, Run: fixed(10)})
	recs := s.Drain()
	for _, r := range recs {
		if r.StartS != 0 {
			t.Fatalf("job should start immediately: %+v", r)
		}
	}
}

func TestFIFOQueuesWhenFull(t *testing.T) {
	s, _ := New(Config{NodeCount: 1, CoresPerNode: 16})
	s.Submit(Job{NP: 16, Run: fixed(10)})
	s.Submit(Job{NP: 16, Run: fixed(5)})
	recs := s.Drain()
	if len(recs) != 2 {
		t.Fatalf("%d records", len(recs))
	}
	var second Record
	for _, r := range recs {
		if r.JobID == 2 {
			second = r
		}
	}
	if second.StartS != 10 || second.WaitS != 10 {
		t.Fatalf("second job: %+v", second)
	}
}

func TestNodesComputed(t *testing.T) {
	s, _ := New(Config{NodeCount: 4, CoresPerNode: 16})
	s.Submit(Job{NP: 48, Run: fixed(1)})
	recs := s.Drain()
	if recs[0].Nodes != 3 {
		t.Fatalf("Nodes = %d, want 3", recs[0].Nodes)
	}
}

func TestBackfillLetsSmallJobJumpAhead(t *testing.T) {
	// Running: 8 cores for 100s. Head: needs 16 (blocked until 100).
	// Small job: 8 cores, estimate 50 ≤ reservation → backfills at t=0.
	s, _ := New(Config{NodeCount: 1, CoresPerNode: 16, Policy: Backfill})
	s.Submit(Job{Name: "running", NP: 8, Run: fixed(100), EstimateS: 100})
	s.Submit(Job{Name: "head", NP: 16, Run: fixed(10), EstimateS: 10})
	s.Submit(Job{Name: "small", NP: 8, Run: fixed(50), EstimateS: 50})
	recs := s.Drain()
	byName := map[string]Record{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if byName["small"].StartS != 0 {
		t.Fatalf("small should backfill at 0, got %g", byName["small"].StartS)
	}
	if byName["head"].StartS != 100 {
		t.Fatalf("head should start at 100, got %g", byName["head"].StartS)
	}
}

func TestBackfillDoesNotDelayHead(t *testing.T) {
	// Small job estimate exceeds the head's reservation → must NOT
	// backfill under EASY.
	s, _ := New(Config{NodeCount: 1, CoresPerNode: 16, Policy: Backfill})
	s.Submit(Job{Name: "running", NP: 8, Run: fixed(100), EstimateS: 100})
	s.Submit(Job{Name: "head", NP: 16, Run: fixed(10), EstimateS: 10})
	s.Submit(Job{Name: "big-est", NP: 8, Run: fixed(150), EstimateS: 150})
	recs := s.Drain()
	byName := map[string]Record{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if byName["big-est"].StartS == 0 {
		t.Fatal("job with estimate past reservation must not backfill")
	}
	if byName["head"].StartS != 100 {
		t.Fatalf("head delayed to %g", byName["head"].StartS)
	}
}

func TestFIFONoBackfill(t *testing.T) {
	s, _ := New(Config{NodeCount: 1, CoresPerNode: 16, Policy: FIFO})
	s.Submit(Job{Name: "running", NP: 8, Run: fixed(100)})
	s.Submit(Job{Name: "head", NP: 16, Run: fixed(10)})
	s.Submit(Job{Name: "small", NP: 8, Run: fixed(5), EstimateS: 5})
	recs := s.Drain()
	byName := map[string]Record{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if byName["small"].StartS == 0 {
		t.Fatal("FIFO must not backfill")
	}
}

func TestStaggeredSubmitTimes(t *testing.T) {
	s, _ := New(Config{NodeCount: 1, CoresPerNode: 16})
	s.Submit(Job{Name: "late", NP: 4, SubmitS: 50, Run: fixed(10)})
	s.Submit(Job{Name: "early", NP: 4, SubmitS: 0, Run: fixed(10)})
	recs := s.Drain()
	byName := map[string]Record{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if byName["early"].StartS != 0 {
		t.Fatalf("early start = %g", byName["early"].StartS)
	}
	if byName["late"].StartS != 50 {
		t.Fatalf("late start = %g, want 50 (at submit)", byName["late"].StartS)
	}
}

func TestSweepThroughput(t *testing.T) {
	// A batch of 100 single-core 1-second jobs on 64 cores must finish
	// in ceil(100/64) seconds of simulated time.
	s, _ := New(Config{NodeCount: 4, CoresPerNode: 16})
	for i := 0; i < 100; i++ {
		s.Submit(Job{NP: 1, Run: fixed(1)})
	}
	recs := s.Drain()
	if len(recs) != 100 {
		t.Fatalf("%d records", len(recs))
	}
	var makespan float64
	for _, r := range recs {
		if r.EndS > makespan {
			makespan = r.EndS
		}
	}
	if math.Abs(makespan-2) > 1e-9 {
		t.Fatalf("makespan = %g, want 2", makespan)
	}
}

func TestWalltimeTimeout(t *testing.T) {
	s, _ := New(Config{NodeCount: 1, CoresPerNode: 16})
	s.Submit(Job{Name: "long", NP: 4, Run: fixed(100), WalltimeS: 30})
	s.Submit(Job{Name: "ok", NP: 4, Run: fixed(10), WalltimeS: 30})
	recs := s.Drain()
	byName := map[string]Record{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if byName["long"].State != "TIMEOUT" || byName["long"].ElapsedS != 30 {
		t.Fatalf("long job: %+v", byName["long"])
	}
	if byName["ok"].State != "COMPLETED" || byName["ok"].ElapsedS != 10 {
		t.Fatalf("ok job: %+v", byName["ok"])
	}
}

// A timed-out wide job frees its cores at the walltime, letting the queue
// advance.
func TestTimeoutFreesCluster(t *testing.T) {
	s, _ := New(Config{NodeCount: 1, CoresPerNode: 16})
	s.Submit(Job{Name: "hog", NP: 16, Run: fixed(1e6), WalltimeS: 50})
	s.Submit(Job{Name: "next", NP: 16, Run: fixed(5)})
	recs := s.Drain()
	for _, r := range recs {
		if r.Name == "next" && r.StartS != 50 {
			t.Fatalf("next started at %g, want 50", r.StartS)
		}
	}
}

func TestDrainTwiceIsEmpty(t *testing.T) {
	s, _ := New(Config{NodeCount: 1, CoresPerNode: 16})
	s.Submit(Job{NP: 1, Run: fixed(1)})
	if n := len(s.Drain()); n != 1 {
		t.Fatalf("first drain %d", n)
	}
	if n := len(s.Drain()); n != 0 {
		t.Fatalf("second drain %d, want 0", n)
	}
}
