package sched

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/obs"
)

// Job lifecycle metrics (see OBSERVABILITY.md). Times here are simulated
// seconds, so wait/elapsed histograms use value buckets, not the
// wall-clock timer buckets.
var (
	jobsSubmitted = obs.C("sched.jobs.submitted")
	jobsCompleted = obs.C("sched.jobs.completed")
	jobsTimeout   = obs.C("sched.jobs.timeout")
	jobsFailed    = obs.C("sched.jobs.failed")
	jobsNodeFail  = obs.C("sched.jobs.node_fail")
	jobsRequeued  = obs.C("sched.jobs.requeued")
	jobWait       = obs.H("sched.job.wait", 0, 1, 10, 60, 600, 3600, 36000)
	jobElapsed    = obs.H("sched.job.elapsed", 1, 10, 60, 600, 3600, 36000)
	makespan      = obs.G("sched.makespan")
)

// Accounting states, mirroring SLURM's sacct vocabulary.
const (
	StateCompleted = "COMPLETED"
	StateTimeout   = "TIMEOUT"
	StateFailed    = "FAILED"
	StateNodeFail  = "NODE_FAIL"
)

// Default requeue backoff policy: min(base·2^(retry−1), cap) seconds
// between a failed attempt and its resubmission.
const (
	DefaultBackoffBaseS = 30
	DefaultBackoffCapS  = 3600
)

// Policy selects the queueing discipline.
type Policy int

// Queueing disciplines.
const (
	FIFO Policy = iota
	// Backfill is EASY backfill: later jobs may start early if, by
	// their walltime estimate, they cannot delay the queue head's
	// reservation.
	Backfill
)

// Job is one batch submission.
type Job struct {
	ID      int
	Name    string
	NP      int     // cores requested
	SubmitS float64 // submit time, seconds since epoch
	// EstimateS is the walltime estimate used for backfill reservations.
	EstimateS float64
	// WalltimeS, when positive, is a hard limit: jobs running longer are
	// killed with state TIMEOUT, as SLURM does.
	WalltimeS float64
	// Run produces the job's actual runtime in seconds when it starts.
	// It is called once per execution attempt. Must be non-nil.
	Run func() float64
	// MaxRetries is the job's requeue budget: a FAILED or NODE_FAIL
	// attempt is resubmitted (after backoff) up to this many times, each
	// attempt leaving its own accounting record like sacct's requeue
	// rows. TIMEOUT kills are final and never requeued.
	MaxRetries int
	// Meta carries arbitrary job parameters into the accounting record.
	Meta map[string]string
}

// Record is the accounting entry for a completed job (the simulated
// `sacct` row the dataset layer consumes).
type Record struct {
	JobID    int
	Name     string
	NP       int
	Nodes    int
	SubmitS  float64
	StartS   float64
	EndS     float64
	ElapsedS float64
	WaitS    float64
	State    string
	// Attempt is the 0-based execution attempt this record accounts for;
	// a requeued job leaves one record per attempt.
	Attempt int
	Meta    map[string]string
}

// Config sizes the simulated cluster partition and wires its failure
// model.
type Config struct {
	NodeCount    int
	CoresPerNode int
	Policy       Policy

	// FailureFn, when non-nil, is consulted once per execution attempt
	// with the job and its 0-based attempt number. Returning StateFailed
	// or StateNodeFail fails the attempt after fraction ∈ (0, 1] of its
	// runtime (fraction outside that range means the full runtime); any
	// other state string leaves the attempt healthy. Wire a fault
	// injector in with FaultHooks.
	FailureFn func(j Job, attempt int) (state string, fraction float64)

	// SlowdownFn, when non-nil, scales an attempt's runtime — the
	// straggler model. Factors ≤ 1 leave the runtime unchanged.
	SlowdownFn func(j Job, attempt int) float64

	// BackoffBaseS and BackoffCapS define the requeue delay after retry
	// r (1-based): min(BackoffBaseS·2^(r−1), BackoffCapS) simulated
	// seconds. Zero values take the package defaults.
	BackoffBaseS float64
	BackoffCapS  float64
}

// backoff returns the requeue delay before retry r (1-based).
func (c Config) backoff(r int) float64 {
	base, cap := c.BackoffBaseS, c.BackoffCapS
	if base <= 0 {
		base = DefaultBackoffBaseS
	}
	if cap <= 0 {
		cap = DefaultBackoffCapS
	}
	d := base
	for i := 1; i < r; i++ {
		d *= 2
		if d >= cap {
			return cap
		}
	}
	return math.Min(d, cap)
}

// Scheduler queues and executes jobs against the simulated partition.
type Scheduler struct {
	cfg     Config
	pending []Job
	nextID  int
}

// New validates the partition shape and returns an empty scheduler.
func New(cfg Config) (*Scheduler, error) {
	if cfg.NodeCount <= 0 || cfg.CoresPerNode <= 0 {
		return nil, fmt.Errorf("sched: invalid partition %d nodes x %d cores", cfg.NodeCount, cfg.CoresPerNode)
	}
	return &Scheduler{cfg: cfg, nextID: 1}, nil
}

// TotalCores returns the partition capacity.
func (s *Scheduler) TotalCores() int { return s.cfg.NodeCount * s.cfg.CoresPerNode }

// Submit enqueues a job, assigning an ID when the caller left it zero.
// Jobs wider than the partition are rejected.
func (s *Scheduler) Submit(j Job) (int, error) {
	if j.Run == nil {
		return 0, errors.New("sched: job has no Run function")
	}
	if j.NP <= 0 {
		return 0, fmt.Errorf("sched: job %q requests %d cores", j.Name, j.NP)
	}
	if j.NP > s.TotalCores() {
		return 0, fmt.Errorf("sched: job %q requests %d cores, partition has %d",
			j.Name, j.NP, s.TotalCores())
	}
	if j.ID == 0 {
		j.ID = s.nextID
	}
	if j.ID >= s.nextID {
		s.nextID = j.ID + 1
	}
	if j.EstimateS <= 0 {
		j.EstimateS = 3600
	}
	s.pending = append(s.pending, j)
	jobsSubmitted.Inc()
	obs.Emit("sched.job.submit", map[string]any{
		"id": j.ID, "name": j.Name, "np": j.NP, "submit_s": j.SubmitS,
	})
	return j.ID, nil
}

// running tracks one executing job attempt.
type running struct {
	job     Job
	startS  float64
	endS    float64
	cores   int
	nodes   int
	state   string
	attempt int
}

// Drain runs the discrete-event simulation until every submitted job has
// reached a terminal state, returning accounting records in completion
// order. A FAILED or NODE_FAIL attempt with retry budget left is
// resubmitted at the back of the queue after its backoff delay; every
// attempt leaves its own record, so a requeued job appears several times
// (distinguished by Record.Attempt), like sacct's requeue rows.
func (s *Scheduler) Drain() []Record {
	queue := append([]Job(nil), s.pending...)
	s.pending = nil
	sort.SliceStable(queue, func(i, j int) bool { return queue[i].SubmitS < queue[j].SubmitS })

	freeCores := s.TotalCores()
	var active []running
	var records []Record
	attempts := map[int]int{} // job ID → 0-based attempt about to run
	now := 0.0
	if len(queue) > 0 {
		now = queue[0].SubmitS
	}

	nodesFor := func(np int) int {
		return (np + s.cfg.CoresPerNode - 1) / s.cfg.CoresPerNode
	}

	start := func(idx int) {
		j := queue[idx]
		queue = append(queue[:idx], queue[idx+1:]...)
		attempt := attempts[j.ID]
		elapsed := j.Run()
		if elapsed < 0 {
			elapsed = 0
		}
		if s.cfg.SlowdownFn != nil {
			if f := s.cfg.SlowdownFn(j, attempt); f > 1 {
				elapsed *= f
			}
		}
		state := StateCompleted
		if s.cfg.FailureFn != nil {
			if fs, frac := s.cfg.FailureFn(j, attempt); fs == StateFailed || fs == StateNodeFail {
				state = fs
				if frac > 0 && frac <= 1 {
					elapsed *= frac
				}
			}
		}
		// The walltime kill applies to faulty attempts too: a straggler
		// (or a crash that somehow outlives the limit) is killed first.
		if j.WalltimeS > 0 && elapsed > j.WalltimeS {
			elapsed = j.WalltimeS
			state = StateTimeout
		}
		freeCores -= j.NP
		active = append(active, running{
			job:     j,
			startS:  now,
			endS:    now + elapsed,
			cores:   j.NP,
			nodes:   nodesFor(j.NP),
			state:   state,
			attempt: attempt,
		})
	}

	for len(queue) > 0 || len(active) > 0 {
		// Start every job the policy admits at the current instant.
		progressed := true
		for progressed {
			progressed = false
			// Head-of-line first (FIFO order among arrived jobs).
			arrived := func(i int) bool { return queue[i].SubmitS <= now }
			headIdx := -1
			for i := range queue {
				if arrived(i) {
					headIdx = i
					break
				}
			}
			if headIdx >= 0 && queue[headIdx].NP <= freeCores {
				start(headIdx)
				progressed = true
				continue
			}
			if s.cfg.Policy == Backfill && headIdx >= 0 {
				// Head blocked: compute its reservation time — the
				// earliest instant enough cores free up.
				reservation := reservationTime(now, freeCores, queue[headIdx].NP, active)
				for i := headIdx + 1; i < len(queue); i++ {
					if !arrived(i) {
						continue
					}
					if queue[i].NP <= freeCores && now+queue[i].EstimateS <= reservation {
						start(i)
						progressed = true
						break
					}
				}
			}
		}

		// Advance time to the next event: a completion or an arrival.
		nextT := -1.0
		for _, r := range active {
			if nextT < 0 || r.endS < nextT {
				nextT = r.endS
			}
		}
		for i := range queue {
			if queue[i].SubmitS > now && (nextT < 0 || queue[i].SubmitS < nextT) {
				nextT = queue[i].SubmitS
			}
		}
		if nextT < 0 {
			break // nothing running, nothing arriving: deadlock guard
		}
		now = nextT

		// Retire completions at the new time.
		kept := active[:0]
		for _, r := range active {
			if r.endS <= now {
				freeCores += r.cores
				rec := Record{
					JobID:    r.job.ID,
					Name:     r.job.Name,
					NP:       r.job.NP,
					Nodes:    r.nodes,
					SubmitS:  r.job.SubmitS,
					StartS:   r.startS,
					EndS:     r.endS,
					ElapsedS: r.endS - r.startS,
					WaitS:    r.startS - r.job.SubmitS,
					State:    r.state,
					Attempt:  r.attempt,
					Meta:     r.job.Meta,
				}
				records = append(records, rec)
				switch rec.State {
				case StateTimeout:
					jobsTimeout.Inc()
				case StateFailed, StateNodeFail:
					if rec.State == StateNodeFail {
						jobsNodeFail.Inc()
					}
					jobsFailed.Inc()
					// Requeue with capped exponential backoff while the
					// job's retry budget lasts; the failed attempt's
					// record above is the sacct requeue row.
					if r.attempt < r.job.MaxRetries {
						retry := r.attempt + 1
						attempts[r.job.ID] = retry
						jobsRequeued.Inc()
						nj := r.job
						nj.SubmitS = now + s.cfg.backoff(retry)
						queue = append(queue, nj)
						obs.Emit("sched.job.requeue", map[string]any{
							"id": nj.ID, "name": nj.Name, "attempt": retry,
							"resubmit_s": nj.SubmitS, "prev_state": rec.State,
						})
					}
				default:
					jobsCompleted.Inc()
				}
				jobWait.Observe(rec.WaitS)
				jobElapsed.Observe(rec.ElapsedS)
				obs.Emit("sched.job.end", map[string]any{
					"id": rec.JobID, "name": rec.Name, "np": rec.NP,
					"wait_s": rec.WaitS, "elapsed_s": rec.ElapsedS, "state": rec.State,
					"attempt": rec.Attempt,
				})
			} else {
				kept = append(kept, r)
			}
		}
		active = kept
	}
	makespan.Set(now)
	return records
}
