package sched

import "repro/internal/faults"

// FaultHooks adapts a fault injector to the scheduler's failure and
// slowdown hooks:
//
//	failure, slowdown := sched.FaultHooks(inj)
//	s, _ := sched.New(sched.Config{..., FailureFn: failure, SlowdownFn: slowdown})
//
// Decisions are keyed by (job ID, attempt), so a requeued attempt is an
// independent draw and an identically seeded injector reproduces the
// same failure pattern across runs. Node faults are checked before
// plain job failures, mirroring the priority in
// cluster.ExecTimeFaulty. A nil injector yields hooks that never fail
// or slow anything.
func FaultHooks(inj *faults.Injector) (failure func(Job, int) (string, float64), slowdown func(Job, int) float64) {
	failure = func(j Job, attempt int) (string, float64) {
		if inj.NodeFails(j.ID, attempt) {
			return StateNodeFail, inj.FailFraction(j.ID, attempt)
		}
		if inj.JobFails(j.ID, attempt) {
			return StateFailed, inj.FailFraction(j.ID, attempt)
		}
		return "", 0
	}
	slowdown = func(j Job, attempt int) float64 {
		return inj.Slowdown(j.ID, attempt)
	}
	return failure, slowdown
}
