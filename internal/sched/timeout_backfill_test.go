package sched

import (
	"testing"

	"repro/internal/obs"
)

// A TIMEOUT kill must free cores at the walltime limit, not the job's
// natural runtime: the head-of-line reservation is computed from the
// truncated end, a backfilled job may start in the freed window, and the
// waiting wide job starts at the kill instant. The partial accounting
// record reflects the truncated elapsed time, and sched.jobs.timeout
// rises exactly once per kill.
func TestTimeoutInteractsWithBackfillReservation(t *testing.T) {
	timeoutBefore := obs.C("sched.jobs.timeout").Value()

	s, _ := New(Config{NodeCount: 1, CoresPerNode: 16, Policy: Backfill})
	// Hog: takes the whole partition, would run 200s but is killed at 50.
	if _, err := s.Submit(Job{Name: "hog", NP: 16, Run: fixed(200), WalltimeS: 50, EstimateS: 200}); err != nil {
		t.Fatal(err)
	}
	// Wide: blocked behind the hog; its reservation must be t=50 (the
	// kill), not t=200 (the hog's natural end).
	if _, err := s.Submit(Job{Name: "wide", NP: 16, Run: fixed(10), EstimateS: 10}); err != nil {
		t.Fatal(err)
	}
	// Filler: 0 free cores until the kill, so it cannot backfill before
	// t=50; with the reservation at 50 it must wait its FIFO turn after
	// wide rather than delaying it.
	if _, err := s.Submit(Job{Name: "filler", NP: 4, Run: fixed(30), EstimateS: 30}); err != nil {
		t.Fatal(err)
	}
	recs := s.Drain()
	if len(recs) != 3 {
		t.Fatalf("%d records", len(recs))
	}
	byName := map[string]Record{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	hog, wide, filler := byName["hog"], byName["wide"], byName["filler"]
	if hog.State != StateTimeout || hog.ElapsedS != 50 || hog.EndS != 50 {
		t.Fatalf("hog record = %+v, want TIMEOUT at 50", hog)
	}
	if wide.StartS != 50 {
		t.Fatalf("wide started at %g, want 50 (the kill instant)", wide.StartS)
	}
	// Filler backfills the 16 free cores alongside nothing... it can only
	// start once wide is done (wide takes the full partition).
	if filler.StartS != 60 {
		t.Fatalf("filler started at %g, want 60", filler.StartS)
	}
	if d := obs.C("sched.jobs.timeout").Value() - timeoutBefore; d != 1 {
		t.Fatalf("sched.jobs.timeout rose by %d, want exactly 1", d)
	}
}

// With spare cores during the doomed job's run, a short job backfills
// into the pre-kill window because the reservation (computed from the
// truncated end) leaves room for it.
func TestBackfillIntoPreKillWindow(t *testing.T) {
	timeoutBefore := obs.C("sched.jobs.timeout").Value()

	s, _ := New(Config{NodeCount: 1, CoresPerNode: 16, Policy: Backfill})
	// Hog takes 12 of 16 cores and is killed at its 60s walltime.
	if _, err := s.Submit(Job{Name: "hog", NP: 12, Run: fixed(500), WalltimeS: 60, EstimateS: 500}); err != nil {
		t.Fatal(err)
	}
	// Wide needs the full partition: blocked until the kill frees cores,
	// reservation = 60.
	if _, err := s.Submit(Job{Name: "wide", NP: 16, Run: fixed(10), EstimateS: 10}); err != nil {
		t.Fatal(err)
	}
	// Short fits in the 4 spare cores and its estimate (40s) ends by the
	// reservation, so EASY backfill starts it immediately.
	if _, err := s.Submit(Job{Name: "short", NP: 4, Run: fixed(40), EstimateS: 40}); err != nil {
		t.Fatal(err)
	}
	recs := s.Drain()
	byName := map[string]Record{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if got := byName["short"].StartS; got != 0 {
		t.Fatalf("short backfilled at %g, want 0", got)
	}
	if got := byName["hog"]; got.State != StateTimeout || got.EndS != 60 {
		t.Fatalf("hog = %+v, want TIMEOUT at 60", got)
	}
	if got := byName["wide"].StartS; got != 60 {
		t.Fatalf("wide started at %g, want 60", got)
	}
	if d := obs.C("sched.jobs.timeout").Value() - timeoutBefore; d != 1 {
		t.Fatalf("sched.jobs.timeout rose by %d, want exactly 1", d)
	}
}
