package sched

import "sort"

// Utilization computes the time-averaged fraction of the partition's
// cores that were busy over the records' makespan — the efficiency view
// of a collection campaign like the paper's 3000-job sweep.
func Utilization(records []Record, totalCores int) float64 {
	if len(records) == 0 || totalCores <= 0 {
		return 0
	}
	var start, end float64
	start = records[0].StartS
	var coreSeconds float64
	for _, r := range records {
		if r.StartS < start {
			start = r.StartS
		}
		if r.EndS > end {
			end = r.EndS
		}
		coreSeconds += float64(r.NP) * r.ElapsedS
	}
	span := end - start
	if span <= 0 {
		return 0
	}
	return coreSeconds / (span * float64(totalCores))
}

// PeakCoresInUse returns the maximum simultaneous core usage across the
// records — a sanity check that the scheduler never oversubscribed the
// partition.
func PeakCoresInUse(records []Record) int {
	type event struct {
		t     float64
		delta int
	}
	events := make([]event, 0, 2*len(records))
	for _, r := range records {
		events = append(events, event{r.StartS, r.NP}, event{r.EndS, -r.NP})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return events[i].t < events[j].t
		}
		// Process releases before acquisitions at the same instant.
		return events[i].delta < events[j].delta
	})
	cur, peak := 0, 0
	for _, e := range events {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// WaitStats returns the mean and maximum queue wait across records.
func WaitStats(records []Record) (mean, max float64) {
	if len(records) == 0 {
		return 0, 0
	}
	var sum float64
	for _, r := range records {
		sum += r.WaitS
		if r.WaitS > max {
			max = r.WaitS
		}
	}
	return sum / float64(len(records)), max
}
