package sched

import "sort"

// reservationTime computes the earliest time at which np cores will be
// free, given the currently free cores and the end times of running jobs.
// This is the head-of-line job's reservation used by EASY backfill.
func reservationTime(now float64, freeCores, np int, active []running) float64 {
	if np <= freeCores {
		return now
	}
	ends := append([]running(nil), active...)
	sort.Slice(ends, func(i, j int) bool { return ends[i].endS < ends[j].endS })
	free := freeCores
	for _, r := range ends {
		free += r.cores
		if free >= np {
			return r.endS
		}
	}
	// Unreachable when the job fits the partition, but stay defensive.
	if len(ends) > 0 {
		return ends[len(ends)-1].endS
	}
	return now
}
