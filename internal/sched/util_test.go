package sched

import (
	"math"
	"testing"
)

func TestUtilization(t *testing.T) {
	// Two 8-core jobs of 10 s run concurrently on a 16-core node:
	// utilization = 1.
	recs := []Record{
		{NP: 8, StartS: 0, EndS: 10, ElapsedS: 10},
		{NP: 8, StartS: 0, EndS: 10, ElapsedS: 10},
	}
	if got := Utilization(recs, 16); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Utilization = %g, want 1", got)
	}
	// One of them alone: 0.5.
	if got := Utilization(recs[:1], 16); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Utilization = %g, want 0.5", got)
	}
	if Utilization(nil, 16) != 0 || Utilization(recs, 0) != 0 {
		t.Fatal("degenerate inputs")
	}
}

func TestPeakCoresInUse(t *testing.T) {
	recs := []Record{
		{NP: 8, StartS: 0, EndS: 10},
		{NP: 8, StartS: 5, EndS: 15},
		{NP: 8, StartS: 10, EndS: 20}, // starts exactly as the first ends
	}
	if got := PeakCoresInUse(recs); got != 16 {
		t.Fatalf("Peak = %d, want 16 (release before acquire at t=10)", got)
	}
	if PeakCoresInUse(nil) != 0 {
		t.Fatal("empty records")
	}
}

func TestWaitStats(t *testing.T) {
	recs := []Record{{WaitS: 0}, {WaitS: 10}, {WaitS: 20}}
	mean, max := WaitStats(recs)
	if mean != 10 || max != 20 {
		t.Fatalf("WaitStats = %g, %g", mean, max)
	}
	if m, x := WaitStats(nil); m != 0 || x != 0 {
		t.Fatal("empty records")
	}
}

// End to end: a drained sweep must never oversubscribe and should keep
// the partition reasonably busy.
func TestSweepUtilizationAndPeak(t *testing.T) {
	s, _ := New(Config{NodeCount: 4, CoresPerNode: 16, Policy: Backfill})
	for i := 0; i < 40; i++ {
		np := []int{4, 8, 16, 32}[i%4]
		s.Submit(Job{NP: np, Run: fixed(float64(5 + i%7)), EstimateS: 12})
	}
	recs := s.Drain()
	if got := PeakCoresInUse(recs); got > s.TotalCores() {
		t.Fatalf("oversubscribed: peak %d > %d", got, s.TotalCores())
	}
	if u := Utilization(recs, s.TotalCores()); u < 0.5 {
		t.Fatalf("utilization %g too low for a dense sweep", u)
	}
}
