// Package sched simulates the SLURM batch environment the paper used to
// run HPGMG-FE job sweeps (§IV): a discrete-event scheduler over a
// fixed pool of nodes, FIFO with optional EASY backfill, producing
// per-job accounting records equivalent to `sacct` output. The batched
// AL ablation (A4) runs its selected experiments through this scheduler
// to account for queueing cost, the §VI scheduling concern.
//
// # Key types
//
//   - Config / New / Scheduler: the simulated cluster (node count,
//     cores per node, queueing Policy).
//   - Job / Submit: one batch submission with core request, walltime
//     estimate and an exactly-once Run callback producing the actual
//     runtime.
//   - Record / Drain: the accounting rows (submit/start/end, state
//     COMPLETED or TIMEOUT) the dataset layer consumes.
//   - Utilization / PeakCoresInUse / WaitStats: post-hoc queue
//     analytics over a drained record set.
//
// # Observability
//
// Submissions and completions feed sched.jobs.* counters, the
// sched.job.wait and sched.job.elapsed histograms (simulated seconds,
// value buckets rather than wall-clock timer buckets), and the
// sched.makespan gauge; job lifecycle events are emitted to the JSONL
// sink (see OBSERVABILITY.md).
//
// # Concurrency contract
//
// A *Scheduler is single-threaded simulation state: Submit and Drain
// must not be called concurrently. Distinct Scheduler instances are
// independent and may run in parallel (as the A4 ablation does per
// strategy).
package sched
