package sched

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/obs"
)

// failFirstN returns a FailureFn that fails the first n attempts of
// every job with the given state, then succeeds.
func failFirstN(n int, state string) func(Job, int) (string, float64) {
	return func(_ Job, attempt int) (string, float64) {
		if attempt < n {
			return state, 0.5
		}
		return "", 0
	}
}

func TestFailedJobRequeuesWithBackoff(t *testing.T) {
	s, _ := New(Config{
		NodeCount: 1, CoresPerNode: 16,
		FailureFn:    failFirstN(2, StateFailed),
		BackoffBaseS: 10, BackoffCapS: 1000,
	})
	if _, err := s.Submit(Job{Name: "flaky", NP: 4, Run: fixed(100), MaxRetries: 3}); err != nil {
		t.Fatal(err)
	}
	recs := s.Drain()
	if len(recs) != 3 {
		t.Fatalf("want 3 attempt records (2 failures + success), got %d: %+v", len(recs), recs)
	}
	for i, want := range []string{StateFailed, StateFailed, StateCompleted} {
		if recs[i].State != want {
			t.Fatalf("attempt %d state %s, want %s", i, recs[i].State, want)
		}
		if recs[i].Attempt != i {
			t.Fatalf("attempt %d numbered %d", i, recs[i].Attempt)
		}
	}
	// Failed attempts ran half their runtime; the final one ran in full.
	if recs[0].ElapsedS != 50 || recs[1].ElapsedS != 50 || recs[2].ElapsedS != 100 {
		t.Fatalf("elapsed = %g, %g, %g", recs[0].ElapsedS, recs[1].ElapsedS, recs[2].ElapsedS)
	}
	// Backoff: retry 1 resubmits 10s after the first failure (end 50),
	// retry 2 resubmits 20s after the second failure.
	if recs[1].StartS != 60 {
		t.Fatalf("retry 1 started at %g, want 60 (50 + 10s backoff)", recs[1].StartS)
	}
	if recs[2].StartS != 130 {
		t.Fatalf("retry 2 started at %g, want 130 (110 + 20s backoff)", recs[2].StartS)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	failedBefore := obs.C("sched.jobs.failed").Value()
	requeuedBefore := obs.C("sched.jobs.requeued").Value()
	s, _ := New(Config{
		NodeCount: 1, CoresPerNode: 16,
		FailureFn: failFirstN(1<<30, StateFailed), // always fails
	})
	if _, err := s.Submit(Job{Name: "doomed", NP: 4, Run: fixed(10), MaxRetries: 2}); err != nil {
		t.Fatal(err)
	}
	recs := s.Drain()
	if len(recs) != 3 {
		t.Fatalf("want 3 failed attempts, got %d", len(recs))
	}
	for i, r := range recs {
		if r.State != StateFailed {
			t.Fatalf("attempt %d state %s", i, r.State)
		}
	}
	if d := obs.C("sched.jobs.failed").Value() - failedBefore; d != 3 {
		t.Fatalf("sched.jobs.failed rose by %d, want 3", d)
	}
	if d := obs.C("sched.jobs.requeued").Value() - requeuedBefore; d != 2 {
		t.Fatalf("sched.jobs.requeued rose by %d, want 2", d)
	}
}

func TestNodeFailAccountedSeparately(t *testing.T) {
	nodeFailBefore := obs.C("sched.jobs.node_fail").Value()
	s, _ := New(Config{
		NodeCount: 1, CoresPerNode: 16,
		FailureFn: failFirstN(1, StateNodeFail),
	})
	if _, err := s.Submit(Job{Name: "unlucky", NP: 4, Run: fixed(10), MaxRetries: 1}); err != nil {
		t.Fatal(err)
	}
	recs := s.Drain()
	if len(recs) != 2 || recs[0].State != StateNodeFail || recs[1].State != StateCompleted {
		t.Fatalf("records = %+v", recs)
	}
	if d := obs.C("sched.jobs.node_fail").Value() - nodeFailBefore; d != 1 {
		t.Fatalf("sched.jobs.node_fail rose by %d, want 1", d)
	}
}

func TestBackoffCap(t *testing.T) {
	c := Config{BackoffBaseS: 100, BackoffCapS: 350}
	for r, want := range map[int]float64{1: 100, 2: 200, 3: 350, 10: 350} {
		if got := c.backoff(r); got != want {
			t.Fatalf("backoff(%d) = %g, want %g", r, got, want)
		}
	}
	// Defaults.
	d := Config{}
	if got := d.backoff(1); got != DefaultBackoffBaseS {
		t.Fatalf("default backoff(1) = %g", got)
	}
	if got := d.backoff(100); got != DefaultBackoffCapS {
		t.Fatalf("default backoff(100) = %g, want cap", got)
	}
}

func TestNoRetriesWithoutBudget(t *testing.T) {
	s, _ := New(Config{
		NodeCount: 1, CoresPerNode: 16,
		FailureFn: failFirstN(1, StateFailed),
	})
	if _, err := s.Submit(Job{Name: "once", NP: 4, Run: fixed(10)}); err != nil {
		t.Fatal(err)
	}
	recs := s.Drain()
	if len(recs) != 1 || recs[0].State != StateFailed {
		t.Fatalf("records = %+v", recs)
	}
}

func TestStragglerSlowdownApplied(t *testing.T) {
	s, _ := New(Config{
		NodeCount: 1, CoresPerNode: 16,
		SlowdownFn: func(_ Job, _ int) float64 { return 3 },
	})
	if _, err := s.Submit(Job{Name: "slow", NP: 4, Run: fixed(10)}); err != nil {
		t.Fatal(err)
	}
	recs := s.Drain()
	if recs[0].ElapsedS != 30 {
		t.Fatalf("straggled elapsed %g, want 30", recs[0].ElapsedS)
	}
	if recs[0].State != StateCompleted {
		t.Fatalf("state %s", recs[0].State)
	}
}

// A straggler pushed past its walltime is killed as TIMEOUT, not
// requeued — walltime kills are final.
func TestStragglerHitsWalltime(t *testing.T) {
	s, _ := New(Config{
		NodeCount: 1, CoresPerNode: 16,
		SlowdownFn: func(_ Job, _ int) float64 { return 10 },
	})
	if _, err := s.Submit(Job{Name: "s", NP: 4, Run: fixed(10), WalltimeS: 50, MaxRetries: 5}); err != nil {
		t.Fatal(err)
	}
	recs := s.Drain()
	if len(recs) != 1 || recs[0].State != StateTimeout || recs[0].ElapsedS != 50 {
		t.Fatalf("records = %+v", recs)
	}
}

// FaultHooks wires an injector end to end through Drain: with the
// injector seeded, failures appear, requeues happen, and the whole
// campaign still drains to terminal states.
func TestFaultHooksEndToEnd(t *testing.T) {
	inj := faults.New(faults.Config{Seed: 21, JobFailRate: 0.3, NodeFailRate: 0.1, StragglerRate: 0.2})
	failure, slowdown := FaultHooks(inj)
	s, _ := New(Config{
		NodeCount: 4, CoresPerNode: 16,
		FailureFn: failure, SlowdownFn: slowdown,
		BackoffBaseS: 5,
	})
	const jobs = 60
	for i := 0; i < jobs; i++ {
		if _, err := s.Submit(Job{Name: "j", NP: 8, Run: fixed(20), MaxRetries: 4}); err != nil {
			t.Fatal(err)
		}
	}
	recs := s.Drain()
	if len(recs) < jobs {
		t.Fatalf("only %d records for %d jobs", len(recs), jobs)
	}
	var failed, completed int
	done := map[int]bool{}
	for _, r := range recs {
		switch r.State {
		case StateFailed, StateNodeFail:
			failed++
		case StateCompleted:
			completed++
			done[r.JobID] = true
		}
	}
	if failed == 0 {
		t.Fatal("injector produced no failures")
	}
	if len(done) != jobs {
		t.Fatalf("%d of %d jobs completed within their retry budget", len(done), jobs)
	}
	if peak := PeakCoresInUse(recs); peak > s.TotalCores() {
		t.Fatalf("oversubscribed: peak %d cores of %d", peak, s.TotalCores())
	}

	// Nil-injector hooks are no-ops.
	nf, ns := FaultHooks(nil)
	if st, _ := nf(Job{ID: 1}, 0); st != "" {
		t.Fatalf("nil injector failure state %q", st)
	}
	if f := ns(Job{ID: 1}, 0); f != 1 {
		t.Fatalf("nil injector slowdown %g", f)
	}
}
