package cluster

import (
	"fmt"
	"math"

	"repro/internal/obs"
)

// Simulation metrics (see OBSERVABILITY.md): how many simulated
// executions and power readings the substrate served — the "experiments"
// whose cost the AL machinery is meant to amortize.
var (
	simulatedRuns   = obs.C("cluster.exec.count")
	powerSamples    = obs.C("cluster.power.samples")
	powerTraces     = obs.C("cluster.power.traces")
	energyEstimates = obs.C("cluster.energy.estimates")
	sparseTraces    = obs.C("cluster.trace.sparse")
)

// NodeSpec describes one physical machine. The default mirrors the
// CloudLab Wisconsin nodes used in the paper: 2× 8-core Intel E5-2630 v3
// (Haswell), 128 GB RAM, 10 GbE.
type NodeSpec struct {
	Sockets        int
	CoresPerSocket int
	MemGB          float64

	// FreqLevels are the selectable DVFS frequencies in GHz, ascending.
	FreqLevels []float64

	// FlopsPerCycle is the sustained per-core FP throughput in
	// flops/cycle (well below the AVX2 peak — this is a multigrid
	// stencil, not DGEMM).
	FlopsPerCycle float64

	// MemBWGBs is the per-node sustained memory bandwidth in GB/s.
	MemBWGBs float64

	// NetLatencyS and NetBWGBs describe the interconnect.
	NetLatencyS float64
	NetBWGBs    float64

	// IdleWatts is the node's idle power draw; DynWattsPerCore is the
	// additional draw of one fully busy core at the maximum frequency.
	IdleWatts       float64
	DynWattsPerCore float64
}

// Wisconsin returns the node model for the CloudLab Wisconsin cluster
// used in the paper (§IV-A).
func Wisconsin() NodeSpec {
	return NodeSpec{
		Sockets:         2,
		CoresPerSocket:  8,
		MemGB:           128,
		FreqLevels:      []float64{1.2, 1.5, 1.8, 2.1, 2.4},
		FlopsPerCycle:   2.0,
		MemBWGBs:        50,
		NetLatencyS:     20e-6,
		NetBWGBs:        1.25, // 10 Gb/s
		IdleWatts:       85,
		DynWattsPerCore: 8.5,
	}
}

// Cores returns the number of cores per node.
func (n NodeSpec) Cores() int { return n.Sockets * n.CoresPerSocket }

// MaxFreq returns the highest DVFS level.
func (n NodeSpec) MaxFreq() float64 {
	if len(n.FreqLevels) == 0 {
		return 0
	}
	return n.FreqLevels[len(n.FreqLevels)-1]
}

// ValidFreq reports whether f is one of the node's DVFS levels.
func (n NodeSpec) ValidFreq(f float64) bool {
	for _, v := range n.FreqLevels {
		if math.Abs(v-f) < 1e-9 {
			return true
		}
	}
	return false
}

// Placement describes how a job's processes land on the cluster.
type Placement struct {
	Nodes        int // nodes touched
	CoresPerNode int // processes per node on the fullest node
	Total        int // total processes (NP)
}

// Place spreads np processes over nodes with coresPerNode slots each,
// packing nodes densely (SLURM block distribution).
func Place(np, coresPerNode int) (Placement, error) {
	if np <= 0 {
		return Placement{}, fmt.Errorf("cluster: np = %d must be positive", np)
	}
	if coresPerNode <= 0 {
		return Placement{}, fmt.Errorf("cluster: coresPerNode = %d must be positive", coresPerNode)
	}
	nodes := (np + coresPerNode - 1) / coresPerNode
	cpn := np
	if cpn > coresPerNode {
		cpn = coresPerNode
	}
	return Placement{Nodes: nodes, CoresPerNode: cpn, Total: np}, nil
}

// Work is a resource demand: total floating-point operations, total bytes
// moved through memory, and bytes exchanged over the network per process.
type Work struct {
	Flops    float64
	MemBytes float64
	NetBytes float64 // per-process halo exchange volume
	NetMsgs  float64 // per-process message count
}

// ExecTime predicts the wall-clock seconds the work takes on this node
// type at the given placement and frequency. The model is a roofline —
// compute and memory streams overlap, the slower one dominates — plus a
// network term for multi-node placements:
//
//	t = max(t_compute, t_memory) + t_net
//
// Memory bandwidth does not scale with DVFS (uncore clocks are separate on
// Haswell), which produces the flattening of runtime-vs-frequency for
// memory-bound sizes that the paper's Fig. 1 shows.
func (n NodeSpec) ExecTime(w Work, p Placement, freqGHz float64) (float64, error) {
	if !n.ValidFreq(freqGHz) {
		return 0, fmt.Errorf("cluster: %g GHz is not a DVFS level of this node", freqGHz)
	}
	if p.Total <= 0 {
		return 0, fmt.Errorf("cluster: empty placement")
	}
	simulatedRuns.Inc()
	coresTotal := float64(p.Total)
	tCompute := w.Flops / (coresTotal * freqGHz * 1e9 * n.FlopsPerCycle)

	// Per-node memory bandwidth saturates: a few cores already drive
	// the controllers near peak.
	sat := math.Min(1, 0.35+0.65*float64(p.CoresPerNode)/float64(n.Cores()))
	tMemory := w.MemBytes / (float64(p.Nodes) * n.MemBWGBs * 1e9 * sat)

	var tNet float64
	if p.Nodes > 1 {
		tNet = w.NetMsgs*n.NetLatencyS + w.NetBytes/(n.NetBWGBs*1e9)
	}
	return math.Max(tCompute, tMemory) + tNet, nil
}

// Power returns the node's instantaneous draw in Watts with activeCores
// busy at freqGHz. Dynamic power scales ≈ f·V² ≈ f³ with DVFS.
func (n NodeSpec) Power(activeCores int, freqGHz float64) float64 {
	if activeCores < 0 {
		activeCores = 0
	}
	if c := n.Cores(); activeCores > c {
		activeCores = c
	}
	rel := freqGHz / n.MaxFreq()
	return n.IdleWatts + float64(activeCores)*n.DynWattsPerCore*rel*rel*rel
}

// JobPower returns the total draw across all nodes of a placement while
// the job runs (remaining cores idle but the nodes are powered).
func (n NodeSpec) JobPower(p Placement, freqGHz float64) float64 {
	if p.Nodes == 0 {
		return 0
	}
	full := p.Nodes - 1
	rem := p.Total - full*p.CoresPerNode
	pw := float64(full) * n.Power(p.CoresPerNode, freqGHz)
	pw += n.Power(rem, freqGHz)
	return pw
}
