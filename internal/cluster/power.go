package cluster

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/stats"
)

// PowerSample is one IPMI reading: elapsed seconds since job start and
// instantaneous draw in Watts.
type PowerSample struct {
	T     float64
	Watts float64
}

// TraceConfig controls the simulated IPMI sampler.
type TraceConfig struct {
	// PeriodS is the sampling period in seconds (default 1).
	PeriodS float64
	// Dropout is the probability that any individual reading is lost —
	// the trace "gaps" of §V-A (default 0).
	Dropout float64
	// JitterW is the standard deviation of additive Gaussian sensor
	// noise in Watts (default 0).
	JitterW float64
}

// MinSamplesPer60S is the paper's quality gate: jobs whose traces carry
// fewer than 10 power readings per 60 seconds of computation are excluded
// from the Power dataset (§V-A).
const MinSamplesPer60S = 10

// ErrTraceTooSparse is returned by EnergyFromTrace when a trace fails the
// paper's density gate.
var ErrTraceTooSparse = errors.New("cluster: power trace too sparse for energy estimation")

// SampleTrace simulates an IPMI power trace over a job of the given
// duration with constant true draw watts. Readings are taken every
// PeriodS, dropped independently with probability Dropout, and perturbed
// by sensor noise.
func SampleTrace(rng *rand.Rand, durationS, watts float64, cfg TraceConfig) []PowerSample {
	return SampleTraceFunc(rng, durationS, func(float64) float64 { return watts }, cfg)
}

// SampleTraceFunc simulates an IPMI power trace where the true draw
// varies over the job — e.g. dips during the coarse-grid phases of a
// multigrid solve. watts is evaluated at each sampling instant.
func SampleTraceFunc(rng *rand.Rand, durationS float64, watts func(t float64) float64, cfg TraceConfig) []PowerSample {
	period := cfg.PeriodS
	if period <= 0 {
		period = 1
	}
	var out []PowerSample
	for t := 0.0; t <= durationS; t += period {
		if cfg.Dropout > 0 && rng.Float64() < cfg.Dropout {
			continue
		}
		w := watts(t)
		if cfg.JitterW > 0 {
			w += cfg.JitterW * rng.NormFloat64()
		}
		if w < 0 {
			w = 0
		}
		out = append(out, PowerSample{T: t, Watts: w})
	}
	powerTraces.Inc()
	powerSamples.Add(int64(len(out)))
	return out
}

// EnergyFromTrace estimates the job's energy in Joules by trapezoidal
// integration of the trace over [0, durationS], extending the first and
// last readings to the interval edges. It returns ErrTraceTooSparse when
// the trace density falls below MinSamplesPer60S per 60 s of computation,
// mirroring the paper's exclusion rule.
func EnergyFromTrace(samples []PowerSample, durationS float64) (float64, error) {
	if durationS <= 0 {
		return 0, errors.New("cluster: non-positive duration")
	}
	need := int(math.Ceil(durationS / 60.0 * MinSamplesPer60S))
	if need < 2 {
		need = 2
	}
	if len(samples) < need {
		sparseTraces.Inc()
		return 0, ErrTraceTooSparse
	}
	ts := make([]float64, 0, len(samples)+2)
	ws := make([]float64, 0, len(samples)+2)
	if samples[0].T > 0 {
		ts = append(ts, 0)
		ws = append(ws, samples[0].Watts)
	}
	for i, s := range samples {
		if i > 0 && s.T <= ts[len(ts)-1] {
			continue // defensive: drop non-increasing timestamps
		}
		ts = append(ts, s.T)
		ws = append(ws, s.Watts)
	}
	if last := ts[len(ts)-1]; last < durationS {
		ts = append(ts, durationS)
		ws = append(ws, ws[len(ws)-1])
	}
	energyEstimates.Inc()
	return stats.Trapezoid(ts, ws), nil
}
