package cluster

import (
	"math/rand"

	"repro/internal/faults"
)

// Execution states reported by ExecTimeFaulty. They mirror the
// scheduler's accounting states (internal/sched) so outcomes flow into
// sacct-style records unchanged.
const (
	ExecCompleted = "COMPLETED"
	ExecFailed    = "FAILED"
	ExecNodeFail  = "NODE_FAIL"
)

// ExecOutcome is the result of one fault-aware simulated execution
// attempt.
type ExecOutcome struct {
	// ElapsedS is the attempt's wall-clock seconds: the roofline
	// prediction scaled by any straggler slowdown and, for failed
	// attempts, truncated at the crash instant.
	ElapsedS float64
	// State is ExecCompleted, ExecFailed or ExecNodeFail.
	State string
	// Slowdown is the straggler factor applied (1 = none).
	Slowdown float64
}

// Failed reports whether the attempt did not complete.
func (o ExecOutcome) Failed() bool { return o.State != ExecCompleted }

// ExecTimeFaulty is ExecTime routed through a fault injector: the
// failure-aware execution hook the scheduler and AL layers drive.
// Decisions are keyed by (job, attempt) so a retry of the same job is an
// independent draw, and a resumed run re-derives identical faults. A nil
// injector makes this exactly ExecTime with a COMPLETED outcome.
func (n NodeSpec) ExecTimeFaulty(inj *faults.Injector, job, attempt int, w Work, p Placement, freqGHz float64) (ExecOutcome, error) {
	t, err := n.ExecTime(w, p, freqGHz)
	if err != nil {
		return ExecOutcome{}, err
	}
	out := ExecOutcome{ElapsedS: t, State: ExecCompleted, Slowdown: inj.Slowdown(job, attempt)}
	out.ElapsedS *= out.Slowdown
	switch {
	case inj.NodeFails(job, attempt):
		out.State = ExecNodeFail
		out.ElapsedS *= inj.FailFraction(job, attempt)
	case inj.JobFails(job, attempt):
		out.State = ExecFailed
		out.ElapsedS *= inj.FailFraction(job, attempt)
	}
	return out, nil
}

// SampleTraceFaulty is SampleTraceFunc with additional injector-keyed
// sample dropout: beyond the stochastic TraceConfig.Dropout, each
// reading is dropped when the injector's PowerDropout draw for
// (job, sample index) fires. The deterministic keying means a resumed or
// re-scored campaign loses exactly the same readings.
func SampleTraceFaulty(inj *faults.Injector, job int, rng *rand.Rand, durationS float64, watts func(t float64) float64, cfg TraceConfig) []PowerSample {
	samples := SampleTraceFunc(rng, durationS, watts, cfg)
	if !inj.Enabled() {
		return samples
	}
	kept := samples[:0]
	for i, s := range samples {
		if inj.DropPowerSample(job, i) {
			continue
		}
		kept = append(kept, s)
	}
	return kept
}
