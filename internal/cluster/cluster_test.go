package cluster

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWisconsinSpec(t *testing.T) {
	n := Wisconsin()
	if n.Cores() != 16 {
		t.Fatalf("Cores = %d", n.Cores())
	}
	if n.MaxFreq() != 2.4 {
		t.Fatalf("MaxFreq = %g", n.MaxFreq())
	}
	for _, f := range []float64{1.2, 1.5, 1.8, 2.1, 2.4} {
		if !n.ValidFreq(f) {
			t.Fatalf("%g should be a valid level", f)
		}
	}
	if n.ValidFreq(2.0) {
		t.Fatal("2.0 is not a level")
	}
}

func TestPlace(t *testing.T) {
	cases := []struct {
		np, cpn       int
		nodes, packed int
	}{
		{1, 16, 1, 1},
		{16, 16, 1, 16},
		{17, 16, 2, 16},
		{32, 16, 2, 16},
		{48, 16, 3, 16},
		{128, 16, 8, 16},
	}
	for _, tc := range cases {
		p, err := Place(tc.np, tc.cpn)
		if err != nil {
			t.Fatal(err)
		}
		if p.Nodes != tc.nodes || p.CoresPerNode != tc.packed || p.Total != tc.np {
			t.Fatalf("Place(%d,%d) = %+v", tc.np, tc.cpn, p)
		}
	}
	if _, err := Place(0, 16); err == nil {
		t.Fatal("expected error")
	}
	if _, err := Place(4, 0); err == nil {
		t.Fatal("expected error")
	}
}

func TestExecTimeComputeBound(t *testing.T) {
	spec := Wisconsin()
	p, _ := Place(1, spec.Cores())
	// Pure compute: 4.8e9 flops on one 2.4 GHz core at 2 flops/cycle
	// takes 1 second.
	w := Work{Flops: 4.8e9 * 2}
	got, err := spec.ExecTime(w, p, 2.4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("ExecTime = %g, want 2", got)
	}
}

func TestExecTimeScalesWithFreqWhenComputeBound(t *testing.T) {
	spec := Wisconsin()
	p, _ := Place(4, spec.Cores())
	w := Work{Flops: 1e12}
	t24, _ := spec.ExecTime(w, p, 2.4)
	t12, _ := spec.ExecTime(w, p, 1.2)
	if math.Abs(t12/t24-2.0) > 1e-9 {
		t.Fatalf("freq scaling ratio = %g, want 2", t12/t24)
	}
}

func TestExecTimeMemoryBoundIgnoresFreq(t *testing.T) {
	spec := Wisconsin()
	p, _ := Place(16, spec.Cores())
	w := Work{Flops: 1, MemBytes: 1e12}
	t24, _ := spec.ExecTime(w, p, 2.4)
	t12, _ := spec.ExecTime(w, p, 1.2)
	if math.Abs(t12-t24) > 1e-12 {
		t.Fatalf("memory-bound time should not depend on frequency: %g vs %g", t12, t24)
	}
}

func TestExecTimeStrongScaling(t *testing.T) {
	spec := Wisconsin()
	w := Work{Flops: 1e13}
	prev := math.Inf(1)
	for _, np := range []int{1, 2, 4, 8, 16} {
		p, _ := Place(np, spec.Cores())
		tt, err := spec.ExecTime(w, p, 2.4)
		if err != nil {
			t.Fatal(err)
		}
		if tt >= prev {
			t.Fatalf("no strong scaling at np=%d: %g >= %g", np, tt, prev)
		}
		prev = tt
	}
}

func TestExecTimeMultiNodeAddsNetwork(t *testing.T) {
	spec := Wisconsin()
	w := Work{Flops: 1e10, NetBytes: 1e8, NetMsgs: 1000}
	p1, _ := Place(16, spec.Cores())
	p2, _ := Place(32, spec.Cores())
	t1, _ := spec.ExecTime(w, p1, 2.4)
	t2raw := w.Flops / (32 * 2.4e9 * spec.FlopsPerCycle)
	t2, _ := spec.ExecTime(w, p2, 2.4)
	if t2 <= t2raw {
		t.Fatalf("multi-node run must pay network cost: %g <= %g", t2, t2raw)
	}
	_ = t1
}

func TestExecTimeInvalidInputs(t *testing.T) {
	spec := Wisconsin()
	p, _ := Place(1, 16)
	if _, err := spec.ExecTime(Work{Flops: 1}, p, 2.0); err == nil {
		t.Fatal("expected invalid-frequency error")
	}
	if _, err := spec.ExecTime(Work{Flops: 1}, Placement{}, 2.4); err == nil {
		t.Fatal("expected empty-placement error")
	}
}

func TestPowerModel(t *testing.T) {
	spec := Wisconsin()
	idle := spec.Power(0, 2.4)
	if idle != spec.IdleWatts {
		t.Fatalf("idle power = %g", idle)
	}
	full := spec.Power(16, 2.4)
	want := spec.IdleWatts + 16*spec.DynWattsPerCore
	if math.Abs(full-want) > 1e-9 {
		t.Fatalf("full power = %g, want %g", full, want)
	}
	// Cubic DVFS scaling: at half frequency dynamic power is 1/8.
	half := spec.Power(16, 1.2)
	wantHalf := spec.IdleWatts + 16*spec.DynWattsPerCore/8
	if math.Abs(half-wantHalf) > 1e-9 {
		t.Fatalf("half-freq power = %g, want %g", half, wantHalf)
	}
	// Clamping.
	if spec.Power(99, 2.4) != full {
		t.Fatal("activeCores should clamp to node size")
	}
	if spec.Power(-1, 2.4) != idle {
		t.Fatal("negative cores should clamp to 0")
	}
}

func TestJobPower(t *testing.T) {
	spec := Wisconsin()
	p, _ := Place(24, 16) // one full node + 8 cores on the second
	got := spec.JobPower(p, 2.4)
	want := spec.Power(16, 2.4) + spec.Power(8, 2.4)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("JobPower = %g, want %g", got, want)
	}
	if spec.JobPower(Placement{}, 2.4) != 0 {
		t.Fatal("empty placement should draw 0")
	}
}

func TestSampleTraceDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := SampleTrace(rng, 60, 200, TraceConfig{PeriodS: 1})
	if len(tr) != 61 {
		t.Fatalf("%d samples, want 61", len(tr))
	}
	for _, s := range tr {
		if s.Watts != 200 {
			t.Fatalf("noise-free trace perturbed: %g", s.Watts)
		}
	}
}

func TestSampleTraceDropout(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := SampleTrace(rng, 600, 200, TraceConfig{PeriodS: 1, Dropout: 0.5})
	if len(tr) > 450 || len(tr) < 200 {
		t.Fatalf("dropout ineffective: %d samples of 601", len(tr))
	}
}

func TestSampleTraceJitterNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := SampleTrace(rng, 100, 1, TraceConfig{PeriodS: 1, JitterW: 50})
	for _, s := range tr {
		if s.Watts < 0 {
			t.Fatalf("negative power %g", s.Watts)
		}
	}
}

func TestEnergyFromTraceConstantPower(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := SampleTrace(rng, 120, 250, TraceConfig{PeriodS: 1})
	e, err := EnergyFromTrace(tr, 120)
	if err != nil {
		t.Fatal(err)
	}
	want := 250.0 * 120.0
	if math.Abs(e-want)/want > 0.01 {
		t.Fatalf("energy = %g, want %g", e, want)
	}
}

func TestEnergyFromTraceSparseRejected(t *testing.T) {
	// 120 s of computation needs ≥ 20 samples; give it 5.
	tr := []PowerSample{{0, 200}, {30, 200}, {60, 200}, {90, 200}, {119, 200}}
	if _, err := EnergyFromTrace(tr, 120); !errors.Is(err, ErrTraceTooSparse) {
		t.Fatalf("err = %v, want ErrTraceTooSparse", err)
	}
}

func TestEnergyFromTraceEdgeExtension(t *testing.T) {
	// Samples cover [10, 50] of a 60-second job; edges extend flat.
	var tr []PowerSample
	for ts := 10.0; ts <= 50; ts++ {
		tr = append(tr, PowerSample{T: ts, Watts: 100})
	}
	e, err := EnergyFromTrace(tr, 60)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-6000) > 1 {
		t.Fatalf("energy = %g, want 6000", e)
	}
}

func TestEnergyFromTraceInvalidDuration(t *testing.T) {
	if _, err := EnergyFromTrace(nil, 0); err == nil {
		t.Fatal("expected error")
	}
}

// Property: energy with dropout approximates the dense-trace energy.
func TestEnergyDropoutRobustProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dur := 200.0
		watts := 100 + 200*rng.Float64()
		tr := SampleTrace(rng, dur, watts, TraceConfig{PeriodS: 1, Dropout: 0.3})
		e, err := EnergyFromTrace(tr, dur)
		if errors.Is(err, ErrTraceTooSparse) {
			return true // acceptable outcome
		}
		if err != nil {
			return false
		}
		want := watts * dur
		return math.Abs(e-want)/want < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: ExecTime is monotone non-increasing in frequency for any mix.
func TestExecTimeFreqMonotoneProperty(t *testing.T) {
	spec := Wisconsin()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := Work{
			Flops:    1e9 * (1 + rng.Float64()*1000),
			MemBytes: 1e8 * rng.Float64() * 1000,
		}
		np := []int{1, 2, 4, 8, 16, 32, 64, 128}[rng.Intn(8)]
		p, err := Place(np, spec.Cores())
		if err != nil {
			return false
		}
		prev := math.Inf(1)
		for _, fq := range spec.FreqLevels {
			tt, err := spec.ExecTime(w, p, fq)
			if err != nil || tt > prev+1e-12 {
				return false
			}
			prev = tt
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
