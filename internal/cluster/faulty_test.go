package cluster

import (
	"math/rand"
	"testing"

	"repro/internal/faults"
)

func testWork() (Work, Placement) {
	w := Work{Flops: 1e12, MemBytes: 1e11, NetBytes: 1e7, NetMsgs: 100}
	p, _ := Place(32, 16)
	return w, p
}

func TestExecTimeFaultyNilInjectorMatchesExecTime(t *testing.T) {
	n := Wisconsin()
	w, p := testWork()
	want, err := n.ExecTime(w, p, 2.4)
	if err != nil {
		t.Fatal(err)
	}
	out, err := n.ExecTimeFaulty(nil, 1, 0, w, p, 2.4)
	if err != nil {
		t.Fatal(err)
	}
	if out.ElapsedS != want || out.State != ExecCompleted || out.Slowdown != 1 {
		t.Fatalf("nil-injector outcome %+v, want elapsed %g COMPLETED", out, want)
	}
	if out.Failed() {
		t.Fatal("completed outcome reports Failed")
	}
}

func TestExecTimeFaultyInjectsFailuresAndStragglers(t *testing.T) {
	n := Wisconsin()
	w, p := testWork()
	base, _ := n.ExecTime(w, p, 2.4)
	inj := faults.New(faults.Config{Seed: 9, JobFailRate: 0.3, NodeFailRate: 0.1, StragglerRate: 0.3})

	var failed, nodeFailed, slowed int
	for job := 0; job < 300; job++ {
		out, err := n.ExecTimeFaulty(inj, job, 0, w, p, 2.4)
		if err != nil {
			t.Fatal(err)
		}
		switch out.State {
		case ExecFailed:
			failed++
			if !out.Failed() || out.ElapsedS > base*out.Slowdown {
				t.Fatalf("failed attempt elapsed %g exceeds full run %g", out.ElapsedS, base*out.Slowdown)
			}
		case ExecNodeFail:
			nodeFailed++
		case ExecCompleted:
		default:
			t.Fatalf("unknown state %q", out.State)
		}
		if out.Slowdown > 1 {
			slowed++
		}
	}
	if failed == 0 || nodeFailed == 0 || slowed == 0 {
		t.Fatalf("faults not injected: failed=%d nodefail=%d slowed=%d", failed, nodeFailed, slowed)
	}

	// Deterministic: the same (job, attempt) keys reproduce outcomes.
	a, _ := n.ExecTimeFaulty(inj, 17, 2, w, p, 2.4)
	b, _ := n.ExecTimeFaulty(inj, 17, 2, w, p, 2.4)
	if a != b {
		t.Fatalf("non-deterministic outcome: %+v vs %+v", a, b)
	}
}

func TestSampleTraceFaultyDropsDeterministically(t *testing.T) {
	inj := faults.New(faults.Config{Seed: 4, PowerDropRate: 0.3})
	watts := func(float64) float64 { return 200 }
	a := SampleTraceFaulty(inj, 5, rand.New(rand.NewSource(1)), 120, watts, TraceConfig{PeriodS: 1})
	b := SampleTraceFaulty(inj, 5, rand.New(rand.NewSource(1)), 120, watts, TraceConfig{PeriodS: 1})
	full := SampleTraceFunc(rand.New(rand.NewSource(1)), 120, watts, TraceConfig{PeriodS: 1})
	if len(a) == len(full) {
		t.Fatalf("no samples dropped: %d of %d", len(a), len(full))
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic dropout: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs across identical runs", i)
		}
	}
	// Nil injector is a pass-through.
	c := SampleTraceFaulty(nil, 5, rand.New(rand.NewSource(1)), 120, watts, TraceConfig{PeriodS: 1})
	if len(c) != len(full) {
		t.Fatalf("nil injector dropped samples: %d of %d", len(c), len(full))
	}
}
