// Package cluster simulates the hardware substrate the paper measured
// on (§IV-A): a small CloudLab-style cluster of dual-socket Haswell
// nodes with DVFS, a roofline-flavoured execution-time model, a
// node-level power model, and an IPMI-style power-trace sampler with
// dropout from which per-job energy is estimated by numerical
// integration. It backs the Performance and Power datasets of Table I
// and the raw scatter of Figs. 1–2.
//
// Active Learning and GPR never see the hardware directly — only (X, y)
// samples — so what matters is that the simulated runtime/energy
// surfaces have the qualitative structure of the real ones: runtime
// linear in problem size on a log–log scale, strong-scaling efficiency
// losses with process count, power rising superlinearly with frequency,
// and heteroscedastic measurement noise.
//
// # Key types
//
//   - NodeSpec / Wisconsin: the machine model (cores, DVFS levels,
//     flops, bandwidth, power coefficients) with ExecTime, Power and
//     JobPower queries.
//   - Placement / Place: mapping np requested cores onto nodes.
//   - Work: the application's compute/memory/network demand, produced by
//     internal/hpgmg's work model.
//   - SampleTrace / SampleTraceFunc / EnergyFromTrace: the IPMI-style
//     power sampler (jitter + dropout) and the trapezoid energy
//     integrator that rejects too-sparse traces, as the paper's
//     measurement pipeline did.
//
// # Observability
//
// cluster.exec.count counts simulated executions — the "experiments"
// whose cost AL is meant to amortize — and cluster.power.*,
// cluster.energy.estimates and cluster.trace.sparse count the power
// pipeline's work (see OBSERVABILITY.md).
//
// # Concurrency contract
//
// NodeSpec, Placement and Work are immutable values: all methods and
// package functions are safe for concurrent use, provided each
// goroutine supplies its own *rand.Rand to the trace samplers.
package cluster
