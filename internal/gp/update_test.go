package gp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/kernel"
	"repro/internal/mat"
)

// synthPoint draws one input in [0,3]² and a smooth noisy response.
func synthPoint(rng *rand.Rand) ([]float64, float64) {
	x := []float64{3 * rng.Float64(), 3 * rng.Float64()}
	y := math.Sin(2*x[0]) + 0.5*math.Cos(3*x[1]) + 0.05*rng.NormFloat64()
	return x, y
}

// TestUpdateWithPointMatchesFullFit chains 50 incremental updates and
// checks after every step that predictions (mean and variance) match a
// from-scratch Fit on the same data at the same hyperparameters within
// 1e-8 — the equivalence contract that lets the AL loop use the O(n²)
// path between hyperparameter refits.
func TestUpdateWithPointMatchesFullFit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const nSeed, nAdd = 8, 50

	xs := make([][]float64, 0, nSeed+nAdd)
	ys := make([]float64, 0, nSeed+nAdd)
	for i := 0; i < nSeed+nAdd; i++ {
		x, y := synthPoint(rng)
		xs = append(xs, x)
		ys = append(ys, y)
	}
	grid := mat.NewFromRows([][]float64{
		{0, 0}, {1.5, 1.5}, {3, 3}, {0.7, 2.2}, {2.9, 0.1}, {1.1, 0.4},
	})

	cfg := Config{Kernel: kernel.NewRBF(0.8, 1.2), NoiseInit: 0.1, FixedNoise: true}
	model, err := Fit(cfg, mat.NewFromRows(xs[:nSeed]), ys[:nSeed], nil)
	if err != nil {
		t.Fatal(err)
	}

	for step := 0; step < nAdd; step++ {
		i := nSeed + step
		model, err = model.UpdateWithPoint(xs[i], ys[i])
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}

		refCfg := Config{Kernel: kernel.NewRBF(0.8, 1.2), NoiseInit: 0.1, FixedNoise: true}
		ref, err := Fit(refCfg, mat.NewFromRows(xs[:i+1]), ys[:i+1], nil)
		if err != nil {
			t.Fatalf("step %d reference fit: %v", step, err)
		}

		got := model.PredictBatch(grid)
		want := ref.PredictBatch(grid)
		for j := range got {
			if d := math.Abs(got[j].Mean - want[j].Mean); d > 1e-8 {
				t.Fatalf("step %d point %d: |Δmean| = %g", step, j, d)
			}
			gv, wv := got[j].SD*got[j].SD, want[j].SD*want[j].SD
			if d := math.Abs(gv - wv); d > 1e-8 {
				t.Fatalf("step %d point %d: |Δvariance| = %g", step, j, d)
			}
		}
		if d := math.Abs(model.LML() - ref.LML()); d > 1e-6 {
			t.Fatalf("step %d: |ΔLML| = %g", step, d)
		}
	}
	if got, want := model.NumTrain(), nSeed+nAdd; got != want {
		t.Fatalf("chained model has %d training points, want %d", got, want)
	}
}

// TestUpdateWithPointNormalized checks the incremental path keeps the
// original normalization constants: predictions still agree with a full
// refactorization at those constants (exercised through Load-style
// factorize would renormalize, so compare against a chain-free Fit on the
// seed scaling).
func TestUpdateWithPointNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([][]float64, 12)
	ys := make([]float64, 12)
	for i := range xs {
		xs[i], ys[i] = synthPoint(rng)
		ys[i] = 100*ys[i] + 500 // force non-trivial normalization
	}
	cfg := Config{Kernel: kernel.NewRBF(0.8, 1.2), NoiseInit: 0.1, FixedNoise: true, Normalize: true}
	model, err := Fit(cfg, mat.NewFromRows(xs[:10]), ys[:10], nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 12; i++ {
		if model, err = model.UpdateWithPoint(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	p := model.Predict(xs[0])
	if math.IsNaN(p.Mean) || math.IsNaN(p.SD) {
		t.Fatalf("NaN prediction after normalized updates: %+v", p)
	}
	if p.Mean < 300 || p.Mean > 700 {
		t.Fatalf("prediction lost the response scale: %+v", p)
	}
}

// TestUpdateWithPointFallback forces the degenerate-border path: adding
// an exact duplicate of an existing point with a tiny noise floor makes
// the bordered pivot nonpositive, which must trigger the full-refit
// fallback (with jitter) rather than an error.
func TestUpdateWithPointFallback(t *testing.T) {
	xs := [][]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}}
	ys := []float64{0, 1, 2, 3}
	cfg := Config{Kernel: kernel.NewRBF(1, 1), NoiseInit: 1e-9, NoiseFloor: 1e-10, FixedNoise: true}
	model, err := Fit(cfg, mat.NewFromRows(xs), ys, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := updateRefit.Value()
	upd, err := model.UpdateWithPoint([]float64{1, 1}, 3)
	if err != nil {
		t.Fatalf("duplicate-point update: %v", err)
	}
	if upd.NumTrain() != 5 {
		t.Fatalf("updated model has %d points, want 5", upd.NumTrain())
	}
	if updateRefit.Value() == before {
		t.Fatal("expected the refit fallback to fire for a duplicate point at ~zero noise")
	}
	p := upd.Predict([]float64{0.5, 0.5})
	if math.IsNaN(p.Mean) || math.IsNaN(p.SD) {
		t.Fatalf("NaN prediction after fallback: %+v", p)
	}
}
