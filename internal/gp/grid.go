package gp

import "fmt"

// LMLGrid evaluates the log marginal likelihood over a 2-D grid of two
// hyperparameters (all others held at their fitted values). It produces
// the contour landscapes of Fig. 4 (sharp peak, abundant data) and
// Fig. 5(b) (shallow landscape, scarce data).
//
// idxA and idxB index into the hyperparameter vector reported by
// HyperNames; valsA and valsB are the (log-space) grid coordinates.
// Z[i][j] = LML with θ[idxA] = valsA[i], θ[idxB] = valsB[j].
func (g *GP) LMLGrid(idxA, idxB int, valsA, valsB []float64) [][]float64 {
	nh := len(g.hyperVector())
	if idxA < 0 || idxA >= nh || idxB < 0 || idxB >= nh || idxA == idxB {
		panic(fmt.Sprintf("gp: LMLGrid bad hyper indices %d, %d of %d", idxA, idxB, nh))
	}
	base := g.hyperVector()
	z := make([][]float64, len(valsA))
	for i, a := range valsA {
		z[i] = make([]float64, len(valsB))
		theta := append([]float64(nil), base...)
		theta[idxA] = a
		for j, b := range valsB {
			theta[idxB] = b
			z[i][j] = g.LMLAt(theta)
		}
	}
	return z
}

// GridPeak returns the indices and value of the largest entry of a grid
// produced by LMLGrid.
func GridPeak(z [][]float64) (i, j int, v float64) {
	v = z[0][0]
	for a := range z {
		for b := range z[a] {
			if z[a][b] > v {
				i, j, v = a, b, z[a][b]
			}
		}
	}
	return i, j, v
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}
