package gp

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/kernel"
	"repro/internal/mat"
)

// sparseReassemble rebuilds a sparse model's factors from scratch at the
// exact same inducing set, training data and hyperparameters — the
// from-first-principles reference the incremental paths must match.
func sparseReassemble(t *testing.T, s *SparseGP) *SparseGP {
	t.Helper()
	ref := &SparseGP{
		kern: s.kern, u: s.u, x: s.x, y: s.y,
		logSN: s.logSN, jitter: s.jitter, growD2: s.growD2,
		yMean: s.yMean, yStd: s.yStd,
	}
	if err := ref.assemble(); err != nil {
		t.Fatalf("reference re-assembly: %v", err)
	}
	return ref
}

// TestSparseUpdateMatchesRefit chains 50 incremental updates and checks
// after every step that predictions (mean and variance) match a full
// re-assembly of the identical state within 1e-8 — the sparse mirror of
// TestUpdateWithPointMatchesFullFit. The added stream mixes points inside
// the inducing radius (rank-one factor updates) with far-outside points
// (inducing-set growth), and both counters must have fired by the end.
func TestSparseUpdateMatchesRefit(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const nSeed, nAdd = 30, 50

	xs := make([][]float64, 0, nSeed+nAdd)
	ys := make([]float64, 0, nSeed+nAdd)
	for i := 0; i < nSeed+nAdd; i++ {
		x, y := synthPoint(rng)
		xs = append(xs, x)
		ys = append(ys, y)
	}
	// Push a sparse subset of the added points far outside the seed box so
	// the farthest-point growth branch fires alongside rank-one updates.
	for i := nSeed + 7; i < nSeed+nAdd; i += 11 {
		xs[i][0] += 8
		xs[i][1] += 8
	}
	grid := mat.NewFromRows([][]float64{
		{0, 0}, {1.5, 1.5}, {3, 3}, {0.7, 2.2}, {2.9, 0.1}, {9, 9},
	})

	model, err := FitSparse(SparseConfig{
		Kernel: kernel.NewRBF(0.8, 1.2), Noise: 0.1, Inducing: 12,
	}, mat.NewFromRows(xs[:nSeed]), ys[:nSeed], rng)
	if err != nil {
		t.Fatal(err)
	}
	rank1Before, growBefore := sparseRank1.Value(), sparseGrow.Value()

	for step := 0; step < nAdd; step++ {
		i := nSeed + step
		model, err = model.UpdateWithPoint(xs[i], ys[i])
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		ref := sparseReassemble(t, model)

		got := model.PredictBatch(grid)
		want := ref.PredictBatch(grid)
		for j := range got {
			if d := math.Abs(got[j].Mean - want[j].Mean); d > 1e-8 {
				t.Fatalf("step %d point %d: |Δmean| = %g", step, j, d)
			}
			gv, wv := got[j].SD*got[j].SD, want[j].SD*want[j].SD
			if d := math.Abs(gv - wv); d > 1e-8 {
				t.Fatalf("step %d point %d: |Δvariance| = %g", step, j, d)
			}
		}
		if d := math.Abs(model.LML() - ref.LML()); d > 1e-6 {
			t.Fatalf("step %d: |ΔLML| = %g", step, d)
		}
	}
	if model.NumTrain() != nSeed+nAdd {
		t.Fatalf("chained model has %d training points, want %d", model.NumTrain(), nSeed+nAdd)
	}
	if sparseRank1.Value() == rank1Before {
		t.Fatal("no update took the rank-one path")
	}
	if sparseGrow.Value() == growBefore {
		t.Fatal("no update took the inducing-growth path")
	}
}

// TestSparseUpdateNormalized pins the incremental path to the fit-time
// normalization constants: chained updates on a shifted/scaled response
// must still match a full re-assembly at those constants.
func TestSparseUpdateNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	xs := make([][]float64, 40)
	ys := make([]float64, 40)
	for i := range xs {
		xs[i], ys[i] = synthPoint(rng)
		ys[i] = 100*ys[i] + 500
	}
	model, err := FitSparse(SparseConfig{
		Kernel: kernel.NewRBF(0.8, 1.2), Noise: 0.1, Inducing: 10, Normalize: true,
	}, mat.NewFromRows(xs[:30]), ys[:30], rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 30; i < 40; i++ {
		if model, err = model.UpdateWithPoint(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	ref := sparseReassemble(t, model)
	p, q := model.Predict(xs[0]), ref.Predict(xs[0])
	if d := math.Abs(p.Mean - q.Mean); d > 1e-8*(1+math.Abs(q.Mean)) {
		t.Fatalf("normalized |Δmean| = %g", d)
	}
	if p.Mean < 300 || p.Mean > 700 {
		t.Fatalf("prediction lost the response scale: %+v", p)
	}
}

// trapKernel returns +Inf from Eval for a bounded number of calls after
// arming, then delegates — a deterministic way to hand UpdateWithPoint a
// k(U, x) vector that degenerates the rank-one factor update.
type trapKernel struct {
	kernel.Kernel
	armed int
}

func (k *trapKernel) Eval(a, b []float64) float64 {
	if k.armed > 0 {
		k.armed--
		return math.Inf(1)
	}
	return k.Kernel.Eval(a, b)
}

// TestSparseUpdateFallback forces the degenerate rank-one branch: a
// non-finite k(U, x) corrupts the updated factor diagonal, which must
// trigger the full re-assembly fallback (counted by gp.sparse.update.refit)
// rather than an error — mirroring the dense degenerate-pivot contract.
func TestSparseUpdateFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	x, y := sinData(rng, 40, 0.01)
	tk := &trapKernel{Kernel: kernel.NewRBF(1, 1)}
	model, err := FitSparse(SparseConfig{
		Kernel: tk, Noise: 0.1, Inducing: 8, GrowRadius: -1, // never grow: stay on the rank-one path
	}, x, y, rng)
	if err != nil {
		t.Fatal(err)
	}
	before := sparseRefit.Value()
	tk.armed = model.NumInducing() // poison exactly the k(U, x) evaluations
	upd, err := model.UpdateWithPoint([]float64{2.5}, 0.6)
	if err != nil {
		t.Fatalf("degenerate update should fall back, not fail: %v", err)
	}
	if sparseRefit.Value() == before {
		t.Fatal("expected the full-refit fallback to fire")
	}
	if tk.armed != 0 {
		t.Fatalf("trap kernel still armed for %d calls; update evaluated fewer than m pairs", tk.armed)
	}
	if upd.NumTrain() != model.NumTrain()+1 {
		t.Fatalf("fallback model has %d points, want %d", upd.NumTrain(), model.NumTrain()+1)
	}
	p := upd.Predict([]float64{1})
	if math.IsNaN(p.Mean) || math.IsNaN(p.SD) {
		t.Fatalf("NaN prediction after fallback: %+v", p)
	}
	// The receiver must be untouched by the failed rank-one attempt.
	q := model.Predict([]float64{1})
	if math.IsNaN(q.Mean) || math.IsNaN(q.SD) {
		t.Fatalf("fallback disturbed the receiver: %+v", q)
	}
}

// TestSparseConcurrentReadsDuringUpdate pins the immutable-snapshot
// concurrency contract documented in doc.go: Predict/PredictBatch on a
// fitted snapshot may race UpdateWithPoint on another goroutine, the old
// snapshot keeps answering bit-identically, and every new snapshot is
// immediately safe to read. Run under -race this is the sparse mirror of
// the scorer-pool race tests in internal/al.
func TestSparseConcurrentReadsDuringUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	x, y := sinData(rng, 80, 0.05)
	model, err := FitSparse(SparseConfig{
		Kernel: kernel.NewRBF(1, 1), Noise: 0.1, Inducing: 16,
	}, x, y, rng)
	if err != nil {
		t.Fatal(err)
	}
	grid := mat.New(40, 1)
	for i := 0; i < grid.Rows(); i++ {
		grid.Set(i, 0, 6*float64(i)/float64(grid.Rows()-1))
	}
	want := model.PredictBatch(grid)

	var latest atomic.Pointer[SparseGP]
	latest.Store(model)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				got := model.PredictBatch(grid)
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("original snapshot diverged at %d under concurrent updates", i)
						return
					}
				}
				p := latest.Load().Predict(grid.RawRow(0))
				if math.IsNaN(p.Mean) || math.IsNaN(p.SD) {
					t.Errorf("latest snapshot predicts NaN: %+v", p)
					return
				}
			}
		}()
	}

	cur := model
	for i := 0; i < 60; i++ {
		xv := 6 * rng.Float64()
		upd, err := cur.UpdateWithPoint([]float64{xv}, math.Sin(xv)+0.05*rng.NormFloat64())
		if err != nil {
			close(done)
			wg.Wait()
			t.Fatalf("update %d: %v", i, err)
		}
		cur = upd
		latest.Store(cur)
	}
	close(done)
	wg.Wait()
}
