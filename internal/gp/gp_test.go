package gp

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/optimize"
)

func col(xs ...float64) *mat.Dense {
	m := mat.New(len(xs), 1)
	for i, x := range xs {
		m.Set(i, 0, x)
	}
	return m
}

func fitBasic(t *testing.T, x *mat.Dense, y []float64, opt bool) *GP {
	t.Helper()
	cfg := Config{
		Kernel:     kernel.NewRBF(1, 1),
		NoiseInit:  0.1,
		NoiseFloor: 1e-4,
		Optimize:   opt,
		Restarts:   3,
	}
	g, err := Fit(cfg, x, y, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(Config{}, col(1), []float64{1}, nil); err == nil {
		t.Fatal("expected error without kernel")
	}
	cfg := Config{Kernel: kernel.NewRBF(1, 1)}
	if _, err := Fit(cfg, nil, nil, nil); !errors.Is(err, ErrNoData) {
		t.Fatalf("err = %v, want ErrNoData", err)
	}
	if _, err := Fit(cfg, col(1, 2), []float64{1}, nil); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

// A GP must interpolate near-noiselessly observed data when the noise is
// small.
func TestInterpolation(t *testing.T) {
	x := col(0, 1, 2, 3, 4)
	y := []float64{0, 0.8, 0.9, 0.1, -0.8} // roughly sin(x)
	cfg := Config{
		Kernel:     kernel.NewRBF(1, 1),
		NoiseInit:  1e-4,
		NoiseFloor: 1e-6,
		FixedNoise: true,
	}
	g, err := Fit(cfg, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < x.Rows(); i++ {
		p := g.Predict(x.RawRow(i))
		if math.Abs(p.Mean-y[i]) > 1e-2 {
			t.Fatalf("mean at training point %d = %g, want %g", i, p.Mean, y[i])
		}
		if p.SD > 0.05 {
			t.Fatalf("SD at training point %d = %g, too large", i, p.SD)
		}
	}
}

// Predictive SD must grow away from the data — the property AL exploits.
func TestUncertaintyGrowsAwayFromData(t *testing.T) {
	g := fitBasic(t, col(0, 1, 2), []float64{0, 1, 0}, false)
	sdAt := func(x float64) float64 { return g.Predict([]float64{x}).SD }
	if !(sdAt(10) > sdAt(2.5) && sdAt(2.5) > sdAt(1)) {
		t.Fatalf("SD not increasing away from data: %g %g %g", sdAt(1), sdAt(2.5), sdAt(10))
	}
	// Far from data, SD approaches the prior amplitude.
	far := sdAt(100)
	prior := math.Sqrt(g.Kernel().Eval([]float64{100}, []float64{100}))
	if math.Abs(far-prior)/prior > 0.05 {
		t.Fatalf("far-field SD %g should approach prior %g", far, prior)
	}
}

// The posterior mean must revert to the prior mean (0, or the data mean
// when normalizing) far from observations.
func TestMeanReversion(t *testing.T) {
	g := fitBasic(t, col(0, 1), []float64{5, 6}, false)
	if m := g.Predict([]float64{100}).Mean; math.Abs(m) > 1e-6 {
		t.Fatalf("unnormalized far mean = %g, want ~0", m)
	}
	cfg := Config{Kernel: kernel.NewRBF(1, 1), NoiseInit: 0.1, Normalize: true}
	gn, err := Fit(cfg, col(0, 1), []float64{5, 6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m := gn.Predict([]float64{100}).Mean; math.Abs(m-5.5) > 1e-6 {
		t.Fatalf("normalized far mean = %g, want 5.5", m)
	}
}

// Exactness check against hand-computed 1-point GPR:
// with one observation (x0, y0), μ(x) = k(x,x0)/(k(x0,x0)+σn²)·y0.
func TestSinglePointClosedForm(t *testing.T) {
	k := kernel.NewRBF(1, 1)
	sn := 0.5
	cfg := Config{Kernel: k, NoiseInit: sn, FixedNoise: true}
	g, err := Fit(cfg, col(2), []float64{3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	xq := []float64{2.7}
	kxx := k.Eval([]float64{2}, []float64{2})
	kq := k.Eval(xq, []float64{2})
	wantMean := kq / (kxx + sn*sn) * 3
	wantVar := k.Eval(xq, xq) - kq*kq/(kxx+sn*sn)
	p := g.Predict(xq)
	if math.Abs(p.Mean-wantMean) > 1e-10 {
		t.Fatalf("mean = %g, want %g", p.Mean, wantMean)
	}
	if math.Abs(p.SD-math.Sqrt(wantVar)) > 1e-10 {
		t.Fatalf("SD = %g, want %g", p.SD, math.Sqrt(wantVar))
	}
}

// The LML gradient must match finite differences — this is what makes
// hyperparameter fitting trustworthy.
func TestLMLGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 12
	x := mat.New(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.NormFloat64())
		x.Set(i, 1, rng.NormFloat64())
		y[i] = math.Sin(x.At(i, 0)) + 0.3*rng.NormFloat64()
	}
	cfg := Config{Kernel: kernel.NewRBF(0.8, 1.2), NoiseInit: 0.3}
	g, err := Fit(cfg, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	theta := g.hyperVector()
	rel := optimize.CheckGradient(g.negLML, theta, 1e-6)
	if rel > 1e-4 {
		t.Fatalf("LML gradient relative error %g", rel)
	}
}

func TestLMLGradientFixedNoise(t *testing.T) {
	x := col(0, 0.7, 1.9, 3.1)
	y := []float64{0, 1, 0.5, -0.2}
	cfg := Config{Kernel: kernel.NewMatern52(1, 1), NoiseInit: 0.2, FixedNoise: true}
	g, err := Fit(cfg, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	rel := optimize.CheckGradient(g.negLML, g.hyperVector(), 1e-6)
	if rel > 1e-4 {
		t.Fatalf("fixed-noise LML gradient relative error %g", rel)
	}
}

// Optimizing hyperparameters must not decrease the LML.
func TestOptimizeImprovesLML(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 25
	x := mat.New(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		xv := float64(i) * 0.4
		x.Set(i, 0, xv)
		y[i] = math.Sin(xv) + 0.1*rng.NormFloat64()
	}
	mk := func(opt bool) *GP {
		cfg := Config{
			Kernel:     kernel.NewRBF(3, 0.2), // deliberately bad start
			NoiseInit:  1.0,
			NoiseFloor: 1e-3,
			Optimize:   opt,
			Restarts:   3,
		}
		g, err := Fit(cfg, x, y, rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	if lmlOpt, lml0 := mk(true).LML(), mk(false).LML(); lmlOpt < lml0 {
		t.Fatalf("optimization decreased LML: %g < %g", lmlOpt, lml0)
	}
}

// Fitted GP on clean sin data must predict well between training points.
func TestPredictionAccuracySin(t *testing.T) {
	n := 20
	x := mat.New(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		xv := float64(i) * 2 * math.Pi / float64(n-1)
		x.Set(i, 0, xv)
		y[i] = math.Sin(xv)
	}
	cfg := Config{
		Kernel:     kernel.NewRBF(1, 1),
		NoiseInit:  1e-2,
		NoiseFloor: 1e-6,
		Optimize:   true,
		Restarts:   2,
	}
	g, err := Fit(cfg, x, y, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for xv := 0.3; xv < 6; xv += 0.37 {
		p := g.Predict([]float64{xv})
		if math.Abs(p.Mean-math.Sin(xv)) > 0.05 {
			t.Fatalf("at %g: mean %g vs sin %g", xv, p.Mean, math.Sin(xv))
		}
	}
}

// Noise floor semantics (Fig. 7): with aligned few points and a tiny
// floor, the fitted σn collapses; with floor 0.1 it cannot.
func TestNoiseFloorPreventsCollapse(t *testing.T) {
	// Perfectly linear points: a flexible GP can fit them exactly.
	x := col(0, 1, 2, 3)
	y := []float64{0, 1, 2, 3}
	fit := func(floor float64) float64 {
		cfg := Config{
			Kernel:     kernel.NewRBF(1, 1),
			NoiseInit:  0.1,
			NoiseFloor: floor,
			Optimize:   true,
			Restarts:   4,
		}
		g, err := Fit(cfg, x, y, rand.New(rand.NewSource(4)))
		if err != nil {
			t.Fatal(err)
		}
		return g.Noise()
	}
	low := fit(1e-8)
	high := fit(1e-1)
	if high < 0.1-1e-9 {
		t.Fatalf("floored σn = %g violates floor", high)
	}
	if low > high {
		t.Fatalf("σn with tiny floor (%g) should be below floored fit (%g)", low, high)
	}
}

func TestDynamicNoiseFloor(t *testing.T) {
	if got := DynamicNoiseFloor(1, 4); got != 0.5 {
		t.Fatalf("DynamicNoiseFloor(1,4) = %g", got)
	}
	if got := DynamicNoiseFloor(2, 1); got != 2 {
		t.Fatalf("DynamicNoiseFloor(2,1) = %g", got)
	}
	// Degenerate arguments fall back safely.
	if got := DynamicNoiseFloor(0, 0); got != 1 {
		t.Fatalf("DynamicNoiseFloor(0,0) = %g", got)
	}
	// Monotone decreasing in n.
	prev := math.Inf(1)
	for n := 1; n < 100; n *= 2 {
		v := DynamicNoiseFloor(1, n)
		if v >= prev {
			t.Fatalf("not decreasing at n=%d", n)
		}
		prev = v
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	g := fitBasic(t, col(0, 1, 2, 3), []float64{0, 1, 4, 9}, true)
	xs := col(0.5, 1.5, 2.5, 7)
	batch := g.PredictBatch(xs)
	for i := 0; i < xs.Rows(); i++ {
		single := g.Predict(xs.RawRow(i))
		if math.Abs(batch[i].Mean-single.Mean) > 1e-12 || math.Abs(batch[i].SD-single.SD) > 1e-12 {
			t.Fatalf("batch[%d] = %+v, single = %+v", i, batch[i], single)
		}
	}
	ms, sds := Means(batch), SDs(batch)
	if len(ms) != 4 || len(sds) != 4 {
		t.Fatal("Means/SDs lengths")
	}
	if ms[0] != batch[0].Mean || sds[0] != batch[0].SD {
		t.Fatal("Means/SDs extraction wrong")
	}
}

func TestPredictNoisyAddsVariance(t *testing.T) {
	g := fitBasic(t, col(0, 1, 2), []float64{1, 2, 3}, false)
	p := g.Predict([]float64{1})
	pn := g.PredictNoisy([]float64{1})
	if pn.SD <= p.SD {
		t.Fatalf("noisy SD %g should exceed latent SD %g", pn.SD, p.SD)
	}
	want := math.Sqrt(p.SD*p.SD + g.Noise()*g.Noise())
	if math.Abs(pn.SD-want) > 1e-12 {
		t.Fatalf("noisy SD = %g, want %g", pn.SD, want)
	}
}

func TestCI(t *testing.T) {
	p := Prediction{Mean: 10, SD: 2}
	lo, hi := p.CI(2)
	if lo != 6 || hi != 14 {
		t.Fatalf("CI = %g, %g", lo, hi)
	}
}

func TestRepeatedMeasurementsRaiseNoise(t *testing.T) {
	// Same x with scattered y forces the model to attribute variance
	// to noise — the "multiple y for the same x" requirement (§III).
	x := col(1, 1, 1, 2, 2, 2)
	y := []float64{0.5, 1.5, 1.0, 2.4, 1.6, 2.0}
	cfg := Config{
		Kernel:     kernel.NewRBF(1, 1),
		NoiseInit:  0.05,
		NoiseFloor: 1e-6,
		Optimize:   true,
		Restarts:   4,
	}
	g, err := Fit(cfg, x, y, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if g.Noise() < 0.1 {
		t.Fatalf("σn = %g; repeated noisy measurements should raise it", g.Noise())
	}
	// The predictive mean at x=1 should be near the group mean 1.0.
	if m := g.Predict([]float64{1}).Mean; math.Abs(m-1.0) > 0.3 {
		t.Fatalf("mean at repeated point = %g, want ≈1.0", m)
	}
}

func TestLMLGridAndPeak(t *testing.T) {
	g := fitBasic(t, col(0, 1, 2, 3, 4), []float64{0, 1, 0, -1, 0}, true)
	names := g.HyperNames()
	if len(names) != 3 { // log_l, log_sf, log_sn
		t.Fatalf("HyperNames = %v", names)
	}
	la := Linspace(-2, 2, 9)
	lb := Linspace(-3, 0, 7)
	z := g.LMLGrid(0, 2, la, lb) // l vs σn, as in Fig. 4
	if len(z) != 9 || len(z[0]) != 7 {
		t.Fatalf("grid shape %dx%d", len(z), len(z[0]))
	}
	i, j, v := GridPeak(z)
	if v < z[0][0] || i < 0 || j < 0 {
		t.Fatal("GridPeak wrong")
	}
	// The grid peak cannot exceed the optimized LML by much (optimizer
	// should have found at least a nearby optimum).
	if v > g.LML()+math.Abs(g.LML())*0.5+1 {
		t.Fatalf("grid peak %g much better than fitted LML %g — optimizer failed", v, g.LML())
	}
}

func TestLMLGridBadIndicesPanic(t *testing.T) {
	g := fitBasic(t, col(0, 1), []float64{0, 1}, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.LMLGrid(0, 0, []float64{0}, []float64{0})
}

func TestLinspace(t *testing.T) {
	v := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(v[i]-want[i]) > 1e-15 {
			t.Fatalf("Linspace = %v", v)
		}
	}
	if len(Linspace(3, 9, 1)) != 1 {
		t.Fatal("n<2 should return single value")
	}
}

func TestPredictDimMismatchPanics(t *testing.T) {
	g := fitBasic(t, col(0, 1), []float64{0, 1}, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Predict([]float64{0, 0})
}

func TestAccessors(t *testing.T) {
	g := fitBasic(t, col(0, 1, 2), []float64{0, 1, 2}, false)
	if g.NumTrain() != 3 {
		t.Fatalf("NumTrain = %d", g.NumTrain())
	}
	if g.TrainX().Rows() != 3 {
		t.Fatal("TrainX")
	}
	if g.Jitter() < 0 {
		t.Fatal("negative jitter")
	}
	if len(g.Hyper()) != 3 {
		t.Fatalf("Hyper = %v", g.Hyper())
	}
}

// Training data is copied: mutating the caller's matrix afterwards must not
// change predictions.
func TestFitCopiesData(t *testing.T) {
	x := col(0, 1, 2)
	y := []float64{0, 1, 2}
	g := fitBasic(t, x, y, false)
	before := g.Predict([]float64{0.5}).Mean
	x.Set(0, 0, 99)
	y[0] = -99
	after := g.Predict([]float64{0.5}).Mean
	if before != after {
		t.Fatal("GP aliases caller data")
	}
}

func BenchmarkFitOptimized100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 100
	x := mat.New(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.Float64()*10)
		x.Set(i, 1, rng.Float64()*10)
		y[i] = math.Sin(x.At(i, 0)) * math.Cos(x.At(i, 1))
	}
	cfg := Config{Kernel: kernel.NewRBF(1, 1), NoiseInit: 0.1, Optimize: true, Restarts: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(cfg, x, y, rand.New(rand.NewSource(2))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict500(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 500
	x := mat.New(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.Float64())
		x.Set(i, 1, rng.Float64())
		y[i] = rng.NormFloat64()
	}
	cfg := Config{Kernel: kernel.NewRBF(1, 1), NoiseInit: 0.1}
	g, err := Fit(cfg, x, y, nil)
	if err != nil {
		b.Fatal(err)
	}
	q := []float64{0.5, 0.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Predict(q)
	}
}
