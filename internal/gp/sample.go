package gp

import (
	"fmt"
	"math/rand"

	"repro/internal/kernel"
	"repro/internal/mat"
)

// PosteriorSample draws one joint sample of the latent function at the
// rows of xs from the GP posterior: f ~ N(μ, Σ) with
//
//	μ = K*ᵀ Ky⁻¹ y,   Σ = K** − K*ᵀ Ky⁻¹ K*
//
// realized as μ + L z for the Cholesky factor L of Σ (jitter-stabilized)
// and z ~ N(0, I). Joint samples respect the covariance *between*
// candidate points, which marginal Predict calls cannot express; they
// back posterior-sampling AL strategies and visual posterior envelopes.
func (g *GP) PosteriorSample(xs *mat.Dense, rng *rand.Rand) ([]float64, error) {
	if xs.Cols() != g.x.Cols() {
		return nil, fmt.Errorf("gp: PosteriorSample dim %d, model trained on %d", xs.Cols(), g.x.Cols())
	}
	if rng == nil {
		return nil, fmt.Errorf("gp: PosteriorSample requires rng")
	}
	m := xs.Rows()
	kstar := kernel.CrossMatrix(g.kern, xs, g.x) // m×n
	kss := kernel.Matrix(g.kern, xs)             // m×m

	// μ = K* α.
	mu := kstar.MulVec(g.alpha)

	// Σ = K** − V Vᵀ with V = K* L⁻ᵀ, i.e. Vᵀ = L⁻¹ K*ᵀ.
	vT := g.chol.ForwardSubstMat(kstar.T()) // n×m
	kss.Sub(mat.SyrkT(vT))
	kss.Symmetrize()

	chS, _, err := mat.NewCholeskyJitter(kss, 1e-10, 25)
	if err != nil {
		return nil, fmt.Errorf("gp: posterior covariance factorization: %w", err)
	}
	z := make(mat.Vec, m)
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	lz := chS.L().MulVec(z)
	out := make([]float64, m)
	for i := 0; i < m; i++ {
		out[i] = g.yMean + g.yStd*(mu[i]+lz[i])
	}
	return out, nil
}
