package gp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"

	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/obs"
)

// Fit/refit metrics (see OBSERVABILITY.md): spans cover whole fits and
// the hyperparameter search inside them; the counters below tally the
// cheap high-frequency operations a span per call would distort.
var (
	lmlEvals       = obs.C("gp.lml.evals")
	conditionOps   = obs.C("gp.condition.ops")
	predictBatches = obs.C("gp.predict.batches")
	predictPoints  = obs.C("gp.predict.points")
)

// Default noise bounds (standard deviations, not variances).
const (
	DefaultNoiseFloor = 1e-8
	DefaultNoiseCeil  = 1e3
)

// Config controls model construction and hyperparameter fitting.
type Config struct {
	// Kernel is the covariance function; required. The GP mutates its
	// hyperparameters during fitting.
	Kernel kernel.Kernel

	// NoiseInit is the initial noise standard deviation σn
	// (default 0.1).
	NoiseInit float64

	// NoiseFloor is the lower bound for σn during optimization
	// (default DefaultNoiseFloor). Raising it to ~1e-1 reproduces the
	// paper's overfitting fix (Fig. 7b).
	NoiseFloor float64

	// NoiseCeil is the upper bound for σn (default DefaultNoiseCeil).
	NoiseCeil float64

	// FixedNoise, when true, keeps σn at NoiseInit instead of
	// optimizing it.
	FixedNoise bool

	// Optimize enables hyperparameter fitting by LML gradient ascent
	// (Eq. 13). When false the kernel is used as configured.
	Optimize bool

	// Restarts is the number of additional random optimizer starts
	// (default 4), mirroring scikit-learn's n_restarts_optimizer.
	Restarts int

	// Normalize standardizes y to zero mean and unit variance before
	// fitting; predictions are transformed back. Noise bounds then
	// apply in the normalized space.
	Normalize bool

	// Jitter is the base diagonal jitter used when the covariance
	// matrix is numerically indefinite (default 1e-10, grown 10x per
	// retry).
	Jitter float64

	// PointNoiseVar, when non-nil, adds per-observation noise variances
	// to the covariance diagonal on top of σn² — heteroscedastic
	// regression. This realizes the paper's §V-A proposal: experiments
	// backed by physical power meters enter the model with higher
	// confidence than IPMI-derived estimates, which carry extra
	// variance. Length must equal the number of observations; values
	// are in the (normalized, when Normalize is set) response units
	// squared.
	PointNoiseVar []float64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.NoiseInit <= 0 {
		out.NoiseInit = 0.1
	}
	if out.NoiseFloor <= 0 {
		out.NoiseFloor = DefaultNoiseFloor
	}
	if out.NoiseCeil <= 0 {
		out.NoiseCeil = DefaultNoiseCeil
	}
	if out.NoiseFloor > out.NoiseCeil {
		out.NoiseFloor, out.NoiseCeil = out.NoiseCeil, out.NoiseFloor
	}
	if out.Restarts < 0 {
		out.Restarts = 0
	} else if out.Restarts == 0 {
		out.Restarts = 4
	}
	if out.Jitter <= 0 {
		out.Jitter = 1e-10
	}
	return out
}

// GP is a fitted Gaussian process regressor.
type GP struct {
	cfg  Config
	kern kernel.Kernel

	x *mat.Dense // training inputs, one point per row
	y mat.Vec    // training targets in model space (possibly normalized)

	yMean, yStd float64 // normalization constants (0, 1 when disabled)

	logSN float64 // log noise standard deviation

	chol   *mat.TriPacked // factor of Ky = K + σn² I (plus any jitter), packed
	alpha  mat.Vec        // Ky⁻¹ y
	lml    float64        // log marginal likelihood at the fitted hypers
	jitter float64        // jitter actually added to make Ky PD
}

// ErrNoData is returned when Fit is called without observations.
var ErrNoData = errors.New("gp: no training data")

// Fit builds a GP from inputs x (one point per row) and targets y,
// optimizing hyperparameters when cfg.Optimize is set. rng seeds the
// optimizer restarts and may be nil when Optimize is false or Restarts is 0.
func Fit(cfg Config, x *mat.Dense, y []float64, rng *rand.Rand) (*GP, error) {
	return FitCtx(context.Background(), cfg, x, y, rng)
}

// FitCtx is Fit with a context used only for observability: the fit's
// "gp.fit" span nests under any span already carried by ctx (e.g. the
// AL loop's "al.model.update"). ctx does not cancel the fit.
func FitCtx(ctx context.Context, cfg Config, x *mat.Dense, y []float64, rng *rand.Rand) (*GP, error) {
	ctx, span := obs.Start(ctx, "gp.fit")
	defer span.End()
	if x != nil {
		span.SetAttr("n", x.Rows())
	}
	g, err := buildGP(cfg, x, y)
	if err != nil {
		return nil, err
	}
	if g.cfg.Optimize {
		if err := g.optimizeHypers(ctx, rng); err != nil {
			return nil, err
		}
	}
	if err := g.factorize(); err != nil {
		return nil, err
	}
	return g, nil
}

// FitAtHypers builds a GP at an exact, previously fitted hyperparameter
// state — kernel log-hyperparameters plus log σn — without optimization
// or the log/exp clamping round trip of Fit. This is the
// checkpoint-resume and degradation-chain path: given the same data and
// the state captured from a fitted model (Kernel().Hyper(), LogNoise()),
// it reproduces that model's factorization bit for bit.
func FitAtHypers(cfg Config, x *mat.Dense, y []float64, kernelHyper []float64, logSN float64) (*GP, error) {
	cfg.Optimize = false
	g, err := buildGP(cfg, x, y)
	if err != nil {
		return nil, err
	}
	g.kern.SetHyper(kernelHyper)
	g.logSN = logSN
	if err := g.factorize(); err != nil {
		return nil, err
	}
	return g, nil
}

// buildGP validates inputs and assembles the unfitted model state shared
// by FitCtx and FitAtHypers: cloned inputs, (optionally normalized)
// targets, and the initial noise level.
func buildGP(cfg Config, x *mat.Dense, y []float64) (*GP, error) {
	if cfg.Kernel == nil {
		return nil, errors.New("gp: Config.Kernel is required")
	}
	if x == nil || x.Rows() == 0 {
		return nil, ErrNoData
	}
	if x.Rows() != len(y) {
		return nil, fmt.Errorf("gp: %d inputs but %d targets", x.Rows(), len(y))
	}
	if cfg.PointNoiseVar != nil && len(cfg.PointNoiseVar) != x.Rows() {
		return nil, fmt.Errorf("gp: %d per-point noise variances for %d observations",
			len(cfg.PointNoiseVar), x.Rows())
	}
	for _, v := range cfg.PointNoiseVar {
		if v < 0 || math.IsNaN(v) {
			return nil, fmt.Errorf("gp: negative or NaN per-point noise variance %g", v)
		}
	}
	c := cfg.withDefaults()
	g := &GP{cfg: c, kern: c.Kernel, x: x.Clone(), yMean: 0, yStd: 1}
	ys := append(mat.Vec(nil), y...)
	if c.Normalize {
		g.yMean = mean(ys)
		g.yStd = stddev(ys, g.yMean)
		if g.yStd <= 0 || math.IsNaN(g.yStd) {
			g.yStd = 1
		}
		for i := range ys {
			ys[i] = (ys[i] - g.yMean) / g.yStd
		}
	}
	g.y = ys
	g.logSN = math.Log(clamp(c.NoiseInit, c.NoiseFloor, c.NoiseCeil))
	return g, nil
}

// Noise returns the fitted noise standard deviation σn (in model space:
// normalized units when cfg.Normalize is set).
func (g *GP) Noise() float64 { return math.Exp(g.logSN) }

// LogNoise returns log σn exactly as stored, for checkpointing: feeding
// it back through FitAtHypers reproduces the model without the
// exp(log(·)) rounding a Noise()/NoiseInit round trip would introduce.
func (g *GP) LogNoise() float64 { return g.logSN }

// ObservationNoise returns σn in the original response units (identical
// to Noise unless cfg.Normalize rescaled the targets).
func (g *GP) ObservationNoise() float64 { return g.yStd * math.Exp(g.logSN) }

// Kernel returns the (fitted) kernel; mutating it invalidates the GP.
func (g *GP) Kernel() kernel.Kernel { return g.kern }

// LML returns the log marginal likelihood at the fitted hyperparameters.
func (g *GP) LML() float64 { return g.lml }

// Jitter returns the diagonal jitter that was required to factorize Ky,
// zero in the common case.
func (g *GP) Jitter() float64 { return g.jitter }

// NumTrain returns the number of training points.
func (g *GP) NumTrain() int { return g.x.Rows() }

// TrainX returns the training inputs (aliased; do not mutate).
func (g *GP) TrainX() *mat.Dense { return g.x }

// cholesky picks the factorization kernel: the goroutine-parallel blocked
// algorithm for large systems on multicore machines, the plain kernel
// otherwise.
func cholesky(a *mat.Dense) (*mat.Cholesky, error) {
	if a.Rows() >= 256 && runtime.GOMAXPROCS(0) > 2 {
		return mat.NewCholeskyParallel(a, 0)
	}
	return mat.NewCholesky(a)
}

// factorize computes Ky = K + σn² I, its Cholesky factor, α = Ky⁻¹y and
// the LML at the current hyperparameters.
func (g *GP) factorize() error {
	n := g.x.Rows()
	ky := kernel.Matrix(g.kern, g.x)
	sn2 := math.Exp(2 * g.logSN)
	ky.AddDiag(sn2)
	g.addPointNoise(ky)
	ch, jit, err := choleskyJitter(ky, g.cfg.Jitter)
	if err != nil {
		return fmt.Errorf("gp: covariance factorization failed: %w", err)
	}
	// The factor is stored packed: half the resident memory per model
	// snapshot, and half the clone cost of every bordered Extended
	// update in the incremental conditioning path.
	g.chol = mat.PackCholesky(ch)
	g.jitter = jit
	g.alpha = ch.SolveVec(g.y)
	g.lml = -0.5*mat.Dot(g.y, g.alpha) - 0.5*ch.LogDet() - 0.5*float64(n)*math.Log(2*math.Pi)
	return nil
}

// addPointNoise adds the heteroscedastic per-observation variances to the
// covariance diagonal. Only the first min(n, len) entries apply, so a GP
// conditioned on extra observations treats them as homoscedastic.
func (g *GP) addPointNoise(ky *mat.Dense) {
	for i, v := range g.cfg.PointNoiseVar {
		if i >= ky.Rows() {
			break
		}
		ky.Set(i, i, ky.At(i, i)+v)
	}
}

// choleskyJitter mirrors mat.NewCholeskyJitter but routes through the
// adaptive factorization kernel.
func choleskyJitter(a *mat.Dense, initial float64) (*mat.Cholesky, float64, error) {
	ch, err := cholesky(a)
	if err == nil {
		return ch, 0, nil
	}
	jitter := initial
	if jitter <= 0 {
		jitter = 1e-10
	}
	for try := 0; try < 25; try++ {
		b := a.Clone()
		b.AddDiag(jitter)
		ch, err = cholesky(b)
		if err == nil {
			return ch, jitter, nil
		}
		jitter *= 10
	}
	return nil, jitter, fmt.Errorf("gp: factorization failed after jitter retries: %w", err)
}

// DynamicNoiseFloor implements the paper's proposed adaptive restriction
// σn ≥ c/√N (§V-B4), where n is the current number of observations. The
// floor relaxes as evidence accumulates.
func DynamicNoiseFloor(c float64, n int) float64 {
	if c <= 0 {
		c = 1
	}
	if n < 1 {
		n = 1
	}
	return c / math.Sqrt(float64(n))
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func mean(v mat.Vec) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func stddev(v mat.Vec, m float64) float64 {
	if len(v) < 2 {
		return 1
	}
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(v)))
}
