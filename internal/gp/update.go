package gp

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/obs"
)

// Incremental-conditioning metrics (see OBSERVABILITY.md): the AL loop's
// model updates are either O(n²) factor extensions or O(n³) refits; the
// ratio of these two counters is the speedup story of the incremental
// path.
var (
	updateIncremental = obs.C("gp.update.incremental")
	updateRefit       = obs.C("gp.update.refit")
)

// UpdateWithPoint returns a new GP incorporating one additional
// observation (x, y) at the current hyperparameters. The cached Cholesky
// factor is extended with a bordered O(n²) update and α = Ky⁻¹y is
// recomputed with two triangular solves, so the whole update costs O(n²)
// instead of the O(n³) of a fresh Fit. When the bordered pivot is not
// positive — a numerically degenerate border, e.g. a revisited point
// under a tiny noise floor — it falls back to a full refactorization at
// unchanged hyperparameters, still avoiding hyperparameter
// re-optimization.
//
// Hyperparameters, normalization constants and jitter are inherited from
// the receiver, so a chain of updates is exact only relative to those
// constants: re-fit (with Optimize) periodically when they should track
// the growing dataset. The receiver is not modified and remains usable.
func (g *GP) UpdateWithPoint(x []float64, y float64) (*GP, error) {
	if len(x) != g.x.Cols() {
		return nil, fmt.Errorf("gp: UpdateWithPoint dim %d, model trained on %d", len(x), g.x.Cols())
	}
	conditionOps.Inc()
	n := g.x.Rows()

	// Border of the covariance matrix: b_i = k(x, x_i), c = k(x,x)+σn².
	border := make(mat.Vec, n)
	for i := 0; i < n; i++ {
		border[i] = g.kern.Eval(x, g.x.RawRow(i))
	}
	diag := g.kern.Eval(x, x) + math.Exp(2*g.logSN) + g.jitter

	nx := mat.New(n+1, g.x.Cols())
	for i := 0; i < n; i++ {
		copy(nx.RawRow(i), g.x.RawRow(i))
	}
	copy(nx.RawRow(n), x)
	ny := append(g.y.Clone(), (y-g.yMean)/g.yStd)

	out := &GP{
		cfg:    g.cfg,
		kern:   g.kern,
		x:      nx,
		y:      ny,
		yMean:  g.yMean,
		yStd:   g.yStd,
		logSN:  g.logSN,
		jitter: g.jitter,
	}

	ext, err := g.chol.Extended(border, diag)
	if err != nil {
		// Degenerate border: refactorize from scratch at the same
		// hyperparameters (jitter retries included) rather than failing
		// the AL iteration.
		updateRefit.Inc()
		if ferr := out.factorize(); ferr != nil {
			return nil, fmt.Errorf("gp: incremental update and refit both failed: %w", ferr)
		}
		return out, nil
	}
	updateIncremental.Inc()
	out.chol = ext
	out.alpha = ext.SolveVec(ny)
	out.lml = -0.5*mat.Dot(ny, out.alpha) - 0.5*ext.LogDet() -
		0.5*float64(n+1)*math.Log(2*math.Pi)
	return out, nil
}
