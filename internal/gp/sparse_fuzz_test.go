package gp

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/kernel"
	"repro/internal/mat"
)

// encFloats packs float64s little-endian — the raw byte stream the fuzzer
// mutates into training data.
func encFloats(vals ...float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// FuzzFitSparse feeds adversarial training sets to FitSparse: duplicate
// rows, m > n, NaN/±Inf coordinates and targets, zero-variance responses,
// extreme magnitudes. The contract is the one FuzzPersistRoundTrip pins
// for Load: reject with an error or return a model whose predictions are
// never NaN — and never panic. Accepted models must also survive a
// duplicate-point UpdateWithPoint without panicking.
func FuzzFitSparse(f *testing.F) {
	// Duplicate rows.
	f.Add(uint8(5), uint8(1), 3, 0.1, false, encFloats(0, 0, 1, 1, 2, 1, 1, 2, 2, 3))
	// m > n: the inducing count must clamp to n.
	f.Add(uint8(3), uint8(2), 99, 0.05, true, encFloats(0, 0, 1, 0, 0, 1, 1, 2, 3))
	// Non-finite coordinates and targets.
	f.Add(uint8(4), uint8(1), 2, 0.1, false, encFloats(math.NaN(), 1, 2, 3, 4, 5, 6, 7))
	f.Add(uint8(4), uint8(1), 2, 0.1, false, encFloats(0, 1, 2, 3, math.Inf(1), 5, 6, 7))
	f.Add(uint8(4), uint8(1), 2, 0.1, false, encFloats(0, math.Inf(-1), 2, 3, 4, 5, 6, 7))
	// Zero-variance response under normalization (yStd = 0 fallback).
	f.Add(uint8(6), uint8(1), 4, 0.1, true, encFloats(0, 1, 2, 3, 4, 5, 7, 7, 7, 7, 7, 7))
	// Extreme magnitudes and a non-positive noise (default kicks in).
	f.Add(uint8(2), uint8(1), 2, -1.0, false, encFloats(1e300, -1e300, 1e308, -1e308))
	f.Add(uint8(8), uint8(3), 0, 1e-300, false, []byte{})

	f.Fuzz(func(t *testing.T, rows, cols uint8, m int, noise float64, normalize bool, raw []byte) {
		n := int(rows)%24 + 1
		d := int(cols)%3 + 1
		vals := make([]float64, n*d+n)
		for i := range vals {
			var bits uint64
			for b := 0; b < 8; b++ {
				if idx := i*8 + b; idx < len(raw) {
					bits |= uint64(raw[idx]) << (8 * b)
				}
			}
			vals[i] = math.Float64frombits(bits)
		}
		x := mat.New(n, d)
		copy(x.Raw(), vals[:n*d])
		y := vals[n*d:]

		s, err := FitSparse(SparseConfig{
			Kernel: kernel.NewRBF(1, 1), Noise: noise, Inducing: m, Normalize: normalize,
		}, x, y, nil)
		if err != nil {
			return // rejected cleanly — the expected path for garbage
		}

		// Accepted models must be fully usable.
		if s.NumTrain() != n {
			t.Fatalf("accepted fit trains on %d rows, want %d", s.NumTrain(), n)
		}
		if mi := s.NumInducing(); mi < 1 || mi > n {
			t.Fatalf("inducing count %d outside [1, %d]", mi, n)
		}
		for i := 0; i < n; i++ {
			p := s.Predict(x.RawRow(i))
			if math.IsNaN(p.Mean) || math.IsNaN(p.SD) || p.SD < 0 {
				t.Fatalf("accepted fit predicts %+v at training row %d", p, i)
			}
		}
		s.Fingerprint()
		// A duplicate-point update may degrade to the refit fallback or
		// reject ill-conditioned growth with an error, but it must not
		// panic, and a returned model must predict finitely.
		if upd, uerr := s.UpdateWithPoint(x.RawRow(0), y[0]); uerr == nil {
			if p := upd.Predict(x.RawRow(0)); math.IsNaN(p.Mean) || math.IsNaN(p.SD) {
				t.Fatalf("updated model predicts %+v", p)
			}
		}
	})
}
