package gp

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/mat"
	"repro/internal/obs"
)

// fitDegraded counts fits that could not complete on the normal path and
// fell back down the degradation chain (see OBSERVABILITY.md).
var fitDegraded = obs.C("gp.fit.degraded")

// DegradeLevel identifies how far down the degradation chain FitRobust
// had to fall to produce a model.
type DegradeLevel int

const (
	// DegradeNone: the normal fit (with its internal jitter escalation)
	// succeeded.
	DegradeNone DegradeLevel = iota
	// DegradeReusedHypers: hyperparameter optimization failed or the
	// optimized hypers did not factorize; the previous model's
	// hyperparameters were reused without optimization.
	DegradeReusedHypers
	// DegradeRejectedPoints: the fit only succeeded after dropping one
	// or more trailing observations (the most recent, and most suspect,
	// measurements).
	DegradeRejectedPoints
)

// String names the level for logs and events.
func (d DegradeLevel) String() string {
	switch d {
	case DegradeNone:
		return "none"
	case DegradeReusedHypers:
		return "reused_hypers"
	case DegradeRejectedPoints:
		return "rejected_points"
	}
	return fmt.Sprintf("DegradeLevel(%d)", int(d))
}

// Degradation reports what FitRobust had to do to produce a model.
type Degradation struct {
	Level DegradeLevel
	// Rejected is the number of trailing observations dropped
	// (non-zero only at DegradeRejectedPoints). The caller owns the
	// consequence: the returned model covers y[:len(y)-Rejected].
	Rejected int
	// Err is the error from the normal fit path when any degradation
	// fired, kept for logging; nil at DegradeNone.
	Err error
}

// maxRejectPoints bounds stage three of the chain: how many trailing
// observations FitRobust will sacrifice before giving up.
const maxRejectPoints = 3

// FitRobust is FitCtx wrapped in a degradation chain for fault-tolerant
// loops that must produce a model even when a fit fails:
//
//  1. the normal fit (FitCtx, whose factorization already escalates
//     diagonal jitter internally);
//  2. refit at the previous model's hyperparameters, skipping
//     optimization (prev carries them; nil skips this stage);
//  3. reject trailing observations one at a time — newest first, since
//     in an AL loop the newest measurement is the likely culprit —
//     retrying stages 1–2 on the truncated data, up to maxRejectPoints.
//
// On success the Degradation return says which stage produced the model
// and how many points it covers; gp.fit.degraded counts every fit that
// needed stage 2 or 3. On total failure the model is nil and the error
// is from the last attempt.
func FitRobust(ctx context.Context, cfg Config, x *mat.Dense, y []float64, prev *GP, rng *rand.Rand) (*GP, Degradation, error) {
	// Failed optimization attempts mutate cfg.Kernel's hyperparameters;
	// restore the caller's initial state before each retry so every
	// attempt starts from the same place.
	initHyper := append([]float64(nil), cfg.Kernel.Hyper()...)

	g, err := FitCtx(ctx, cfg, x, y, rng)
	if err == nil {
		return g, Degradation{}, nil
	}
	firstErr := err

	try := func(xs *mat.Dense, ys []float64) (*GP, error) {
		c := cfg
		if c.PointNoiseVar != nil && len(c.PointNoiseVar) > len(ys) {
			c.PointNoiseVar = c.PointNoiseVar[:len(ys)]
		}
		c.Kernel.SetHyper(initHyper)
		if g, err := FitCtx(ctx, c, xs, ys, rng); err == nil {
			return g, nil
		}
		if prev != nil {
			return FitAtHypers(c, xs, ys, prev.Kernel().Hyper(), prev.LogNoise())
		}
		return nil, err
	}

	if prev != nil {
		c := cfg
		if g, err2 := FitAtHypers(c, x, y, prev.Kernel().Hyper(), prev.LogNoise()); err2 == nil {
			fitDegraded.Inc()
			obs.Emit("gp.fit.degrade", map[string]any{
				"level": DegradeReusedHypers.String(), "n": x.Rows(), "err": firstErr.Error(),
			})
			return g, Degradation{Level: DegradeReusedHypers, Err: firstErr}, nil
		}
	}

	n := x.Rows()
	for k := 1; k <= maxRejectPoints && n-k >= 1; k++ {
		xs := mat.New(n-k, x.Cols())
		for i := 0; i < n-k; i++ {
			copy(xs.RawRow(i), x.RawRow(i))
		}
		ys := append([]float64(nil), y[:n-k]...)
		if g, err2 := try(xs, ys); err2 == nil {
			fitDegraded.Inc()
			obs.Emit("gp.fit.degrade", map[string]any{
				"level": DegradeRejectedPoints.String(), "n": n, "rejected": k,
				"err": firstErr.Error(),
			})
			return g, Degradation{Level: DegradeRejectedPoints, Rejected: k, Err: firstErr}, nil
		} else {
			err = err2
		}
	}
	return nil, Degradation{}, fmt.Errorf("gp: fit degradation chain exhausted: %w", err)
}
