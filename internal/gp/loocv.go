package gp

import (
	"math"
	"math/rand"

	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/optimize"
)

// The paper (§III, citing Rasmussen & Williams ch. 5) describes two
// model-selection routes: Bayesian inference with the marginal likelihood
// — the route the paper uses — and leave-one-out cross-validation with
// the log pseudo-likelihood, whose empirical comparison it leaves for
// future work. This file implements the second route, closing that gap.

// LOOCV returns the leave-one-out log pseudo-likelihood of the fitted
// model (Rasmussen & Williams Eqs. 5.10–5.12), computed in closed form
// from K⁻¹ without refitting n models:
//
//	μ_i  = y_i − [K⁻¹y]_i / [K⁻¹]_ii
//	σ²_i = 1 / [K⁻¹]_ii
//	L    = Σ_i ( −½ log σ²_i − (y_i − μ_i)²/(2σ²_i) − ½ log 2π )
func (g *GP) LOOCV() float64 {
	kinv := g.chol.Inverse()
	return looFromInverse(kinv, g.alpha, g.y)
}

func looFromInverse(kinv *mat.Dense, alpha, y mat.Vec) float64 {
	n := len(y)
	var ll float64
	for i := 0; i < n; i++ {
		kii := kinv.At(i, i)
		if kii <= 0 {
			return math.Inf(-1)
		}
		sigma2 := 1 / kii
		resid := alpha[i] / kii // y_i − μ_i = [K⁻¹y]_i / [K⁻¹]_ii
		ll += -0.5*math.Log(sigma2) - resid*resid/(2*sigma2) - 0.5*math.Log(2*math.Pi)
	}
	return ll
}

// negLOOCV evaluates the negative LOO pseudo-likelihood at an arbitrary
// hyperparameter vector (no gradient — the CV objective is optimized
// derivative-free).
func (g *GP) negLOOCV(theta []float64, _ []float64) float64 {
	saved := g.hyperVector()
	defer g.setHyperVector(saved)
	g.setHyperVector(theta)

	ky := kernel.Matrix(g.kern, g.x)
	ky.AddDiag(math.Exp(2 * g.logSN))
	g.addPointNoise(ky)
	ch, err := cholesky(ky)
	if err != nil {
		return math.Inf(1)
	}
	alpha := ch.SolveVec(g.y)
	return -looFromInverse(ch.Inverse(), alpha, g.y)
}

// FitLOOCV fits hyperparameters by maximizing the LOO pseudo-likelihood
// with multi-restart Nelder–Mead inside the kernel/noise bounds, then
// refactorizes. It mirrors Fit with cfg.Optimize but swaps the model
// selection objective, enabling the LML-vs-LOO comparison the paper
// deferred.
func FitLOOCV(cfg Config, x *mat.Dense, y []float64, rng *rand.Rand) (*GP, error) {
	base := cfg
	base.Optimize = false
	g, err := Fit(base, x, y, rng)
	if err != nil {
		return nil, err
	}
	bounds := g.hyperBounds()
	if len(bounds) == 0 {
		return g, nil
	}
	restarts := cfg.withDefaults().Restarts
	if rng == nil {
		restarts = 0
	}
	ms := &optimize.MultiStart{
		Opt:      &optimize.NelderMead{Bounds: bounds, MaxIter: 600},
		Restarts: restarts,
		Bounds:   bounds,
	}
	x0 := g.hyperVector()
	for i := range x0 {
		x0[i] = bounds[i].Clamp(x0[i])
	}
	res, err := ms.Minimize(g.negLOOCV, x0, rng)
	if err != nil {
		return nil, err
	}
	g.setHyperVector(res.X)
	if err := g.factorize(); err != nil {
		return nil, err
	}
	return g, nil
}
