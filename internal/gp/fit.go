package gp

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/optimize"
)

// hyperVector packs [kernel θ..., log σn] (σn omitted when FixedNoise).
func (g *GP) hyperVector() []float64 {
	theta := g.kern.Hyper()
	if g.cfg.FixedNoise {
		return theta
	}
	return append(theta, g.logSN)
}

func (g *GP) setHyperVector(theta []float64) {
	nk := g.kern.NumHyper()
	g.kern.SetHyper(theta[:nk])
	if !g.cfg.FixedNoise {
		g.logSN = theta[nk]
	}
}

func (g *GP) hyperBounds() []optimize.Bounds {
	kb := g.kern.Bounds()
	bounds := make([]optimize.Bounds, 0, len(kb)+1)
	for _, b := range kb {
		bounds = append(bounds, optimize.Bounds{Lo: b.Lo, Hi: b.Hi})
	}
	if !g.cfg.FixedNoise {
		bounds = append(bounds, optimize.Bounds{
			Lo: math.Log(g.cfg.NoiseFloor),
			Hi: math.Log(g.cfg.NoiseCeil),
		})
	}
	return bounds
}

// negLML evaluates -LML(θ) and, when grad is non-nil, its gradient.
// Gradient (Rasmussen & Williams Eq. 5.9):
//
//	∂LML/∂θ_j = ½ tr((ααᵀ − Ky⁻¹) ∂Ky/∂θ_j)
//
// with ∂Ky/∂log σn = 2σn² I. Non-PD covariance evaluates to +Inf so the
// line search backs off rather than aborting.
func (g *GP) negLML(theta []float64, grad []float64) float64 {
	lmlEvals.Inc()
	saved := g.hyperVector()
	defer g.setHyperVector(saved)
	g.setHyperVector(theta)

	n := g.x.Rows()
	sn2 := math.Exp(2 * g.logSN)

	var ky *mat.Dense
	var kgrads []*mat.Dense
	if grad != nil {
		ky, kgrads = kernel.MatrixGrad(g.kern, g.x)
	} else {
		ky = kernel.Matrix(g.kern, g.x)
	}
	ky.AddDiag(sn2)
	g.addPointNoise(ky)

	ch, err := cholesky(ky)
	if err != nil {
		// Indefinite at these hypers: report +Inf; the optimizer's
		// line search will shrink the step.
		if grad != nil {
			for i := range grad {
				grad[i] = 0
			}
		}
		return math.Inf(1)
	}
	alpha := ch.SolveVec(g.y)
	lml := -0.5*mat.Dot(g.y, alpha) - 0.5*ch.LogDet() - 0.5*float64(n)*math.Log(2*math.Pi)

	if grad != nil {
		kinv := ch.Inverse()
		// W = ααᵀ − Ky⁻¹; ∂LML/∂θ_j = ½ Σ_ij W_ij (∂Ky/∂θ_j)_ij.
		nk := g.kern.NumHyper()
		for j := 0; j < nk; j++ {
			var s float64
			kg := kgrads[j]
			for i := 0; i < n; i++ {
				ai := alpha[i]
				kgRow := kg.RawRow(i)
				kiRow := kinv.RawRow(i)
				for l := 0; l < n; l++ {
					s += (ai*alpha[l] - kiRow[l]) * kgRow[l]
				}
			}
			grad[j] = -0.5 * s // negation: minimizing −LML
		}
		if !g.cfg.FixedNoise {
			// ∂Ky/∂log σn = 2σn² I ⇒ trace term only.
			var s float64
			for i := 0; i < n; i++ {
				s += alpha[i]*alpha[i] - kinv.At(i, i)
			}
			grad[nk] = -0.5 * s * 2 * sn2
		}
	}
	return -lml
}

// optimizeHypers maximizes the LML over [kernel θ, log σn] with
// multi-restart L-BFGS inside the configured bounds (Eq. 13).
func (g *GP) optimizeHypers(ctx context.Context, rng *rand.Rand) error {
	bounds := g.hyperBounds()
	if len(bounds) == 0 {
		return nil // Fixed kernel and fixed noise: nothing to do.
	}
	_, span := obs.Start(ctx, "gp.hyperopt")
	defer span.End()
	restarts := g.cfg.Restarts
	if rng == nil {
		restarts = 0
	}
	ms := &optimize.MultiStart{
		Opt:      &optimize.LBFGS{Bounds: bounds, MaxIter: 100, GradTol: 1e-5},
		Restarts: restarts,
		Bounds:   bounds,
	}
	x0 := g.hyperVector()
	// Clamp the start into the box so the first evaluation is feasible.
	for i := range x0 {
		if x0[i] < bounds[i].Lo {
			x0[i] = bounds[i].Lo
		}
		if x0[i] > bounds[i].Hi {
			x0[i] = bounds[i].Hi
		}
	}
	res, err := ms.Minimize(g.negLML, x0, rng)
	if err != nil {
		return fmt.Errorf("gp: hyperparameter optimization failed: %w", err)
	}
	g.setHyperVector(res.X)
	return nil
}

// LMLAt evaluates the log marginal likelihood at an arbitrary
// hyperparameter vector [kernel θ..., log σn] without changing the fitted
// model. Used to draw the LML landscapes of Figs. 4 and 5(b).
func (g *GP) LMLAt(theta []float64) float64 {
	want := g.kern.NumHyper()
	if !g.cfg.FixedNoise {
		want++
	}
	if len(theta) != want {
		panic(fmt.Sprintf("gp: LMLAt wants %d hyperparameters, got %d", want, len(theta)))
	}
	return -g.negLML(theta, nil)
}

// HyperNames lists the names of the optimized hyperparameters in the
// order used by LMLAt.
func (g *GP) HyperNames() []string {
	names := g.kern.HyperNames()
	if !g.cfg.FixedNoise {
		names = append(names, "log_sn")
	}
	return names
}

// Hyper returns the fitted hyperparameter vector [kernel θ..., log σn].
func (g *GP) Hyper() []float64 { return g.hyperVector() }
