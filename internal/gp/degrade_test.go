package gp

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/obs"
)

func degradeData(n int) (*mat.Dense, []float64) {
	x := mat.New(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, float64(i)/float64(n))
		y[i] = math.Sin(3 * x.At(i, 0))
	}
	return x, y
}

// hyperPoisonKernel returns NaN covariance unless its hyperparameters
// exactly equal good, and reports optimizer bounds that exclude good —
// so optimization always fails while an exact refit at good succeeds.
type hyperPoisonKernel struct {
	kernel.Kernel
	good []float64
}

func (p *hyperPoisonKernel) atGood() bool {
	h := p.Kernel.Hyper()
	for i := range h {
		if h[i] != p.good[i] {
			return false
		}
	}
	return true
}

func (p *hyperPoisonKernel) Eval(x, y []float64) float64 {
	if !p.atGood() {
		return math.NaN()
	}
	return p.Kernel.Eval(x, y)
}

func (p *hyperPoisonKernel) EvalGrad(x, y []float64, grad []float64) float64 {
	if !p.atGood() {
		for i := range grad {
			grad[i] = 0
		}
		return math.NaN()
	}
	return p.Kernel.EvalGrad(x, y, grad)
}

func (p *hyperPoisonKernel) Bounds() []kernel.Bounds {
	b := make([]kernel.Bounds, p.NumHyper())
	for i := range b {
		b[i] = kernel.Bounds{Lo: 5, Hi: 6} // excludes good = log 1 = 0
	}
	return b
}

// pointPoisonKernel returns NaN whenever either argument is the bad
// input point, regardless of hyperparameters — only dropping the point
// can save the fit.
type pointPoisonKernel struct {
	kernel.Kernel
	bad float64
}

func (p *pointPoisonKernel) Eval(x, y []float64) float64 {
	if x[0] == p.bad || y[0] == p.bad {
		return math.NaN()
	}
	return p.Kernel.Eval(x, y)
}

func (p *pointPoisonKernel) EvalGrad(x, y []float64, grad []float64) float64 {
	if x[0] == p.bad || y[0] == p.bad {
		for i := range grad {
			grad[i] = 0
		}
		return math.NaN()
	}
	return p.Kernel.EvalGrad(x, y, grad)
}

func TestFitRobustHealthyPassthrough(t *testing.T) {
	before := obs.C("gp.fit.degraded").Value()
	x, y := degradeData(10)
	g, d, err := FitRobust(context.Background(),
		Config{Kernel: kernel.NewRBF(1, 1), NoiseInit: 0.1, FixedNoise: true},
		x, y, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Level != DegradeNone || d.Rejected != 0 || d.Err != nil {
		t.Fatalf("degradation = %+v, want none", d)
	}
	if g.NumTrain() != 10 {
		t.Fatalf("NumTrain = %d", g.NumTrain())
	}
	if delta := obs.C("gp.fit.degraded").Value() - before; delta != 0 {
		t.Fatalf("gp.fit.degraded rose by %d on a healthy fit", delta)
	}
}

func TestFitRobustReusesPreviousHypers(t *testing.T) {
	before := obs.C("gp.fit.degraded").Value()
	x, y := degradeData(12)

	prev, err := Fit(Config{Kernel: kernel.NewRBF(1, 1), NoiseInit: 0.1, FixedNoise: true}, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}

	pk := &hyperPoisonKernel{Kernel: kernel.NewRBF(1, 1), good: kernel.NewRBF(1, 1).Hyper()}
	cfg := Config{Kernel: pk, NoiseInit: 0.1, FixedNoise: true, Optimize: true, Restarts: 2}
	g, d, err := FitRobust(context.Background(), cfg, x, y, prev, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if d.Level != DegradeReusedHypers {
		t.Fatalf("level = %v, want reused_hypers", d.Level)
	}
	if d.Err == nil {
		t.Fatal("degradation kept no cause error")
	}
	if g.NumTrain() != 12 || d.Rejected != 0 {
		t.Fatalf("NumTrain = %d, Rejected = %d", g.NumTrain(), d.Rejected)
	}
	// The reused-hyper model must actually predict finitely.
	p := g.Predict([]float64{0.5})
	if math.IsNaN(p.Mean) || math.IsNaN(p.SD) {
		t.Fatalf("degraded model predicts (%g, %g)", p.Mean, p.SD)
	}
	if delta := obs.C("gp.fit.degraded").Value() - before; delta != 1 {
		t.Fatalf("gp.fit.degraded rose by %d, want 1", delta)
	}
}

func TestFitRobustRejectsTrailingPoint(t *testing.T) {
	before := obs.C("gp.fit.degraded").Value()
	x, y := degradeData(10)
	bad := x.At(9, 0) // newest observation poisons the covariance

	pk := &pointPoisonKernel{Kernel: kernel.NewRBF(1, 1), bad: bad}
	g, d, err := FitRobust(context.Background(),
		Config{Kernel: pk, NoiseInit: 0.1, FixedNoise: true}, x, y, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Level != DegradeRejectedPoints || d.Rejected != 1 {
		t.Fatalf("degradation = %+v, want 1 rejected point", d)
	}
	if g.NumTrain() != 9 {
		t.Fatalf("NumTrain = %d, want 9", g.NumTrain())
	}
	if delta := obs.C("gp.fit.degraded").Value() - before; delta != 1 {
		t.Fatalf("gp.fit.degraded rose by %d, want 1", delta)
	}
}

func TestFitRobustChainExhausted(t *testing.T) {
	// Every input point is poisoned: no amount of trailing rejection
	// (bounded at maxRejectPoints) can recover.
	x, y := degradeData(8)
	pk := &pointPoisonKernel{Kernel: kernel.NewRBF(1, 1), bad: x.At(0, 0)}
	// Poison the FIRST point so truncating the tail never removes it.
	if _, _, err := FitRobust(context.Background(),
		Config{Kernel: pk, NoiseInit: 0.1, FixedNoise: true}, x, y, nil, nil); err == nil {
		t.Fatal("want error when the chain is exhausted")
	}
}
