package gp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/kernel"
	"repro/internal/mat"
)

func sinData(rng *rand.Rand, n int, noise float64) (*mat.Dense, []float64) {
	x := mat.New(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		xv := 6 * float64(i) / float64(n-1)
		x.Set(i, 0, xv)
		y[i] = math.Sin(xv) + noise*rng.NormFloat64()
	}
	return x, y
}

// With the inducing set equal to the full training set, SoR/DTC reduce
// exactly to the dense GP equations.
func TestSparseWithAllInducingMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	x, y := sinData(rng, 30, 0.05)
	noise := 0.1
	dense, err := Fit(Config{Kernel: kernel.NewRBF(1, 1), NoiseInit: noise, FixedNoise: true}, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := FitSparse(SparseConfig{
		Kernel:   kernel.NewRBF(1, 1),
		Noise:    noise,
		Inducing: 30, // = n: exact reduction
		Jitter:   1e-12,
	}, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0.0; q <= 6; q += 0.31 {
		pd := dense.Predict([]float64{q})
		ps := sparse.Predict([]float64{q})
		if math.Abs(pd.Mean-ps.Mean) > 1e-5*(1+math.Abs(pd.Mean)) {
			t.Fatalf("mean at %g: dense %g vs sparse %g", q, pd.Mean, ps.Mean)
		}
		if math.Abs(pd.SD-ps.SD) > 1e-4*(1+pd.SD) {
			t.Fatalf("SD at %g: dense %g vs sparse %g", q, pd.SD, ps.SD)
		}
	}
}

// A modest inducing set must approximate the dense posterior closely on
// smooth data.
func TestSparseApproximationQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	x, y := sinData(rng, 200, 0.05)
	noise := 0.1
	dense, err := Fit(Config{Kernel: kernel.NewRBF(1, 1), NoiseInit: noise, FixedNoise: true}, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := FitSparse(SparseConfig{
		Kernel:   kernel.NewRBF(1, 1),
		Noise:    noise,
		Inducing: 20,
	}, x, y, rand.New(rand.NewSource(92)))
	if err != nil {
		t.Fatal(err)
	}
	if sparse.NumInducing() != 20 {
		t.Fatalf("NumInducing = %d", sparse.NumInducing())
	}
	var worstMean float64
	for q := 0.2; q < 5.8; q += 0.23 {
		pd := dense.Predict([]float64{q})
		ps := sparse.Predict([]float64{q})
		if d := math.Abs(pd.Mean - ps.Mean); d > worstMean {
			worstMean = d
		}
	}
	if worstMean > 0.05 {
		t.Fatalf("sparse mean deviates by %g from dense", worstMean)
	}
}

// DTC variance must revert to the prior far from data (unlike plain SoR,
// which collapses) — the property AL's exploration depends on.
func TestSparseVarianceRevertsToPrior(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	x, y := sinData(rng, 100, 0.05)
	sparse, err := FitSparse(SparseConfig{
		Kernel:   kernel.NewRBF(1, 1),
		Noise:    0.1,
		Inducing: 15,
	}, x, y, rng)
	if err != nil {
		t.Fatal(err)
	}
	far := sparse.Predict([]float64{100}).SD
	if math.Abs(far-1) > 0.05 { // prior amplitude σf = 1
		t.Fatalf("far-field SD %g, want ≈1", far)
	}
	near := sparse.Predict([]float64{3}).SD
	if near >= far {
		t.Fatalf("in-data SD %g should be below far-field %g", near, far)
	}
}

func TestSparseValidation(t *testing.T) {
	x := mat.NewFromRows([][]float64{{0}})
	if _, err := FitSparse(SparseConfig{}, x, []float64{1}, nil); err == nil {
		t.Fatal("expected kernel error")
	}
	cfg := SparseConfig{Kernel: kernel.NewRBF(1, 1)}
	if _, err := FitSparse(cfg, nil, nil, nil); err == nil {
		t.Fatal("expected no-data error")
	}
	if _, err := FitSparse(cfg, x, []float64{1, 2}, nil); err == nil {
		t.Fatal("expected length error")
	}
}

func TestSparseNormalize(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	x, y := sinData(rng, 50, 0.02)
	for i := range y {
		y[i] = y[i]*100 + 500 // large offset and scale
	}
	sparse, err := FitSparse(SparseConfig{
		Kernel:    kernel.NewRBF(1, 1),
		Noise:     0.1,
		Inducing:  25,
		Normalize: true,
	}, x, y, rng)
	if err != nil {
		t.Fatal(err)
	}
	p := sparse.Predict([]float64{3})
	want := 100*math.Sin(3) + 500
	if math.Abs(p.Mean-want) > 15 {
		t.Fatalf("normalized sparse mean %g, want ≈%g", p.Mean, want)
	}
}

func TestFarthestPointSampleSpreads(t *testing.T) {
	// Points on a line 0..9; 3 samples must include both extremes.
	x := mat.New(10, 1)
	for i := 0; i < 10; i++ {
		x.Set(i, 0, float64(i))
	}
	idx, radius2 := farthestPointSample(x, 3, nil)
	if radius2 <= 0 {
		t.Fatalf("covering radius² = %g, want > 0 with unchosen rows left", radius2)
	}
	has := map[int]bool{}
	for _, i := range idx {
		has[i] = true
	}
	if !has[0] && !has[9] {
		t.Fatalf("samples %v do not reach the extremes", idx)
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if seen[i] {
			t.Fatalf("duplicate inducing index in %v", idx)
		}
		seen[i] = true
	}
}

func BenchmarkDenseVsSparseFit(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1000
	x := mat.New(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, 6*rng.Float64())
		x.Set(i, 1, 6*rng.Float64())
		y[i] = math.Sin(x.At(i, 0)) * math.Cos(x.At(i, 1))
	}
	b.Run("dense-n1000", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Fit(Config{Kernel: kernel.NewRBF(1, 1), NoiseInit: 0.1, FixedNoise: true}, x, y, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sparse-m64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := FitSparse(SparseConfig{Kernel: kernel.NewRBF(1, 1), Noise: 0.1, Inducing: 64}, x, y, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
}
