package gp

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/kernel"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(130))
	x, y := sinData(rng, 25, 0.05)
	for _, mkKernel := range []func() kernel.Kernel{
		func() kernel.Kernel { return kernel.NewRBF(1, 1) },
		func() kernel.Kernel { return kernel.NewMatern52(1, 1) },
		func() kernel.Kernel { return kernel.NewARD([]float64{1}, 1) },
	} {
		g, err := Fit(Config{
			Kernel: mkKernel(), NoiseInit: 0.1, NoiseFloor: 1e-3,
			Optimize: true, Restarts: 2, Normalize: true,
		}, x, y, rand.New(rand.NewSource(131)))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := g.Save(&buf); err != nil {
			t.Fatalf("%s: %v", g.Kernel().Name(), err)
		}
		back, err := Load(&buf)
		if err != nil {
			t.Fatalf("%s: %v", g.Kernel().Name(), err)
		}
		for q := 0.0; q <= 6; q += 0.4 {
			a, b := g.Predict([]float64{q}), back.Predict([]float64{q})
			if math.Abs(a.Mean-b.Mean) > 1e-10 || math.Abs(a.SD-b.SD) > 1e-10 {
				t.Fatalf("%s: round trip differs at %g: %+v vs %+v", g.Kernel().Name(), q, a, b)
			}
		}
		if math.Abs(back.LML()-g.LML()) > 1e-8*(1+math.Abs(g.LML())) {
			t.Fatalf("LML %g vs %g", back.LML(), g.LML())
		}
		if back.Noise() != g.Noise() {
			t.Fatal("noise lost")
		}
	}
}

func TestSaveRejectsCompositeKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	x, y := sinData(rng, 6, 0.05)
	k := kernel.NewSum(kernel.NewRBF(1, 1), kernel.NewConstant(1))
	g, err := Fit(Config{Kernel: k, NoiseInit: 0.1}, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Save(&buf); err == nil {
		t.Fatal("expected composite-kernel error")
	}
}

func TestLoadRejectsCorruptFiles(t *testing.T) {
	cases := []string{
		"not json",
		`{"kernel":"RBF","kernel_hyper":[0,0],"dims":1,"x":[],"y":[],"y_std":1}`,
		`{"kernel":"RBF","kernel_hyper":[0,0],"dims":1,"x":[[1]],"y":[1,2],"y_std":1}`,
		`{"kernel":"Nope","kernel_hyper":[0],"dims":1,"x":[[1]],"y":[1],"y_std":1}`,
		`{"kernel":"RBF","kernel_hyper":[0],"dims":1,"x":[[1]],"y":[1],"y_std":1}`,
		`{"kernel":"RBF","kernel_hyper":[0,0],"dims":2,"x":[[1]],"y":[1],"y_std":1}`,
		`{"kernel":"RBF","kernel_hyper":[0,0],"dims":1,"x":[[1]],"y":[1],"y_std":0}`,
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

// A loaded model keeps working as a live GP: conditioning and sampling.
func TestLoadedModelIsLive(t *testing.T) {
	rng := rand.New(rand.NewSource(133))
	x, y := sinData(rng, 15, 0.05)
	g, err := Fit(Config{Kernel: kernel.NewRBF(1, 1), NoiseInit: 0.1}, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cond, err := back.Condition([]float64{7}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if cond.NumTrain() != 16 {
		t.Fatalf("NumTrain = %d", cond.NumTrain())
	}
}
