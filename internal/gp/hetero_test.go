package gp

import (
	"math"
	"testing"

	"repro/internal/kernel"
	"repro/internal/mat"
)

// Two conflicting measurements at the same input: the posterior mean must
// side with the trusted (low-noise) one — the paper's §V-A proposal of
// weighting meter-calibrated measurements above IPMI-derived estimates.
func TestHeteroscedasticTrustsPreciseMeasurement(t *testing.T) {
	x := mat.NewFromRows([][]float64{{1}, {1}})
	y := []float64{0, 2} // disagreeing measurements
	cfg := Config{
		Kernel:     kernel.NewRBF(1, 1),
		NoiseInit:  0.05,
		FixedNoise: true,
		// First measurement: physical meter (tiny extra noise).
		// Second: IPMI estimate (large extra variance).
		PointNoiseVar: []float64{0, 4.0},
	}
	g, err := Fit(cfg, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := g.Predict([]float64{1}).Mean
	if m > 0.3 {
		t.Fatalf("posterior mean %g leans toward the noisy measurement", m)
	}
	// Symmetric check: trust the other one instead.
	cfg.PointNoiseVar = []float64{4.0, 0}
	g2, err := Fit(cfg, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m2 := g2.Predict([]float64{1}).Mean; m2 < 1.7 {
		t.Fatalf("posterior mean %g ignores the trusted measurement", m2)
	}
}

// Zero per-point variances must reproduce the homoscedastic fit exactly.
func TestHeteroscedasticZeroMatchesPlain(t *testing.T) {
	x := mat.NewFromRows([][]float64{{0}, {1}, {2}, {3}})
	y := []float64{0, 1, 0, -1}
	plain, err := Fit(Config{Kernel: kernel.NewRBF(1, 1), NoiseInit: 0.2, FixedNoise: true}, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	het, err := Fit(Config{
		Kernel: kernel.NewRBF(1, 1), NoiseInit: 0.2, FixedNoise: true,
		PointNoiseVar: []float64{0, 0, 0, 0},
	}, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	for q := -0.5; q < 3.5; q += 0.3 {
		a, b := plain.Predict([]float64{q}), het.Predict([]float64{q})
		if math.Abs(a.Mean-b.Mean) > 1e-12 || math.Abs(a.SD-b.SD) > 1e-12 {
			t.Fatalf("zero point noise changed the fit at %g", q)
		}
	}
}

// Hyperparameter optimization must stay consistent: the fitted model's
// LML is evaluated under the same heteroscedastic covariance used during
// the search.
func TestHeteroscedasticOptimizeConsistent(t *testing.T) {
	x := mat.NewFromRows([][]float64{{0}, {0.5}, {1}, {1.5}, {2}, {2.5}})
	y := []float64{0, 0.4, 0.9, 1.0, 0.8, 0.4}
	pv := []float64{0, 0, 1.0, 0, 1.0, 0}
	cfg := Config{
		Kernel:        kernel.NewRBF(1, 1),
		NoiseInit:     0.1,
		NoiseFloor:    1e-3,
		Optimize:      true,
		Restarts:      2,
		PointNoiseVar: pv,
	}
	g, err := Fit(cfg, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	// LMLAt at the fitted hypers must match the stored LML.
	if got := g.LMLAt(g.Hyper()); math.Abs(got-g.LML()) > 1e-8*(1+math.Abs(g.LML())) {
		t.Fatalf("LMLAt %g != fitted LML %g (point noise applied inconsistently)", got, g.LML())
	}
	// Uncertain points must carry larger residual without dragging the
	// curve: SD at a noisy observation exceeds SD at a trusted one.
	trusted := g.Predict([]float64{0.5}).SD
	noisy := g.Predict([]float64{1.0}).SD
	if noisy <= trusted {
		t.Fatalf("SD at noisy point %g not above trusted %g", noisy, trusted)
	}
}

func TestHeteroscedasticValidation(t *testing.T) {
	x := mat.NewFromRows([][]float64{{0}, {1}})
	y := []float64{0, 1}
	base := Config{Kernel: kernel.NewRBF(1, 1), NoiseInit: 0.1}
	bad := base
	bad.PointNoiseVar = []float64{1}
	if _, err := Fit(bad, x, y, nil); err == nil {
		t.Fatal("expected length error")
	}
	bad = base
	bad.PointNoiseVar = []float64{-1, 0}
	if _, err := Fit(bad, x, y, nil); err == nil {
		t.Fatal("expected negativity error")
	}
}
