// Package gp implements Gaussian Process Regression (GPR) as used by the
// paper (§III): a Bayesian regressor returning a full predictive
// distribution — mean and variance — at every input point, with
// hyperparameters fit by gradient ascent on the log marginal likelihood
// (LML, Eq. 12–13) under configurable noise-level bounds. It reproduces
// the 1-D/2-D fits of Figs. 3 and 5 and the LML landscapes of Fig. 4.
//
// The noise lower bound is load-bearing: §V-B4 (Fig. 7) shows that with
// σn allowed down to 1e-8 small training sets overfit (the GP believes
// its data are noise-free and the AL loop collapses), while σn ≥ 1e-1
// restores sane behaviour. Both the fixed floor and the paper's proposed
// dynamic c/√N floor (DynamicNoiseFloor) are provided.
//
// # Key types
//
//   - Config / Fit / FitCtx: model construction and LML fitting with
//     multi-restart L-BFGS; FitCtx only threads an observability
//     context.
//   - GP: the fitted model — Predict/PredictBatch for the posterior,
//     Condition for the O(n²) bordered-Cholesky online update,
//     Augmented for the general retrain path, LMLAt for landscapes.
//   - FitLOOCV: leave-one-out pseudo-likelihood model selection, the
//     §III comparison the paper defers (ablation A3).
//   - FitSparse: inducing-point approximation for the scaling study
//     (ablation A5).
//
// # Observability
//
// Fits open "gp.fit" spans (with a "gp.hyperopt" child covering the
// optimizer); gp.lml.evals, gp.condition.ops and gp.predict.* count the
// high-frequency work. See OBSERVABILITY.md.
//
// # Concurrency contract
//
// A fitted *GP is immutable through its exported query methods
// (Predict, PredictBatch, LML, Noise, …) and safe for concurrent
// readers, with two exceptions: LMLAt temporarily mutates kernel
// hyperparameters and must not race with anything, and mutating the
// value returned by Kernel or TrainX invalidates the model. Fit,
// Condition and Augmented construct fresh models and may run
// concurrently with each other when given distinct inputs.
package gp
