// Package gp implements Gaussian Process Regression (GPR) as used by the
// paper (§III): a Bayesian regressor returning a full predictive
// distribution — mean and variance — at every input point, with
// hyperparameters fit by gradient ascent on the log marginal likelihood
// (LML, Eq. 12–13) under configurable noise-level bounds. It reproduces
// the 1-D/2-D fits of Figs. 3 and 5 and the LML landscapes of Fig. 4.
//
// The noise lower bound is load-bearing: §V-B4 (Fig. 7) shows that with
// σn allowed down to 1e-8 small training sets overfit (the GP believes
// its data are noise-free and the AL loop collapses), while σn ≥ 1e-1
// restores sane behaviour. Both the fixed floor and the paper's proposed
// dynamic c/√N floor (DynamicNoiseFloor) are provided.
//
// # Key types
//
//   - Config / Fit / FitCtx: model construction and LML fitting with
//     multi-restart L-BFGS; FitCtx only threads an observability
//     context.
//   - GP: the fitted model — Predict/PredictBatch for the posterior,
//     Condition for the O(n²) bordered-Cholesky online update,
//     Augmented for the general retrain path, LMLAt for landscapes.
//   - FitLOOCV: leave-one-out pseudo-likelihood model selection, the
//     §III comparison the paper defers (ablation A3).
//   - SparseGP / FitSparse / FitSparseHyper: the inducing-point model
//     tier (SoR mean, DTC variance) with an incremental
//     UpdateWithPoint, exact at m = n — the large-n path behind
//     al.LoopConfig.Model "sparse" (and ablation A5).
//   - AutoModel / FitAuto: size-based tier selection — dense below the
//     crossover, sparse above, with an optional held-out contest.
//
// # Observability
//
// Fits open "gp.fit" spans (with a "gp.hyperopt" child covering the
// optimizer); gp.lml.evals, gp.condition.ops and gp.predict.* count the
// high-frequency work. The sparse tier counts gp.sparse.fit.count and
// its three update paths (gp.sparse.update.rank1 / .grow / .refit) and
// gauges gp.sparse.inducing; AutoModel counts its tier picks under
// gp.automodel.*. See OBSERVABILITY.md.
//
// # Concurrency contract
//
// A fitted *GP is immutable through its exported query methods
// (Predict, PredictBatch, LML, Noise, …) and safe for concurrent
// readers, with two exceptions: LMLAt temporarily mutates kernel
// hyperparameters and must not race with anything, and mutating the
// value returned by Kernel or TrainX invalidates the model. Fit,
// Condition and Augmented construct fresh models and may run
// concurrently with each other when given distinct inputs.
//
// A fitted *SparseGP (and the *AutoModel wrapping one) follows the same
// immutable-snapshot contract: every exported query method is
// read-only, and UpdateWithPoint never mutates its receiver — it
// returns a new model sharing no mutable state with the old one.
// Readers holding the previous snapshot (the AL scorer pool
// mid-iteration, a campaign status endpoint) may keep querying it,
// bitwise unchanged, while the loop goroutine builds and publishes the
// successor; swapping the visible model is the caller's
// synchronization problem (an atomic pointer suffices). This is the
// contract TestSparseConcurrentReadsDuringUpdate pins under -race.
package gp
