package gp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/kernel"
	"repro/internal/mat"
)

func fitGradModel(t *testing.T, k kernel.Kernel) *GP {
	t.Helper()
	rng := rand.New(rand.NewSource(80))
	n := 12
	x := mat.New(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, 4*rng.Float64())
		x.Set(i, 1, 4*rng.Float64())
		y[i] = math.Sin(x.At(i, 0)) * math.Cos(x.At(i, 1))
	}
	g, err := Fit(Config{Kernel: k, NoiseInit: 0.05, Normalize: true}, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// Analytic ∂μ/∂x and ∂σ/∂x must match central finite differences for
// every InputGradient kernel.
func TestPredictGradMatchesFiniteDifferences(t *testing.T) {
	kernels := []kernel.Kernel{
		kernel.NewRBF(1, 1),
		kernel.NewARD([]float64{0.8, 1.5}, 1),
		kernel.NewMatern52(1.2, 0.9),
		kernel.NewSum(kernel.NewRBF(1, 1), kernel.NewConstant(0.5)),
		kernel.NewProduct(kernel.NewRBF(2, 1), kernel.NewMatern52(1, 1)),
	}
	rng := rand.New(rand.NewSource(81))
	const h = 1e-5
	for _, k := range kernels {
		g := fitGradModel(t, k)
		for trial := 0; trial < 5; trial++ {
			x := []float64{4 * rng.Float64(), 4 * rng.Float64()}
			p, dMean, dSD, err := g.PredictGrad(x)
			if err != nil {
				t.Fatalf("%s: %v", k.Name(), err)
			}
			pc := g.Predict(x)
			if math.Abs(p.Mean-pc.Mean) > 1e-10 || math.Abs(p.SD-pc.SD) > 1e-10 {
				t.Fatalf("%s: PredictGrad value differs from Predict", k.Name())
			}
			for d := 0; d < 2; d++ {
				xp := append([]float64(nil), x...)
				xp[d] += h
				pPlus := g.Predict(xp)
				xp[d] -= 2 * h
				pMinus := g.Predict(xp)
				fdMean := (pPlus.Mean - pMinus.Mean) / (2 * h)
				fdSD := (pPlus.SD - pMinus.SD) / (2 * h)
				if math.Abs(dMean[d]-fdMean) > 1e-4*(1+math.Abs(fdMean)) {
					t.Fatalf("%s: dMean[%d] = %g, fd %g at %v", k.Name(), d, dMean[d], fdMean, x)
				}
				if math.Abs(dSD[d]-fdSD) > 1e-4*(1+math.Abs(fdSD)) {
					t.Fatalf("%s: dSD[%d] = %g, fd %g at %v", k.Name(), d, dSD[d], fdSD, x)
				}
			}
		}
	}
}

func TestPredictGradRejectsUnsupportedKernel(t *testing.T) {
	// Matern32 does not implement InputGradient.
	x := mat.NewFromRows([][]float64{{0}, {1}})
	g, err := Fit(Config{Kernel: kernel.NewMatern32(1, 1), NoiseInit: 0.1}, x, []float64{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := g.PredictGrad([]float64{0.5}); err == nil {
		t.Fatal("expected capability error")
	}
}

func TestPredictGradDimMismatch(t *testing.T) {
	x := mat.NewFromRows([][]float64{{0}, {1}})
	g, err := Fit(Config{Kernel: kernel.NewRBF(1, 1), NoiseInit: 0.1}, x, []float64{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := g.PredictGrad([]float64{0, 0}); err == nil {
		t.Fatal("expected dimension error")
	}
}

// SD gradient must point away from the data: moving toward a training
// point decreases σ.
func TestSDGradientPointsAwayFromData(t *testing.T) {
	x := mat.NewFromRows([][]float64{{0.0}})
	g, err := Fit(Config{Kernel: kernel.NewRBF(1, 1), NoiseInit: 0.1}, x, []float64{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _, dSD, err := g.PredictGrad([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if dSD[0] <= 0 {
		t.Fatalf("∂σ/∂x = %g at x=0.5 with data at 0; should be positive", dSD[0])
	}
}
