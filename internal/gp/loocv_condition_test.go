package gp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/kernel"
	"repro/internal/mat"
)

// Brute-force LOO: refit the GP n times, each time leaving one point out,
// and sum the predictive log densities of the held-out points.
func bruteLOO(t *testing.T, cfg Config, x *mat.Dense, y []float64) float64 {
	t.Helper()
	n := x.Rows()
	var ll float64
	for leave := 0; leave < n; leave++ {
		xs := mat.New(n-1, x.Cols())
		ys := make([]float64, 0, n-1)
		r := 0
		for i := 0; i < n; i++ {
			if i == leave {
				continue
			}
			copy(xs.RawRow(r), x.RawRow(i))
			ys = append(ys, y[i])
			r++
		}
		g, err := Fit(cfg, xs, ys, nil)
		if err != nil {
			t.Fatal(err)
		}
		p := g.PredictNoisy(x.RawRow(leave))
		d := y[leave] - p.Mean
		ll += -0.5*math.Log(p.SD*p.SD) - d*d/(2*p.SD*p.SD) - 0.5*math.Log(2*math.Pi)
	}
	return ll
}

// The closed-form LOO pseudo-likelihood must match brute-force
// leave-one-out refitting — the identity from Rasmussen & Williams ch. 5.
func TestLOOCVMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	n := 10
	x := mat.New(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, float64(i)*0.5)
		y[i] = math.Sin(x.At(i, 0)) + 0.1*rng.NormFloat64()
	}
	cfg := Config{Kernel: kernel.NewRBF(1, 1), NoiseInit: 0.2, FixedNoise: true}
	g, err := Fit(cfg, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	closed := g.LOOCV()
	brute := bruteLOO(t, cfg, x, y)
	if math.Abs(closed-brute) > 1e-6*(1+math.Abs(brute)) {
		t.Fatalf("closed-form LOO %g vs brute force %g", closed, brute)
	}
}

func TestFitLOOCVImprovesPseudoLikelihood(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	n := 20
	x := mat.New(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, float64(i)*0.3)
		y[i] = math.Sin(x.At(i, 0)) + 0.05*rng.NormFloat64()
	}
	cfg := Config{
		Kernel:     kernel.NewRBF(5, 0.3), // deliberately poor start
		NoiseInit:  1.0,
		NoiseFloor: 1e-3,
		Restarts:   3,
	}
	base, err := Fit(cfg, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	fitted, err := FitLOOCV(cfg, x, y, rand.New(rand.NewSource(72)))
	if err != nil {
		t.Fatal(err)
	}
	if fitted.LOOCV() < base.LOOCV() {
		t.Fatalf("LOO-CV fit decreased pseudo-likelihood: %g < %g", fitted.LOOCV(), base.LOOCV())
	}
	// The CV-fitted model must also predict well.
	for xv := 0.5; xv < 5; xv += 0.7 {
		p := fitted.Predict([]float64{xv})
		if math.Abs(p.Mean-math.Sin(xv)) > 0.15 {
			t.Fatalf("LOO-CV model inaccurate at %g: %g vs %g", xv, p.Mean, math.Sin(xv))
		}
	}
}

// LML and LOO-CV model selection should broadly agree on well-behaved
// data (both near the truth) — this is the comparison the paper deferred.
func TestLMLvsLOOCVAgreeOnCleanData(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	n := 25
	x := mat.New(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, float64(i)*0.25)
		y[i] = math.Sin(x.At(i, 0)) + 0.05*rng.NormFloat64()
	}
	// Each fit gets its own kernel: Fit mutates kernel hyperparameters.
	mkCfg := func() Config {
		return Config{Kernel: kernel.NewRBF(1, 1), NoiseInit: 0.1, NoiseFloor: 1e-3,
			Optimize: true, Restarts: 3}
	}
	lml, err := Fit(mkCfg(), x, y, rand.New(rand.NewSource(74)))
	if err != nil {
		t.Fatal(err)
	}
	cv, err := FitLOOCV(mkCfg(), x, y, rand.New(rand.NewSource(74)))
	if err != nil {
		t.Fatal(err)
	}
	// Both selection routes must track the ground truth closely at
	// interior points; they may extrapolate differently outside the
	// data, so compare to truth rather than pairwise.
	check := func(name string, g *GP) {
		var worst float64
		for xv := 0.5; xv < 5.5; xv += 0.4 {
			if d := math.Abs(g.Predict([]float64{xv}).Mean - math.Sin(xv)); d > worst {
				worst = d
			}
		}
		if worst > 0.25 {
			t.Fatalf("%s-selected model off truth by %g on clean data", name, worst)
		}
	}
	check("LML", lml)
	check("LOO-CV", cv)
}

// Condition must equal Augmented (full refit with the same
// hyperparameters) in its predictions.
func TestConditionMatchesAugmented(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	n := 15
	x := mat.New(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.Float64()*4)
		x.Set(i, 1, rng.Float64()*4)
		y[i] = math.Sin(x.At(i, 0)) * math.Cos(x.At(i, 1))
	}
	cfg := Config{Kernel: kernel.NewRBF(1, 1), NoiseInit: 0.1, Normalize: true}
	g, err := Fit(cfg, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	newX := []float64{2, 2}
	newY := 0.3
	fast, err := g.Condition(newX, newY)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := g.Augmented(newX, newY)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		q := []float64{rng.Float64() * 4, rng.Float64() * 4}
		pf := fast.Predict(q)
		ps := slow.Predict(q)
		if math.Abs(pf.Mean-ps.Mean) > 1e-8 || math.Abs(pf.SD-ps.SD) > 1e-8 {
			t.Fatalf("Condition %+v vs Augmented %+v at %v", pf, ps, q)
		}
	}
	if fast.NumTrain() != n+1 {
		t.Fatalf("NumTrain = %d", fast.NumTrain())
	}
	// LMLs must agree too.
	if math.Abs(fast.LML()-slow.LML()) > 1e-6*(1+math.Abs(slow.LML())) {
		t.Fatalf("LML %g vs %g", fast.LML(), slow.LML())
	}
}

func TestConditionChainsRepeatedly(t *testing.T) {
	x := mat.NewFromRows([][]float64{{0}})
	g, err := Fit(Config{Kernel: kernel.NewRBF(1, 1), NoiseInit: 0.1}, x, []float64{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cur := g
	for i := 1; i <= 10; i++ {
		cur, err = cur.Condition([]float64{float64(i) * 0.5}, math.Sin(float64(i)*0.5))
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if cur.NumTrain() != 11 {
		t.Fatalf("NumTrain = %d", cur.NumTrain())
	}
	// The chained model interpolates its data.
	p := cur.Predict([]float64{2.5})
	if math.Abs(p.Mean-math.Sin(2.5)) > 0.1 {
		t.Fatalf("chained model inaccurate: %g vs %g", p.Mean, math.Sin(2.5))
	}
}

func TestConditionDimMismatch(t *testing.T) {
	x := mat.NewFromRows([][]float64{{0}})
	g, err := Fit(Config{Kernel: kernel.NewRBF(1, 1), NoiseInit: 0.1}, x, []float64{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Condition([]float64{0, 1}, 0); err == nil {
		t.Fatal("expected dimension error")
	}
}

func BenchmarkConditionVsAugmented(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 300
	x := mat.New(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.Float64()*10)
		x.Set(i, 1, rng.Float64()*10)
		y[i] = math.Sin(x.At(i, 0))
	}
	g, err := Fit(Config{Kernel: kernel.NewRBF(1, 1), NoiseInit: 0.1}, x, y, nil)
	if err != nil {
		b.Fatal(err)
	}
	newX := []float64{5, 5}
	b.Run("condition-o_n2", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := g.Condition(newX, 0.5); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("augmented-o_n3", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := g.Augmented(newX, 0.5); err != nil {
				b.Fatal(err)
			}
		}
	})
}
