package gp

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/kernel"
	"repro/internal/mat"
)

// modelFile is the JSON-serializable form of a fitted GP: training data,
// kernel identity + hyperparameters, noise, and normalization constants.
// The factorization is rebuilt on load, so files stay small and remain
// valid across numerical-kernel changes.
type modelFile struct {
	KernelName  string      `json:"kernel"`
	KernelHyper []float64   `json:"kernel_hyper"`
	LogSN       float64     `json:"log_sn"`
	YMean       float64     `json:"y_mean"`
	YStd        float64     `json:"y_std"`
	Dims        int         `json:"dims"`
	X           [][]float64 `json:"x"`
	Y           []float64   `json:"y"` // model-space targets
	Jitter      float64     `json:"jitter"`
}

// kernelRegistry rebuilds kernels by name with placeholder parameters;
// SetHyper restores the fitted values. ARD needs the dimension count.
func kernelByName(name string, dims int) (kernel.Kernel, error) {
	switch name {
	case "RBF":
		return kernel.NewRBF(1, 1), nil
	case "ARD":
		ls := make([]float64, dims)
		for i := range ls {
			ls[i] = 1
		}
		return kernel.NewARD(ls, 1), nil
	case "Matern32":
		return kernel.NewMatern32(1, 1), nil
	case "Matern52":
		return kernel.NewMatern52(1, 1), nil
	case "RationalQuadratic":
		return kernel.NewRationalQuadratic(1, 1, 1), nil
	case "Periodic":
		return kernel.NewPeriodic(1, 1, 1), nil
	default:
		return nil, fmt.Errorf("gp: cannot reconstruct kernel %q (composite kernels are not persistable)", name)
	}
}

// Save writes the fitted model as JSON. Only primitive kernel families
// are supported (their identity survives the Name round trip); composite
// kernels return an error.
func (g *GP) Save(w io.Writer) error {
	if _, err := kernelByName(g.kern.Name(), g.x.Cols()); err != nil {
		return err
	}
	mf := modelFile{
		KernelName:  g.kern.Name(),
		KernelHyper: g.kern.Hyper(),
		LogSN:       g.logSN,
		YMean:       g.yMean,
		YStd:        g.yStd,
		Dims:        g.x.Cols(),
		Y:           append([]float64(nil), g.y...),
		Jitter:      g.cfg.Jitter,
	}
	mf.X = make([][]float64, g.x.Rows())
	for i := range mf.X {
		mf.X[i] = append([]float64(nil), g.x.RawRow(i)...)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(mf)
}

// Load reconstructs a fitted GP written by Save, refactorizing the
// covariance. The loaded model predicts identically to the saved one.
func Load(r io.Reader) (*GP, error) {
	var mf modelFile
	if err := json.NewDecoder(r).Decode(&mf); err != nil {
		return nil, fmt.Errorf("gp: decoding model: %w", err)
	}
	if len(mf.X) == 0 || len(mf.X) != len(mf.Y) {
		return nil, fmt.Errorf("gp: model file has %d inputs and %d targets", len(mf.X), len(mf.Y))
	}
	if mf.Dims <= 0 {
		return nil, fmt.Errorf("gp: model file dimension mismatch")
	}
	for i, row := range mf.X {
		if len(row) != mf.Dims {
			return nil, fmt.Errorf("gp: model file row %d has %d coordinates, want %d",
				i, len(row), mf.Dims)
		}
	}
	if mf.YStd <= 0 || math.IsNaN(mf.YStd) {
		return nil, fmt.Errorf("gp: model file has invalid y_std %g", mf.YStd)
	}
	k, err := kernelByName(mf.KernelName, mf.Dims)
	if err != nil {
		return nil, err
	}
	if len(mf.KernelHyper) != k.NumHyper() {
		return nil, fmt.Errorf("gp: model file has %d hyperparameters for kernel %s (want %d)",
			len(mf.KernelHyper), mf.KernelName, k.NumHyper())
	}
	k.SetHyper(mf.KernelHyper)

	cfg := Config{Kernel: k, Jitter: mf.Jitter}
	g := &GP{
		cfg:   cfg.withDefaults(),
		kern:  k,
		x:     mat.NewFromRows(mf.X),
		y:     append(mat.Vec(nil), mf.Y...),
		yMean: mf.YMean,
		yStd:  mf.YStd,
		logSN: mf.LogSN,
	}
	if err := g.factorize(); err != nil {
		return nil, err
	}
	return g, nil
}
