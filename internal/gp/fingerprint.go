package gp

import (
	"hash/fnv"
	"math"
)

// Fingerprint returns a deterministic 64-bit digest of the fitted model
// state: kernel log-hyperparameters, log σn, the normalization
// constants, and the exact bit patterns of the training inputs and
// (model-space) targets. Two GPs with equal fingerprints were built
// from bit-identical data at bit-identical hyperparameters and
// therefore produce bit-identical predictions.
//
// The serving layer uses this as a cheap integrity check: a resumed
// campaign replays its observation journal and compares the rebuilt
// model's fingerprint against the one recorded at checkpoint time, so
// any nondeterminism in the replay surfaces as a fingerprint mismatch
// instead of a silently diverging suggestion stream.
func (g *GP) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v float64) {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, v := range g.kern.Hyper() {
		put(v)
	}
	put(g.logSN)
	put(g.yMean)
	put(g.yStd)
	put(float64(g.x.Rows()))
	for _, v := range g.x.Raw() {
		put(v)
	}
	for _, v := range g.y {
		put(v)
	}
	return h.Sum64()
}
