package gp

import (
	"fmt"
	"math"

	"repro/internal/kernel"
	"repro/internal/mat"
)

// Prediction is the posterior predictive distribution at one input point
// (paper Eqs. 4–6): Gaussian with the given mean and standard deviation.
type Prediction struct {
	Mean float64
	SD   float64 // standard deviation of the latent function posterior
}

// CI returns the mean ± z·SD confidence interval bounds; z = 2 gives the
// ~95% interval drawn in the paper's figures.
func (p Prediction) CI(z float64) (lo, hi float64) {
	return p.Mean - z*p.SD, p.Mean + z*p.SD
}

// Predict returns the posterior predictive mean and SD at x
// (Eqs. 5 and 6): μ* = k*ᵀ Ky⁻¹ y, σ*² = k** − k*ᵀ Ky⁻¹ k*.
func (g *GP) Predict(x []float64) Prediction {
	if len(x) != g.x.Cols() {
		panic(fmt.Sprintf("gp: Predict dim %d, model trained on %d", len(x), g.x.Cols()))
	}
	n := g.x.Rows()
	ks := make(mat.Vec, n)
	for i := 0; i < n; i++ {
		ks[i] = g.kern.Eval(x, g.x.RawRow(i))
	}
	mu := mat.Dot(ks, g.alpha)
	// σ*² via the Cholesky factor: v = L⁻¹k*, σ*² = k** − vᵀv.
	v := g.chol.ForwardSubst(ks)
	variance := g.kern.Eval(x, x) - mat.Dot(v, v)
	if variance < 0 {
		variance = 0 // numerical round-off guard
	}
	return Prediction{
		Mean: g.yMean + g.yStd*mu,
		SD:   g.yStd * math.Sqrt(variance),
	}
}

// PredictNoisy is Predict with the observation noise σn² added to the
// predictive variance — the distribution of a future *measurement* rather
// than of the latent function.
func (g *GP) PredictNoisy(x []float64) Prediction {
	p := g.Predict(x)
	sn := g.yStd * math.Exp(g.logSN)
	p.SD = math.Sqrt(p.SD*p.SD + sn*sn)
	return p
}

// PredictBatch evaluates the predictive distribution at every row of xs.
func (g *GP) PredictBatch(xs *mat.Dense) []Prediction {
	if xs.Cols() != g.x.Cols() {
		panic(fmt.Sprintf("gp: PredictBatch dim %d, model trained on %d", xs.Cols(), g.x.Cols()))
	}
	m := xs.Rows()
	predictBatches.Inc()
	predictPoints.Add(int64(m))
	out := make([]Prediction, m)
	// Cross-covariance computed in one pass: K* is m x n. One scratch
	// vector serves every row's triangular solve — the batch allocates
	// O(n) once instead of O(m·n) across the pool.
	kstar := kernel.CrossMatrix(g.kern, xs, g.x)
	v := make(mat.Vec, g.x.Rows())
	for i := 0; i < m; i++ {
		ks := mat.Vec(kstar.RawRow(i))
		mu := mat.Dot(ks, g.alpha)
		g.chol.ForwardSubstInto(v, ks)
		xi := xs.RawRow(i)
		variance := g.kern.Eval(xi, xi) - mat.Dot(v, v)
		if variance < 0 {
			variance = 0
		}
		out[i] = Prediction{
			Mean: g.yMean + g.yStd*mu,
			SD:   g.yStd * math.Sqrt(variance),
		}
	}
	return out
}

// Means extracts the mean of each prediction.
func Means(ps []Prediction) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = p.Mean
	}
	return out
}

// SDs extracts the standard deviation of each prediction.
func SDs(ps []Prediction) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = p.SD
	}
	return out
}
