package gp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/stats"
)

// Monte Carlo over many posterior draws must recover the predictive mean
// and variance at each point.
func TestPosteriorSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(110))
	x, y := sinData(rng, 12, 0.05)
	g, err := Fit(Config{Kernel: kernel.NewRBF(1, 1), NoiseInit: 0.1, FixedNoise: true}, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	grid := mat.NewFromRows([][]float64{{0.7}, {2.9}, {5.1}, {9.0}})
	const draws = 3000
	samples := make([][]float64, grid.Rows())
	for i := range samples {
		samples[i] = make([]float64, 0, draws)
	}
	for d := 0; d < draws; d++ {
		s, err := g.PosteriorSample(grid, rng)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range s {
			samples[i] = append(samples[i], v)
		}
	}
	for i := 0; i < grid.Rows(); i++ {
		p := g.Predict(grid.RawRow(i))
		mcMean := stats.Mean(samples[i])
		mcSD := stats.StdDev(samples[i])
		if math.Abs(mcMean-p.Mean) > 0.06*(1+math.Abs(p.Mean)) {
			t.Fatalf("point %d: MC mean %g vs predictive %g", i, mcMean, p.Mean)
		}
		if math.Abs(mcSD-p.SD) > 0.1*(p.SD+0.02) {
			t.Fatalf("point %d: MC SD %g vs predictive %g", i, mcSD, p.SD)
		}
	}
}

// Joint draws must be smooth: correlations between nearby points mean the
// sampled curve cannot jump wildly between adjacent grid cells, unlike
// independent marginal draws.
func TestPosteriorSampleIsCorrelated(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	x, y := sinData(rng, 8, 0.05)
	g, err := Fit(Config{Kernel: kernel.NewRBF(1.5, 1), NoiseInit: 0.1, FixedNoise: true}, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Dense grid far from data: prior-dominated where marginal SD ≈ 1.
	n := 40
	grid := mat.New(n, 1)
	for i := 0; i < n; i++ {
		grid.Set(i, 0, 20+0.05*float64(i)) // spacing ≪ length scale
	}
	var jointRough, indepRough float64
	const draws = 50
	for d := 0; d < draws; d++ {
		s, err := g.PosteriorSample(grid, rng)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < n; i++ {
			jointRough += math.Abs(s[i] - s[i-1])
		}
		for i := 1; i < n; i++ {
			a := g.Predict(grid.RawRow(i))
			indepRough += math.Abs(a.SD * (rng.NormFloat64() - rng.NormFloat64()))
		}
	}
	if jointRough >= indepRough/3 {
		t.Fatalf("joint draws too rough: %g vs independent %g", jointRough, indepRough)
	}
}

func TestPosteriorSampleValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	x, y := sinData(rng, 5, 0.05)
	g, err := Fit(Config{Kernel: kernel.NewRBF(1, 1), NoiseInit: 0.1}, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.PosteriorSample(mat.New(2, 2), rng); err == nil {
		t.Fatal("expected dimension error")
	}
	if _, err := g.PosteriorSample(mat.New(2, 1), nil); err == nil {
		t.Fatal("expected rng error")
	}
}

// Samples at training points with tiny noise must pass near the data.
func TestPosteriorSampleInterpolates(t *testing.T) {
	x := mat.NewFromRows([][]float64{{0}, {1}, {2}})
	y := []float64{0, 1, 0}
	g, err := Fit(Config{Kernel: kernel.NewRBF(1, 1), NoiseInit: 1e-3, FixedNoise: true}, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(113))
	s, err := g.PosteriorSample(x, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := range y {
		if math.Abs(s[i]-y[i]) > 0.05 {
			t.Fatalf("sample at training point %d: %g vs %g", i, s[i], y[i])
		}
	}
}
