package gp

import (
	"bytes"
	"testing"

	"repro/internal/kernel"
	"repro/internal/mat"
)

// validModelJSON builds a fitted model and returns its Save output — the
// well-formed corpus seed the fuzzer mutates.
func validModelJSON(f *testing.F) []byte {
	f.Helper()
	xs := [][]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {0.5, 0.5}}
	ys := []float64{0, 1, 2, 3, 1.5}
	g, err := Fit(Config{Kernel: kernel.NewRBF(1, 1), NoiseInit: 0.1, FixedNoise: true},
		mat.NewFromRows(xs), ys, nil)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzPersistRoundTrip feeds adversarial bytes to Load. Invalid input
// must be rejected with an error, never a panic; any input Load accepts
// must survive a full Save→Load round trip with byte-identical
// predictions — the persistence contract behind model checkpointing.
func FuzzPersistRoundTrip(f *testing.F) {
	valid := validModelJSON(f)
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"kernel":"RBF","kernel_hyper":[0,0],"y_std":1,"dims":1,"x":[[0]],"y":[1]}`))
	f.Add([]byte(`{"kernel":"Matern52","kernel_hyper":[0,0],"y_std":0,"dims":1,"x":[[0]],"y":[1]}`))
	f.Add(bytes.Replace(valid, []byte(`"RBF"`), []byte(`"Periodic"`), 1))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<13 {
			t.Skip("oversized input: factorization cost, not parsing, would dominate")
		}
		// Load refactorizes (with jitter retries), so cap the training-set
		// size up front: '[' count bounds the number of encoded rows.
		if bytes.Count(data, []byte("[")) > 64 {
			t.Skip("too many rows: O(n³) factorization would dominate")
		}
		g, err := Load(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly — the expected path for garbage
		}

		// Accepted models must be fully usable.
		probe := append([]float64(nil), g.TrainX().RawRow(0)...)
		p1 := g.Predict(probe)

		var buf bytes.Buffer
		if err := g.Save(&buf); err != nil {
			t.Fatalf("Load accepted a model Save cannot write: %v", err)
		}
		g2, err := Load(&buf)
		if err != nil {
			t.Fatalf("round-tripped model failed to load: %v", err)
		}
		if g2.NumTrain() != g.NumTrain() {
			t.Fatalf("round trip changed training size %d → %d", g.NumTrain(), g2.NumTrain())
		}
		p2 := g2.Predict(probe)
		if p1 != p2 {
			t.Fatalf("round trip changed prediction: %+v → %+v", p1, p2)
		}
	})
}
