package gp

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/obs"
)

// Auto-tier metrics: which tier each FitAuto resolved to, and how many
// resolutions went through the held-out contest rather than a size rule.
var (
	autoPickDense  = obs.C("gp.automodel.dense")
	autoPickSparse = obs.C("gp.automodel.sparse")
	autoContests   = obs.C("gp.automodel.contest")
)

// TierOptions tunes the sparse and auto model tiers layered on top of a
// dense Config. The zero value selects sensible defaults everywhere.
type TierOptions struct {
	// Inducing is the sparse-tier inducing-point count m (default 64).
	Inducing int
	// HyperSubsample caps the rows used for hyperparameter optimization
	// before a sparse fit (default 256; negative uses all rows). The
	// subsample is strided — deterministic and order-preserving — so a
	// refit from a checkpoint sees the identical slice.
	HyperSubsample int
	// Jitter stabilizes the sparse Kmm factorization
	// (default SparseConfig's 1e-8).
	Jitter float64
	// GrowRadius is passed through to SparseConfig.GrowRadius.
	GrowRadius float64
	// Crossover is the auto-tier boundary: n below it fits dense
	// outright (default 512).
	Crossover int
	// ContestCap bounds the auto-tier contest window: n above it fits
	// sparse outright (default 2·Crossover). Between Crossover and
	// ContestCap both tiers are fitted on a prefix and scored on a
	// held-out tail by predictive log density.
	ContestCap int
	// Holdout is the contest tail size (default n/8 clamped to [8, 128]).
	Holdout int
}

func (o TierOptions) withDefaults() TierOptions {
	if o.Inducing <= 0 {
		o.Inducing = 64
	}
	if o.HyperSubsample == 0 {
		o.HyperSubsample = 256
	}
	if o.Crossover <= 0 {
		o.Crossover = 512
	}
	if o.ContestCap <= 0 {
		o.ContestCap = 2 * o.Crossover
	}
	return o
}

// stridedIndices returns min(n, cap) strictly increasing row indices
// spread evenly over [0, n) — a deterministic subsample that keeps the
// row order and endpoints structure, unlike a shuffled draw, so resumed
// refits reproduce it exactly. cap <= 0 means all rows.
func stridedIndices(n, cap int) []int {
	if cap <= 0 || cap >= n {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	idx := make([]int, cap)
	for j := range idx {
		idx[j] = j * n / cap
	}
	return idx
}

func subsampleRows(x *mat.Dense, y []float64, idx []int) (*mat.Dense, []float64) {
	if len(idx) == x.Rows() {
		return x, y
	}
	sx := mat.New(len(idx), x.Cols())
	sy := make([]float64, len(idx))
	for i, j := range idx {
		copy(sx.RawRow(i), x.RawRow(j))
		sy[i] = y[j]
	}
	return sx, sy
}

// FitSparseHyper fits the sparse tier end to end: dense hyperparameter
// optimization (cfg.Optimize, cfg.Restarts) on a strided subsample of at
// most opts.HyperSubsample rows — the O(s³) part — then a sparse fit over
// the full data at those hyperparameters with a deterministic inducing
// selection. The subsample keeps hyper fitting affordable at large n;
// when it covers all rows the optimization consumes the rng stream
// exactly as a dense FitCtx on the same data would, which is what the
// m = n trace-equivalence tests rely on.
func FitSparseHyper(ctx context.Context, cfg Config, opts TierOptions, x *mat.Dense, y []float64, rng *rand.Rand) (*SparseGP, error) {
	opts = opts.withDefaults()
	if x == nil || x.Rows() == 0 {
		return nil, ErrNoData
	}
	sx, sy := subsampleRows(x, y, stridedIndices(x.Rows(), opts.HyperSubsample))
	hyperGP, err := FitCtx(ctx, cfg, sx, sy, rng)
	if err != nil {
		return nil, fmt.Errorf("gp: sparse hyper fit: %w", err)
	}
	scfg := SparseConfig{
		Kernel:     hyperGP.Kernel(),
		Noise:      hyperGP.Noise(),
		Inducing:   opts.Inducing,
		Normalize:  cfg.Normalize,
		Jitter:     opts.Jitter,
		GrowRadius: opts.GrowRadius,
	}
	s, err := FitSparse(scfg, x, y, nil)
	if err != nil {
		return nil, err
	}
	s.logSN = hyperGP.LogNoise() // exact, no exp/log round trip
	s.refreshAfterNoise()
	return s, nil
}

// refreshAfterNoise recomputes the σn-dependent state (A factor, β, LML)
// after logSN was overwritten with an exact stored value.
func (s *SparseGP) refreshAfterNoise() {
	// assemble cannot fail here: it succeeded moments ago at a noise
	// level differing only in the last float64 bits; if it somehow does,
	// the previous consistent state is kept.
	_ = s.assemble()
}

// AutoModel is the self-selecting model tier: a dense GP below the
// crossover size, a sparse GP above it, with a held-out predictive
// contest deciding the ambiguous middle band. It exposes the union of
// the query surface both tiers share and delegates to whichever won.
type AutoModel struct {
	dense  *GP
	sparse *SparseGP
}

// Tier reports which tier backs the model: "dense" or "sparse".
func (a *AutoModel) Tier() string {
	if a.dense != nil {
		return "dense"
	}
	return "sparse"
}

// Dense returns the dense backing model, or nil for the sparse tier.
func (a *AutoModel) Dense() *GP { return a.dense }

// Sparse returns the sparse backing model, or nil for the dense tier.
func (a *AutoModel) Sparse() *SparseGP { return a.sparse }

// FitAuto fits hyperparameters on a strided subsample, then resolves the
// model tier by size: dense below opts.Crossover, sparse above
// opts.ContestCap, and in between whichever tier scores a higher
// predictive log density on a held-out tail when both are fitted on the
// remaining prefix at the shared hyperparameters. The decision is
// deterministic given the hyperparameters, so a resumed campaign
// re-resolves to the same tier.
func FitAuto(ctx context.Context, cfg Config, opts TierOptions, x *mat.Dense, y []float64, rng *rand.Rand) (*AutoModel, error) {
	opts = opts.withDefaults()
	if x == nil || x.Rows() == 0 {
		return nil, ErrNoData
	}
	sx, sy := subsampleRows(x, y, stridedIndices(x.Rows(), opts.HyperSubsample))
	hyperGP, err := FitCtx(ctx, cfg, sx, sy, rng)
	if err != nil {
		return nil, fmt.Errorf("gp: auto hyper fit: %w", err)
	}
	return autoResolve(cfg, opts, x, y, hyperGP.Kernel().Hyper(), hyperGP.LogNoise())
}

// AutoAtHypers rebuilds an auto-tier model at an exact recorded
// hyperparameter state — the checkpoint-resume path. The tier contest is
// re-run deterministically at those hyperparameters, reproducing the
// tier choice and model the live fit made.
func AutoAtHypers(cfg Config, opts TierOptions, x *mat.Dense, y []float64, kernelHyper []float64, logSN float64) (*AutoModel, error) {
	opts = opts.withDefaults()
	if x == nil || x.Rows() == 0 {
		return nil, ErrNoData
	}
	return autoResolve(cfg, opts, x, y, kernelHyper, logSN)
}

func autoResolve(cfg Config, opts TierOptions, x *mat.Dense, y []float64, hyper []float64, logSN float64) (*AutoModel, error) {
	n := x.Rows()
	pick := "dense"
	switch {
	case n < opts.Crossover:
	case n > opts.ContestCap:
		pick = "sparse"
	default:
		var err error
		pick, err = contestTiers(cfg, opts, x, y, hyper, logSN)
		if err != nil {
			return nil, err
		}
	}
	if pick == "dense" {
		autoPickDense.Inc()
		g, err := FitAtHypers(cfg, x, y, hyper, logSN)
		if err != nil {
			return nil, err
		}
		return &AutoModel{dense: g}, nil
	}
	autoPickSparse.Inc()
	s, err := FitSparseAtHypers(sparseConfigFrom(cfg, opts), x, y, hyper, logSN)
	if err != nil {
		return nil, err
	}
	return &AutoModel{sparse: s}, nil
}

func sparseConfigFrom(cfg Config, opts TierOptions) SparseConfig {
	return SparseConfig{
		Kernel:     cfg.Kernel,
		Inducing:   opts.Inducing,
		Normalize:  cfg.Normalize,
		Jitter:     opts.Jitter,
		GrowRadius: opts.GrowRadius,
	}
}

// contestTiers fits both tiers on the prefix of the data at the shared
// hyperparameters and scores the held-out tail by Gaussian predictive
// log density (measurement distribution: latent variance plus σn²). The
// tail — the most recent observations — is exactly the region an active
// learner is about to exploit, so it is the right judge of which
// approximation to trust next.
func contestTiers(cfg Config, opts TierOptions, x *mat.Dense, y []float64, hyper []float64, logSN float64) (string, error) {
	n := x.Rows()
	h := opts.Holdout
	if h <= 0 {
		h = n / 8
		if h < 8 {
			h = 8
		}
		if h > 128 {
			h = 128
		}
	}
	if h >= n {
		return "dense", nil
	}
	autoContests.Inc()
	trainX := x.SubRows(0, n-h)
	trainY := y[:n-h]
	testX := x.SubRows(n-h, n)
	testY := y[n-h:]

	dense, err := FitAtHypers(cfg, trainX, trainY, hyper, logSN)
	if err != nil {
		return "", fmt.Errorf("gp: auto contest dense fit: %w", err)
	}
	sparse, err := FitSparseAtHypers(sparseConfigFrom(cfg, opts), trainX, trainY, hyper, logSN)
	if err != nil {
		return "", fmt.Errorf("gp: auto contest sparse fit: %w", err)
	}
	dScore := holdoutLogDensity(dense.PredictBatch(testX), testY, dense.ObservationNoise())
	sScore := holdoutLogDensity(sparse.PredictBatch(testX), testY, sparse.ObservationNoise())
	// The dense tier wins ties: it is the exact model, and the sparse
	// tier must demonstrate it loses nothing before taking over.
	if sScore > dScore {
		return "sparse", nil
	}
	return "dense", nil
}

func holdoutLogDensity(preds []Prediction, y []float64, obsNoise float64) float64 {
	var s float64
	for i, p := range preds {
		v := p.SD*p.SD + obsNoise*obsNoise
		if v < 1e-12 {
			v = 1e-12
		}
		d := y[i] - p.Mean
		s += -0.5*(d*d/v) - 0.5*math.Log(2*math.Pi*v)
	}
	return s
}

// Predict delegates to the backing tier.
func (a *AutoModel) Predict(x []float64) Prediction {
	if a.dense != nil {
		return a.dense.Predict(x)
	}
	return a.sparse.Predict(x)
}

// PredictBatch delegates to the backing tier.
func (a *AutoModel) PredictBatch(xs *mat.Dense) []Prediction {
	if a.dense != nil {
		return a.dense.PredictBatch(xs)
	}
	return a.sparse.PredictBatch(xs)
}

// UpdateWithPoint folds one observation into the backing tier without
// re-resolving the tier choice — re-selection happens at the next full
// refit, where hyperparameters are re-optimized anyway.
func (a *AutoModel) UpdateWithPoint(x []float64, y float64) (*AutoModel, error) {
	if a.dense != nil {
		g, err := a.dense.UpdateWithPoint(x, y)
		if err != nil {
			return nil, err
		}
		return &AutoModel{dense: g}, nil
	}
	s, err := a.sparse.UpdateWithPoint(x, y)
	if err != nil {
		return nil, err
	}
	return &AutoModel{sparse: s}, nil
}

// Kernel returns the backing tier's kernel; mutating it invalidates the
// model.
func (a *AutoModel) Kernel() kernel.Kernel {
	if a.dense != nil {
		return a.dense.Kernel()
	}
	return a.sparse.Kernel()
}

// NumTrain delegates to the backing tier.
func (a *AutoModel) NumTrain() int {
	if a.dense != nil {
		return a.dense.NumTrain()
	}
	return a.sparse.NumTrain()
}

// LML delegates to the backing tier.
func (a *AutoModel) LML() float64 {
	if a.dense != nil {
		return a.dense.LML()
	}
	return a.sparse.LML()
}

// Noise delegates to the backing tier.
func (a *AutoModel) Noise() float64 {
	if a.dense != nil {
		return a.dense.Noise()
	}
	return a.sparse.Noise()
}

// LogNoise delegates to the backing tier.
func (a *AutoModel) LogNoise() float64 {
	if a.dense != nil {
		return a.dense.LogNoise()
	}
	return a.sparse.LogNoise()
}

// ObservationNoise delegates to the backing tier.
func (a *AutoModel) ObservationNoise() float64 {
	if a.dense != nil {
		return a.dense.ObservationNoise()
	}
	return a.sparse.ObservationNoise()
}

// TrainX delegates to the backing tier.
func (a *AutoModel) TrainX() *mat.Dense {
	if a.dense != nil {
		return a.dense.TrainX()
	}
	return a.sparse.TrainX()
}

// TrainY delegates to the backing tier.
func (a *AutoModel) TrainY() []float64 {
	if a.dense != nil {
		return a.dense.TrainY()
	}
	return a.sparse.TrainY()
}

// Fingerprint is the backing tier's fingerprint XOR-tagged with the tier
// name, so a dense and a sparse model over identical data cannot collide.
func (a *AutoModel) Fingerprint() uint64 {
	const denseTag, sparseTag = 0x64656e7365000000, 0x7370617273650000
	if a.dense != nil {
		return a.dense.Fingerprint() ^ denseTag
	}
	return a.sparse.Fingerprint() ^ sparseTag
}
