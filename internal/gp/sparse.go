package gp

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/obs"
)

// Sparse-tier metrics (see OBSERVABILITY.md): fits, and the three
// incremental-update outcomes — rank-one factor update, inducing-set
// growth, and the degenerate full-refit fallback. The inducing gauge
// tracks the current m of the most recently built model.
var (
	sparseFits     = obs.C("gp.sparse.fit.count")
	sparseRank1    = obs.C("gp.sparse.update.rank1")
	sparseGrow     = obs.C("gp.sparse.update.grow")
	sparseRefit    = obs.C("gp.sparse.update.refit")
	sparseInducing = obs.G("gp.sparse.inducing")
)

// SparseGP is an inducing-point approximation of GP regression (Subset of
// Regressors mean with the DTC variance correction), reducing the cost of
// a fit from O(n³) to O(n·m²) for m ≪ n inducing points. It addresses the
// paper's closing future-work item: "we plan to investigate computational
// requirements of competing GPR and AL algorithms and consider available
// optimizations" — this is the standard optimization for AL on datasets
// with thousands of candidate experiments.
//
// With U the inducing set, Kmm = k(U, U), Knm = k(X, U):
//
//	A   = Kmm + σn⁻² Knmᵀ Knm
//	μ*  = σn⁻² k*mᵀ A⁻¹ Knmᵀ y
//	σ*² = k** − k*mᵀ Kmm⁻¹ k*m + k*mᵀ A⁻¹ k*m   (DTC)
//
// When the inducing set equals the full training set these reduce exactly
// to the dense GP equations — the property the equivalence tests pin
// down, from single predictions up to whole AL campaigns.
//
// Like the dense GP, a fitted *SparseGP is an immutable snapshot: every
// query method only reads, and UpdateWithPoint returns a new model
// sharing the unchanged factors, so concurrent Predict/PredictBatch
// calls may race an update on another goroutine freely.
type SparseGP struct {
	kern kernel.Kernel
	u    *mat.Dense // inducing inputs, one per row
	x    *mat.Dense // training inputs, one per row
	y    mat.Vec    // training targets in model space (possibly normalized)

	cholK *mat.Cholesky
	cholA *mat.Cholesky
	beta  mat.Vec // A⁻¹ Knmᵀ y / σn²
	kty   mat.Vec // Knmᵀ y, maintained incrementally
	logSN float64

	jitter float64 // diagonal stabilizer added to Kmm
	growD2 float64 // squared inducing radius: farther points grow U
	lml    float64 // DTC log marginal likelihood

	yMean, yStd float64
}

// sparseMaxTarget bounds accepted |y|: beyond it the weight solve and
// prediction dot products can overflow float64 into NaN even though every
// input is finite, so such targets are rejected up front (fit and update).
const sparseMaxTarget = 1e150

// SparseConfig configures a sparse fit.
type SparseConfig struct {
	// Kernel is the covariance function; required. Hyperparameters are
	// used as-is (fit them on a subsample with Fit first if needed).
	Kernel kernel.Kernel
	// Noise is the observation noise standard deviation σn
	// (default 0.1).
	Noise float64
	// Inducing is the number of inducing points m (default min(n, 64)).
	Inducing int
	// Normalize standardizes y before fitting.
	Normalize bool
	// Jitter stabilizes the Kmm factorization (default 1e-8, scaled by
	// the matrix magnitude).
	Jitter float64
	// GrowRadius overrides the incremental-update growth threshold: a
	// new observation farther than this (Euclidean) from every inducing
	// point extends the inducing set instead of rank-one-updating the
	// factors. Zero derives the threshold from the farthest-point
	// sampling radius at fit time (zero when m = n, so the m = n tier
	// stays exact under updates). Negative disables growth entirely.
	GrowRadius float64
}

// FitSparse builds a sparse GP over (x, y). Inducing inputs are chosen by
// farthest-point sampling seeded from rng (nil rng starts from row 0 —
// the deterministic choice checkpoint resume depends on), which spreads
// them across the occupied input space. Non-finite inputs or targets are
// rejected with an error.
func FitSparse(cfg SparseConfig, x *mat.Dense, y []float64, rng *rand.Rand) (*SparseGP, error) {
	if cfg.Kernel == nil {
		return nil, errors.New("gp: SparseConfig.Kernel is required")
	}
	if x == nil || x.Rows() == 0 {
		return nil, ErrNoData
	}
	n := x.Rows()
	if n != len(y) {
		return nil, fmt.Errorf("gp: %d inputs but %d targets", n, len(y))
	}
	for _, v := range x.Raw() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, errors.New("gp: sparse fit rejects non-finite inputs")
		}
	}
	for _, v := range y {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > sparseMaxTarget {
			return nil, errors.New("gp: sparse fit rejects non-finite or overflow-range targets")
		}
	}
	m := cfg.Inducing
	if m <= 0 {
		m = 64
	}
	if m > n {
		m = n
	}
	noise := cfg.Noise
	if noise <= 0 {
		noise = 0.1
	}
	jitter := cfg.Jitter
	if jitter <= 0 {
		jitter = 1e-8
	}

	yMean, yStd := 0.0, 1.0
	ys := append(mat.Vec(nil), y...)
	if cfg.Normalize {
		yMean = mean(ys)
		yStd = stddev(ys, yMean)
		if math.IsNaN(yMean) || math.IsInf(yMean, 0) || math.IsInf(yStd, 0) {
			// Finite targets whose moments overflow float64: no
			// normalization can represent them.
			return nil, errors.New("gp: sparse fit cannot normalize targets of this magnitude")
		}
		if yStd <= 0 || math.IsNaN(yStd) {
			yStd = 1
		}
		for i := range ys {
			ys[i] = (ys[i] - yMean) / yStd
		}
	}

	idx, radius2 := farthestPointSample(x, m, rng)
	u := mat.New(m, x.Cols())
	for i, j := range idx {
		copy(u.RawRow(i), x.RawRow(j))
	}
	growD2 := radius2
	if cfg.GrowRadius > 0 {
		growD2 = cfg.GrowRadius * cfg.GrowRadius
	} else if cfg.GrowRadius < 0 {
		growD2 = math.Inf(1)
	}

	s := &SparseGP{
		kern: cfg.Kernel, u: u, x: x.Clone(), y: ys,
		logSN: math.Log(noise), jitter: jitter, growD2: growD2,
		yMean: yMean, yStd: yStd,
	}
	if err := s.assemble(); err != nil {
		return nil, err
	}
	if !finiteVec(s.beta) {
		// Factorization succeeded but the weights overflowed (extreme
		// target or noise magnitudes): reject rather than hand back a
		// model whose predictions would be NaN.
		return nil, errors.New("gp: sparse fit produced non-finite weights")
	}
	sparseFits.Inc()
	sparseInducing.Set(float64(m))
	return s, nil
}

// finiteVec reports whether every entry of v is finite.
func finiteVec(v mat.Vec) bool {
	for _, e := range v {
		if math.IsNaN(e) || math.IsInf(e, 0) {
			return false
		}
	}
	return true
}

// FitSparseAtHypers builds a sparse GP at an exact, previously fitted
// hyperparameter state — kernel log-hyperparameters plus log σn — the
// checkpoint-resume path mirroring FitAtHypers: with the same data and
// a nil-rng (deterministic) inducing selection it reproduces the model
// a live fit at those hypers built, bit for bit.
func FitSparseAtHypers(cfg SparseConfig, x *mat.Dense, y []float64, kernelHyper []float64, logSN float64) (*SparseGP, error) {
	if cfg.Kernel == nil {
		return nil, errors.New("gp: SparseConfig.Kernel is required")
	}
	cfg.Kernel.SetHyper(kernelHyper)
	cfg.Noise = math.Exp(logSN)
	s, err := FitSparse(cfg, x, y, nil)
	if err != nil {
		return nil, err
	}
	s.logSN = logSN // exact, no exp/log round trip
	if err := s.assemble(); err != nil {
		return nil, err
	}
	if !finiteVec(s.beta) {
		return nil, errors.New("gp: sparse fit produced non-finite weights")
	}
	return s, nil
}

// assemble (re)builds the factors, weights and DTC likelihood from the
// stored kernel/inducing/training state — the O(n·m²) core of a fit,
// also reused by the inducing-growth and degenerate-refit update paths.
func (s *SparseGP) assemble() error {
	kmm := kernel.Matrix(s.kern, s.u)
	kmm.AddDiag(s.jitter * (1 + kmm.MaxAbs()))
	cholK, _, err := mat.NewCholeskyJitter(kmm, 0, 20)
	if err != nil {
		return fmt.Errorf("gp: sparse Kmm factorization: %w", err)
	}
	s.cholK = cholK

	// Knm assembly through the cache-blocked distance path when the
	// kernel supports it; SyrkTBlocked streams the tall n×m panel.
	knm := kernel.CrossMatrixDist(s.kern, s.x, s.u)
	sn2 := math.Exp(2 * s.logSN)
	a := mat.SyrkTBlocked(knm)
	a.Scale(1 / sn2)
	a.Add(kmm)
	cholA, _, err := mat.NewCholeskyJitter(a, 0, 20)
	if err != nil {
		return fmt.Errorf("gp: sparse A factorization: %w", err)
	}
	s.cholA = cholA

	s.kty = knm.MulVecT(s.y)
	s.refreshWeights(sn2)
	return nil
}

// refreshWeights recomputes β and the DTC log marginal likelihood from
// the current factors and Knmᵀy — O(m²) plus one O(n) dot product.
func (s *SparseGP) refreshWeights(sn2 float64) {
	s.beta = s.cholA.SolveVec(s.kty)
	for i := range s.beta {
		s.beta[i] /= sn2
	}
	// DTC marginal likelihood of y under N(0, Qnn + σn²I) via the
	// matrix inversion lemma: the quadratic form is
	// (yᵀy − ktyᵀβ)/σn² and the log determinant is
	// 2n·log σn + log det A − log det Kmm.
	n := float64(len(s.y))
	quad := (mat.Dot(s.y, s.y) - mat.Dot(s.kty, s.beta)) / sn2
	logdet := n*math.Log(sn2) + s.cholA.LogDet() - s.cholK.LogDet()
	s.lml = -0.5*quad - 0.5*logdet - 0.5*n*math.Log(2*math.Pi)
}

// UpdateWithPoint returns a new sparse GP incorporating one additional
// observation (x, y) at the current hyperparameters, in O(n·m) worst
// case:
//
//   - when x lies within the inducing radius of U, the factor of
//     A = Kmm + σn⁻²KnmᵀKnm receives a rank-one update with the vector
//     k(U,x)/σn (O(m²)), Knmᵀy is updated in place, and β is re-solved;
//   - when x is farther than the inducing radius from every inducing
//     point, U grows by x and the factors are rebuilt at unchanged
//     hyperparameters (O(n·m²)) — the farthest-point growth rule that
//     keeps the approximation anchored where data actually lands;
//   - when the rank-one update degenerates numerically, the model falls
//     back to the same full re-assembly, mirroring the dense
//     degenerate-pivot contract of (*GP).UpdateWithPoint.
//
// The receiver is never modified; unchanged factors are shared between
// snapshots, so readers of the old model are undisturbed.
func (s *SparseGP) UpdateWithPoint(x []float64, y float64) (*SparseGP, error) {
	if len(x) != s.u.Cols() {
		return nil, fmt.Errorf("gp: sparse UpdateWithPoint dim %d, model trained on %d", len(x), s.u.Cols())
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, errors.New("gp: sparse update rejects non-finite inputs")
		}
	}
	if math.IsNaN(y) || math.IsInf(y, 0) || math.Abs(y) > sparseMaxTarget {
		return nil, errors.New("gp: sparse update rejects non-finite or overflow-range targets")
	}

	n := s.x.Rows()
	nx := mat.New(n+1, s.x.Cols())
	copy(nx.Raw(), s.x.Raw())
	copy(nx.RawRow(n), x)
	yn := (y - s.yMean) / s.yStd
	ny := append(s.y.Clone(), yn)

	out := &SparseGP{
		kern: s.kern, u: s.u, x: nx, y: ny,
		cholK: s.cholK, logSN: s.logSN, jitter: s.jitter, growD2: s.growD2,
		yMean: s.yMean, yStd: s.yStd,
	}

	// Distance from the new point to the inducing set decides the path.
	minD2 := math.Inf(1)
	for i := 0; i < s.u.Rows(); i++ {
		if d2 := sqDistVec(x, s.u.RawRow(i)); d2 < minD2 {
			minD2 = d2
		}
	}
	if minD2 > s.growD2 {
		sparseGrow.Inc()
		u2 := mat.New(s.u.Rows()+1, s.u.Cols())
		copy(u2.Raw(), s.u.Raw())
		copy(u2.RawRow(s.u.Rows()), x)
		out.u = u2
		if err := out.assemble(); err != nil {
			return nil, err
		}
		sparseInducing.Set(float64(u2.Rows()))
		return out, nil
	}

	m := s.u.Rows()
	km := make(mat.Vec, m)
	for i := 0; i < m; i++ {
		km[i] = s.kern.Eval(x, s.u.RawRow(i))
	}
	sn := math.Exp(s.logSN)
	sn2 := sn * sn
	v := make(mat.Vec, m)
	for i, kv := range km {
		v[i] = kv / sn
	}
	cholA2 := s.cholA.RankOneUpdate(v)
	ok := true
	for i := 0; i < m; i++ {
		if d := cholA2.L().At(i, i); d <= 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			ok = false
			break
		}
	}
	if ok {
		out.cholA = cholA2
		out.kty = s.kty.Clone()
		for i, kv := range km {
			out.kty[i] += kv * yn
		}
		out.refreshWeights(sn2)
		ok = finiteVec(out.beta)
	}
	if !ok {
		// Degenerate rank-one update (bad factor pivot or overflowed
		// weights): rebuild the factors from scratch at unchanged
		// hyperparameters rather than failing the caller — the sparse
		// mirror of the dense bordered-pivot fallback.
		sparseRefit.Inc()
		if err := out.assemble(); err != nil {
			return nil, fmt.Errorf("gp: sparse incremental update and refit both failed: %w", err)
		}
		return out, nil
	}
	sparseRank1.Inc()
	return out, nil
}

// farthestPointSample picks m row indices spreading over the inputs:
// start from a random row (row 0 with a nil rng), then repeatedly take
// the row farthest from the chosen set. The second return is the squared
// covering radius at stop — max over rows of the distance to the chosen
// set — which seeds the incremental-update growth threshold (zero when
// every row was chosen).
func farthestPointSample(x *mat.Dense, m int, rng *rand.Rand) ([]int, float64) {
	n := x.Rows()
	start := 0
	if rng != nil {
		start = rng.Intn(n)
	}
	chosen := []int{start}
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = sqDistRows(x, i, start)
	}
	minDist[start] = -1 // never re-pick a chosen row
	for len(chosen) < m {
		best, bestD := -1, math.Inf(-1)
		for i, d := range minDist {
			if d > bestD {
				best, bestD = i, d
			}
		}
		chosen = append(chosen, best)
		minDist[best] = -1
		for i := range minDist {
			if minDist[i] < 0 {
				continue
			}
			if d := sqDistRows(x, i, best); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	var radius2 float64
	for _, d := range minDist {
		if d > radius2 {
			radius2 = d
		}
	}
	return chosen, radius2
}

func sqDistRows(x *mat.Dense, i, j int) float64 {
	return sqDistVec(x.RawRow(i), x.RawRow(j))
}

func sqDistVec(a, b []float64) float64 {
	var s float64
	for d, av := range a {
		diff := av - b[d]
		s += diff * diff
	}
	return s
}

// NumInducing returns the inducing-set size m.
func (s *SparseGP) NumInducing() int { return s.u.Rows() }

// NumTrain returns the number of training points.
func (s *SparseGP) NumTrain() int { return s.x.Rows() }

// TrainX returns the training inputs (aliased; do not mutate).
func (s *SparseGP) TrainX() *mat.Dense { return s.x }

// TrainY returns the training targets in original (unnormalized) units.
func (s *SparseGP) TrainY() []float64 {
	out := make([]float64, len(s.y))
	for i, v := range s.y {
		out[i] = s.yMean + s.yStd*v
	}
	return out
}

// Kernel returns the kernel; mutating it invalidates the model.
func (s *SparseGP) Kernel() kernel.Kernel { return s.kern }

// Noise returns the noise standard deviation σn in model space.
func (s *SparseGP) Noise() float64 { return math.Exp(s.logSN) }

// LogNoise returns log σn exactly as stored, for checkpointing.
func (s *SparseGP) LogNoise() float64 { return s.logSN }

// ObservationNoise returns σn in the original response units.
func (s *SparseGP) ObservationNoise() float64 { return s.yStd * math.Exp(s.logSN) }

// LML returns the DTC log marginal likelihood — the sparse counterpart
// of the dense LML, comparable across model tiers on the same data.
func (s *SparseGP) LML() float64 { return s.lml }

// Fingerprint returns a deterministic 64-bit digest of the fitted model
// state, mirroring (*GP).Fingerprint: kernel log-hyperparameters,
// log σn, normalization constants, and the exact bit patterns of the
// inducing inputs, training inputs and model-space targets. Equal
// fingerprints mean bit-identical predictions, which is what the
// serving layer's resume-integrity check compares.
func (s *SparseGP) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v float64) {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, v := range s.kern.Hyper() {
		put(v)
	}
	put(s.logSN)
	put(s.yMean)
	put(s.yStd)
	put(float64(s.u.Rows()))
	for _, v := range s.u.Raw() {
		put(v)
	}
	put(float64(s.x.Rows()))
	for _, v := range s.x.Raw() {
		put(v)
	}
	for _, v := range s.y {
		put(v)
	}
	return h.Sum64()
}

// Predict returns the approximate posterior at x.
func (s *SparseGP) Predict(x []float64) Prediction {
	if len(x) != s.u.Cols() {
		panic(fmt.Sprintf("gp: sparse Predict dim %d, model has %d", len(x), s.u.Cols()))
	}
	m := s.u.Rows()
	km := make(mat.Vec, m)
	for i := 0; i < m; i++ {
		km[i] = s.kern.Eval(x, s.u.RawRow(i))
	}
	mu := mat.Dot(km, s.beta)
	// DTC variance: k** − k*ᵀKmm⁻¹k* + k*ᵀA⁻¹k*.
	prior := s.kern.Eval(x, x)
	variance := prior - s.cholK.QuadForm(km) + s.cholA.QuadForm(km)
	if math.IsNaN(variance) || math.IsInf(variance, 0) {
		// The two correction terms cancelled past float precision
		// (near-singular Kmm): keep the prior bound — conservative for
		// the AL loop, which treats high SD as "worth measuring".
		variance = prior
	}
	if variance < 0 {
		variance = 0
	}
	return Prediction{
		Mean: s.yMean + s.yStd*mu,
		SD:   s.yStd * math.Sqrt(variance),
	}
}

// PredictBatch evaluates the sparse posterior at every row of xs.
func (s *SparseGP) PredictBatch(xs *mat.Dense) []Prediction {
	out := make([]Prediction, xs.Rows())
	for i := range out {
		out[i] = s.Predict(xs.RawRow(i))
	}
	return out
}
