package gp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/kernel"
	"repro/internal/mat"
)

// SparseGP is an inducing-point approximation of GP regression (Subset of
// Regressors mean with the DTC variance correction), reducing the cost of
// a fit from O(n³) to O(n·m²) for m ≪ n inducing points. It addresses the
// paper's closing future-work item: "we plan to investigate computational
// requirements of competing GPR and AL algorithms and consider available
// optimizations" — this is the standard optimization for AL on datasets
// with thousands of candidate experiments.
//
// With U the inducing set, Kmm = k(U, U), Knm = k(X, U):
//
//	A   = Kmm + σn⁻² Kmnᵀ·... = Kmm + σn⁻² Knmᵀ Knm
//	μ*  = σn⁻² k*mᵀ A⁻¹ Knmᵀ y
//	σ*² = k** − k*mᵀ Kmm⁻¹ k*m + k*mᵀ A⁻¹ k*m   (DTC)
//
// When the inducing set equals the full training set these reduce exactly
// to the dense GP equations — the property the tests pin down.
type SparseGP struct {
	kern  kernel.Kernel
	u     *mat.Dense // inducing inputs, one per row
	cholK *mat.Cholesky
	cholA *mat.Cholesky
	beta  mat.Vec // A⁻¹ Knmᵀ y / σn²
	logSN float64

	yMean, yStd float64
}

// SparseConfig configures a sparse fit.
type SparseConfig struct {
	// Kernel is the covariance function; required. Hyperparameters are
	// used as-is (fit them on a subsample with Fit first if needed).
	Kernel kernel.Kernel
	// Noise is the observation noise standard deviation σn
	// (default 0.1).
	Noise float64
	// Inducing is the number of inducing points m (default min(n, 64)).
	Inducing int
	// Normalize standardizes y before fitting.
	Normalize bool
	// Jitter stabilizes the Kmm factorization (default 1e-8).
	Jitter float64
}

// FitSparse builds a sparse GP over (x, y). Inducing inputs are chosen by
// farthest-point sampling seeded from rng (nil rng starts from row 0),
// which spreads them across the occupied input space.
func FitSparse(cfg SparseConfig, x *mat.Dense, y []float64, rng *rand.Rand) (*SparseGP, error) {
	if cfg.Kernel == nil {
		return nil, errors.New("gp: SparseConfig.Kernel is required")
	}
	if x == nil || x.Rows() == 0 {
		return nil, ErrNoData
	}
	n := x.Rows()
	if n != len(y) {
		return nil, fmt.Errorf("gp: %d inputs but %d targets", n, len(y))
	}
	m := cfg.Inducing
	if m <= 0 {
		m = 64
	}
	if m > n {
		m = n
	}
	noise := cfg.Noise
	if noise <= 0 {
		noise = 0.1
	}
	jitter := cfg.Jitter
	if jitter <= 0 {
		jitter = 1e-8
	}

	s := &SparseGP{kern: cfg.Kernel, logSN: math.Log(noise), yMean: 0, yStd: 1}
	ys := append(mat.Vec(nil), y...)
	if cfg.Normalize {
		s.yMean = mean(ys)
		s.yStd = stddev(ys, s.yMean)
		if s.yStd <= 0 || math.IsNaN(s.yStd) {
			s.yStd = 1
		}
		for i := range ys {
			ys[i] = (ys[i] - s.yMean) / s.yStd
		}
	}

	idx := farthestPointSample(x, m, rng)
	s.u = mat.New(m, x.Cols())
	for i, j := range idx {
		copy(s.u.RawRow(i), x.RawRow(j))
	}

	kmm := kernel.Matrix(s.kern, s.u)
	kmm.AddDiag(jitter * (1 + kmm.MaxAbs()))
	cholK, _, err := mat.NewCholeskyJitter(kmm, 0, 20)
	if err != nil {
		return nil, fmt.Errorf("gp: sparse Kmm factorization: %w", err)
	}
	s.cholK = cholK

	knm := kernel.CrossMatrix(s.kern, x, s.u) // n×m
	sn2 := noise * noise
	a := mat.SyrkT(knm) // Knmᵀ Knm (m×m)
	a.Scale(1 / sn2)
	a.Add(kmm)
	cholA, _, err := mat.NewCholeskyJitter(a, 0, 20)
	if err != nil {
		return nil, fmt.Errorf("gp: sparse A factorization: %w", err)
	}
	s.cholA = cholA

	kty := knm.MulVecT(ys) // Knmᵀ y (m)
	s.beta = cholA.SolveVec(kty)
	for i := range s.beta {
		s.beta[i] /= sn2
	}
	return s, nil
}

// farthestPointSample picks m row indices spreading over the inputs:
// start from a random row, then repeatedly take the row farthest from the
// chosen set.
func farthestPointSample(x *mat.Dense, m int, rng *rand.Rand) []int {
	n := x.Rows()
	start := 0
	if rng != nil {
		start = rng.Intn(n)
	}
	chosen := []int{start}
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = sqDistRows(x, i, start)
	}
	for len(chosen) < m {
		best, bestD := -1, -1.0
		for i, d := range minDist {
			if d > bestD {
				best, bestD = i, d
			}
		}
		chosen = append(chosen, best)
		for i := range minDist {
			if d := sqDistRows(x, i, best); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	return chosen
}

func sqDistRows(x *mat.Dense, i, j int) float64 {
	a, b := x.RawRow(i), x.RawRow(j)
	var s float64
	for d, av := range a {
		diff := av - b[d]
		s += diff * diff
	}
	return s
}

// NumInducing returns the inducing-set size m.
func (s *SparseGP) NumInducing() int { return s.u.Rows() }

// Predict returns the approximate posterior at x.
func (s *SparseGP) Predict(x []float64) Prediction {
	if len(x) != s.u.Cols() {
		panic(fmt.Sprintf("gp: sparse Predict dim %d, model has %d", len(x), s.u.Cols()))
	}
	m := s.u.Rows()
	km := make(mat.Vec, m)
	for i := 0; i < m; i++ {
		km[i] = s.kern.Eval(x, s.u.RawRow(i))
	}
	mu := mat.Dot(km, s.beta)
	// DTC variance: k** − k*ᵀKmm⁻¹k* + k*ᵀA⁻¹k*.
	variance := s.kern.Eval(x, x) - s.cholK.QuadForm(km) + s.cholA.QuadForm(km)
	if variance < 0 {
		variance = 0
	}
	return Prediction{
		Mean: s.yMean + s.yStd*mu,
		SD:   s.yStd * math.Sqrt(variance),
	}
}

// PredictBatch evaluates the sparse posterior at every row of xs.
func (s *SparseGP) PredictBatch(xs *mat.Dense) []Prediction {
	out := make([]Prediction, xs.Rows())
	for i := range out {
		out[i] = s.Predict(xs.RawRow(i))
	}
	return out
}
