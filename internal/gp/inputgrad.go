package gp

import (
	"fmt"
	"math"

	"repro/internal/kernel"
	"repro/internal/mat"
)

// PredictGrad returns the predictive distribution at x together with the
// input-space gradients of the mean and standard deviation:
//
//	∂μ/∂x  = (∂k*/∂x)ᵀ α
//	∂σ²/∂x = ∂k**/∂x − 2 (∂k*/∂x)ᵀ Ky⁻¹ k*
//
// The kernel must implement kernel.InputGradient. These gradients enable
// continuous candidate optimization by ascent on σ(x) (paper §VI).
func (g *GP) PredictGrad(x []float64) (Prediction, []float64, []float64, error) {
	ig, ok := g.kern.(kernel.InputGradient)
	if !ok {
		return Prediction{}, nil, nil, fmt.Errorf("gp: kernel %s does not provide input gradients", g.kern.Name())
	}
	if len(x) != g.x.Cols() {
		return Prediction{}, nil, nil, fmt.Errorf("gp: PredictGrad dim %d, model trained on %d", len(x), g.x.Cols())
	}
	n := g.x.Rows()
	d := len(x)

	ks := make(mat.Vec, n)
	// dks[j][i] = ∂k(x, x_i)/∂x_j, stored per dimension.
	dks := make([]mat.Vec, d)
	for j := range dks {
		dks[j] = make(mat.Vec, n)
	}
	grad := make([]float64, d)
	for i := 0; i < n; i++ {
		ks[i] = ig.EvalInputGrad(x, g.x.RawRow(i), grad)
		for j := 0; j < d; j++ {
			dks[j][i] = grad[j]
		}
	}

	mu := mat.Dot(ks, g.alpha)
	kinvKs := g.chol.SolveVec(ks)
	selfGrad := make([]float64, d)
	kxx := ig.EvalInputGrad(x, x, selfGrad)
	variance := kxx - mat.Dot(ks, kinvKs)
	if variance < 0 {
		variance = 0
	}
	sd := math.Sqrt(variance)

	dMean := make([]float64, d)
	dSD := make([]float64, d)
	for j := 0; j < d; j++ {
		dMean[j] = g.yStd * mat.Dot(dks[j], g.alpha)
		// d k(x,x)/dx = 2 ∂₁k(x,x) by kernel symmetry (zero for
		// stationary kernels).
		dVar := 2*selfGrad[j] - 2*mat.Dot(dks[j], kinvKs)
		if sd > 1e-12 {
			dSD[j] = g.yStd * dVar / (2 * sd)
		}
	}
	return Prediction{Mean: g.yMean + g.yStd*mu, SD: g.yStd * sd}, dMean, dSD, nil
}
