package gp

import (
	"fmt"

	"repro/internal/mat"
)

// TrainY returns the training targets in original (unnormalized) units.
func (g *GP) TrainY() []float64 {
	out := make([]float64, len(g.y))
	for i, v := range g.y {
		out[i] = g.yMean + g.yStd*v
	}
	return out
}

// Augmented returns a new GP conditioned on the training data plus one
// additional observation (x, y), keeping the current hyperparameters and
// normalization constants and refactorizing from scratch (O(n³)). It is
// the reference implementation that Condition (the O(n²) bordered-update
// fast path) is tested against; both support fantasy updates such as the
// kriging-believer batch selection in package al.
func (g *GP) Augmented(x []float64, y float64) (*GP, error) {
	if len(x) != g.x.Cols() {
		return nil, fmt.Errorf("gp: Augmented dim %d, model trained on %d", len(x), g.x.Cols())
	}
	n := g.x.Rows()
	nx := mat.New(n+1, g.x.Cols())
	for i := 0; i < n; i++ {
		copy(nx.RawRow(i), g.x.RawRow(i))
	}
	copy(nx.RawRow(n), x)
	ny := append(g.y.Clone(), (y-g.yMean)/g.yStd)

	out := &GP{
		cfg:   g.cfg,
		kern:  g.kern,
		x:     nx,
		y:     ny,
		yMean: g.yMean,
		yStd:  g.yStd,
		logSN: g.logSN,
	}
	if err := out.factorize(); err != nil {
		return nil, err
	}
	return out, nil
}
