package gp

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// Condition returns a new GP incorporating one additional observation
// (x, y) via an O(n²) bordered-Cholesky update — no refactorization and
// no hyperparameter change. This is the "available optimization" the
// paper's future work points at for online AL: between hyperparameter
// refits, each new measurement costs a rank-1 update instead of an O(n³)
// refit (Augmented is the slow general path; Condition the fast one).
//
// Normalization constants are kept from the original fit, so conditioning
// is exact only relative to those constants — re-fit periodically when
// the response distribution drifts.
func (g *GP) Condition(x []float64, y float64) (*GP, error) {
	if len(x) != g.x.Cols() {
		return nil, fmt.Errorf("gp: Condition dim %d, model trained on %d", len(x), g.x.Cols())
	}
	conditionOps.Inc()
	n := g.x.Rows()

	// Border of the covariance matrix: b_i = k(x, x_i), c = k(x,x)+σn².
	border := make(mat.Vec, n)
	for i := 0; i < n; i++ {
		border[i] = g.kern.Eval(x, g.x.RawRow(i))
	}
	diag := g.kern.Eval(x, x) + math.Exp(2*g.logSN) + g.jitter

	ext, err := g.chol.Extended(border, diag)
	if err != nil {
		return nil, fmt.Errorf("gp: Condition update failed: %w", err)
	}

	nx := mat.New(n+1, g.x.Cols())
	for i := 0; i < n; i++ {
		copy(nx.RawRow(i), g.x.RawRow(i))
	}
	copy(nx.RawRow(n), x)
	ny := append(g.y.Clone(), (y-g.yMean)/g.yStd)

	out := &GP{
		cfg:    g.cfg,
		kern:   g.kern,
		x:      nx,
		y:      ny,
		yMean:  g.yMean,
		yStd:   g.yStd,
		logSN:  g.logSN,
		chol:   ext,
		jitter: g.jitter,
	}
	out.alpha = ext.SolveVec(ny)
	out.lml = -0.5*mat.Dot(ny, out.alpha) - 0.5*ext.LogDet() -
		0.5*float64(n+1)*math.Log(2*math.Pi)
	return out, nil
}
