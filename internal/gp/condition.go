package gp

// Condition returns a new GP incorporating one additional observation
// (x, y) via an O(n²) bordered-Cholesky update — no refactorization and
// no hyperparameter change. This is the "available optimization" the
// paper's future work points at for online AL: between hyperparameter
// refits, each new measurement costs a rank-1 update instead of an O(n³)
// refit (Augmented is the slow general path; Condition the fast one).
//
// Condition is the historical name of UpdateWithPoint and now shares its
// implementation, including the fall-back to a full refactorization at
// unchanged hyperparameters when the bordered update is numerically
// degenerate.
func (g *GP) Condition(x []float64, y float64) (*GP, error) {
	return g.UpdateWithPoint(x, y)
}
