package al

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gp"
	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/optimize"
)

func TestRunEMCMValidation(t *testing.T) {
	d := synthDS(t, 30, 0.05, 40)
	p := synthPartition(t, d, 41)
	if _, err := RunEMCM(d, p, EMCMConfig{}, nil); err == nil {
		t.Fatal("expected missing-response error")
	}
	bad := dataset.Partition{Initial: []int{0}}
	if _, err := RunEMCM(d, bad, EMCMConfig{Response: "y"}, nil); err == nil {
		t.Fatal("expected empty-active error")
	}
}

func TestRunEMCMLearnsLinearData(t *testing.T) {
	// Linear data is EMCM's home turf (OLS weak learners).
	rng := rand.New(rand.NewSource(42))
	d := dataset.New([]string{"x"}, []string{"y"})
	for i := 0; i < 50; i++ {
		x := float64(i) / 10
		d.AddRow([]float64{x}, []float64{2*x + 1 + 0.05*rng.NormFloat64()}, nil, 1)
	}
	p := synthPartition(t, d, 43)
	// Seed with a few points so the bootstrap ensemble is meaningful.
	p.Initial = append(p.Initial, p.Active[:3]...)
	p.Active = p.Active[3:]
	res, err := RunEMCM(d, p, EMCMConfig{Response: "y", Iterations: 15}, rand.New(rand.NewSource(44)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 15 {
		t.Fatalf("%d records", len(res.Records))
	}
	last := res.Records[len(res.Records)-1]
	if last.RMSE > 0.1 {
		t.Fatalf("EMCM final RMSE %g on linear data", last.RMSE)
	}
	// No revisiting: all selected rows distinct.
	seen := map[int]bool{}
	for _, r := range res.Records {
		if seen[r.Row] {
			t.Fatalf("EMCM revisited row %d", r.Row)
		}
		seen[r.Row] = true
	}
	if res.Strategy != "emcm" {
		t.Fatalf("strategy name %q", res.Strategy)
	}
}

func TestRunEMCMStopsAtPoolExhaustion(t *testing.T) {
	d := synthDS(t, 20, 0.05, 45)
	p := synthPartition(t, d, 46)
	res, err := RunEMCM(d, p, EMCMConfig{Response: "y"}, rand.New(rand.NewSource(47)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != len(p.Active) {
		t.Fatalf("%d records for %d pool points", len(res.Records), len(p.Active))
	}
}

func TestRunOnlineWithOracle(t *testing.T) {
	// Candidate grid over [0, 4]; oracle is the true function plus noise.
	rng := rand.New(rand.NewSource(50))
	grid := mat.New(30, 1)
	for i := 0; i < 30; i++ {
		grid.Set(i, 0, 4*float64(i)/29)
	}
	calls := 0
	oracle := OracleFunc(func(x []float64) (float64, float64, error) {
		calls++
		y := math.Sin(2*x[0]) + 0.5*x[0] + 0.02*rng.NormFloat64()
		return y, math.Pow(10, y), nil
	})
	cfg := quickLoop(VarianceReduction{}, 12)
	res, err := RunOnline(grid, []int{15}, oracle, cfg, rand.New(rand.NewSource(51)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 12 {
		t.Fatalf("%d records", len(res.Records))
	}
	if calls != 13 { // 1 seed + 12 iterations
		t.Fatalf("oracle called %d times, want 13", calls)
	}
	// The final model must predict the true function decently.
	var worst float64
	for x := 0.2; x < 4; x += 0.3 {
		p := res.Final.Predict([]float64{x})
		if e := math.Abs(p.Mean - (math.Sin(2*x) + 0.5*x)); e > worst {
			worst = e
		}
	}
	if worst > 0.35 {
		t.Fatalf("online model max error %g", worst)
	}
	// AMSD should have dropped substantially from start to end.
	if !(res.Records[len(res.Records)-1].AMSD < res.Records[0].AMSD) {
		t.Fatal("online AMSD did not decrease")
	}
}

func TestRunOnlineValidation(t *testing.T) {
	grid := mat.New(5, 1)
	ora := OracleFunc(func(x []float64) (float64, float64, error) { return 0, 0, nil })
	cfg := quickLoop(VarianceReduction{}, 2)
	if _, err := RunOnline(grid, []int{0}, nil, cfg, nil); err == nil {
		t.Fatal("expected missing-oracle error")
	}
	if _, err := RunOnline(mat.New(0, 1), []int{0}, ora, cfg, nil); err == nil {
		t.Fatal("expected empty-grid error")
	}
	if _, err := RunOnline(grid, nil, ora, cfg, nil); err == nil {
		t.Fatal("expected missing-seed error")
	}
	if _, err := RunOnline(grid, []int{99}, ora, cfg, nil); err == nil {
		t.Fatal("expected out-of-range seed error")
	}
}

func TestRunOnlineOracleErrorPropagates(t *testing.T) {
	grid := mat.New(5, 1)
	for i := 0; i < 5; i++ {
		grid.Set(i, 0, float64(i))
	}
	boom := errors.New("boom")
	ora := OracleFunc(func(x []float64) (float64, float64, error) { return 0, 0, boom })
	cfg := quickLoop(VarianceReduction{}, 2)
	if _, err := RunOnline(grid, []int{0}, ora, cfg, nil); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestBatchSelectDiversifies(t *testing.T) {
	// Train a GP on a few points, then ask for 2 picks from candidates
	// clustered at two far-apart locations. Naive top-2-by-SD would take
	// both from the farther cluster; kriging believer must split.
	x := mat.NewFromRows([][]float64{{0}, {1}, {2}})
	y := []float64{0, 1, 0}
	g, err := gp.Fit(gp.Config{Kernel: kernel.NewRBF(1, 1), NoiseInit: 0.1}, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	cands := []Candidate{
		{Row: 0, X: []float64{10.0}},
		{Row: 1, X: []float64{10.01}},
		{Row: 2, X: []float64{-10.0}},
		{Row: 3, X: []float64{-10.01}},
	}
	picks, err := BatchSelect(g, cands, 2, VarianceReduction{}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) != 2 {
		t.Fatalf("%d picks", len(picks))
	}
	side := func(row int) int {
		if row <= 1 {
			return 1
		}
		return -1
	}
	if side(picks[0]) == side(picks[1]) {
		t.Fatalf("believer picked both from one cluster: %v", picks)
	}
}

func TestBatchSelectValidation(t *testing.T) {
	if _, err := BatchSelect(nil, nil, 1, VarianceReduction{}, nil); err == nil {
		t.Fatal("expected nil-model error")
	}
	x := mat.NewFromRows([][]float64{{0}})
	g, _ := gp.Fit(gp.Config{Kernel: kernel.NewRBF(1, 1), NoiseInit: 0.1}, x, []float64{0}, nil)
	cands := []Candidate{{Row: 0, X: []float64{1}}}
	if _, err := BatchSelect(g, cands, 5, VarianceReduction{}, nil); err == nil {
		t.Fatal("expected k-too-large error")
	}
}

func TestContinuousSelectFindsHighVariance(t *testing.T) {
	x := mat.NewFromRows([][]float64{{0}, {0.5}, {1}})
	y := []float64{0, 0.5, 1}
	g, err := gp.Fit(gp.Config{Kernel: kernel.NewRBF(0.3, 1), NoiseInit: 0.05}, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	bounds := []optimize.Bounds{{Lo: 0, Hi: 3}}
	best, val, err := ContinuousSelect(g, bounds, VarianceCriterion, 6, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	// Highest variance in [0, 3] is far from the data: near x = 3.
	if best[0] < 2.5 {
		t.Fatalf("selected x=%g, want near 3", best[0])
	}
	if val < g.Predict([]float64{1.5}).SD {
		t.Fatal("criterion value lower than an interior point's SD")
	}
}

func TestContinuousSelectValidation(t *testing.T) {
	if _, _, err := ContinuousSelect(nil, nil, nil, 1, nil); err == nil {
		t.Fatal("expected nil-model error")
	}
	x := mat.NewFromRows([][]float64{{0}})
	g, _ := gp.Fit(gp.Config{Kernel: kernel.NewRBF(1, 1), NoiseInit: 0.1}, x, []float64{0}, nil)
	twoD := []optimize.Bounds{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}}
	if _, _, err := ContinuousSelect(g, twoD, nil, 1, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected bounds-dimension error")
	}
}

func TestGPAugmentedReducesVarianceLocally(t *testing.T) {
	x := mat.NewFromRows([][]float64{{0}, {2}})
	y := []float64{0, 1}
	g, err := gp.Fit(gp.Config{Kernel: kernel.NewRBF(1, 1), NoiseInit: 0.1}, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := g.Predict([]float64{5}).SD
	g2, err := g.Augmented([]float64{5}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	after := g2.Predict([]float64{5}).SD
	if after >= before {
		t.Fatalf("augmentation did not reduce local SD: %g -> %g", before, after)
	}
	if g2.NumTrain() != 3 {
		t.Fatalf("NumTrain = %d", g2.NumTrain())
	}
	// TrainY round trip.
	ty := g2.TrainY()
	if len(ty) != 3 || math.Abs(ty[2]-0.5) > 1e-12 {
		t.Fatalf("TrainY = %v", ty)
	}
}
