package al

import (
	"math"
	"sort"
)

// TradeoffPoint is one point of a cost–error curve.
type TradeoffPoint struct {
	Cost float64
	RMSE float64
}

// TradeoffCurve converts averaged batch curves into a monotone-cost
// cost–error curve (Fig. 8b): for each iteration, the mean cumulative
// cost and mean RMSE.
func TradeoffCurve(c Curves) []TradeoffPoint {
	out := make([]TradeoffPoint, 0, len(c.Iter))
	for i := range c.Iter {
		if math.IsNaN(c.RMSE[i]) {
			continue
		}
		out = append(out, TradeoffPoint{Cost: c.CumCost[i], RMSE: c.RMSE[i]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cost < out[j].Cost })
	return out
}

// RMSEAtCost interpolates a tradeoff curve at the given cost. Costs below
// the curve's start return the first RMSE; beyond the end, the last.
func RMSEAtCost(curve []TradeoffPoint, cost float64) float64 {
	if len(curve) == 0 {
		return math.NaN()
	}
	if cost <= curve[0].Cost {
		return curve[0].RMSE
	}
	for i := 1; i < len(curve); i++ {
		if cost <= curve[i].Cost {
			span := curve[i].Cost - curve[i-1].Cost
			if span <= 0 {
				return curve[i].RMSE
			}
			t := (cost - curve[i-1].Cost) / span
			return curve[i-1].RMSE*(1-t) + curve[i].RMSE*t
		}
	}
	return curve[len(curve)-1].RMSE
}

// Comparison quantifies how a candidate strategy's tradeoff curve relates
// to a baseline's — the numbers behind the paper's "up to 38%" claim.
type Comparison struct {
	// CrossoverCost is the smallest evaluated cost at which the
	// candidate's RMSE is at or below the baseline's (NaN when it never
	// crosses).
	CrossoverCost float64
	// MaxReduction is the maximum relative RMSE reduction
	// (baseline − candidate)/baseline over the common cost range.
	MaxReduction float64
	// MaxReductionCost is the cost where MaxReduction occurs.
	MaxReductionCost float64
	// ReductionAt reports the relative reduction at multiples of
	// CrossoverCost (1, 2, 3, 5, 10) — the paper quotes 38/25/21/16/13%.
	ReductionAt map[float64]float64
}

// Compare evaluates candidate against baseline on a shared log-spaced
// cost grid spanning the overlap of the two curves.
func Compare(baseline, candidate []TradeoffPoint) Comparison {
	cmp := Comparison{CrossoverCost: math.NaN(), ReductionAt: map[float64]float64{}}
	if len(baseline) == 0 || len(candidate) == 0 {
		return cmp
	}
	lo := math.Max(baseline[0].Cost, candidate[0].Cost)
	hi := math.Min(baseline[len(baseline)-1].Cost, candidate[len(candidate)-1].Cost)
	if hi <= lo || lo <= 0 {
		return cmp
	}
	const gridN = 400
	ratio := math.Pow(hi/lo, 1.0/float64(gridN-1))
	cost := lo
	for i := 0; i < gridN; i++ {
		b := RMSEAtCost(baseline, cost)
		c := RMSEAtCost(candidate, cost)
		if c <= b && math.IsNaN(cmp.CrossoverCost) {
			cmp.CrossoverCost = cost
		}
		if b > 0 {
			red := (b - c) / b
			if red > cmp.MaxReduction {
				cmp.MaxReduction = red
				cmp.MaxReductionCost = cost
			}
		}
		cost *= ratio
	}
	if !math.IsNaN(cmp.CrossoverCost) {
		for _, mult := range []float64{1, 2, 3, 5, 10} {
			at := cmp.CrossoverCost * mult
			if at > hi {
				continue
			}
			b := RMSEAtCost(baseline, at)
			c := RMSEAtCost(candidate, at)
			if b > 0 {
				cmp.ReductionAt[mult] = (b - c) / b
			}
		}
	}
	return cmp
}
