package al

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/gp"
	"repro/internal/mat"
)

// Model tier names accepted by LoopConfig.Model and CampaignSpec.Model.
const (
	ModelDense  = "dense"
	ModelSparse = "sparse"
	ModelAuto   = "auto"
)

// ModelOptions tunes the sparse and auto model tiers; the zero value
// uses the gp-layer defaults everywhere. See gp.TierOptions for the
// field semantics.
type ModelOptions struct {
	Inducing       int
	HyperSubsample int
	Crossover      int
	ContestCap     int
	Holdout        int
	Jitter         float64
	GrowRadius     float64
}

func (o ModelOptions) tierOptions() gp.TierOptions {
	return gp.TierOptions{
		Inducing:       o.Inducing,
		HyperSubsample: o.HyperSubsample,
		Crossover:      o.Crossover,
		ContestCap:     o.ContestCap,
		Holdout:        o.Holdout,
		Jitter:         o.Jitter,
		GrowRadius:     o.GrowRadius,
	}
}

// normalizeModel maps the empty tier name to its meaning, dense, so
// configs and checkpoints written before the tier system compare equal
// to explicit "dense".
func normalizeModel(name string) string {
	if name == "" {
		return ModelDense
	}
	return name
}

// validModel reports whether name is a recognized model tier ("" means
// dense, the historical default).
func validModel(name string) bool {
	switch name {
	case "", ModelDense, ModelSparse, ModelAuto:
		return true
	}
	return false
}

// modelFitter dispatches full refits and checkpoint-resume rebuilds to
// the configured model tier. It is the single place the loops touch
// concrete gp types; everything downstream sees Regressor.
type modelFitter struct {
	kind string // "dense" (also ""), "sparse", or "auto"
	opts gp.TierOptions
}

func newModelFitter(c LoopConfig) modelFitter {
	kind := c.Model
	if kind == "" {
		kind = ModelDense
	}
	return modelFitter{kind: kind, opts: c.ModelOptions.tierOptions()}
}

func (f modelFitter) sparseConfig(gcfg gp.Config) gp.SparseConfig {
	opts := f.opts
	return gp.SparseConfig{
		Kernel:     gcfg.Kernel,
		Inducing:   opts.Inducing,
		Normalize:  gcfg.Normalize,
		Jitter:     opts.Jitter,
		GrowRadius: opts.GrowRadius,
	}
}

// refit fits the full training set with hyperparameter optimization,
// warm-started by the caller through gcfg, degrading gracefully:
//
//   - The dense tier runs the full gp.FitRobust chain (fresh fit →
//     previous hypers → reject trailing points).
//   - The sparse and auto tiers fit hyperparameters on a subsample and
//     assemble the tier model; if that fails and a previous model
//     exists, they retry at the previous hyperparameters
//     (DegradeReusedHypers). They never reject points — their
//     assembly is linear in n and does not share the dense tier's
//     trailing-point failure mode — so Degradation.Rejected is always
//     zero outside the dense tier.
//
// RNG contract: one refit consumes exactly the draws of one
// hyperparameter fit (gp.FitCtx) on the healthy path, for every tier —
// the property the m = n sparse/dense trace-equivalence test pins.
func (f modelFitter) refit(ctx context.Context, gcfg gp.Config, x *mat.Dense, y []float64, prev Regressor, rng *rand.Rand) (Regressor, gp.Degradation, error) {
	switch f.kind {
	case ModelSparse:
		s, err := gp.FitSparseHyper(ctx, gcfg, f.opts, x, y, rng)
		if err == nil {
			return sparseRegressor{s}, gp.Degradation{}, nil
		}
		if prevTD, ok := prev.(TrainDataModel); ok {
			if prevN, ok2 := prev.(NoiseModel); ok2 {
				s2, err2 := gp.FitSparseAtHypers(f.sparseConfig(gcfg), x, y, prevTD.Kernel().Hyper(), prevN.LogNoise())
				if err2 == nil {
					return sparseRegressor{s2}, gp.Degradation{Level: gp.DegradeReusedHypers, Err: err}, nil
				}
			}
		}
		return nil, gp.Degradation{}, err
	case ModelAuto:
		a, err := gp.FitAuto(ctx, gcfg, f.opts, x, y, rng)
		if err == nil {
			return autoRegressor{a}, gp.Degradation{}, nil
		}
		if prevTD, ok := prev.(TrainDataModel); ok {
			if prevN, ok2 := prev.(NoiseModel); ok2 {
				a2, err2 := gp.AutoAtHypers(gcfg, f.opts, x, y, prevTD.Kernel().Hyper(), prevN.LogNoise())
				if err2 == nil {
					return autoRegressor{a2}, gp.Degradation{Level: gp.DegradeReusedHypers, Err: err}, nil
				}
			}
		}
		return nil, gp.Degradation{}, err
	default:
		var prevGP *gp.GP
		if prev != nil {
			prevGP, _ = UnwrapGP(prev)
		}
		m, deg, err := gp.FitRobust(ctx, gcfg, x, y, prevGP, rng)
		if err != nil {
			return nil, deg, err
		}
		return denseRegressor{m}, deg, nil
	}
}

// atHypers rebuilds a model deterministically from a recorded
// hyperparameter recipe — the checkpoint-resume path. Every tier
// reproduces the live fit bit for bit: the dense tier via
// gp.FitAtHypers, the sparse tier via a deterministic inducing
// selection at the exact stored log-noise, the auto tier by re-running
// its tier contest at the stored hyperparameters.
func (f modelFitter) atHypers(gcfg gp.Config, x *mat.Dense, y []float64, hyper []float64, logSN float64) (Regressor, error) {
	switch f.kind {
	case ModelSparse:
		s, err := gp.FitSparseAtHypers(f.sparseConfig(gcfg), x, y, hyper, logSN)
		if err != nil {
			return nil, err
		}
		return sparseRegressor{s}, nil
	case ModelAuto:
		a, err := gp.AutoAtHypers(gcfg, f.opts, x, y, hyper, logSN)
		if err != nil {
			return nil, err
		}
		return autoRegressor{a}, nil
	default:
		m, err := gp.FitAtHypers(gcfg, x, y, hyper, logSN)
		if err != nil {
			return nil, err
		}
		return denseRegressor{m}, nil
	}
}

// recipe extracts the checkpointable hyperparameter state of a fitted
// model: kernel log-hypers, exact log σn, and the training size it
// covers.
func modelRecipe(r Regressor) (hyper []float64, logSN float64, n int, err error) {
	td, ok := r.(TrainDataModel)
	if !ok {
		return nil, 0, 0, fmt.Errorf("al: model %T exposes no kernel state to checkpoint", r)
	}
	nm, ok := r.(NoiseModel)
	if !ok {
		return nil, 0, 0, fmt.Errorf("al: model %T exposes no noise state to checkpoint", r)
	}
	return td.Kernel().Hyper(), nm.LogNoise(), r.NumTrain(), nil
}
