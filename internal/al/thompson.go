package al

import (
	"math"
	"math/rand"

	"repro/internal/mat"
	"repro/internal/obs"
)

// ModelAwareStrategy is an optional extension of Strategy for selection
// rules that need the fitted model itself (e.g. joint posterior draws),
// not just per-candidate marginals. The AL loops prefer SelectWithModel
// when a strategy implements it. Strategies discover the capabilities
// they need (training data, posterior sampling) through the optional
// Regressor sub-interfaces and must fall back to their marginal Select
// rule when the model tier lacks them.
type ModelAwareStrategy interface {
	Strategy
	SelectWithModel(model Regressor, cands []Candidate, rng *rand.Rand) int
}

// ThompsonVariance selects by posterior disagreement: draw one joint
// sample f̃ from the GP posterior over the pool and pick the candidate
// where the realization deviates most from the predictive mean,
// argmax |f̃(x) − μ(x)|. In expectation this tracks variance reduction
// (E|f̃−μ| ∝ σ), but the stochastic draw naturally diversifies repeated
// selections — a randomized alternative to the greedy argmax-σ rule,
// relevant to the paper's "less greedy selection strategy" note (§VI).
type ThompsonVariance struct{}

// Select implements Strategy as a marginal fallback (used when no model
// is available): independent draws per candidate.
func (ThompsonVariance) Select(cands []Candidate, rng *rand.Rand) int {
	if len(cands) == 0 {
		return -1
	}
	if rng == nil {
		return VarianceReduction{}.Select(cands, rng)
	}
	best, bestV := -1, math.Inf(-1)
	for i, c := range cands {
		if v := math.Abs(c.Pred.SD * rng.NormFloat64()); v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// SelectWithModel implements ModelAwareStrategy with a joint posterior
// draw, falling back to the marginal rule if the joint covariance cannot
// be factorized or the model tier has no joint sampler (sparse tiers
// expose marginals only).
func (ThompsonVariance) SelectWithModel(model Regressor, cands []Candidate, rng *rand.Rand) int {
	if len(cands) == 0 {
		return -1
	}
	sampler, ok := model.(PosteriorSampler)
	if !ok {
		return (ThompsonVariance{}).Select(cands, rng)
	}
	xs := mat.New(len(cands), len(cands[0].X))
	for i, c := range cands {
		copy(xs.RawRow(i), c.X)
	}
	sample, err := sampler.PosteriorSample(xs, rng)
	if err != nil {
		return (ThompsonVariance{}).Select(cands, rng)
	}
	best, bestV := -1, math.Inf(-1)
	for i, c := range cands {
		if v := math.Abs(sample[i] - c.Pred.Mean); v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// Name implements Strategy.
func (ThompsonVariance) Name() string { return "thompson-variance" }

// selectCandidate dispatches to the model-aware path when available and
// counts the selection under al.strategy.select.<name> (see
// OBSERVABILITY.md) so mixed-strategy deployments can attribute
// experiment spend per selection rule.
func selectCandidate(s Strategy, model Regressor, cands []Candidate, rng *rand.Rand) int {
	obs.C("al.strategy.select." + s.Name()).Inc()
	if ms, ok := s.(ModelAwareStrategy); ok && model != nil {
		return ms.SelectWithModel(model, cands, rng)
	}
	return s.Select(cands, rng)
}
