package al

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/gp"
	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Oracle runs a real experiment at input x, returning the measured
// response and its cost. It is the paper's target "online" use case
// (§VI): every AL iteration schedules and executes the next experiment
// instead of consulting a database.
type Oracle interface {
	RunExperiment(x []float64) (y, cost float64, err error)
}

// OracleFunc adapts a function to the Oracle interface.
type OracleFunc func(x []float64) (y, cost float64, err error)

// RunExperiment implements Oracle.
func (f OracleFunc) RunExperiment(x []float64) (y, cost float64, err error) { return f(x) }

// ErrStopped is the clean-abort sentinel for RunOnline: when the Oracle
// returns an error wrapping ErrStopped, the loop stops immediately —
// no retries, no skip accounting — and RunOnline returns the partial
// Result accumulated so far together with an error wrapping ErrStopped.
// The serving layer's campaign engines use this to unwind a loop whose
// oracle is blocked on a client that will never answer (server
// shutdown): the partial records remain valid and the campaign can be
// resumed later from its observation journal.
var ErrStopped = errors.New("al: stopped")

// RunOnline executes Active Learning against a live Oracle over a finite
// candidate grid. seeds indexes the rows of candidates measured before
// learning starts (≥ 1 required). Candidates stay available for repeated
// measurement. The returned records carry NaN RMSE (there is no held-out
// ground truth online); AMSD remains the convergence monitor.
//
// Oracle failures and non-finite measurements are retried up to
// cfg.RetryBudget additional attempts; a seed that exhausts its budget
// is dropped (an error only if no seed survives), and an AL candidate
// that exhausts it is skipped for that iteration — the model is left
// unchanged and no record is emitted. With cfg.GuardSigma > 0, AL
// measurements farther than that many predictive SDs from the model
// mean are rejected like failures.
func RunOnline(candidates *mat.Dense, seeds []int, oracle Oracle, cfg LoopConfig, rng *rand.Rand) (Result, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	if oracle == nil {
		return Result{}, errors.New("al: RunOnline requires an Oracle")
	}
	if candidates == nil || candidates.Rows() == 0 {
		return Result{}, errors.New("al: RunOnline requires a candidate grid")
	}
	if len(seeds) == 0 {
		return Result{}, errors.New("al: RunOnline requires at least one seed experiment")
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	maxIter := c.Iterations
	if maxIter <= 0 {
		maxIter = candidates.Rows()
	}

	dims := candidates.Cols()
	var trainX [][]float64
	var trainY []float64
	var cumCost float64
	attempts := map[int]int{}
	var lastMeasureErr error

	// runAt measures row with retries; guard, when non-nil, vets the
	// observation before it may enter the training set. Returns false
	// when the retry budget is exhausted (the row is skipped).
	runAt := func(ctx context.Context, row int, guard func(y float64) bool) (bool, error) {
		_, span := obs.Start(ctx, "al.experiment")
		defer span.End()
		x := append([]float64(nil), candidates.RawRow(row)...)
		for try := 0; try <= c.RetryBudget; try++ {
			attempt := attempts[row]
			attempts[row] = attempt + 1
			y, cost, err := oracle.RunExperiment(x)
			if err != nil {
				if errors.Is(err, ErrStopped) {
					// Clean abort: the oracle will never answer again
					// (server shutdown). Unwind without retry/skip noise.
					return false, fmt.Errorf("al: oracle at row %d: %w", row, err)
				}
				lastMeasureErr = fmt.Errorf("al: oracle at row %d: %w", row, err)
				obs.Emit("al.experiment.failed", map[string]any{
					"row": row, "attempt": attempt, "err": err.Error(),
				})
				if try < c.RetryBudget {
					alRetries.Inc()
				}
				continue
			}
			if math.IsNaN(y) || math.IsInf(y, 0) || (guard != nil && guard(y)) {
				alRejected.Inc()
				obs.Emit("al.observation.rejected", map[string]any{
					"row": row, "attempt": attempt, "y": y,
				})
				if try < c.RetryBudget {
					alRetries.Inc()
				}
				continue
			}
			experiments.Inc()
			trainX = append(trainX, x)
			trainY = append(trainY, y)
			cumCost += cost
			return true, nil
		}
		alSkipped.Inc()
		obs.Emit("al.candidate.skipped", map[string]any{"row": row})
		return false, nil
	}
	ctx := context.Background()
	for _, s := range seeds {
		if s < 0 || s >= candidates.Rows() {
			return Result{}, fmt.Errorf("al: seed index %d out of range %d", s, candidates.Rows())
		}
		if _, err := runAt(ctx, s, nil); err != nil {
			return Result{}, err
		}
	}
	if len(trainY) == 0 {
		if lastMeasureErr != nil {
			return Result{}, fmt.Errorf("al: every seed experiment failed: %w", lastMeasureErr)
		}
		return Result{}, errors.New("al: every seed experiment failed")
	}

	res := Result{Strategy: c.Strategy.Name()}
	var model Regressor
	fitter := newModelFitter(c)
	var amsdHist []float64
	hasPending := false
	for iter := 1; iter <= maxIter; iter++ {
		iterCtx, iterSpan := obs.Start(ctx, "al.iteration")
		iterSpan.SetAttr("iter", iter)
		floor := c.NoiseFloor
		if c.DynamicFloorC > 0 {
			floor = gp.DynamicNoiseFloor(c.DynamicFloorC, len(trainY))
		}
		reopt := model == nil || (iter-1)%c.ReoptimizeEvery == 0
		updateCtx, updateSpan := obs.Start(iterCtx, "al.model.update")
		if reopt {
			refits.Inc()
			gcfg := gp.Config{
				Kernel:     c.NewKernel(dims),
				NoiseInit:  math.Max(0.1, floor),
				NoiseFloor: floor,
				Optimize:   true,
				Restarts:   c.Restarts,
				Normalize:  c.Normalize,
			}
			if td, ok := model.(TrainDataModel); ok {
				gcfg.Kernel.SetHyper(td.Kernel().Hyper())
				gcfg.NoiseInit = math.Max(regNoise(model), floor)
			}
			var deg gp.Degradation
			model, deg, err = fitter.refit(updateCtx, gcfg, mat.NewFromRows(trainX), trainY, model, rng)
			if err == nil && deg.Rejected > 0 {
				// Keep the loop's training set aligned with the degraded
				// model: drop the same trailing observations.
				for k := 0; k < deg.Rejected; k++ {
					alRejected.Inc()
				}
				trainX = trainX[:len(trainX)-deg.Rejected]
				trainY = trainY[:len(trainY)-deg.Rejected]
			}
		} else if hasPending {
			// O(n²) conditioning on the newest measurement.
			conditionUpdates.Inc()
			last := len(trainY) - 1
			m, uerr := model.UpdateWithPoint(trainX[last], trainY[last])
			if uerr == nil {
				model = m
			} else {
				err = uerr
			}
		}
		updated := reopt || hasPending
		hasPending = false
		updateSpan.End()
		if err != nil {
			return Result{}, fmt.Errorf("al: online iteration %d: %w", iter, err)
		}
		if updated && c.OnModel != nil {
			c.OnModel(model)
		}

		_, scoreSpan := obs.Start(iterCtx, "al.score")
		preds := scorePool(model, candidates, resolveScoreWorkers(c.ScoreWorkers))
		cands := make([]Candidate, candidates.Rows())
		var amsd float64
		for i := range cands {
			cands[i] = Candidate{Row: i, X: candidates.RawRow(i), Pred: preds[i]}
			amsd += preds[i].SD
		}
		amsd /= float64(len(cands))
		scoreSpan.End()
		candidatesEvaluated.Add(int64(len(cands)))
		poolSize.Set(float64(len(cands)))

		_, selectSpan := obs.Start(iterCtx, "al.select")
		sel := selectCandidate(c.Strategy, model, cands, rng)
		selectSpan.End()
		if sel < 0 || sel >= len(cands) {
			return Result{}, fmt.Errorf("al: strategy %s returned invalid index %d", c.Strategy.Name(), sel)
		}
		var guard func(float64) bool
		if c.GuardSigma > 0 {
			pred := cands[sel].Pred
			sn := regObsNoise(model)
			guard = func(y float64) bool { return guardRejects(c.GuardSigma, pred, sn, y) }
		}
		ok, err := runAt(iterCtx, cands[sel].Row, guard)
		if err != nil {
			iterSpan.End()
			if errors.Is(err, ErrStopped) {
				// Partial result: everything up to the interrupted
				// iteration stands; the caller resumes from its journal.
				res.Final = model
				return res, err
			}
			return Result{}, err
		}
		if !ok {
			// Skipped: the model saw nothing new; move to the next
			// iteration without a record.
			iterSpan.End()
			continue
		}
		hasPending = true

		res.Records = append(res.Records, IterationRecord{
			Iter:     iter,
			Row:      cands[sel].Row,
			SDChosen: cands[sel].Pred.SD,
			AMSD:     amsd,
			RMSE:     math.NaN(),
			CumCost:  cumCost,
			LML:      regLML(model),
			Noise:    regNoise(model),
			Train:    len(trainY),
		})
		res.TrainRows = append(res.TrainRows, cands[sel].Row)
		if c.OnRecord != nil {
			c.OnRecord(res.Records[len(res.Records)-1])
		}
		iterSpan.End()

		// Budget exhaustion (§I's fixed-allocation constraint), mirroring
		// the offline loop: the crossing experiment is still recorded.
		if c.CostBudget > 0 && cumCost >= c.CostBudget {
			break
		}

		amsdHist = append(amsdHist, amsd)
		if c.ConvergeWindow > 0 && len(amsdHist) > c.ConvergeWindow {
			w := amsdHist[len(amsdHist)-1-c.ConvergeWindow:]
			lo, hi := stats.MinMax(w)
			if hi-lo <= c.ConvergeTol*math.Max(1e-12, math.Abs(hi)) {
				res.Converged = true
				break
			}
		}
	}
	res.Final = model
	return res, nil
}
