package al

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/gp"
	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Oracle runs a real experiment at input x, returning the measured
// response and its cost. It is the paper's target "online" use case
// (§VI): every AL iteration schedules and executes the next experiment
// instead of consulting a database.
type Oracle interface {
	RunExperiment(x []float64) (y, cost float64, err error)
}

// OracleFunc adapts a function to the Oracle interface.
type OracleFunc func(x []float64) (y, cost float64, err error)

// RunExperiment implements Oracle.
func (f OracleFunc) RunExperiment(x []float64) (y, cost float64, err error) { return f(x) }

// RunOnline executes Active Learning against a live Oracle over a finite
// candidate grid. seeds indexes the rows of candidates measured before
// learning starts (≥ 1 required). Candidates stay available for repeated
// measurement. The returned records carry NaN RMSE (there is no held-out
// ground truth online); AMSD remains the convergence monitor.
func RunOnline(candidates *mat.Dense, seeds []int, oracle Oracle, cfg LoopConfig, rng *rand.Rand) (Result, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	if oracle == nil {
		return Result{}, errors.New("al: RunOnline requires an Oracle")
	}
	if candidates == nil || candidates.Rows() == 0 {
		return Result{}, errors.New("al: RunOnline requires a candidate grid")
	}
	if len(seeds) == 0 {
		return Result{}, errors.New("al: RunOnline requires at least one seed experiment")
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	maxIter := c.Iterations
	if maxIter <= 0 {
		maxIter = candidates.Rows()
	}

	dims := candidates.Cols()
	var trainX [][]float64
	var trainY []float64
	var cumCost float64
	runAt := func(ctx context.Context, row int) error {
		_, span := obs.Start(ctx, "al.experiment")
		defer span.End()
		x := append([]float64(nil), candidates.RawRow(row)...)
		y, cost, err := oracle.RunExperiment(x)
		if err != nil {
			return fmt.Errorf("al: oracle at row %d: %w", row, err)
		}
		experiments.Inc()
		trainX = append(trainX, x)
		trainY = append(trainY, y)
		cumCost += cost
		return nil
	}
	ctx := context.Background()
	for _, s := range seeds {
		if s < 0 || s >= candidates.Rows() {
			return Result{}, fmt.Errorf("al: seed index %d out of range %d", s, candidates.Rows())
		}
		if err := runAt(ctx, s); err != nil {
			return Result{}, err
		}
	}

	res := Result{Strategy: c.Strategy.Name()}
	var model *gp.GP
	var amsdHist []float64
	for iter := 1; iter <= maxIter; iter++ {
		iterCtx, iterSpan := obs.Start(ctx, "al.iteration")
		iterSpan.SetAttr("iter", iter)
		floor := c.NoiseFloor
		if c.DynamicFloorC > 0 {
			floor = gp.DynamicNoiseFloor(c.DynamicFloorC, len(trainY))
		}
		reopt := model == nil || (iter-1)%c.ReoptimizeEvery == 0
		updateCtx, updateSpan := obs.Start(iterCtx, "al.model.update")
		if reopt {
			refits.Inc()
			gcfg := gp.Config{
				Kernel:     c.NewKernel(dims),
				NoiseInit:  math.Max(0.1, floor),
				NoiseFloor: floor,
				Optimize:   true,
				Restarts:   c.Restarts,
				Normalize:  c.Normalize,
			}
			if model != nil {
				gcfg.Kernel.SetHyper(model.Kernel().Hyper())
				gcfg.NoiseInit = math.Max(model.Noise(), floor)
			}
			model, err = gp.FitCtx(updateCtx, gcfg, mat.NewFromRows(trainX), trainY, rng)
		} else {
			// O(n²) conditioning on the newest measurement.
			conditionUpdates.Inc()
			last := len(trainY) - 1
			model, err = model.UpdateWithPoint(trainX[last], trainY[last])
		}
		updateSpan.End()
		if err != nil {
			return Result{}, fmt.Errorf("al: online iteration %d: %w", iter, err)
		}

		_, scoreSpan := obs.Start(iterCtx, "al.score")
		preds := scorePool(model, candidates, resolveScoreWorkers(c.ScoreWorkers))
		cands := make([]Candidate, candidates.Rows())
		var amsd float64
		for i := range cands {
			cands[i] = Candidate{Row: i, X: candidates.RawRow(i), Pred: preds[i]}
			amsd += preds[i].SD
		}
		amsd /= float64(len(cands))
		scoreSpan.End()
		candidatesEvaluated.Add(int64(len(cands)))
		poolSize.Set(float64(len(cands)))

		_, selectSpan := obs.Start(iterCtx, "al.select")
		sel := selectCandidate(c.Strategy, model, cands, rng)
		selectSpan.End()
		if sel < 0 || sel >= len(cands) {
			return Result{}, fmt.Errorf("al: strategy %s returned invalid index %d", c.Strategy.Name(), sel)
		}
		if err := runAt(iterCtx, cands[sel].Row); err != nil {
			return Result{}, err
		}

		res.Records = append(res.Records, IterationRecord{
			Iter:     iter,
			Row:      cands[sel].Row,
			SDChosen: cands[sel].Pred.SD,
			AMSD:     amsd,
			RMSE:     math.NaN(),
			CumCost:  cumCost,
			LML:      model.LML(),
			Noise:    model.Noise(),
			Train:    len(trainY),
		})
		res.TrainRows = append(res.TrainRows, cands[sel].Row)
		iterSpan.End()

		amsdHist = append(amsdHist, amsd)
		if c.ConvergeWindow > 0 && len(amsdHist) > c.ConvergeWindow {
			w := amsdHist[len(amsdHist)-1-c.ConvergeWindow:]
			lo, hi := stats.MinMax(w)
			if hi-lo <= c.ConvergeTol*math.Max(1e-12, math.Abs(hi)) {
				res.Converged = true
				break
			}
		}
	}
	res.Final = model
	return res, nil
}
