// Package al implements the paper's Active Learning framework for
// performance analysis — pool-based experiment selection driven by the
// predictive distribution of a Gaussian process regressor (§IV–§V,
// Figs. 6–8) — grown into a strategy zoo with a named registry and an
// OpenAL-style comparative evaluation harness.
//
// # Strategy taxonomy
//
// Every selection rule implements Strategy; rules that need the fitted
// GP itself (not just per-candidate marginals) also implement
// ModelAwareStrategy. NewStrategy resolves registry names to
// configured strategies, StrategyNames lists them, and STRATEGIES.md
// documents each one (formula, paper anchor, cost model, RNG contract,
// when to use). The families:
//
// Paper strategies (§V-B):
//
//   - VarianceReduction ("variance-reduction"): argmax σ — pure
//     uncertainty reduction (Fig. 6).
//   - CostEfficiency ("cost-efficiency"): argmax σ − μ on log responses
//     (Eq. 14) — the variance/cost ratio behind Fig. 8's 38% headline.
//   - CostExponent ("cost-exponent"): σ − γ·μ, the ablation axis
//     between the two.
//
// Baselines and randomized rules:
//
//   - Random ("random"): uniform selection — the fixed-design baseline.
//   - EpsilonGreedy ("eps-greedy"): ε-uniform exploration around any
//     base rule.
//   - ThompsonVariance ("thompson"): joint posterior draw, argmax
//     |f̃ − μ| — stochastic variance reduction.
//   - RunEMCM: Cai et al.'s OLS-ensemble Expected Model Change
//     Maximization, kept as the §III comparison baseline (its own
//     loop, not a registry entry).
//
// Ensemble and diversity strategies (the zoo beyond the paper):
//
//   - QBC ("qbc", "qbc-cost"): query-by-committee — K GPs fit on
//     bootstrap resamples (optionally hyper-perturbed) of the live
//     training set; selection maximizes committee disagreement, minus
//     γ·mean in the cost-aware form.
//   - EMCMGradient ("emcm-grad"): closed-form GP analogue of EMCM,
//     ln σ + ln(1+‖x‖) − γ·μ, inside the standard loop.
//   - Diversity ("diversity"): σ + λ·distance-to-nearest-training-point
//     — sequential k-center exploration.
//
// Batch modes: BatchSelect (kriging believer, fantasy updates) and
// BatchSelectKCenter (greedy k-center over σ, no refits) pick k points
// per round for RunParallel.
//
// # Key types
//
//   - Strategy / ModelAwareStrategy: acquisition rules over Candidate
//     scores; NewStrategy/StrategyNames: the registry.
//   - LoopConfig / Run: one AL realization over a dataset Partition
//     (Initial seeds, Active pool, Test RMSE); IterationRecord carries
//     the §V-B3 monitoring quantities per step.
//   - RunOnline: the same loop against a live Oracle (§VI) instead of a
//     recorded dataset.
//   - BatchSelect / BatchSelectKCenter / RunParallel: batched selection
//     with simulated scheduler accounting (ablation A4).
//
// # Regressor contract
//
// The loop is generic over its model: Run, RunOnline and every zoo
// strategy consume the Regressor interface — Predict / PredictBatch /
// UpdateWithPoint / Fingerprint / NumTrain — not *gp.GP. Three tiers
// implement it, selected by LoopConfig.Model ("dense", the default;
// "sparse"; "auto") and tuned by LoopConfig.ModelOptions (inducing
// count, hyper-fit subsample, crossover, jitter, growth radius):
//
//   - dense wraps *gp.GP (exact, O(n³) refit / O(n²) update);
//   - sparse wraps *gp.SparseGP (inducing-point, O(n·m²) refit / O(m²)
//     update, exact at m = n) — the tier for campaigns past ~10⁴
//     points;
//   - auto wraps *gp.AutoModel, which resolves dense below the
//     crossover and sparse above it.
//
// The interface carries the loop's three obligations. UpdateWithPoint
// must return a NEW model (immutable snapshots — the scorer pool keeps
// reading the old one; see the gp package concurrency contract) and
// must fall back to a full refit instead of failing when the
// incremental path degenerates. Fingerprint must commit to the full
// predictive state, so two runs agree iff their models do (the
// checkpoint-resume and serve-trace identity tests compare fingerprint
// traces). NumTrain reports the training-set size used for the
// dynamic noise floor and tier decisions. Optional capabilities
// (NoiseModel, LikelihoodModel, TrainDataModel, PosteriorSampler) are
// discovered by type assertion; strategies needing one — Thompson
// sampling, QBC's bootstrap refits, checkpoint recipes — degrade or
// error out explicitly when the model lacks it. WrapGP/UnwrapGP
// convert at the boundary for callers holding a bare *gp.GP.
//
// # Evaluation harness
//
// internal/experiments (EvalGrid / RunEval) ranks registry strategies
// on a strategy × dataset × noise-model grid, executed end to end
// through the internal/serve campaign service; cmd/aleval is the CLI.
// Use it to decide which zoo member fits a new workload before
// committing an experiment budget.
//
// # Observability
//
// Run and RunOnline open one "al.iteration" span per step with
// "al.model.update", "al.score" and "al.select" children, and feed the
// al.* counters; every selection increments al.strategy.select.<name>,
// and QBC counts committee fits under al.strategy.qbc.*. See
// OBSERVABILITY.md for the full catalog.
//
// # Concurrency contract
//
// Strategies are stateless values and safe for concurrent use. Run,
// RunOnline, RunParallel and the config/result structs are not
// goroutine-safe: each realization owns its *rand.Rand and dataset
// partition, so run concurrent realizations with separate arguments
// (as al.RunBatch does internally).
//
// # Scorer pool
//
// Candidate scoring fans out over a worker pool by default
// (LoopConfig.ScoreWorkers = 0 → SetDefaultScoreWorkers, falling back to
// runtime.GOMAXPROCS). The pool's contract:
//
//   - Workers only *read* the fitted GP — gp.Predict/PredictBatch on a
//     fitted model are safe for concurrent use, and one model may back
//     many concurrent scoring passes.
//   - Each worker owns a contiguous chunk of the candidate matrix and
//     writes predictions into its own index range of the shared output
//     slice; no two workers touch the same element, so no locking is
//     needed and the race detector stays quiet.
//   - Per-candidate scores never depend on other candidates, so chunking
//     cannot change any floating-point result: serial (ScoreWorkers = 1)
//     and parallel runs produce byte-identical selection traces for a
//     fixed seed. The argmax over scores always runs serially. Diversity
//     reuses the same chunked pattern for its distance scan.
//   - The *rand.Rand is only touched by the (serial) strategy selection
//     and model fitting, never from scorer workers. QBC's committee
//     construction draws from the loop RNG on that serial path, with a
//     fixed draw count per selection (see the QBC doc comment), so
//     checkpoint/resume and serial-vs-parallel identity both hold for
//     every zoo member.
package al
