// Package al implements the paper's Active Learning framework for
// performance analysis: pool-based experiment selection driven by the
// predictive distribution of a Gaussian process regressor. It reproduces
// the core loop of §IV–§V and the trajectories of Figs. 6–8.
//
// Two selection strategies are the paper's focus (§V-B):
//
//   - VarianceReduction picks the pool point with the highest predictive
//     standard deviation — pure uncertainty reduction (Fig. 6);
//   - CostEfficiency maximizes σ − μ on log-transformed responses
//     (Eq. 14), i.e. the variance/cost ratio, preferring cheap
//     experiments that still carry information (Fig. 8's 38% headline).
//
// Random selection and the EMCM method of Cai et al. (the baseline the
// paper argues against, §III) are provided for comparison, plus
// Thompson-style sampling, continuous candidate optimization, and the
// kriging-believer batch selection of the §VI future work.
//
// # Key types
//
//   - Strategy / ModelAwareStrategy: acquisition rules over Candidate
//     scores.
//   - LoopConfig / Run: one AL realization over a dataset Partition
//     (Initial seeds, Active pool, Test RMSE); IterationRecord carries
//     the §V-B3 monitoring quantities per step.
//   - RunOnline: the same loop against a live Oracle (§VI) instead of a
//     recorded dataset.
//   - BatchSelect / RunParallel: batched selection with simulated
//     scheduler accounting (ablation A4).
//
// # Observability
//
// Run and RunOnline open one "al.iteration" span per step with
// "al.model.update", "al.score" and "al.select" children, and feed the
// al.* counters; see OBSERVABILITY.md for the full catalog.
//
// # Concurrency contract
//
// Strategies are stateless values and safe for concurrent use. Run,
// RunOnline, RunParallel and the config/result structs are not
// goroutine-safe: each realization owns its *rand.Rand and dataset
// partition, so run concurrent realizations with separate arguments
// (as al.RunBatch does internally).
//
// # Scorer pool
//
// Candidate scoring fans out over a worker pool by default
// (LoopConfig.ScoreWorkers = 0 → SetDefaultScoreWorkers, falling back to
// runtime.GOMAXPROCS). The pool's contract:
//
//   - Workers only *read* the fitted GP — gp.Predict/PredictBatch on a
//     fitted model are safe for concurrent use, and one model may back
//     many concurrent scoring passes.
//   - Each worker owns a contiguous chunk of the candidate matrix and
//     writes predictions into its own index range of the shared output
//     slice; no two workers touch the same element, so no locking is
//     needed and the race detector stays quiet.
//   - Per-candidate scores never depend on other candidates, so chunking
//     cannot change any floating-point result: serial (ScoreWorkers = 1)
//     and parallel runs produce byte-identical selection traces for a
//     fixed seed. The argmax over scores always runs serially.
//   - The *rand.Rand is only touched by the (serial) strategy selection
//     and model fitting, never from scorer workers.
package al
