package al

import (
	"math"
	"math/rand"

	"repro/internal/gp"
	"repro/internal/kernel"
	"repro/internal/mat"
)

// Regressor is the model contract the AL loops consume. It is the
// minimal surface every model tier — dense GP, sparse GP, auto — must
// provide: marginal posterior queries, an immutable one-point update,
// a deterministic state digest, and the training-set size.
//
// Contract:
//
//   - A Regressor is an immutable snapshot. Predict and PredictBatch
//     only read and are safe for concurrent use; UpdateWithPoint
//     returns a NEW Regressor and leaves the receiver untouched, so
//     readers of the old snapshot are never disturbed.
//   - UpdateWithPoint folds one observation in at fixed
//     hyperparameters. Tiers may realize it with different cost
//     (O(n²) bordered-Cholesky dense, O(n·m) rank-one sparse) but all
//     honor the same semantics: the returned model covers the old
//     training set plus (x, y).
//   - Fingerprint is a deterministic digest of the full fitted state:
//     equal fingerprints mean bit-identical predictions. The serving
//     layer compares fingerprints across checkpoint/resume.
//
// Beyond this interface, loops and strategies discover richer surfaces
// (LML, noise, training data, joint posterior sampling) through the
// optional interfaces below; every built-in tier implements all of
// them except PosteriorSampler, which is dense-only.
type Regressor interface {
	Predict(x []float64) gp.Prediction
	PredictBatch(xs *mat.Dense) []gp.Prediction
	UpdateWithPoint(x []float64, y float64) (Regressor, error)
	Fingerprint() uint64
	NumTrain() int
}

// NoiseModel is the optional noise surface of a Regressor; all built-in
// tiers implement it.
type NoiseModel interface {
	Noise() float64
	LogNoise() float64
	ObservationNoise() float64
}

// LikelihoodModel is the optional model-evidence surface; all built-in
// tiers implement it (the sparse tier reports the DTC marginal
// likelihood).
type LikelihoodModel interface {
	LML() float64
}

// TrainDataModel exposes the training data and kernel of a fitted
// model — what committee and diversity strategies rebuild members from.
// All built-in tiers implement it.
type TrainDataModel interface {
	TrainX() *mat.Dense
	TrainY() []float64
	Kernel() kernel.Kernel
}

// PosteriorSampler draws one joint posterior sample over the rows of
// xs. Only the dense tier implements it; strategies needing it fall
// back to marginal rules on other tiers.
type PosteriorSampler interface {
	PosteriorSample(xs *mat.Dense, rng *rand.Rand) ([]float64, error)
}

// denseRegressor adapts *gp.GP to Regressor. Embedding promotes the
// full dense surface (Kernel, TrainX, TrainY, LML, Noise, LogNoise,
// ObservationNoise, PosteriorSample, Fingerprint, NumTrain, Predict,
// PredictBatch); only UpdateWithPoint needs the wrapper, to re-wrap the
// concrete *gp.GP return into the interface.
type denseRegressor struct{ *gp.GP }

func (d denseRegressor) UpdateWithPoint(x []float64, y float64) (Regressor, error) {
	m, err := d.GP.UpdateWithPoint(x, y)
	if err != nil {
		return nil, err
	}
	return denseRegressor{m}, nil
}

// sparseRegressor adapts *gp.SparseGP the same way.
type sparseRegressor struct{ *gp.SparseGP }

func (s sparseRegressor) UpdateWithPoint(x []float64, y float64) (Regressor, error) {
	m, err := s.SparseGP.UpdateWithPoint(x, y)
	if err != nil {
		return nil, err
	}
	return sparseRegressor{m}, nil
}

// autoRegressor adapts *gp.AutoModel.
type autoRegressor struct{ *gp.AutoModel }

func (a autoRegressor) UpdateWithPoint(x []float64, y float64) (Regressor, error) {
	m, err := a.AutoModel.UpdateWithPoint(x, y)
	if err != nil {
		return nil, err
	}
	return autoRegressor{m}, nil
}

// WrapGP adapts a fitted dense GP to the Regressor interface — the
// bridge for callers that fit dense models directly (batch-mode AL,
// tests) into interface-typed surfaces like ScoreBatch.
func WrapGP(g *gp.GP) Regressor { return denseRegressor{g} }

// WrapSparseGP adapts a fitted sparse GP to the Regressor interface.
func WrapSparseGP(s *gp.SparseGP) Regressor { return sparseRegressor{s} }

// UnwrapGP returns the dense *gp.GP backing r, when there is one —
// either a wrapped dense model or an auto model that resolved dense.
func UnwrapGP(r Regressor) (*gp.GP, bool) {
	switch m := r.(type) {
	case denseRegressor:
		return m.GP, true
	case autoRegressor:
		if g := m.Dense(); g != nil {
			return g, true
		}
	}
	return nil, false
}

// regLML reports the model evidence, NaN when the tier lacks one.
func regLML(r Regressor) float64 {
	if m, ok := r.(LikelihoodModel); ok {
		return m.LML()
	}
	return math.NaN()
}

// regNoise reports the fitted σn, NaN when the tier lacks one.
func regNoise(r Regressor) float64 {
	if m, ok := r.(NoiseModel); ok {
		return m.Noise()
	}
	return math.NaN()
}

// regObsNoise reports σn in response units; 0 (latent-only predictive
// intervals) when the tier lacks a noise surface.
func regObsNoise(r Regressor) float64 {
	if m, ok := r.(NoiseModel); ok {
		return m.ObservationNoise()
	}
	return 0
}
