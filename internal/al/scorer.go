package al

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/gp"
	"repro/internal/mat"
	"repro/internal/obs"
)

// Scorer metrics (see OBSERVABILITY.md): one al.score.parallel tick per
// scoring pass that fanned out over workers, next to the serial passes
// implied by al.candidates.evaluated.
var scoreParallel = obs.C("al.score.parallel")

// minParallelScore is the pool size below which scoring stays serial:
// goroutine startup dominates PredictBatch on tiny pools.
const minParallelScore = 32

// defaultScoreWorkers holds the process-wide worker count used when
// LoopConfig.ScoreWorkers is 0; ≤ 0 means runtime.GOMAXPROCS(0).
var defaultScoreWorkers atomic.Int64

// SetDefaultScoreWorkers sets the scorer worker count used by loops whose
// LoopConfig.ScoreWorkers is zero. n ≤ 0 restores the default,
// runtime.GOMAXPROCS(0); n == 1 makes scoring serial process-wide (the
// CLIs' -parallel=false). Safe for concurrent use.
func SetDefaultScoreWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultScoreWorkers.Store(int64(n))
}

// resolveScoreWorkers maps a LoopConfig.ScoreWorkers value to an
// effective worker count: 0 defers to SetDefaultScoreWorkers (falling
// back to GOMAXPROCS), anything else is used as given.
func resolveScoreWorkers(cfg int) int {
	if cfg > 0 {
		return cfg
	}
	if d := int(defaultScoreWorkers.Load()); d > 0 {
		return d
	}
	return runtime.GOMAXPROCS(0)
}

// scorePool evaluates the model's predictive distribution at every row of
// poolX, fanning contiguous row chunks out over a worker pool with one
// batched PredictBatch call per chunk. Each prediction depends only on
// its own row, and results are written by index, so the output is
// identical to the serial path regardless of scheduling — parallel and
// serial loops produce the same selection traces.
//
// The model is only read (PredictBatch is safe for concurrent use on
// any fitted Regressor tier), so a single model may back many
// concurrent scorePool calls.
func scorePool(model Regressor, poolX *mat.Dense, workers int) []gp.Prediction {
	m := poolX.Rows()
	if workers < 2 || m < minParallelScore {
		return model.PredictBatch(poolX)
	}
	if workers > m {
		workers = m
	}
	scoreParallel.Inc()
	out := make([]gp.Prediction, m)
	chunk := (m + workers - 1) / workers
	var wg sync.WaitGroup
	cols := poolX.Cols()
	raw := poolX.Raw()
	for lo := 0; lo < m; lo += chunk {
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			sub := mat.NewFromData(hi-lo, cols, raw[lo*cols:hi*cols])
			copy(out[lo:hi], model.PredictBatch(sub))
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// ScoreBatch evaluates the model's predictive distribution at every row
// of xs using the same chunked worker fan-out as the loop's candidate
// scorer (workers ≤ 0 resolves like LoopConfig.ScoreWorkers: the
// process default, falling back to GOMAXPROCS). It exists for callers
// outside the loop — the serving layer's batched /predict endpoint —
// so that request-driven inference and in-loop scoring share one
// deterministic code path. Any model tier works: dense, sparse, and
// auto regressors are all immutable snapshots under concurrent reads.
func ScoreBatch(model Regressor, xs *mat.Dense, workers int) []gp.Prediction {
	return scorePool(model, xs, resolveScoreWorkers(workers))
}

// parChunks splits [0, n) into contiguous chunks across workers and runs
// fn on each concurrently; fn must only write state owned by its own
// index range. Serial when workers < 2 or n is small.
func parChunks(n, workers int, fn func(lo, hi int)) {
	if workers < 2 || n < minParallelScore {
		fn(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
