package al

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/gp"
	"repro/internal/stats"
)

// ParallelConfig drives batch-mode Active Learning: each round selects
// BatchSize experiments at once (kriging believer, al.BatchSelect) and
// "runs them in parallel" — the wall-clock cost of a round is the
// *maximum* cost among its experiments, not the sum. This addresses the
// paper's future-work note (§VI) that parallel experiments add scheduling
// concerns and call for a less greedy selection strategy.
type ParallelConfig struct {
	Loop      LoopConfig
	BatchSize int // experiments per round (≥ 1)
	Rounds    int // selection rounds; 0 derives from Loop.Iterations

	// DiversityLambda > 0 switches batch construction from the kriging
	// believer (BatchSelect, k fantasy model updates per round) to
	// greedy k-center selection (BatchSelectKCenter) with this distance
	// weight — cheaper per round and explicitly spread across the
	// design space.
	DiversityLambda float64
}

// RoundRecord captures one parallel round.
type RoundRecord struct {
	Round     int
	Rows      []int
	AMSD      float64
	RMSE      float64
	CumCost   float64 // sum of per-experiment costs (resource cost)
	WallClock float64 // sum over rounds of max per-round cost
	Train     int
}

// ParallelResult is one batched AL realization.
type ParallelResult struct {
	Strategy string
	Rounds   []RoundRecord
	Final    *gp.GP
}

// RunParallel executes batch-mode AL over a partitioned dataset.
func RunParallel(ds *dataset.Dataset, part dataset.Partition, cfg ParallelConfig, rng *rand.Rand) (ParallelResult, error) {
	c, err := cfg.Loop.withDefaults()
	if err != nil {
		return ParallelResult{}, err
	}
	if cfg.BatchSize < 1 {
		return ParallelResult{}, errors.New("al: ParallelConfig.BatchSize must be ≥ 1")
	}
	if err := part.Validate(ds); err != nil {
		return ParallelResult{}, err
	}
	if len(part.Initial) == 0 || len(part.Active) == 0 {
		return ParallelResult{}, errors.New("al: partition needs nonempty Initial and Active sets")
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	rounds := cfg.Rounds
	if rounds <= 0 {
		if c.Iterations > 0 {
			rounds = (c.Iterations + cfg.BatchSize - 1) / cfg.BatchSize
		} else {
			rounds = len(part.Active) / cfg.BatchSize
		}
	}

	train := append([]int(nil), part.Initial...)
	pool := append([]int(nil), part.Active...)
	testX := ds.Matrix(part.Test)
	testY := ds.RespVec(c.Response, part.Test)
	dims := len(ds.VarNames())

	res := ParallelResult{Strategy: c.Strategy.Name() + "/batch"}
	if cfg.DiversityLambda > 0 {
		res.Strategy = c.Strategy.Name() + "/batch-kcenter"
	}
	var cumCost, wall float64
	var model *gp.GP

	for round := 1; round <= rounds; round++ {
		k := cfg.BatchSize
		if !c.AllowRevisit && k > len(pool) {
			k = len(pool)
		}
		if k == 0 {
			break
		}
		floor := c.NoiseFloor
		if c.DynamicFloorC > 0 {
			floor = gp.DynamicNoiseFloor(c.DynamicFloorC, len(train))
		}
		gcfg := gp.Config{
			Kernel:     c.NewKernel(dims),
			NoiseInit:  math.Max(0.1, floor),
			NoiseFloor: floor,
			Optimize:   true,
			Restarts:   c.Restarts,
			Normalize:  c.Normalize,
		}
		if model != nil {
			gcfg.Kernel.SetHyper(model.Kernel().Hyper())
			gcfg.NoiseInit = math.Max(model.Noise(), floor)
		}
		model, err = gp.Fit(gcfg, ds.Matrix(train), ds.RespVec(c.Response, train), rng)
		if err != nil {
			return ParallelResult{}, fmt.Errorf("al: parallel round %d: %w", round, err)
		}

		poolX := ds.Matrix(pool)
		preds := scorePool(WrapGP(model), poolX, resolveScoreWorkers(c.ScoreWorkers))
		cands := make([]Candidate, len(pool))
		var amsd float64
		for i, row := range pool {
			cands[i] = Candidate{Row: row, X: poolX.RawRow(i), Pred: preds[i], Cost: ds.CostAt(row)}
			amsd += preds[i].SD
		}
		amsd /= float64(len(pool))

		var picks []int
		if cfg.DiversityLambda > 0 {
			picks, err = BatchSelectKCenter(cands, k, cfg.DiversityLambda)
		} else {
			picks, err = BatchSelect(model, cands, k, c.Strategy, rng)
		}
		if err != nil {
			return ParallelResult{}, fmt.Errorf("al: parallel round %d: %w", round, err)
		}
		var roundMax float64
		for _, row := range picks {
			train = append(train, row)
			cost := ds.CostAt(row)
			cumCost += cost
			if cost > roundMax {
				roundMax = cost
			}
			if !c.AllowRevisit {
				for i, p := range pool {
					if p == row {
						pool = append(pool[:i], pool[i+1:]...)
						break
					}
				}
			}
		}
		wall += roundMax

		rmse := math.NaN()
		if len(testY) > 0 {
			rmse = stats.RMSE(gp.Means(model.PredictBatch(testX)), testY)
		}
		res.Rounds = append(res.Rounds, RoundRecord{
			Round:     round,
			Rows:      picks,
			AMSD:      amsd,
			RMSE:      rmse,
			CumCost:   cumCost,
			WallClock: wall,
			Train:     len(train),
		})
	}
	res.Final = model
	return res, nil
}
