package al

import (
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gp"
	"repro/internal/kernel"
)

// Every zoo strategy must produce the same selection trace twice under a
// fixed seed — QBC consumes the loop RNG for its bootstrap committees,
// so this pins the unconditional-draw contract.
func TestZooDeterministicTraces(t *testing.T) {
	ds := synthDS(t, 40, 0.05, 3)
	part := synthPartition(t, ds, 4)
	for _, s := range []Strategy{
		QBC{K: 3},
		QBC{K: 3, Gamma: 1, Perturb: 0.05},
		Diversity{Lambda: 0.5},
		EMCMGradient{},
		EMCMGradient{Gamma: 1},
	} {
		t.Run(s.Name(), func(t *testing.T) {
			cfg := quickLoop(s, 5)
			cfg.Seed = 7
			a, err := Run(ds, part, cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(ds, part, cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			sameRecords(t, b.Records, a.Records)
		})
	}
}

// Serial and parallel candidate scoring must yield byte-identical traces
// for the new strategies (pool > minParallelScore so the parallel path
// actually engages).
func TestZooSerialVsParallelIdentity(t *testing.T) {
	ds := synthDS(t, 60, 0.05, 5)
	part := synthPartition(t, ds, 6)
	for _, s := range []Strategy{QBC{K: 3}, Diversity{}, EMCMGradient{Gamma: 0.5}} {
		t.Run(s.Name(), func(t *testing.T) {
			serial := quickLoop(s, 4)
			serial.Seed = 9
			serial.ScoreWorkers = 1
			par := serial
			par.ScoreWorkers = 8
			a, err := Run(ds, part, serial, nil)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(ds, part, par, nil)
			if err != nil {
				t.Fatal(err)
			}
			sameRecords(t, b.Records, a.Records)
		})
	}
}

// Checkpoint/resume must replay a QBC run bit for bit: the committee's
// RNG draws are part of the counted stream the checkpoint restores.
func TestQBCCheckpointResume(t *testing.T) {
	ds := synthDS(t, 40, 0.05, 3)
	part := synthPartition(t, ds, 4)
	dir := t.TempDir()

	base := quickLoop(QBC{K: 3, Perturb: 0.02}, 8)
	base.Seed = 13
	base.ReoptimizeEvery = 3

	ref := base
	ref.CheckpointPath = filepath.Join(dir, "ref.json")
	full, err := Run(ds, part, ref, nil)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "cut.json")
	interrupted := base
	interrupted.CheckpointPath = path
	interrupted.Iterations = 4
	if _, err := Run(ds, part, interrupted, nil); err != nil {
		t.Fatal(err)
	}
	cont := base
	cont.CheckpointPath = path
	res, err := Resume(ds, part, cont, path)
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, res.Records, full.Records)
}

func TestRegistryResolvesEveryName(t *testing.T) {
	for _, name := range StrategyNames() {
		s, err := NewStrategy(name, StrategyParams{})
		if err != nil {
			t.Fatalf("NewStrategy(%q): %v", name, err)
		}
		if s.Name() == "" {
			t.Fatalf("strategy %q has empty Name()", name)
		}
	}
	if _, err := NewStrategy("no-such-strategy", StrategyParams{}); err == nil {
		t.Fatal("unknown name must error")
	} else if !strings.Contains(err.Error(), "variance-reduction") {
		t.Fatalf("error should list the registry, got: %v", err)
	}
	// Empty name is the paper default.
	s, err := NewStrategy("", StrategyParams{})
	if err != nil || s.Name() != "variance-reduction" {
		t.Fatalf("empty name resolved to %v, %v", s, err)
	}
	// Epsilon wraps any non-eps-greedy base.
	s, err = NewStrategy("qbc", StrategyParams{Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(EpsilonGreedy); !ok {
		t.Fatalf("Epsilon>0 should wrap in EpsilonGreedy, got %T", s)
	}
	// qbc-cost defaults γ to 1.
	s, err = NewStrategy("qbc-cost", StrategyParams{})
	if err != nil {
		t.Fatal(err)
	}
	if q, ok := s.(QBC); !ok || q.Gamma != 1 {
		t.Fatalf("qbc-cost = %#v, want QBC{Gamma:1}", s)
	}
}

func TestDiversityPrefersUnexploredRegion(t *testing.T) {
	// Train the model on points clustered at the left edge; with equal
	// SDs the diversity bonus must send selection to the far candidate.
	ds := synthDS(t, 30, 0, 1)
	rng := rand.New(rand.NewSource(1))
	model, err := gp.Fit(gp.Config{
		Kernel:     kernel.NewRBF(1, 1),
		NoiseInit:  0.1,
		NoiseFloor: 1e-2,
		Restarts:   1,
	}, ds.Matrix([]int{0, 1, 2}), ds.RespVec("y", []int{0, 1, 2}), rng)
	if err != nil {
		t.Fatal(err)
	}
	cands := []Candidate{
		{Row: 3, X: []float64{0.4}, Pred: gp.Prediction{Mean: 0, SD: 0.5}},
		{Row: 29, X: []float64{4.0}, Pred: gp.Prediction{Mean: 0, SD: 0.5}},
	}
	got := Diversity{Lambda: 1}.SelectWithModel(WrapGP(model), cands, nil)
	if got != 1 {
		t.Fatalf("Diversity picked %d, want the far candidate (1)", got)
	}
	// And with no model it degrades to argmax σ.
	cands[0].Pred.SD = 2
	if got := (Diversity{}).Select(cands, nil); got != 0 {
		t.Fatalf("marginal fallback picked %d, want 0", got)
	}
}

func TestQBCFallsBackWithoutModel(t *testing.T) {
	cands := mkCands(
		gp.Prediction{Mean: 0, SD: 0.2},
		gp.Prediction{Mean: 0, SD: 0.9},
	)
	if got := (QBC{}).Select(cands, nil); got != 1 {
		t.Fatalf("QBC marginal fallback picked %d, want 1", got)
	}
	if got := (QBC{}).SelectWithModel(nil, cands, rand.New(rand.NewSource(1))); got != 1 {
		t.Fatalf("QBC nil-model path picked %d, want 1", got)
	}
}

func TestBatchSelectKCenterSpreadsPicks(t *testing.T) {
	// Candidates on a 1-D line with near-equal SDs; k-center must not
	// pick two adjacent points when a far point is available.
	cands := []Candidate{
		{Row: 0, X: []float64{0.0}, Pred: gp.Prediction{SD: 1.00}},
		{Row: 1, X: []float64{0.1}, Pred: gp.Prediction{SD: 0.99}},
		{Row: 2, X: []float64{0.2}, Pred: gp.Prediction{SD: 0.98}},
		{Row: 3, X: []float64{5.0}, Pred: gp.Prediction{SD: 0.50}},
	}
	picks, err := BatchSelectKCenter(cands, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) != 2 || picks[0] != 0 || picks[1] != 3 {
		t.Fatalf("picks = %v, want [0 3]", picks)
	}
	// Distinctness over the full pool.
	picks, err = BatchSelectKCenter(cands, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, r := range picks {
		if seen[r] {
			t.Fatalf("duplicate pick %d in %v", r, picks)
		}
		seen[r] = true
	}
	// Error cases.
	if _, err := BatchSelectKCenter(cands, 0, 1); err == nil {
		t.Fatal("k=0 must error")
	}
	if _, err := BatchSelectKCenter(cands, 5, 1); err == nil {
		t.Fatal("k>len must error")
	}
}

func TestEMCMGradientCostAware(t *testing.T) {
	// Same σ and ‖x‖: the γ-weighted variant must avoid the expensive
	// (high predicted mean) candidate, the γ=0 one is indifferent to it.
	cands := []Candidate{
		{Row: 0, X: []float64{1}, Pred: gp.Prediction{Mean: 3, SD: 0.6}},
		{Row: 1, X: []float64{1}, Pred: gp.Prediction{Mean: 0, SD: 0.5}},
	}
	if got := (EMCMGradient{Gamma: 1}).Select(cands, nil); got != 1 {
		t.Fatalf("cost-aware picked %d, want 1", got)
	}
	if got := (EMCMGradient{}).Select(cands, nil); got != 0 {
		t.Fatalf("cost-blind picked %d, want 0", got)
	}
}
