package al

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

func TestRunParallelValidation(t *testing.T) {
	d := synthDS(t, 30, 0.05, 80)
	p := synthPartition(t, d, 81)
	cfg := ParallelConfig{Loop: quickLoop(VarianceReduction{}, 6), BatchSize: 0}
	if _, err := RunParallel(d, p, cfg, nil); err == nil {
		t.Fatal("expected batch-size error")
	}
	cfg = ParallelConfig{Loop: LoopConfig{}, BatchSize: 2}
	if _, err := RunParallel(d, p, cfg, nil); err == nil {
		t.Fatal("expected loop validation error")
	}
	bad := dataset.Partition{Initial: []int{0}}
	cfg = ParallelConfig{Loop: quickLoop(VarianceReduction{}, 6), BatchSize: 2}
	if _, err := RunParallel(d, bad, cfg, nil); err == nil {
		t.Fatal("expected empty-active error")
	}
}

func TestRunParallelReducesRMSE(t *testing.T) {
	d := synthDS(t, 60, 0.05, 82)
	p := synthPartition(t, d, 83)
	cfg := ParallelConfig{
		Loop:      quickLoop(VarianceReduction{}, 0),
		BatchSize: 3,
		Rounds:    6,
	}
	res, err := RunParallel(d, p, cfg, rand.New(rand.NewSource(84)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 6 {
		t.Fatalf("%d rounds", len(res.Rounds))
	}
	first, last := res.Rounds[0], res.Rounds[len(res.Rounds)-1]
	if !(last.RMSE < first.RMSE) {
		t.Fatalf("RMSE did not improve: %g -> %g", first.RMSE, last.RMSE)
	}
	for i, r := range res.Rounds {
		if len(r.Rows) != 3 {
			t.Fatalf("round %d picked %d experiments", i, len(r.Rows))
		}
		if r.Train != 1+3*(i+1) {
			t.Fatalf("round %d train size %d", i, r.Train)
		}
		// Wall clock must be below resource cost (parallelism pays).
		if r.WallClock > r.CumCost+1e-9 {
			t.Fatalf("round %d wall clock %g exceeds total cost %g", i, r.WallClock, r.CumCost)
		}
	}
	if res.Strategy != "variance-reduction/batch" {
		t.Fatalf("strategy %q", res.Strategy)
	}
}

// A round's picks must be distinct — the believer must not select the
// same experiment twice within one batch.
func TestRunParallelDistinctWithinRound(t *testing.T) {
	d := synthDS(t, 40, 0.1, 85)
	p := synthPartition(t, d, 86)
	cfg := ParallelConfig{Loop: quickLoop(VarianceReduction{}, 0), BatchSize: 4, Rounds: 4}
	res, err := RunParallel(d, p, cfg, rand.New(rand.NewSource(87)))
	if err != nil {
		t.Fatal(err)
	}
	for _, round := range res.Rounds {
		seen := map[int]bool{}
		for _, row := range round.Rows {
			if seen[row] {
				t.Fatalf("round %d picked row %d twice", round.Round, row)
			}
			seen[row] = true
		}
	}
}

// Parallel batches with wall-clock accounting must reach a given RMSE in
// less wall-clock than the same number of sequential experiments.
func TestRunParallelWallClockAdvantage(t *testing.T) {
	d := synthDS(t, 60, 0.05, 88)
	p := synthPartition(t, d, 89)
	seq, err := Run(d, p, quickLoop(VarianceReduction{}, 12), rand.New(rand.NewSource(90)))
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunParallel(d, p, ParallelConfig{
		Loop: quickLoop(VarianceReduction{}, 0), BatchSize: 4, Rounds: 3,
	}, rand.New(rand.NewSource(90)))
	if err != nil {
		t.Fatal(err)
	}
	// Both ran 12 experiments; parallel wall clock counts only the max
	// per round.
	seqWall := seq.Records[len(seq.Records)-1].CumCost
	parWall := par.Rounds[len(par.Rounds)-1].WallClock
	if parWall >= seqWall {
		t.Fatalf("parallel wall clock %g not below sequential %g", parWall, seqWall)
	}
	if math.IsNaN(par.Rounds[len(par.Rounds)-1].RMSE) {
		t.Fatal("missing RMSE")
	}
}

// ReoptimizeEvery with the Condition fast path must not change the
// sequence of selections versus per-iteration refits with identical
// hyperparameters frozen (sanity: conditioning is exact).
func TestConditionFastPathConsistency(t *testing.T) {
	d := synthDS(t, 40, 0.05, 91)
	p := synthPartition(t, d, 92)
	// Long reopt interval: iterations 2..6 all run through Condition.
	cfg := quickLoop(VarianceReduction{}, 6)
	cfg.ReoptimizeEvery = 10
	res, err := Run(d, p, cfg, rand.New(rand.NewSource(93)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 6 {
		t.Fatalf("%d records", len(res.Records))
	}
	// Noise is frozen between refits.
	for i := 1; i < len(res.Records); i++ {
		if res.Records[i].Noise != res.Records[0].Noise {
			t.Fatalf("noise drifted at iter %d without a refit", i+1)
		}
	}
	// Training size still grows 1 per iteration.
	for i, r := range res.Records {
		if r.Train != len(p.Initial)+i+1 {
			t.Fatalf("train size %d at iter %d", r.Train, i+1)
		}
	}
}
