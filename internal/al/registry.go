package al

import (
	"fmt"
	"sort"
)

// StrategyParams carries the tunable knobs a registry name can consume.
// Zero values mean "use the strategy's default"; parameters a strategy
// does not understand are ignored, so one params struct can drive a
// whole strategy × dataset evaluation grid.
type StrategyParams struct {
	// Gamma is the cost weight for cost-exponent, qbc-cost and
	// emcm-grad (σ − γ·μ convention, Eq. 14).
	Gamma float64
	// Epsilon, when positive, wraps the resolved strategy in
	// EpsilonGreedy with this exploration probability. For the
	// "eps-greedy" name it is the wrapper's ε directly (default 0.1).
	Epsilon float64
	// K is the qbc committee size (default 4).
	K int
	// Lambda is the diversity distance weight (default 1).
	Lambda float64
	// Perturb is the qbc hyperparameter perturbation SD (default 0.3).
	Perturb float64
}

// strategyBuilders maps canonical registry names to constructors. Every
// entry here must have a matching "### `name`" section in STRATEGIES.md
// — the aleval -check-catalog CI step enforces that.
var strategyBuilders = map[string]func(p StrategyParams) Strategy{
	"variance-reduction": func(StrategyParams) Strategy { return VarianceReduction{} },
	"cost-efficiency":    func(StrategyParams) Strategy { return CostEfficiency{} },
	"cost-exponent":      func(p StrategyParams) Strategy { return CostExponent{Gamma: p.Gamma} },
	"random":             func(StrategyParams) Strategy { return Random{} },
	"thompson":           func(StrategyParams) Strategy { return ThompsonVariance{} },
	"eps-greedy": func(p StrategyParams) Strategy {
		eps := p.Epsilon
		if eps <= 0 {
			eps = 0.1
		}
		return EpsilonGreedy{Base: VarianceReduction{}, Eps: eps}
	},
	"qbc":       func(p StrategyParams) Strategy { return QBC{K: p.K, Perturb: p.Perturb} },
	"qbc-cost":  func(p StrategyParams) Strategy { return QBC{K: p.K, Gamma: defGamma(p.Gamma), Perturb: p.Perturb} },
	"emcm-grad": func(p StrategyParams) Strategy { return EMCMGradient{Gamma: p.Gamma} },
	"diversity": func(p StrategyParams) Strategy { return Diversity{Lambda: p.Lambda} },
}

// defGamma defaults the cost weight to the paper's Eq. 14 value (γ = 1)
// for names that are cost-aware by definition.
func defGamma(g float64) float64 {
	if g == 0 {
		return 1
	}
	return g
}

// NewStrategy resolves a registry name plus parameters into a Strategy.
// The empty name means the paper default, variance-reduction. When
// p.Epsilon > 0 the resolved strategy is wrapped in EpsilonGreedy
// (except for "eps-greedy" itself, where Epsilon configures the wrapper
// directly). Unknown names list the registry in the error.
func NewStrategy(name string, p StrategyParams) (Strategy, error) {
	if name == "" {
		name = "variance-reduction"
	}
	build, ok := strategyBuilders[name]
	if !ok {
		return nil, fmt.Errorf("unknown strategy %q (registered: %v)", name, StrategyNames())
	}
	s := build(p)
	if p.Epsilon > 0 && name != "eps-greedy" {
		s = EpsilonGreedy{Base: s, Eps: p.Epsilon}
	}
	return s, nil
}

// StrategyNames lists the canonical registry names, sorted — the
// contract surface STRATEGIES.md must document and cmd/aleval -list
// prints.
func StrategyNames() []string {
	out := make([]string, 0, len(strategyBuilders))
	for name := range strategyBuilders {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
