package al

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/gp"
	"repro/internal/optimize"
)

// BatchSelect picks k distinct pool candidates for parallel execution
// using the kriging-believer heuristic: after each greedy pick, the model
// is conditioned on a fantasy observation equal to its own predictive
// mean, deflating the variance around the pick so the next pick explores
// elsewhere. This addresses the paper's future-work note that parallel
// experiments "may indicate a less greedy selection strategy" (§VI).
func BatchSelect(model *gp.GP, cands []Candidate, k int, strategy Strategy, rng *rand.Rand) ([]int, error) {
	if model == nil || strategy == nil {
		return nil, errors.New("al: BatchSelect requires a model and a strategy")
	}
	if k <= 0 || k > len(cands) {
		return nil, fmt.Errorf("al: BatchSelect k=%d with %d candidates", k, len(cands))
	}
	remaining := append([]Candidate(nil), cands...)
	cur := model
	var picks []int
	for round := 0; round < k; round++ {
		// Rescore the remaining candidates under the believer model.
		for i := range remaining {
			remaining[i].Pred = cur.Predict(remaining[i].X)
		}
		sel := strategy.Select(remaining, rng)
		if sel < 0 || sel >= len(remaining) {
			return nil, fmt.Errorf("al: strategy %s returned invalid index %d", strategy.Name(), sel)
		}
		chosen := remaining[sel]
		picks = append(picks, chosen.Row)
		remaining = append(remaining[:sel], remaining[sel+1:]...)
		if round == k-1 {
			break
		}
		next, err := cur.Augmented(chosen.X, chosen.Pred.Mean)
		if err != nil {
			return nil, fmt.Errorf("al: believer update: %w", err)
		}
		cur = next
	}
	return picks, nil
}

// Criterion scores a predictive distribution for continuous selection;
// larger is better.
type Criterion func(p gp.Prediction) float64

// VarianceCriterion is the continuous analogue of VarianceReduction.
func VarianceCriterion(p gp.Prediction) float64 { return p.SD }

// CostEfficiencyCriterion is the continuous analogue of CostEfficiency
// (log-space variance/cost ratio).
func CostEfficiencyCriterion(p gp.Prediction) float64 { return p.SD - p.Mean }

// ContinuousSelectGrad maximizes the predictive standard deviation over a
// continuous box by multi-start L-BFGS using the GP's analytic input-space
// gradients ∂σ/∂x — the gradient-based continuous selection the paper's
// §VI calls out as an important benefit for high-dimensional spaces. The
// kernel must implement kernel.InputGradient (RBF, ARD, Matérn-5/2 and
// their sums/products do).
func ContinuousSelectGrad(model *gp.GP, bounds []optimize.Bounds, restarts int, rng *rand.Rand) ([]float64, float64, error) {
	if model == nil {
		return nil, 0, errors.New("al: ContinuousSelectGrad requires a model")
	}
	if len(bounds) != model.TrainX().Cols() {
		return nil, 0, fmt.Errorf("al: %d bounds for %d input dimensions", len(bounds), model.TrainX().Cols())
	}
	if restarts < 1 {
		restarts = 4
	}
	obj := func(x []float64, grad []float64) float64 {
		p, _, dSD, err := model.PredictGrad(x)
		if err != nil {
			panic(err) // kernel capability checked below before first call
		}
		if grad != nil {
			for i := range grad {
				grad[i] = -dSD[i]
			}
		}
		return -p.SD
	}
	// Surface capability errors eagerly instead of panicking mid-search.
	x0 := make([]float64, len(bounds))
	for i, b := range bounds {
		x0[i] = 0.5 * (b.Lo + b.Hi)
	}
	if _, _, _, err := model.PredictGrad(x0); err != nil {
		return nil, 0, err
	}
	ms := &optimize.MultiStart{
		Opt:      &optimize.LBFGS{Bounds: bounds, MaxIter: 100},
		Restarts: restarts,
		Bounds:   bounds,
	}
	res, err := ms.Minimize(obj, x0, rng)
	if err != nil {
		return nil, 0, err
	}
	return res.X, -res.F, nil
}

// ContinuousSelect maximizes a selection criterion over a continuous box
// instead of a finite pool — the paper's proposed extension for
// "continuous or near-continuous parameters" (§VI). It runs multi-start
// Nelder–Mead (the criterion surface is cheap and derivative-free search
// avoids needing ∂σ/∂x) and returns the best input found.
func ContinuousSelect(model *gp.GP, bounds []optimize.Bounds, crit Criterion, restarts int, rng *rand.Rand) ([]float64, float64, error) {
	if model == nil {
		return nil, 0, errors.New("al: ContinuousSelect requires a model")
	}
	if len(bounds) != model.TrainX().Cols() {
		return nil, 0, fmt.Errorf("al: %d bounds for %d input dimensions", len(bounds), model.TrainX().Cols())
	}
	if crit == nil {
		crit = VarianceCriterion
	}
	if restarts < 1 {
		restarts = 4
	}
	obj := func(x []float64, grad []float64) float64 {
		return -crit(model.Predict(x)) // minimize the negation
	}
	ms := &optimize.MultiStart{
		Opt:      &optimize.NelderMead{Bounds: bounds, MaxIter: 400},
		Restarts: restarts,
		Bounds:   bounds,
	}
	x0 := make([]float64, len(bounds))
	for i, b := range bounds {
		x0[i] = 0.5 * (b.Lo + b.Hi)
	}
	res, err := ms.Minimize(obj, x0, rng)
	if err != nil {
		return nil, 0, err
	}
	return res.X, -res.F, nil
}
