package al

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// BatchConfig runs the same AL configuration over many random partitions
// of one dataset — the paper's mechanism for studying behaviour
// independent of the initial state (§IV, Figs. 7–8).
type BatchConfig struct {
	Loop      LoopConfig
	Partition dataset.PartitionConfig
	// Runs is the number of random partitions (paper: 10 for Fig. 7,
	// 50 for Fig. 8).
	Runs int
	// Seed makes the batch deterministic; partition r uses Seed + r.
	Seed int64
	// Parallel fans runs out over GOMAXPROCS workers.
	Parallel bool
}

// RunBatch executes cfg.Runs independent AL realizations.
func RunBatch(ds *dataset.Dataset, cfg BatchConfig) ([]Result, error) {
	if cfg.Runs <= 0 {
		cfg.Runs = 10
	}
	results := make([]Result, cfg.Runs)
	errs := make([]error, cfg.Runs)
	runOne := func(r int) {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(r)*7919))
		part, err := dataset.RandomPartition(ds, cfg.Partition, rng)
		if err != nil {
			errs[r] = err
			return
		}
		results[r], errs[r] = Run(ds, part, cfg.Loop, rng)
	}
	if cfg.Parallel {
		workers := runtime.GOMAXPROCS(0)
		if workers > cfg.Runs {
			workers = cfg.Runs
		}
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for r := range idx {
					runOne(r)
				}
			}()
		}
		for r := 0; r < cfg.Runs; r++ {
			idx <- r
		}
		close(idx)
		wg.Wait()
	} else {
		for r := 0; r < cfg.Runs; r++ {
			runOne(r)
		}
	}
	for r, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("al: batch run %d: %w", r, err)
		}
	}
	return results, nil
}

// Curves are per-iteration averages across a batch of runs — the
// aggregate trajectories plotted in Figs. 7 and 8(a).
type Curves struct {
	Iter     []int
	SDChosen []float64
	AMSD     []float64
	RMSE     []float64
	CumCost  []float64
}

// AverageCurves aggregates batch results iteration-by-iteration, up to
// the shortest run's length.
func AverageCurves(results []Result) Curves {
	if len(results) == 0 {
		return Curves{}
	}
	minLen := len(results[0].Records)
	for _, r := range results[1:] {
		if len(r.Records) < minLen {
			minLen = len(r.Records)
		}
	}
	c := Curves{}
	for i := 0; i < minLen; i++ {
		var sd, amsd, rmse, cost float64
		nRMSE := 0
		for _, r := range results {
			rec := r.Records[i]
			sd += rec.SDChosen
			amsd += rec.AMSD
			cost += rec.CumCost
			if !math.IsNaN(rec.RMSE) {
				rmse += rec.RMSE
				nRMSE++
			}
		}
		n := float64(len(results))
		c.Iter = append(c.Iter, i+1)
		c.SDChosen = append(c.SDChosen, sd/n)
		c.AMSD = append(c.AMSD, amsd/n)
		c.CumCost = append(c.CumCost, cost/n)
		if nRMSE > 0 {
			c.RMSE = append(c.RMSE, rmse/float64(nRMSE))
		} else {
			c.RMSE = append(c.RMSE, math.NaN())
		}
	}
	return c
}

// FinalRMSEs returns the last-iteration RMSE of each run.
func FinalRMSEs(results []Result) []float64 {
	out := make([]float64, 0, len(results))
	for _, r := range results {
		if len(r.Records) > 0 {
			out = append(out, r.Records[len(r.Records)-1].RMSE)
		}
	}
	return out
}

// MinAMSD returns the smallest AMSD any run reached — used by the Fig. 7
// overfitting check (AMSD collapsing far below its stable value signals a
// degenerate noise fit).
func MinAMSD(results []Result) float64 {
	m := math.Inf(1)
	for _, r := range results {
		for _, rec := range r.Records {
			if rec.AMSD < m {
				m = rec.AMSD
			}
		}
	}
	return m
}

// EarlySDCollapseFraction reports the fraction of runs whose selected-point
// SD drops below threshold within the first k iterations — the §V-B4
// symptom ("σ_f(x) drops to negligible values before the 5th iteration").
func EarlySDCollapseFraction(results []Result, k int, threshold float64) float64 {
	if len(results) == 0 {
		return 0
	}
	collapsed := 0
	for _, r := range results {
		n := k
		if n > len(r.Records) {
			n = len(r.Records)
		}
		for _, rec := range r.Records[:n] {
			if rec.SDChosen < threshold {
				collapsed++
				break
			}
		}
	}
	return float64(collapsed) / float64(len(results))
}

// StableAMSD estimates the converged AMSD level of a batch as the median
// AMSD over the last quarter of iterations.
func StableAMSD(results []Result) float64 {
	var tail []float64
	for _, r := range results {
		n := len(r.Records)
		if n == 0 {
			continue
		}
		for _, rec := range r.Records[n-n/4-1:] {
			tail = append(tail, rec.AMSD)
		}
	}
	if len(tail) == 0 {
		return math.NaN()
	}
	return stats.Median(tail)
}
