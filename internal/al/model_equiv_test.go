package al

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
)

// equivLoop is the shared configuration of the m = n trace-equivalence
// runs: every tier fits hyperparameters on the full training set (the
// subsample covers all rows), the sparse tier's inducing set covers every
// training point, and its Kmm jitter is pushed down to keep the exact
// dense reduction inside the 1e-8 tolerance.
func equivLoop(model string, workers int, onModel func(Regressor)) LoopConfig {
	return LoopConfig{
		Response:     "y",
		Strategy:     VarianceReduction{},
		Iterations:   10,
		NoiseFloor:   1e-2,
		Restarts:     1,
		AllowRevisit: false, // keep training rows distinct: Kmm stays well conditioned
		ScoreWorkers: workers,
		Model:        model,
		ModelOptions: ModelOptions{
			Inducing:       1 << 10, // ≥ n: clamped to the full training set
			HyperSubsample: -1,      // hyper-fit on all rows: identical RNG stream to dense
			Jitter:         1e-13,
		},
		OnModel: onModel,
	}
}

// equivRun executes one fresh loop at the given tier and scorer width,
// collecting the per-update model fingerprints.
func equivRun(t *testing.T, ds *dataset.Dataset, part dataset.Partition, model string, workers int) (Result, []uint64) {
	t.Helper()
	var fps []uint64
	cfg := equivLoop(model, workers, func(m Regressor) { fps = append(fps, m.Fingerprint()) })
	cfg.Seed = 7
	res, err := Run(ds, part, cfg, nil)
	if err != nil {
		t.Fatalf("%s run: %v", model, err)
	}
	return res, fps
}

// TestSparseDenseLoopEquivalence extends TestSparseWithAllInducingMatchesExact
// from single predictions to a whole AL campaign: with the inducing set
// equal to the training set, a sparse-tier al.Run must reproduce the dense
// run — the same selection trace, and every monitored quantity within
// 1e-8 — while the sparse run itself is bit-reproducible between the
// serial and the parallel scorer (identical golden fingerprint trace).
func TestSparseDenseLoopEquivalence(t *testing.T) {
	ds := synthDS(t, 22, 0.05, 41)
	part := synthPartition(t, ds, 42)

	dense, _ := equivRun(t, ds, part, ModelDense, 1)
	sparse, sparseFPs := equivRun(t, ds, part, ModelSparse, 1)
	sparsePar, sparseParFPs := equivRun(t, ds, part, ModelSparse, 4)

	// Dense vs sparse at m = n: identical selection trace, monitored
	// quantities within 1e-8.
	if len(dense.Records) != len(sparse.Records) {
		t.Fatalf("dense %d records, sparse %d", len(dense.Records), len(sparse.Records))
	}
	for i, dr := range dense.Records {
		sr := sparse.Records[i]
		if dr.Row != sr.Row {
			t.Fatalf("iter %d: dense selected row %d, sparse row %d", dr.Iter, dr.Row, sr.Row)
		}
		if d := math.Abs(dr.AMSD - sr.AMSD); d > 1e-8 {
			t.Fatalf("iter %d: |ΔAMSD| = %g", dr.Iter, d)
		}
		if d := math.Abs(dr.RMSE - sr.RMSE); d > 1e-8 {
			t.Fatalf("iter %d: |ΔRMSE| = %g", dr.Iter, d)
		}
		if d := math.Abs(dr.SDChosen - sr.SDChosen); d > 1e-8 {
			t.Fatalf("iter %d: |ΔSDChosen| = %g", dr.Iter, d)
		}
		// The DTC likelihood equals the dense one through
		// log det A − log det Kmm, a difference of two ill-conditioned
		// terms at m = n — it tracks the dense value at ~1e-3 relative
		// precision while predictions hold 1e-8.
		if d := math.Abs(dr.LML - sr.LML); d > 1e-3*(1+math.Abs(dr.LML)) {
			t.Fatalf("iter %d: |ΔLML| = %g (dense %g)", dr.Iter, d, dr.LML)
		}
	}

	// Final posterior within 1e-8 across the full test grid.
	testX := ds.Matrix(part.Test)
	dp := dense.Final.PredictBatch(testX)
	sp := sparse.Final.PredictBatch(testX)
	for i := range dp {
		if d := math.Abs(dp[i].Mean - sp[i].Mean); d > 1e-8 {
			t.Fatalf("test point %d: |Δmean| = %g", i, d)
		}
		if d := math.Abs(dp[i].SD - sp[i].SD); d > 1e-8 {
			t.Fatalf("test point %d: |ΔSD| = %g", i, d)
		}
	}

	// Serial vs parallel scorer on the sparse tier: bitwise-identical
	// records and the same golden fingerprint trace — scoring order must
	// not leak into the model.
	if len(sparse.Records) != len(sparsePar.Records) {
		t.Fatalf("serial %d records, parallel %d", len(sparse.Records), len(sparsePar.Records))
	}
	for i := range sparse.Records {
		if sparse.Records[i] != sparsePar.Records[i] {
			t.Fatalf("iter %d: serial record %+v != parallel %+v",
				i+1, sparse.Records[i], sparsePar.Records[i])
		}
	}
	if len(sparseFPs) == 0 || len(sparseFPs) != len(sparseParFPs) {
		t.Fatalf("fingerprint traces: serial %d, parallel %d", len(sparseFPs), len(sparseParFPs))
	}
	for i := range sparseFPs {
		if sparseFPs[i] != sparseParFPs[i] {
			t.Fatalf("fingerprint %d: serial %016x != parallel %016x", i, sparseFPs[i], sparseParFPs[i])
		}
	}

	// The sparse tier really ran sparse models end to end.
	if _, ok := sparse.Final.(sparseRegressor); !ok {
		t.Fatalf("sparse run finished with %T", sparse.Final)
	}
	if _, ok := UnwrapGP(dense.Final); !ok {
		t.Fatalf("dense run finished with %T", dense.Final)
	}
	if s, ok := sparse.Final.(interface{ NumInducing() int }); !ok || s.NumInducing() != sparse.Final.NumTrain() {
		t.Fatalf("m = n violated: %d inducing for %d training points",
			sparse.Final.(interface{ NumInducing() int }).NumInducing(), sparse.Final.NumTrain())
	}
}

// TestAutoTierLoopRuns pins the auto tier end to end: below the crossover
// it must resolve dense, the loop must complete, checkpoint-recipe
// extraction must work (modelRecipe requires train-data access on every
// tier), and the fingerprint must carry the tier tag.
func TestAutoTierLoopRuns(t *testing.T) {
	ds := synthDS(t, 24, 0.05, 51)
	part := synthPartition(t, ds, 52)
	cfg := equivLoop(ModelAuto, 1, nil)
	cfg.Seed = 9
	res, err := Run(ds, part, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ar, ok := res.Final.(autoRegressor)
	if !ok {
		t.Fatalf("auto run finished with %T", res.Final)
	}
	if tier := ar.AutoModel.Tier(); tier != "dense" {
		t.Fatalf("auto tier at n=%d resolved %q, want dense below crossover", res.Final.NumTrain(), tier)
	}
	if _, _, _, err := modelRecipe(res.Final); err != nil {
		t.Fatalf("auto tier recipe: %v", err)
	}
	var inner Regressor = denseRegressor{ar.AutoModel.Dense()}
	if ar.Fingerprint() == inner.Fingerprint() {
		t.Fatal("auto fingerprint missing the tier tag")
	}
}

// TestSparseCheckpointResume runs the checkpoint/resume contract on the
// sparse tier: interrupting a Model: "sparse" loop and resuming must
// reproduce the uninterrupted run bit for bit (the atHypers rebuild plus
// the incremental-update chain), and a checkpoint written by one tier
// must refuse to resume under another.
func TestSparseCheckpointResume(t *testing.T) {
	ds := synthDS(t, 30, 0.05, 61)
	part := synthPartition(t, ds, 62)
	dir := t.TempDir()

	base := equivLoop(ModelSparse, 1, nil)
	base.Iterations = 9
	base.ReoptimizeEvery = 3 // exercises sparse UpdateWithPoint in the rebuild
	base.Seed = 13

	ref := base
	ref.CheckpointPath = filepath.Join(dir, "ref.json")
	full, err := Run(ds, part, ref, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Records) == 0 {
		t.Fatal("reference sparse run produced no records")
	}

	path := filepath.Join(dir, "cut.json")
	interrupted := base
	interrupted.CheckpointPath = path
	interrupted.Iterations = 5
	if _, err := Run(ds, part, interrupted, nil); err != nil {
		t.Fatal(err)
	}

	cont := base
	cont.CheckpointPath = path
	res, err := Resume(ds, part, cont, path)
	if err != nil {
		t.Fatalf("sparse resume: %v", err)
	}
	sameRecords(t, res.Records, full.Records)
	if res.Final.Fingerprint() != full.Final.Fingerprint() {
		t.Fatalf("resumed fingerprint %016x, uninterrupted %016x",
			res.Final.Fingerprint(), full.Final.Fingerprint())
	}

	// Tier mismatch: the same checkpoint under Model: "dense" must be
	// rejected, not silently rebuilt on the wrong tier.
	wrong := base
	wrong.Model = ModelDense
	wrong.CheckpointPath = path
	if _, err := Resume(ds, part, wrong, path); err == nil {
		t.Fatal("dense resume of a sparse checkpoint succeeded")
	} else if !strings.Contains(err.Error(), "model") {
		t.Fatalf("tier-mismatch error does not name the model: %v", err)
	}
}
