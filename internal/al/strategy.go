package al

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/gp"
)

// Candidate is one pool point presented to a strategy.
type Candidate struct {
	// Row is the dataset row index of the candidate.
	Row int
	// X is the candidate's input vector.
	X []float64
	// Pred is the GP predictive distribution at X (in model space, i.e.
	// log-transformed units when the dataset is log-transformed).
	Pred gp.Prediction
	// Cost is the candidate's known experiment cost (used only by
	// cost-model-free baselines; the paper's cost-aware strategy uses
	// the *predicted* cost μ instead).
	Cost float64
}

// Strategy scores pool candidates and picks the next experiment.
type Strategy interface {
	// Select returns the index into cands of the chosen candidate.
	Select(cands []Candidate, rng *rand.Rand) int
	// Name identifies the strategy in reports.
	Name() string
}

// VarianceReduction selects argmax σ: the point the model is least sure
// about (§V-B3).
type VarianceReduction struct{}

// Select implements Strategy.
func (VarianceReduction) Select(cands []Candidate, _ *rand.Rand) int {
	best, bestV := -1, math.Inf(-1)
	for i, c := range cands {
		if c.Pred.SD > bestV {
			best, bestV = i, c.Pred.SD
		}
	}
	return best
}

// Name implements Strategy.
func (VarianceReduction) Name() string { return "variance-reduction" }

// CostEfficiency selects argmax (σ − μ) on log responses (Eq. 14): the
// log of the variance/cost ratio when the response itself (runtime,
// energy) is the experiment cost.
type CostEfficiency struct{}

// Select implements Strategy.
func (CostEfficiency) Select(cands []Candidate, _ *rand.Rand) int {
	best, bestV := -1, math.Inf(-1)
	for i, c := range cands {
		if v := c.Pred.SD - c.Pred.Mean; v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// Name implements Strategy.
func (CostEfficiency) Name() string { return "cost-efficiency" }

// CostExponent generalizes the two paper strategies with a weight γ on
// the predicted cost: criterion σ − γ·μ. γ = 0 is VarianceReduction,
// γ = 1 is CostEfficiency; intermediate values trade uncertainty against
// cost more softly. This is the ablation axis for the design choice in
// Eq. 14.
type CostExponent struct {
	Gamma float64
}

// Select implements Strategy.
func (s CostExponent) Select(cands []Candidate, _ *rand.Rand) int {
	best, bestV := -1, math.Inf(-1)
	for i, c := range cands {
		if v := c.Pred.SD - s.Gamma*c.Pred.Mean; v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// Name implements Strategy.
func (s CostExponent) Name() string { return fmt.Sprintf("cost-exponent(%.2f)", s.Gamma) }

// EpsilonGreedy wraps a base strategy with ε-probability uniform
// exploration: with probability Eps the next experiment is drawn
// uniformly from the pool, otherwise the base rule decides. A standard
// guard against a mis-fit model steering all measurements into one
// region early on.
type EpsilonGreedy struct {
	Base Strategy
	Eps  float64
}

// Select implements Strategy.
func (s EpsilonGreedy) Select(cands []Candidate, rng *rand.Rand) int {
	if len(cands) == 0 {
		return -1
	}
	if rng != nil && s.Eps > 0 && rng.Float64() < s.Eps {
		return rng.Intn(len(cands))
	}
	if s.Base == nil {
		return VarianceReduction{}.Select(cands, rng)
	}
	return s.Base.Select(cands, rng)
}

// Name implements Strategy.
func (s EpsilonGreedy) Name() string {
	base := "variance-reduction"
	if s.Base != nil {
		base = s.Base.Name()
	}
	return fmt.Sprintf("eps-greedy(%.2f,%s)", s.Eps, base)
}

// Random selects uniformly — the naive fixed-design baseline.
type Random struct{}

// Select implements Strategy.
func (Random) Select(cands []Candidate, rng *rand.Rand) int {
	if len(cands) == 0 {
		return -1
	}
	return rng.Intn(len(cands))
}

// Name implements Strategy.
func (Random) Name() string { return "random" }
