package al

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/obs"
)

// TestLoopEmitsIterationSpans asserts the observability contract of Run
// documented in OBSERVABILITY.md: one "al.iteration" span per completed
// iteration, each with "al.model.update", "al.score" and "al.select"
// children, and a nested "gp.fit" under the refit's model update.
func TestLoopEmitsIterationSpans(t *testing.T) {
	obs.Default.Reset()
	var buf bytes.Buffer
	obs.SetSink(&buf)
	defer obs.SetSink(nil)

	d := synthDS(t, 30, 0.05, 1)
	part := synthPartition(t, d, 2)
	const iters = 3
	cfg := quickLoop(VarianceReduction{}, iters)
	if _, err := Run(d, part, cfg, rand.New(rand.NewSource(3))); err != nil {
		t.Fatal(err)
	}

	if got := obs.C("al.iteration.count").Value(); got != iters {
		t.Errorf("al.iteration.count = %d, want %d", got, iters)
	}
	if got := obs.T("al.iteration.duration").Count(); got != iters {
		t.Errorf("al.iteration.duration observations = %d, want %d", got, iters)
	}
	if got := obs.C("al.refit.count").Value(); got != iters {
		t.Errorf("al.refit.count = %d, want %d (ReoptimizeEvery defaults to 1)", got, iters)
	}
	if got := obs.C("al.candidates.evaluated").Value(); got <= 0 {
		t.Errorf("al.candidates.evaluated = %d, want > 0", got)
	}

	spans, err := obs.ReadJSONLSpans(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	count := map[string]int{}
	parents := map[string]map[string]bool{}
	for _, s := range spans {
		count[s.Name]++
		if parents[s.Name] == nil {
			parents[s.Name] = map[string]bool{}
		}
		parents[s.Name][s.Parent] = true
	}
	if count["al.iteration"] != iters {
		t.Errorf("sink has %d al.iteration spans, want %d", count["al.iteration"], iters)
	}
	for _, child := range []string{"al.model.update", "al.score", "al.select"} {
		if count[child] != iters {
			t.Errorf("sink has %d %s spans, want %d", count[child], child, iters)
		}
		if !parents[child]["al.iteration"] || len(parents[child]) != 1 {
			t.Errorf("%s spans have parents %v, want only al.iteration", child, parents[child])
		}
	}
	if count["gp.fit"] != iters || !parents["gp.fit"]["al.model.update"] {
		t.Errorf("gp.fit spans: count=%d parents=%v, want %d nested under al.model.update",
			count["gp.fit"], parents["gp.fit"], iters)
	}
}
