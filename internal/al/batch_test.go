package al

import (
	"math"
	"testing"

	"repro/internal/dataset"
)

func quickBatch(strategy Strategy, runs, iters int, seed int64) BatchConfig {
	return BatchConfig{
		Loop:      quickLoop(strategy, iters),
		Partition: dataset.PartitionConfig{NInitial: 1, TestFrac: 0.2},
		Runs:      runs,
		Seed:      seed,
	}
}

func TestRunBatchShapes(t *testing.T) {
	d := synthDS(t, 40, 0.05, 30)
	results, err := RunBatch(d, quickBatch(VarianceReduction{}, 4, 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("%d results", len(results))
	}
	for _, r := range results {
		if len(r.Records) != 8 {
			t.Fatalf("run has %d records", len(r.Records))
		}
	}
}

func TestRunBatchDeterministic(t *testing.T) {
	d := synthDS(t, 40, 0.05, 31)
	a, err := RunBatch(d, quickBatch(VarianceReduction{}, 3, 5, 9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBatch(d, quickBatch(VarianceReduction{}, 3, 5, 9))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i].Records {
			if a[i].Records[j].Row != b[i].Records[j].Row ||
				a[i].Records[j].RMSE != b[i].Records[j].RMSE {
				t.Fatalf("batch not deterministic at run %d record %d", i, j)
			}
		}
	}
}

func TestRunBatchParallelMatchesSerial(t *testing.T) {
	d := synthDS(t, 40, 0.05, 32)
	cfg := quickBatch(VarianceReduction{}, 4, 5, 10)
	serial, err := RunBatch(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallel = true
	parallel, err := RunBatch(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		for j := range serial[i].Records {
			if serial[i].Records[j].Row != parallel[i].Records[j].Row {
				t.Fatalf("parallel batch diverged at run %d record %d", i, j)
			}
		}
	}
}

func TestAverageCurves(t *testing.T) {
	d := synthDS(t, 40, 0.05, 33)
	results, err := RunBatch(d, quickBatch(VarianceReduction{}, 5, 10, 11))
	if err != nil {
		t.Fatal(err)
	}
	c := AverageCurves(results)
	if len(c.Iter) != 10 || len(c.RMSE) != 10 || len(c.AMSD) != 10 || len(c.CumCost) != 10 {
		t.Fatalf("curve lengths %d/%d/%d/%d", len(c.Iter), len(c.RMSE), len(c.AMSD), len(c.CumCost))
	}
	// Cost must increase; RMSE should broadly decrease.
	for i := 1; i < len(c.CumCost); i++ {
		if c.CumCost[i] <= c.CumCost[i-1] {
			t.Fatal("average cost not increasing")
		}
	}
	if !(c.RMSE[len(c.RMSE)-1] < c.RMSE[0]) {
		t.Fatalf("average RMSE did not improve: %g -> %g", c.RMSE[0], c.RMSE[len(c.RMSE)-1])
	}
	if AverageCurves(nil).Iter != nil {
		t.Fatal("empty input should give empty curves")
	}
}

func TestFinalRMSEs(t *testing.T) {
	d := synthDS(t, 40, 0.05, 34)
	results, err := RunBatch(d, quickBatch(VarianceReduction{}, 3, 6, 12))
	if err != nil {
		t.Fatal(err)
	}
	finals := FinalRMSEs(results)
	if len(finals) != 3 {
		t.Fatalf("%d finals", len(finals))
	}
	for _, f := range finals {
		if math.IsNaN(f) || f < 0 {
			t.Fatalf("bad final RMSE %g", f)
		}
	}
}

// The Fig. 7 mechanism: with σn allowed down to 1e-8, small aligned
// training sets let the fitted noise collapse toward zero (the GP
// believes its data are exact — overfitting); the 1e-1 floor forbids it.
func TestNoiseFloorControlsOverfitting(t *testing.T) {
	if testing.Short() {
		t.Skip("batch noise-floor study skipped in -short mode")
	}
	d := synthDS(t, 60, 0.15, 35)
	mk := func(floor float64) []Result {
		cfg := quickBatch(VarianceReduction{}, 6, 12, 13)
		cfg.Loop.NoiseFloor = floor
		results, err := RunBatch(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	low := mk(1e-8)
	high := mk(1e-1)
	minNoise := func(results []Result) float64 {
		m := math.Inf(1)
		for _, r := range results {
			for _, rec := range r.Records {
				if rec.Noise < m {
					m = rec.Noise
				}
			}
		}
		return m
	}
	if got := minNoise(high); got < 0.1-1e-9 {
		t.Fatalf("floored batch fitted σn=%g below the floor", got)
	}
	if got := minNoise(low); got >= 1e-2 {
		t.Fatalf("tiny floor never produced a collapsed noise fit (min σn=%g); overfitting mechanism absent", got)
	}
}

func TestEarlySDCollapseFractionCounts(t *testing.T) {
	mk := func(sds ...float64) Result {
		var r Result
		for i, sd := range sds {
			r.Records = append(r.Records, IterationRecord{Iter: i + 1, SDChosen: sd})
		}
		return r
	}
	results := []Result{
		mk(0.5, 1e-9, 0.5), // collapses at iter 2
		mk(0.5, 0.4, 0.3),  // fine
	}
	if got := EarlySDCollapseFraction(results, 5, 1e-6); got != 0.5 {
		t.Fatalf("fraction = %g, want 0.5", got)
	}
	if got := EarlySDCollapseFraction(results, 1, 1e-6); got != 0 {
		t.Fatalf("fraction with k=1 = %g, want 0", got)
	}
	if EarlySDCollapseFraction(nil, 3, 1) != 0 {
		t.Fatal("empty input")
	}
}

func TestStableAMSD(t *testing.T) {
	var r Result
	for i := 0; i < 20; i++ {
		amsd := 1.0
		if i >= 10 {
			amsd = 0.1
		}
		r.Records = append(r.Records, IterationRecord{Iter: i + 1, AMSD: amsd})
	}
	got := StableAMSD([]Result{r})
	if math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("StableAMSD = %g, want 0.1", got)
	}
	if !math.IsNaN(StableAMSD(nil)) {
		t.Fatal("empty should be NaN")
	}
}

func TestTradeoffCurveAndInterpolation(t *testing.T) {
	c := Curves{
		Iter:    []int{1, 2, 3},
		RMSE:    []float64{1.0, 0.5, 0.25},
		CumCost: []float64{10, 20, 40},
		AMSD:    []float64{0, 0, 0}, SDChosen: []float64{0, 0, 0},
	}
	curve := TradeoffCurve(c)
	if len(curve) != 3 {
		t.Fatalf("curve len %d", len(curve))
	}
	if got := RMSEAtCost(curve, 15); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("interpolated RMSE = %g, want 0.75", got)
	}
	if got := RMSEAtCost(curve, 5); got != 1.0 {
		t.Fatalf("below-range RMSE = %g", got)
	}
	if got := RMSEAtCost(curve, 100); got != 0.25 {
		t.Fatalf("above-range RMSE = %g", got)
	}
	if !math.IsNaN(RMSEAtCost(nil, 1)) {
		t.Fatal("empty curve should be NaN")
	}
}

func TestCompareFindsCrossoverAndReduction(t *testing.T) {
	// Baseline: RMSE 1 → 0.5 over cost 10 → 1000.
	// Candidate: starts worse (1.5) but drops to 0.25 — crossover
	// somewhere in the middle, then up to 50% better.
	baseline := []TradeoffPoint{{10, 1.0}, {100, 0.8}, {1000, 0.5}}
	candidate := []TradeoffPoint{{10, 1.5}, {100, 0.7}, {1000, 0.25}}
	cmp := Compare(baseline, candidate)
	if math.IsNaN(cmp.CrossoverCost) {
		t.Fatal("no crossover found")
	}
	if cmp.CrossoverCost < 10 || cmp.CrossoverCost > 100 {
		t.Fatalf("crossover at %g, want within (10, 100)", cmp.CrossoverCost)
	}
	if cmp.MaxReduction < 0.4 || cmp.MaxReduction > 0.6 {
		t.Fatalf("max reduction %g, want ≈0.5", cmp.MaxReduction)
	}
	if len(cmp.ReductionAt) == 0 {
		t.Fatal("no reductions at cost multiples")
	}
	// Degenerate inputs.
	if got := Compare(nil, candidate); !math.IsNaN(got.CrossoverCost) {
		t.Fatal("empty baseline should yield NaN crossover")
	}
}

func TestCompareNeverCrossing(t *testing.T) {
	baseline := []TradeoffPoint{{10, 0.5}, {1000, 0.1}}
	candidate := []TradeoffPoint{{10, 1.0}, {1000, 0.2}}
	cmp := Compare(baseline, candidate)
	if !math.IsNaN(cmp.CrossoverCost) {
		t.Fatalf("unexpected crossover at %g", cmp.CrossoverCost)
	}
	if cmp.MaxReduction != 0 {
		t.Fatalf("max reduction %g, want 0", cmp.MaxReduction)
	}
}
