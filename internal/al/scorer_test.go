package al

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/gp"
	"repro/internal/kernel"
	"repro/internal/mat"
)

// fitTestGP builds a small fitted GP over a 1-D grid for scorer tests.
func fitTestGP(t *testing.T, n int) *gp.GP {
	t.Helper()
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := 4 * float64(i) / float64(n-1)
		xs[i] = []float64{x}
		ys[i] = x * x
	}
	model, err := gp.Fit(gp.Config{Kernel: kernel.NewRBF(1, 1), NoiseInit: 0.1, FixedNoise: true},
		mat.NewFromRows(xs), ys, nil)
	if err != nil {
		t.Fatal(err)
	}
	return model
}

// bigGrid returns m 1-D query points.
func bigGrid(m int) *mat.Dense {
	g := mat.New(m, 1)
	for i := 0; i < m; i++ {
		g.Set(i, 0, 5*float64(i)/float64(m))
	}
	return g
}

// TestScorePoolMatchesSerial: the worker-pool scorer must be bitwise
// identical to a single PredictBatch call — each prediction depends only
// on its own row, so chunking cannot change any float.
func TestScorePoolMatchesSerial(t *testing.T) {
	model := fitTestGP(t, 12)
	grid := bigGrid(137) // odd size: exercises a ragged final chunk
	want := model.PredictBatch(grid)
	for _, workers := range []int{1, 2, 3, 4, 8, 137, 200} {
		got := scorePool(WrapGP(model), grid, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d predictions, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: prediction %d = %+v, want %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestScorePoolConcurrentModels: one fitted GP backing many concurrent
// scorePool calls — the scorer's documented read-only contract, and the
// surface the race detector checks.
func TestScorePoolConcurrentModels(t *testing.T) {
	model := fitTestGP(t, 10)
	grid := bigGrid(96)
	want := model.PredictBatch(grid)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := scorePool(WrapGP(model), grid, 4)
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("concurrent scorePool diverged at %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestResolveScoreWorkers pins the ScoreWorkers semantics: explicit
// values win, 0 defers to the process default.
func TestResolveScoreWorkers(t *testing.T) {
	defer SetDefaultScoreWorkers(0)
	if got := resolveScoreWorkers(3); got != 3 {
		t.Fatalf("explicit 3 resolved to %d", got)
	}
	SetDefaultScoreWorkers(1)
	if got := resolveScoreWorkers(0); got != 1 {
		t.Fatalf("default 1 resolved to %d", got)
	}
	SetDefaultScoreWorkers(0)
	if got := resolveScoreWorkers(0); got < 1 {
		t.Fatalf("GOMAXPROCS default resolved to %d", got)
	}
}

// TestSerialParallelTracesIdentical runs every strategy through the full
// AL loop twice — serial scorer vs worker pool — with identical seeds and
// asserts the selection traces and monitoring records match exactly. This
// is the determinism contract that lets the parallel scorer be the
// default.
func TestSerialParallelTracesIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("serial/parallel trace equivalence skipped in -short mode")
	}
	ds := synthDS(t, 60, 0.05, 9)
	part := synthPartition(t, ds, 9)
	strategies := []Strategy{
		VarianceReduction{},
		CostEfficiency{},
		CostExponent{Gamma: 0.5},
		EpsilonGreedy{Base: VarianceReduction{}, Eps: 0.3},
		Random{},
		ThompsonVariance{},
	}
	for _, s := range strategies {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			runWith := func(workers int) Result {
				cfg := quickLoop(s, 8)
				cfg.ScoreWorkers = workers
				res, err := Run(ds, part, cfg, rand.New(rand.NewSource(21)))
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			serial := runWith(1)
			parallel := runWith(8)
			if len(serial.TrainRows) != len(parallel.TrainRows) {
				t.Fatalf("trace lengths differ: %d vs %d", len(serial.TrainRows), len(parallel.TrainRows))
			}
			for i := range serial.TrainRows {
				if serial.TrainRows[i] != parallel.TrainRows[i] {
					t.Fatalf("selection traces diverge at step %d: %d vs %d",
						i, serial.TrainRows[i], parallel.TrainRows[i])
				}
			}
			for i := range serial.Records {
				a, b := serial.Records[i], parallel.Records[i]
				if a != b {
					t.Fatalf("iteration records diverge at step %d:\nserial:   %+v\nparallel: %+v", i, a, b)
				}
			}
		})
	}
}

// TestEMCMSerialParallelTracesIdentical covers the EMCM scorer fan-out
// with the same serial-equivalence contract.
func TestEMCMSerialParallelTracesIdentical(t *testing.T) {
	ds := synthDS(t, 60, 0.05, 9)
	part := synthPartition(t, ds, 9)
	runWith := func(workers int) Result {
		SetDefaultScoreWorkers(workers)
		defer SetDefaultScoreWorkers(0)
		res, err := RunEMCM(ds, part, EMCMConfig{Response: "y", Iterations: 6}, rand.New(rand.NewSource(4)))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := runWith(1)
	parallel := runWith(8)
	for i := range serial.Records {
		if serial.Records[i] != parallel.Records[i] {
			t.Fatalf("EMCM records diverge at step %d", i)
		}
	}
}
