package al

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/gp"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/stats"
)

// AL-loop metrics (see OBSERVABILITY.md). Each iteration of Run and
// RunOnline opens an "al.iteration" span with "al.model.update",
// "al.score" and "al.select" children; the counters tally work volumes
// the spans do not capture. The fault-path counters (al.retries,
// al.rejected, al.skipped) stay at zero in healthy runs.
var (
	candidatesEvaluated = obs.C("al.candidates.evaluated")
	refits              = obs.C("al.refit.count")
	conditionUpdates    = obs.C("al.condition.count")
	experiments         = obs.C("al.experiments.count")
	poolSize            = obs.G("al.pool.size")
	alRetries           = obs.C("al.retries")
	alRejected          = obs.C("al.rejected")
	alSkipped           = obs.C("al.skipped")
)

// LoopConfig drives one Active Learning realization over a partitioned
// dataset (§IV: Initial seeds the GP, Active is the candidate pool, Test
// measures RMSE).
type LoopConfig struct {
	// Response names the dataset response column to model; required.
	Response string

	// Strategy picks the next experiment; required.
	Strategy Strategy

	// NewKernel constructs a fresh kernel for a given input
	// dimensionality; defaults to an isotropic RBF(1, 1).
	NewKernel func(dims int) kernel.Kernel

	// Iterations bounds the number of AL steps; 0 means run until the
	// convergence rule (or pool exhaustion for non-revisiting
	// strategies).
	Iterations int

	// NoiseFloor is the σn lower bound passed to the GP — the paper's
	// overfitting control (Fig. 7). Default gp.DefaultNoiseFloor.
	NoiseFloor float64

	// DynamicFloorC, when positive, activates the paper's proposed
	// adaptive floor σn ≥ c/√N (§V-B4) with this c, overriding
	// NoiseFloor as training data accumulates.
	DynamicFloorC float64

	// Restarts is the number of random LML-optimizer restarts per fit
	// (default 2).
	Restarts int

	// ReoptimizeEvery refits hyperparameters every k-th iteration
	// (default 1 = every iteration); between refits the previous
	// hyperparameters are reused and only the posterior is updated.
	ReoptimizeEvery int

	// AllowRevisit keeps selected points in the pool so noisy points can
	// be re-measured (§III's requirement; default true). EMCM-style
	// strategies need this false.
	AllowRevisit bool

	// ConvergeWindow and ConvergeTol terminate the loop early when the
	// AMSD changes by less than ConvergeTol (relative) over the last
	// ConvergeWindow iterations (§V-B4's practical termination rule).
	// Zero disables early termination.
	ConvergeWindow int
	ConvergeTol    float64

	// Normalize standardizes the response inside each GP fit. The
	// paper's datasets are log-transformed to O(1) so this is off by
	// default; enable it for raw responses whose scale would otherwise
	// push the LML optimizer into the noise-only local optimum. The
	// noise floor then applies in normalized units.
	Normalize bool

	// CostBudget, when positive, stops the loop once the cumulative
	// experiment cost reaches it — the paper's motivating constraint
	// ("a fixed allocation on an HPC machine or a fixed maximum budget
	// in a cloud environment", §I). The experiment that crosses the
	// budget is still executed and recorded.
	CostBudget float64

	// ScoreWorkers sizes the candidate-scorer worker pool: 0 defers to
	// the process default (SetDefaultScoreWorkers, falling back to
	// runtime.GOMAXPROCS — scoring is parallel by default), 1 forces
	// serial scoring, n > 1 uses n workers. Each prediction depends only
	// on its own pool row and results are written by index, so serial
	// and parallel scoring produce identical selection traces for a
	// fixed seed.
	ScoreWorkers int

	// Measure, when non-nil, performs the experiment for a selected
	// dataset row instead of reading the dataset: attempt is the 0-based
	// per-row attempt count (retries and revisits keep counting up).
	// Errors and rejected observations are retried per RetryBudget. The
	// default reads ds.RespAt/ds.CostAt, routed through Faults when one
	// is configured.
	Measure func(row int, x []float64, attempt int) (y, cost float64, err error)

	// Faults, when non-nil (and Measure is nil), wires a fault injector
	// into the default measurement: node/job failures become measurement
	// errors, corruption maps the response through Corrupt, and
	// stragglers inflate the experiment cost. Nil runs fault-free.
	Faults *faults.Injector

	// RetryBudget is the number of additional attempts for a selected
	// candidate whose measurement fails or whose observation is rejected
	// (default 2; negative disables retries). When the budget is
	// exhausted the candidate is skipped: dropped from the pool without
	// entering the training set, and the iteration leaves no record.
	RetryBudget int

	// GuardSigma, when positive, rejects measured responses farther than
	// GuardSigma predictive standard deviations (latent SD and σn
	// combined) from the model mean at the selected candidate — the
	// gross-outlier guard in front of model conditioning. Non-finite
	// observations are always rejected. Zero disables the distance
	// guard.
	GuardSigma float64

	// CheckpointPath, when set, saves the loop state as JSON after every
	// CheckpointEvery-th iteration (atomically: temp file + rename), for
	// al.Resume. Requires a nil rng argument to Run — the loop then owns
	// a counting RNG seeded from Seed whose position the checkpoint
	// records.
	CheckpointPath string

	// CheckpointEvery is the checkpoint cadence in iterations
	// (default 1).
	CheckpointEvery int

	// Seed seeds the loop-owned RNG used when Run's rng argument is nil
	// (default 1, matching the historical default stream).
	Seed int64

	// OnRecord, when non-nil, is invoked from the loop goroutine right
	// after each IterationRecord is appended — the streaming interface
	// the serving layer uses to publish per-iteration progress while the
	// loop is still running. The callback must not block for long: the
	// loop waits for it.
	OnRecord func(IterationRecord)

	// OnModel, when non-nil, is invoked from the loop goroutine after
	// every successful model update (initial fit, refit, or incremental
	// conditioning) with the current model. A Regressor is immutable
	// once fitted and safe for concurrent Predict/PredictBatch calls, so
	// the callback may hand it to other goroutines (e.g. a prediction
	// cache) without copying.
	OnModel func(Regressor)

	// Model selects the regression tier backing the loop: "dense" (or
	// empty — the historical exact GP), "sparse" (inducing-point
	// approximation, O(n·m²) refits and O(n·m) incremental updates for
	// campaigns past ~10⁴ points), or "auto" (dense below
	// ModelOptions.Crossover, sparse above, held-out contest between).
	Model string

	// ModelOptions tunes the sparse and auto tiers; ignored for dense.
	ModelOptions ModelOptions
}

func (c *LoopConfig) withDefaults() (LoopConfig, error) {
	out := *c
	if out.Response == "" {
		return out, errors.New("al: LoopConfig.Response is required")
	}
	if out.Strategy == nil {
		return out, errors.New("al: LoopConfig.Strategy is required")
	}
	if out.NewKernel == nil {
		out.NewKernel = func(int) kernel.Kernel { return kernel.NewRBF(1, 1) }
	}
	if out.NoiseFloor <= 0 {
		out.NoiseFloor = gp.DefaultNoiseFloor
	}
	if out.Restarts <= 0 {
		out.Restarts = 2
	}
	if out.ReoptimizeEvery <= 0 {
		out.ReoptimizeEvery = 1
	}
	if out.RetryBudget == 0 {
		out.RetryBudget = 2
	} else if out.RetryBudget < 0 {
		out.RetryBudget = 0
	}
	if out.CheckpointEvery <= 0 {
		out.CheckpointEvery = 1
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	if !validModel(out.Model) {
		return out, fmt.Errorf("al: unknown model tier %q (want dense, sparse, or auto)", out.Model)
	}
	return out, nil
}

// IterationRecord captures the monitoring quantities of §V-B3 after one
// AL step.
type IterationRecord struct {
	Iter     int     // 1-based iteration number
	Row      int     // dataset row selected
	SDChosen float64 // σ_f(x) at the selected candidate
	AMSD     float64 // arithmetic mean SD across the pool
	RMSE     float64 // error on the Test set (Eq. 2)
	Coverage float64 // fraction of Test points inside the 95% predictive CI
	CumCost  float64 // cumulative experiment cost (core-seconds)
	LML      float64 // log marginal likelihood of the fitted GP
	Noise    float64 // fitted σn
	Train    int     // training-set size after this step
}

// Result is one AL realization. Final is the model tier the loop ran
// (dense unless LoopConfig.Model says otherwise); UnwrapGP recovers the
// concrete *gp.GP when the tier is dense.
type Result struct {
	Strategy  string
	Records   []IterationRecord
	Final     Regressor
	TrainRows []int // dataset rows in training order (Initial first)
	Converged bool  // true when the AMSD rule stopped the loop early
}

// loopState is the mutable state of a Run loop between iterations —
// exactly what a Checkpoint serializes.
type loopState struct {
	train    []int
	trainY   []float64 // measured responses aligned with train
	pool     []int
	records  []IterationRecord
	cumCost  float64
	amsdHist []float64

	// pending is the measurement taken at the end of the previous
	// iteration, not yet conditioned into the model; a skipped iteration
	// leaves it unset and the next model update is a no-op.
	pendingX   []float64
	pendingY   float64
	hasPending bool

	attempts map[int]int // dataset row → measurement attempts so far

	// Hyperparameter state of the last refit and the train-prefix length
	// it covered — the recipe Resume uses to rebuild the model.
	refitHyper []float64
	refitLogSN float64
	refitN     int

	startIter int
	model     Regressor
	converged bool
}

// Run executes Active Learning on ds under the given partition. With a
// nil rng the loop owns a deterministic counting RNG seeded from
// cfg.Seed (required when CheckpointPath is set, so the RNG position can
// be checkpointed); the stream is identical to
// rand.New(rand.NewSource(seed)).
func Run(ds *dataset.Dataset, part dataset.Partition, cfg LoopConfig, rng *rand.Rand) (Result, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	if err := part.Validate(ds); err != nil {
		return Result{}, err
	}
	if len(part.Initial) == 0 || len(part.Active) == 0 {
		return Result{}, errors.New("al: partition needs nonempty Initial and Active sets")
	}
	var cs *countingSource
	if rng == nil {
		rng, cs = newCountingRand(c.Seed, 0)
	} else if c.CheckpointPath != "" {
		return Result{}, errors.New("al: checkpointing requires a loop-owned RNG: pass a nil rng and set LoopConfig.Seed")
	}

	st := &loopState{
		train:     append([]int(nil), part.Initial...),
		trainY:    ds.RespVec(c.Response, part.Initial),
		pool:      append([]int(nil), part.Active...),
		attempts:  map[int]int{},
		startIter: 1,
	}
	return runLoop(ds, part, c, rng, cs, st)
}

// measureFunc resolves the experiment executor: the caller's Measure,
// or the dataset lookup optionally routed through the fault injector.
// With a nil injector the default is exactly the historical behavior
// (y = ds.RespAt, cost = ds.CostAt), keeping fault-free traces
// unchanged.
func measureFunc(ds *dataset.Dataset, c LoopConfig) func(row int, x []float64, attempt int) (float64, float64, error) {
	if c.Measure != nil {
		return c.Measure
	}
	inj := c.Faults
	resp := c.Response
	return func(row int, x []float64, attempt int) (float64, float64, error) {
		if inj.NodeFails(row, attempt) {
			return 0, 0, fmt.Errorf("al: node failure during experiment at row %d (attempt %d)", row, attempt)
		}
		if inj.JobFails(row, attempt) {
			return 0, 0, fmt.Errorf("al: experiment failed at row %d (attempt %d)", row, attempt)
		}
		y, _ := inj.Corrupt(row, attempt, ds.RespAt(resp, row))
		cost := ds.CostAt(row) * inj.Slowdown(row, attempt)
		return y, cost, nil
	}
}

// guardRejects applies the observation guard: non-finite responses are
// always rejected; with guard > 0, responses farther than guard
// predictive SDs (latent and noise combined) from the model mean at the
// candidate are too.
func guardRejects(guard float64, pred gp.Prediction, obsNoise, y float64) bool {
	if math.IsNaN(y) || math.IsInf(y, 0) {
		return true
	}
	if guard <= 0 {
		return false
	}
	sd := math.Sqrt(pred.SD*pred.SD + obsNoise*obsNoise)
	return math.Abs(y-pred.Mean) > guard*sd
}

// runLoop is the iteration engine shared by Run and ResumeFrom.
func runLoop(ds *dataset.Dataset, part dataset.Partition, c LoopConfig, rng *rand.Rand, cs *countingSource, st *loopState) (Result, error) {
	testX := ds.Matrix(part.Test)
	testY := ds.RespVec(c.Response, part.Test)
	measure := measureFunc(ds, c)

	maxIter := c.Iterations
	if maxIter <= 0 {
		maxIter = len(part.Active)
	}

	dims := len(ds.VarNames())
	res := Result{Strategy: c.Strategy.Name()}
	model := st.model
	fitter := newModelFitter(c)
	ctx := context.Background()

	// robustRefit fits the full training set through the configured
	// tier's degradation chain, warm-starting from the current model,
	// and records the refit recipe for checkpointing. A degraded dense
	// fit that rejected trailing points pops them from the training set
	// (returning them to the pool for non-revisiting runs).
	robustRefit := func(fitCtx context.Context, iter int) error {
		refits.Inc()
		floor := c.NoiseFloor
		if c.DynamicFloorC > 0 {
			floor = gp.DynamicNoiseFloor(c.DynamicFloorC, len(st.train))
		}
		gcfg := gp.Config{
			Kernel:     c.NewKernel(dims),
			NoiseInit:  math.Max(0.1, floor),
			NoiseFloor: floor,
			Optimize:   true,
			Restarts:   c.Restarts,
			Normalize:  c.Normalize,
		}
		if td, ok := model.(TrainDataModel); ok {
			// Warm-start from the previous hyperparameters.
			gcfg.Kernel.SetHyper(td.Kernel().Hyper())
			gcfg.NoiseInit = math.Max(regNoise(model), floor)
		}
		m, deg, err := fitter.refit(fitCtx, gcfg, ds.Matrix(st.train), st.trainY, model, rng)
		if err != nil {
			return err
		}
		if deg.Rejected > 0 {
			// The degraded fit dropped the newest observations: drop the
			// same rows from the loop's training set so model and state
			// stay aligned.
			n := len(st.train)
			for k := n - deg.Rejected; k < n; k++ {
				alRejected.Inc()
				if !c.AllowRevisit {
					st.pool = append(st.pool, st.train[k])
				}
			}
			obs.Emit("al.train.rejected", map[string]any{
				"iter": iter, "rows": append([]int(nil), st.train[n-deg.Rejected:]...),
				"level": deg.Level.String(),
			})
			st.train = st.train[:n-deg.Rejected]
			st.trainY = st.trainY[:n-deg.Rejected]
		}
		model = m
		hyper, logSN, n, rerr := modelRecipe(m)
		if rerr != nil {
			return rerr
		}
		st.refitHyper = append(st.refitHyper[:0], hyper...)
		st.refitLogSN = logSN
		st.refitN = n
		return nil
	}

	saveCheckpoint := func(nextIter int) error {
		if c.CheckpointPath == "" {
			return nil
		}
		ck := &Checkpoint{
			Version: CheckpointVersion, Strategy: c.Strategy.Name(), Response: c.Response,
			Model: c.Model,
			Seed:  c.Seed, Draws: cs.draws, NextIter: nextIter,
			Train: st.train, TrainY: st.trainY, Pool: st.pool,
			CumCost: st.cumCost, AMSDHist: st.amsdHist,
			RefitHyper: st.refitHyper, RefitLogSN: st.refitLogSN, RefitN: st.refitN,
			HasPending: st.hasPending, PendingX: st.pendingX, PendingY: st.pendingY,
			Attempts: st.attempts,
		}
		for _, r := range st.records {
			ck.Records = append(ck.Records, ToJSONRecord(r))
		}
		return ck.Save(c.CheckpointPath)
	}

	for iter := st.startIter; iter <= maxIter; iter++ {
		if len(st.pool) == 0 {
			break
		}
		iterCtx, iterSpan := obs.Start(ctx, "al.iteration")
		iterSpan.SetAttr("iter", iter)
		reopt := model == nil || (iter-1)%c.ReoptimizeEvery == 0
		updateCtx, updateSpan := obs.Start(iterCtx, "al.model.update")
		var err error
		if reopt {
			err = robustRefit(updateCtx, iter)
		} else if st.hasPending {
			// Between refits, condition on the new observation with the
			// O(n²) bordered-Cholesky update instead of refitting.
			conditionUpdates.Inc()
			m, uerr := model.UpdateWithPoint(st.pendingX, st.pendingY)
			if uerr == nil {
				model = m
			} else {
				// Degenerate update: fall back down the refit chain.
				err = robustRefit(updateCtx, iter)
			}
		}
		// No pending point (previous iteration was skipped): the model
		// already covers the training set; nothing to update.
		updated := reopt || st.hasPending
		st.hasPending = false
		st.pendingX = nil
		updateSpan.End()
		if err != nil {
			return Result{}, fmt.Errorf("al: iteration %d: %w", iter, err)
		}
		if updated && c.OnModel != nil {
			c.OnModel(model)
		}

		// Score the pool.
		_, scoreSpan := obs.Start(iterCtx, "al.score")
		poolX := ds.Matrix(st.pool)
		preds := scorePool(model, poolX, resolveScoreWorkers(c.ScoreWorkers))
		cands := make([]Candidate, len(st.pool))
		var amsd float64
		for i, row := range st.pool {
			cands[i] = Candidate{Row: row, X: poolX.RawRow(i), Pred: preds[i], Cost: ds.CostAt(row)}
			amsd += preds[i].SD
		}
		amsd /= float64(len(st.pool))
		scoreSpan.End()
		candidatesEvaluated.Add(int64(len(st.pool)))
		poolSize.Set(float64(len(st.pool)))

		_, selectSpan := obs.Start(iterCtx, "al.select")
		sel := selectCandidate(c.Strategy, model, cands, rng)
		selectSpan.End()
		if sel < 0 || sel >= len(cands) {
			return Result{}, fmt.Errorf("al: strategy %s returned invalid index %d", c.Strategy.Name(), sel)
		}
		chosen := cands[sel]

		// Measure, with retries on failure and the observation guard in
		// front of model conditioning.
		var y, cost float64
		measured := false
		for try := 0; try <= c.RetryBudget; try++ {
			attempt := st.attempts[chosen.Row]
			st.attempts[chosen.Row] = attempt + 1
			my, mcost, merr := measure(chosen.Row, chosen.X, attempt)
			if merr != nil {
				obs.Emit("al.experiment.failed", map[string]any{
					"iter": iter, "row": chosen.Row, "attempt": attempt, "err": merr.Error(),
				})
				if try < c.RetryBudget {
					alRetries.Inc()
				}
				continue
			}
			if guardRejects(c.GuardSigma, chosen.Pred, regObsNoise(model), my) {
				alRejected.Inc()
				obs.Emit("al.observation.rejected", map[string]any{
					"iter": iter, "row": chosen.Row, "attempt": attempt, "y": my,
					"mean": chosen.Pred.Mean, "sd": chosen.Pred.SD,
				})
				if try < c.RetryBudget {
					alRetries.Inc()
				}
				continue
			}
			y, cost, measured = my, mcost, true
			break
		}
		if !measured {
			// Retry budget exhausted: skip the candidate entirely — out
			// of the pool, never into the training set. The model is
			// unchanged, so without removal a deterministic strategy
			// would re-select it forever.
			alSkipped.Inc()
			obs.Emit("al.candidate.skipped", map[string]any{"iter": iter, "row": chosen.Row})
			st.pool = append(st.pool[:sel], st.pool[sel+1:]...)
			iterSpan.End()
			if iter%c.CheckpointEvery == 0 {
				if err := saveCheckpoint(iter + 1); err != nil {
					return Result{}, err
				}
			}
			continue
		}

		experiments.Inc()
		st.train = append(st.train, chosen.Row)
		st.trainY = append(st.trainY, y)
		st.cumCost += cost
		st.pendingX = append([]float64(nil), chosen.X...)
		st.pendingY = y
		st.hasPending = true
		if !c.AllowRevisit {
			st.pool = append(st.pool[:sel], st.pool[sel+1:]...)
		}

		// Test-set error and CI coverage with the current model.
		rmse := math.NaN()
		coverage := math.NaN()
		if len(part.Test) > 0 {
			preds := model.PredictBatch(testX)
			rmse = stats.RMSE(gp.Means(preds), testY)
			coverage = coverage95(regObsNoise(model), preds, testY)
		}

		st.records = append(st.records, IterationRecord{
			Iter:     iter,
			Row:      chosen.Row,
			SDChosen: chosen.Pred.SD,
			AMSD:     amsd,
			RMSE:     rmse,
			Coverage: coverage,
			CumCost:  st.cumCost,
			LML:      regLML(model),
			Noise:    regNoise(model),
			Train:    len(st.train),
		})
		if c.OnRecord != nil {
			c.OnRecord(st.records[len(st.records)-1])
		}
		iterSpan.End()

		if iter%c.CheckpointEvery == 0 {
			if err := saveCheckpoint(iter + 1); err != nil {
				return Result{}, err
			}
		}

		// Budget exhaustion (§I's fixed-allocation constraint).
		if c.CostBudget > 0 && st.cumCost >= c.CostBudget {
			break
		}

		// AMSD convergence rule (§V-B4).
		st.amsdHist = append(st.amsdHist, amsd)
		if c.ConvergeWindow > 0 && len(st.amsdHist) > c.ConvergeWindow {
			w := st.amsdHist[len(st.amsdHist)-1-c.ConvergeWindow:]
			lo, hi := stats.MinMax(w)
			if hi-lo <= c.ConvergeTol*math.Max(1e-12, math.Abs(hi)) {
				st.converged = true
				break
			}
		}
	}

	res.Records = st.records
	res.Converged = st.converged
	res.Final = model
	res.TrainRows = st.train
	return res, nil
}

// coverage95 returns the fraction of test targets inside the 95%
// predictive interval μ ± 2·√(σ_f² + σn²) — the calibration check behind
// the paper's "prediction confidence" goal. preds are latent-function
// predictions; the observation noise sn (response units) is added here.
func coverage95(sn float64, preds []gp.Prediction, testY []float64) float64 {
	if len(preds) == 0 {
		return math.NaN()
	}
	inside := 0
	for i, p := range preds {
		sd := math.Sqrt(p.SD*p.SD + sn*sn)
		if math.Abs(testY[i]-p.Mean) <= 2*sd {
			inside++
		}
	}
	return float64(inside) / float64(len(preds))
}
