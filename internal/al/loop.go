package al

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/gp"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/stats"
)

// AL-loop metrics (see OBSERVABILITY.md). Each iteration of Run and
// RunOnline opens an "al.iteration" span with "al.model.update",
// "al.score" and "al.select" children; the counters tally work volumes
// the spans do not capture.
var (
	candidatesEvaluated = obs.C("al.candidates.evaluated")
	refits              = obs.C("al.refit.count")
	conditionUpdates    = obs.C("al.condition.count")
	experiments         = obs.C("al.experiments.count")
	poolSize            = obs.G("al.pool.size")
)

// LoopConfig drives one Active Learning realization over a partitioned
// dataset (§IV: Initial seeds the GP, Active is the candidate pool, Test
// measures RMSE).
type LoopConfig struct {
	// Response names the dataset response column to model; required.
	Response string

	// Strategy picks the next experiment; required.
	Strategy Strategy

	// NewKernel constructs a fresh kernel for a given input
	// dimensionality; defaults to an isotropic RBF(1, 1).
	NewKernel func(dims int) kernel.Kernel

	// Iterations bounds the number of AL steps; 0 means run until the
	// convergence rule (or pool exhaustion for non-revisiting
	// strategies).
	Iterations int

	// NoiseFloor is the σn lower bound passed to the GP — the paper's
	// overfitting control (Fig. 7). Default gp.DefaultNoiseFloor.
	NoiseFloor float64

	// DynamicFloorC, when positive, activates the paper's proposed
	// adaptive floor σn ≥ c/√N (§V-B4) with this c, overriding
	// NoiseFloor as training data accumulates.
	DynamicFloorC float64

	// Restarts is the number of random LML-optimizer restarts per fit
	// (default 2).
	Restarts int

	// ReoptimizeEvery refits hyperparameters every k-th iteration
	// (default 1 = every iteration); between refits the previous
	// hyperparameters are reused and only the posterior is updated.
	ReoptimizeEvery int

	// AllowRevisit keeps selected points in the pool so noisy points can
	// be re-measured (§III's requirement; default true). EMCM-style
	// strategies need this false.
	AllowRevisit bool

	// ConvergeWindow and ConvergeTol terminate the loop early when the
	// AMSD changes by less than ConvergeTol (relative) over the last
	// ConvergeWindow iterations (§V-B4's practical termination rule).
	// Zero disables early termination.
	ConvergeWindow int
	ConvergeTol    float64

	// Normalize standardizes the response inside each GP fit. The
	// paper's datasets are log-transformed to O(1) so this is off by
	// default; enable it for raw responses whose scale would otherwise
	// push the LML optimizer into the noise-only local optimum. The
	// noise floor then applies in normalized units.
	Normalize bool

	// CostBudget, when positive, stops the loop once the cumulative
	// experiment cost reaches it — the paper's motivating constraint
	// ("a fixed allocation on an HPC machine or a fixed maximum budget
	// in a cloud environment", §I). The experiment that crosses the
	// budget is still executed and recorded.
	CostBudget float64

	// ScoreWorkers sizes the candidate-scorer worker pool: 0 defers to
	// the process default (SetDefaultScoreWorkers, falling back to
	// runtime.GOMAXPROCS — scoring is parallel by default), 1 forces
	// serial scoring, n > 1 uses n workers. Each prediction depends only
	// on its own pool row and results are written by index, so serial
	// and parallel scoring produce identical selection traces for a
	// fixed seed.
	ScoreWorkers int
}

func (c *LoopConfig) withDefaults() (LoopConfig, error) {
	out := *c
	if out.Response == "" {
		return out, errors.New("al: LoopConfig.Response is required")
	}
	if out.Strategy == nil {
		return out, errors.New("al: LoopConfig.Strategy is required")
	}
	if out.NewKernel == nil {
		out.NewKernel = func(int) kernel.Kernel { return kernel.NewRBF(1, 1) }
	}
	if out.NoiseFloor <= 0 {
		out.NoiseFloor = gp.DefaultNoiseFloor
	}
	if out.Restarts <= 0 {
		out.Restarts = 2
	}
	if out.ReoptimizeEvery <= 0 {
		out.ReoptimizeEvery = 1
	}
	return out, nil
}

// IterationRecord captures the monitoring quantities of §V-B3 after one
// AL step.
type IterationRecord struct {
	Iter     int     // 1-based iteration number
	Row      int     // dataset row selected
	SDChosen float64 // σ_f(x) at the selected candidate
	AMSD     float64 // arithmetic mean SD across the pool
	RMSE     float64 // error on the Test set (Eq. 2)
	Coverage float64 // fraction of Test points inside the 95% predictive CI
	CumCost  float64 // cumulative experiment cost (core-seconds)
	LML      float64 // log marginal likelihood of the fitted GP
	Noise    float64 // fitted σn
	Train    int     // training-set size after this step
}

// Result is one AL realization.
type Result struct {
	Strategy  string
	Records   []IterationRecord
	Final     *gp.GP
	TrainRows []int // dataset rows in training order (Initial first)
	Converged bool  // true when the AMSD rule stopped the loop early
}

// Run executes Active Learning on ds under the given partition.
func Run(ds *dataset.Dataset, part dataset.Partition, cfg LoopConfig, rng *rand.Rand) (Result, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	if err := part.Validate(ds); err != nil {
		return Result{}, err
	}
	if len(part.Initial) == 0 || len(part.Active) == 0 {
		return Result{}, errors.New("al: partition needs nonempty Initial and Active sets")
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}

	train := append([]int(nil), part.Initial...)
	pool := append([]int(nil), part.Active...)
	testX := ds.Matrix(part.Test)
	testY := ds.RespVec(c.Response, part.Test)

	maxIter := c.Iterations
	if maxIter <= 0 {
		maxIter = len(part.Active)
	}

	dims := len(ds.VarNames())
	res := Result{Strategy: c.Strategy.Name()}
	var model *gp.GP
	var cumCost float64
	var amsdHist []float64
	var lastX []float64
	var lastY float64
	ctx := context.Background()

	for iter := 1; iter <= maxIter; iter++ {
		if len(pool) == 0 {
			break
		}
		iterCtx, iterSpan := obs.Start(ctx, "al.iteration")
		iterSpan.SetAttr("iter", iter)
		floor := c.NoiseFloor
		if c.DynamicFloorC > 0 {
			floor = gp.DynamicNoiseFloor(c.DynamicFloorC, len(train))
		}
		reopt := model == nil || (iter-1)%c.ReoptimizeEvery == 0
		updateCtx, updateSpan := obs.Start(iterCtx, "al.model.update")
		if reopt {
			refits.Inc()
			gcfg := gp.Config{
				Kernel:     c.NewKernel(dims),
				NoiseInit:  math.Max(0.1, floor),
				NoiseFloor: floor,
				Optimize:   true,
				Restarts:   c.Restarts,
				Normalize:  c.Normalize,
			}
			if model != nil {
				// Warm-start from the previous hyperparameters.
				gcfg.Kernel.SetHyper(model.Kernel().Hyper())
				gcfg.NoiseInit = math.Max(model.Noise(), floor)
			}
			model, err = gp.FitCtx(updateCtx, gcfg, ds.Matrix(train), ds.RespVec(c.Response, train), rng)
		} else {
			// Between refits, condition on the new observation with the
			// O(n²) bordered-Cholesky update instead of refitting.
			conditionUpdates.Inc()
			model, err = model.UpdateWithPoint(lastX, lastY)
		}
		updateSpan.End()
		if err != nil {
			return Result{}, fmt.Errorf("al: iteration %d: %w", iter, err)
		}

		// Score the pool.
		_, scoreSpan := obs.Start(iterCtx, "al.score")
		poolX := ds.Matrix(pool)
		preds := scorePool(model, poolX, resolveScoreWorkers(c.ScoreWorkers))
		cands := make([]Candidate, len(pool))
		var amsd float64
		for i, row := range pool {
			cands[i] = Candidate{Row: row, X: poolX.RawRow(i), Pred: preds[i], Cost: ds.CostAt(row)}
			amsd += preds[i].SD
		}
		amsd /= float64(len(pool))
		scoreSpan.End()
		candidatesEvaluated.Add(int64(len(pool)))
		poolSize.Set(float64(len(pool)))

		_, selectSpan := obs.Start(iterCtx, "al.select")
		sel := selectCandidate(c.Strategy, model, cands, rng)
		selectSpan.End()
		if sel < 0 || sel >= len(cands) {
			return Result{}, fmt.Errorf("al: strategy %s returned invalid index %d", c.Strategy.Name(), sel)
		}
		chosen := cands[sel]
		experiments.Inc()
		train = append(train, chosen.Row)
		cumCost += ds.CostAt(chosen.Row)
		lastX = append([]float64(nil), chosen.X...)
		lastY = ds.RespAt(c.Response, chosen.Row)
		if !c.AllowRevisit {
			pool = append(pool[:sel], pool[sel+1:]...)
		}

		// Test-set error and CI coverage with the current model.
		rmse := math.NaN()
		coverage := math.NaN()
		if len(part.Test) > 0 {
			preds := model.PredictBatch(testX)
			rmse = stats.RMSE(gp.Means(preds), testY)
			coverage = coverage95(model, preds, testY)
		}

		res.Records = append(res.Records, IterationRecord{
			Iter:     iter,
			Row:      chosen.Row,
			SDChosen: chosen.Pred.SD,
			AMSD:     amsd,
			RMSE:     rmse,
			Coverage: coverage,
			CumCost:  cumCost,
			LML:      model.LML(),
			Noise:    model.Noise(),
			Train:    len(train),
		})
		iterSpan.End()

		// Budget exhaustion (§I's fixed-allocation constraint).
		if c.CostBudget > 0 && cumCost >= c.CostBudget {
			break
		}

		// AMSD convergence rule (§V-B4).
		amsdHist = append(amsdHist, amsd)
		if c.ConvergeWindow > 0 && len(amsdHist) > c.ConvergeWindow {
			w := amsdHist[len(amsdHist)-1-c.ConvergeWindow:]
			lo, hi := stats.MinMax(w)
			if hi-lo <= c.ConvergeTol*math.Max(1e-12, math.Abs(hi)) {
				res.Converged = true
				break
			}
		}
	}

	res.Final = model
	res.TrainRows = train
	return res, nil
}

// coverage95 returns the fraction of test targets inside the 95%
// predictive interval μ ± 2·√(σ_f² + σn²) — the calibration check behind
// the paper's "prediction confidence" goal. preds are latent-function
// predictions; the observation noise is added here.
func coverage95(model *gp.GP, preds []gp.Prediction, testY []float64) float64 {
	if len(preds) == 0 {
		return math.NaN()
	}
	sn := model.ObservationNoise()
	inside := 0
	for i, p := range preds {
		sd := math.Sqrt(p.SD*p.SD + sn*sn)
		if math.Abs(testY[i]-p.Mean) <= 2*sd {
			inside++
		}
	}
	return float64(inside) / float64(len(preds))
}
