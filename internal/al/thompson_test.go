package al

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gp"
)

func TestThompsonMarginalFallback(t *testing.T) {
	cands := mkCands(
		gp.Prediction{Mean: 0, SD: 0.01},
		gp.Prediction{Mean: 0, SD: 2.0},
		gp.Prediction{Mean: 0, SD: 0.05},
	)
	rng := rand.New(rand.NewSource(1))
	// The high-SD candidate must dominate selections.
	counts := map[int]int{}
	for i := 0; i < 200; i++ {
		counts[(ThompsonVariance{}).Select(cands, rng)]++
	}
	if counts[1] < 150 {
		t.Fatalf("high-SD candidate selected only %d/200 times", counts[1])
	}
	if (ThompsonVariance{}).Select(nil, rng) != -1 {
		t.Fatal("empty candidates")
	}
	// nil rng degrades to deterministic variance reduction.
	if got := (ThompsonVariance{}).Select(cands, nil); got != 1 {
		t.Fatalf("nil-rng fallback picked %d", got)
	}
	if (ThompsonVariance{}).Name() != "thompson-variance" {
		t.Fatal("name")
	}
}

func TestThompsonInLoopConverges(t *testing.T) {
	d := synthDS(t, 50, 0.05, 120)
	p := synthPartition(t, d, 121)
	res, err := Run(d, p, quickLoop(ThompsonVariance{}, 20), rand.New(rand.NewSource(122)))
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Records[0], res.Records[len(res.Records)-1]
	if !(last.RMSE < first.RMSE) {
		t.Fatalf("Thompson loop did not improve: %g -> %g", first.RMSE, last.RMSE)
	}
	if last.RMSE > 0.25 {
		t.Fatalf("final RMSE %g too high", last.RMSE)
	}
	if res.Strategy != "thompson-variance" {
		t.Fatalf("strategy %q", res.Strategy)
	}
}

// Thompson draws must diversify: over repeated selections from the same
// posterior, it should not always pick the same argmax-σ point the way
// greedy VR does.
func TestThompsonDiversifies(t *testing.T) {
	d := synthDS(t, 40, 0.05, 123)
	p := synthPartition(t, d, 124)
	run := func(s Strategy) int {
		cfg := quickLoop(s, 12)
		cfg.ReoptimizeEvery = 100 // freeze hyperparameters: pure selection study
		res, err := Run(d, p, cfg, rand.New(rand.NewSource(125)))
		if err != nil {
			t.Fatal(err)
		}
		distinct := map[int]bool{}
		for _, rec := range res.Records {
			distinct[rec.Row] = true
		}
		last := res.Records[len(res.Records)-1]
		if !math.IsNaN(last.Coverage) && (last.Coverage < 0 || last.Coverage > 1) {
			t.Fatalf("coverage %g out of [0,1]", last.Coverage)
		}
		return len(distinct)
	}
	thompson := run(ThompsonVariance{})
	greedy := run(VarianceReduction{})
	if thompson < greedy {
		t.Fatalf("Thompson (%d distinct) less diverse than greedy VR (%d)", thompson, greedy)
	}
	if thompson < 3 {
		t.Fatalf("Thompson selected only %d distinct points in 12 iterations", thompson)
	}
}
