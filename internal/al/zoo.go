package al

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/gp"
	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/obs"
)

// Strategy-zoo metrics (see OBSERVABILITY.md): committee model fits per
// QBC selection and the members a degenerate bootstrap dropped.
var (
	qbcCommitteeFits    = obs.C("al.strategy.qbc.fits")
	qbcCommitteeDropped = obs.C("al.strategy.qbc.dropped")
)

// QBC is query-by-committee selection: a committee of K Gaussian
// processes is fit on the live training set at perturbed
// hyperparameters (optionally on bootstrap resamples), and the next
// experiment maximizes variance-gated committee disagreement,
//
//	score(x) = ln σ(x) + ln spread(x) − γ·μ(x),
//
// where spread is the SD of the members' predicted means and σ/μ come
// from the live model. Where VarianceReduction trusts one model's
// posterior σ, QBC adds the epistemic spread of an ensemble — the
// multi-model/committee selection that "Statistical Hardware Design
// With Multi-model Active Learning" motivates for exactly this
// performance-modeling setting, and a standard zoo member in OpenAL-style
// strategy comparisons.
//
// The committee construction matters under revisiting (the serving
// layer's AllowRevisit=true loops): perturbed-hyperparameter members
// share every observation, so they agree at measured points and
// disagree where different length-scales extrapolate differently —
// spread collapses where data exists, exactly like σ. Bootstrap members
// do NOT have that property (a member whose resample missed a point
// deviates wildly there), which makes raw bootstrap disagreement loop
// on one already-measured point and flood the model with duplicates;
// that is why perturbation is the default, bootstrap the opt-in for
// revisit-free pool studies, and why the σ gate is multiplicative.
//
// γ > 0 is the cost-aware form mirroring CostExponent (Eq. 14 with
// disagreement-weighted variance in place of plain σ; μ is the predicted
// log cost).
//
// Determinism/RNG contract: one Select draws exactly K·NumHyper normals
// plus (when Bootstrap is set) K·n bootstrap indices from the loop RNG,
// regardless of how many committee fits succeed, so the RNG stream
// position is a pure function of the iteration history and
// checkpoint/resume replays the committee bit for bit. Committee
// construction happens on the (serial) selection path, never inside
// scorer workers.
type QBC struct {
	// K is the committee size (default 4).
	K int
	// Gamma weighs predicted cost against disagreement (0 = cost-blind).
	Gamma float64
	// Perturb is the SD of the N(0, Perturb²) log-hyperparameter
	// perturbation each member draws (default 0.3).
	Perturb float64
	// Bootstrap additionally fits each member on a bootstrap resample
	// of the training set instead of the full set. Only sensible when
	// the loop does not revisit measured points (see above).
	Bootstrap bool
	// NewKernel builds each member's kernel; it must produce the same
	// kernel family as the loop that fitted the live model (the member
	// fit perturbs the live model's hyperparameter vector). Defaults to
	// the loop default, an isotropic RBF.
	NewKernel func(dims int) kernel.Kernel
}

func (s QBC) committee() int {
	if s.K > 0 {
		return s.K
	}
	return 4
}

func (s QBC) newKernel(dims int) kernel.Kernel {
	if s.NewKernel != nil {
		return s.NewKernel(dims)
	}
	return kernel.NewRBF(1, 1)
}

func (s QBC) perturb() float64 {
	if s.Perturb > 0 {
		return s.Perturb
	}
	return 0.3
}

// Name implements Strategy.
func (s QBC) Name() string {
	if s.Gamma != 0 {
		return fmt.Sprintf("qbc-cost(%d,%.2f)", s.committee(), s.Gamma)
	}
	return fmt.Sprintf("qbc(%d)", s.committee())
}

// Select implements Strategy as a marginal fallback when no model is
// available: pure variance reduction (no RNG draws, so the fallback
// never shifts the stream).
func (s QBC) Select(cands []Candidate, rng *rand.Rand) int {
	return VarianceReduction{}.Select(cands, rng)
}

// SelectWithModel implements ModelAwareStrategy: build the bootstrap
// committee from the live model's training data, score the pool by
// committee disagreement, and pick the argmax. Any model tier exposing
// its training data works — committee members are always small dense
// fits at perturbed hyperparameters, whatever tier the live model is.
func (s QBC) SelectWithModel(model Regressor, cands []Candidate, rng *rand.Rand) int {
	if len(cands) == 0 {
		return -1
	}
	if model == nil || rng == nil {
		return s.Select(cands, rng)
	}
	td, ok := model.(TrainDataModel)
	nm, ok2 := model.(NoiseModel)
	if !ok || !ok2 {
		return s.Select(cands, rng)
	}
	n := model.NumTrain()
	trainX := td.TrainX()
	trainY := td.TrainY()
	dims := trainX.Cols()
	hyper := td.Kernel().Hyper()
	logSN := nm.LogNoise()

	members := make([]*gp.GP, 0, s.committee())
	for k := 0; k < s.committee(); k++ {
		// Draw the perturbation (and resample) FIRST and
		// unconditionally: the RNG consumption per member is fixed even
		// when the member fit degenerates and is dropped.
		h := append([]float64(nil), hyper...)
		for j := range h {
			h[j] += s.perturb() * rng.NormFloat64()
		}
		bx, by := trainX, trainY
		if s.Bootstrap {
			rx := mat.New(n, dims)
			ry := make([]float64, n)
			for i := 0; i < n; i++ {
				j := rng.Intn(n)
				copy(rx.RawRow(i), trainX.RawRow(j))
				ry[i] = trainY[j]
			}
			bx, by = rx, ry
		}
		m, err := gp.FitAtHypers(gp.Config{Kernel: s.newKernel(dims)}, bx, by, h, logSN)
		if err != nil {
			qbcCommitteeDropped.Inc()
			continue
		}
		qbcCommitteeFits.Inc()
		members = append(members, m)
	}
	if len(members) < 2 {
		// A committee of one has no disagreement; fall back to the
		// single-model criterion.
		return s.Select(cands, rng)
	}

	// Member predictions over the pool. Each member's batch is
	// independent and written to its own slot, so the result is
	// identical regardless of evaluation order.
	xs := mat.New(len(cands), dims)
	for i, c := range cands {
		copy(xs.RawRow(i), c.X)
	}
	means := make([][]float64, len(members))
	for k, m := range members {
		means[k] = gp.Means(m.PredictBatch(xs))
	}

	best, bestV := -1, math.Inf(-1)
	for i, c := range cands {
		var mean, m2 float64
		for _, row := range means {
			mean += row[i]
		}
		mean /= float64(len(members))
		for _, row := range means {
			d := row[i] - mean
			m2 += d * d
		}
		spread := math.Sqrt(m2 / float64(len(members)))
		score := math.Log(c.Pred.SD) + math.Log(spread) - s.Gamma*c.Pred.Mean
		if score > bestV {
			best, bestV = i, score
		}
	}
	if best < 0 {
		// Every score was −Inf: the committee agreed perfectly everywhere
		// (tiny training sets make all resamples identical). Plain
		// variance reduction still has a gradient to follow.
		return s.Select(cands, rng)
	}
	return best
}

// Diversity is variance selection with a k-center diversity bonus: the
// score of a candidate is its predictive SD plus Lambda times its
// distance to the nearest training point,
//
//	score(x) = σ(x) + λ·min_j ‖x − x_j‖.
//
// Pure argmax-σ repeatedly measures the same region when revisiting is
// allowed; the distance term pushes selection toward unexplored parts of
// the design space — the sequential form of batch-mode k-center
// selection (see BatchSelectKCenter for the true batch rule). λ = 0
// degenerates to VarianceReduction. Deterministic: no RNG draws.
type Diversity struct {
	// Lambda weighs the min-distance bonus against σ (default 1).
	Lambda float64
}

func (s Diversity) lambda() float64 {
	if s.Lambda > 0 {
		return s.Lambda
	}
	return 1
}

// Name implements Strategy.
func (s Diversity) Name() string { return fmt.Sprintf("diversity(%.2f)", s.lambda()) }

// Select implements Strategy as a marginal fallback (no model → no
// training set to diversify against): pure variance reduction.
func (s Diversity) Select(cands []Candidate, rng *rand.Rand) int {
	return VarianceReduction{}.Select(cands, rng)
}

// SelectWithModel implements ModelAwareStrategy.
func (s Diversity) SelectWithModel(model Regressor, cands []Candidate, rng *rand.Rand) int {
	if len(cands) == 0 {
		return -1
	}
	td, ok := model.(TrainDataModel)
	if !ok {
		return s.Select(cands, rng)
	}
	trainX := td.TrainX()
	nTrain := trainX.Rows()
	lam := s.lambda()
	scores := make([]float64, len(cands))
	parChunks(len(cands), resolveScoreWorkers(0), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d2min := math.Inf(1)
			for j := 0; j < nTrain; j++ {
				if d2 := sqDist(cands[i].X, trainX.RawRow(j)); d2 < d2min {
					d2min = d2
				}
			}
			scores[i] = cands[i].Pred.SD + lam*math.Sqrt(d2min)
		}
	})
	best, bestV := -1, math.Inf(-1)
	for i, v := range scores {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// EMCMGradient is the GP analogue of Cai et al.'s Expected Model Change
// Maximization (paper Eq. 1): for a model linear in x, the gradient-norm
// model change of a fantasy observation at x is proportional to
// σ(x)·‖x‖, so the selection criterion is
//
//	score(x) = ln σ(x) + ln(1 + ‖x‖) − γ·μ(x).
//
// Unlike RunEMCM (the paper's OLS-ensemble baseline, kept for the §III
// comparison) this variant runs on the GP posterior inside the standard
// loop — revisiting works, and the Monte Carlo ensemble variance the
// paper criticizes is replaced by the closed-form σ. γ > 0 adds the
// repository's log-space cost-awareness (μ is the predicted log cost,
// exactly as in CostExponent). Deterministic: no RNG draws.
type EMCMGradient struct {
	// Gamma weighs predicted cost (0 = cost-blind).
	Gamma float64
}

// Name implements Strategy.
func (s EMCMGradient) Name() string {
	if s.Gamma != 0 {
		return fmt.Sprintf("emcm-grad-cost(%.2f)", s.Gamma)
	}
	return "emcm-grad"
}

// Select implements Strategy.
func (s EMCMGradient) Select(cands []Candidate, _ *rand.Rand) int {
	best, bestV := -1, math.Inf(-1)
	for i, c := range cands {
		score := math.Log(c.Pred.SD) + math.Log(1+mat.Norm2(mat.Vec(c.X))) - s.Gamma*c.Pred.Mean
		if score > bestV {
			best, bestV = i, score
		}
	}
	return best
}

// sqDist returns ‖x−y‖² (dimensions must already agree; candidates and
// training rows come from the same dataset matrix).
func sqDist(x, y []float64) float64 {
	var s float64
	for i, xv := range x {
		d := xv - y[i]
		s += d * d
	}
	return s
}

// BatchSelectKCenter picks k distinct pool candidates in one shot using
// greedy k-center selection with a variance objective: the first pick is
// the highest-σ candidate, each later pick maximizes
//
//	σ(x) + λ·min_{p ∈ picked} ‖x − x_p‖,
//
// spreading the batch across the design space instead of clustering it
// around one uncertainty peak. Compared to the kriging-believer
// BatchSelect it needs no fantasy model updates — O(k·m·d) instead of k
// posterior refits — which is the right trade at large pool sizes; the
// believer remains the higher-fidelity (and costlier) batch rule.
// Deterministic: ties break toward the lower candidate index and no RNG
// is consumed.
func BatchSelectKCenter(cands []Candidate, k int, lambda float64) ([]int, error) {
	if k <= 0 || k > len(cands) {
		return nil, fmt.Errorf("al: BatchSelectKCenter k=%d with %d candidates", k, len(cands))
	}
	if lambda <= 0 {
		lambda = 1
	}
	// mind[i] is the distance from candidate i to its nearest picked
	// point, updated incrementally after each pick.
	mind := make([]float64, len(cands))
	for i := range mind {
		mind[i] = math.Inf(1)
	}
	picked := make([]bool, len(cands))
	var picks []int
	for round := 0; round < k; round++ {
		best, bestV := -1, math.Inf(-1)
		for i, c := range cands {
			if picked[i] {
				continue
			}
			score := c.Pred.SD
			if round > 0 {
				score += lambda * math.Sqrt(mind[i])
			}
			if score > bestV {
				best, bestV = i, score
			}
		}
		if best < 0 {
			return nil, errors.New("al: BatchSelectKCenter ran out of candidates")
		}
		picked[best] = true
		picks = append(picks, cands[best].Row)
		for i, c := range cands {
			if picked[i] {
				continue
			}
			if d2 := sqDist(c.X, cands[best].X); d2 < mind[i] {
				mind[i] = d2
			}
		}
	}
	return picks, nil
}
