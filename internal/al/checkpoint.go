package al

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/dataset"
	"repro/internal/gp"
	"repro/internal/obs"
)

var checkpointsSaved = obs.C("al.checkpoints.saved")

// CheckpointVersion is the on-disk format version; Resume rejects
// checkpoints written by an incompatible loop.
const CheckpointVersion = 1

// Checkpoint is the complete, JSON-serializable state of a Run loop at
// an iteration boundary. Together with the dataset, partition and the
// LoopConfig that produced it, it deterministically reconstructs the
// loop: the GP is rebuilt bit-for-bit from the recorded hyperparameter
// state (gp.FitAtHypers over the refit prefix, then the same
// incremental-update chain), and the RNG is fast-forwarded to Draws, so
// a resumed run selects exactly the rows the uninterrupted run would
// have.
type Checkpoint struct {
	Version  int    `json:"version"`
	Strategy string `json:"strategy"`
	Response string `json:"response"`

	// Model is the regression tier the loop ran ("dense", "sparse",
	// "auto"); empty means dense — checkpoints from before the tier
	// system resume unchanged.
	Model string `json:"model,omitempty"`

	Seed  int64  `json:"seed"`
	Draws uint64 `json:"draws"`

	// NextIter is the 1-based iteration the resumed loop starts at.
	NextIter int `json:"next_iter"`

	Train  []int     `json:"train"`
	TrainY []float64 `json:"train_y"`
	Pool   []int     `json:"pool"`

	CumCost  float64   `json:"cum_cost"`
	AMSDHist []float64 `json:"amsd_hist"`

	// The model is stored as a recipe, not a matrix dump: hypers of the
	// last (possibly degraded) refit, the train-prefix length it was
	// fitted on, and the pending point not yet conditioned in.
	RefitHyper []float64 `json:"refit_hyper"`
	RefitLogSN float64   `json:"refit_log_sn"`
	RefitN     int       `json:"refit_n"`

	HasPending bool      `json:"has_pending"`
	PendingX   []float64 `json:"pending_x,omitempty"`
	PendingY   float64   `json:"pending_y"`

	// Attempts counts measurement attempts per dataset row, keying the
	// fault injector so a resumed retry is the same draw it would have
	// been uninterrupted.
	Attempts map[int]int `json:"attempts,omitempty"`

	Records []JSONRecord `json:"records"`
}

// JSONFloat is a float64 whose JSON encoding tolerates the non-finite
// values encoding/json rejects: NaN marshals as null, infinities as
// signed strings. Finite values use the standard shortest-round-trip
// encoding, so they survive a save/load cycle bit-exactly.
type JSONFloat float64

func (f JSONFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte("null"), nil
	case math.IsInf(v, 1):
		return []byte(`"+inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-inf"`), nil
	}
	return json.Marshal(v)
}

func (f *JSONFloat) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case "null":
		*f = JSONFloat(math.NaN())
		return nil
	case `"+inf"`:
		*f = JSONFloat(math.Inf(1))
		return nil
	case `"-inf"`:
		*f = JSONFloat(math.Inf(-1))
		return nil
	}
	v, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return err
	}
	*f = JSONFloat(v)
	return nil
}

// JSONRecord mirrors IterationRecord with NaN-safe floats (RMSE and
// Coverage are NaN when the partition has no Test set).
type JSONRecord struct {
	Iter     int       `json:"iter"`
	Row      int       `json:"row"`
	SDChosen JSONFloat `json:"sd_chosen"`
	AMSD     JSONFloat `json:"amsd"`
	RMSE     JSONFloat `json:"rmse"`
	Coverage JSONFloat `json:"coverage"`
	CumCost  JSONFloat `json:"cum_cost"`
	LML      JSONFloat `json:"lml"`
	Noise    JSONFloat `json:"noise"`
	Train    int       `json:"train"`
}

func ToJSONRecord(r IterationRecord) JSONRecord {
	return JSONRecord{
		Iter: r.Iter, Row: r.Row, SDChosen: JSONFloat(r.SDChosen),
		AMSD: JSONFloat(r.AMSD), RMSE: JSONFloat(r.RMSE), Coverage: JSONFloat(r.Coverage),
		CumCost: JSONFloat(r.CumCost), LML: JSONFloat(r.LML), Noise: JSONFloat(r.Noise),
		Train: r.Train,
	}
}

func FromJSONRecord(r JSONRecord) IterationRecord {
	return IterationRecord{
		Iter: r.Iter, Row: r.Row, SDChosen: float64(r.SDChosen),
		AMSD: float64(r.AMSD), RMSE: float64(r.RMSE), Coverage: float64(r.Coverage),
		CumCost: float64(r.CumCost), LML: float64(r.LML), Noise: float64(r.Noise),
		Train: r.Train,
	}
}

// AtomicWriteJSON marshals v and writes it to path atomically: a temp
// file in the target directory, fsynced, then renamed over the
// destination — a crash mid-write leaves the previous file intact. It
// is the durability primitive behind both the loop checkpoints here and
// the serving layer's per-campaign journals.
func AtomicWriteJSON(path string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("al: marshal checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*.json")
	if err != nil {
		return fmt.Errorf("al: checkpoint temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("al: write checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("al: commit checkpoint: %w", err)
	}
	return nil
}

// Save writes the checkpoint atomically via AtomicWriteJSON.
func (ck *Checkpoint) Save(path string) error {
	if err := AtomicWriteJSON(path, ck); err != nil {
		return err
	}
	checkpointsSaved.Inc()
	obs.Emit("al.checkpoint.saved", map[string]any{
		"path": path, "next_iter": ck.NextIter, "train": len(ck.Train),
	})
	return nil
}

// LoadCheckpoint reads and validates a checkpoint written by Save.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("al: read checkpoint: %w", err)
	}
	var ck Checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("al: parse checkpoint %s: %w", path, err)
	}
	if ck.Version != CheckpointVersion {
		return nil, fmt.Errorf("al: checkpoint %s has version %d, want %d", path, ck.Version, CheckpointVersion)
	}
	if len(ck.Train) != len(ck.TrainY) {
		return nil, fmt.Errorf("al: checkpoint %s: %d train rows but %d responses", path, len(ck.Train), len(ck.TrainY))
	}
	if ck.RefitN < 0 || ck.RefitN > len(ck.Train) {
		return nil, fmt.Errorf("al: checkpoint %s: refit prefix %d outside train size %d", path, ck.RefitN, len(ck.Train))
	}
	return &ck, nil
}

// Resume loads the checkpoint at path and continues the loop it
// describes to completion. cfg must match the run that wrote the
// checkpoint (same Response, Strategy, kernel, and fault setup); the
// stationary parts of the state — dataset and partition — are the
// caller's to reproduce. The returned Result spans the whole run:
// records from before the checkpoint plus those of the resumed
// iterations, indistinguishable from an uninterrupted run.
func Resume(ds *dataset.Dataset, part dataset.Partition, cfg LoopConfig, path string) (Result, error) {
	ck, err := LoadCheckpoint(path)
	if err != nil {
		return Result{}, err
	}
	return ResumeFrom(ds, part, cfg, ck)
}

// ResumeFrom is Resume with an already loaded checkpoint.
func ResumeFrom(ds *dataset.Dataset, part dataset.Partition, cfg LoopConfig, ck *Checkpoint) (Result, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	if ck.Response != c.Response {
		return Result{}, fmt.Errorf("al: checkpoint models response %q, config asks for %q", ck.Response, c.Response)
	}
	if ck.Strategy != c.Strategy.Name() {
		return Result{}, fmt.Errorf("al: checkpoint used strategy %q, config uses %q", ck.Strategy, c.Strategy.Name())
	}
	if normalizeModel(ck.Model) != normalizeModel(c.Model) {
		return Result{}, fmt.Errorf("al: checkpoint used model tier %q, config uses %q", normalizeModel(ck.Model), normalizeModel(c.Model))
	}
	if err := part.Validate(ds); err != nil {
		return Result{}, err
	}
	if len(ck.RefitHyper) == 0 {
		return Result{}, errors.New("al: checkpoint carries no fitted model state")
	}

	st := &loopState{
		train:      append([]int(nil), ck.Train...),
		trainY:     append([]float64(nil), ck.TrainY...),
		pool:       append([]int(nil), ck.Pool...),
		cumCost:    ck.CumCost,
		amsdHist:   append([]float64(nil), ck.AMSDHist...),
		attempts:   ck.Attempts,
		hasPending: ck.HasPending,
		pendingY:   ck.PendingY,
		refitHyper: append([]float64(nil), ck.RefitHyper...),
		refitLogSN: ck.RefitLogSN,
		refitN:     ck.RefitN,
		startIter:  ck.NextIter,
	}
	if st.attempts == nil {
		st.attempts = map[int]int{}
	}
	if ck.HasPending {
		st.pendingX = append([]float64(nil), ck.PendingX...)
	}
	for _, r := range ck.Records {
		st.records = append(st.records, FromJSONRecord(r))
	}

	// Rebuild the model exactly: an exact-hyperparameter fit over the
	// refit prefix through the configured tier, then the same
	// incremental update chain the live loop ran. The pending point
	// (when present) is deliberately NOT conditioned in here — the
	// first resumed iteration consumes it, as the live loop would have.
	modelN := len(st.train)
	if st.hasPending {
		modelN--
	}
	if modelN < st.refitN {
		return Result{}, fmt.Errorf("al: checkpoint model covers %d points but refit prefix is %d", modelN, st.refitN)
	}
	dims := len(ds.VarNames())
	gcfg := gp.Config{Kernel: c.NewKernel(dims), Normalize: c.Normalize}
	trainX := ds.Matrix(st.train)
	prefixX := ds.Matrix(st.train[:st.refitN])
	fitter := newModelFitter(c)
	model, err := fitter.atHypers(gcfg, prefixX, st.trainY[:st.refitN], ck.RefitHyper, ck.RefitLogSN)
	if err != nil {
		return Result{}, fmt.Errorf("al: resume refit: %w", err)
	}
	for j := st.refitN; j < modelN; j++ {
		model, err = model.UpdateWithPoint(trainX.RawRow(j), st.trainY[j])
		if err != nil {
			return Result{}, fmt.Errorf("al: resume update at train index %d: %w", j, err)
		}
	}
	st.model = model

	rng, cs := newCountingRand(ck.Seed, ck.Draws)
	c.Seed = ck.Seed
	obs.Emit("al.resume", map[string]any{
		"next_iter": ck.NextIter, "train": len(st.train), "draws": ck.Draws,
	})
	return runLoop(ds, part, c, rng, cs, st)
}
