package al

import "math/rand"

// countingSource wraps math/rand's default source and counts Int63
// draws, so the RNG's stream position can be checkpointed as a single
// integer and restored by fast-forwarding a freshly seeded source.
//
// It deliberately implements only rand.Source, not Source64: without a
// native Uint64, every rand.Rand method funnels through Int63, making
// the draw count a complete description of the stream position. All
// rand.Rand methods the pipeline uses (Float64, Intn, NormFloat64,
// Perm, ...) derive from Int63 alone, so their streams are
// byte-identical to rand.New(rand.NewSource(seed)) and loops that
// default to a counting RNG keep their historical selection traces.
// (Only rand.Rand.Uint64 itself would differ — it has a native
// Source64 fast path — and nothing in this repository calls it.)
type countingSource struct {
	src   rand.Source
	draws uint64
}

func (s *countingSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

func (s *countingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.draws = 0
}

// newCountingRand returns a deterministic RNG positioned draws Int63
// calls into the stream of seed, plus its source for reading the
// position back at checkpoint time.
func newCountingRand(seed int64, draws uint64) (*rand.Rand, *countingSource) {
	cs := &countingSource{src: rand.NewSource(seed)}
	for i := uint64(0); i < draws; i++ {
		cs.src.Int63()
	}
	cs.draws = draws
	return rand.New(cs), cs
}
