package al

import (
	"math/rand"
	"testing"
)

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The counting RNG must reproduce the exact stream of the historical
// default rand.New(rand.NewSource(seed)) across every rand.Rand method
// the pipeline draws from, and a fresh RNG fast-forwarded to a recorded
// draw count must continue that stream seamlessly — the property that
// makes checkpoint/resume selection traces byte-identical.
func TestCountingRandMatchesPlainStream(t *testing.T) {
	a := rand.New(rand.NewSource(7))
	b, cs := newCountingRand(7, 0)
	for i := 0; i < 1000; i++ {
		switch i % 4 {
		case 0:
			if x, y := a.Float64(), b.Float64(); x != y {
				t.Fatalf("Float64 diverged at %d: %g vs %g", i, x, y)
			}
		case 1:
			if x, y := a.Intn(97), b.Intn(97); x != y {
				t.Fatalf("Intn diverged at %d", i)
			}
		case 2:
			if x, y := a.Perm(13), b.Perm(13); !equalInts(x, y) {
				t.Fatalf("Perm diverged at %d", i)
			}
		case 3:
			if x, y := a.NormFloat64(), b.NormFloat64(); x != y {
				t.Fatalf("NormFloat64 diverged at %d", i)
			}
		}
	}
	// Fast-forward equivalence: a fresh RNG resumed at the recorded draw
	// count continues the identical stream.
	c, _ := newCountingRand(7, cs.draws)
	for i := 0; i < 100; i++ {
		if x, y := b.Float64(), c.Float64(); x != y {
			t.Fatalf("resumed stream diverged at %d", i)
		}
	}
}
