package al

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/stats"
)

// EMCMConfig drives the Expected Model Change Maximization baseline of
// Cai et al. (paper Eq. 1): the selection criterion
//
//	x* = argmax (1/K) Σ_k ‖(f(x) − f_k(x))·x‖
//
// where f is a linear model trained on all data and {f_k} are K weak
// learners trained on bootstrap resamples. The paper argues this method
// suits performance analysis poorly — it cannot revisit noisy points and
// its Monte Carlo variance estimate is unreliable on small training sets
// (§III); this implementation exists as the comparison baseline.
type EMCMConfig struct {
	// Response names the modeled response column; required.
	Response string
	// K is the ensemble size (default 4).
	K int
	// Iterations bounds AL steps; 0 runs until the pool empties.
	Iterations int
}

// RunEMCM executes the EMCM baseline over a partitioned dataset. Selected
// points leave the pool (EMCM has no revisiting). Records reuse the
// common IterationRecord; SDChosen holds the EMCM score of the selected
// candidate, AMSD the mean ensemble spread across the pool, and LML/Noise
// are zero (no probabilistic model).
func RunEMCM(ds *dataset.Dataset, part dataset.Partition, cfg EMCMConfig, rng *rand.Rand) (Result, error) {
	if cfg.Response == "" {
		return Result{}, errors.New("al: EMCMConfig.Response is required")
	}
	if err := part.Validate(ds); err != nil {
		return Result{}, err
	}
	if len(part.Initial) == 0 || len(part.Active) == 0 {
		return Result{}, errors.New("al: partition needs nonempty Initial and Active sets")
	}
	if cfg.K <= 0 {
		cfg.K = 4
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	maxIter := cfg.Iterations
	if maxIter <= 0 || maxIter > len(part.Active) {
		maxIter = len(part.Active)
	}

	train := append([]int(nil), part.Initial...)
	pool := append([]int(nil), part.Active...)
	testX := ds.Matrix(part.Test)
	testY := ds.RespVec(cfg.Response, part.Test)

	res := Result{Strategy: "emcm"}
	var cumCost float64

	for iter := 1; iter <= maxIter && len(pool) > 0; iter++ {
		tx := ds.Matrix(train)
		ty := ds.RespVec(cfg.Response, train)
		main, err := stats.FitOLS(tx, ty)
		if err != nil {
			return Result{}, fmt.Errorf("al: EMCM iteration %d: %w", iter, err)
		}
		// Bootstrap ensemble. With a single observation the resample is
		// identical and the ensemble degenerates — the small-training-
		// set weakness the paper calls out; we let it happen.
		weak := make([]*stats.OLS, 0, cfg.K)
		for k := 0; k < cfg.K; k++ {
			idx := stats.ResampleIndices(rng, len(train))
			bx := mat.New(len(idx), tx.Cols())
			by := make([]float64, len(idx))
			for i, j := range idx {
				copy(bx.RawRow(i), tx.RawRow(j))
				by[i] = ty[j]
			}
			w, err := stats.FitOLS(bx, by)
			if err != nil {
				continue // degenerate resample: skip this learner
			}
			weak = append(weak, w)
		}

		// Ensemble-disagreement scores are independent per candidate, so
		// they fan out over the scorer worker pool; the argmax below stays
		// serial (first maximum wins) so the selection trace is identical
		// to a serial pass.
		scores := make([]float64, len(pool))
		parChunks(len(pool), resolveScoreWorkers(0), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				x := ds.Row(pool[i])
				fx := main.Predict(x)
				var score float64
				for _, w := range weak {
					score += math.Abs(fx-w.Predict(x)) * mat.Norm2(mat.Vec(x))
				}
				if len(weak) > 0 {
					score /= float64(len(weak))
				}
				scores[i] = score
			}
		})
		best, bestScore := -1, math.Inf(-1)
		var spreadSum float64
		for i, score := range scores {
			spreadSum += score
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		chosen := pool[best]
		pool = append(pool[:best], pool[best+1:]...)
		train = append(train, chosen)
		cumCost += ds.CostAt(chosen)

		rmse := math.NaN()
		if len(testY) > 0 {
			rmse = stats.RMSE(main.PredictAll(testX), testY)
		}
		res.Records = append(res.Records, IterationRecord{
			Iter:     iter,
			Row:      chosen,
			SDChosen: bestScore,
			AMSD:     spreadSum / float64(len(pool)+1),
			RMSE:     rmse,
			CumCost:  cumCost,
			Train:    len(train),
		})
	}
	res.TrainRows = train
	return res, nil
}
