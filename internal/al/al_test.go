package al

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gp"
	"repro/internal/kernel"
)

// synthDS builds a 1-D noisy dataset y = sin(2x) + 0.5x over [0, 4] with
// cost = 10^y, mimicking a log-transformed runtime response whose raw
// value is the experiment cost.
func synthDS(t *testing.T, n int, noise float64, seed int64) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := dataset.New([]string{"x"}, []string{"y"})
	for i := 0; i < n; i++ {
		x := 4 * float64(i) / float64(n-1)
		y := math.Sin(2*x) + 0.5*x + noise*rng.NormFloat64()
		if err := d.AddRow([]float64{x}, []float64{y}, nil, math.Pow(10, y)); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func synthPartition(t *testing.T, d *dataset.Dataset, seed int64) dataset.Partition {
	t.Helper()
	p, err := dataset.RandomPartition(d, dataset.PartitionConfig{NInitial: 1, TestFrac: 0.2},
		rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func quickLoop(strategy Strategy, iters int) LoopConfig {
	return LoopConfig{
		Response:     "y",
		Strategy:     strategy,
		Iterations:   iters,
		NoiseFloor:   1e-2,
		Restarts:     1,
		AllowRevisit: true,
	}
}

func mkCands(preds ...gp.Prediction) []Candidate {
	out := make([]Candidate, len(preds))
	for i, p := range preds {
		out[i] = Candidate{Row: i, X: []float64{float64(i)}, Pred: p}
	}
	return out
}

func TestVarianceReductionPicksMaxSD(t *testing.T) {
	cands := mkCands(
		gp.Prediction{Mean: 5, SD: 0.1},
		gp.Prediction{Mean: 0, SD: 0.9},
		gp.Prediction{Mean: 2, SD: 0.5},
	)
	if got := (VarianceReduction{}).Select(cands, nil); got != 1 {
		t.Fatalf("Select = %d, want 1", got)
	}
}

func TestCostEfficiencyPenalizesExpensive(t *testing.T) {
	// Candidate 0 has the highest SD but also a huge predicted cost;
	// candidate 1 wins σ − μ.
	cands := mkCands(
		gp.Prediction{Mean: 3, SD: 1.0},  // σ−μ = −2
		gp.Prediction{Mean: 0, SD: 0.8},  // σ−μ = 0.8
		gp.Prediction{Mean: 1, SD: 0.95}, // σ−μ = −0.05
	)
	if got := (CostEfficiency{}).Select(cands, nil); got != 1 {
		t.Fatalf("Select = %d, want 1", got)
	}
	if got := (VarianceReduction{}).Select(cands, nil); got != 0 {
		t.Fatalf("VR Select = %d, want 0", got)
	}
}

func TestCostExponentInterpolates(t *testing.T) {
	cands := mkCands(
		gp.Prediction{Mean: 3, SD: 1.0},
		gp.Prediction{Mean: 0, SD: 0.8},
	)
	if got := (CostExponent{Gamma: 0}).Select(cands, nil); got != (VarianceReduction{}).Select(cands, nil) {
		t.Fatal("γ=0 must match VarianceReduction")
	}
	if got := (CostExponent{Gamma: 1}).Select(cands, nil); got != (CostEfficiency{}).Select(cands, nil) {
		t.Fatal("γ=1 must match CostEfficiency")
	}
	if (CostExponent{Gamma: 0.5}).Name() == "" {
		t.Fatal("empty name")
	}
}

func TestEpsilonGreedy(t *testing.T) {
	cands := mkCands(
		gp.Prediction{Mean: 0, SD: 0.1},
		gp.Prediction{Mean: 0, SD: 5.0},
		gp.Prediction{Mean: 0, SD: 0.1},
	)
	// ε = 0: always the base rule (argmax SD).
	s := EpsilonGreedy{Base: VarianceReduction{}, Eps: 0}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		if got := s.Select(cands, rng); got != 1 {
			t.Fatalf("ε=0 picked %d", got)
		}
	}
	// ε = 1: always uniform — every candidate must show up.
	s.Eps = 1
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		seen[s.Select(cands, rng)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("ε=1 explored only %d candidates", len(seen))
	}
	// Defaults: nil base falls back to variance reduction; nil rng is
	// purely greedy.
	def := EpsilonGreedy{Eps: 0.5}
	if got := def.Select(cands, nil); got != 1 {
		t.Fatalf("nil-rng default picked %d", got)
	}
	if def.Select(nil, rng) != -1 {
		t.Fatal("empty candidates")
	}
	if s.Name() == "" || def.Name() == "" {
		t.Fatal("names")
	}
}

func TestRandomStrategy(t *testing.T) {
	cands := mkCands(gp.Prediction{}, gp.Prediction{}, gp.Prediction{})
	rng := rand.New(rand.NewSource(1))
	seen := map[int]bool{}
	for i := 0; i < 50; i++ {
		got := (Random{}).Select(cands, rng)
		if got < 0 || got > 2 {
			t.Fatalf("out of range %d", got)
		}
		seen[got] = true
	}
	if len(seen) != 3 {
		t.Fatal("random never explored all candidates")
	}
	if (Random{}).Select(nil, rng) != -1 {
		t.Fatal("empty candidate list should return -1")
	}
}

func TestRunValidation(t *testing.T) {
	d := synthDS(t, 30, 0.05, 1)
	p := synthPartition(t, d, 1)
	if _, err := Run(d, p, LoopConfig{Strategy: VarianceReduction{}}, nil); err == nil {
		t.Fatal("expected missing-response error")
	}
	if _, err := Run(d, p, LoopConfig{Response: "y"}, nil); err == nil {
		t.Fatal("expected missing-strategy error")
	}
	bad := dataset.Partition{Initial: []int{0}, Active: nil, Test: nil}
	if _, err := Run(d, bad, quickLoop(VarianceReduction{}, 3), nil); err == nil {
		t.Fatal("expected empty-active error")
	}
}

func TestRunReducesRMSE(t *testing.T) {
	d := synthDS(t, 60, 0.05, 2)
	p := synthPartition(t, d, 3)
	res, err := Run(d, p, quickLoop(VarianceReduction{}, 25), rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 25 {
		t.Fatalf("%d records", len(res.Records))
	}
	first, last := res.Records[0], res.Records[len(res.Records)-1]
	if !(last.RMSE < first.RMSE) {
		t.Fatalf("RMSE did not improve: %g -> %g", first.RMSE, last.RMSE)
	}
	if last.RMSE > 0.2 {
		t.Fatalf("final RMSE %g too high", last.RMSE)
	}
	// Record integrity.
	for i, r := range res.Records {
		if r.Iter != i+1 {
			t.Fatalf("iteration numbering broken at %d", i)
		}
		if r.SDChosen < 0 || r.AMSD < 0 {
			t.Fatalf("negative uncertainty at %d", i)
		}
		if i > 0 && r.CumCost <= res.Records[i-1].CumCost {
			t.Fatalf("cumulative cost not increasing at %d", i)
		}
		if r.Train != len(p.Initial)+i+1 {
			t.Fatalf("train size wrong at %d: %d", i, r.Train)
		}
	}
	if len(res.TrainRows) != len(p.Initial)+25 {
		t.Fatalf("TrainRows = %d", len(res.TrainRows))
	}
	if res.Final == nil || res.Strategy != "variance-reduction" {
		t.Fatal("result metadata missing")
	}
}

func TestRevisitKeepsPool(t *testing.T) {
	d := synthDS(t, 20, 0.3, 5)
	p := synthPartition(t, d, 6)
	nActive := len(p.Active)
	// With revisit allowed, we can run more iterations than pool points.
	cfg := quickLoop(VarianceReduction{}, nActive+5)
	cfg.ReoptimizeEvery = 5
	res, err := Run(d, p, cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != nActive+5 {
		t.Fatalf("revisit loop stopped early: %d records", len(res.Records))
	}
	// Without revisit the loop must stop at pool exhaustion.
	cfg.AllowRevisit = false
	res, err = Run(d, p, cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != nActive {
		t.Fatalf("no-revisit loop ran %d iterations, pool had %d", len(res.Records), nActive)
	}
	seen := map[int]bool{}
	for _, r := range res.Records {
		if seen[r.Row] {
			t.Fatalf("row %d selected twice without revisit", r.Row)
		}
		seen[r.Row] = true
	}
}

// Fig. 6's star pattern: with a center-heavy training set, variance
// reduction explores the domain edges first.
func TestVarianceReductionExploresEdgesFirst(t *testing.T) {
	d := synthDS(t, 41, 0.02, 8)
	// Initial = the exact middle point; Active = everything else except
	// a small test set.
	var mid int
	xs := d.Var("x")
	for i, x := range xs {
		if math.Abs(x-2) < math.Abs(xs[mid]-2) {
			mid = i
		}
	}
	var active, test []int
	for i := range xs {
		if i == mid {
			continue
		}
		if i%7 == 0 {
			test = append(test, i)
		} else {
			active = append(active, i)
		}
	}
	p := dataset.Partition{Initial: []int{mid}, Active: active, Test: test}
	res, err := Run(d, p, quickLoop(VarianceReduction{}, 2), rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	// The first two selections must be near the domain edges (x<0.5 or
	// x>3.5), not near the center.
	for _, r := range res.Records {
		x := xs[r.Row]
		if x > 0.5 && x < 3.5 {
			t.Fatalf("early selection at x=%g, expected edge exploration", x)
		}
	}
}

func TestCostBudgetStopsLoop(t *testing.T) {
	d := synthDS(t, 50, 0.05, 25)
	p := synthPartition(t, d, 26)
	cfg := quickLoop(VarianceReduction{}, 40)
	cfg.CostBudget = 30 // costs are 10^y ∈ roughly [0.5, 80]
	res, err := Run(d, p, cfg, rand.New(rand.NewSource(27)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) >= 40 {
		t.Fatal("budget did not shorten the loop")
	}
	last := res.Records[len(res.Records)-1]
	if last.CumCost < 30 {
		t.Fatalf("stopped before the budget was reached: %g", last.CumCost)
	}
	// Every record but the last must be under budget.
	for _, rec := range res.Records[:len(res.Records)-1] {
		if rec.CumCost >= 30 {
			t.Fatalf("iteration %d already over budget (%g) but loop continued", rec.Iter, rec.CumCost)
		}
	}
}

// The GP's 95% interval must actually cover ~95% of held-out points once
// the model has converged — the calibration behind "high-confidence
// predictions".
func TestCoverageCalibrated(t *testing.T) {
	if testing.Short() {
		t.Skip("batch calibration study skipped in -short mode")
	}
	d := synthDS(t, 80, 0.1, 28)
	p := synthPartition(t, d, 29)
	cfg := quickLoop(VarianceReduction{}, 25)
	cfg.NoiseFloor = 1e-3 // let the GP learn the true noise
	res, err := Run(d, p, cfg, rand.New(rand.NewSource(30)))
	if err != nil {
		t.Fatal(err)
	}
	last := res.Records[len(res.Records)-1]
	if math.IsNaN(last.Coverage) {
		t.Fatal("coverage missing")
	}
	if last.Coverage < 0.8 {
		t.Fatalf("95%% CI covers only %.0f%% of test points", 100*last.Coverage)
	}
}

func TestConvergenceRuleStopsEarly(t *testing.T) {
	d := synthDS(t, 50, 0.05, 10)
	p := synthPartition(t, d, 11)
	cfg := quickLoop(VarianceReduction{}, 40)
	cfg.ConvergeWindow = 5
	cfg.ConvergeTol = 0.25
	res, err := Run(d, p, cfg, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("expected AMSD convergence")
	}
	if len(res.Records) >= 40 {
		t.Fatal("convergence did not shorten the loop")
	}
}

func TestDynamicNoiseFloorApplied(t *testing.T) {
	d := synthDS(t, 40, 0.02, 13)
	p := synthPartition(t, d, 14)
	cfg := quickLoop(VarianceReduction{}, 10)
	cfg.DynamicFloorC = 1.0
	res, err := Run(d, p, cfg, rand.New(rand.NewSource(15)))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Records {
		floor := gp.DynamicNoiseFloor(1.0, r.Train-1)
		if r.Noise < floor-1e-9 {
			t.Fatalf("iter %d: σn=%g below dynamic floor %g", r.Iter, r.Noise, floor)
		}
	}
}

func TestReoptimizeEverySkipsRefits(t *testing.T) {
	d := synthDS(t, 40, 0.05, 16)
	p := synthPartition(t, d, 17)
	cfg := quickLoop(VarianceReduction{}, 9)
	cfg.ReoptimizeEvery = 3
	res, err := Run(d, p, cfg, rand.New(rand.NewSource(18)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 9 {
		t.Fatalf("%d records", len(res.Records))
	}
	// Between refits the noise level must be carried over exactly.
	if res.Records[1].Noise != res.Records[0].Noise && res.Records[2].Noise != res.Records[1].Noise {
		t.Log("noise drifted between refits (floor interactions) — acceptable but unexpected")
	}
}

func TestCustomKernelFactory(t *testing.T) {
	d := synthDS(t, 30, 0.05, 19)
	p := synthPartition(t, d, 20)
	cfg := quickLoop(VarianceReduction{}, 3)
	called := false
	cfg.NewKernel = func(dims int) kernel.Kernel {
		called = true
		if dims != 1 {
			t.Fatalf("dims = %d", dims)
		}
		return kernel.NewMatern52(1, 1)
	}
	if _, err := Run(d, p, cfg, rand.New(rand.NewSource(21))); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("kernel factory unused")
	}
}
