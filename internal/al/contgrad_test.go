package al

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gp"
	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/optimize"
)

func TestContinuousSelectGradFindsHighVariance(t *testing.T) {
	x := mat.NewFromRows([][]float64{{0}, {0.5}, {1}})
	y := []float64{0, 0.5, 1}
	g, err := gp.Fit(gp.Config{Kernel: kernel.NewRBF(0.3, 1), NoiseInit: 0.05}, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	bounds := []optimize.Bounds{{Lo: 0, Hi: 3}}
	best, val, err := ContinuousSelectGrad(g, bounds, 6, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if best[0] < 2.5 {
		t.Fatalf("selected x=%g, want near 3 (far from data)", best[0])
	}
	// Gradient-based and derivative-free search must agree.
	bestNM, valNM, err := ContinuousSelect(g, bounds, VarianceCriterion, 6, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(val-valNM) > 1e-3*(1+valNM) {
		t.Fatalf("gradient search value %g vs Nelder-Mead %g at %v vs %v", val, valNM, best, bestNM)
	}
}

func TestContinuousSelectGrad2D(t *testing.T) {
	// Data clustered in one corner; the selector must run to the
	// opposite corner of the box.
	rng := rand.New(rand.NewSource(4))
	n := 10
	x := mat.New(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, 0.3*rng.Float64())
		x.Set(i, 1, 0.3*rng.Float64())
		y[i] = rng.NormFloat64()
	}
	g, err := gp.Fit(gp.Config{Kernel: kernel.NewRBF(0.5, 1), NoiseInit: 0.1}, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	bounds := []optimize.Bounds{{Lo: 0, Hi: 2}, {Lo: 0, Hi: 2}}
	best, _, err := ContinuousSelectGrad(g, bounds, 4, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if best[0] < 1.2 || best[1] < 1.2 {
		t.Fatalf("selected %v, want far corner", best)
	}
}

func TestContinuousSelectGradValidation(t *testing.T) {
	if _, _, err := ContinuousSelectGrad(nil, nil, 1, nil); err == nil {
		t.Fatal("expected nil-model error")
	}
	x := mat.NewFromRows([][]float64{{0}})
	g, _ := gp.Fit(gp.Config{Kernel: kernel.NewRBF(1, 1), NoiseInit: 0.1}, x, []float64{0}, nil)
	twoD := []optimize.Bounds{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}}
	if _, _, err := ContinuousSelectGrad(g, twoD, 1, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected bounds-dimension error")
	}
	// Kernel without input gradients → capability error, not panic.
	g2, _ := gp.Fit(gp.Config{Kernel: kernel.NewMatern32(1, 1), NoiseInit: 0.1}, x, []float64{0}, nil)
	oneD := []optimize.Bounds{{Lo: 0, Hi: 1}}
	if _, _, err := ContinuousSelectGrad(g2, oneD, 1, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected capability error")
	}
}
