package al

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/faults"
	"repro/internal/mat"
	"repro/internal/obs"
)

// sameRecords asserts bit-identical iteration records (NaN == NaN by
// bit pattern), the currency of the checkpoint-determinism guarantee.
func sameRecords(t *testing.T, got, want []IterationRecord) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d records, want %d", len(got), len(want))
	}
	bits := math.Float64bits
	for i := range got {
		g, w := got[i], want[i]
		if g.Iter != w.Iter || g.Row != w.Row || g.Train != w.Train ||
			bits(g.SDChosen) != bits(w.SDChosen) || bits(g.AMSD) != bits(w.AMSD) ||
			bits(g.RMSE) != bits(w.RMSE) || bits(g.Coverage) != bits(w.Coverage) ||
			bits(g.CumCost) != bits(w.CumCost) || bits(g.LML) != bits(w.LML) ||
			bits(g.Noise) != bits(w.Noise) {
			t.Fatalf("record %d differs:\n got %+v\nwant %+v", i, g, w)
		}
	}
}

// With a nil rng the loop's counting RNG must reproduce the historical
// default stream exactly: same records as an explicit
// rand.New(rand.NewSource(1)).
func TestNilRngMatchesHistoricalDefault(t *testing.T) {
	ds := synthDS(t, 30, 0.05, 3)
	part := synthPartition(t, ds, 4)
	cfg := quickLoop(EpsilonGreedy{Base: VarianceReduction{}, Eps: 0.3}, 6)

	a, err := Run(ds, part, cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(ds, part, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, b.Records, a.Records)
}

// The acceptance criterion for checkpoint/resume: interrupting the loop
// at several distinct iterations and resuming must reproduce the
// uninterrupted run's selection sequence and records bit for bit — with
// fault injection, retries, the observation guard, and an rng-consuming
// strategy all active.
func TestCheckpointResumeDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("checkpoint cut-point sweep skipped in -short mode")
	}
	ds := synthDS(t, 40, 0.05, 3)
	part := synthPartition(t, ds, 4)
	dir := t.TempDir()

	base := LoopConfig{
		Response:        "y",
		Strategy:        EpsilonGreedy{Base: VarianceReduction{}, Eps: 0.25},
		Iterations:      12,
		NoiseFloor:      1e-2,
		Restarts:        1,
		ReoptimizeEvery: 3, // exercises the incremental-update chain in the rebuild
		AllowRevisit:    true,
		Seed:            11,
		RetryBudget:     2,
		GuardSigma:      4,
		Faults:          faults.New(faults.Config{Seed: 5, JobFailRate: 0.1, CorruptRate: 0.1}),
	}

	ref := base
	ref.CheckpointPath = filepath.Join(dir, "ref.json")
	full, err := Run(ds, part, ref, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Records) == 0 {
		t.Fatal("reference run produced no records")
	}

	for _, cut := range []int{3, 6, 9} {
		path := filepath.Join(dir, fmt.Sprintf("cut%d.json", cut))
		interrupted := base
		interrupted.CheckpointPath = path
		interrupted.Iterations = cut
		if _, err := Run(ds, part, interrupted, nil); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}

		cont := base
		cont.CheckpointPath = path
		res, err := Resume(ds, part, cont, path)
		if err != nil {
			t.Fatalf("resume at %d: %v", cut, err)
		}
		sameRecords(t, res.Records, full.Records)
		if len(res.TrainRows) != len(full.TrainRows) {
			t.Fatalf("resume at %d: %d train rows, want %d", cut, len(res.TrainRows), len(full.TrainRows))
		}
		for i := range res.TrainRows {
			if res.TrainRows[i] != full.TrainRows[i] {
				t.Fatalf("resume at %d: train row %d is %d, want %d", cut, i, res.TrainRows[i], full.TrainRows[i])
			}
		}
	}
}

// Under a composite fault injector the loop must finish without error,
// produce finite records, and surface its recovery work in the
// counters.
func TestRunSurvivesInjectedFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-injection sweep skipped in -short mode")
	}
	retriesBefore := obs.C("al.retries").Value()
	rejectedBefore := obs.C("al.rejected").Value()

	ds := synthDS(t, 60, 0.05, 7)
	part := synthPartition(t, ds, 8)
	cfg := quickLoop(VarianceReduction{}, 15)
	cfg.Faults = faults.New(faults.Config{
		Seed: 9, JobFailRate: 0.15, NodeFailRate: 0.05, CorruptRate: 0.2, StragglerRate: 0.1,
	})
	cfg.GuardSigma = 4
	res, err := Run(ds, part, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("no records under faults")
	}
	for _, r := range res.Records {
		if math.IsNaN(r.RMSE) || math.IsInf(r.RMSE, 0) || math.IsNaN(r.Noise) {
			t.Fatalf("non-finite record under faults: %+v", r)
		}
	}
	recovered := (obs.C("al.retries").Value() - retriesBefore) +
		(obs.C("al.rejected").Value() - rejectedBefore)
	if recovered == 0 {
		t.Fatal("injector active but no retries or rejections recorded")
	}
}

// A candidate whose measurement keeps failing is skipped: dropped from
// the pool, never entering the training set, with the iteration leaving
// no record.
func TestExhaustedRetryBudgetSkipsCandidate(t *testing.T) {
	skippedBefore := obs.C("al.skipped").Value()

	ds := synthDS(t, 30, 0.05, 3)
	part := synthPartition(t, ds, 4)
	cfg := quickLoop(VarianceReduction{}, 5)
	failRow := -1
	cfg.Measure = func(row int, x []float64, attempt int) (float64, float64, error) {
		if failRow == -1 {
			failRow = row // doom whichever candidate is selected first
		}
		if row == failRow {
			return 0, 0, errors.New("node is on fire")
		}
		return ds.RespAt("y", row), ds.CostAt(row), nil
	}
	cfg.RetryBudget = 1
	res, err := Run(ds, part, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.TrainRows {
		if row == failRow {
			t.Fatalf("skipped row %d entered the training set", failRow)
		}
	}
	if len(res.Records) != 4 {
		t.Fatalf("%d records for 5 iterations with 1 skip, want 4", len(res.Records))
	}
	if d := obs.C("al.skipped").Value() - skippedBefore; d != 1 {
		t.Fatalf("al.skipped rose by %d, want 1", d)
	}
}

// A non-finite measurement is rejected before conditioning even with
// the distance guard off, and the retry produces a clean observation.
func TestNonFiniteObservationRejectedThenRetried(t *testing.T) {
	rejectedBefore := obs.C("al.rejected").Value()

	ds := synthDS(t, 30, 0.05, 3)
	part := synthPartition(t, ds, 4)
	cfg := quickLoop(VarianceReduction{}, 4)
	cfg.Measure = func(row int, x []float64, attempt int) (float64, float64, error) {
		if attempt == 0 {
			return math.NaN(), 0, nil // first reading of every row is garbage
		}
		return ds.RespAt("y", row), ds.CostAt(row), nil
	}
	res, err := Run(ds, part, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 4 {
		t.Fatalf("%d records, want 4", len(res.Records))
	}
	for _, r := range res.Records {
		if math.IsNaN(r.RMSE) || math.IsNaN(r.Noise) {
			t.Fatalf("NaN leaked into the model: %+v", r)
		}
	}
	if d := obs.C("al.rejected").Value() - rejectedBefore; d < 1 {
		t.Fatalf("al.rejected rose by %d, want >= 1", d)
	}
}

// The gross-outlier guard keeps a wildly scaled reading out of the
// training set; the retried attempt's clean value gets in.
func TestGuardRejectsGrossOutlier(t *testing.T) {
	rejectedBefore := obs.C("al.rejected").Value()

	ds := synthDS(t, 30, 0.05, 3)
	part := synthPartition(t, ds, 4)
	cfg := quickLoop(VarianceReduction{}, 4)
	cfg.GuardSigma = 3
	cfg.Measure = func(row int, x []float64, attempt int) (float64, float64, error) {
		y := ds.RespAt("y", row)
		if attempt == 0 {
			return y + 1000, 0, nil // gross, finite outlier
		}
		return y, ds.CostAt(row), nil
	}
	res, err := Run(ds, part, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Were an outlier admitted, RMSE would explode; with the guard the
	// run tracks the clean response.
	last := res.Records[len(res.Records)-1]
	if last.RMSE > 10 {
		t.Fatalf("final RMSE %g suggests an admitted outlier", last.RMSE)
	}
	if d := obs.C("al.rejected").Value() - rejectedBefore; d < 1 {
		t.Fatalf("al.rejected rose by %d, want >= 1", d)
	}
}

// Checkpoint JSON survives NaN fields (RMSE/Coverage with no Test set)
// and round-trips float64 payloads bit-exactly.
func TestCheckpointNaNRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	ck := &Checkpoint{
		Version: CheckpointVersion, Strategy: "variance-reduction", Response: "y",
		Seed: 3, Draws: 17, NextIter: 5,
		Train: []int{1, 2, 3}, TrainY: []float64{0.1, math.Pi, -2.5e-17}, Pool: []int{4, 5},
		RefitHyper: []float64{0.123456789012345678, -3.25}, RefitLogSN: math.Log(0.07), RefitN: 2,
		HasPending: true, PendingX: []float64{1.5}, PendingY: 42,
		Attempts: map[int]int{3: 2},
		Records: []JSONRecord{{
			Iter: 1, Row: 3, RMSE: JSONFloat(math.NaN()), Coverage: JSONFloat(math.Inf(1)),
			LML: JSONFloat(-12.75), Train: 3,
		}},
	}
	if err := ck.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Draws != 17 || got.NextIter != 5 || got.RefitN != 2 || !got.HasPending {
		t.Fatalf("scalars lost: %+v", got)
	}
	for i, v := range ck.TrainY {
		if math.Float64bits(got.TrainY[i]) != math.Float64bits(v) {
			t.Fatalf("TrainY[%d] = %x, want %x", i, got.TrainY[i], v)
		}
	}
	for i, v := range ck.RefitHyper {
		if math.Float64bits(got.RefitHyper[i]) != math.Float64bits(v) {
			t.Fatalf("RefitHyper[%d] drifted", i)
		}
	}
	if !math.IsNaN(float64(got.Records[0].RMSE)) {
		t.Fatalf("NaN RMSE became %v", got.Records[0].RMSE)
	}
	if !math.IsInf(float64(got.Records[0].Coverage), 1) {
		t.Fatalf("+Inf Coverage became %v", got.Records[0].Coverage)
	}
	if got.Attempts[3] != 2 {
		t.Fatalf("attempts map lost: %+v", got.Attempts)
	}
}

// RunOnline retries oracle failures and skips candidates whose budget
// is exhausted instead of aborting the campaign.
func TestRunOnlineRetriesAndSkips(t *testing.T) {
	grid := mat.New(21, 1)
	for i := 0; i < 21; i++ {
		grid.Set(i, 0, 4*float64(i)/20)
	}
	calls := map[string]int{}
	ora := OracleFunc(func(x []float64) (float64, float64, error) {
		k := fmt.Sprintf("%.4f", x[0])
		calls[k]++
		if calls[k] == 1 {
			return 0, 0, errors.New("transient failure") // first touch of every point fails
		}
		return math.Sin(2*x[0]) + 0.5*x[0], 1, nil
	})
	cfg := quickLoop(VarianceReduction{}, 5)
	cfg.RetryBudget = 2
	res, err := RunOnline(grid, []int{0, 10, 20}, ora, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 5 {
		t.Fatalf("%d records, want 5", len(res.Records))
	}
	for _, r := range res.Records {
		if math.IsNaN(r.Noise) || math.IsNaN(r.AMSD) {
			t.Fatalf("non-finite record: %+v", r)
		}
	}
}
