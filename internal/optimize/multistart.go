package optimize

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// Minimizer is any optimizer that can be restarted from a point.
type Minimizer interface {
	Minimize(f Objective, x0 []float64) (Result, error)
}

// MultiStart runs a Minimizer from several start points — a provided one
// plus uniform random draws inside the bounds box — and keeps the best
// finishing point. This is the paper's "repeats this search multiple times,
// each time starting from a random point" mechanism for LML optimization
// (§V-B1), made deterministic via an explicit RNG.
type MultiStart struct {
	// Opt is the underlying optimizer; required.
	Opt Minimizer
	// Restarts is the number of additional random starts (default 4).
	Restarts int
	// Bounds defines the sampling box; required when Restarts > 0.
	Bounds []Bounds
	// Parallel fans restarts out over GOMAXPROCS workers when true.
	// The objective must then be safe for concurrent use.
	Parallel bool
}

// Minimize runs all restarts and returns the result with the lowest F.
// rng drives start-point sampling and must be non-nil when Restarts > 0.
func (m *MultiStart) Minimize(f Objective, x0 []float64, rng *rand.Rand) (Result, error) {
	if m.Opt == nil {
		return Result{}, fmt.Errorf("optimize: MultiStart requires Opt")
	}
	restarts := m.Restarts
	if restarts < 0 {
		restarts = 0
	}
	if restarts > 0 && m.Bounds == nil {
		return Result{}, fmt.Errorf("optimize: MultiStart with restarts requires Bounds")
	}
	if restarts > 0 && rng == nil {
		return Result{}, fmt.Errorf("optimize: MultiStart with restarts requires rng")
	}

	starts := make([][]float64, 0, restarts+1)
	if x0 != nil {
		starts = append(starts, append([]float64(nil), x0...))
	}
	for r := 0; r < restarts; r++ {
		x := make([]float64, len(m.Bounds))
		for i, b := range m.Bounds {
			lo, hi := b.Lo, b.Hi
			if math.IsInf(lo, -1) {
				lo = -10
			}
			if math.IsInf(hi, 1) {
				hi = 10
			}
			x[i] = lo + rng.Float64()*(hi-lo)
		}
		starts = append(starts, x)
	}
	if len(starts) == 0 {
		return Result{}, fmt.Errorf("optimize: MultiStart has no start points")
	}

	results := make([]Result, len(starts))
	errs := make([]error, len(starts))
	if m.Parallel && len(starts) > 1 {
		workers := runtime.GOMAXPROCS(0)
		if workers > len(starts) {
			workers = len(starts)
		}
		var wg sync.WaitGroup
		idx := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					results[i], errs[i] = m.Opt.Minimize(f, starts[i])
				}
			}()
		}
		for i := range starts {
			idx <- i
		}
		close(idx)
		wg.Wait()
	} else {
		for i, s := range starts {
			results[i], errs[i] = m.Opt.Minimize(f, s)
		}
	}

	best := -1
	for i := range results {
		if errs[i] != nil || !isFinite(results[i].F) {
			continue
		}
		if best < 0 || results[i].F < results[best].F {
			best = i
		}
	}
	if best < 0 {
		// Every restart failed; surface the first error.
		for _, err := range errs {
			if err != nil {
				return Result{}, fmt.Errorf("optimize: all %d restarts failed: %w", len(starts), err)
			}
		}
		return Result{}, fmt.Errorf("optimize: all %d restarts produced non-finite objectives", len(starts))
	}
	agg := results[best]
	for i, r := range results {
		if i != best {
			agg.Evals += r.Evals
		}
	}
	return agg, nil
}

// CheckGradient compares the analytic gradient of f at x against central
// finite differences with step h, returning the maximum relative error.
// A tool for validating Objective implementations in tests.
func CheckGradient(f Objective, x []float64, h float64) float64 {
	if h <= 0 {
		h = 1e-6
	}
	g := make([]float64, len(x))
	f(x, g)
	var worst float64
	xp := append([]float64(nil), x...)
	for i := range x {
		xp[i] = x[i] + h
		fPlus := f(xp, nil)
		xp[i] = x[i] - h
		fMinus := f(xp, nil)
		xp[i] = x[i]
		fd := (fPlus - fMinus) / (2 * h)
		denom := math.Max(math.Abs(fd), math.Abs(g[i]))
		var rel float64
		if denom > 1e-10 {
			rel = math.Abs(fd-g[i]) / denom
		} else {
			rel = math.Abs(fd - g[i])
		}
		if rel > worst {
			worst = rel
		}
	}
	return worst
}
