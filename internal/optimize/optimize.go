// Package optimize provides the numerical optimizers used for Gaussian
// process model selection: a box-constrained L-BFGS with backtracking line
// search, a derivative-free Nelder–Mead fallback, and a parallel
// multi-restart driver. All routines minimize; callers maximizing (e.g. log
// marginal likelihood) negate their objective.
package optimize

import (
	"errors"
	"fmt"
	"math"
)

// Objective evaluates the function at x and, when grad is non-nil, writes
// the gradient into grad (len(grad) == len(x)). It returns the objective
// value. Implementations must not retain x or grad.
//
// Non-finite contract: an Objective MAY return NaN or ±Inf (a GP's LML
// does, at hyperparameters where the Gram matrix loses positive
// definiteness). Optimizers must treat such values as "worse than any
// finite value", never as progress: L-BFGS and Nelder–Mead reject
// non-finite trial points during line search / reflection, and
// MultiStart discards any restart that finishes with a non-finite
// objective, returning the best finite restart instead. Only when every
// restart ends non-finite (or in error) does MultiStart return an error
// — callers such as gp.FitRobust rely on that error, not a poisoned
// Result, to trigger their degradation chain.
type Objective func(x []float64, grad []float64) float64

// Bounds is a box constraint for one coordinate.
type Bounds struct {
	Lo, Hi float64
}

// Clamp restricts v to [Lo, Hi].
func (b Bounds) Clamp(v float64) float64 {
	if v < b.Lo {
		return b.Lo
	}
	if v > b.Hi {
		return b.Hi
	}
	return v
}

// Status describes how an optimization run terminated.
type Status int

// Termination reasons.
const (
	GradientConverged Status = iota // ‖∇f‖∞ below tolerance
	StepConverged                   // step or objective change below tolerance
	MaxIterReached                  // iteration budget exhausted
	LineSearchFailed                // no acceptable step found (often already at a minimum)
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case GradientConverged:
		return "gradient-converged"
	case StepConverged:
		return "step-converged"
	case MaxIterReached:
		return "max-iterations"
	case LineSearchFailed:
		return "line-search-failed"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Result reports the outcome of an optimization run.
type Result struct {
	X      []float64 // minimizer found
	F      float64   // objective at X
	Iters  int       // outer iterations performed
	Evals  int       // objective evaluations
	Status Status
}

// ErrDimension is returned when inputs disagree about dimensionality.
var ErrDimension = errors.New("optimize: dimension mismatch")

// project clamps x into bounds in place; nil bounds is unconstrained.
func project(x []float64, bounds []Bounds) {
	if bounds == nil {
		return
	}
	for i := range x {
		x[i] = bounds[i].Clamp(x[i])
	}
}

// projectedGradInf returns the infinity norm of the projected gradient:
// components pushing against an active bound are ignored, so convergence is
// judged correctly on the boundary.
func projectedGradInf(x, g []float64, bounds []Bounds) float64 {
	var mx float64
	for i, gi := range g {
		if bounds != nil {
			if x[i] <= bounds[i].Lo && gi > 0 {
				continue // descent would leave the box
			}
			if x[i] >= bounds[i].Hi && gi < 0 {
				continue
			}
		}
		if a := math.Abs(gi); a > mx {
			mx = a
		}
	}
	return mx
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func allFinite(v []float64) bool {
	for _, x := range v {
		if !isFinite(x) {
			return false
		}
	}
	return true
}
