package optimize

import (
	"fmt"
	"math"
)

// LBFGS minimizes a smooth objective with the limited-memory BFGS method,
// optionally restricted to a box via gradient projection. The zero value is
// usable with sensible defaults.
type LBFGS struct {
	// Memory is the number of (s, y) correction pairs kept (default 8).
	Memory int
	// MaxIter bounds outer iterations (default 200).
	MaxIter int
	// GradTol terminates when the projected-gradient infinity norm drops
	// below it (default 1e-6).
	GradTol float64
	// StepTol terminates when both the step size and the objective
	// decrease stagnate (default 1e-10).
	StepTol float64
	// Bounds, when non-nil, confines iterates to the box (len == dim).
	Bounds []Bounds
}

func (o *LBFGS) defaults() (mem, maxIter int, gtol, stol float64) {
	mem, maxIter, gtol, stol = o.Memory, o.MaxIter, o.GradTol, o.StepTol
	if mem <= 0 {
		mem = 8
	}
	if maxIter <= 0 {
		maxIter = 200
	}
	if gtol <= 0 {
		gtol = 1e-6
	}
	if stol <= 0 {
		stol = 1e-10
	}
	return mem, maxIter, gtol, stol
}

// Minimize runs L-BFGS from x0 and returns the best point found.
func (o *LBFGS) Minimize(f Objective, x0 []float64) (Result, error) {
	n := len(x0)
	if n == 0 {
		return Result{}, fmt.Errorf("%w: empty start point", ErrDimension)
	}
	if o.Bounds != nil && len(o.Bounds) != n {
		return Result{}, fmt.Errorf("%w: %d bounds for %d variables", ErrDimension, len(o.Bounds), n)
	}
	mem, maxIter, gtol, stol := o.defaults()

	x := append([]float64(nil), x0...)
	project(x, o.Bounds)
	g := make([]float64, n)
	evals := 0
	fx := f(x, g)
	evals++
	if !isFinite(fx) || !allFinite(g) {
		return Result{X: x, F: fx, Evals: evals, Status: LineSearchFailed},
			fmt.Errorf("optimize: non-finite objective or gradient at start")
	}

	// Ring buffers of correction pairs.
	sList := make([][]float64, 0, mem)
	yList := make([][]float64, 0, mem)
	rhoList := make([]float64, 0, mem)

	dir := make([]float64, n)
	xNew := make([]float64, n)
	gNew := make([]float64, n)

	res := Result{}
	for iter := 0; iter < maxIter; iter++ {
		res.Iters = iter + 1
		if projectedGradInf(x, g, o.Bounds) < gtol {
			res.Status = GradientConverged
			break
		}

		// Two-loop recursion: dir = -H·g.
		copy(dir, g)
		alpha := make([]float64, len(sList))
		for i := len(sList) - 1; i >= 0; i-- {
			alpha[i] = rhoList[i] * dot(sList[i], dir)
			axpy(-alpha[i], yList[i], dir)
		}
		if len(sList) > 0 {
			last := len(sList) - 1
			gammaK := dot(sList[last], yList[last]) / dot(yList[last], yList[last])
			scal(gammaK, dir)
		}
		for i := 0; i < len(sList); i++ {
			beta := rhoList[i] * dot(yList[i], dir)
			axpy(alpha[i]-beta, sList[i], dir)
		}
		scal(-1, dir)

		// Fall back to steepest descent if the direction is not a
		// descent direction (can happen after projections).
		if dot(dir, g) >= 0 {
			for i := range dir {
				dir[i] = -g[i]
			}
			sList, yList, rhoList = sList[:0], yList[:0], rhoList[:0]
		}

		// Backtracking Armijo line search with projection.
		step := 1.0
		if len(sList) == 0 {
			// First iteration: scale to a modest step.
			if dn := norm2(dir); dn > 1 {
				step = 1 / dn
			}
		}
		const c1 = 1e-4
		gd := dot(g, dir)
		var fNew float64
		accepted := false
		for ls := 0; ls < 50; ls++ {
			for i := range xNew {
				xNew[i] = x[i] + step*dir[i]
			}
			project(xNew, o.Bounds)
			fNew = f(xNew, gNew)
			evals++
			if isFinite(fNew) && allFinite(gNew) && fNew <= fx+c1*step*gd {
				accepted = true
				break
			}
			step *= 0.5
		}
		if !accepted {
			res.Status = LineSearchFailed
			break
		}

		// Update correction pairs.
		s := make([]float64, n)
		y := make([]float64, n)
		var sNorm float64
		for i := range s {
			s[i] = xNew[i] - x[i]
			y[i] = gNew[i] - g[i]
			sNorm += s[i] * s[i]
		}
		sy := dot(s, y)
		if sy > 1e-12*math.Sqrt(sNorm)*norm2(y) && sy > 0 {
			if len(sList) == mem {
				sList = sList[1:]
				yList = yList[1:]
				rhoList = rhoList[1:]
			}
			sList = append(sList, s)
			yList = append(yList, y)
			rhoList = append(rhoList, 1/sy)
		}

		fPrev := fx
		copy(x, xNew)
		copy(g, gNew)
		fx = fNew

		if math.Sqrt(sNorm) < stol && math.Abs(fPrev-fx) < stol*(1+math.Abs(fx)) {
			res.Status = StepConverged
			break
		}
		if iter == maxIter-1 {
			res.Status = MaxIterReached
		}
	}

	res.X = x
	res.F = fx
	res.Evals = evals
	return res, nil
}

func dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

func axpy(a float64, x, y []float64) {
	for i, v := range x {
		y[i] += a * v
	}
}

func scal(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

func norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}
