package optimize

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// quadratic is a convex bowl with minimum at center.
func quadratic(center []float64) Objective {
	return func(x []float64, grad []float64) float64 {
		var f float64
		for i := range x {
			d := x[i] - center[i]
			f += d * d
			if grad != nil {
				grad[i] = 2 * d
			}
		}
		return f
	}
}

// rosenbrock is the classic banana function, minimum 0 at (1,...,1).
func rosenbrock(x []float64, grad []float64) float64 {
	n := len(x)
	var f float64
	if grad != nil {
		for i := range grad {
			grad[i] = 0
		}
	}
	for i := 0; i < n-1; i++ {
		a := x[i+1] - x[i]*x[i]
		b := 1 - x[i]
		f += 100*a*a + b*b
		if grad != nil {
			grad[i] += -400*x[i]*a - 2*b
			grad[i+1] += 200 * a
		}
	}
	return f
}

func TestLBFGSQuadratic(t *testing.T) {
	center := []float64{3, -2, 0.5}
	opt := &LBFGS{}
	res, err := opt.Minimize(quadratic(center), []float64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := range center {
		if math.Abs(res.X[i]-center[i]) > 1e-5 {
			t.Fatalf("x[%d] = %g, want %g", i, res.X[i], center[i])
		}
	}
	if res.F > 1e-9 {
		t.Fatalf("F = %g", res.F)
	}
	if res.Status != GradientConverged && res.Status != StepConverged {
		t.Fatalf("status %v", res.Status)
	}
}

func TestLBFGSRosenbrock(t *testing.T) {
	opt := &LBFGS{MaxIter: 2000, GradTol: 1e-8}
	res, err := opt.Minimize(rosenbrock, []float64{-1.2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-4 || math.Abs(res.X[1]-1) > 1e-4 {
		t.Fatalf("minimum at %v, want (1,1); f=%g status=%v", res.X, res.F, res.Status)
	}
}

func TestLBFGSBounds(t *testing.T) {
	// Minimum of (x-3)² restricted to [0, 1] is at x = 1.
	opt := &LBFGS{Bounds: []Bounds{{Lo: 0, Hi: 1}}}
	res, err := opt.Minimize(quadratic([]float64{3}), []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-8 {
		t.Fatalf("bounded minimum = %g, want 1", res.X[0])
	}
}

func TestLBFGSStartOutsideBoundsIsProjected(t *testing.T) {
	opt := &LBFGS{Bounds: []Bounds{{Lo: -1, Hi: 1}}}
	res, err := opt.Minimize(quadratic([]float64{0}), []float64{50})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]) > 1e-6 {
		t.Fatalf("minimum = %g, want 0", res.X[0])
	}
}

func TestLBFGSEmptyStartErrors(t *testing.T) {
	opt := &LBFGS{}
	if _, err := opt.Minimize(quadratic(nil), nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestLBFGSBoundsDimMismatch(t *testing.T) {
	opt := &LBFGS{Bounds: []Bounds{{Lo: 0, Hi: 1}}}
	if _, err := opt.Minimize(quadratic([]float64{0, 0}), []float64{0, 0}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestLBFGSNonFiniteStart(t *testing.T) {
	bad := func(x []float64, grad []float64) float64 {
		if grad != nil {
			for i := range grad {
				grad[i] = math.NaN()
			}
		}
		return math.NaN()
	}
	opt := &LBFGS{}
	if _, err := opt.Minimize(bad, []float64{1}); err == nil {
		t.Fatal("expected error on NaN objective")
	}
}

func TestNelderMeadQuadratic(t *testing.T) {
	center := []float64{1.5, -0.5}
	opt := &NelderMead{}
	res, err := opt.Minimize(quadratic(center), []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := range center {
		if math.Abs(res.X[i]-center[i]) > 1e-4 {
			t.Fatalf("x[%d] = %g, want %g", i, res.X[i], center[i])
		}
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	opt := &NelderMead{MaxIter: 20000, Tol: 1e-10}
	res, err := opt.Minimize(rosenbrock, []float64{-1.2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]-1) > 1e-3 {
		t.Fatalf("minimum at %v, f=%g", res.X, res.F)
	}
}

func TestNelderMeadBounds(t *testing.T) {
	opt := &NelderMead{Bounds: []Bounds{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}}}
	res, err := opt.Minimize(quadratic([]float64{5, -5}), []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-5 || math.Abs(res.X[1]) > 1e-5 {
		t.Fatalf("bounded minimum %v, want (1,0)", res.X)
	}
}

func TestNelderMeadNoGradientCalls(t *testing.T) {
	f := func(x []float64, grad []float64) float64 {
		if grad != nil {
			t.Fatal("Nelder-Mead must not request gradients")
		}
		return x[0] * x[0]
	}
	opt := &NelderMead{}
	if _, err := opt.Minimize(f, []float64{2}); err != nil {
		t.Fatal(err)
	}
}

// multiModal has local minima at roughly x=±2 with f(2) < f(-2);
// restarts should find the global one.
func multiModal(x []float64, grad []float64) float64 {
	v := x[0]
	f := 0.05*v*v + math.Sin(2*v) // global min near 2.2 within [-4, 4]
	if grad != nil {
		grad[0] = 0.1*v + 2*math.Cos(2*v)
	}
	return f
}

func TestMultiStartFindsGlobal(t *testing.T) {
	bounds := []Bounds{{Lo: -4, Hi: 4}}
	ms := &MultiStart{
		Opt:      &LBFGS{Bounds: bounds},
		Restarts: 20,
		Bounds:   bounds,
	}
	// Start deliberately in the basin of a worse local minimum (near
	// x≈2.4); restarts must still find the global minimum, identified
	// here by a fine grid scan.
	res, err := ms.Minimize(multiModal, []float64{2.4}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	gridBest := math.Inf(1)
	for x := -4.0; x <= 4; x += 1e-3 {
		if v := multiModal([]float64{x}, nil); v < gridBest {
			gridBest = v
		}
	}
	if res.F > gridBest+1e-6 {
		t.Fatalf("stuck in local minimum: f=%g at x=%g, global f=%g", res.F, res.X[0], gridBest)
	}
}

// The non-finite contract of Objective: restarts that land in (or
// wander into) a region where the objective is NaN are discarded, and
// the best finite restart wins — this is what lets GP hyperparameter
// search survive non-PD corners of the space. Only when every start
// ends non-finite may Minimize error.
func TestMultiStartNaNOnSomeStarts(t *testing.T) {
	// NaN on the entire negative half-line, a clean bowl at x=1 on the
	// positive side. Half the sampling box is poisoned.
	half := func(x, grad []float64) float64 {
		if x[0] < 0 {
			return math.NaN()
		}
		if grad != nil {
			grad[0] = 2 * (x[0] - 1)
		}
		return (x[0] - 1) * (x[0] - 1)
	}
	bounds := []Bounds{{Lo: -4, Hi: 4}}
	for _, par := range []bool{false, true} {
		ms := &MultiStart{
			Opt:      &LBFGS{Bounds: bounds},
			Restarts: 10,
			Bounds:   bounds,
			Parallel: par,
		}
		// x0 itself is poisoned: the explicit start must be discarded
		// too, not just random ones.
		res, err := ms.Minimize(half, []float64{-2}, rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatalf("parallel=%v: %v", par, err)
		}
		if !isFinite(res.F) || res.F > 1e-8 || math.Abs(res.X[0]-1) > 1e-4 {
			t.Fatalf("parallel=%v: got f=%g at x=%g, want ~0 at 1", par, res.F, res.X[0])
		}
	}

	// Fully poisoned objective: every restart is non-finite and the
	// driver must say so rather than return a NaN minimizer.
	poison := func(x, grad []float64) float64 { return math.NaN() }
	ms := &MultiStart{Opt: &LBFGS{Bounds: bounds}, Restarts: 5, Bounds: bounds}
	if _, err := ms.Minimize(poison, []float64{1}, rand.New(rand.NewSource(3))); err == nil {
		t.Fatal("all-NaN objective must error")
	}
}

func TestMultiStartParallelMatchesSerial(t *testing.T) {
	bounds := []Bounds{{Lo: -4, Hi: 4}}
	mk := func(par bool) float64 {
		ms := &MultiStart{
			Opt:      &LBFGS{Bounds: bounds},
			Restarts: 8,
			Bounds:   bounds,
			Parallel: par,
		}
		res, err := ms.Minimize(multiModal, []float64{0}, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		return res.F
	}
	serial, parallel := mk(false), mk(true)
	if math.Abs(serial-parallel) > 1e-9 {
		t.Fatalf("serial %g vs parallel %g", serial, parallel)
	}
}

func TestMultiStartValidation(t *testing.T) {
	if _, err := (&MultiStart{}).Minimize(multiModal, []float64{0}, nil); err == nil {
		t.Fatal("expected error without Opt")
	}
	ms := &MultiStart{Opt: &LBFGS{}, Restarts: 2}
	if _, err := ms.Minimize(multiModal, []float64{0}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected error without Bounds")
	}
	ms = &MultiStart{Opt: &LBFGS{}, Restarts: 2, Bounds: []Bounds{{Lo: -1, Hi: 1}}}
	if _, err := ms.Minimize(multiModal, []float64{0}, nil); err == nil {
		t.Fatal("expected error without rng")
	}
	ms = &MultiStart{Opt: &LBFGS{}}
	if _, err := ms.Minimize(multiModal, nil, nil); err == nil {
		t.Fatal("expected error with no start points")
	}
}

func TestCheckGradientDetectsBadGradient(t *testing.T) {
	good := quadratic([]float64{0, 0})
	if rel := CheckGradient(good, []float64{1, 2}, 1e-6); rel > 1e-6 {
		t.Fatalf("good gradient flagged: %g", rel)
	}
	bad := func(x []float64, grad []float64) float64 {
		if grad != nil {
			for i := range grad {
				grad[i] = 0 // wrong
			}
		}
		return x[0] * x[0]
	}
	if rel := CheckGradient(bad, []float64{3}, 1e-6); rel < 0.5 {
		t.Fatalf("bad gradient not detected: %g", rel)
	}
}

func TestStatusString(t *testing.T) {
	for _, s := range []Status{GradientConverged, StepConverged, MaxIterReached, LineSearchFailed, Status(99)} {
		if s.String() == "" {
			t.Fatal("empty Status string")
		}
	}
}

// Property: LBFGS on a random convex quadratic always reaches the center.
func TestLBFGSConvexProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		center := make([]float64, n)
		start := make([]float64, n)
		for i := range center {
			center[i] = 4 * rng.NormFloat64()
			start[i] = 4 * rng.NormFloat64()
		}
		opt := &LBFGS{}
		res, err := opt.Minimize(quadratic(center), start)
		if err != nil {
			return false
		}
		for i := range center {
			if math.Abs(res.X[i]-center[i]) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: bounded LBFGS never leaves the box.
func TestLBFGSStaysInBoxProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		center := []float64{6 * rng.NormFloat64(), 6 * rng.NormFloat64()}
		bounds := []Bounds{{Lo: -1, Hi: 1}, {Lo: -1, Hi: 1}}
		opt := &LBFGS{Bounds: bounds}
		res, err := opt.Minimize(quadratic(center), []float64{0, 0})
		if err != nil {
			return false
		}
		for i, b := range bounds {
			if res.X[i] < b.Lo-1e-12 || res.X[i] > b.Hi+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLBFGSRosenbrock10(b *testing.B) {
	start := make([]float64, 10)
	for i := range start {
		start[i] = -1.2
	}
	opt := &LBFGS{MaxIter: 500}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Minimize(rosenbrock, start); err != nil {
			b.Fatal(err)
		}
	}
}
