package optimize

import (
	"fmt"
	"math"
	"sort"
)

// NelderMead minimizes an objective without derivatives using the
// downhill-simplex method, with optional box projection. It is the fallback
// for objectives whose gradients are unavailable or unreliable (e.g. noisy
// cross-validation losses).
type NelderMead struct {
	// MaxIter bounds iterations (default 500·dim).
	MaxIter int
	// Tol terminates when the simplex spread in both x and f collapses
	// below it (default 1e-8).
	Tol float64
	// InitialStep sets the initial simplex edge length (default 0.5).
	InitialStep float64
	// Bounds, when non-nil, confines iterates to the box.
	Bounds []Bounds
}

// Minimize runs Nelder–Mead from x0.
func (o *NelderMead) Minimize(f Objective, x0 []float64) (Result, error) {
	n := len(x0)
	if n == 0 {
		return Result{}, fmt.Errorf("%w: empty start point", ErrDimension)
	}
	if o.Bounds != nil && len(o.Bounds) != n {
		return Result{}, fmt.Errorf("%w: %d bounds for %d variables", ErrDimension, len(o.Bounds), n)
	}
	maxIter := o.MaxIter
	if maxIter <= 0 {
		maxIter = 500 * n
	}
	tol := o.Tol
	if tol <= 0 {
		tol = 1e-8
	}
	step := o.InitialStep
	if step <= 0 {
		step = 0.5
	}

	eval := func(x []float64) float64 {
		project(x, o.Bounds)
		v := f(x, nil)
		if !isFinite(v) {
			return math.Inf(1)
		}
		return v
	}

	// Build the initial simplex: x0 plus a perturbation per dimension.
	type vertex struct {
		x []float64
		f float64
	}
	evals := 0
	simplex := make([]vertex, n+1)
	base := append([]float64(nil), x0...)
	project(base, o.Bounds)
	simplex[0] = vertex{x: base, f: eval(append([]float64(nil), base...))}
	evals++
	for i := 0; i < n; i++ {
		x := append([]float64(nil), base...)
		if x[i] != 0 {
			x[i] += step * math.Abs(x[i])
		} else {
			x[i] += step
		}
		simplex[i+1] = vertex{x: x, f: eval(x)}
		evals++
	}

	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)

	res := Result{Status: MaxIterReached}
	for iter := 0; iter < maxIter; iter++ {
		res.Iters = iter + 1
		sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })

		// Convergence: spread of f values and of vertices.
		fSpread := simplex[n].f - simplex[0].f
		var xSpread float64
		for i := 1; i <= n; i++ {
			for j := 0; j < n; j++ {
				if d := math.Abs(simplex[i].x[j] - simplex[0].x[j]); d > xSpread {
					xSpread = d
				}
			}
		}
		if fSpread < tol && xSpread < tol {
			res.Status = StepConverged
			break
		}

		// Centroid of all but the worst vertex.
		centroid := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				centroid[j] += simplex[i].x[j]
			}
		}
		for j := range centroid {
			centroid[j] /= float64(n)
		}

		worst := simplex[n]
		refl := make([]float64, n)
		for j := range refl {
			refl[j] = centroid[j] + alpha*(centroid[j]-worst.x[j])
		}
		fRefl := eval(refl)
		evals++

		switch {
		case fRefl < simplex[0].f:
			// Try expansion.
			exp := make([]float64, n)
			for j := range exp {
				exp[j] = centroid[j] + gamma*(refl[j]-centroid[j])
			}
			fExp := eval(exp)
			evals++
			if fExp < fRefl {
				simplex[n] = vertex{x: exp, f: fExp}
			} else {
				simplex[n] = vertex{x: refl, f: fRefl}
			}
		case fRefl < simplex[n-1].f:
			simplex[n] = vertex{x: refl, f: fRefl}
		default:
			// Contraction.
			con := make([]float64, n)
			for j := range con {
				con[j] = centroid[j] + rho*(worst.x[j]-centroid[j])
			}
			fCon := eval(con)
			evals++
			if fCon < worst.f {
				simplex[n] = vertex{x: con, f: fCon}
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= n; i++ {
					for j := 0; j < n; j++ {
						simplex[i].x[j] = simplex[0].x[j] + sigma*(simplex[i].x[j]-simplex[0].x[j])
					}
					simplex[i].f = eval(simplex[i].x)
					evals++
				}
			}
		}
	}

	sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
	res.X = simplex[0].x
	res.F = simplex[0].f
	res.Evals = evals
	return res, nil
}
