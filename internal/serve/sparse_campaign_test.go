package serve

import (
	"context"
	"testing"
)

// sparseSpec is clientSpec with the campaign pinned to the sparse model
// tier — the serving-layer entry point of the Regressor work.
func sparseSpec(seed int64) CampaignSpec {
	spec := clientSpec(seed)
	spec.Name = "sparse-trace"
	spec.Model = "sparse"
	spec.Inducing = 8
	return spec
}

// TestSparseCampaignTraceMatchesRunOnline: a live campaign on the sparse
// tier must reproduce the direct al.RunOnline trace bit for bit, exactly
// like the dense tier — the model abstraction must not leak into the
// suggestion stream.
func TestSparseCampaignTraceMatchesRunOnline(t *testing.T) {
	spec := sparseSpec(13)
	ref := directRun(t, spec)

	defer checkLeaked(t)
	mgr := NewManager(Config{})
	defer mgr.Shutdown(context.Background())
	c, err := mgr.Create(spec)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	xs := driveCampaign(t, c, 0)
	st := waitTerminal(t, c)
	if st.State != StateDone {
		t.Fatalf("campaign ended %s (err %q), want done", st.State, st.Error)
	}
	if st.Fingerprint == 0 {
		t.Fatal("sparse campaign published no model fingerprint")
	}
	expectTrace(t, c, xs, ref)
}

// TestSparseCampaignResumesIdentically is the acceptance criterion for
// the sparse tier behind the campaign service: shut the server down with
// a model: sparse campaign mid-flight, resume from the checkpoint +
// journal, and the finished campaign must carry the identical
// fingerprinted trace a never-interrupted run produces.
func TestSparseCampaignResumesIdentically(t *testing.T) {
	spec := sparseSpec(17)
	ref := directRun(t, spec)
	dir := t.TempDir()

	// Uninterrupted twin: establishes the golden fingerprint.
	mgrRef := NewManager(Config{})
	cRef, err := mgrRef.Create(spec)
	if err != nil {
		t.Fatalf("create reference: %v", err)
	}
	driveCampaign(t, cRef, 0)
	goldFP := waitTerminal(t, cRef).Fingerprint
	if goldFP == 0 {
		t.Fatal("reference campaign has no fingerprint")
	}
	if err := mgrRef.Shutdown(context.Background()); err != nil {
		t.Fatalf("reference shutdown: %v", err)
	}

	// First lifetime: observe 4 points, then shut down mid-flight.
	mgr1 := NewManager(Config{CheckpointDir: dir})
	c1, err := mgr1.Create(spec)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	id := c1.ID
	xs := driveCampaign(t, c1, 4)
	if err := mgr1.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Second lifetime: resume must rebuild the sparse model from the
	// journal and finish on the same trajectory.
	mgr2 := NewManager(Config{CheckpointDir: dir})
	defer mgr2.Shutdown(context.Background())
	if n, err := mgr2.ResumeAll(); err != nil || n != 1 {
		t.Fatalf("resume: n=%d err=%v", n, err)
	}
	c2, err := mgr2.Get(id)
	if err != nil {
		t.Fatalf("get resumed: %v", err)
	}
	if got := c2.Spec.Model; got != "sparse" {
		t.Fatalf("resumed campaign lost its model tier: %q", got)
	}
	xs = append(xs, driveCampaign(t, c2, 0)...)
	st := waitTerminal(t, c2)
	if st.State != StateDone {
		t.Fatalf("resumed campaign ended %s (err %q), want done", st.State, st.Error)
	}
	if st.Fingerprint != goldFP {
		t.Fatalf("resumed fingerprint %016x, uninterrupted run %016x", st.Fingerprint, goldFP)
	}
	expectTrace(t, c2, xs, ref)
}
