package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// Every registry strategy must be reachable through a campaign spec and
// run a client campaign to done — and the server-driven trace must match
// the direct al.RunOnline reference bit for bit, QBC's committee RNG
// included.
func TestZooStrategiesThroughService(t *testing.T) {
	specs := []CampaignSpec{
		{Strategy: "qbc", K: 3, Seed: 7},
		{Strategy: "qbc-cost", K: 3, Gamma: 1, Seed: 7},
		{Strategy: "diversity", Lambda: 0.5, Seed: 7},
		{Strategy: "emcm-grad", Seed: 7},
		{Strategy: "eps-greedy", Epsilon: 0.2, Seed: 7},
	}
	for _, s := range specs {
		spec := clientSpec(s.Seed)
		spec.Name = s.Strategy
		spec.Strategy = s.Strategy
		spec.K = s.K
		spec.Gamma = s.Gamma
		spec.Lambda = s.Lambda
		spec.Epsilon = s.Epsilon
		spec.Iterations = 4
		t.Run(s.Strategy, func(t *testing.T) {
			ref := directRun(t, spec)

			defer checkLeaked(t)
			mgr := NewManager(Config{})
			defer mgr.Shutdown(context.Background())
			c, err := mgr.Create(spec)
			if err != nil {
				t.Fatalf("create: %v", err)
			}
			xs := driveCampaign(t, c, 0)
			st := waitTerminal(t, c)
			if st.State != StateDone {
				t.Fatalf("campaign ended %s (err %q), want done", st.State, st.Error)
			}
			expectTrace(t, c, xs, ref)
		})
	}
}

// A zoo strategy riding a dataset-backed campaign over plain HTTP: the
// spec round-trips through JSON, the registry resolves it server-side,
// and the campaign reaches done.
func TestZooStrategyOverHTTP(t *testing.T) {
	defer checkLeaked(t)
	mgr := NewManager(Config{})
	defer mgr.Shutdown(context.Background())
	srv := httptest.NewServer(NewServer(mgr))
	defer srv.Close()

	body, _ := json.Marshal(CampaignSpec{
		Source:     "dataset",
		Dataset:    &DatasetSpec{Name: "synthetic", Seed: 3, N: 14, Noise: 0.05},
		Seeds:      []int{0, 13},
		Strategy:   "diversity",
		Lambda:     1,
		Iterations: 4,
		Restarts:   1,
		Seed:       5,
	})
	resp, err := http.Post(srv.URL+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st CampaignStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create returned %d: %+v", resp.StatusCode, st)
	}
	if st.Strategy != "diversity(1.00)" {
		t.Fatalf("status strategy %q, want diversity(1.00)", st.Strategy)
	}
	c, err := mgr.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, c)
	if final.State != StateDone {
		t.Fatalf("campaign ended %s (err %q), want done", final.State, final.Error)
	}

	// An unknown strategy must map to HTTP 400 via the registry error.
	body, _ = json.Marshal(CampaignSpec{
		Source:     "dataset",
		Dataset:    &DatasetSpec{Name: "synthetic"},
		Seeds:      []int{0},
		Strategy:   "no-such-strategy",
		Iterations: 2,
	})
	resp, err = http.Post(srv.URL+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown strategy returned %d, want 400", resp.StatusCode)
	}
}
