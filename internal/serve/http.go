package serve

import (
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/obs"
)

var requestErrors = obs.C("serve.request.errors")

// Server is the HTTP front of a Manager. Routes (Go 1.22 method
// patterns):
//
//	POST   /campaigns                create a campaign from a CampaignSpec
//	GET    /campaigns                list campaign statuses (no records)
//	GET    /campaigns/{id}           full status including the trace
//	DELETE /campaigns/{id}           stop, drain, and forget a campaign
//	GET    /campaigns/{id}/suggest   current pending suggestion (client mode)
//	POST   /campaigns/{id}/observe   submit the measurement for a suggestion
//	POST   /campaigns/{id}/predict   model predictions at arbitrary points
//	GET    /healthz                  liveness + campaign counts
//	GET    /metrics                  obs registry snapshot as JSONL
type Server struct {
	mgr *Manager
	mux *http.ServeMux
}

// NewServer wires the routes for a Manager.
func NewServer(mgr *Manager) *Server {
	s := &Server{mgr: mgr, mux: http.NewServeMux()}
	s.route("POST /campaigns", "create", s.handleCreate)
	s.route("GET /campaigns", "list", s.handleList)
	s.route("GET /campaigns/{id}", "status", s.handleStatus)
	s.route("DELETE /campaigns/{id}", "delete", s.handleDelete)
	s.route("GET /campaigns/{id}/suggest", "suggest", s.handleSuggest)
	s.route("POST /campaigns/{id}/observe", "observe", s.handleObserve)
	s.route("POST /campaigns/{id}/predict", "predict", s.handlePredict)
	s.route("GET /healthz", "healthz", s.handleHealthz)
	s.route("GET /metrics", "metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// statusWriter captures the response code for instrumentation.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// route registers a handler wrapped in a serve.request span (which
// records serve.request.count and serve.request.duration on End) plus a
// per-route counter and an error counter for 4xx/5xx responses.
func (s *Server) route(pattern, name string, h http.HandlerFunc) {
	counter := obs.C("serve.request." + name)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		ctx, span := obs.Start(r.Context(), "serve.request")
		span.SetAttr("route", name)
		counter.Inc()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r.WithContext(ctx))
		if sw.code >= 400 {
			requestErrors.Inc()
			span.SetAttr("status", sw.code)
		}
		span.End()
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeErr maps the package's sentinel errors onto HTTP status codes
// and emits the {"error": ...} envelope.
func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, errSpec):
		code = http.StatusBadRequest
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrNoPending), errors.Is(err, ErrSeqMismatch), errors.Is(err, ErrNoModel):
		code = http.StatusConflict
	case errors.Is(err, ErrClosed):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return errors.Join(errSpec, err)
	}
	return nil
}

func (s *Server) campaign(r *http.Request) (*Campaign, error) {
	return s.mgr.Get(r.PathValue("id"))
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var spec CampaignSpec
	if err := decodeJSON(r, &spec); err != nil {
		writeErr(w, err)
		return
	}
	c, err := s.mgr.Create(spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	st, err := c.Status(false)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	campaigns := s.mgr.List()
	out := make([]CampaignStatus, 0, len(campaigns))
	for _, c := range campaigns {
		if st, err := c.Status(false); err == nil {
			out = append(out, st)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"campaigns": out})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	c, err := s.campaign(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	st, err := c.Status(true)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.mgr.Delete(r.PathValue("id")); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": r.PathValue("id")})
}

func (s *Server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	c, err := s.campaign(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	sug, err := c.Suggest()
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sug)
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	c, err := s.campaign(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	var req ObserveRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if err := c.Observe(req.Seq, float64(req.Y), float64(req.Cost)); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"accepted": req.Seq})
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	c, err := s.campaign(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	var req PredictRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	resp, err := s.mgr.Predict(c, req.Points)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	total, terminal := s.mgr.CampaignCount()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"campaigns": total,
		"terminal":  terminal,
	})
}

// handleMetrics streams the Default obs registry as JSONL (the same
// format DumpMetrics writes to a sink). WriteJSONL sanitizes the
// non-finite histogram extrema that a raw Snapshot would feed
// encoding/json.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	if err := obs.Default.WriteJSONL(w); err != nil {
		requestErrors.Inc()
	}
}
