package serve

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
)

var requestErrors = obs.C("serve.request.errors")

// ServerConfig tunes the HTTP front's resilience layer. Zero values
// take the defaults below; a zero Admission.MaxInFlight disables
// admission control entirely (unit-test servers stay unconstrained).
type ServerConfig struct {
	// RouteTimeout is the per-request context deadline (default 30s).
	// Handlers propagate it into actor calls and the scoring pool, so a
	// request abandoned at the deadline stops consuming the service.
	RouteTimeout time.Duration

	// MaxBodyBytes caps request bodies via http.MaxBytesReader
	// (default 1 MiB). Oversized bodies get HTTP 413.
	MaxBodyBytes int64

	// Admission bounds concurrent request work: MaxInFlight requests
	// run, MaxQueue wait, the rest shed with 429 + Retry-After.
	// /healthz and /metrics bypass admission so the service stays
	// observable while saturated.
	Admission resilience.AdmissionConfig
}

// Server is the HTTP front of a Manager. Routes (Go 1.22 method
// patterns):
//
//	POST   /campaigns                create a campaign from a CampaignSpec
//	GET    /campaigns                list campaign statuses (no records)
//	GET    /campaigns/{id}           full status including the trace
//	DELETE /campaigns/{id}           stop, drain, and forget a campaign
//	GET    /campaigns/{id}/suggest   current pending suggestion (client mode)
//	POST   /campaigns/{id}/observe   submit the measurement for a suggestion
//	POST   /campaigns/{id}/predict   model predictions at arbitrary points
//	GET    /healthz                  liveness, campaign counts, degradation
//	GET    /metrics                  obs registry snapshot as JSONL
type Server struct {
	mgr *Manager
	mux *http.ServeMux
	cfg ServerConfig
	adm *resilience.Admission // nil when admission control is off
}

// NewServer wires the routes for a Manager with default resilience
// settings (30s route deadline, 1 MiB bodies, no admission bound).
func NewServer(mgr *Manager) *Server { return NewServerWith(mgr, ServerConfig{}) }

// NewServerWith wires the routes with explicit resilience settings.
func NewServerWith(mgr *Manager, cfg ServerConfig) *Server {
	if cfg.RouteTimeout <= 0 {
		cfg.RouteTimeout = 30 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	s := &Server{mgr: mgr, mux: http.NewServeMux(), cfg: cfg}
	if cfg.Admission.MaxInFlight > 0 {
		s.adm = resilience.NewAdmission(cfg.Admission)
	}
	s.route("POST /campaigns", "create", s.handleCreate)
	s.route("GET /campaigns", "list", s.handleList)
	s.route("GET /campaigns/{id}", "status", s.handleStatus)
	s.route("DELETE /campaigns/{id}", "delete", s.handleDelete)
	s.route("GET /campaigns/{id}/suggest", "suggest", s.handleSuggest)
	s.route("POST /campaigns/{id}/observe", "observe", s.handleObserve)
	s.route("POST /campaigns/{id}/predict", "predict", s.handlePredict)
	s.route("GET /healthz", "healthz", s.handleHealthz)
	s.route("GET /metrics", "metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// statusWriter captures the response code for instrumentation.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// route registers a handler behind the resilience middleware stack:
// route deadline → admission (shed with 429) → body cap → obs span.
// The deadline is attached BEFORE admission so a request queued for a
// slot gives up at its deadline instead of waiting forever.
func (s *Server) route(pattern, name string, h http.HandlerFunc) {
	counter := obs.C("serve.request." + name)
	exempt := name == "healthz" || name == "metrics"
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RouteTimeout)
		defer cancel()
		if s.adm != nil && !exempt {
			release, err := s.adm.Acquire(ctx)
			if err != nil {
				requestErrors.Inc()
				writeErr(w, err)
				return
			}
			defer release()
		}
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		ctx, span := obs.Start(ctx, "serve.request")
		span.SetAttr("route", name)
		counter.Inc()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r.WithContext(ctx))
		if sw.code >= 400 {
			requestErrors.Inc()
			span.SetAttr("status", sw.code)
		}
		span.End()
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// retryAfterSecs converts a backoff hint to whole header seconds
// (minimum 1 — zero would tell clients to hammer immediately).
func retryAfterSecs(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// writeErr maps the package's sentinel errors onto HTTP status codes
// and emits the {"error": ...} envelope. Overload-shaped failures
// (shed, open breaker, deadline, journal outage) carry a Retry-After
// header so well-behaved clients back off instead of hammering.
func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var tooBig *http.MaxBytesError
	var open *resilience.OpenError
	switch {
	case errors.As(err, &tooBig):
		code = http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrSpec):
		code = http.StatusBadRequest
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrNoPending), errors.Is(err, ErrSeqMismatch), errors.Is(err, ErrNoModel):
		code = http.StatusConflict
	case errors.Is(err, resilience.ErrSaturated):
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
	case errors.As(err, &open):
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", retryAfterSecs(open.RetryAfter))
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, ErrJournal):
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, ErrClosed):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return err
		}
		return errors.Join(ErrSpec, err)
	}
	return nil
}

func (s *Server) campaign(r *http.Request) (*Campaign, error) {
	return s.mgr.Get(r.PathValue("id"))
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var spec CampaignSpec
	if err := decodeJSON(r, &spec); err != nil {
		writeErr(w, err)
		return
	}
	c, err := s.mgr.Create(spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	st, err := c.StatusCtx(r.Context(), false)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	campaigns := s.mgr.List()
	out := make([]CampaignStatus, 0, len(campaigns))
	for _, c := range campaigns {
		if st, err := c.StatusCtx(r.Context(), false); err == nil {
			out = append(out, st)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"campaigns": out})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	c, err := s.campaign(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	st, err := c.StatusCtx(r.Context(), true)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.mgr.Delete(r.PathValue("id")); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": r.PathValue("id")})
}

func (s *Server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	c, err := s.campaign(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	sug, err := c.SuggestCtx(r.Context())
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sug)
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	c, err := s.campaign(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	var req ObserveRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	key := req.Key
	if key == "" {
		key = r.Header.Get(resilience.IdempotencyHeader)
	}
	applied, err := c.ObserveKeyed(r.Context(), req.Seq, float64(req.Y), float64(req.Cost), key)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"accepted": applied})
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	c, err := s.campaign(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	var req PredictRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	resp, err := s.mgr.PredictCtx(r.Context(), c, req.Points)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz reports liveness plus the resilience picture: admission
// watermark degradation, queue depth, and breaker states. Status is
// "degraded" (not an error code — the process IS alive) when the
// admission queue is above its high watermark or a breaker is open.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	total, terminal := s.mgr.CampaignCount()
	breakers := s.mgr.BreakerStates()
	status := "ok"
	depth := 0
	if s.adm != nil {
		depth = s.adm.Depth()
		if s.adm.Degraded() {
			status = "degraded"
		}
	}
	for _, st := range breakers {
		if st != "closed" {
			status = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":          status,
		"campaigns":       total,
		"terminal":        terminal,
		"admission_depth": depth,
		"breakers":        breakers,
	})
}

// handleMetrics streams the Default obs registry as JSONL (the same
// format DumpMetrics writes to a sink). WriteJSONL sanitizes the
// non-finite histogram extrema that a raw Snapshot would feed
// encoding/json.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	if err := obs.Default.WriteJSONL(w); err != nil {
		requestErrors.Inc()
	}
}
