package serve

import (
	"encoding/json"
	"fmt"
	"os"
)

// journalVersion is the on-disk checkpoint format version; loading
// rejects files written by an incompatible server.
const journalVersion = 1

// journalFile is the per-campaign checkpoint: the spec plus the ordered
// journal of oracle returns. It deliberately stores NO model state —
// resume replays the journal through the unchanged AL engine, which
// deterministically reconstructs every fit and RNG draw. ModelVersion
// and Fingerprint pin the model identity at save time purely as an
// integrity check on that replay.
type journalFile struct {
	Version      int           `json:"version"`
	ID           string        `json:"id"`
	Spec         CampaignSpec  `json:"spec"`
	Observations []Observation `json:"observations"`
	ModelVersion int           `json:"model_version"`
	Fingerprint  uint64        `json:"fingerprint,omitempty"`
	Done         bool          `json:"done"`
	Error        string        `json:"error,omitempty"`
}

// loadJournal reads and validates a campaign checkpoint.
func loadJournal(path string) (*journalFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("serve: read checkpoint: %w", err)
	}
	var jf journalFile
	if err := json.Unmarshal(data, &jf); err != nil {
		return nil, fmt.Errorf("serve: parse checkpoint %s: %w", path, err)
	}
	if jf.Version != journalVersion {
		return nil, fmt.Errorf("serve: checkpoint %s has version %d, want %d", path, jf.Version, journalVersion)
	}
	if jf.ID == "" {
		return nil, fmt.Errorf("serve: checkpoint %s has no campaign id", path)
	}
	if err := jf.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("serve: checkpoint %s: %w", path, err)
	}
	return &jf, nil
}
