package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strconv"

	"repro/internal/al"
	"repro/internal/faults"
	"repro/internal/obs"
)

// journalVersion is the on-disk checkpoint format version; loading
// rejects files written by an incompatible server.
//
// Version 2 is an append-only JSONL log: a header line, one line per
// accepted observation, and (after the engine finishes) a terminal
// line. Appending one observation is one write+fsync of one line, so a
// crash can lose at most the final, unacknowledged line — the loader
// drops a torn tail and resumes from the last complete record, which by
// construction is an observation the client was never acked for (or was
// acked for and will dedup via its idempotency key).
const journalVersion = 2

var (
	journalTruncations = obs.C("serve.journal.truncated")
	journalAppendErrs  = obs.C("serve.journal.append.errors")
	journalAppends     = obs.C("serve.journal.appends")
)

// ErrJournal marks an observation rejected because its journal append
// failed: the observation was NOT applied and the client must retry
// (HTTP 503 + Retry-After).
var ErrJournal = errors.New("serve: journal append failed")

// Appender is the append side of one campaign's journal. It is owned by
// the campaign actor goroutine — implementations need not be safe for
// concurrent use. A replication layer (internal/ring) may wrap a local
// Appender to ship every record to a follower BEFORE the local append
// returns, which composes with the service's journal-before-ack rule to
// give replicate-before-ack.
type Appender interface {
	// AppendObs durably appends one accepted observation, pinned to the
	// model version and fingerprint current at append time.
	AppendObs(o Observation, modelVersion int, fp uint64) error
	// AppendFinal appends the terminal outcome line.
	AppendFinal(state, errMsg string, converged bool, modelVersion int, fp uint64) error
	// Disable stops journaling without poisoning the stored prefix: the
	// valid prefix stays replayable (dataset campaigns use this after an
	// append failure instead of halting).
	Disable()
	// Close releases the journal. The campaign actor calls it on exit.
	Close() error
}

// encodeRecord renders one journal record as its canonical line
// (JSON + newline). Journals are byte-identical wherever this encoding
// is used, which is what lets the cluster layer ship raw lines and
// still satisfy the fingerprint-pinned replay-equivalence contract.
func encodeRecord(rec *journalRecord) ([]byte, error) {
	buf, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("serve: marshal journal record: %w", err)
	}
	return append(buf, '\n'), nil
}

// EncodeJournalHeader renders the canonical header line for a campaign
// journal. Exported for replication layers that rebuild journals from
// shipped lines.
func EncodeJournalHeader(id string, spec CampaignSpec) ([]byte, error) {
	return encodeRecord(&journalRecord{Header: &journalHeader{Version: journalVersion, ID: id, Spec: spec}})
}

// EncodeJournalObs renders the canonical observation line.
func EncodeJournalObs(o Observation, modelVersion int, fp uint64) ([]byte, error) {
	return encodeRecord(&journalRecord{Obs: &journalObs{
		X: o.X, Y: o.Y, Cost: o.Cost, Key: o.Key, MV: modelVersion, FP: fpHex(fp),
	}})
}

// EncodeJournalFinal renders the canonical terminal line.
func EncodeJournalFinal(state, errMsg string, converged bool, modelVersion int, fp uint64) ([]byte, error) {
	return encodeRecord(&journalRecord{Final: &journalFinal{
		State: state, Error: errMsg, Converged: converged, MV: modelVersion, FP: fpHex(fp),
	}})
}

// errJournalDirty means a previous append left the file tail in an
// unknown state (torn write, or a failed write that could not be rolled
// back); the writer refuses everything until the next boot re-validates
// the file.
var errJournalDirty = errors.New("serve: journal writer dirty, restart required")

// journalRecord is one line of the v2 journal; exactly one of the three
// fields is set.
type journalRecord struct {
	Header *journalHeader `json:"h,omitempty"`
	Obs    *journalObs    `json:"o,omitempty"`
	Final  *journalFinal  `json:"f,omitempty"`
}

// journalHeader is the first line: identity plus the spec the campaign
// is rebuilt from on resume.
type journalHeader struct {
	Version int          `json:"version"`
	ID      string       `json:"id"`
	Spec    CampaignSpec `json:"spec"`
}

// journalObs is one accepted oracle return. MV/FP pin the model
// identity at append time (hex fingerprint, "" before the first fit);
// replay must reproduce the same fingerprint at the same version or the
// campaign fails instead of serving silently diverged suggestions. X is
// the measured input point — informational for replay, load-bearing for
// surrogate training (the field is additive, so version-2 journals
// written without it still load).
type journalObs struct {
	X    []float64    `json:"x,omitempty"`
	Y    al.JSONFloat `json:"y"`
	Cost al.JSONFloat `json:"cost"`
	Key  string       `json:"key,omitempty"`
	MV   int          `json:"mv,omitempty"`
	FP   string       `json:"fp,omitempty"`
}

// journalFinal records the engine's outcome. Resume strips it (the
// replayed engine re-derives and re-appends it), so it is informational
// for humans and external tools reading the file.
type journalFinal struct {
	State     string `json:"state"`
	Error     string `json:"error,omitempty"`
	Converged bool   `json:"converged,omitempty"`
	MV        int    `json:"mv,omitempty"`
	FP        string `json:"fp,omitempty"`
}

// journalFile is the loaded view of a checkpoint. ModelVersion and
// Fingerprint carry the integrity pin of the LAST complete observation;
// appendOffset is the byte offset where resume continues appending —
// past the last complete observation, excluding any terminal line and
// any torn tail.
type journalFile struct {
	Version      int
	ID           string
	Spec         CampaignSpec
	Observations []Observation
	ModelVersion int
	Fingerprint  uint64
	Done         bool
	Error        string

	appendOffset int64
	truncated    bool // a torn tail was dropped during load
}

func fpHex(fp uint64) string {
	if fp == 0 {
		return ""
	}
	return strconv.FormatUint(fp, 16)
}

// loadJournal reads and validates a campaign checkpoint, tolerating a
// torn final line: the tail is dropped (with a serve.journal.truncated
// event) and the journal is valid up to the last complete record.
func loadJournal(path string) (*journalFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("serve: read checkpoint: %w", err)
	}
	return parseJournal(data, path)
}

// parseJournal applies the journal crash-recovery rules to raw bytes.
// src names the source (a path or store key) in errors and events.
func parseJournal(data []byte, src string) (*journalFile, error) {
	path := src
	jf := &journalFile{Version: journalVersion}
	off := 0
	n := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// Unterminated tail: a torn append. Drop it.
			jf.truncated = true
			journalTruncations.Inc()
			obs.Emit("serve.journal.truncated", map[string]any{
				"path": path, "dropped_bytes": len(data) - off, "reason": "torn tail",
			})
			break
		}
		line := data[off : off+nl]
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			if off+nl+1 >= len(data) {
				// Last line: a tear that happened to end at a byte that
				// looks like a newline. Same recovery as an open tail.
				jf.truncated = true
				journalTruncations.Inc()
				obs.Emit("serve.journal.truncated", map[string]any{
					"path": path, "dropped_bytes": len(line) + 1, "reason": "unparsable tail",
				})
				break
			}
			// Corruption in the middle of the file is not a crash
			// artifact; refuse to guess.
			return nil, fmt.Errorf("serve: checkpoint %s: corrupt record %d: %w", path, n, err)
		}
		switch {
		case rec.Header != nil:
			if n != 0 {
				return nil, fmt.Errorf("serve: checkpoint %s: header not first", path)
			}
			if rec.Header.Version != journalVersion {
				return nil, fmt.Errorf("serve: checkpoint %s has version %d, want %d", path, rec.Header.Version, journalVersion)
			}
			jf.ID = rec.Header.ID
			jf.Spec = rec.Header.Spec
			jf.appendOffset = int64(off + nl + 1)
		case rec.Obs != nil:
			jf.Observations = append(jf.Observations, Observation{
				X: rec.Obs.X, Y: rec.Obs.Y, Cost: rec.Obs.Cost, Key: rec.Obs.Key,
			})
			if rec.Obs.MV > 0 {
				jf.ModelVersion = rec.Obs.MV
				jf.Fingerprint, _ = strconv.ParseUint(rec.Obs.FP, 16, 64)
			}
			jf.appendOffset = int64(off + nl + 1)
		case rec.Final != nil:
			jf.Done = rec.Final.State == StateDone
			jf.Error = rec.Final.Error
			// appendOffset intentionally not advanced: resume overwrites
			// the terminal line.
		default:
			return nil, fmt.Errorf("serve: checkpoint %s: empty record %d", path, n)
		}
		n++
		off += nl + 1
	}
	if n == 0 {
		return nil, fmt.Errorf("serve: checkpoint %s is empty", path)
	}
	if jf.ID == "" {
		return nil, fmt.Errorf("serve: checkpoint %s has no campaign id", path)
	}
	if err := jf.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("serve: checkpoint %s: %w", path, err)
	}
	return jf, nil
}

// journalWriter is the append side of the v2 log. It is owned by the
// campaign actor goroutine: no method is safe for concurrent use.
type journalWriter struct {
	path string
	f    *os.File
	off  int64 // end of the last complete record

	// seq numbers appends across the journal's whole life (resume
	// continues the count) so torn-write chaos decisions are a pure
	// function of (seed, append index).
	seq  int
	tear faults.TornWriteConfig

	// dirty: the file tail is unknown (torn write or unrecoverable
	// failed write) — fail closed until a restart re-validates the file.
	// broken: journaling is disabled for this campaign (dataset
	// campaigns keep running on a valid prefix instead of halting).
	dirty  bool
	broken bool
}

// createJournal starts a fresh journal: truncate, header line, fsync.
func createJournal(path, id string, spec CampaignSpec, tear faults.TornWriteConfig) (*journalWriter, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: create journal: %w", err)
	}
	w := &journalWriter{path: path, f: f, tear: tear}
	if err := w.write(&journalRecord{Header: &journalHeader{Version: journalVersion, ID: id, Spec: spec}}); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("serve: write journal header: %w", err)
	}
	return w, nil
}

// openJournalAt reopens an existing journal for appending: the file is
// truncated to off (dropping torn tails and stale terminal lines the
// loader skipped) and the append counter continues from seqBase.
func openJournalAt(path string, off int64, seqBase int, tear faults.TornWriteConfig) (*journalWriter, error) {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: open journal: %w", err)
	}
	if err := f.Truncate(off); err != nil {
		f.Close()
		return nil, fmt.Errorf("serve: trim journal tail: %w", err)
	}
	if _, err := f.Seek(off, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("serve: seek journal: %w", err)
	}
	return &journalWriter{path: path, f: f, off: off, seq: seqBase, tear: tear}, nil
}

// write appends one record as a single line+fsync. On failure it rolls
// the file back to the last complete record so a retry starts clean;
// when even the rollback fails (or a torn write simulated a crash), the
// writer goes dirty and fails closed.
func (w *journalWriter) write(rec *journalRecord) error {
	if w.dirty {
		return errJournalDirty
	}
	if w.broken {
		return errJournalDirty
	}
	buf, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	w.seq++
	if frac, torn := faults.TearDecision(w.tear, w.seq); torn {
		// Chaos: deliver a prefix and "crash". The tail is now unknown,
		// exactly as after a real power loss mid-write.
		cut := int(frac * float64(len(buf)))
		if cut < 1 {
			cut = 1
		}
		if cut >= len(buf) {
			cut = len(buf) - 1
		}
		w.f.Write(buf[:cut])
		w.f.Sync()
		w.dirty = true
		return fmt.Errorf("%w: torn append %d (%d of %d bytes)", errJournalDirty, w.seq, cut, len(buf))
	}
	if _, err := w.f.Write(buf); err != nil {
		// A failed write may still have landed bytes; restore the
		// known-good prefix so the journal stays parseable.
		if terr := w.f.Truncate(w.off); terr != nil {
			w.dirty = true
		} else if _, serr := w.f.Seek(w.off, 0); serr != nil {
			w.dirty = true
		}
		return fmt.Errorf("serve: journal append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		if terr := w.f.Truncate(w.off); terr != nil {
			w.dirty = true
		} else if _, serr := w.f.Seek(w.off, 0); serr != nil {
			w.dirty = true
		}
		return fmt.Errorf("serve: journal sync: %w", err)
	}
	w.off += int64(len(buf))
	return nil
}

// AppendObs implements Appender.
func (w *journalWriter) AppendObs(o Observation, mv int, fp uint64) error {
	return w.write(&journalRecord{Obs: &journalObs{
		X: o.X, Y: o.Y, Cost: o.Cost, Key: o.Key, MV: mv, FP: fpHex(fp),
	}})
}

// AppendFinal implements Appender.
func (w *journalWriter) AppendFinal(state, errMsg string, converged bool, mv int, fp uint64) error {
	return w.write(&journalRecord{Final: &journalFinal{
		State: state, Error: errMsg, Converged: converged, MV: mv, FP: fpHex(fp),
	}})
}

// Disable stops journaling without poisoning the file: the valid prefix
// stays replayable. Used by dataset campaigns after an append failure —
// skipping an entry would corrupt replay order, so they stop journaling
// entirely and re-measure on resume.
func (w *journalWriter) Disable() { w.broken = true }

// Close implements Appender.
func (w *journalWriter) Close() error {
	if w == nil || w.f == nil {
		return nil
	}
	return w.f.Close()
}
