package serve

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/al"
)

// Campaign lifecycle states (see DESIGN.md §9). Transitions:
//
//	created ──▶ replaying ──▶ running ⇄ waiting ──▶ done
//	                             │                  ├─▶ failed
//	                             └──────────────────┴─▶ stopped
//
// "waiting" only occurs for client-sourced campaigns (a suggestion is
// outstanding); dataset-backed campaigns go straight from running to a
// terminal state. "stopped" is the graceful-shutdown terminal: the
// journal is flushed and the campaign resumes on the next boot.
const (
	StateReplaying = "replaying"
	StateRunning   = "running"
	StateWaiting   = "waiting"
	StateDone      = "done"
	StateFailed    = "failed"
	StateStopped   = "stopped"
)

// CampaignSpec is the client-supplied definition of a campaign, POSTed
// to /campaigns and persisted verbatim in the checkpoint so a resumed
// campaign is rebuilt from exactly the spec that created it.
type CampaignSpec struct {
	// Name is an optional human-readable label.
	Name string `json:"name,omitempty"`

	// Source selects who performs experiments: "dataset" (the server
	// measures a registered dataset itself) or "client" (the campaign
	// suggests, the client measures and POSTs the observation back).
	Source string `json:"source"`

	// Dataset configures the server-side dataset for Source "dataset".
	Dataset *DatasetSpec `json:"dataset,omitempty"`

	// Candidates is the finite candidate grid for Source "client", one
	// input point per row. Ignored for dataset campaigns (the dataset
	// rows are the grid).
	Candidates [][]float64 `json:"candidates,omitempty"`

	// Seeds indexes the candidate rows measured before learning starts
	// (≥ 1 required).
	Seeds []int `json:"seeds"`

	// Strategy is any name in the al strategy registry
	// (al.StrategyNames; see STRATEGIES.md): "variance-reduction",
	// "cost-efficiency", "cost-exponent", "thompson", "random",
	// "eps-greedy", "qbc", "qbc-cost", "emcm-grad" or "diversity".
	// Gamma/Epsilon/K/Lambda/Perturb parameterize the rules that use
	// them; Epsilon > 0 wraps any rule in ε-greedy exploration.
	Strategy string  `json:"strategy"`
	Gamma    float64 `json:"gamma,omitempty"`
	Epsilon  float64 `json:"epsilon,omitempty"`
	K        int     `json:"k,omitempty"`
	Lambda   float64 `json:"lambda,omitempty"`
	Perturb  float64 `json:"perturb,omitempty"`

	// Iterations bounds the number of AL steps (0 = until pool size).
	Iterations int `json:"iterations,omitempty"`

	// Budget stops the campaign once cumulative experiment cost reaches
	// it (0 = unlimited).
	Budget float64 `json:"budget,omitempty"`

	// Loop knobs, mirroring al.LoopConfig (zero values take the loop's
	// defaults).
	NoiseFloor      float64 `json:"noise_floor,omitempty"`
	Restarts        int     `json:"restarts,omitempty"`
	ReoptimizeEvery int     `json:"reoptimize_every,omitempty"`
	GuardSigma      float64 `json:"guard_sigma,omitempty"`
	RetryBudget     int     `json:"retry_budget,omitempty"`
	ConvergeWindow  int     `json:"converge_window,omitempty"`
	ConvergeTol     float64 `json:"converge_tol,omitempty"`

	// Model selects the regression tier backing the campaign: "dense"
	// (or empty — the exact GP), "sparse" (inducing-point approximation
	// for campaigns past ~10⁴ observations), or "auto" (size- and
	// evidence-based tier selection). Persisted in the checkpoint like
	// every other spec field, so a resumed campaign replays on the tier
	// that wrote its journal.
	Model string `json:"model,omitempty"`

	// Inducing sizes the sparse tier's inducing set (0 = default 64).
	Inducing int `json:"inducing,omitempty"`

	// Crossover is the auto tier's dense/sparse boundary in training
	// points (0 = default 512).
	Crossover int `json:"crossover,omitempty"`

	// Seed seeds the campaign's deterministic RNG (default 1). Two
	// campaigns with equal specs produce identical suggestion streams.
	Seed int64 `json:"seed,omitempty"`
}

// DatasetSpec selects and parameterizes a registered dataset generator
// for dataset-backed campaigns.
type DatasetSpec struct {
	// Name is the registered generator ("synthetic" is built in;
	// cmd/alserve registers "performance").
	Name string `json:"name"`

	// Seed drives the generator (default 1).
	Seed int64 `json:"seed,omitempty"`

	// N and Noise parameterize the synthetic generator (points and
	// response noise SD).
	N     int     `json:"n,omitempty"`
	Noise float64 `json:"noise,omitempty"`
}

// ErrSpec marks client-caused spec validation failures (HTTP 400).
var ErrSpec = errors.New("invalid campaign spec")

// Validate checks the spec and normalizes defaults in place.
func (s *CampaignSpec) Validate() error {
	if s.Seed == 0 {
		s.Seed = 1
	}
	switch s.Source {
	case "client":
		if len(s.Candidates) == 0 {
			return fmt.Errorf("%w: client campaigns need a candidate grid", ErrSpec)
		}
		dims := len(s.Candidates[0])
		if dims == 0 {
			return fmt.Errorf("%w: empty candidate point", ErrSpec)
		}
		for i, row := range s.Candidates {
			if len(row) != dims {
				return fmt.Errorf("%w: candidate %d has %d dims, want %d", ErrSpec, i, len(row), dims)
			}
			for _, v := range row {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("%w: candidate %d has a non-finite coordinate", ErrSpec, i)
				}
			}
		}
		for _, sd := range s.Seeds {
			if sd < 0 || sd >= len(s.Candidates) {
				return fmt.Errorf("%w: seed index %d outside candidate grid of %d", ErrSpec, sd, len(s.Candidates))
			}
		}
	case "dataset":
		if s.Dataset == nil || s.Dataset.Name == "" {
			return fmt.Errorf("%w: dataset campaigns need a dataset name", ErrSpec)
		}
		if s.Dataset.Seed == 0 {
			s.Dataset.Seed = 1
		}
	default:
		return fmt.Errorf("%w: source must be \"client\" or \"dataset\", got %q", ErrSpec, s.Source)
	}
	if len(s.Seeds) == 0 {
		return fmt.Errorf("%w: at least one seed experiment index is required", ErrSpec)
	}
	if _, err := s.strategy(); err != nil {
		return err
	}
	if s.Iterations < 0 {
		return fmt.Errorf("%w: negative iterations", ErrSpec)
	}
	switch s.Model {
	case "", al.ModelDense, al.ModelSparse, al.ModelAuto:
	default:
		return fmt.Errorf("%w: unknown model tier %q (want dense, sparse, or auto)", ErrSpec, s.Model)
	}
	if s.Inducing < 0 {
		return fmt.Errorf("%w: negative inducing count", ErrSpec)
	}
	if s.Crossover < 0 {
		return fmt.Errorf("%w: negative crossover", ErrSpec)
	}
	return nil
}

// strategy resolves the named selection rule through the al registry,
// mapping spec knobs onto al.StrategyParams (ε-greedy wrapping
// included).
func (s *CampaignSpec) strategy() (al.Strategy, error) {
	strat, err := al.NewStrategy(s.Strategy, al.StrategyParams{
		Gamma:   s.Gamma,
		Epsilon: s.Epsilon,
		K:       s.K,
		Lambda:  s.Lambda,
		Perturb: s.Perturb,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSpec, err)
	}
	return strat, nil
}

// loopConfig maps the spec onto the AL loop configuration the engine
// runs. response is the dataset response column ("y" for client
// campaigns, which never read a dataset).
func (s *CampaignSpec) loopConfig(response string) (al.LoopConfig, error) {
	strat, err := s.strategy()
	if err != nil {
		return al.LoopConfig{}, err
	}
	return al.LoopConfig{
		Response:        response,
		Strategy:        strat,
		Iterations:      s.Iterations,
		NoiseFloor:      s.NoiseFloor,
		Restarts:        s.Restarts,
		ReoptimizeEvery: s.ReoptimizeEvery,
		GuardSigma:      s.GuardSigma,
		RetryBudget:     s.RetryBudget,
		ConvergeWindow:  s.ConvergeWindow,
		ConvergeTol:     s.ConvergeTol,
		CostBudget:      s.Budget,
		AllowRevisit:    true,
		Seed:            s.Seed,
		Model:           s.Model,
		ModelOptions: al.ModelOptions{
			Inducing:  s.Inducing,
			Crossover: s.Crossover,
		},
	}, nil
}

// Observation is one accepted oracle return — the unit of the
// event-sourced journal. Y may be non-finite (a client reporting a
// failed measurement), so both fields use the NaN-safe JSON float.
// Key is the client's idempotency key, persisted so resume rebuilds the
// dedup index and an at-least-once client can never double-feed the
// engine across a crash. X is the input point the observation answered
// (the suggestion's coordinates); replay ignores it, but recording it
// makes every journal a (x, y, cost) training set for surrogate oracles
// (internal/surrogate). Journals written before X existed load with a
// nil X.
type Observation struct {
	X    []float64    `json:"x,omitempty"`
	Y    al.JSONFloat `json:"y"`
	Cost al.JSONFloat `json:"cost"`
	Key  string       `json:"key,omitempty"`
}

// Suggestion is the campaign's pending next experiment: the input point
// the engine is blocked on, fenced by a sequence number so an
// observation can never be applied to the wrong suggestion.
type Suggestion struct {
	Seq int       `json:"seq"`
	X   []float64 `json:"x"`
}

// ObserveRequest is the body of POST /campaigns/{id}/observe. Key is an
// optional idempotency key (the Idempotency-Key header also works):
// resubmitting an observation with a key the campaign has already
// applied returns the original acceptance instead of a seq-mismatch
// error, making retries after lost responses safe.
type ObserveRequest struct {
	Seq  int          `json:"seq"`
	Y    al.JSONFloat `json:"y"`
	Cost al.JSONFloat `json:"cost"`
	Key  string       `json:"key,omitempty"`
}

// PredictRequest is the body of POST /campaigns/{id}/predict: a batch
// of input points to evaluate under the campaign's current model.
type PredictRequest struct {
	Points [][]float64 `json:"points"`
}

// PredictResponse carries the batched predictive distribution. Means
// and SDs align with the request points; ModelVersion identifies the
// model snapshot that produced them (bumps invalidate cached entries by
// key construction), and CacheHits counts points served from the LRU.
type PredictResponse struct {
	ModelVersion int            `json:"model_version"`
	Means        []al.JSONFloat `json:"means"`
	SDs          []al.JSONFloat `json:"sds"`
	CacheHits    int            `json:"cache_hits"`
}

// CampaignStatus is the public snapshot of one campaign.
type CampaignStatus struct {
	ID           string          `json:"id"`
	Name         string          `json:"name,omitempty"`
	Source       string          `json:"source"`
	Strategy     string          `json:"strategy"`
	State        string          `json:"state"`
	Records      []al.JSONRecord `json:"records,omitempty"`
	Observations int             `json:"observations"`
	ModelVersion int             `json:"model_version"`
	Fingerprint  uint64          `json:"fingerprint,omitempty"`
	Pending      *Suggestion     `json:"pending,omitempty"`
	Converged    bool            `json:"converged,omitempty"`
	Error        string          `json:"error,omitempty"`
}
