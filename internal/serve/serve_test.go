package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/al"
	"repro/internal/gp"
	"repro/internal/mat"
)

// testGrid is a small 1-D candidate grid shared by the client-mode
// tests.
func testGrid() [][]float64 {
	out := make([][]float64, 12)
	for i := range out {
		out[i] = []float64{3 * float64(i) / 11}
	}
	return out
}

// testOracle is the deterministic noise-free measurement the client
// drivers answer suggestions with.
func testOracle(x []float64) (y, cost float64) {
	y = math.Sin(2*x[0]) + 0.5*x[0]
	return y, 1 + x[0]
}

func clientSpec(seed int64) CampaignSpec {
	return CampaignSpec{
		Name:       "trace",
		Source:     "client",
		Candidates: testGrid(),
		Seeds:      []int{0, 11},
		Strategy:   "variance-reduction",
		Iterations: 5,
		Restarts:   1,
		Seed:       seed,
	}
}

// directRun executes the same campaign spec straight through
// al.RunOnline — the reference trace every server-driven run must
// reproduce bit for bit.
func directRun(t *testing.T, spec CampaignSpec) al.Result {
	t.Helper()
	if err := spec.Validate(); err != nil {
		t.Fatalf("spec: %v", err)
	}
	cfg, err := spec.loopConfig("y")
	if err != nil {
		t.Fatalf("loopConfig: %v", err)
	}
	oracle := al.OracleFunc(func(x []float64) (float64, float64, error) {
		y, c := testOracle(x)
		return y, c, nil
	})
	res, err := al.RunOnline(mat.NewFromRows(spec.Candidates), spec.Seeds, oracle, cfg, rand.New(rand.NewSource(spec.Seed)))
	if err != nil {
		t.Fatalf("RunOnline: %v", err)
	}
	return res
}

// sameRecords compares two traces bit-exactly (NaN == NaN).
func sameRecords(a, b []al.IterationRecord) error {
	if len(a) != len(b) {
		return fmt.Errorf("record count %d vs %d", len(a), len(b))
	}
	bits := math.Float64bits
	for i := range a {
		x, y := a[i], b[i]
		if x.Iter != y.Iter || x.Row != y.Row || x.Train != y.Train ||
			bits(x.SDChosen) != bits(y.SDChosen) || bits(x.AMSD) != bits(y.AMSD) ||
			bits(x.RMSE) != bits(y.RMSE) || bits(x.Coverage) != bits(y.Coverage) ||
			bits(x.CumCost) != bits(y.CumCost) || bits(x.LML) != bits(y.LML) ||
			bits(x.Noise) != bits(y.Noise) {
			return fmt.Errorf("record %d differs: %+v vs %+v", i, x, y)
		}
	}
	return nil
}

func isTerminal(state string) bool {
	switch state {
	case StateDone, StateFailed, StateStopped:
		return true
	}
	return false
}

// driveCampaign answers a client campaign's suggestions with testOracle
// until it reaches a terminal state (or maxObs observations when
// maxObs > 0), returning the suggested points in order.
func driveCampaign(t *testing.T, c *Campaign, maxObs int) [][]float64 {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	var xs [][]float64
	for {
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s: drive timeout after %d observations", c.ID, len(xs))
		}
		sug, err := c.Suggest()
		if err != nil {
			st, serr := c.Status(false)
			if serr != nil {
				t.Fatalf("status: %v", serr)
			}
			if isTerminal(st.State) {
				return xs
			}
			time.Sleep(time.Millisecond)
			continue
		}
		y, cost := testOracle(sug.X)
		if err := c.Observe(sug.Seq, y, cost); err != nil {
			t.Fatalf("observe seq %d: %v", sug.Seq, err)
		}
		xs = append(xs, sug.X)
		if maxObs > 0 && len(xs) >= maxObs {
			return xs
		}
	}
}

func waitTerminal(t *testing.T, c *Campaign) CampaignStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := c.Status(false)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		if isTerminal(st.State) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s stuck in state %s", c.ID, st.State)
		}
		time.Sleep(time.Millisecond)
	}
}

// expectTrace checks a finished campaign against the reference
// al.RunOnline result: identical records and an identical suggestion
// stream — the seed experiments (measured through the oracle first)
// followed by the selected training rows, in order.
func expectTrace(t *testing.T, c *Campaign, xs [][]float64, ref al.Result) {
	t.Helper()
	recs, err := c.Records()
	if err != nil {
		t.Fatalf("records: %v", err)
	}
	if err := sameRecords(recs, ref.Records); err != nil {
		t.Errorf("campaign %s trace diverges from direct RunOnline: %v", c.ID, err)
	}
	grid := testGrid()
	wantRows := append(append([]int(nil), c.Spec.Seeds...), ref.TrainRows...)
	if len(xs) != len(wantRows) {
		t.Fatalf("campaign %s measured %d points, reference measured %d", c.ID, len(xs), len(wantRows))
	}
	for i, x := range xs {
		want := grid[wantRows[i]]
		if math.Float64bits(x[0]) != math.Float64bits(want[0]) {
			t.Fatalf("suggestion %d: got x=%v, reference row %d has x=%v", i, x, wantRows[i], want)
		}
	}
}

func TestClientCampaignTraceMatchesRunOnline(t *testing.T) {
	spec := clientSpec(7)
	ref := directRun(t, spec)

	defer checkLeaked(t)
	mgr := NewManager(Config{})
	defer mgr.Shutdown(context.Background())
	c, err := mgr.Create(spec)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	xs := driveCampaign(t, c, 0)
	st := waitTerminal(t, c)
	if st.State != StateDone {
		t.Fatalf("campaign ended %s (err %q), want done", st.State, st.Error)
	}
	expectTrace(t, c, xs, ref)
	if st.ModelVersion == 0 || st.Fingerprint == 0 {
		t.Fatalf("terminal status missing model identity: %+v", st)
	}
}

func TestDatasetCampaignMatchesRunOnline(t *testing.T) {
	spec := CampaignSpec{
		Source:     "dataset",
		Dataset:    &DatasetSpec{Name: "synthetic", Seed: 3, N: 14, Noise: 0.05},
		Seeds:      []int{0, 13},
		Strategy:   "cost-efficiency",
		Iterations: 5,
		Restarts:   1,
		Seed:       11,
	}
	if err := spec.Validate(); err != nil {
		t.Fatalf("spec: %v", err)
	}

	// Reference: the same dataset measured through al.RunOnline directly.
	ds, response, err := lookupDataset(*spec.Dataset)
	if err != nil {
		t.Fatalf("dataset: %v", err)
	}
	all := make([]int, ds.Len())
	for i := range all {
		all[i] = i
	}
	cands := ds.Matrix(all)
	rows := make(map[string]int, ds.Len())
	for i := ds.Len() - 1; i >= 0; i-- {
		rows[xKey(cands.RawRow(i))] = i
	}
	cfg, err := spec.loopConfig(response)
	if err != nil {
		t.Fatalf("loopConfig: %v", err)
	}
	oracle := al.OracleFunc(func(x []float64) (float64, float64, error) {
		row, ok := rows[xKey(x)]
		if !ok {
			return 0, 0, fmt.Errorf("point %v not on grid", x)
		}
		return ds.RespAt(response, row), ds.CostAt(row), nil
	})
	ref, err := al.RunOnline(cands, spec.Seeds, oracle, cfg, rand.New(rand.NewSource(spec.Seed)))
	if err != nil {
		t.Fatalf("RunOnline: %v", err)
	}

	mgr := NewManager(Config{})
	defer mgr.Shutdown(context.Background())
	c, err := mgr.Create(spec)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	st := waitTerminal(t, c)
	if st.State != StateDone {
		t.Fatalf("campaign ended %s (err %q), want done", st.State, st.Error)
	}
	recs, err := c.Records()
	if err != nil {
		t.Fatalf("records: %v", err)
	}
	if err := sameRecords(recs, ref.Records); err != nil {
		t.Errorf("dataset campaign trace diverges: %v", err)
	}
	if want := len(spec.Seeds) + len(ref.TrainRows); st.Observations != want {
		t.Fatalf("journal has %d observations, reference measured %d", st.Observations, want)
	}
}

func TestResumeContinuesByteIdentically(t *testing.T) {
	spec := clientSpec(5)
	ref := directRun(t, spec)
	dir := t.TempDir()

	// First server lifetime: observe 4 points, then shut down gracefully
	// with the campaign mid-flight.
	mgr1 := NewManager(Config{CheckpointDir: dir})
	c1, err := mgr1.Create(spec)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	id := c1.ID
	xs := driveCampaign(t, c1, 4)
	if err := mgr1.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Second lifetime: resume from the checkpoint and finish.
	mgr2 := NewManager(Config{CheckpointDir: dir})
	defer mgr2.Shutdown(context.Background())
	n, err := mgr2.ResumeAll()
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if n != 1 {
		t.Fatalf("resumed %d campaigns, want 1", n)
	}
	c2, err := mgr2.Get(id)
	if err != nil {
		t.Fatalf("get resumed: %v", err)
	}
	xs = append(xs, driveCampaign(t, c2, 0)...)
	st := waitTerminal(t, c2)
	if st.State != StateDone {
		t.Fatalf("resumed campaign ended %s (err %q), want done", st.State, st.Error)
	}
	expectTrace(t, c2, xs, ref)
}

func TestResumeFinishedCampaignStaysDone(t *testing.T) {
	spec := clientSpec(9)
	dir := t.TempDir()
	mgr1 := NewManager(Config{CheckpointDir: dir})
	c1, err := mgr1.Create(spec)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	driveCampaign(t, c1, 0)
	ref, err := c1.Records()
	if err != nil {
		t.Fatalf("records: %v", err)
	}
	fp := waitTerminal(t, c1).Fingerprint
	if err := mgr1.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	mgr2 := NewManager(Config{CheckpointDir: dir})
	defer mgr2.Shutdown(context.Background())
	if _, err := mgr2.ResumeAll(); err != nil {
		t.Fatalf("resume: %v", err)
	}
	c2, err := mgr2.Get(c1.ID)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	st := waitTerminal(t, c2)
	if st.State != StateDone {
		t.Fatalf("replayed campaign ended %s, want done", st.State)
	}
	if st.Fingerprint != fp {
		t.Fatalf("replay fingerprint %x, original %x", st.Fingerprint, fp)
	}
	recs, err := c2.Records()
	if err != nil {
		t.Fatalf("records: %v", err)
	}
	if err := sameRecords(recs, ref); err != nil {
		t.Errorf("replayed trace diverges: %v", err)
	}
}

func TestResumeDetectsTamperedJournal(t *testing.T) {
	spec := clientSpec(13)
	dir := t.TempDir()
	mgr1 := NewManager(Config{CheckpointDir: dir})
	c1, err := mgr1.Create(spec)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	driveCampaign(t, c1, 4)
	id := c1.ID
	if err := mgr1.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Corrupt one journaled measurement: replay must not silently
	// continue from a different model than the checkpoint pinned.
	path := filepath.Join(dir, id+".json")
	jf, err := loadJournal(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if jf.Fingerprint == 0 || jf.ModelVersion == 0 {
		t.Fatalf("checkpoint carries no integrity pin: %+v", jf)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	lines := bytes.Split(data, []byte("\n"))
	// Line 0 is the header; tamper the second observation line.
	var rec journalRecord
	if err := json.Unmarshal(lines[2], &rec); err != nil || rec.Obs == nil {
		t.Fatalf("line 2 is not an observation: %v", err)
	}
	rec.Obs.Y += 0.25
	if lines[2], err = json.Marshal(&rec); err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := os.WriteFile(path, bytes.Join(lines, []byte("\n")), 0o644); err != nil {
		t.Fatalf("rewrite: %v", err)
	}

	mgr2 := NewManager(Config{CheckpointDir: dir})
	defer mgr2.Shutdown(context.Background())
	if _, err := mgr2.ResumeAll(); err != nil {
		t.Fatalf("resume: %v", err)
	}
	c2, err := mgr2.Get(id)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	st := waitTerminal(t, c2)
	if st.State != StateFailed {
		t.Fatalf("tampered campaign ended %s (err %q), want failed", st.State, st.Error)
	}
}

func TestManagerDeleteRemovesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	mgr := NewManager(Config{CheckpointDir: dir})
	defer mgr.Shutdown(context.Background())
	c, err := mgr.Create(clientSpec(1))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	driveCampaign(t, c, 2)
	path := filepath.Join(dir, c.ID+".json")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("checkpoint missing before delete: %v", err)
	}
	if err := mgr.Delete(c.ID); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("checkpoint survives delete: %v", err)
	}
	if _, err := mgr.Get(c.ID); err == nil {
		t.Fatal("deleted campaign still listed")
	}
	if err := mgr.Delete(c.ID); err == nil {
		t.Fatal("double delete did not error")
	}
}

func TestPredictCachesByModelVersion(t *testing.T) {
	spec := CampaignSpec{
		Source:     "dataset",
		Dataset:    &DatasetSpec{Name: "synthetic", N: 12},
		Seeds:      []int{0, 11},
		Iterations: 3,
		Restarts:   1,
	}
	mgr := NewManager(Config{CacheSize: 64})
	defer mgr.Shutdown(context.Background())
	c, err := mgr.Create(spec)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	waitTerminal(t, c)

	points := [][]float64{{0.5}, {1.5}, {2.5}}
	first, err := mgr.Predict(c, points)
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	if first.CacheHits != 0 {
		t.Fatalf("first predict reported %d cache hits", first.CacheHits)
	}
	second, err := mgr.Predict(c, points)
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	if second.CacheHits != len(points) {
		t.Fatalf("second predict hit %d of %d", second.CacheHits, len(points))
	}
	for i := range points {
		if second.Means[i] != first.Means[i] || second.SDs[i] != first.SDs[i] {
			t.Fatalf("cached prediction %d differs: %+v vs %+v", i, second, first)
		}
	}
	if _, err := mgr.Predict(c, [][]float64{{1, 2}}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, err := mgr.Predict(c, [][]float64{{math.NaN()}}); err == nil {
		t.Fatal("NaN point accepted")
	}
	if _, err := mgr.Predict(c, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}

func TestPredCacheLRU(t *testing.T) {
	p := newPredCache(2)
	p.put("a", prediction(1))
	p.put("b", prediction(2))
	p.put("c", prediction(3)) // evicts a
	if p.len() != 2 {
		t.Fatalf("len = %d, want 2", p.len())
	}
	if _, ok := p.get("a"); ok {
		t.Fatal("oldest entry not evicted")
	}
	if got, ok := p.get("b"); !ok || got.Mean != 2 {
		t.Fatalf("b: got %+v ok=%v", got, ok)
	}
	p.put("d", prediction(4)) // b was just used, so c is evicted
	if _, ok := p.get("c"); ok {
		t.Fatal("LRU order ignored recency")
	}
	if _, ok := p.get("b"); !ok {
		t.Fatal("recently used entry evicted")
	}
	p.put("b", prediction(9))
	if got, _ := p.get("b"); got.Mean != 9 {
		t.Fatalf("refresh kept stale value %v", got.Mean)
	}
}

func TestSpecValidation(t *testing.T) {
	grid := testGrid()
	cases := []struct {
		name string
		spec CampaignSpec
		ok   bool
	}{
		{"valid client", clientSpec(1), true},
		{"valid dataset", CampaignSpec{Source: "dataset", Dataset: &DatasetSpec{Name: "synthetic"}, Seeds: []int{0}}, true},
		{"unknown source", CampaignSpec{Source: "oracle", Seeds: []int{0}}, false},
		{"client without grid", CampaignSpec{Source: "client", Seeds: []int{0}}, false},
		{"ragged grid", CampaignSpec{Source: "client", Candidates: [][]float64{{1}, {1, 2}}, Seeds: []int{0}}, false},
		{"NaN candidate", CampaignSpec{Source: "client", Candidates: [][]float64{{math.NaN()}}, Seeds: []int{0}}, false},
		{"seed out of range", CampaignSpec{Source: "client", Candidates: grid, Seeds: []int{len(grid)}}, false},
		{"no seeds", CampaignSpec{Source: "client", Candidates: grid}, false},
		{"dataset without name", CampaignSpec{Source: "dataset", Dataset: &DatasetSpec{}, Seeds: []int{0}}, false},
		{"unknown dataset", CampaignSpec{Source: "dataset", Dataset: &DatasetSpec{Name: "nope"}, Seeds: []int{0}}, true}, // caught at create, not validate
		{"unknown strategy", CampaignSpec{Source: "client", Candidates: grid, Seeds: []int{0}, Strategy: "gradient"}, false},
		{"negative iterations", CampaignSpec{Source: "client", Candidates: grid, Seeds: []int{0}, Iterations: -1}, false},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: validation passed", tc.name)
		}
	}
	// The unknown dataset IS rejected at campaign creation.
	mgr := NewManager(Config{})
	defer mgr.Shutdown(context.Background())
	if _, err := mgr.Create(CampaignSpec{Source: "dataset", Dataset: &DatasetSpec{Name: "nope"}, Seeds: []int{0}}); err == nil {
		t.Error("unknown dataset accepted at create")
	}
}

// --- HTTP layer ---

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Manager) {
	t.Helper()
	// Registered first so it runs LAST (cleanups are LIFO): after the
	// shutdown below, no campaign goroutine may survive.
	t.Cleanup(func() { checkLeaked(t) })
	mgr := NewManager(cfg)
	srv := httptest.NewServer(NewServer(mgr))
	t.Cleanup(func() {
		srv.Close()
		mgr.Shutdown(context.Background())
	})
	return srv, mgr
}

// tryJSON is the goroutine-safe request helper: unlike doJSON it never
// calls t.Fatal, so stress-test workers can use it off the test
// goroutine.
func tryJSON(client *http.Client, method, url string, body, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, fmt.Errorf("decode %s %s: %w (%s)", method, url, err, data)
		}
	}
	return resp.StatusCode, nil
}

func doJSON(t *testing.T, client *http.Client, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode %s %s: %v (%s)", method, url, err, data)
		}
	}
	return resp.StatusCode
}

// driveHTTP answers a client campaign's suggestions over the HTTP API
// until it reaches a terminal state, returning the suggested points.
func driveHTTP(t *testing.T, srv *httptest.Server, id string) [][]float64 {
	t.Helper()
	client := srv.Client()
	deadline := time.Now().Add(60 * time.Second)
	var xs [][]float64
	for {
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s: HTTP drive timeout after %d observations", id, len(xs))
		}
		var sug Suggestion
		code := doJSON(t, client, "GET", srv.URL+"/campaigns/"+id+"/suggest", nil, &sug)
		switch code {
		case http.StatusOK:
			y, cost := testOracle(sug.X)
			req := ObserveRequest{Seq: sug.Seq, Y: al.JSONFloat(y), Cost: al.JSONFloat(cost)}
			if code := doJSON(t, client, "POST", srv.URL+"/campaigns/"+id+"/observe", req, nil); code != http.StatusOK {
				t.Fatalf("observe seq %d: HTTP %d", sug.Seq, code)
			}
			xs = append(xs, sug.X)
		case http.StatusConflict:
			var st CampaignStatus
			if code := doJSON(t, client, "GET", srv.URL+"/campaigns/"+id, nil, &st); code != http.StatusOK {
				t.Fatalf("status: HTTP %d", code)
			}
			if isTerminal(st.State) {
				return xs
			}
			time.Sleep(time.Millisecond)
		default:
			t.Fatalf("suggest: HTTP %d", code)
		}
	}
}

func TestHTTPCampaignLifecycle(t *testing.T) {
	spec := clientSpec(21)
	ref := directRun(t, spec)
	srv, mgr := newTestServer(t, Config{})
	client := srv.Client()

	var created CampaignStatus
	if code := doJSON(t, client, "POST", srv.URL+"/campaigns", spec, &created); code != http.StatusCreated {
		t.Fatalf("create: HTTP %d", code)
	}
	if created.ID == "" || created.Source != "client" {
		t.Fatalf("create returned %+v", created)
	}

	xs := driveHTTP(t, srv, created.ID)

	var final CampaignStatus
	if code := doJSON(t, client, "GET", srv.URL+"/campaigns/"+created.ID, nil, &final); code != http.StatusOK {
		t.Fatalf("status: HTTP %d", code)
	}
	if final.State != StateDone {
		t.Fatalf("campaign ended %s (err %q)", final.State, final.Error)
	}
	if len(final.Records) != len(ref.Records) {
		t.Fatalf("HTTP status carries %d records, reference has %d", len(final.Records), len(ref.Records))
	}
	c, err := mgr.Get(created.ID)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	expectTrace(t, c, xs, ref)

	// Predict over HTTP, twice: the second batch is all cache hits.
	preq := PredictRequest{Points: [][]float64{{0.25}, {1.25}}}
	var p1, p2 PredictResponse
	if code := doJSON(t, client, "POST", srv.URL+"/campaigns/"+created.ID+"/predict", preq, &p1); code != http.StatusOK {
		t.Fatalf("predict: HTTP %d", code)
	}
	if code := doJSON(t, client, "POST", srv.URL+"/campaigns/"+created.ID+"/predict", preq, &p2); code != http.StatusOK {
		t.Fatalf("predict: HTTP %d", code)
	}
	if p2.CacheHits != len(preq.Points) {
		t.Fatalf("second predict hit %d of %d", p2.CacheHits, len(preq.Points))
	}

	// List shows the campaign; delete removes it.
	var list struct {
		Campaigns []CampaignStatus `json:"campaigns"`
	}
	if code := doJSON(t, client, "GET", srv.URL+"/campaigns", nil, &list); code != http.StatusOK {
		t.Fatalf("list: HTTP %d", code)
	}
	if len(list.Campaigns) != 1 || list.Campaigns[0].ID != created.ID {
		t.Fatalf("list returned %+v", list)
	}
	if code := doJSON(t, client, "DELETE", srv.URL+"/campaigns/"+created.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("delete: HTTP %d", code)
	}
	if code := doJSON(t, client, "GET", srv.URL+"/campaigns/"+created.ID, nil, nil); code != http.StatusNotFound {
		t.Fatalf("status after delete: HTTP %d, want 404", code)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	client := srv.Client()
	spec := clientSpec(2)

	var created CampaignStatus
	if code := doJSON(t, client, "POST", srv.URL+"/campaigns", spec, &created); code != http.StatusCreated {
		t.Fatalf("create: HTTP %d", code)
	}
	id := created.ID

	// Predict before the first model exists → 409.
	if code := doJSON(t, client, "POST", srv.URL+"/campaigns/"+id+"/predict", PredictRequest{Points: [][]float64{{1}}}, nil); code != http.StatusConflict {
		t.Errorf("predict before model: HTTP %d, want 409", code)
	}

	// Wait for the first suggestion, then observe with the wrong seq → 409.
	deadline := time.Now().Add(30 * time.Second)
	var sug Suggestion
	for {
		if doJSON(t, client, "GET", srv.URL+"/campaigns/"+id+"/suggest", nil, &sug) == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no suggestion appeared")
		}
		time.Sleep(time.Millisecond)
	}
	bad := ObserveRequest{Seq: sug.Seq + 99, Y: 1, Cost: 1}
	if code := doJSON(t, client, "POST", srv.URL+"/campaigns/"+id+"/observe", bad, nil); code != http.StatusConflict {
		t.Errorf("seq mismatch: HTTP %d, want 409", code)
	}

	cases := []struct {
		name, method, path string
		body               any
		want               int
	}{
		{"bad create json", "POST", "/campaigns", map[string]any{"source": 42}, http.StatusBadRequest},
		{"unknown field", "POST", "/campaigns", map[string]any{"sauce": "client"}, http.StatusBadRequest},
		{"invalid spec", "POST", "/campaigns", CampaignSpec{Source: "client", Seeds: []int{0}}, http.StatusBadRequest},
		{"unknown campaign status", "GET", "/campaigns/c9999", nil, http.StatusNotFound},
		{"unknown campaign suggest", "GET", "/campaigns/c9999/suggest", nil, http.StatusNotFound},
		{"unknown campaign delete", "DELETE", "/campaigns/c9999", nil, http.StatusNotFound},
		{"observe bad body", "POST", "/campaigns/" + id + "/observe", map[string]any{"seq": "x"}, http.StatusBadRequest},
		{"predict bad body", "POST", "/campaigns/" + id + "/predict", map[string]any{"points": "x"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code := doJSON(t, client, tc.method, srv.URL+tc.path, tc.body, nil); code != tc.want {
			t.Errorf("%s: HTTP %d, want %d", tc.name, code, tc.want)
		}
	}

	// Health and metrics endpoints respond.
	var health map[string]any
	if code := doJSON(t, client, "GET", srv.URL+"/healthz", nil, &health); code != http.StatusOK {
		t.Errorf("healthz: HTTP %d", code)
	}
	if health["status"] != "ok" {
		t.Errorf("healthz body: %+v", health)
	}
	resp, err := client.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("metrics content type %q", ct)
	}
	if !bytes.Contains(body, []byte("serve.request")) {
		t.Errorf("metrics snapshot does not mention serve.request: %.200s", body)
	}
}

func prediction(mean float64) gp.Prediction { return gp.Prediction{Mean: mean} }
