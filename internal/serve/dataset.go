package serve

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/dataset"
)

// DatasetFunc builds a dataset for a dataset-backed campaign and names
// the response column the campaign models. Generators must be
// deterministic in the spec: resume rebuilds the candidate grid by
// calling the generator again with the spec stored in the checkpoint.
type DatasetFunc func(spec DatasetSpec) (*dataset.Dataset, string, error)

var (
	datasetsMu sync.RWMutex
	datasets   = map[string]DatasetFunc{}
)

// RegisterDataset makes a generator available to dataset-backed
// campaigns under the given name. The "synthetic" generator is built
// in; cmd/alserve registers "performance" (the paper's §V-B study
// subset) at startup. Safe for concurrent use.
func RegisterDataset(name string, fn DatasetFunc) {
	datasetsMu.Lock()
	defer datasetsMu.Unlock()
	datasets[name] = fn
}

// DatasetNames lists the registered generators, sorted.
func DatasetNames() []string {
	datasetsMu.RLock()
	defer datasetsMu.RUnlock()
	out := make([]string, 0, len(datasets))
	for name := range datasets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func lookupDataset(spec DatasetSpec) (*dataset.Dataset, string, error) {
	datasetsMu.RLock()
	fn := datasets[spec.Name]
	datasetsMu.RUnlock()
	if fn == nil {
		return nil, "", fmt.Errorf("%w: unknown dataset %q (registered: %v)", ErrSpec, spec.Name, DatasetNames())
	}
	return fn(spec)
}

// syntheticDataset is the built-in 1-D benchmark: y = sin(2x) + x/2
// plus Gaussian noise on [0, 4], with cost 10^y — the same shape the
// AL unit tests model, cheap enough for stress tests and demos.
func syntheticDataset(spec DatasetSpec) (*dataset.Dataset, string, error) {
	n := spec.N
	if n <= 0 {
		n = 40
	}
	if n < 2 {
		n = 2
	}
	noise := spec.Noise
	if noise < 0 || math.IsNaN(noise) {
		noise = 0
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	d := dataset.New([]string{"x"}, []string{"y"})
	for i := 0; i < n; i++ {
		x := 4 * float64(i) / float64(n-1)
		y := math.Sin(2*x) + 0.5*x + noise*rng.NormFloat64()
		if err := d.AddRow([]float64{x}, []float64{y}, nil, math.Pow(10, y)); err != nil {
			return nil, "", err
		}
	}
	return d, "y", nil
}

func init() {
	RegisterDataset("synthetic", syntheticDataset)
}
