package serve

import (
	"container/list"
	"sync"

	"repro/internal/gp"
	"repro/internal/obs"
)

// Cache metrics (see OBSERVABILITY.md): hits and misses per looked-up
// point, evictions per LRU displacement, and the current entry count.
var (
	cacheHits      = obs.C("serve.cache.hit")
	cacheMisses    = obs.C("serve.cache.miss")
	cacheEvictions = obs.C("serve.cache.evictions")
	cacheSize      = obs.G("serve.cache.size")
)

// predCache is a bounded LRU of GP predictions shared by every campaign
// on the server, keyed on (campaign id, model version, input point bit
// pattern). The model version in the key IS the invalidation rule: a
// model update bumps the version, new requests form new keys, and the
// stale generation simply ages out — no entry for an old version is
// ever looked up again, so no invalidation sweep exists.
//
// The cache is guarded by a plain mutex: entries are tiny (two floats)
// and the critical section is a map lookup plus a list splice, orders
// of magnitude cheaper than the O(n²) GP inference behind a miss.
type predCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key  string
	pred gp.Prediction
}

func newPredCache(max int) *predCache {
	if max <= 0 {
		max = 4096
	}
	return &predCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached prediction for key and records hit/miss.
func (p *predCache) get(key string) (gp.Prediction, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	el, ok := p.items[key]
	if !ok {
		cacheMisses.Inc()
		return gp.Prediction{}, false
	}
	p.ll.MoveToFront(el)
	cacheHits.Inc()
	return el.Value.(*cacheEntry).pred, true
}

// put inserts or refreshes key, evicting the least recently used entry
// when full.
func (p *predCache) put(key string, pred gp.Prediction) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.items[key]; ok {
		el.Value.(*cacheEntry).pred = pred
		p.ll.MoveToFront(el)
		return
	}
	p.items[key] = p.ll.PushFront(&cacheEntry{key: key, pred: pred})
	if p.ll.Len() > p.max {
		oldest := p.ll.Back()
		p.ll.Remove(oldest)
		delete(p.items, oldest.Value.(*cacheEntry).key)
		cacheEvictions.Inc()
	}
	cacheSize.Set(float64(p.ll.Len()))
}

// len reports the current entry count.
func (p *predCache) len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ll.Len()
}
