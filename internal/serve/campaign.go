package serve

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"sync"

	"repro/internal/al"
	"repro/internal/dataset"
	"repro/internal/gp"
	"repro/internal/mat"
	"repro/internal/obs"
)

// Campaign-level metrics (see OBSERVABILITY.md).
var (
	campaignsActive   = obs.G("serve.campaign.active")
	campaignsDone     = obs.C("serve.campaign.done")
	campaignsFailed   = obs.C("serve.campaign.failed")
	campaignsStopped  = obs.C("serve.campaign.stopped")
	observationsCount = obs.C("serve.observe.count")
	checkpointSaves   = obs.C("serve.checkpoint.saved")
	checkpointErrors  = obs.C("serve.checkpoint.errors")
)

// Errors surfaced to HTTP clients with specific status codes.
var (
	// ErrNoPending means no suggestion is outstanding (the engine is
	// computing, replaying, or the campaign is terminal).
	ErrNoPending = errors.New("serve: no suggestion pending")
	// ErrSeqMismatch means the observation's sequence number does not
	// fence the pending suggestion.
	ErrSeqMismatch = errors.New("serve: suggestion sequence mismatch")
	// ErrClosed means the campaign actor has shut down.
	ErrClosed = errors.New("serve: campaign closed")
	// ErrNoModel means no model has been fitted yet (observe the seed
	// experiments first).
	ErrNoModel = errors.New("serve: campaign has no fitted model yet")
)

// pending is the engine's outstanding suggestion: the reply channel is
// buffered so the actor can hand the observation to the blocked engine
// without ever blocking itself.
type pending struct {
	seq   int
	x     []float64
	reply chan Observation
}

// campaignState is every mutable field of a campaign. Only the actor
// goroutine touches it; handlers and the engine reach it through
// closures sent over the mailbox.
type campaignState struct {
	state        string
	records      []al.IterationRecord
	model        *gp.GP
	modelVersion int
	journal      []Observation
	pending      *pending
	seq          int
	converged    bool
	err          error
}

// Campaign is one live AL campaign: an al.RunOnline engine plus the
// actor goroutine that owns its state. All exported methods are safe
// for concurrent use from any goroutine.
type Campaign struct {
	ID   string
	Spec CampaignSpec

	ckptPath string // "" disables persistence

	cands    *mat.Dense
	response string
	ds       *dataset.Dataset // nil for client-sourced campaigns
	rows     map[string]int   // x-key → dataset row, dataset source only

	// Fingerprint expectation carried from a checkpoint into the
	// replaying engine (0 = no expectation).
	resumeVersion int
	resumeFP      uint64
	resumeLen     int // journal entries to replay

	mailbox    chan func(*campaignState)
	stopOnce   chan struct{} // closed by Stop
	engineDone chan struct{} // closed when the engine goroutine exits
	closed     chan struct{} // closed by close(): actor exits

	// lifecycle guards ONLY the closed flag, never campaign state: a
	// send may not race the actor's exit, so do() holds the read lock
	// across the mailbox send and close() takes the write lock before
	// closing. State itself stays mailbox-owned and mutex-free.
	lifecycle sync.RWMutex
	isClosed  bool
}

// newCampaign builds a campaign (fresh or resumed) and starts its actor
// and engine goroutines. journal is the replay prefix (nil for fresh
// campaigns); expectVersion/expectFP carry the checkpoint's integrity
// pin.
func newCampaign(id string, spec CampaignSpec, ckptPath string, journal []Observation, expectVersion int, expectFP uint64) (*Campaign, error) {
	c := &Campaign{
		ID:            id,
		Spec:          spec,
		ckptPath:      ckptPath,
		resumeVersion: expectVersion,
		resumeFP:      expectFP,
		resumeLen:     len(journal),
		mailbox:       make(chan func(*campaignState), 16),
		stopOnce:      make(chan struct{}),
		engineDone:    make(chan struct{}),
		closed:        make(chan struct{}),
	}
	switch spec.Source {
	case "client":
		c.cands = mat.NewFromRows(spec.Candidates)
		c.response = "y"
	case "dataset":
		ds, response, err := lookupDataset(*spec.Dataset)
		if err != nil {
			return nil, err
		}
		all := make([]int, ds.Len())
		for i := range all {
			all[i] = i
		}
		c.ds = ds
		c.response = response
		c.cands = ds.Matrix(all)
		c.rows = make(map[string]int, ds.Len())
		for i := ds.Len() - 1; i >= 0; i-- {
			// First matching row wins on duplicate inputs, so lookup is
			// deterministic.
			c.rows[xKey(c.cands.RawRow(i))] = i
		}
	default:
		return nil, fmt.Errorf("%w: unknown source %q", errSpec, spec.Source)
	}

	st := &campaignState{state: StateRunning, journal: journal}
	if len(journal) > 0 {
		st.state = StateReplaying
	}
	go c.actor(st)
	go c.engine(journal)
	return c, nil
}

// actor executes mailbox closures one at a time until close().
func (c *Campaign) actor(st *campaignState) {
	for {
		select {
		case fn := <-c.mailbox:
			fn(st)
		case <-c.closed:
			// close() holds the write lock while closing, so no sender
			// is mid-send now and none will start: drain what is queued
			// and exit.
			for {
				select {
				case fn := <-c.mailbox:
					fn(st)
				default:
					return
				}
			}
		}
	}
}

// do runs fn on the actor goroutine and waits for it. Returns false
// when the campaign is closed and fn did not run.
func (c *Campaign) do(fn func(*campaignState)) bool {
	c.lifecycle.RLock()
	if c.isClosed {
		c.lifecycle.RUnlock()
		return false
	}
	done := make(chan struct{})
	c.mailbox <- func(st *campaignState) { defer close(done); fn(st) }
	c.lifecycle.RUnlock()
	<-done
	return true
}

// engine runs al.RunOnline to completion, feeding the replay journal
// through the oracle first. It is the ONLY goroutine that calls into
// the AL loop, so engine-local state (replay cursor, model version,
// integrity flag) needs no synchronization.
func (c *Campaign) engine(replay []Observation) {
	defer close(c.engineDone)

	cfg, err := c.Spec.loopConfig(c.response)
	if err != nil {
		c.finalize(al.Result{}, err, false)
		return
	}

	version := 0
	corrupt := false
	cfg.OnModel = func(m *gp.GP) {
		version++
		if c.resumeFP != 0 && version == c.resumeVersion && m.Fingerprint() != c.resumeFP {
			corrupt = true
			obs.Emit("serve.resume.integrity", map[string]any{
				"campaign": c.ID, "version": version,
				"want": strconv.FormatUint(c.resumeFP, 16),
				"got":  strconv.FormatUint(m.Fingerprint(), 16),
			})
		}
		v := version
		c.do(func(st *campaignState) {
			st.model = m
			st.modelVersion = v
		})
	}
	cfg.OnRecord = func(r al.IterationRecord) {
		c.do(func(st *campaignState) { st.records = append(st.records, r) })
	}

	replayIdx := 0
	oracle := al.OracleFunc(func(x []float64) (float64, float64, error) {
		if corrupt {
			return 0, 0, fmt.Errorf("serve: resume integrity check failed at model version %d: %w", c.resumeVersion, al.ErrStopped)
		}
		if replayIdx < len(replay) {
			e := replay[replayIdx]
			replayIdx++
			if replayIdx == len(replay) {
				c.do(func(st *campaignState) {
					if st.state == StateReplaying {
						st.state = StateRunning
					}
				})
			}
			return float64(e.Y), float64(e.Cost), nil
		}
		return c.measure(x)
	})

	res, runErr := al.RunOnline(c.cands, c.Spec.Seeds, oracle, cfg, rand.New(rand.NewSource(c.Spec.Seed)))
	c.finalize(res, runErr, corrupt)
}

// measure performs one live experiment: dataset campaigns read the
// dataset and journal synchronously; client campaigns publish a
// suggestion and block until the observation arrives (journaled by the
// observe handler before the engine wakes) or the campaign stops.
func (c *Campaign) measure(x []float64) (float64, float64, error) {
	select {
	case <-c.stopOnce:
		// Stop() interrupts dataset campaigns here, at the next oracle
		// call — client campaigns would also unwind in the select below,
		// but dataset campaigns never reach it.
		return 0, 0, al.ErrStopped
	default:
	}
	if c.ds != nil {
		row, ok := c.rows[xKey(x)]
		if !ok {
			return 0, 0, fmt.Errorf("serve: suggested point not in dataset grid: %v", x)
		}
		y := c.ds.RespAt(c.response, row)
		cost := c.ds.CostAt(row)
		if !c.do(func(st *campaignState) {
			st.journal = append(st.journal, Observation{Y: al.JSONFloat(y), Cost: al.JSONFloat(cost)})
			c.saveCheckpoint(st, false)
		}) {
			return 0, 0, al.ErrStopped
		}
		observationsCount.Inc()
		return y, cost, nil
	}

	reply := make(chan Observation, 1)
	registered := c.do(func(st *campaignState) {
		st.seq++
		st.pending = &pending{
			seq:   st.seq,
			x:     append([]float64(nil), x...),
			reply: reply,
		}
		st.state = StateWaiting
	})
	if !registered {
		return 0, 0, al.ErrStopped
	}
	select {
	case o := <-reply:
		return float64(o.Y), float64(o.Cost), nil
	case <-c.stopOnce:
		return 0, 0, al.ErrStopped
	}
}

// finalize records the engine's outcome and flushes the final
// checkpoint.
func (c *Campaign) finalize(res al.Result, runErr error, corrupt bool) {
	c.do(func(st *campaignState) {
		st.pending = nil
		st.converged = res.Converged
		switch {
		case corrupt:
			st.state = StateFailed
			st.err = fmt.Errorf("serve: resume replay diverged from checkpoint fingerprint (version %d)", c.resumeVersion)
			campaignsFailed.Inc()
		case runErr == nil:
			st.state = StateDone
			st.err = nil
			campaignsDone.Inc()
		case errors.Is(runErr, al.ErrStopped):
			st.state = StateStopped
			st.err = nil
			campaignsStopped.Inc()
		default:
			st.state = StateFailed
			st.err = runErr
			campaignsFailed.Inc()
		}
		c.saveCheckpoint(st, st.state == StateDone)
		obs.Emit("serve.campaign.finished", map[string]any{
			"campaign": c.ID, "state": st.state, "records": len(st.records),
		})
	})
}

// Stop asks the engine to unwind at the next oracle interaction. Safe
// to call more than once; idempotent after the first call.
func (c *Campaign) Stop() {
	select {
	case <-c.stopOnce:
	default:
		close(c.stopOnce)
	}
}

// close shuts the actor down. Callers must Stop and drain the engine
// first (Manager.remove does); afterwards every Campaign method returns
// ErrClosed.
func (c *Campaign) close() {
	c.lifecycle.Lock()
	defer c.lifecycle.Unlock()
	if !c.isClosed {
		c.isClosed = true
		close(c.closed)
	}
}

// Wait blocks until the engine goroutine has exited.
func (c *Campaign) Wait() { <-c.engineDone }

// Suggest returns the pending suggestion, ErrNoPending when the engine
// is not waiting on a measurement, or ErrClosed.
func (c *Campaign) Suggest() (Suggestion, error) {
	var out Suggestion
	var err error
	if !c.do(func(st *campaignState) {
		if st.pending == nil {
			err = fmt.Errorf("%w (state %s)", ErrNoPending, st.state)
			return
		}
		out = Suggestion{Seq: st.pending.seq, X: append([]float64(nil), st.pending.x...)}
	}) {
		return Suggestion{}, ErrClosed
	}
	return out, err
}

// Observe applies a measurement to the pending suggestion identified by
// seq: the observation is journaled and checkpointed BEFORE the engine
// wakes and before the call returns, so an acknowledged observation is
// durable — a crash after Observe returns never loses it.
func (c *Campaign) Observe(seq int, y, cost float64) error {
	var err error
	if !c.do(func(st *campaignState) {
		if st.pending == nil {
			err = fmt.Errorf("%w (state %s)", ErrNoPending, st.state)
			return
		}
		if st.pending.seq != seq {
			err = fmt.Errorf("%w: got seq %d, pending is %d", ErrSeqMismatch, seq, st.pending.seq)
			return
		}
		o := Observation{Y: al.JSONFloat(y), Cost: al.JSONFloat(cost)}
		st.journal = append(st.journal, o)
		c.saveCheckpoint(st, false)
		st.pending.reply <- o
		st.pending = nil
		st.state = StateRunning
	}) {
		return ErrClosed
	}
	if err == nil {
		observationsCount.Inc()
	}
	return err
}

// Model returns the current model snapshot and its version for
// prediction. The returned *gp.GP is immutable; callers may use it
// concurrently.
func (c *Campaign) Model() (*gp.GP, int, error) {
	var m *gp.GP
	var v int
	if !c.do(func(st *campaignState) { m, v = st.model, st.modelVersion }) {
		return nil, 0, ErrClosed
	}
	if m == nil {
		return nil, 0, ErrNoModel
	}
	return m, v, nil
}

// Records returns a copy of the iteration records so far.
func (c *Campaign) Records() ([]al.IterationRecord, error) {
	var out []al.IterationRecord
	if !c.do(func(st *campaignState) {
		out = append(out, st.records...)
	}) {
		return nil, ErrClosed
	}
	return out, nil
}

// Status snapshots the campaign for the HTTP API. withRecords controls
// whether the full per-iteration history is included (list views leave
// it out).
func (c *Campaign) Status(withRecords bool) (CampaignStatus, error) {
	strat, _ := c.Spec.strategy()
	out := CampaignStatus{
		ID:       c.ID,
		Name:     c.Spec.Name,
		Source:   c.Spec.Source,
		Strategy: strat.Name(),
	}
	if !c.do(func(st *campaignState) {
		out.State = st.state
		out.Observations = len(st.journal)
		out.ModelVersion = st.modelVersion
		out.Converged = st.converged
		if st.model != nil {
			out.Fingerprint = st.model.Fingerprint()
		}
		if st.pending != nil {
			out.Pending = &Suggestion{Seq: st.pending.seq, X: append([]float64(nil), st.pending.x...)}
		}
		if st.err != nil {
			out.Error = st.err.Error()
		}
		if withRecords {
			out.Records = make([]al.JSONRecord, len(st.records))
			for i, r := range st.records {
				out.Records[i] = al.ToJSONRecord(r)
			}
		}
	}) {
		return CampaignStatus{}, ErrClosed
	}
	return out, nil
}

// saveCheckpoint persists the journal; it runs on the actor goroutine.
// Failures are surfaced as metrics and events, not fatal errors: the
// campaign keeps running and the next observation retries the write.
func (c *Campaign) saveCheckpoint(st *campaignState, done bool) {
	if c.ckptPath == "" {
		return
	}
	jf := journalFile{
		Version:      journalVersion,
		ID:           c.ID,
		Spec:         c.Spec,
		Observations: st.journal,
		ModelVersion: st.modelVersion,
		Done:         done,
	}
	if st.model != nil {
		jf.Fingerprint = st.model.Fingerprint()
	}
	if st.err != nil {
		jf.Error = st.err.Error()
	}
	if err := al.AtomicWriteJSON(c.ckptPath, &jf); err != nil {
		checkpointErrors.Inc()
		obs.Emit("serve.checkpoint.error", map[string]any{"campaign": c.ID, "err": err.Error()})
		return
	}
	checkpointSaves.Inc()
}

// xKey encodes an input point as the exact bit pattern of its
// coordinates — the dataset row lookup and prediction cache key must
// distinguish points that differ in the last ulp.
func xKey(x []float64) string {
	var b strings.Builder
	b.Grow(17 * len(x))
	for _, v := range x {
		b.WriteString(strconv.FormatUint(math.Float64bits(v), 16))
		b.WriteByte(',')
	}
	return b.String()
}
