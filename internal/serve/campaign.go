package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/al"
	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// Campaign-level metrics (see OBSERVABILITY.md).
var (
	campaignsActive   = obs.G("serve.campaign.active")
	campaignsDone     = obs.C("serve.campaign.done")
	campaignsFailed   = obs.C("serve.campaign.failed")
	campaignsStopped  = obs.C("serve.campaign.stopped")
	observationsCount = obs.C("serve.observe.count")
	observeDuplicates = obs.C("serve.observe.duplicates")
)

// Errors surfaced to HTTP clients with specific status codes.
var (
	// ErrNoPending means no suggestion is outstanding (the engine is
	// computing, replaying, or the campaign is terminal).
	ErrNoPending = errors.New("serve: no suggestion pending")
	// ErrSeqMismatch means the observation's sequence number does not
	// fence the pending suggestion.
	ErrSeqMismatch = errors.New("serve: suggestion sequence mismatch")
	// ErrClosed means the campaign actor has shut down.
	ErrClosed = errors.New("serve: campaign closed")
	// ErrNoModel means no model has been fitted yet (observe the seed
	// experiments first).
	ErrNoModel = errors.New("serve: campaign has no fitted model yet")
)

// pending is the engine's outstanding suggestion: the reply channel is
// buffered so the actor can hand the observation to the blocked engine
// without ever blocking itself.
type pending struct {
	seq   int
	x     []float64
	reply chan Observation
}

// campaignState is every mutable field of a campaign. Only the actor
// goroutine touches it; handlers and the engine reach it through
// closures sent over the mailbox.
type campaignState struct {
	state        string
	records      []al.IterationRecord
	model        al.Regressor
	modelVersion int
	journal      []Observation
	pending      *pending
	seq          int
	converged    bool
	err          error

	// idem maps idempotency keys to the seq their observation was
	// applied at; rebuilt from the journal on resume so retries across
	// a crash still dedup.
	idem map[string]int
}

// Campaign is one live AL campaign: an al.RunOnline engine plus the
// actor goroutine that owns its state. All exported methods are safe
// for concurrent use from any goroutine.
type Campaign struct {
	ID   string
	Spec CampaignSpec

	// jw is the append-only journal (nil disables persistence) — the
	// Store-issued Appender this campaign owns. It is touched only from
	// actor closures, so it needs no lock; the actor closes it on exit.
	// jbreaker (shared across the manager's campaigns) fails journal
	// appends fast when the backing store is sick.
	jw       Appender
	jbreaker *resilience.Breaker

	cands    *mat.Dense
	response string
	ds       *dataset.Dataset // nil for client-sourced campaigns
	rows     map[string]int   // x-key → dataset row, dataset source only

	// Fingerprint expectation carried from a checkpoint into the
	// replaying engine (0 = no expectation).
	resumeVersion int
	resumeFP      uint64
	resumeLen     int // journal entries to replay

	mailbox    chan func(*campaignState)
	stopOnce   chan struct{} // closed by Stop
	engineDone chan struct{} // closed when the engine goroutine exits
	closed     chan struct{} // closed by close(): actor exits

	// lifecycle guards ONLY the closed flag, never campaign state: a
	// send may not race the actor's exit, so do() holds the read lock
	// across the mailbox send and close() takes the write lock before
	// closing. State itself stays mailbox-owned and mutex-free.
	lifecycle sync.RWMutex
	isClosed  bool
}

// newCampaign builds a campaign (fresh or resumed) and starts its actor
// and engine goroutines. jw is the open journal appender (nil disables
// persistence; the campaign takes ownership and closes it); journal is
// the replay prefix (nil for fresh campaigns); expectVersion/expectFP
// carry the checkpoint's integrity pin.
func newCampaign(id string, spec CampaignSpec, jw Appender, jbreaker *resilience.Breaker, journal []Observation, expectVersion int, expectFP uint64) (*Campaign, error) {
	c := &Campaign{
		ID:            id,
		Spec:          spec,
		jw:            jw,
		jbreaker:      jbreaker,
		resumeVersion: expectVersion,
		resumeFP:      expectFP,
		resumeLen:     len(journal),
		mailbox:       make(chan func(*campaignState), 16),
		stopOnce:      make(chan struct{}),
		engineDone:    make(chan struct{}),
		closed:        make(chan struct{}),
	}
	switch spec.Source {
	case "client":
		c.cands = mat.NewFromRows(spec.Candidates)
		c.response = "y"
	case "dataset":
		ds, response, err := lookupDataset(*spec.Dataset)
		if err != nil {
			return nil, err
		}
		all := make([]int, ds.Len())
		for i := range all {
			all[i] = i
		}
		c.ds = ds
		c.response = response
		c.cands = ds.Matrix(all)
		c.rows = make(map[string]int, ds.Len())
		for i := ds.Len() - 1; i >= 0; i-- {
			// First matching row wins on duplicate inputs, so lookup is
			// deterministic.
			c.rows[xKey(c.cands.RawRow(i))] = i
		}
	default:
		return nil, fmt.Errorf("%w: unknown source %q", ErrSpec, spec.Source)
	}

	// seq continues across resume: journal entry i consumed seq i+1 in
	// the life that wrote it, so the first post-resume suggestion gets
	// seq len(journal)+1 — suggestion numbering (and the idempotency
	// keys clients derive from it) is as crash-transparent as the
	// suggestion stream itself.
	st := &campaignState{state: StateRunning, journal: journal, idem: make(map[string]int), seq: len(journal)}
	if len(journal) > 0 {
		st.state = StateReplaying
	}
	// Rebuild the idempotency index: a key retried across the crash
	// answers with the seq its observation originally consumed.
	for i, o := range journal {
		if o.Key != "" {
			st.idem[o.Key] = i + 1
		}
	}
	go c.actor(st)
	go c.engine(journal)
	return c, nil
}

// actor executes mailbox closures one at a time until close().
func (c *Campaign) actor(st *campaignState) {
	defer func() {
		if c.jw != nil {
			c.jw.Close()
		}
	}()
	for {
		select {
		case fn := <-c.mailbox:
			fn(st)
		case <-c.closed:
			// close() holds the write lock while closing, so no sender
			// is mid-send now and none will start: drain what is queued
			// and exit.
			for {
				select {
				case fn := <-c.mailbox:
					fn(st)
				default:
					return
				}
			}
		}
	}
}

// do runs fn on the actor goroutine and waits for it. Returns false
// when the campaign is closed and fn did not run.
func (c *Campaign) do(fn func(*campaignState)) bool {
	return c.doCtx(context.Background(), fn) == nil
}

// doCtx is do with deadline propagation: it gives up while queueing for
// the mailbox or while waiting for fn to finish when ctx expires.
// If the closure has not STARTED by then it is abandoned (the actor
// skips it); if it is already running, it completes — so a ctx error
// may mean "applied but unconfirmed", the ambiguity idempotency keys
// exist to resolve.
func (c *Campaign) doCtx(ctx context.Context, fn func(*campaignState)) error {
	c.lifecycle.RLock()
	if c.isClosed {
		c.lifecycle.RUnlock()
		return ErrClosed
	}
	done := make(chan struct{})
	var abandoned atomic.Bool
	wrapped := func(st *campaignState) {
		defer close(done)
		if abandoned.Load() {
			return
		}
		fn(st)
	}
	select {
	case c.mailbox <- wrapped:
		c.lifecycle.RUnlock()
	case <-ctx.Done():
		c.lifecycle.RUnlock()
		return ctx.Err()
	}
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		abandoned.Store(true)
		return ctx.Err()
	}
}

// engine runs al.RunOnline to completion, feeding the replay journal
// through the oracle first. It is the ONLY goroutine that calls into
// the AL loop, so engine-local state (replay cursor, model version,
// integrity flag) needs no synchronization.
func (c *Campaign) engine(replay []Observation) {
	defer close(c.engineDone)

	cfg, err := c.Spec.loopConfig(c.response)
	if err != nil {
		c.finalize(al.Result{}, err, false)
		return
	}

	version := 0
	corrupt := false
	cfg.OnModel = func(m al.Regressor) {
		version++
		if c.resumeFP != 0 && version == c.resumeVersion && m.Fingerprint() != c.resumeFP {
			corrupt = true
			obs.Emit("serve.resume.integrity", map[string]any{
				"campaign": c.ID, "version": version,
				"want": strconv.FormatUint(c.resumeFP, 16),
				"got":  strconv.FormatUint(m.Fingerprint(), 16),
			})
		}
		v := version
		c.do(func(st *campaignState) {
			st.model = m
			st.modelVersion = v
		})
	}
	cfg.OnRecord = func(r al.IterationRecord) {
		c.do(func(st *campaignState) { st.records = append(st.records, r) })
	}

	replayIdx := 0
	oracle := al.OracleFunc(func(x []float64) (float64, float64, error) {
		if corrupt {
			return 0, 0, fmt.Errorf("serve: resume integrity check failed at model version %d: %w", c.resumeVersion, al.ErrStopped)
		}
		if replayIdx < len(replay) {
			e := replay[replayIdx]
			replayIdx++
			if replayIdx == len(replay) {
				c.do(func(st *campaignState) {
					if st.state == StateReplaying {
						st.state = StateRunning
					}
				})
			}
			return float64(e.Y), float64(e.Cost), nil
		}
		return c.measure(x)
	})

	res, runErr := al.RunOnline(c.cands, c.Spec.Seeds, oracle, cfg, rand.New(rand.NewSource(c.Spec.Seed)))
	c.finalize(res, runErr, corrupt)
}

// measure performs one live experiment: dataset campaigns read the
// dataset and journal synchronously; client campaigns publish a
// suggestion and block until the observation arrives (journaled by the
// observe handler before the engine wakes) or the campaign stops.
func (c *Campaign) measure(x []float64) (float64, float64, error) {
	select {
	case <-c.stopOnce:
		// Stop() interrupts dataset campaigns here, at the next oracle
		// call — client campaigns would also unwind in the select below,
		// but dataset campaigns never reach it.
		return 0, 0, al.ErrStopped
	default:
	}
	if c.ds != nil {
		row, ok := c.rows[xKey(x)]
		if !ok {
			return 0, 0, fmt.Errorf("serve: suggested point not in dataset grid: %v", x)
		}
		y := c.ds.RespAt(c.response, row)
		cost := c.ds.CostAt(row)
		if !c.do(func(st *campaignState) {
			o := Observation{X: append([]float64(nil), x...), Y: al.JSONFloat(y), Cost: al.JSONFloat(cost)}
			if err := c.appendJournal(st, o); err != nil {
				// Skipping one entry would corrupt replay order, so stop
				// journaling entirely: the valid prefix still replays and
				// resume re-measures the rest from the dataset.
				if c.jw != nil {
					c.jw.Disable()
				}
				obs.Emit("serve.journal.disabled", map[string]any{"campaign": c.ID, "err": err.Error()})
			}
			st.journal = append(st.journal, o)
		}) {
			return 0, 0, al.ErrStopped
		}
		observationsCount.Inc()
		return y, cost, nil
	}

	reply := make(chan Observation, 1)
	registered := c.do(func(st *campaignState) {
		st.seq++
		st.pending = &pending{
			seq:   st.seq,
			x:     append([]float64(nil), x...),
			reply: reply,
		}
		st.state = StateWaiting
	})
	if !registered {
		return 0, 0, al.ErrStopped
	}
	select {
	case o := <-reply:
		return float64(o.Y), float64(o.Cost), nil
	case <-c.stopOnce:
		return 0, 0, al.ErrStopped
	}
}

// finalize records the engine's outcome and flushes the final
// checkpoint.
func (c *Campaign) finalize(res al.Result, runErr error, corrupt bool) {
	c.do(func(st *campaignState) {
		st.pending = nil
		st.converged = res.Converged
		switch {
		case corrupt:
			st.state = StateFailed
			st.err = fmt.Errorf("serve: resume replay diverged from checkpoint fingerprint (version %d)", c.resumeVersion)
			campaignsFailed.Inc()
		case runErr == nil:
			st.state = StateDone
			st.err = nil
			campaignsDone.Inc()
		case errors.Is(runErr, al.ErrStopped):
			st.state = StateStopped
			st.err = nil
			campaignsStopped.Inc()
		default:
			st.state = StateFailed
			st.err = runErr
			campaignsFailed.Inc()
		}
		c.appendFinal(st)
		obs.Emit("serve.campaign.finished", map[string]any{
			"campaign": c.ID, "state": st.state, "records": len(st.records),
		})
	})
}

// appendFinal writes the terminal journal line (best effort: a failure
// only costs the informational trailer, never the observations).
func (c *Campaign) appendFinal(st *campaignState) {
	if c.jw == nil {
		return
	}
	var fp uint64
	if st.model != nil {
		fp = st.model.Fingerprint()
	}
	errMsg := ""
	if st.err != nil {
		errMsg = st.err.Error()
	}
	if err := c.jw.AppendFinal(st.state, errMsg, st.converged, st.modelVersion, fp); err != nil {
		journalAppendErrs.Inc()
		obs.Emit("serve.journal.error", map[string]any{"campaign": c.ID, "err": err.Error()})
	}
}

// Stop asks the engine to unwind at the next oracle interaction. Safe
// to call more than once; idempotent after the first call.
func (c *Campaign) Stop() {
	select {
	case <-c.stopOnce:
	default:
		close(c.stopOnce)
	}
}

// close shuts the actor down. Callers must Stop and drain the engine
// first (Manager.remove does); afterwards every Campaign method returns
// ErrClosed.
func (c *Campaign) close() {
	c.lifecycle.Lock()
	defer c.lifecycle.Unlock()
	if !c.isClosed {
		c.isClosed = true
		close(c.closed)
	}
}

// Wait blocks until the engine goroutine has exited.
func (c *Campaign) Wait() { <-c.engineDone }

// Suggest returns the pending suggestion, ErrNoPending when the engine
// is not waiting on a measurement, or ErrClosed.
func (c *Campaign) Suggest() (Suggestion, error) {
	return c.SuggestCtx(context.Background())
}

// SuggestCtx is Suggest with deadline propagation.
func (c *Campaign) SuggestCtx(ctx context.Context) (Suggestion, error) {
	var out Suggestion
	var err error
	if derr := c.doCtx(ctx, func(st *campaignState) {
		if st.pending == nil {
			err = fmt.Errorf("%w (state %s)", ErrNoPending, st.state)
			return
		}
		out = Suggestion{Seq: st.pending.seq, X: append([]float64(nil), st.pending.x...)}
	}); derr != nil {
		return Suggestion{}, derr
	}
	return out, err
}

// Observe applies a measurement to the pending suggestion identified by
// seq. See ObserveKeyed.
func (c *Campaign) Observe(seq int, y, cost float64) error {
	_, err := c.ObserveKeyed(context.Background(), seq, y, cost, "")
	return err
}

// ObserveKeyed applies a measurement to the pending suggestion
// identified by seq, with deadline propagation and idempotent retries.
// The observation is journaled (write+fsync) BEFORE the engine wakes
// and before the call returns, so an acknowledged observation is
// durable — and a journal append failure REJECTS the observation
// (ErrJournal → HTTP 503) without waking the engine, so an observation
// is never acknowledged unjournaled. key, when non-empty, dedups
// retries: resubmitting an already-applied key returns the seq it was
// applied at instead of a seq-mismatch error, which makes at-least-once
// delivery (retries after lost responses, duplicated requests) safe.
func (c *Campaign) ObserveKeyed(ctx context.Context, seq int, y, cost float64, key string) (int, error) {
	applied := seq
	var err error
	if derr := c.doCtx(ctx, func(st *campaignState) {
		if key != "" {
			if prev, ok := st.idem[key]; ok {
				applied = prev
				observeDuplicates.Inc()
				return
			}
		}
		if st.pending == nil {
			err = fmt.Errorf("%w (state %s)", ErrNoPending, st.state)
			return
		}
		if st.pending.seq != seq {
			err = fmt.Errorf("%w: got seq %d, pending is %d", ErrSeqMismatch, seq, st.pending.seq)
			return
		}
		o := Observation{
			X:    append([]float64(nil), st.pending.x...),
			Y:    al.JSONFloat(y),
			Cost: al.JSONFloat(cost),
			Key:  key,
		}
		if err = c.appendJournal(st, o); err != nil {
			return
		}
		st.journal = append(st.journal, o)
		if key != "" {
			st.idem[key] = seq
		}
		st.pending.reply <- o
		st.pending = nil
		st.state = StateRunning
	}); derr != nil {
		if errors.Is(derr, ErrClosed) {
			return 0, ErrClosed
		}
		return 0, derr
	}
	if err == nil {
		observationsCount.Inc()
	}
	return applied, err
}

// appendJournal durably appends one observation (through the journal
// breaker when one is wired). Runs on the actor goroutine.
func (c *Campaign) appendJournal(st *campaignState, o Observation) error {
	if c.jw == nil {
		return nil
	}
	var fp uint64
	if st.model != nil {
		fp = st.model.Fingerprint()
	}
	op := func() error { return c.jw.AppendObs(o, st.modelVersion, fp) }
	var err error
	if c.jbreaker != nil {
		err = c.jbreaker.Do(op)
	} else {
		err = op()
	}
	if err != nil {
		journalAppendErrs.Inc()
		obs.Emit("serve.journal.error", map[string]any{"campaign": c.ID, "err": err.Error()})
		if errors.Is(err, resilience.ErrOpen) {
			return err
		}
		return fmt.Errorf("%w: %v", ErrJournal, err)
	}
	journalAppends.Inc()
	return nil
}

// Model returns the current model snapshot and its version for
// prediction. The returned Regressor is immutable; callers may use it
// concurrently.
func (c *Campaign) Model() (al.Regressor, int, error) {
	var m al.Regressor
	var v int
	if !c.do(func(st *campaignState) { m, v = st.model, st.modelVersion }) {
		return nil, 0, ErrClosed
	}
	if m == nil {
		return nil, 0, ErrNoModel
	}
	return m, v, nil
}

// Records returns a copy of the iteration records so far.
func (c *Campaign) Records() ([]al.IterationRecord, error) {
	var out []al.IterationRecord
	if !c.do(func(st *campaignState) {
		out = append(out, st.records...)
	}) {
		return nil, ErrClosed
	}
	return out, nil
}

// Status snapshots the campaign for the HTTP API. withRecords controls
// whether the full per-iteration history is included (list views leave
// it out).
func (c *Campaign) Status(withRecords bool) (CampaignStatus, error) {
	return c.StatusCtx(context.Background(), withRecords)
}

// StatusCtx is Status with deadline propagation.
func (c *Campaign) StatusCtx(ctx context.Context, withRecords bool) (CampaignStatus, error) {
	strat, _ := c.Spec.strategy()
	out := CampaignStatus{
		ID:       c.ID,
		Name:     c.Spec.Name,
		Source:   c.Spec.Source,
		Strategy: strat.Name(),
	}
	if derr := c.doCtx(ctx, func(st *campaignState) {
		out.State = st.state
		out.Observations = len(st.journal)
		out.ModelVersion = st.modelVersion
		out.Converged = st.converged
		if st.model != nil {
			out.Fingerprint = st.model.Fingerprint()
		}
		if st.pending != nil {
			out.Pending = &Suggestion{Seq: st.pending.seq, X: append([]float64(nil), st.pending.x...)}
		}
		if st.err != nil {
			out.Error = st.err.Error()
		}
		if withRecords {
			out.Records = make([]al.JSONRecord, len(st.records))
			for i, r := range st.records {
				out.Records[i] = al.ToJSONRecord(r)
			}
		}
	}); derr != nil {
		return CampaignStatus{}, derr
	}
	return out, nil
}

// xKey encodes an input point as the exact bit pattern of its
// coordinates — the dataset row lookup and prediction cache key must
// distinguish points that differ in the last ulp.
func xKey(x []float64) string {
	var b strings.Builder
	b.Grow(17 * len(x))
	for _, v := range x {
		b.WriteString(strconv.FormatUint(math.Float64bits(v), 16))
		b.WriteByte(',')
	}
	return b.String()
}
