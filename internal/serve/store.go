package serve

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/faults"
)

// ErrStoreNotFound reports a campaign id with no persisted journal.
var ErrStoreNotFound = errors.New("serve: no journal in store")

// Store abstracts campaign journal persistence for the Manager: a local
// checkpoint directory today (DirStore), an in-memory map for tests and
// replica buffers (MemStore), or a replicating wrapper (internal/ring)
// that ships every record to a follower. All methods except the
// returned Appenders must be safe for concurrent use.
//
// The unit of exchange is the raw journal byte stream (header line,
// observation lines, optional terminal line): Export/Import move a
// campaign between stores — and, via the cluster layer, between nodes —
// with byte identity, so a shipped campaign replays to exactly the
// fingerprinted trace the origin would have produced.
type Store interface {
	// IDs lists the campaign ids with persisted journals in
	// deterministic natural order ("c0002" before "c10000" regardless of
	// creation order or platform directory order).
	IDs() ([]string, error)

	// Create starts a fresh journal for id (truncating any previous one)
	// and returns its open Appender.
	Create(id string, spec CampaignSpec) (Appender, error)

	// Load reads the journal for id, applying the crash-recovery rules
	// (torn tails dropped, terminal lines stripped), and reopens it for
	// appending positioned after the last complete observation.
	Load(id string) (*JournalInfo, Appender, error)

	// Remove deletes the journal for id. Removing an absent id is not an
	// error.
	Remove(id string) error

	// Export returns the raw journal bytes for id.
	Export(id string) ([]byte, error)

	// Import installs raw journal bytes under id, overwriting any
	// existing journal, after validating that they parse as a journal
	// for that campaign id.
	Import(id string, data []byte) error
}

// validateImport parses shipped journal bytes and checks they belong to
// the campaign id they are being installed under.
func validateImport(id string, data []byte) error {
	jf, err := parseJournal(data, "import:"+id)
	if err != nil {
		return err
	}
	if jf.ID != id {
		return fmt.Errorf("serve: imported journal is for campaign %q, not %q", jf.ID, id)
	}
	return nil
}

// --- DirStore: one <id>.json journal per campaign in a directory ---

// DirStore persists one append-only JSONL journal per campaign in a
// directory — the layout alserve's -checkpoint-dir always used.
type DirStore struct {
	dir  string
	tear faults.TornWriteConfig
}

// NewDirStore builds a DirStore rooted at dir. The directory is created
// lazily on the first Create/Import. tear injects deterministic torn
// appends (the chaos knob; zero never tears).
func NewDirStore(dir string, tear faults.TornWriteConfig) *DirStore {
	return &DirStore{dir: dir, tear: tear}
}

func (s *DirStore) path(id string) string { return filepath.Join(s.dir, id+".json") }

// IDs implements Store. A missing directory reads as empty.
func (s *DirStore) IDs() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("serve: scan journal dir: %w", err)
	}
	ids := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") && !strings.HasPrefix(e.Name(), ".") {
			ids = append(ids, strings.TrimSuffix(e.Name(), ".json"))
		}
	}
	SortCampaignIDs(ids)
	return ids, nil
}

// Create implements Store.
func (s *DirStore) Create(id string, spec CampaignSpec) (Appender, error) {
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: create journal dir: %w", err)
	}
	return createJournal(s.path(id), id, spec, s.tear)
}

// Load implements Store.
func (s *DirStore) Load(id string) (*JournalInfo, Appender, error) {
	jf, err := loadJournal(s.path(id))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil, fmt.Errorf("%w: %q", ErrStoreNotFound, id)
		}
		return nil, nil, err
	}
	jw, err := openJournalAt(s.path(id), jf.appendOffset, len(jf.Observations), s.tear)
	if err != nil {
		return nil, nil, err
	}
	return jf.info(), jw, nil
}

// Remove implements Store.
func (s *DirStore) Remove(id string) error {
	if err := os.Remove(s.path(id)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("serve: remove checkpoint: %w", err)
	}
	return nil
}

// Export implements Store.
func (s *DirStore) Export(id string) ([]byte, error) {
	data, err := os.ReadFile(s.path(id))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %q", ErrStoreNotFound, id)
		}
		return nil, fmt.Errorf("serve: export journal: %w", err)
	}
	return data, nil
}

// Import implements Store. The write is atomic (temp file + rename) so
// a crash mid-import never leaves a half-shipped journal behind.
func (s *DirStore) Import(id string, data []byte) error {
	if err := validateImport(id, data); err != nil {
		return err
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return fmt.Errorf("serve: create journal dir: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, "."+id+".import-*")
	if err != nil {
		return fmt.Errorf("serve: import journal: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: import journal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: import journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: import journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(id)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: import journal: %w", err)
	}
	return nil
}

// --- MemStore: in-memory journals ---

// MemStore keeps whole journals in memory: the store for tests, the
// replay-equivalence suite, and cluster replica buffers. Journal bytes
// are identical to what a DirStore would hold on disk, so campaigns
// move between a MemStore and a DirStore (or across nodes) via
// Export/Import without any trace divergence.
type MemStore struct {
	mu       sync.Mutex
	journals map[string]*memJournal
}

type memJournal struct {
	buf    []byte
	closed bool // the owning Appender has been closed or superseded
}

// NewMemStore builds an empty MemStore.
func NewMemStore() *MemStore {
	return &MemStore{journals: make(map[string]*memJournal)}
}

// IDs implements Store.
func (s *MemStore) IDs() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.journals))
	for id := range s.journals {
		ids = append(ids, id)
	}
	SortCampaignIDs(ids)
	return ids, nil
}

// Create implements Store.
func (s *MemStore) Create(id string, spec CampaignSpec) (Appender, error) {
	line, err := EncodeJournalHeader(id, spec)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	j := &memJournal{buf: line}
	s.journals[id] = j
	return &memAppender{store: s, id: id, j: j}, nil
}

// Load implements Store.
func (s *MemStore) Load(id string) (*JournalInfo, Appender, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.journals[id]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrStoreNotFound, id)
	}
	jf, err := parseJournal(bytes.Clone(j.buf), "mem:"+id)
	if err != nil {
		return nil, nil, err
	}
	// Trim torn tails and stale terminal lines exactly like the file
	// store's reopen path, then hand out a fresh appender; any previous
	// appender is superseded.
	j.buf = j.buf[:jf.appendOffset]
	j.closed = false
	return jf.info(), &memAppender{store: s, id: id, j: j}, nil
}

// Remove implements Store.
func (s *MemStore) Remove(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.journals, id)
	return nil
}

// Export implements Store.
func (s *MemStore) Export(id string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.journals[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrStoreNotFound, id)
	}
	return bytes.Clone(j.buf), nil
}

// Import implements Store.
func (s *MemStore) Import(id string, data []byte) error {
	if err := validateImport(id, data); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journals[id] = &memJournal{buf: bytes.Clone(data)}
	return nil
}

// memAppender appends canonical lines to its MemStore journal. Owned by
// one campaign actor; the store mutex guards against concurrent map and
// buffer access from other store methods.
type memAppender struct {
	store  *MemStore
	id     string
	j      *memJournal
	broken bool
}

func (a *memAppender) append(line []byte) error {
	a.store.mu.Lock()
	defer a.store.mu.Unlock()
	if a.broken {
		return errJournalDirty
	}
	if cur, ok := a.store.journals[a.id]; !ok || cur != a.j || a.j.closed {
		// Removed, re-imported, or superseded by a later Load: this
		// appender must not write into a journal it no longer owns.
		return fmt.Errorf("serve: journal %q no longer owned by this appender", a.id)
	}
	a.j.buf = append(a.j.buf, line...)
	journalAppends.Inc()
	return nil
}

// AppendObs implements Appender.
func (a *memAppender) AppendObs(o Observation, mv int, fp uint64) error {
	line, err := EncodeJournalObs(o, mv, fp)
	if err != nil {
		return err
	}
	return a.append(line)
}

// AppendFinal implements Appender.
func (a *memAppender) AppendFinal(state, errMsg string, converged bool, mv int, fp uint64) error {
	line, err := EncodeJournalFinal(state, errMsg, converged, mv, fp)
	if err != nil {
		return err
	}
	return a.append(line)
}

// Disable implements Appender.
func (a *memAppender) Disable() { a.broken = true }

// Close implements Appender. The journal itself stays in the store.
func (a *memAppender) Close() error {
	a.store.mu.Lock()
	defer a.store.mu.Unlock()
	if cur, ok := a.store.journals[a.id]; ok && cur == a.j {
		a.j.closed = true
	}
	return nil
}

// info converts a loaded journal into the exported read-only view.
func (jf *journalFile) info() *JournalInfo {
	return &JournalInfo{
		ID:           jf.ID,
		Spec:         jf.Spec,
		Observations: jf.Observations,
		ModelVersion: jf.ModelVersion,
		Fingerprint:  jf.Fingerprint,
		Done:         jf.Done,
		Error:        jf.Error,
		Truncated:    jf.truncated,
	}
}

// --- deterministic campaign id ordering ---

// SortCampaignIDs sorts campaign ids into the deterministic natural
// order every journal scan uses: digit runs compare numerically
// ("c0002" < "c10000" even though a byte-wise sort would reverse them),
// ties break byte-wise. The order is platform-independent — directory
// entry order and file creation order never leak into replay order.
func SortCampaignIDs(ids []string) {
	sort.Slice(ids, func(i, j int) bool { return naturalLess(ids[i], ids[j]) })
}

// naturalLess is a total order on strings that compares maximal digit
// runs by numeric value (leading zeros stripped; ties on value break on
// the raw run, then on the remaining suffix).
func naturalLess(a, b string) bool {
	for len(a) > 0 && len(b) > 0 {
		if isDigit(a[0]) && isDigit(b[0]) {
			an, arest := splitDigits(a)
			bn, brest := splitDigits(b)
			at := strings.TrimLeft(an, "0")
			bt := strings.TrimLeft(bn, "0")
			switch {
			case len(at) != len(bt):
				return len(at) < len(bt)
			case at != bt:
				return at < bt
			case an != bn:
				// Equal numeric value, different zero-padding: fewer
				// leading zeros first, purely to keep the order total.
				return an > bn
			}
			a, b = arest, brest
			continue
		}
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		a, b = a[1:], b[1:]
	}
	return len(a) < len(b)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// splitDigits splits s into its leading digit run and the rest.
func splitDigits(s string) (digits, rest string) {
	i := 0
	for i < len(s) && isDigit(s[i]) {
		i++
	}
	return s[:i], s[i:]
}
