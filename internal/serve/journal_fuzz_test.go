package serve

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Journal corpus building blocks: a valid v2 header/obs/final line set
// the fuzzer mutates into torn tails, duplicate records, and
// interleaved fragments.
const (
	fuzzHeader = `{"h":{"version":2,"id":"c0001","spec":{"source":"client","candidates":[[0],[1]],"seeds":[0],"strategy":"variance-reduction"}}}`
	fuzzObs1   = `{"o":{"x":[0],"y":1,"cost":1,"key":"k1","mv":1,"fp":"ab12"}}`
	fuzzObs2   = `{"o":{"x":[1],"y":2,"cost":1.5,"key":"k2","mv":2,"fp":"cd34"}}`
	fuzzFinal  = `{"f":{"state":"done","converged":true,"mv":2,"fp":"cd34"}}`
)

func journalBytes(lines ...string) []byte {
	var b bytes.Buffer
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// FuzzJournalLoad feeds adversarial checkpoint files to loadJournal —
// the crash-recovery path every boot runs. Invalid input must be
// rejected with an error, never a panic; accepted journals must satisfy
// the recovery contract: a usable campaign id, an appendOffset inside
// the file, and a prefix-consistency invariant — truncating the file at
// appendOffset and reloading yields the same observations with no
// truncation, since that byte range is exactly the replayable log
// resume appends after.
func FuzzJournalLoad(f *testing.F) {
	// A complete, healthy journal.
	f.Add(journalBytes(fuzzHeader, fuzzObs1, fuzzObs2, fuzzFinal))
	// Crash artifacts: torn tails in every flavor.
	f.Add(append(journalBytes(fuzzHeader, fuzzObs1), []byte(fuzzObs2[:20])...)) // open tail
	f.Add(append(journalBytes(fuzzHeader), []byte(fuzzObs1[:10]+"\n")...))      // tear ending in a fake newline
	f.Add(journalBytes(fuzzHeader[:len(fuzzHeader)/2]))                         // torn header
	f.Add(journalBytes(fuzzHeader, fuzzObs1, fuzzObs2, fuzzFinal)[:40])         // mid-header cut
	// Duplicate and out-of-order records.
	f.Add(journalBytes(fuzzHeader, fuzzHeader, fuzzObs1))         // duplicate header
	f.Add(journalBytes(fuzzObs1, fuzzHeader))                     // header not first
	f.Add(journalBytes(fuzzHeader, fuzzObs1, fuzzObs1, fuzzObs1)) // duplicate idempotency keys
	f.Add(journalBytes(fuzzHeader, fuzzFinal, fuzzObs1))          // observation after terminal line
	f.Add(journalBytes(fuzzHeader, fuzzFinal, fuzzFinal))         // duplicate terminal lines
	// Interleaved partial writes: two records sharing one line, a
	// record split by a stray newline, fragments glued mid-field.
	f.Add(journalBytes(fuzzHeader, fuzzObs1[:25]+fuzzObs2[25:]))
	f.Add(journalBytes(fuzzHeader, fuzzObs1+fuzzObs2))
	f.Add(journalBytes(fuzzHeader, fuzzObs1[:30], fuzzObs1[30:]))
	// Wrong version, empty record, junk.
	f.Add(journalBytes(strings.Replace(fuzzHeader, `"version":2`, `"version":1`, 1), fuzzObs1))
	f.Add(journalBytes(fuzzHeader, `{}`))
	f.Add([]byte{})
	f.Add([]byte("not a journal\n"))
	f.Add([]byte("\n\n\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("oversized input: spec validation cost would dominate")
		}
		dir := t.TempDir()
		path := filepath.Join(dir, "c0001.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		jf, err := loadJournal(path)
		if err != nil {
			return // rejected cleanly — the expected path for corruption
		}

		if jf.ID == "" {
			t.Fatal("accepted journal has no campaign id")
		}
		if err := jf.Spec.Validate(); err != nil {
			t.Fatalf("accepted journal carries an invalid spec: %v", err)
		}
		if jf.appendOffset <= 0 || jf.appendOffset > int64(len(data)) {
			t.Fatalf("appendOffset %d outside (0, %d]", jf.appendOffset, len(data))
		}

		// Prefix consistency: the bytes before appendOffset are exactly
		// the replayable record stream. Reloading them must reproduce the
		// same campaign with no truncation — this is what openJournalAt
		// relies on when it truncates the file to appendOffset on resume.
		prefix := filepath.Join(dir, "prefix.json")
		if err := os.WriteFile(prefix, data[:jf.appendOffset], 0o644); err != nil {
			t.Fatal(err)
		}
		jf2, err := loadJournal(prefix)
		if err != nil {
			t.Fatalf("replayable prefix failed to load: %v", err)
		}
		if jf2.truncated {
			t.Fatal("replayable prefix reported a torn tail")
		}
		if jf2.ID != jf.ID {
			t.Fatalf("prefix reload changed id %q → %q", jf.ID, jf2.ID)
		}
		if len(jf2.Observations) != len(jf.Observations) {
			t.Fatalf("prefix reload changed observation count %d → %d",
				len(jf.Observations), len(jf2.Observations))
		}
		if jf2.ModelVersion != jf.ModelVersion || jf2.Fingerprint != jf.Fingerprint {
			t.Fatalf("prefix reload changed model pin (%d, %x) → (%d, %x)",
				jf.ModelVersion, jf.Fingerprint, jf2.ModelVersion, jf2.Fingerprint)
		}
		for i, o := range jf2.Observations {
			want := jf.Observations[i]
			if o.Y != want.Y || o.Cost != want.Cost || o.Key != want.Key || len(o.X) != len(want.X) {
				t.Fatalf("prefix reload changed observation %d: %+v → %+v", i, want, o)
			}
		}
	})
}
