package serve

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/al"
)

// TestServeStressConcurrentClients is the service race test: M client
// campaigns run concurrently, each hammered by N racing observer
// goroutines plus predict/status/list readers, all over HTTP. Only one
// observer can win each suggestion (the sequence number fences the
// rest), and the measurement is a deterministic function of x, so every
// campaign's trace must still equal a serial al.RunOnline of the same
// spec — under -race this doubles as the data-race hunt for the whole
// actor/mailbox/cache machinery. CI runs it in the chaos-smoke lane.
func TestServeStressConcurrentClients(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	// First deferred = last run: after the shutdown below, no campaign
	// goroutine may survive the stress load.
	defer checkLeaked(t)

	specs := []CampaignSpec{
		clientSpec(31),
		func() CampaignSpec {
			s := clientSpec(32)
			s.Strategy = "cost-efficiency"
			return s
		}(),
		func() CampaignSpec {
			s := clientSpec(33)
			s.Strategy = "random"
			return s
		}(),
		func() CampaignSpec {
			s := clientSpec(34)
			s.Epsilon = 0.3
			return s
		}(),
	}
	refs := make([]al.Result, len(specs))
	for i, spec := range specs {
		refs[i] = directRun(t, spec)
	}

	mgr := NewManager(Config{CacheSize: 256, MaxConcurrentScores: 2})
	srv := httptest.NewServer(NewServer(mgr))
	defer func() {
		srv.Close()
		mgr.Shutdown(context.Background())
	}()
	client := srv.Client()

	ids := make([]string, len(specs))
	for i, spec := range specs {
		var created CampaignStatus
		if code := doJSON(t, client, "POST", srv.URL+"/campaigns", spec, &created); code != http.StatusCreated {
			t.Fatalf("create campaign %d: HTTP %d", i, code)
		}
		ids[i] = created.ID
	}

	const observersPerCampaign = 3
	type obsRec struct {
		seq int
		x   []float64
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		wins = make(map[string][]obsRec)
	)
	deadline := time.Now().Add(120 * time.Second)

	// Racing observers: everyone polls the same suggestion; the seq
	// fence lets exactly one observation through per suggestion.
	for _, id := range ids {
		for w := 0; w < observersPerCampaign; w++ {
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				for time.Now().Before(deadline) {
					var sug Suggestion
					code, err := tryJSON(client, "GET", srv.URL+"/campaigns/"+id+"/suggest", nil, &sug)
					if err != nil {
						t.Errorf("campaign %s suggest: %v", id, err)
						return
					}
					if code == http.StatusConflict {
						var st CampaignStatus
						if _, err := tryJSON(client, "GET", srv.URL+"/campaigns/"+id, nil, &st); err != nil {
							t.Errorf("campaign %s status: %v", id, err)
							return
						}
						if isTerminal(st.State) {
							return
						}
						time.Sleep(time.Millisecond)
						continue
					}
					if code != http.StatusOK {
						t.Errorf("campaign %s suggest: HTTP %d", id, code)
						return
					}
					y, cost := testOracle(sug.X)
					req := ObserveRequest{Seq: sug.Seq, Y: al.JSONFloat(y), Cost: al.JSONFloat(cost)}
					code, err = tryJSON(client, "POST", srv.URL+"/campaigns/"+id+"/observe", req, nil)
					switch {
					case err != nil:
						t.Errorf("campaign %s observe: %v", id, err)
						return
					case code == http.StatusOK:
						mu.Lock()
						wins[id] = append(wins[id], obsRec{seq: sug.Seq, x: sug.X})
						mu.Unlock()
					case code == http.StatusConflict:
						// Another observer won this suggestion.
					default:
						t.Errorf("campaign %s observe: HTTP %d", id, code)
						return
					}
				}
			}(id)
		}
	}

	// Readers: predictions (cache churn), statuses, listings, metrics.
	stopReaders := make(chan struct{})
	points := [][]float64{{0.1}, {0.6}, {1.1}, {1.6}, {2.1}, {2.6}}
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				code, err := tryJSON(client, "POST", srv.URL+"/campaigns/"+id+"/predict", PredictRequest{Points: points}, nil)
				if err != nil || (code != http.StatusOK && code != http.StatusConflict) {
					t.Errorf("campaign %s predict: HTTP %d err %v", id, code, err)
					return
				}
				tryJSON(client, "GET", srv.URL+"/campaigns", nil, nil)
				tryJSON(client, "GET", srv.URL+"/healthz", nil, nil)
			}
		}(id)
	}

	// Wait for every campaign to finish, then release the readers.
	for i, id := range ids {
		c, err := mgr.Get(id)
		if err != nil {
			t.Fatalf("get %s: %v", id, err)
		}
		st := waitTerminal(t, c)
		if st.State != StateDone {
			t.Fatalf("campaign %d (%s) ended %s (err %q)", i, id, st.State, st.Error)
		}
	}
	close(stopReaders)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Every campaign's trace equals its serial reference run.
	grid := testGrid()
	for i, id := range ids {
		c, err := mgr.Get(id)
		if err != nil {
			t.Fatalf("get %s: %v", id, err)
		}
		recs, err := c.Records()
		if err != nil {
			t.Fatalf("records %s: %v", id, err)
		}
		if err := sameRecords(recs, refs[i].Records); err != nil {
			t.Errorf("campaign %d (%s) trace diverges under concurrency: %v", i, id, err)
		}
		// The winning observations, ordered by seq, retrace seeds then
		// selections.
		mu.Lock()
		won := append([]obsRec(nil), wins[id]...)
		mu.Unlock()
		sort.Slice(won, func(a, b int) bool { return won[a].seq < won[b].seq })
		wantRows := append(append([]int(nil), specs[i].Seeds...), refs[i].TrainRows...)
		if len(won) != len(wantRows) {
			t.Fatalf("campaign %d: %d winning observations, want %d", i, len(won), len(wantRows))
		}
		for j, o := range won {
			if o.seq != j+1 {
				t.Fatalf("campaign %d: observation %d has seq %d — a suggestion was double-observed", i, j, o.seq)
			}
			want := grid[wantRows[j]]
			if math.Float64bits(o.x[0]) != math.Float64bits(want[0]) {
				t.Fatalf("campaign %d suggestion %d: got x=%v, want row %d x=%v", i, j, o.x, wantRows[j], want)
			}
		}
	}
}
