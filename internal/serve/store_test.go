package serve

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
)

// TestReadJournalDirNaturalOrder is the regression test for journal
// scan ordering: replay order must be the natural (numeric) id order,
// independent of file creation order and of the platform's directory
// ordering. The mixed-width ids make the lexical order (c1, c10, c100,
// c2, c9) differ from the natural one, so a regression to a plain
// string sort fails loudly.
func TestReadJournalDirNaturalOrder(t *testing.T) {
	dir := t.TempDir()
	spec := clientSpec(3)
	if err := spec.Validate(); err != nil {
		t.Fatalf("spec: %v", err)
	}
	creation := []string{"c10", "c2", "c100", "c1", "c9"} // deliberately shuffled
	for _, id := range creation {
		line, err := EncodeJournalHeader(id, spec)
		if err != nil {
			t.Fatalf("encode header %s: %v", id, err)
		}
		if err := os.WriteFile(filepath.Join(dir, id+".json"), line, 0o644); err != nil {
			t.Fatalf("write %s: %v", id, err)
		}
	}

	want := []string{"c1", "c2", "c9", "c10", "c100"}
	infos, skipped, err := ReadJournalDir(dir)
	if err != nil {
		t.Fatalf("ReadJournalDir: %v", err)
	}
	if len(skipped) != 0 {
		t.Fatalf("skipped journals: %v", skipped)
	}
	if len(infos) != len(want) {
		t.Fatalf("got %d journals, want %d", len(infos), len(want))
	}
	for i, info := range infos {
		if info.ID != want[i] {
			t.Fatalf("journal %d is %s, want %s (natural order %v)", i, info.ID, want[i], want)
		}
	}

	ids, err := NewDirStore(dir, faults.TornWriteConfig{}).IDs()
	if err != nil {
		t.Fatalf("DirStore.IDs: %v", err)
	}
	for i, id := range ids {
		if id != want[i] {
			t.Fatalf("store id %d is %s, want %s", i, id, want[i])
		}
	}
}

// TestStoreReplayEquivalence pins the Store abstraction's core
// guarantee: a campaign journaled through a DirStore, one journaled
// through a MemStore, and one whose raw journal bytes were shipped
// (Export → Import) into a fresh store all carry byte-identical
// journals and replay to identical fingerprinted traces.
func TestStoreReplayEquivalence(t *testing.T) {
	spec := clientSpec(17)
	ref := directRun(t, spec)

	runCampaign := func(cfg Config) (string, CampaignStatus) {
		t.Helper()
		mgr := NewManager(cfg)
		c, err := mgr.Create(spec)
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		xs := driveCampaign(t, c, 0)
		st := waitTerminal(t, c)
		expectTrace(t, c, xs, ref)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := mgr.Shutdown(ctx); err != nil {
			t.Fatalf("shutdown: %v", err)
		}
		return c.ID, st
	}

	dirA := t.TempDir()
	idA, stA := runCampaign(Config{CheckpointDir: dirA})
	bytesA, err := NewDirStore(dirA, faults.TornWriteConfig{}).Export(idA)
	if err != nil {
		t.Fatalf("export from DirStore: %v", err)
	}

	msB := NewMemStore()
	idB, _ := runCampaign(Config{Store: msB})
	bytesB, err := msB.Export(idB)
	if err != nil {
		t.Fatalf("export from MemStore: %v", err)
	}
	if idA != idB {
		t.Fatalf("fresh managers assigned different ids: %s vs %s", idA, idB)
	}
	if !bytes.Equal(bytesA, bytesB) {
		t.Fatalf("DirStore and MemStore journals differ for identical campaigns:\nA: %s\nB: %s", bytesA, bytesB)
	}

	// Ship the journal into fresh stores of both kinds and replay there.
	resumeAndCheck := func(cfg Config, store Store) {
		t.Helper()
		if err := store.Import(idA, bytesA); err != nil {
			t.Fatalf("import: %v", err)
		}
		mgr := NewManager(cfg)
		if n, err := mgr.ResumeAll(); err != nil || n != 1 {
			t.Fatalf("resume: %d campaigns, err %v", n, err)
		}
		c, err := mgr.Get(idA)
		if err != nil {
			t.Fatalf("get resumed campaign: %v", err)
		}
		st := waitTerminal(t, c)
		if st.State != StateDone {
			t.Fatalf("shipped campaign replayed to %s (err %q), want done", st.State, st.Error)
		}
		if st.Fingerprint != stA.Fingerprint || st.ModelVersion != stA.ModelVersion || st.Observations != stA.Observations {
			t.Fatalf("shipped replay diverged: fp %x/%x mv %d/%d obs %d/%d",
				st.Fingerprint, stA.Fingerprint, st.ModelVersion, stA.ModelVersion, st.Observations, stA.Observations)
		}
		recs, err := c.Records()
		if err != nil {
			t.Fatalf("records: %v", err)
		}
		if err := sameRecords(recs, ref.Records); err != nil {
			t.Fatalf("shipped replay records diverge: %v", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := mgr.Shutdown(ctx); err != nil {
			t.Fatalf("shutdown: %v", err)
		}
		// The replayed journal re-exports byte-identically: replay
		// re-pins the same model versions and fingerprints and rewrites
		// the same terminal line.
		out, err := store.Export(idA)
		if err != nil {
			t.Fatalf("re-export: %v", err)
		}
		if !bytes.Equal(out, bytesA) {
			t.Fatalf("journal mutated by shipped replay:\nbefore: %s\nafter:  %s", bytesA, out)
		}
	}

	msC := NewMemStore()
	resumeAndCheck(Config{Store: msC}, msC)

	dirD := t.TempDir()
	resumeAndCheck(Config{CheckpointDir: dirD}, NewDirStore(dirD, faults.TornWriteConfig{}))
}

// TestManagerShutdownConcurrentWithTraffic pins the shutdown contract
// documented in doc.go: Shutdown is idempotent and safe under
// concurrent Shutdown calls racing in-flight suggest/observe traffic.
// Every caller gets the drain's outcome, traffic is either fully
// applied or rejected with ErrClosed (never half-applied, which the
// -race run and the journal invariants would catch), and a late caller
// with an already-expired context still gets the result.
func TestManagerShutdownConcurrentWithTraffic(t *testing.T) {
	mgr := NewManager(Config{})
	spec := clientSpec(5)
	spec.Iterations = 500 // far more work than the test allows: shutdown lands mid-campaign
	c, err := mgr.Create(spec)
	if err != nil {
		t.Fatalf("create: %v", err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			deadline := time.Now().Add(20 * time.Second)
			for time.Now().Before(deadline) {
				sug, err := c.Suggest()
				if err != nil {
					if errors.Is(err, ErrClosed) {
						return
					}
					st, serr := c.Status(false)
					if errors.Is(serr, ErrClosed) || (serr == nil && isTerminal(st.State)) {
						return
					}
					time.Sleep(100 * time.Microsecond)
					continue
				}
				y, cost := testOracle(sug.X)
				c.Observe(sug.Seq, y, cost) // ErrClosed/ErrSeqMismatch tolerated; next Suggest decides
			}
			t.Error("traffic goroutine never observed the shutdown")
		}()
	}
	time.Sleep(10 * time.Millisecond) // let some observes land first

	shutdownErrs := make([]error, 5)
	for i := range shutdownErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer cancel()
			shutdownErrs[i] = mgr.Shutdown(ctx)
		}(i)
	}
	wg.Wait()
	for i, err := range shutdownErrs {
		if err != nil {
			t.Fatalf("concurrent Shutdown %d: %v", i, err)
		}
	}

	// A later caller — even with a dead context — gets the drain result,
	// not a spurious context error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := mgr.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown after completed drain with canceled ctx: %v", err)
	}
	if _, err := mgr.Create(clientSpec(6)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Create after shutdown: %v, want ErrClosed", err)
	}
	if _, err := c.Suggest(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Suggest after shutdown: %v, want ErrClosed", err)
	}
	checkLeaked(t)
}
