package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// JournalInfo is the read-only view of one campaign checkpoint, exposed
// to tools outside the service: surrogate training (internal/surrogate)
// and load replay (cmd/alload) consume recorded campaigns through it,
// and Store implementations return it from Load. Observations appear in
// append order; entries recorded by servers that predate X recording
// carry a nil X.
type JournalInfo struct {
	// ID is the campaign id the journal belongs to.
	ID string
	// Spec is the campaign spec the journal's header pinned.
	Spec CampaignSpec
	// Observations is the accepted (x, y, cost) stream.
	Observations []Observation
	// ModelVersion and Fingerprint pin the model identity at the last
	// complete observation — the integrity check replay must reproduce.
	ModelVersion int
	Fingerprint  uint64
	// Done reports whether the journal carries a terminal "done" line.
	Done bool
	// Error is the terminal error message, if the campaign failed.
	Error string
	// Truncated reports that a torn tail was dropped during the load.
	Truncated bool
}

// ReadJournal loads one campaign checkpoint for offline consumption.
// It applies exactly the crash-recovery rules the server's resume path
// uses: a torn or unparsable final line is dropped (Truncated reports
// it), mid-file corruption is an error.
func ReadJournal(path string) (*JournalInfo, error) {
	jf, err := loadJournal(path)
	if err != nil {
		return nil, err
	}
	return jf.info(), nil
}

// ReadJournalDir loads every campaign journal in dir (the layout a
// Manager's CheckpointDir produces: one <id>.json per campaign), in the
// deterministic natural campaign-id order every journal scan uses (see
// SortCampaignIDs) — directory entry order, file creation order, and
// platform collation never influence the result. Files that fail to
// load are skipped and reported in skipped; an empty directory is not
// an error.
func ReadJournalDir(dir string) (infos []*JournalInfo, skipped []string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: scan journal dir: %w", err)
	}
	ids := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") && !strings.HasPrefix(e.Name(), ".") {
			ids = append(ids, strings.TrimSuffix(e.Name(), ".json"))
		}
	}
	SortCampaignIDs(ids)
	for _, id := range ids {
		path := filepath.Join(dir, id+".json")
		info, err := ReadJournal(path)
		if err != nil {
			skipped = append(skipped, fmt.Sprintf("%s: %v", path, err))
			continue
		}
		infos = append(infos, info)
	}
	return infos, skipped, nil
}
