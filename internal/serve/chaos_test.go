package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"repro/internal/al"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// chaosPost POSTs body with an idempotency key. Unlike doJSON it
// returns transport and body-read errors instead of failing the test:
// under fault injection those are expected and the caller retries.
func chaosPost(client *http.Client, url, key string, body, out any) (int, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(resilience.IdempotencyHeader, key)
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if out != nil && resp.StatusCode < 300 {
		return resp.StatusCode, json.Unmarshal(rb, out)
	}
	return resp.StatusCode, nil
}

// chaosDrive drives a FRESH client campaign to a terminal state over an
// unreliable HTTP path. Every observation carries the idempotency key
// "<id>-seq<N>", so a retry after a lost response (the server applied
// it, the ack died) dedups instead of colliding with the next
// suggestion. Any transport- or body-level error is treated as
// transient and the loop re-fetches the current suggestion. Returns the
// suggestion stream ordered by seq, after asserting the seqs are the
// contiguous 1..N — no suggestion lost, none double-consumed.
func chaosDrive(t *testing.T, client *http.Client, base, id string) [][]float64 {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	seen := make(map[int][]float64)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s: chaos drive timeout after %d suggestions", id, len(seen))
		}
		var sug Suggestion
		code, err := tryJSON(client, "GET", base+"/campaigns/"+id+"/suggest", nil, &sug)
		switch {
		case err != nil:
			// Retry budget exhausted or a torn response body.
			time.Sleep(5 * time.Millisecond)
			continue
		case code == http.StatusConflict:
			var st CampaignStatus
			if _, serr := tryJSON(client, "GET", base+"/campaigns/"+id, nil, &st); serr == nil && isTerminal(st.State) {
				seqs := make([]int, 0, len(seen))
				for s := range seen {
					seqs = append(seqs, s)
				}
				sort.Ints(seqs)
				xs := make([][]float64, len(seqs))
				for i, s := range seqs {
					if s != i+1 {
						t.Fatalf("campaign %s: suggestion seqs %v are not contiguous from 1", id, seqs)
					}
					xs[i] = seen[s]
				}
				return xs
			}
			time.Sleep(5 * time.Millisecond)
			continue
		case code != http.StatusOK:
			t.Fatalf("campaign %s suggest: HTTP %d", id, code)
		}
		seen[sug.Seq] = sug.X
		y, cost := testOracle(sug.X)
		req := ObserveRequest{Seq: sug.Seq, Y: al.JSONFloat(y), Cost: al.JSONFloat(cost)}
		key := fmt.Sprintf("%s-seq%d", id, sug.Seq)
		code, err = chaosPost(client, base+"/campaigns/"+id+"/observe", key, req, nil)
		switch {
		case err != nil:
			// The observe may or may not have been applied; the retry key
			// resolves the ambiguity on the next loop pass.
			time.Sleep(5 * time.Millisecond)
		case code == http.StatusOK, code == http.StatusConflict,
			code == http.StatusServiceUnavailable, code == http.StatusTooManyRequests:
			// 409/503/429: another pass resolves it (or the key dedups).
		default:
			t.Fatalf("campaign %s observe seq %d: HTTP %d", id, sug.Seq, code)
		}
	}
}

// TestChaosNetworkCampaign drives a campaign through a deterministic
// client-side fault layer — latency spikes, unsent resets, duplicated
// requests, and dropped responses — behind the retrying resilience
// transport. The at-least-once hazards (a duplicate lands twice, a
// dropped response forces a blind retry) must be fully absorbed by the
// idempotency keys: no observation lost, none double-applied, and the
// final trace byte-identical to a fault-free al.RunOnline.
func TestChaosNetworkCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	spec := clientSpec(41)
	ref := directRun(t, spec)
	srv, mgr := newTestServer(t, Config{})
	c, err := mgr.Create(spec)
	if err != nil {
		t.Fatalf("create: %v", err)
	}

	injected := []string{
		"faults.injected.dupreq", "faults.injected.respdrop", "faults.injected.netreset",
	}
	before := int64(0)
	for _, name := range injected {
		before += obs.C(name).Value()
	}

	chaos := faults.NewNet(faults.NetworkConfig{
		Seed:             99,
		LatencyRate:      0.2,
		Latency:          2 * time.Millisecond,
		ResetRate:        0.08,
		DuplicateRate:    0.25,
		DropResponseRate: 0.12,
	})
	client := resilience.NewClient(
		faults.WrapRoundTripper(srv.Client().Transport, chaos),
		resilience.TransportConfig{
			MaxAttempts: 10,
			Seed:        7,
			Backoff:     resilience.Backoff{Base: time.Millisecond, Cap: 10 * time.Millisecond},
		})

	xs := chaosDrive(t, client, srv.URL, c.ID)
	st := waitTerminal(t, c)
	if st.State != StateDone {
		t.Fatalf("campaign ended %s (err %q), want done", st.State, st.Error)
	}
	expectTrace(t, c, xs, ref)
	if want := len(spec.Seeds) + len(ref.TrainRows); st.Observations != want {
		t.Fatalf("journal has %d observations, want %d — an observation was lost or double-applied", st.Observations, want)
	}

	after := int64(0)
	for _, name := range injected {
		after += obs.C(name).Value()
	}
	if after == before {
		t.Fatal("no network fault fired over the chaos run — the test was vacuous")
	}

	// Deterministic at-least-once replay: resubmit the LAST observation
	// with its original key through a fault-free client. The server must
	// answer from the idempotency index (it already applied seq N), not
	// error or re-feed the engine.
	dupBefore := observeDuplicates.Value()
	last := len(xs)
	y, cost := testOracle(xs[last-1])
	req := ObserveRequest{Seq: last, Y: al.JSONFloat(y), Cost: al.JSONFloat(cost)}
	var ack struct {
		Accepted int `json:"accepted"`
	}
	code, err := chaosPost(srv.Client(), srv.URL+"/campaigns/"+c.ID+"/observe",
		fmt.Sprintf("%s-seq%d", c.ID, last), req, &ack)
	if err != nil || code != http.StatusOK {
		t.Fatalf("idempotent resubmit: HTTP %d err %v", code, err)
	}
	if ack.Accepted != last {
		t.Fatalf("resubmit of seq %d answered with seq %d", last, ack.Accepted)
	}
	if observeDuplicates.Value() != dupBefore+1 {
		t.Fatalf("resubmit did not count as a duplicate (counter %d → %d)", dupBefore, observeDuplicates.Value())
	}
}

// chaosWaitSuggest polls until the campaign publishes a suggestion.
func chaosWaitSuggest(t *testing.T, c *Campaign) Suggestion {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		sug, err := c.Suggest()
		if err == nil {
			return sug
		}
		if time.Now().After(deadline) {
			t.Fatalf("no suggestion appeared: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestChaosTornWriteResume tears a journal append mid-write (the
// simulated power loss) and proves the durability contract: the
// torn observation was never acknowledged, the writer fails closed for
// the rest of the process's life, and a restart recovers to the last
// complete record, re-suggests the lost point under its original seq,
// accepts the client's retried key, and finishes with a trace
// byte-identical to a fault-free run.
func TestChaosTornWriteResume(t *testing.T) {
	defer checkLeaked(t)
	spec := clientSpec(23)
	ref := directRun(t, spec)
	dir := t.TempDir()

	// Pick a seed whose first torn append is write #4: header (1) and
	// the first two observations (2, 3) land, the third observation
	// tears. Decisions are pure functions of (seed, seq), so the scan is
	// exact, not probabilistic.
	tear := faults.TornWriteConfig{Rate: 0.3}
	for seed := int64(1); ; seed++ {
		if seed > 100000 {
			t.Fatal("no seed tears first at append 4")
		}
		tear.Seed = seed
		first := 0
		for s := 1; s <= 8 && first == 0; s++ {
			if _, torn := faults.TearDecision(tear, s); torn {
				first = s
			}
		}
		if first == 4 {
			break
		}
	}

	// Life 1: two observations land, the third append tears.
	mgr1 := NewManager(Config{CheckpointDir: dir, TornWrites: tear})
	c1, err := mgr1.Create(spec)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	id := c1.ID
	var xs [][]float64
	for i := 0; i < 2; i++ {
		sug := chaosWaitSuggest(t, c1)
		y, cost := testOracle(sug.X)
		key := fmt.Sprintf("%s-seq%d", id, sug.Seq)
		if _, err := c1.ObserveKeyed(context.Background(), sug.Seq, y, cost, key); err != nil {
			t.Fatalf("observe seq %d: %v", sug.Seq, err)
		}
		xs = append(xs, sug.X)
	}
	torn := chaosWaitSuggest(t, c1)
	if torn.Seq != 3 {
		t.Fatalf("third suggestion has seq %d, want 3", torn.Seq)
	}
	y3, cost3 := testOracle(torn.X)
	key3 := fmt.Sprintf("%s-seq%d", id, torn.Seq)
	if _, err := c1.ObserveKeyed(context.Background(), torn.Seq, y3, cost3, key3); !errors.Is(err, ErrJournal) {
		t.Fatalf("torn append rejected with %v, want ErrJournal", err)
	}
	// The writer is dirty: it must fail closed, never append after an
	// unknown tail.
	if _, err := c1.ObserveKeyed(context.Background(), torn.Seq, y3, cost3, key3); !errors.Is(err, ErrJournal) {
		t.Fatalf("dirty journal accepted a retry: %v", err)
	}
	st, err := c1.Status(false)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.Observations != 2 {
		t.Fatalf("campaign holds %d observations after the tear, want 2 (none unjournaled)", st.Observations)
	}
	if err := mgr1.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// The file carries the torn partial line; the loader drops it and
	// recovers the two complete observations.
	jf, err := loadJournal(filepath.Join(dir, id+".json"))
	if err != nil {
		t.Fatalf("load torn journal: %v", err)
	}
	if !jf.truncated {
		t.Fatal("loader did not flag the torn tail")
	}
	if len(jf.Observations) != 2 {
		t.Fatalf("loader recovered %d observations, want 2", len(jf.Observations))
	}

	// Life 2: resume (no chaos), finish, and compare against the
	// fault-free reference.
	mgr2 := NewManager(Config{CheckpointDir: dir})
	defer mgr2.Shutdown(context.Background())
	n, err := mgr2.ResumeAll()
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if n != 1 {
		t.Fatalf("resumed %d campaigns, want 1", n)
	}
	c2, err := mgr2.Get(id)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	resug := chaosWaitSuggest(t, c2)
	if resug.Seq != 3 {
		t.Fatalf("post-resume suggestion has seq %d, want 3 (seq must survive the crash)", resug.Seq)
	}
	if math.Float64bits(resug.X[0]) != math.Float64bits(torn.X[0]) {
		t.Fatalf("post-resume suggestion x=%v, the torn observation was for x=%v", resug.X, torn.X)
	}
	// The client's retry of the SAME key must now apply fresh: the torn
	// append never made the journal, so the key is unknown.
	applied, err := c2.ObserveKeyed(context.Background(), resug.Seq, y3, cost3, key3)
	if err != nil {
		t.Fatalf("retried observe after resume: %v", err)
	}
	if applied != 3 {
		t.Fatalf("retried key applied at seq %d, want 3", applied)
	}
	xs = append(xs, resug.X)
	xs = append(xs, driveCampaign(t, c2, 0)...)
	final := waitTerminal(t, c2)
	if final.State != StateDone {
		t.Fatalf("resumed campaign ended %s (err %q), want done", final.State, final.Error)
	}
	expectTrace(t, c2, xs, ref)
}

// TestChaosLoadShed saturates the admission layer and verifies the
// backpressure contract end to end: excess requests are shed
// immediately with 429 + Retry-After (not queued into the deadline),
// /healthz stays reachable and reports degradation, and a
// resilience.Client caught in the shed completes its request via
// backoff once capacity frees.
func TestChaosLoadShed(t *testing.T) {
	defer checkLeaked(t)
	mgr := NewManager(Config{})
	defer mgr.Shutdown(context.Background())
	s := NewServerWith(mgr, ServerConfig{
		RouteTimeout: 5 * time.Second,
		Admission:    resilience.AdmissionConfig{MaxInFlight: 2, MaxQueue: 2},
	})
	srv := httptest.NewServer(s)
	defer srv.Close()

	// Occupy both in-flight slots and both queue positions directly (the
	// test lives in this package), leaving zero admission headroom.
	var releases []func()
	for i := 0; i < 2; i++ {
		rel, err := s.adm.TryAcquire()
		if err != nil {
			t.Fatalf("prefill slot %d: %v", i, err)
		}
		releases = append(releases, rel)
	}
	queued := make(chan func(), 2)
	for i := 0; i < 2; i++ {
		go func() {
			rel, err := s.adm.Acquire(context.Background())
			if err != nil {
				t.Errorf("queued acquire: %v", err)
				queued <- nil
				return
			}
			queued <- rel
		}()
	}
	waitUntil := time.Now().Add(5 * time.Second)
	for s.adm.Depth() < 4 {
		if time.Now().After(waitUntil) {
			t.Fatalf("admission depth stuck at %d, want 4", s.adm.Depth())
		}
		time.Sleep(time.Millisecond)
	}

	// Saturated: a plain request is shed NOW, not at its deadline.
	start := time.Now()
	resp, err := http.Get(srv.URL + "/campaigns")
	if err != nil {
		t.Fatalf("shed request: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated GET: HTTP %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 carries no Retry-After header")
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("shed took %v — the request queued instead of shedding", took)
	}

	// /healthz bypasses admission and reports the degradation.
	var health struct {
		Status string `json:"status"`
	}
	if code := doJSON(t, srv.Client(), "GET", srv.URL+"/healthz", nil, &health); code != http.StatusOK {
		t.Fatalf("healthz under saturation: HTTP %d", code)
	}
	if health.Status != "degraded" {
		t.Fatalf("healthz status %q under saturation, want degraded", health.Status)
	}

	// A resilience client sent into the shed keeps backing off; once the
	// held capacity releases, its retry completes the workload.
	client := resilience.NewClient(nil, resilience.TransportConfig{
		MaxAttempts: 20,
		Seed:        3,
		Backoff:     resilience.Backoff{Base: 5 * time.Millisecond, Cap: 50 * time.Millisecond},
	})
	retriesBefore := obs.C("client.retry.count").Value()
	result := make(chan error, 1)
	go func() {
		resp, err := client.Get(srv.URL + "/campaigns")
		if err != nil {
			result <- err
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			result <- fmt.Errorf("HTTP %d", resp.StatusCode)
			return
		}
		result <- nil
	}()
	// Let it collect at least one 429 before capacity frees.
	time.Sleep(20 * time.Millisecond)
	for _, rel := range releases {
		rel()
	}
	for i := 0; i < 2; i++ {
		if rel := <-queued; rel != nil {
			rel()
		}
	}
	select {
	case err := <-result:
		if err != nil {
			t.Fatalf("resilience client did not complete through the shed: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("resilience client stuck")
	}
	if obs.C("client.retry.count").Value() == retriesBefore {
		t.Fatal("resilience client never retried — the shed was not exercised")
	}

	// Capacity restored: healthz recovers to ok.
	waitUntil = time.Now().Add(5 * time.Second)
	for {
		if code := doJSON(t, srv.Client(), "GET", srv.URL+"/healthz", nil, &health); code != http.StatusOK {
			t.Fatalf("healthz after recovery: HTTP %d", code)
		}
		if health.Status == "ok" {
			break
		}
		if time.Now().After(waitUntil) {
			t.Fatalf("healthz stuck at %q after capacity freed", health.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
