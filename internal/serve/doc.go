// Package serve turns the Active Learning core into a long-running,
// concurrent campaign service: clients create campaigns over HTTP,
// submit observed measurements, and read back next-experiment
// suggestions, batched GP predictions, and per-iteration progress —
// the paper's §VI online setting operated as a network service instead
// of a batch CLI.
//
// # Architecture
//
// A Manager owns a set of Campaigns. Each campaign runs TWO goroutines:
//
//   - The engine goroutine executes al.RunOnline unmodified. Its Oracle
//     either reads a server-side dataset (source "dataset") or blocks on
//     the campaign mailbox until a client POSTs the measurement (source
//     "client"). Because the engine IS al.RunOnline, a campaign driven
//     over HTTP produces an iteration trace identical to the equivalent
//     direct call — that identity is the service's core invariant and is
//     enforced by TestServeTraceIdentity and the stress suite.
//
//   - The actor goroutine owns all mutable campaign state (records,
//     current model, pending suggestion, observation journal). There is
//     no per-campaign mutex: handlers and the engine send closures over
//     the campaign mailbox channel and the actor executes them one at a
//     time. Model pointers cross goroutines freely — a fitted *gp.GP is
//     immutable and safe for concurrent reads.
//
// # Durability
//
// Campaign persistence is event-sourced: the checkpoint (one JSON file
// per campaign, written atomically via al.AtomicWriteJSON on every
// accepted observation) stores the campaign spec plus the ordered
// journal of oracle returns, not a model snapshot. Resume re-runs the
// engine and feeds the journal back through the oracle; the engine
// deterministically replays every fit, rejection, retry and RNG draw,
// so the rebuilt state — records, model, and the subsequent suggestion
// stream — is byte-identical to the uninterrupted run. gp.Fingerprint
// guards the invariant: the checkpoint records the model fingerprint at
// its model version, and a replay that reaches that version with a
// different fingerprint fails the campaign instead of serving silently
// diverged suggestions.
//
// # Scoring and caching
//
// Batched /predict inference reuses the loop's chunked scorer
// (al.ScoreBatch) under a Manager-wide semaphore that bounds the number
// of concurrent scoring operations, and fills a server-wide LRU
// prediction cache keyed on (campaign, model version, input point).
// A model-version bump simply changes the key — stale entries are never
// served and age out of the LRU; no explicit invalidation pass exists
// or is needed.
//
// See DESIGN.md §9 for the campaign lifecycle state machine and
// OBSERVABILITY.md for the serve.* metric and span catalog.
package serve
