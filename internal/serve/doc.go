// Package serve turns the Active Learning core into a long-running,
// concurrent campaign service: clients create campaigns over HTTP,
// submit observed measurements, and read back next-experiment
// suggestions, batched GP predictions, and per-iteration progress —
// the paper's §VI online setting operated as a network service instead
// of a batch CLI.
//
// # Architecture
//
// A Manager owns a set of Campaigns. Each campaign runs TWO goroutines:
//
//   - The engine goroutine executes al.RunOnline unmodified. Its Oracle
//     either reads a server-side dataset (source "dataset") or blocks on
//     the campaign mailbox until a client POSTs the measurement (source
//     "client"). Because the engine IS al.RunOnline, a campaign driven
//     over HTTP produces an iteration trace identical to the equivalent
//     direct call — that identity is the service's core invariant and is
//     enforced by TestClientCampaignTraceMatchesRunOnline, the stress
//     suite, and the chaos suite.
//
//   - The actor goroutine owns all mutable campaign state (records,
//     current model, pending suggestion, observation journal). There is
//     no per-campaign mutex: handlers and the engine send closures over
//     the campaign mailbox channel and the actor executes them one at a
//     time. Model pointers cross goroutines freely — a fitted *gp.GP is
//     immutable and safe for concurrent reads.
//
// # Durability
//
// Campaign persistence is event-sourced: an append-only JSONL journal
// (one file per campaign — a header line, one line per accepted
// observation, and a terminal line when the campaign ends) stores the
// campaign spec plus the ordered oracle returns, not a model snapshot.
// Each record costs one write plus one fsync, and every observation is
// journaled BEFORE it is acknowledged — for client campaigns a journal
// failure rejects the observation with ErrJournal (fail closed) rather
// than ack data that would not survive a crash. A crash can tear at
// most the final, unacknowledged line; the loader drops a torn tail
// and resumes from the last complete record. Resume re-runs the engine
// and feeds the journal back through the oracle; the engine
// deterministically replays every fit, rejection, retry and RNG draw,
// so the rebuilt state — records, model, and the subsequent suggestion
// stream — is byte-identical to the uninterrupted run. gp.Fingerprint
// guards the invariant: the journal records the model fingerprint at
// its model version, and a replay that reaches that version with a
// different fingerprint fails the campaign instead of serving silently
// diverged suggestions.
//
// # Storage
//
// Persistence sits behind the Store interface: DirStore (one fsynced
// file per campaign under a checkpoint directory) for production,
// MemStore for tests and for cluster nodes whose durability comes from
// replication. Raw journal bytes are the unit of exchange — Export and
// Import move a campaign between stores byte-for-byte, and the
// canonical line encoders (EncodeJournalHeader/Obs/Final) guarantee
// that the same campaign produces identical bytes in every store. That
// byte identity is what lets internal/ring ship journals between
// replicas and replay them anywhere with the same fingerprinted trace;
// TestStoreReplayEquivalence pins it.
//
// # Shutdown contract
//
// Manager.Shutdown is idempotent and safe to call concurrently — with
// itself, with Delete/Release, and with in-flight suggest, observe, and
// predict traffic. Exactly one caller performs the drain: it marks the
// manager closed (new work is rejected with ErrClosed), stops every
// campaign, and waits for the engines to unwind under its context.
// Every other call, concurrent or later, waits for that drain and
// returns its outcome; a caller whose own context dies first gets that
// context error, but once the drain has finished even an
// already-expired context gets the real result. A suggest or observe
// racing the shutdown either completes fully — journaled, replicated,
// acknowledged — or is rejected with ErrClosed; it is never
// half-applied. TestManagerShutdownConcurrentWithTraffic pins the
// contract under the race detector.
//
// # Resilience
//
// The HTTP layer wraps the campaign core in production defenses
// (internal/resilience, DESIGN.md §10): per-route context deadlines
// that the actor and engine honor, a bounded admission gate that sheds
// excess load with 429 + Retry-After and flips /healthz to "degraded"
// past its high watermark, circuit breakers around the scoring pool
// and journal writes, and idempotent observes — a client that sends an
// Idempotency-Key header may blindly retry an ambiguous ack, because a
// duplicate key re-acks the original seq instead of re-feeding the
// model. Suggestion seq numbering continues across crash/resume, so
// seq-derived keys stay collision-free for the campaign's whole life.
//
// # Scoring and caching
//
// Batched /predict inference reuses the loop's chunked scorer
// (al.ScoreBatch) under a Manager-wide semaphore that bounds the number
// of concurrent scoring operations, and fills a server-wide LRU
// prediction cache keyed on (campaign, model version, input point).
// A model-version bump simply changes the key — stale entries are never
// served and age out of the LRU; no explicit invalidation pass exists
// or is needed.
//
// See DESIGN.md §9 for the campaign lifecycle state machine and
// OBSERVABILITY.md for the serve.* metric and span catalog.
package serve
