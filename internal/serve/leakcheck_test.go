package serve

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// leakTargets are the long-lived goroutines this package owns. Every
// campaign starts exactly one of each; after its manager shuts down (or
// the campaign is deleted) none may survive.
var leakTargets = []string{
	"serve.(*Campaign).actor",
	"serve.(*Campaign).engine",
}

// leakedServeGoroutines snapshots all goroutine stacks and returns the
// ones still running campaign actors or engines.
func leakedServeGoroutines() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	for n == len(buf) {
		buf = make([]byte, 2*len(buf))
		n = runtime.Stack(buf, true)
	}
	var out []string
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		for _, target := range leakTargets {
			if strings.Contains(g, target) {
				out = append(out, g)
				break
			}
		}
	}
	return out
}

// checkLeaked fails the test when campaign goroutines outlive their
// shutdown. Actor exits are asynchronous (close() returns before the
// actor drains its mailbox), so poll briefly before declaring a leak.
// Tests in this package run sequentially, so a global scan is safe.
func checkLeaked(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		stacks := leakedServeGoroutines()
		if len(stacks) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("%d campaign goroutine(s) leaked past shutdown:\n%s",
				len(stacks), strings.Join(stacks, "\n\n"))
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}
