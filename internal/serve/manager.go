package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/al"
	"repro/internal/faults"
	"repro/internal/gp"
	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/resilience"
)

var (
	campaignsCreated = obs.C("serve.campaign.created")
	campaignsResumed = obs.C("serve.campaign.resumed")
	predictPoints    = obs.C("serve.predict.points")
	scoreQueueDepth  = obs.G("serve.score.queue")
)

// ErrNotFound reports an unknown campaign id.
var ErrNotFound = errors.New("serve: campaign not found")

// Config sizes the Manager.
type Config struct {
	// CheckpointDir persists one JSON journal per campaign via a
	// DirStore; "" disables persistence (campaigns die with the
	// process). Ignored when Store is set.
	CheckpointDir string

	// Store overrides the default persistence: campaign journals are
	// created, resumed, and removed through it. The cluster layer
	// injects a replicating store here; tests inject a MemStore.
	Store Store

	// CacheSize bounds the shared prediction LRU (default 4096 points).
	CacheSize int

	// ScoreWorkers is the per-scoring-call worker fan-out passed to
	// al.ScoreBatch (0 = the al package default, GOMAXPROCS).
	ScoreWorkers int

	// MaxConcurrentScores bounds how many scoring operations (predict
	// batches) run at once across ALL campaigns — the global worker-pool
	// throttle that keeps a burst of predict requests from oversubscribing
	// the cores the campaign engines are fitting on (default GOMAXPROCS).
	MaxConcurrentScores int

	// ScoreBreaker and JournalBreaker tune the circuit breakers guarding
	// the scoring pool and journal appends (zero values take the
	// resilience defaults).
	ScoreBreaker   resilience.BreakerConfig
	JournalBreaker resilience.BreakerConfig

	// TornWrites injects deterministic torn journal appends — the chaos
	// knob behind the crash-mid-write suite. The zero value never tears.
	// Applies to the DirStore built from CheckpointDir; an explicit
	// Store carries its own tear configuration.
	TornWrites faults.TornWriteConfig
}

// Manager owns the campaign set, the shared prediction cache, and the
// global scoring throttle. All methods are safe for concurrent use.
type Manager struct {
	cfg   Config
	store Store // nil disables persistence
	cache *predCache
	sem   chan struct{}

	// scoreBreaker trips when the scoring pool is so backed up that
	// requests die waiting for a slot; journalBreaker trips when the
	// checkpoint disk is sick. Both fail fast (HTTP 503 + Retry-After)
	// instead of queueing doomed work.
	scoreBreaker   *resilience.Breaker
	journalBreaker *resilience.Breaker

	mu        sync.RWMutex
	campaigns map[string]*Campaign
	nextID    int
	closed    bool

	// drainDone closes when the first Shutdown call finishes draining;
	// drainErr (written before the close) carries its outcome to every
	// concurrent or later caller. See Shutdown.
	drainDone chan struct{}
	drainErr  error
}

// NewManager builds a Manager. Call ResumeAll afterwards to relaunch
// checkpointed campaigns.
func NewManager(cfg Config) *Manager {
	if cfg.MaxConcurrentScores <= 0 {
		cfg.MaxConcurrentScores = runtime.GOMAXPROCS(0)
	}
	store := cfg.Store
	if store == nil && cfg.CheckpointDir != "" {
		store = NewDirStore(cfg.CheckpointDir, cfg.TornWrites)
	}
	return &Manager{
		cfg:            cfg,
		store:          store,
		cache:          newPredCache(cfg.CacheSize),
		sem:            make(chan struct{}, cfg.MaxConcurrentScores),
		scoreBreaker:   resilience.NewBreaker("score", cfg.ScoreBreaker),
		journalBreaker: resilience.NewBreaker("journal", cfg.JournalBreaker),
		campaigns:      make(map[string]*Campaign),
	}
}

// Store returns the manager's persistence backend (nil when campaigns
// are not persisted). The cluster layer exports journals through it.
func (m *Manager) Store() Store { return m.store }

// BreakerStates reports the manager's circuit breaker states for
// /healthz.
func (m *Manager) BreakerStates() map[string]string {
	return map[string]string{
		"score":   m.scoreBreaker.State().String(),
		"journal": m.journalBreaker.State().String(),
	}
}

// Create validates the spec, assigns an id, and launches the campaign.
func (m *Manager) Create(spec CampaignSpec) (*Campaign, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	var id string
	for {
		m.nextID++
		id = fmt.Sprintf("c%04d", m.nextID)
		if _, taken := m.campaigns[id]; !taken {
			break
		}
	}
	return m.createLocked(id, spec)
}

// CreateWithID launches a campaign under a caller-chosen id. The
// cluster router uses it to assign cluster-unique ids before picking an
// owner replica; ids must stay unique per manager.
func (m *Manager) CreateWithID(id string, spec CampaignSpec) (*Campaign, error) {
	if id == "" {
		return nil, fmt.Errorf("%w: empty campaign id", ErrSpec)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if _, taken := m.campaigns[id]; taken {
		return nil, fmt.Errorf("%w: campaign id %q already in use", ErrSpec, id)
	}
	m.bumpNextID(id)
	return m.createLocked(id, spec)
}

// createLocked launches a fresh campaign under an id the caller has
// verified to be free. Callers hold m.mu and have checked m.closed.
func (m *Manager) createLocked(id string, spec CampaignSpec) (*Campaign, error) {
	var app Appender
	if m.store != nil {
		var err error
		if app, err = m.store.Create(id, spec); err != nil {
			// A server configured for durability that cannot persist must
			// say so at create time, not lose campaigns at crash time.
			return nil, fmt.Errorf("%w: %v", ErrJournal, err)
		}
	}
	c, err := newCampaign(id, spec, app, m.journalBreaker, nil, 0, 0)
	if err != nil {
		if app != nil {
			app.Close()
		}
		return nil, err
	}
	m.campaigns[id] = c
	campaignsCreated.Inc()
	campaignsActive.Set(float64(len(m.campaigns)))
	obs.Emit("serve.campaign.created", map[string]any{"campaign": id, "source": spec.Source})
	return c, nil
}

// bumpNextID keeps fresh ids clear of externally assigned or resumed
// ones ("c0007" → nextID ≥ 7). Callers hold m.mu.
func (m *Manager) bumpNextID(id string) {
	if n, err := strconv.Atoi(strings.TrimPrefix(id, "c")); err == nil && n > m.nextID {
		m.nextID = n
	}
}

// ResumeAll relaunches every campaign the store holds, in the store's
// deterministic id order; each engine replays its journal and continues
// (or finishes) from the exact interrupted state. Returns the number of
// campaigns resumed; corrupt journals are skipped with an event rather
// than failing the boot.
func (m *Manager) ResumeAll() (int, error) {
	if m.store == nil {
		return 0, nil
	}
	ids, err := m.store.IDs()
	if err != nil {
		return 0, err
	}
	resumed := 0
	for _, id := range ids {
		if err := m.ResumeOne(id); err != nil {
			if errors.Is(err, ErrClosed) {
				return resumed, err
			}
			obs.Emit("serve.resume.skipped", map[string]any{"campaign": id, "err": err.Error()})
			continue
		}
		resumed++
	}
	return resumed, nil
}

// ResumeOne loads one persisted campaign from the store and relaunches
// it: the engine replays the journal and continues from the interrupted
// state, with the checkpoint's fingerprint pinning replay integrity.
// Used at boot via ResumeAll and by the cluster layer when a node
// adopts a shipped campaign after failover or migration.
func (m *Manager) ResumeOne(id string) error {
	if m.store == nil {
		return errors.New("serve: manager has no store to resume from")
	}
	// Fast-path duplicate check before the store read; rechecked under
	// the lock after.
	m.mu.RLock()
	_, taken := m.campaigns[id]
	closed := m.closed
	m.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if taken {
		return fmt.Errorf("serve: campaign %q already active", id)
	}
	info, app, err := m.store.Load(id)
	if err != nil {
		return err
	}
	if info.ID != id {
		app.Close()
		return fmt.Errorf("serve: journal %q carries campaign id %q", id, info.ID)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		app.Close()
		return ErrClosed
	}
	if _, taken := m.campaigns[id]; taken {
		app.Close()
		return fmt.Errorf("serve: campaign %q already active", id)
	}
	c, err := newCampaign(id, info.Spec, app, m.journalBreaker, info.Observations, info.ModelVersion, info.Fingerprint)
	if err != nil {
		app.Close()
		return err
	}
	m.campaigns[id] = c
	m.bumpNextID(id)
	campaignsActive.Set(float64(len(m.campaigns)))
	campaignsResumed.Inc()
	obs.Emit("serve.campaign.resumed", map[string]any{
		"campaign": id, "observations": len(info.Observations),
	})
	return nil
}

// Get returns the campaign with the given id.
func (m *Manager) Get(id string) (*Campaign, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	c, ok := m.campaigns[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return c, nil
}

// List returns all campaigns sorted by id (natural order, matching the
// store scan order).
func (m *Manager) List() []*Campaign {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*Campaign, 0, len(m.campaigns))
	for _, c := range m.campaigns {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return naturalLess(out[i].ID, out[j].ID) })
	return out
}

// Delete stops the campaign, waits for its engine, removes it from the
// manager, and deletes its journal — a deleted campaign does not come
// back on restart.
func (m *Manager) Delete(id string) error {
	if err := m.Release(id); err != nil {
		return err
	}
	if m.store != nil {
		if err := m.store.Remove(id); err != nil {
			return err
		}
	}
	return nil
}

// Release stops the campaign, waits for its engine, and removes it from
// the manager WITHOUT touching its journal: the campaign can be resumed
// here later (ResumeOne) or shipped to another node and adopted there —
// the handoff primitive behind cluster migration.
func (m *Manager) Release(id string) error {
	m.mu.Lock()
	c, ok := m.campaigns[id]
	if ok {
		delete(m.campaigns, id)
		campaignsActive.Set(float64(len(m.campaigns)))
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	c.Stop()
	c.Wait()
	c.close()
	return nil
}

// Predict evaluates the campaign's current model at the request points.
// See PredictCtx.
func (m *Manager) Predict(c *Campaign, points [][]float64) (PredictResponse, error) {
	return m.PredictCtx(context.Background(), c, points)
}

// PredictCtx evaluates the campaign's current model at the request
// points, serving what it can from the LRU and batching the misses
// through the shared scoring pool. Points must match the campaign's
// input dimensionality. Waiting for a scoring slot honors ctx, and the
// score breaker fails fast once slot waits start dying of deadline
// exhaustion (overload) instead of queueing more doomed work.
func (m *Manager) PredictCtx(ctx context.Context, c *Campaign, points [][]float64) (PredictResponse, error) {
	if len(points) == 0 {
		return PredictResponse{}, fmt.Errorf("%w: empty predict batch", ErrSpec)
	}
	model, version, err := c.Model()
	if err != nil {
		return PredictResponse{}, err
	}
	dims := c.cands.Cols()
	for i, pt := range points {
		if len(pt) != dims {
			return PredictResponse{}, fmt.Errorf("%w: point %d has %d dims, campaign has %d", ErrSpec, i, len(pt), dims)
		}
		for _, v := range pt {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return PredictResponse{}, fmt.Errorf("%w: point %d has a non-finite coordinate", ErrSpec, i)
			}
		}
	}
	predictPoints.Add(int64(len(points)))

	prefix := c.ID + ":" + strconv.Itoa(version) + ":"
	resp := PredictResponse{
		ModelVersion: version,
		Means:        make([]al.JSONFloat, len(points)),
		SDs:          make([]al.JSONFloat, len(points)),
	}
	var missIdx []int
	for i, pt := range points {
		if pred, ok := m.cache.get(prefix + xKey(pt)); ok {
			resp.Means[i] = al.JSONFloat(pred.Mean)
			resp.SDs[i] = al.JSONFloat(pred.SD)
			resp.CacheHits++
		} else {
			missIdx = append(missIdx, i)
		}
	}
	if len(missIdx) > 0 {
		miss := make([][]float64, len(missIdx))
		for j, i := range missIdx {
			miss[j] = points[i]
		}
		scoreQueueDepth.Set(float64(len(m.sem)))
		var preds []gp.Prediction
		if err := m.scoreBreaker.Do(func() error {
			select {
			case m.sem <- struct{}{}:
			case <-ctx.Done():
				return ctx.Err()
			}
			defer func() { <-m.sem }()
			preds = al.ScoreBatch(model, mat.NewFromRows(miss), m.cfg.ScoreWorkers)
			return nil
		}); err != nil {
			return PredictResponse{}, err
		}
		for j, i := range missIdx {
			resp.Means[i] = al.JSONFloat(preds[j].Mean)
			resp.SDs[i] = al.JSONFloat(preds[j].SD)
			m.cache.put(prefix+xKey(points[i]), preds[j])
		}
	}
	return resp, nil
}

// CampaignCount reports (total, terminal) campaign counts for /healthz.
func (m *Manager) CampaignCount() (total, terminal int) {
	for _, c := range m.List() {
		total++
		if st, err := c.Status(false); err == nil {
			switch st.State {
			case StateDone, StateFailed, StateStopped:
				terminal++
			}
		}
	}
	return total, terminal
}

// Shutdown gracefully stops every campaign: engines unwind at their
// next oracle interaction (client-blocked engines immediately), final
// checkpoints flush, and actors exit. Respects ctx for the engine
// drain.
//
// Shutdown is idempotent and safe to call concurrently with itself,
// with Delete/Release, and with in-flight suggest/observe/predict
// traffic (see the shutdown contract in doc.go): exactly one caller
// performs the drain; every other call — concurrent or later — waits
// for that drain to finish (or for its own ctx) and returns the drain's
// outcome.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		done := m.drainDone
		m.mu.Unlock()
		// Prefer a finished drain over a racing ctx cancellation, so a
		// late caller with an expired context still gets the real result.
		select {
		case <-done:
			return m.drainErr
		default:
		}
		select {
		case <-done:
			return m.drainErr
		case <-ctx.Done():
			return fmt.Errorf("serve: waiting for concurrent shutdown: %w", ctx.Err())
		}
	}
	m.closed = true
	m.drainDone = make(chan struct{})
	all := make([]*Campaign, 0, len(m.campaigns))
	for _, c := range m.campaigns {
		all = append(all, c)
	}
	m.mu.Unlock()

	for _, c := range all {
		c.Stop()
	}
	var err error
	for _, c := range all {
		select {
		case <-c.engineDone:
			c.close()
		case <-ctx.Done():
			err = fmt.Errorf("serve: shutdown interrupted with campaign %s still draining: %w", c.ID, ctx.Err())
		}
	}
	obs.Emit("serve.shutdown", map[string]any{"campaigns": len(all)})
	m.drainErr = err
	close(m.drainDone)
	return err
}
