package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/al"
	"repro/internal/faults"
	"repro/internal/gp"
	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/resilience"
)

var (
	campaignsCreated = obs.C("serve.campaign.created")
	campaignsResumed = obs.C("serve.campaign.resumed")
	predictPoints    = obs.C("serve.predict.points")
	scoreQueueDepth  = obs.G("serve.score.queue")
)

// ErrNotFound reports an unknown campaign id.
var ErrNotFound = errors.New("serve: campaign not found")

// Config sizes the Manager.
type Config struct {
	// CheckpointDir persists one JSON journal per campaign; "" disables
	// persistence (campaigns die with the process).
	CheckpointDir string

	// CacheSize bounds the shared prediction LRU (default 4096 points).
	CacheSize int

	// ScoreWorkers is the per-scoring-call worker fan-out passed to
	// al.ScoreBatch (0 = the al package default, GOMAXPROCS).
	ScoreWorkers int

	// MaxConcurrentScores bounds how many scoring operations (predict
	// batches) run at once across ALL campaigns — the global worker-pool
	// throttle that keeps a burst of predict requests from oversubscribing
	// the cores the campaign engines are fitting on (default GOMAXPROCS).
	MaxConcurrentScores int

	// ScoreBreaker and JournalBreaker tune the circuit breakers guarding
	// the scoring pool and journal appends (zero values take the
	// resilience defaults).
	ScoreBreaker   resilience.BreakerConfig
	JournalBreaker resilience.BreakerConfig

	// TornWrites injects deterministic torn journal appends — the chaos
	// knob behind the crash-mid-write suite. The zero value never tears.
	TornWrites faults.TornWriteConfig
}

// Manager owns the campaign set, the shared prediction cache, and the
// global scoring throttle. All methods are safe for concurrent use.
type Manager struct {
	cfg   Config
	cache *predCache
	sem   chan struct{}

	// scoreBreaker trips when the scoring pool is so backed up that
	// requests die waiting for a slot; journalBreaker trips when the
	// checkpoint disk is sick. Both fail fast (HTTP 503 + Retry-After)
	// instead of queueing doomed work.
	scoreBreaker   *resilience.Breaker
	journalBreaker *resilience.Breaker

	mu        sync.RWMutex
	campaigns map[string]*Campaign
	nextID    int
	closed    bool
}

// NewManager builds a Manager. Call ResumeAll afterwards to relaunch
// checkpointed campaigns.
func NewManager(cfg Config) *Manager {
	if cfg.MaxConcurrentScores <= 0 {
		cfg.MaxConcurrentScores = runtime.GOMAXPROCS(0)
	}
	return &Manager{
		cfg:            cfg,
		cache:          newPredCache(cfg.CacheSize),
		sem:            make(chan struct{}, cfg.MaxConcurrentScores),
		scoreBreaker:   resilience.NewBreaker("score", cfg.ScoreBreaker),
		journalBreaker: resilience.NewBreaker("journal", cfg.JournalBreaker),
		campaigns:      make(map[string]*Campaign),
	}
}

// BreakerStates reports the manager's circuit breaker states for
// /healthz.
func (m *Manager) BreakerStates() map[string]string {
	return map[string]string{
		"score":   m.scoreBreaker.State().String(),
		"journal": m.journalBreaker.State().String(),
	}
}

// ckptPath returns the journal path for a campaign id ("" when
// persistence is disabled).
func (m *Manager) ckptPath(id string) string {
	if m.cfg.CheckpointDir == "" {
		return ""
	}
	return filepath.Join(m.cfg.CheckpointDir, id+".json")
}

// Create validates the spec, assigns an id, and launches the campaign.
func (m *Manager) Create(spec CampaignSpec) (*Campaign, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	var id string
	for {
		m.nextID++
		id = fmt.Sprintf("c%04d", m.nextID)
		if _, taken := m.campaigns[id]; !taken {
			break
		}
	}
	var jw *journalWriter
	if path := m.ckptPath(id); path != "" {
		var err error
		if jw, err = createJournal(path, id, spec, m.cfg.TornWrites); err != nil {
			// A server configured for durability that cannot persist must
			// say so at create time, not lose campaigns at crash time.
			return nil, fmt.Errorf("%w: %v", ErrJournal, err)
		}
	}
	c, err := newCampaign(id, spec, jw, m.journalBreaker, nil, 0, 0)
	if err != nil {
		jw.close()
		return nil, err
	}
	m.campaigns[id] = c
	campaignsCreated.Inc()
	campaignsActive.Set(float64(len(m.campaigns)))
	obs.Emit("serve.campaign.created", map[string]any{"campaign": id, "source": spec.Source})
	return c, nil
}

// ResumeAll scans the checkpoint directory and relaunches every
// campaign journal found there; each engine replays its journal and
// continues (or finishes) from the exact interrupted state. Returns
// the number of campaigns resumed; corrupt journals are skipped with an
// event rather than failing the boot.
func (m *Manager) ResumeAll() (int, error) {
	if m.cfg.CheckpointDir == "" {
		return 0, nil
	}
	entries, err := os.ReadDir(m.cfg.CheckpointDir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("serve: scan checkpoint dir: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") && !strings.HasPrefix(e.Name(), ".") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	resumed := 0
	for _, name := range names {
		path := filepath.Join(m.cfg.CheckpointDir, name)
		jf, err := loadJournal(path)
		if err != nil {
			obs.Emit("serve.resume.skipped", map[string]any{"path": path, "err": err.Error()})
			continue
		}
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			return resumed, ErrClosed
		}
		if _, taken := m.campaigns[jf.ID]; taken {
			m.mu.Unlock()
			obs.Emit("serve.resume.skipped", map[string]any{"path": path, "err": "duplicate campaign id"})
			continue
		}
		// Reopen for appending at the end of the last complete
		// observation: torn tails and stale terminal lines are trimmed
		// before the campaign writes anything new.
		jw, err := openJournalAt(path, jf.appendOffset, len(jf.Observations), m.cfg.TornWrites)
		if err != nil {
			m.mu.Unlock()
			obs.Emit("serve.resume.skipped", map[string]any{"path": path, "err": err.Error()})
			continue
		}
		c, err := newCampaign(jf.ID, jf.Spec, jw, m.journalBreaker, jf.Observations, jf.ModelVersion, jf.Fingerprint)
		if err != nil {
			m.mu.Unlock()
			jw.close()
			obs.Emit("serve.resume.skipped", map[string]any{"path": path, "err": err.Error()})
			continue
		}
		m.campaigns[jf.ID] = c
		// Keep fresh ids clear of resumed ones ("c0007" → nextID ≥ 7).
		if n, err := strconv.Atoi(strings.TrimPrefix(jf.ID, "c")); err == nil && n > m.nextID {
			m.nextID = n
		}
		campaignsActive.Set(float64(len(m.campaigns)))
		m.mu.Unlock()
		campaignsResumed.Inc()
		resumed++
		obs.Emit("serve.campaign.resumed", map[string]any{
			"campaign": jf.ID, "observations": len(jf.Observations),
		})
	}
	return resumed, nil
}

// Get returns the campaign with the given id.
func (m *Manager) Get(id string) (*Campaign, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	c, ok := m.campaigns[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return c, nil
}

// List returns all campaigns sorted by id.
func (m *Manager) List() []*Campaign {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*Campaign, 0, len(m.campaigns))
	for _, c := range m.campaigns {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Delete stops the campaign, waits for its engine, removes it from the
// manager, and deletes its checkpoint — a deleted campaign does not
// come back on restart.
func (m *Manager) Delete(id string) error {
	m.mu.Lock()
	c, ok := m.campaigns[id]
	if ok {
		delete(m.campaigns, id)
		campaignsActive.Set(float64(len(m.campaigns)))
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	c.Stop()
	c.Wait()
	c.close()
	if path := m.ckptPath(id); path != "" {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("serve: remove checkpoint: %w", err)
		}
	}
	return nil
}

// Predict evaluates the campaign's current model at the request points.
// See PredictCtx.
func (m *Manager) Predict(c *Campaign, points [][]float64) (PredictResponse, error) {
	return m.PredictCtx(context.Background(), c, points)
}

// PredictCtx evaluates the campaign's current model at the request
// points, serving what it can from the LRU and batching the misses
// through the shared scoring pool. Points must match the campaign's
// input dimensionality. Waiting for a scoring slot honors ctx, and the
// score breaker fails fast once slot waits start dying of deadline
// exhaustion (overload) instead of queueing more doomed work.
func (m *Manager) PredictCtx(ctx context.Context, c *Campaign, points [][]float64) (PredictResponse, error) {
	if len(points) == 0 {
		return PredictResponse{}, fmt.Errorf("%w: empty predict batch", errSpec)
	}
	model, version, err := c.Model()
	if err != nil {
		return PredictResponse{}, err
	}
	dims := c.cands.Cols()
	for i, pt := range points {
		if len(pt) != dims {
			return PredictResponse{}, fmt.Errorf("%w: point %d has %d dims, campaign has %d", errSpec, i, len(pt), dims)
		}
		for _, v := range pt {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return PredictResponse{}, fmt.Errorf("%w: point %d has a non-finite coordinate", errSpec, i)
			}
		}
	}
	predictPoints.Add(int64(len(points)))

	prefix := c.ID + ":" + strconv.Itoa(version) + ":"
	resp := PredictResponse{
		ModelVersion: version,
		Means:        make([]al.JSONFloat, len(points)),
		SDs:          make([]al.JSONFloat, len(points)),
	}
	var missIdx []int
	for i, pt := range points {
		if pred, ok := m.cache.get(prefix + xKey(pt)); ok {
			resp.Means[i] = al.JSONFloat(pred.Mean)
			resp.SDs[i] = al.JSONFloat(pred.SD)
			resp.CacheHits++
		} else {
			missIdx = append(missIdx, i)
		}
	}
	if len(missIdx) > 0 {
		miss := make([][]float64, len(missIdx))
		for j, i := range missIdx {
			miss[j] = points[i]
		}
		scoreQueueDepth.Set(float64(len(m.sem)))
		var preds []gp.Prediction
		if err := m.scoreBreaker.Do(func() error {
			select {
			case m.sem <- struct{}{}:
			case <-ctx.Done():
				return ctx.Err()
			}
			defer func() { <-m.sem }()
			preds = al.ScoreBatch(model, mat.NewFromRows(miss), m.cfg.ScoreWorkers)
			return nil
		}); err != nil {
			return PredictResponse{}, err
		}
		for j, i := range missIdx {
			resp.Means[i] = al.JSONFloat(preds[j].Mean)
			resp.SDs[i] = al.JSONFloat(preds[j].SD)
			m.cache.put(prefix+xKey(points[i]), preds[j])
		}
	}
	return resp, nil
}

// CampaignCount reports (total, terminal) campaign counts for /healthz.
func (m *Manager) CampaignCount() (total, terminal int) {
	for _, c := range m.List() {
		total++
		if st, err := c.Status(false); err == nil {
			switch st.State {
			case StateDone, StateFailed, StateStopped:
				terminal++
			}
		}
	}
	return total, terminal
}

// Shutdown gracefully stops every campaign: engines unwind at their
// next oracle interaction (client-blocked engines immediately), final
// checkpoints flush, and actors exit. Respects ctx for the engine
// drain.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	all := make([]*Campaign, 0, len(m.campaigns))
	for _, c := range m.campaigns {
		all = append(all, c)
	}
	m.mu.Unlock()

	for _, c := range all {
		c.Stop()
	}
	var err error
	for _, c := range all {
		select {
		case <-c.engineDone:
			c.close()
		case <-ctx.Done():
			err = fmt.Errorf("serve: shutdown interrupted with campaign %s still draining: %w", c.ID, ctx.Err())
		}
	}
	obs.Emit("serve.shutdown", map[string]any{"campaigns": len(all)})
	return err
}
