package mat

import (
	"fmt"
	"math"

	"repro/internal/obs"
)

// Rank-one factor maintenance metrics: the incremental GP conditioning
// path replaces full O(n³) refactorizations with these O(n²) kernels, so
// counting them next to mat.cholesky.count makes the refit/update ratio
// visible in -metrics output (see OBSERVABILITY.md).
var (
	choleskyRank1Count  = obs.C("mat.cholesky.rank1.count")
	choleskyExtendCount = obs.C("mat.cholesky.extend.count")
)

// RankOneUpdate returns the Cholesky factor of A + v·vᵀ given the factor
// of A, in O(n²) via a sweep of Givens rotations (LINPACK dchud). The
// receiver is not modified. A + v·vᵀ is always SPD when A is, so the
// update cannot fail.
func (c *Cholesky) RankOneUpdate(v Vec) *Cholesky {
	if len(v) != c.n {
		panic(fmt.Sprintf("mat: RankOneUpdate length %d != %d", len(v), c.n))
	}
	choleskyRank1Count.Inc()
	n := c.n
	l := c.l.Clone()
	d := l.data
	w := append(Vec(nil), v...)
	for k := 0; k < n; k++ {
		lkk := d[k*n+k]
		r := math.Hypot(lkk, w[k])
		cc := r / lkk
		s := w[k] / lkk
		d[k*n+k] = r
		for i := k + 1; i < n; i++ {
			lik := (d[i*n+k] + s*w[i]) / cc
			w[i] = cc*w[i] - s*lik
			d[i*n+k] = lik
		}
	}
	return &Cholesky{l: l, n: n}
}

// RankOneDowndate returns the Cholesky factor of A − v·vᵀ given the
// factor of A, in O(n²) via hyperbolic rotations (LINPACK dchdd). The
// receiver is not modified. It returns ErrNotPositiveDefinite when the
// downdated matrix is not SPD — removing v may destroy positive
// definiteness, unlike the update direction.
func (c *Cholesky) RankOneDowndate(v Vec) (*Cholesky, error) {
	if len(v) != c.n {
		panic(fmt.Sprintf("mat: RankOneDowndate length %d != %d", len(v), c.n))
	}
	choleskyRank1Count.Inc()
	n := c.n
	l := c.l.Clone()
	d := l.data
	w := append(Vec(nil), v...)
	for k := 0; k < n; k++ {
		lkk := d[k*n+k]
		r2 := lkk*lkk - w[k]*w[k]
		if r2 <= 0 || math.IsNaN(r2) {
			return nil, fmt.Errorf("%w: downdate pivot %d² = %g", ErrNotPositiveDefinite, k, r2)
		}
		r := math.Sqrt(r2)
		cc := r / lkk
		s := w[k] / lkk
		d[k*n+k] = r
		for i := k + 1; i < n; i++ {
			lik := (d[i*n+k] - s*w[i]) / cc
			w[i] = cc*w[i] - s*lik
			d[i*n+k] = lik
		}
	}
	return &Cholesky{l: l, n: n}, nil
}
