package mat

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/obs"
)

// Factorization metrics: every Cholesky — the O(n³) inner kernel of each
// GP fit, LML evaluation and refit — counts itself, so the AL loop's
// linear-algebra bill is visible end to end (see OBSERVABILITY.md).
var (
	choleskyCount    = obs.C("mat.cholesky.count")
	choleskyDur      = obs.T("mat.cholesky.duration")
	choleskySize     = obs.H("mat.cholesky.size", 16, 64, 256, 1024, 4096)
	choleskyParCount = obs.C("mat.cholesky.parallel.count")
)

// ErrNotPositiveDefinite is returned when a Cholesky factorization
// encounters a non-positive pivot.
var ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L of a symmetric
// positive-definite matrix A = L·Lᵀ.
type Cholesky struct {
	l *Dense // lower triangular, upper strictly zero
	n int
}

// NewCholesky factorizes the symmetric positive-definite matrix a.
// Only the lower triangle of a is read. It returns
// ErrNotPositiveDefinite if a pivot is not strictly positive.
func NewCholesky(a *Dense) (*Cholesky, error) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: Cholesky of non-square %dx%d", a.rows, a.cols))
	}
	n := a.rows
	choleskyCount.Inc()
	choleskySize.Observe(float64(n))
	start := time.Now()
	defer func() { choleskyDur.Observe(time.Since(start).Seconds()) }()
	l := New(n, n)
	for i := 0; i < n; i++ {
		lrow := l.data[i*n : (i+1)*n]
		for j := 0; j <= i; j++ {
			s := a.data[i*n+j]
			ljrow := l.data[j*n : (j+1)*n]
			for k := 0; k < j; k++ {
				s -= lrow[k] * ljrow[k]
			}
			if i == j {
				if s <= 0 || math.IsNaN(s) {
					return nil, fmt.Errorf("%w: pivot %d = %g", ErrNotPositiveDefinite, i, s)
				}
				lrow[j] = math.Sqrt(s)
			} else {
				lrow[j] = s / ljrow[j]
			}
		}
	}
	return &Cholesky{l: l, n: n}, nil
}

// NewCholeskyJitter factorizes a, retrying with exponentially growing
// diagonal jitter when a is numerically indefinite (the standard
// Gaussian-process trick for nearly singular covariance matrices).
// It returns the factorization and the jitter that was finally added.
func NewCholeskyJitter(a *Dense, initial float64, maxTries int) (*Cholesky, float64, error) {
	ch, err := NewCholesky(a)
	if err == nil {
		return ch, 0, nil
	}
	jitter := initial
	if jitter <= 0 {
		jitter = 1e-10 * maxDiag(a)
		if jitter == 0 {
			jitter = 1e-10
		}
	}
	for try := 0; try < maxTries; try++ {
		b := a.Clone()
		b.AddDiag(jitter)
		ch, err = NewCholesky(b)
		if err == nil {
			return ch, jitter, nil
		}
		jitter *= 10
	}
	return nil, jitter, fmt.Errorf("mat: Cholesky failed after %d jitter retries (last jitter %g): %w",
		maxTries, jitter/10, err)
}

func maxDiag(a *Dense) float64 {
	var mx float64
	for i := 0; i < a.rows; i++ {
		if v := math.Abs(a.data[i*a.cols+i]); v > mx {
			mx = v
		}
	}
	return mx
}

// Size returns the order n of the factorized matrix.
func (c *Cholesky) Size() int { return c.n }

// L returns the lower-triangular factor, aliased (do not mutate).
func (c *Cholesky) L() *Dense { return c.l }

// SolveVec solves A·x = b and returns x.
func (c *Cholesky) SolveVec(b Vec) Vec {
	if len(b) != c.n {
		panic(fmt.Sprintf("mat: Cholesky SolveVec length %d != %d", len(b), c.n))
	}
	y := ForwardSubst(c.l, b)
	return BackSubstT(c.l, y)
}

// Solve solves A·X = B column-by-column and returns X.
func (c *Cholesky) Solve(b *Dense) *Dense {
	if b.rows != c.n {
		panic(fmt.Sprintf("mat: Cholesky Solve rows %d != %d", b.rows, c.n))
	}
	x := New(b.rows, b.cols)
	col := make(Vec, c.n)
	for j := 0; j < b.cols; j++ {
		for i := 0; i < c.n; i++ {
			col[i] = b.data[i*b.cols+j]
		}
		sol := c.SolveVec(col)
		for i := 0; i < c.n; i++ {
			x.data[i*b.cols+j] = sol[i]
		}
	}
	return x
}

// LogDet returns log det A = 2 Σ log L_ii.
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.n; i++ {
		s += math.Log(c.l.data[i*c.n+i])
	}
	return 2 * s
}

// Inverse returns A⁻¹ as a dense matrix. Prefer SolveVec when only products
// with A⁻¹ are needed; the explicit inverse is used by the LML gradient.
func (c *Cholesky) Inverse() *Dense {
	return c.Solve(Eye(c.n))
}

// QuadForm returns bᵀ A⁻¹ b.
func (c *Cholesky) QuadForm(b Vec) float64 {
	y := ForwardSubst(c.l, b) // A = L Lᵀ ⇒ bᵀA⁻¹b = |L⁻¹ b|²
	return Dot(y, y)
}

// Extended returns the Cholesky factor of the bordered matrix
//
//	[ A  b ]
//	[ bᵀ c ]
//
// in O(n²) instead of refactorizing in O(n³): the new row of L is
// L⁻¹b and the new pivot is √(c − |L⁻¹b|²). This is the incremental
// update that makes online GP conditioning cheap between hyperparameter
// refits. Returns ErrNotPositiveDefinite when the bordered matrix is not
// SPD.
func (c *Cholesky) Extended(b Vec, diag float64) (*Cholesky, error) {
	if len(b) != c.n {
		panic(fmt.Sprintf("mat: Extended border length %d != %d", len(b), c.n))
	}
	choleskyExtendCount.Inc()
	row := ForwardSubst(c.l, b)
	pivot := diag - Dot(row, row)
	if pivot <= 0 || math.IsNaN(pivot) {
		return nil, fmt.Errorf("%w: bordered pivot = %g", ErrNotPositiveDefinite, pivot)
	}
	n := c.n + 1
	l := New(n, n)
	for i := 0; i < c.n; i++ {
		copy(l.data[i*n:i*n+c.n], c.l.data[i*c.n:i*c.n+c.n])
	}
	copy(l.data[(n-1)*n:(n-1)*n+c.n], row)
	l.data[n*n-1] = math.Sqrt(pivot)
	return &Cholesky{l: l, n: n}, nil
}
