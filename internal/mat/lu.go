package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization meets an (effectively)
// singular matrix.
var ErrSingular = errors.New("mat: matrix is singular")

// LU is an LU factorization with partial pivoting: P·A = L·U, where L is
// unit lower triangular and U upper triangular, stored packed.
type LU struct {
	lu    *Dense
	pivot []int
	sign  float64 // determinant sign from row swaps
	n     int
}

// NewLU factorizes the square matrix a with partial pivoting.
func NewLU(a *Dense) (*LU, error) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: LU of non-square %dx%d", a.rows, a.cols))
	}
	n := a.rows
	lu := a.Clone()
	pivot := make([]int, n)
	sign := 1.0
	d := lu.data
	for k := 0; k < n; k++ {
		// Pivot: largest absolute value in column k at/below row k.
		p := k
		mx := math.Abs(d[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(d[i*n+k]); v > mx {
				p, mx = i, v
			}
		}
		pivot[k] = p
		if mx == 0 || math.IsNaN(mx) {
			return nil, fmt.Errorf("%w: zero pivot at column %d", ErrSingular, k)
		}
		if p != k {
			rk := d[k*n : (k+1)*n]
			rp := d[p*n : (p+1)*n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			sign = -sign
		}
		pivKK := d[k*n+k]
		for i := k + 1; i < n; i++ {
			m := d[i*n+k] / pivKK
			d[i*n+k] = m
			if m == 0 {
				continue
			}
			ri := d[i*n : (i+1)*n]
			rk := d[k*n : (k+1)*n]
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return &LU{lu: lu, pivot: pivot, sign: sign, n: n}, nil
}

// SolveVec solves A·x = b.
func (f *LU) SolveVec(b Vec) Vec {
	if len(b) != f.n {
		panic(fmt.Sprintf("mat: LU SolveVec length %d != %d", len(b), f.n))
	}
	n := f.n
	x := b.Clone()
	// Apply the pivot permutation.
	for k := 0; k < n; k++ {
		if p := f.pivot[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	d := f.lu.data
	// Forward: L y = Pb (unit diagonal).
	for i := 1; i < n; i++ {
		s := x[i]
		ri := d[i*n : i*n+i]
		for k, v := range ri {
			s -= v * x[k]
		}
		x[i] = s
	}
	// Backward: U x = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		ri := d[i*n : (i+1)*n]
		for k := i + 1; k < n; k++ {
			s -= ri[k] * x[k]
		}
		x[i] = s / ri[i]
	}
	return x
}

// Solve solves A·X = B column by column.
func (f *LU) Solve(b *Dense) *Dense {
	if b.rows != f.n {
		panic(fmt.Sprintf("mat: LU Solve rows %d != %d", b.rows, f.n))
	}
	x := New(b.rows, b.cols)
	col := make(Vec, f.n)
	for j := 0; j < b.cols; j++ {
		for i := 0; i < f.n; i++ {
			col[i] = b.data[i*b.cols+j]
		}
		sol := f.SolveVec(col)
		for i := 0; i < f.n; i++ {
			x.data[i*b.cols+j] = sol[i]
		}
	}
	return x
}

// Det returns det(A).
func (f *LU) Det() float64 {
	det := f.sign
	for i := 0; i < f.n; i++ {
		det *= f.lu.data[i*f.n+i]
	}
	return det
}

// CondEst1 returns a cheap lower-bound estimate of the 1-norm condition
// number κ₁(A) ≈ ‖A‖₁·‖A⁻¹‖₁, estimating ‖A⁻¹‖₁ by solving against a few
// probe vectors. Used to warn when covariance matrices approach numerical
// singularity.
func CondEst1(a *Dense) (float64, error) {
	f, err := NewLU(a)
	if err != nil {
		return math.Inf(1), err
	}
	n := a.rows
	norm := a.Norm1()
	var invNorm float64
	// Probes: e_j for a few columns plus the all-ones vector.
	probes := []int{0, n / 2, n - 1}
	for _, j := range probes {
		e := make(Vec, n)
		e[j] = 1
		x := f.SolveVec(e)
		var s float64
		for _, v := range x {
			s += math.Abs(v)
		}
		if s > invNorm {
			invNorm = s
		}
	}
	ones := make(Vec, n)
	for i := range ones {
		ones[i] = 1.0 / float64(n)
	}
	x := f.SolveVec(ones)
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	if s > invNorm {
		invNorm = s
	}
	return norm * invNorm, nil
}
