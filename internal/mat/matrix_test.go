package mat

import (
	"math"
	"math/rand"
	"testing"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	return d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func randomDense(rng *rand.Rand, r, c int) *Dense {
	m := New(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

// randomSPD builds a well-conditioned SPD matrix A = GᵀG + n·I.
func randomSPD(rng *rand.Rand, n int) *Dense {
	g := randomDense(rng, n, n)
	a := SyrkT(g)
	a.AddDiag(float64(n))
	return a
}

func TestNewAndAtSet(t *testing.T) {
	m := New(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %g, want 7.5", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("zero value not zero: %g", got)
	}
}

func TestNewFromRows(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("shape = %dx%d", m.Rows(), m.Cols())
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %g", m.At(2, 1))
	}
	// Copies: mutating the source must not change the matrix.
	src := [][]float64{{9}}
	m2 := NewFromRows(src)
	src[0][0] = -1
	if m2.At(0, 0) != 9 {
		t.Fatal("NewFromRows did not copy")
	}
}

func TestNewFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	NewFromRows([][]float64{{1, 2}, {3}})
}

func TestOutOfBoundsPanics(t *testing.T) {
	m := New(2, 2)
	for _, f := range []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, -1) },
		func() { m.Set(-1, 0, 1) },
		func() { m.RawRow(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected bounds panic")
				}
			}()
			f()
		}()
	}
}

func TestEye(t *testing.T) {
	id := Eye(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("Eye(4)[%d,%d] = %g", i, j, id.At(i, j))
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomDense(rng, 5, 3)
	tr := m.T()
	if tr.Rows() != 3 || tr.Cols() != 5 {
		t.Fatalf("Tᵀ shape %dx%d", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at %d,%d", i, j)
			}
		}
	}
	// Double transpose restores.
	trtr := tr.T()
	for i := range m.data {
		if m.data[i] != trtr.data[i] {
			t.Fatal("double transpose differs")
		}
	}
}

func TestAddSubScale(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewFromRows([][]float64{{10, 20}, {30, 40}})
	c := a.Clone()
	c.Add(b)
	if c.At(1, 1) != 44 {
		t.Fatalf("Add: %g", c.At(1, 1))
	}
	c.Sub(b)
	for i := range a.data {
		if c.data[i] != a.data[i] {
			t.Fatal("Add then Sub is not identity")
		}
	}
	c.Scale(2)
	if c.At(0, 1) != 4 {
		t.Fatalf("Scale: %g", c.At(0, 1))
	}
}

func TestAddDiagTraceDiag(t *testing.T) {
	m := Eye(3)
	m.AddDiag(2)
	if m.Trace() != 9 {
		t.Fatalf("Trace = %g, want 9", m.Trace())
	}
	d := m.Diag()
	for _, v := range d {
		if v != 3 {
			t.Fatalf("Diag entry %g, want 3", v)
		}
	}
}

func TestNorms(t *testing.T) {
	m := NewFromRows([][]float64{{1, -2}, {-3, 4}})
	if got := m.Norm1(); got != 6 {
		t.Fatalf("Norm1 = %g, want 6", got)
	}
	if got := m.MaxAbs(); got != 4 {
		t.Fatalf("MaxAbs = %g, want 4", got)
	}
	want := math.Sqrt(1 + 4 + 9 + 16)
	if got := m.FrobeniusNorm(); !almostEq(got, want, 1e-14) {
		t.Fatalf("Frobenius = %g, want %g", got, want)
	}
}

func TestSymmetric(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {2.0000001, 1}})
	if m.IsSymmetric(1e-9) {
		t.Fatal("should not be symmetric at tol 1e-9")
	}
	if !m.IsSymmetric(1e-3) {
		t.Fatal("should be symmetric at tol 1e-3")
	}
	m.Symmetrize()
	if !m.IsSymmetric(0) {
		t.Fatal("Symmetrize failed")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}})
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone aliases source")
	}
}

func TestCopyFrom(t *testing.T) {
	a := New(2, 2)
	b := NewFromRows([][]float64{{1, 2}, {3, 4}})
	a.CopyFrom(b)
	if a.At(1, 0) != 3 {
		t.Fatal("CopyFrom failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	a.CopyFrom(New(3, 3))
}

func TestNewFromDataAliases(t *testing.T) {
	d := []float64{1, 2, 3, 4}
	m := NewFromData(2, 2, d)
	d[3] = 40
	if m.At(1, 1) != 40 {
		t.Fatal("NewFromData should alias")
	}
}

func TestStringSmallAndElided(t *testing.T) {
	small := Eye(2)
	if s := small.String(); s == "" {
		t.Fatal("empty String")
	}
	big := New(20, 20)
	if s := big.String(); s != "Dense 20x20 (elided)" {
		t.Fatalf("big String = %q", s)
	}
}
