package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if got := Dot(Vec{1, 2, 3}, Vec{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %g, want 32", got)
	}
	if got := Dot(Vec{}, Vec{}); got != 0 {
		t.Fatalf("empty Dot = %g", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot(Vec{1}, Vec{1, 2})
}

func TestNorm2(t *testing.T) {
	if got := Norm2(Vec{3, 4}); !almostEq(got, 5, 1e-15) {
		t.Fatalf("Norm2 = %g, want 5", got)
	}
	if got := Norm2(Vec{0, 0}); got != 0 {
		t.Fatalf("Norm2 of zero = %g", got)
	}
	// Overflow resistance: plain sum of squares would overflow.
	big := Vec{1e200, 1e200}
	want := 1e200 * math.Sqrt2
	if got := Norm2(big); !almostEq(got, want, 1e-10) {
		t.Fatalf("Norm2 big = %g, want %g", got, want)
	}
}

func TestNormInf(t *testing.T) {
	if got := NormInf(Vec{-7, 3, 5}); got != 7 {
		t.Fatalf("NormInf = %g, want 7", got)
	}
}

func TestAxpy(t *testing.T) {
	y := Vec{1, 1, 1}
	Axpy(2, Vec{1, 2, 3}, y)
	want := Vec{3, 5, 7}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy[%d] = %g, want %g", i, y[i], want[i])
		}
	}
}

func TestScaleAddSubVec(t *testing.T) {
	v := Vec{1, -2}
	ScaleVec(-3, v)
	if v[0] != -3 || v[1] != 6 {
		t.Fatalf("ScaleVec: %v", v)
	}
	s := AddVec(Vec{1, 2}, Vec{3, 4})
	if s[0] != 4 || s[1] != 6 {
		t.Fatalf("AddVec: %v", s)
	}
	d := SubVec(Vec{1, 2}, Vec{3, 4})
	if d[0] != -2 || d[1] != -2 {
		t.Fatalf("SubVec: %v", d)
	}
}

func TestMulVecAndT(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	v := Vec{1, 1, 1}
	got := m.MulVec(v)
	if got[0] != 6 || got[1] != 15 {
		t.Fatalf("MulVec: %v", got)
	}
	w := Vec{1, 2}
	gt := m.MulVecT(w)
	want := Vec{9, 12, 15}
	for i := range gt {
		if gt[i] != want[i] {
			t.Fatalf("MulVecT: %v want %v", gt, want)
		}
	}
}

func TestOuter(t *testing.T) {
	o := Outer(Vec{1, 2}, Vec{3, 4, 5})
	if o.Rows() != 2 || o.Cols() != 3 {
		t.Fatalf("Outer shape %dx%d", o.Rows(), o.Cols())
	}
	if o.At(1, 2) != 10 {
		t.Fatalf("Outer[1,2] = %g", o.At(1, 2))
	}
}

func TestVecClone(t *testing.T) {
	v := Vec{1, 2}
	c := v.Clone()
	c[0] = 9
	if v[0] != 1 {
		t.Fatal("Clone aliases")
	}
}

// Property: Cauchy-Schwarz |x·y| ≤ |x||y|.
func TestCauchySchwarzProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		x, y := make(Vec, n), make(Vec, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		return math.Abs(Dot(x, y)) <= Norm2(x)*Norm2(y)*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: MulVecT(v) equals T().MulVec(v).
func TestMulVecTProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(10)
		c := 1 + rng.Intn(10)
		m := randomDense(rng, r, c)
		v := make(Vec, r)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		a := m.MulVecT(v)
		b := m.T().MulVec(v)
		for i := range a {
			if !almostEq(a[i], b[i], 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTriangularSolves(t *testing.T) {
	l := NewFromRows([][]float64{{2, 0, 0}, {1, 3, 0}, {4, 5, 6}})
	xTrue := Vec{1, -2, 0.5}
	b := l.MulVec(xTrue)
	y := ForwardSubst(l, b)
	for i := range y {
		if !almostEq(y[i], xTrue[i], 1e-12) {
			t.Fatalf("ForwardSubst: %v want %v", y, xTrue)
		}
	}
	// Lᵀ x = b via BackSubstT.
	bt := l.T().MulVec(xTrue)
	xt := BackSubstT(l, bt)
	for i := range xt {
		if !almostEq(xt[i], xTrue[i], 1e-12) {
			t.Fatalf("BackSubstT: %v want %v", xt, xTrue)
		}
	}
	// Upper triangular via BackSubst.
	u := l.T()
	bu := u.MulVec(xTrue)
	xu := BackSubst(u, bu)
	for i := range xu {
		if !almostEq(xu[i], xTrue[i], 1e-12) {
			t.Fatalf("BackSubst: %v want %v", xu, xTrue)
		}
	}
}

func TestForwardSubstMat(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randomSPD(rng, 8)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := randomDense(rng, 8, 3)
	y := ForwardSubstMat(ch.L(), b)
	rec := Mul(ch.L(), y)
	matricesEqual(t, rec, b, 1e-9)
}
